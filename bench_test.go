// Benchmarks that regenerate the paper's tables and figures. One
// benchmark per table/figure (series grouped per the paper's layout);
// each reports the headline series metrics via b.ReportMetric and prints
// the full table with -v through b.Log. The internal/bench harness and
// cmd/acep-bench expose the same experiments with adjustable scale.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFig6 -benchtime=1x
package acep_test

import (
	"bytes"
	"fmt"
	"testing"

	"acep/internal/bench"
	"acep/internal/gen"
)

// benchScale keeps `go test -bench=.` affordable while preserving the
// qualitative shapes; use cmd/acep-bench -events to scale up.
func benchScale() bench.Scale {
	sc := bench.DefaultScale()
	sc.Events = 12000
	sc.Sizes = []int{3, 5}
	return sc
}

// BenchmarkFig5 regenerates Figure 5: invariant-method throughput as a
// function of pattern size and distance d, for all four combos.
func BenchmarkFig5(b *testing.B) {
	for _, c := range bench.Combos() {
		c := c
		b.Run(c.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := bench.NewHarness(benchScale())
				f5, err := h.Fig5(c, bench.DefaultDGrid())
				if err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				f5.Write(&buf)
				b.Log("\n" + buf.String())
				b.ReportMetric(f5.BestD(), "d_opt")
			}
		})
	}
}

// BenchmarkTable1 regenerates Table 1: quality of the d_avg estimator
// against the empirically optimal distance.
func BenchmarkTable1(b *testing.B) {
	for _, c := range bench.Combos() {
		c := c
		b.Run(c.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := bench.NewHarness(benchScale())
				f5, err := h.Fig5(c, bench.DefaultDGrid())
				if err != nil {
					b.Fatal(err)
				}
				rows, err := h.Table1(c, f5)
				if err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				bench.WriteTable1(&buf, rows)
				b.Log("\n" + buf.String())
				if len(rows) > 0 {
					b.ReportMetric(rows[len(rows)-1].Quality, "quality_maxsize")
				}
			}
		})
	}
}

// methodsFigure runs the four-panel adaptation-method comparison for one
// combo and one pattern-set selection (-1 = averaged over all sets).
func methodsFigure(b *testing.B, c bench.Combo, kinds []gen.Kind, kindIdx int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h := bench.NewHarness(benchScale())
		f5, err := h.Fig5(c, []float64{0, 0.2, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		topt, err := h.ScanThreshold(c, []float64{0.1, 0.3, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		data, err := h.Methods(c, kinds, topt, f5.BestD())
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		data.WriteFigure(&buf, kindIdx)
		b.Log("\n" + buf.String())

		// Headline series: relative gain of the invariant method over the
		// static plan at the largest size, plus its reoptimization count.
		var grid [][]bench.Result
		if kindIdx < 0 {
			grid = data.Avg()
		} else {
			grid = data.Results[kindIdx]
		}
		last := grid[len(grid)-1]
		static, invariant := last[0], last[len(last)-1]
		if static.Throughput > 0 {
			b.ReportMetric(invariant.Throughput/static.Throughput, "x_gain_invariant")
		}
		b.ReportMetric(float64(invariant.Reopts), "reopts_invariant")
		b.ReportMetric(invariant.Overhead*100, "overhead_%")
	}
}

// BenchmarkFig6..BenchmarkFig9: the main adaptation-method comparison,
// averaged over all five pattern sets, per dataset-algorithm combo.
func BenchmarkFig6(b *testing.B) { methodsFigure(b, bench.Combos()[0], gen.Kinds(), -1) }
func BenchmarkFig7(b *testing.B) { methodsFigure(b, bench.Combos()[1], gen.Kinds(), -1) }
func BenchmarkFig8(b *testing.B) { methodsFigure(b, bench.Combos()[2], gen.Kinds(), -1) }
func BenchmarkFig9(b *testing.B) { methodsFigure(b, bench.Combos()[3], gen.Kinds(), -1) }

// appendixFigure regenerates one appendix figure (Figures 10-29): the
// method comparison restricted to a single pattern set.
func appendixFigure(b *testing.B, figID int) {
	b.Helper()
	kind := gen.Kinds()[(figID-10)/4]
	combo := bench.Combos()[(figID-10)%4]
	b.Run(fmt.Sprintf("%s/%s", combo, kind), func(b *testing.B) {
		methodsFigure(b, combo, []gen.Kind{kind}, 0)
	})
}

// BenchmarkFig10_13: sequence patterns (appendix set 1) on all combos.
func BenchmarkFig10_13(b *testing.B) {
	for fig := 10; fig <= 13; fig++ {
		appendixFigure(b, fig)
	}
}

// BenchmarkFig14_17: conjunction patterns (appendix set 2).
func BenchmarkFig14_17(b *testing.B) {
	for fig := 14; fig <= 17; fig++ {
		appendixFigure(b, fig)
	}
}

// BenchmarkFig18_21: negation patterns (appendix set 3).
func BenchmarkFig18_21(b *testing.B) {
	for fig := 18; fig <= 21; fig++ {
		appendixFigure(b, fig)
	}
}

// BenchmarkFig22_25: Kleene closure patterns (appendix set 4).
func BenchmarkFig22_25(b *testing.B) {
	for fig := 22; fig <= 25; fig++ {
		appendixFigure(b, fig)
	}
}

// BenchmarkFig26_29: composite (OR of three sequences) patterns
// (appendix set 5).
func BenchmarkFig26_29(b *testing.B) {
	for fig := 26; fig <= 29; fig++ {
		appendixFigure(b, fig)
	}
}

// BenchmarkAblationK sweeps the K-invariant method (§3.3): invariants
// kept per building block versus replan count and throughput.
func BenchmarkAblationK(b *testing.B) {
	for _, c := range []bench.Combo{bench.Combos()[1], bench.Combos()[2]} {
		c := c
		b.Run(c.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := bench.NewHarness(benchScale())
				rows, err := h.AblationK(c, 6, []int{1, 2, 3, 5}, 0.2)
				if err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				bench.WriteAblationK(&buf, c, 6, rows)
				b.Log("\n" + buf.String())
				b.ReportMetric(float64(rows[0].Reopts), "replans_K1")
				b.ReportMetric(float64(rows[len(rows)-1].Reopts), "replans_Kmax")
			}
		})
	}
}

// BenchmarkScaling measures the sharded execution layer: events/sec
// against shard count on the keyed traffic and stocks workloads
// (cmd/acep-bench -exp scale-* runs the same experiment with adjustable
// sweep and JSON recording into BENCH_scaling.json).
func BenchmarkScaling(b *testing.B) {
	for _, dataset := range []string{"traffic", "stocks"} {
		dataset := dataset
		b.Run(dataset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := bench.NewHarness(benchScale())
				d, err := h.Scaling(dataset, bench.DefaultShardCounts(), 0)
				if err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				d.Write(&buf)
				b.Log("\n" + buf.String())
				last := d.Points[len(d.Points)-1]
				b.ReportMetric(last.Speedup, "x_speedup_maxshards")
				b.ReportMetric(last.Throughput, "events/sec_maxshards")
			}
		})
	}
}

// BenchmarkAblationSelector compares §3.5 invariant-selection strategies
// (tightest absolute gap, tightest relative gap, full DCS).
func BenchmarkAblationSelector(b *testing.B) {
	for _, c := range []bench.Combo{bench.Combos()[0], bench.Combos()[3]} {
		c := c
		b.Run(c.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := bench.NewHarness(benchScale())
				rows, err := h.AblationSelector(c, 6, 0.2)
				if err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				bench.WriteAblationSelector(&buf, c, 6, rows)
				b.Log("\n" + buf.String())
			}
		})
	}
}
