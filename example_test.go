package acep_test

import (
	"fmt"

	"acep"
)

// Example detects the paper's camera pattern over a handcrafted stream.
func Example() {
	schema := acep.NewSchema()
	camA := schema.MustAddType("A", "person_id")
	camB := schema.MustAddType("B", "person_id")
	camC := schema.MustAddType("C", "person_id")

	pat, err := acep.ParsePattern(schema, `
		PATTERN SEQ(A a, B b, C c)
		WHERE a.person_id = b.person_id AND b.person_id = c.person_id
		WITHIN 10 minutes`)
	if err != nil {
		panic(err)
	}

	eng, err := acep.NewEngine(pat, acep.Config{
		Policy: acep.NewInvariantPolicy(acep.InvariantOptions{Distance: 0.1}),
		OnMatch: func(m *acep.Match) {
			fmt.Printf("person %.0f reached the restricted area\n", m.Events[0].Attr(0))
		},
	})
	if err != nil {
		panic(err)
	}
	events := []acep.Event{
		{Type: camA, TS: 1 * acep.Minute, Seq: 1, Attrs: []float64{7}},
		{Type: camB, TS: 3 * acep.Minute, Seq: 2, Attrs: []float64{7}},
		{Type: camC, TS: 6 * acep.Minute, Seq: 3, Attrs: []float64{7}},
	}
	for i := range events {
		eng.Process(&events[i])
	}
	eng.Finish()
	// Output: person 7 reached the restricted area
}

// ExampleParsePattern shows the SASE-style grammar including negation
// and Kleene closure.
func ExampleParsePattern() {
	schema := acep.NewSchema()
	schema.MustAddType("A", "x")
	schema.MustAddType("B", "x")
	schema.MustAddType("G", "x")

	pat, err := acep.ParsePattern(schema,
		`PATTERN SEQ(A a, B+ b, ~G g) WHERE b.x = a.x AND g.x = a.x WITHIN 30 s`)
	if err != nil {
		panic(err)
	}
	fmt.Println(pat.Size()) // A and Kleene B count; negated G does not
	// Output: 2
}

// ExampleNewMetaInvariantPolicy runs the meta-adaptive policy on a
// synthetic workload.
func ExampleNewMetaInvariantPolicy() {
	w := acep.NewTrafficWorkload(acep.TrafficConfig{Types: 6, Events: 5000, Seed: 3})
	pat, err := w.Pattern(acep.SequencePatterns, 3, 100*acep.Millisecond)
	if err != nil {
		panic(err)
	}
	eng, err := acep.NewEngine(pat, acep.Config{
		Policy: acep.NewMetaInvariantPolicy(0.1),
	})
	if err != nil {
		panic(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	fmt.Println(eng.Metrics().Events == 5000)
	// Output: true
}
