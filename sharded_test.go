package acep_test

import (
	"reflect"
	"sort"
	"testing"

	"acep"
)

// personPattern is the quick-start pattern: SEQ(A,B,C) joined on
// person_id — the canonical key-partitionable shape.
func personPattern(t *testing.T) (*acep.Schema, *acep.Pattern, []int) {
	t.Helper()
	schema := acep.NewSchema()
	camA := schema.MustAddType("A", "person_id")
	camB := schema.MustAddType("B", "person_id")
	camC := schema.MustAddType("C", "person_id")
	pb := acep.NewPattern(schema, acep.Seq, 10*acep.Minute)
	a, b, c := pb.Event(camA), pb.Event(camB), pb.Event(camC)
	pb.WhereEq(a, "person_id", b, "person_id")
	pb.WhereEq(b, "person_id", c, "person_id")
	return schema, pb.MustBuild(), []int{camA, camB, camC}
}

// TestFacadeSharded runs interleaved per-person event chains through the
// sharded engine at several shard counts and checks the match set against
// the single-threaded engine.
func TestFacadeSharded(t *testing.T) {
	schema, pat, types := personPattern(t)
	if err := acep.ShardPartitionable(pat, schema, "person_id"); err != nil {
		t.Fatal(err)
	}

	// 40 persons, each walking A→B→C, interleaved in time.
	var events []acep.Event
	seq := uint64(0)
	for step, typ := range types {
		for person := 0; person < 40; person++ {
			seq++
			events = append(events, acep.Event{
				Type:  typ,
				TS:    acep.Time(step*60+person) * acep.Second,
				Seq:   seq,
				Attrs: []float64{float64(person)},
			})
		}
	}

	var want []string
	single, err := acep.NewEngine(pat, acep.Config{
		OnMatch: func(m *acep.Match) { want = append(want, m.Key()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		single.Process(&events[i])
	}
	single.Finish()
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("reference found no matches")
	}

	for _, shards := range []int{1, 3, 8} {
		var got []string
		eng, err := acep.NewShardedEngine(pat, acep.Config{}, acep.ShardedConfig{
			Shards:  shards,
			Batch:   16,
			KeyAttr: "person_id",
			Schema:  schema,
			OnMatch: func(m *acep.Match) { got = append(got, m.Key()) },
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range events {
			eng.Process(&events[i])
		}
		eng.Finish()
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: %d matches vs %d", shards, len(got), len(want))
		}
		if eng.Metrics().Events != uint64(len(events)) {
			t.Fatalf("shards=%d: merged metrics missed events", shards)
		}
	}

	// Custom key-extractor mode through the façade helper.
	key, err := acep.ShardKeyByAttr(schema, "person_id")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	eng, err := acep.NewShardedEngine(pat, acep.Config{}, acep.ShardedConfig{
		Shards: 4,
		Key:    key,
		OnMatch: func(*acep.Match) {
			n++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		eng.Process(&events[i])
	}
	eng.Finish()
	if n != len(want) {
		t.Fatalf("custom key mode: %d matches vs %d", n, len(want))
	}
}

// TestFacadeShardedRejectsUnpartitionable: a pattern without the
// connecting equality predicates must be refused in KeyAttr mode.
func TestFacadeShardedRejectsUnpartitionable(t *testing.T) {
	schema := acep.NewSchema()
	a := schema.MustAddType("A", "person_id")
	b := schema.MustAddType("B", "person_id")
	pb := acep.NewPattern(schema, acep.Seq, acep.Minute)
	pb.Event(a)
	pb.Event(b) // no WhereEq: matches may span persons
	pat := pb.MustBuild()
	_, err := acep.NewShardedEngine(pat, acep.Config{}, acep.ShardedConfig{
		KeyAttr: "person_id",
		Schema:  schema,
	})
	if err == nil {
		t.Fatal("unpartitionable pattern accepted")
	}
}
