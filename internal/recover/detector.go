package recovery

import (
	"sync/atomic"
	"time"
)

// Detector is the heartbeat half of failure detection: it tracks, per
// node, when a frame was last received and when one was last sent, and
// declares a node suspect when it has been silent past the timeout
// *while being talked to* — a node owes a beat only after the ingress
// sent it something, so an idle or slow source never falsely kills a
// healthy fleet between cuts. Heartbeats piggyback on the frames nodes
// already send — every watermark is one, and nodes additionally
// acknowledge each cut on receipt, before processing it, so a
// loaded-but-alive node keeps beating while a hung or netsplit one
// falls silent. Transport errors bypass the detector entirely (they are
// definitive); the timeout exists for the failure modes that produce no
// error, like a machine dropping off the network mid-stream.
//
// Heard is called from the per-node reader goroutines, Sent and Expired
// from the ingress goroutine; the per-node clocks are atomics.
type Detector struct {
	timeout time.Duration
	last    []atomic.Int64 // unix nanos of the last frame received, per node
	sent    []atomic.Int64 // unix nanos of the last frame sent, per node
}

// NewDetector starts the clocks for n nodes. A zero (or negative)
// timeout disables timeout-based suspicion: Expired never fires and
// failures are detected through transport errors alone.
func NewDetector(n int, timeout time.Duration) *Detector {
	d := &Detector{
		timeout: timeout,
		last:    make([]atomic.Int64, n),
		sent:    make([]atomic.Int64, n),
	}
	now := time.Now().UnixNano()
	for i := range d.last {
		d.last[i].Store(now)
	}
	return d
}

// Heard records a frame (or any other liveness proof) from node i.
func (d *Detector) Heard(i int) {
	if d != nil && i >= 0 && i < len(d.last) {
		d.last[i].Store(time.Now().UnixNano())
	}
}

// Sent records a frame delivered to node i; the node now owes a beat.
func (d *Detector) Sent(i int) {
	if d != nil && i >= 0 && i < len(d.sent) {
		d.sent[i].Store(time.Now().UnixNano())
	}
}

// Expired reports whether node i has owed a beat past the timeout:
// nothing was received since both the timeout elapsed and the last send
// to it, so a node nobody has talked to never expires. With awaiting
// set — the caller has delivered end-of-stream and is waiting for the
// node's completion — plain silence expires: the node then owes frames
// (watermarks while draining, metrics at the end) regardless of send
// order.
func (d *Detector) Expired(i int, awaiting bool) bool {
	if d == nil || d.timeout <= 0 || i < 0 || i >= len(d.last) {
		return false
	}
	heard := d.last[i].Load()
	if !awaiting && d.sent[i].Load() <= heard {
		return false
	}
	return time.Now().UnixNano()-heard > int64(d.timeout)
}

// Failover is the record of one shard-block reassignment: which node
// slot died and why, what the successor replayed, and when it caught up.
type Failover struct {
	// Node is the ingress slot (and shard-block owner) that failed.
	Node int
	// Cause describes the detected failure.
	Cause string
	// DetectedAt is when the ingress declared the node dead.
	DetectedAt time.Time
	// SuppressUpTo is the release boundary shipped to the successor: it
	// suppressed every regenerated match tagged at or below it.
	SuppressUpTo uint64
	// ReplayUpTo is the watermark at which the successor had reprocessed
	// everything sealed before the failure.
	ReplayUpTo uint64
	// ReplayCuts/ReplayEvents/ReplayBytes measure the journaled history
	// replayed to the successor (the block's share, not the whole
	// journal).
	ReplayCuts   int
	ReplayEvents int
	ReplayBytes  int64
	// JournalBytes/JournalCuts snapshot the whole journal at failover
	// time (the retention cost that bought this recovery).
	JournalBytes int64
	JournalCuts  int
	// RecoveredAt is when the successor reported RecoveryDone (zero
	// while recovery is still in flight).
	RecoveredAt time.Time
}

// RecoveryTime is the detection-to-caught-up duration (0 while in
// flight).
func (f Failover) RecoveryTime() time.Duration {
	if f.RecoveredAt.IsZero() {
		return 0
	}
	return f.RecoveredAt.Sub(f.DetectedAt)
}
