package recovery

import (
	"sync/atomic"
	"time"
)

// nodeClock is one node's pair of heartbeat clocks.
type nodeClock struct {
	last atomic.Int64 // unix nanos of the last frame received
	sent atomic.Int64 // unix nanos of the last frame sent
}

// Detector is the heartbeat half of failure detection: it tracks, per
// node, when a frame was last received and when one was last sent, and
// declares a node suspect when it has been silent past the timeout
// *while being talked to* — a node owes a beat only after the ingress
// sent it something, so an idle or slow source never falsely kills a
// healthy fleet between cuts. Heartbeats piggyback on the frames nodes
// already send — every watermark is one, and nodes additionally
// acknowledge each cut on receipt, before processing it, so a
// loaded-but-alive node keeps beating while a hung or netsplit one
// falls silent. Transport errors bypass the detector entirely (they are
// definitive); the timeout exists for the failure modes that produce no
// error, like a machine dropping off the network mid-stream.
//
// Heard is called from the per-node reader goroutines, Sent and Expired
// from the ingress goroutine, and the clock set grows as nodes join a
// running cluster (Grow, ingress goroutine only): the slot slice is
// swapped atomically and existing clocks are shared between old and new
// slices, so concurrent readers stay coherent.
type Detector struct {
	timeout time.Duration
	clocks  atomic.Pointer[[]*nodeClock]
}

// NewDetector starts the clocks for n nodes. A zero (or negative)
// timeout disables timeout-based suspicion: Expired never fires and
// failures are detected through transport errors alone.
func NewDetector(n int, timeout time.Duration) *Detector {
	d := &Detector{timeout: timeout}
	now := time.Now().UnixNano()
	clocks := make([]*nodeClock, n)
	for i := range clocks {
		clocks[i] = &nodeClock{}
		clocks[i].last.Store(now)
	}
	d.clocks.Store(&clocks)
	return d
}

// Grow adds one node slot with a freshly started clock, returning its
// index. Ingress goroutine only.
func (d *Detector) Grow() int {
	old := *d.clocks.Load()
	clocks := make([]*nodeClock, len(old)+1)
	copy(clocks, old)
	c := &nodeClock{}
	c.last.Store(time.Now().UnixNano())
	clocks[len(old)] = c
	d.clocks.Store(&clocks)
	return len(old)
}

func (d *Detector) clock(i int) *nodeClock {
	if d == nil || i < 0 {
		return nil
	}
	clocks := *d.clocks.Load()
	if i >= len(clocks) {
		return nil
	}
	return clocks[i]
}

// Heard records a frame (or any other liveness proof) from node i.
func (d *Detector) Heard(i int) {
	if c := d.clock(i); c != nil {
		c.last.Store(time.Now().UnixNano())
	}
}

// Sent records a frame delivered to node i; the node now owes a beat.
func (d *Detector) Sent(i int) {
	if c := d.clock(i); c != nil {
		c.sent.Store(time.Now().UnixNano())
	}
}

// Expired reports whether node i has owed a beat past the timeout:
// nothing was received since both the timeout elapsed and the last send
// to it, so a node nobody has talked to never expires. With awaiting
// set — the caller has delivered end-of-stream and is waiting for the
// node's completion — plain silence expires: the node then owes frames
// (watermarks while draining, metrics at the end) regardless of send
// order.
func (d *Detector) Expired(i int, awaiting bool) bool {
	if d == nil || d.timeout <= 0 {
		return false
	}
	c := d.clock(i)
	if c == nil {
		return false
	}
	heard := c.last.Load()
	if !awaiting && c.sent.Load() <= heard {
		return false
	}
	return time.Now().UnixNano()-heard > int64(d.timeout)
}

// Migration is the record of one shard changing owner — the unit every
// routing change (failover, rebalance, scale-out handoff, drain) is
// built from: which shard moved between which ingress slots and why,
// what the destination replayed, and when it caught up.
type Migration struct {
	// Shard is the global shard index that moved.
	Shard int
	// From and To are the ingress slots the shard moved between (From is
	// -1 when the source slot was already torn down).
	From, To int
	// Reason labels what triggered the move: "failover", "rebalance",
	// "join", or "drain".
	Reason string
	// StartedAt is when the ingress froze the shard's merge source.
	StartedAt time.Time
	// SuppressUpTo is the release boundary shipped to the destination:
	// it suppresses every regenerated match tagged at or below it.
	SuppressUpTo uint64
	// ReplayUpTo is the watermark at which the destination has
	// reprocessed everything sealed before the move (0 when the shard
	// had no retained history).
	ReplayUpTo uint64
	// ReplayCuts/ReplayEvents/ReplayBytes measure the journaled history
	// replayed to the destination (the shard's share, not the whole
	// journal).
	ReplayCuts   int
	ReplayEvents int
	ReplayBytes  int64
	// CompletedAt is when the destination acknowledged the replay
	// horizon (zero while the migration is still in flight).
	CompletedAt time.Time
}

// Pause is the freeze-to-acknowledged duration of the move — how long
// the shard's deliveries were frozen at the merge collector (0 while in
// flight). Ingest on other shards never stops during it.
func (m Migration) Pause() time.Duration {
	if m.CompletedAt.IsZero() {
		return 0
	}
	return m.CompletedAt.Sub(m.StartedAt)
}

// Failover is the record of one node-death incident: which node slot
// died and why, the aggregate of the per-shard migrations that rebuilt
// its shards elsewhere, and when the last of them caught up.
type Failover struct {
	// Node is the ingress slot that failed.
	Node int
	// Cause describes the detected failure.
	Cause string
	// DetectedAt is when the ingress declared the node dead.
	DetectedAt time.Time
	// Shards counts the shards migrated off the dead slot.
	Shards int
	// SuppressUpTo is the release boundary shipped to the successors: it
	// suppressed every regenerated match tagged at or below it.
	SuppressUpTo uint64
	// ReplayUpTo is the highest watermark at which a successor had
	// reprocessed everything sealed before the failure.
	ReplayUpTo uint64
	// ReplayCuts/ReplayEvents/ReplayBytes sum the journaled history
	// replayed to the successors (the dead slot's share, not the whole
	// journal).
	ReplayCuts   int
	ReplayEvents int
	ReplayBytes  int64
	// JournalBytes/JournalCuts snapshot the whole journal at failover
	// time (the retention cost that bought this recovery).
	JournalBytes int64
	JournalCuts  int
	// RecoveredAt is when the last migrated shard acknowledged its
	// replay horizon (zero while recovery is still in flight).
	RecoveredAt time.Time
}

// RecoveryTime is the detection-to-caught-up duration (0 while in
// flight).
func (f Failover) RecoveryTime() time.Duration {
	if f.RecoveredAt.IsZero() {
		return 0
	}
	return f.RecoveredAt.Sub(f.DetectedAt)
}
