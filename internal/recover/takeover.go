package recovery

import "time"

// Takeover is the record of one coordinator-death incident: the standby
// ingress assuming the primary's cluster. Where a Failover rebuilds one
// node's shards on survivors, a Takeover rebuilds the coordinator
// itself — every worker connection is re-established, the merge
// collector is reconstructed at the replicated release boundary, and
// the mirrored journal replays the unacknowledged tail — so the fields
// measure the whole-cluster pause and the replication state the standby
// resumed from.
type Takeover struct {
	// Epoch is the fencing epoch the successor coordinator announced to
	// the workers (strictly greater than the dead primary's).
	Epoch uint64
	// Cause describes how the primary's death surfaced on the
	// replication link.
	Cause string
	// DetectedAt is when the standby observed the primary dead.
	DetectedAt time.Time
	// Boundary is the primary's replicated emitted-up-to watermark E*:
	// the successor suppresses every regenerated match tagged at or
	// below it, and the consumer-side skip count covers the rest.
	Boundary uint64
	// Skipped counts the regenerated matches above Boundary that the
	// primary had already delivered (its D − N*): the successor drops
	// exactly that many before resuming emission, closing the gap the
	// watermark alone cannot express.
	Skipped uint64
	// Workers counts the worker connections the successor
	// re-established; Redialed counts how many needed a fresh dial (the
	// rest were adopted from the standby pool).
	Workers  int
	Redialed int
	// ReplayCuts/ReplayEvents measure the mirrored journal tail the
	// successor replayed into the workers to rebuild in-flight state.
	ReplayCuts   int
	ReplayEvents int
	// RefedEvents counts the source events re-fed through the successor
	// ingress — those past the last mirrored cut, retained consumer-side
	// because the primary never acknowledged them.
	RefedEvents int
	// ResumedAt is when the successor delivered its first post-takeover
	// match or progress watermark (zero while takeover is in flight).
	ResumedAt time.Time
}

// Pause is the detection-to-resumption duration — how long the output
// stream stalled across the coordinator swap (0 while in flight).
func (t Takeover) Pause() time.Duration {
	if t.ResumedAt.IsZero() {
		return 0
	}
	return t.ResumedAt.Sub(t.DetectedAt)
}

// RecoveryTime is an alias for Pause, mirroring Failover's accessor so
// callers aggregate both record kinds uniformly.
func (t Takeover) RecoveryTime() time.Duration { return t.Pause() }

// Demotion is the record of a primary coordinator stepping down: it
// could not renew (or was fenced off) the single-writer emission lease,
// so it froze its emission gate rather than risk emitting a stream a
// successor might also emit. A demotion is the deliberate, safe half of
// a network partition — the complement of the successor's Takeover — and
// a demoted run that was never taken over must surface it as an error,
// never exit clean.
type Demotion struct {
	// At is when the primary froze its gate.
	At time.Time
	// Cause describes why the lease could not be held: a fence from a
	// higher-epoch holder, or an unreachable arbiter.
	Cause string
	// Epoch is the lease epoch the primary held while it was primary.
	Epoch uint64
	// Boundary and Count are the last emission state committed to the
	// lease before the demotion — exactly what a successor resumes from.
	Boundary uint64
	Count    uint64
}
