package recovery

import (
	"testing"
	"time"

	"acep/internal/event"
)

// j2 builds a 2-node, 4-shard journal with window 100 and events routed
// by their first attribute.
func j2(t *testing.T, maxBytes int64, slack int) *Journal {
	t.Helper()
	j, err := NewJournal(JournalConfig{
		Window: 100, Shards: 4, SlackWindows: slack, MaxBytes: maxBytes,
		Route: func(ev *event.Event) int { return int(ev.Attrs[0]) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// cutFor builds one two-node cut: each event is (ts, seq, shard).
func cutFor(evs ...[3]int64) [][]event.Event {
	perNode := make([][]event.Event, 2)
	for _, e := range evs {
		n := 0
		if e[2] >= 2 { // shards 2,3 live on node 1
			n = 1
		}
		perNode[n] = append(perNode[n], event.Event{
			TS: event.Time(e[0]), Seq: uint64(e[1]), Attrs: []float64{float64(e[2])},
		})
	}
	return perNode
}

func TestJournalValidation(t *testing.T) {
	if _, err := NewJournal(JournalConfig{Shards: 1, Route: func(*event.Event) int { return 0 }}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewJournal(JournalConfig{Window: 1, Route: func(*event.Event) int { return 0 }}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewJournal(JournalConfig{Window: 1, Shards: 1}); err == nil {
		t.Error("nil route accepted")
	}
}

// TestJournalTrim: released cuts trim once every shard's released
// frontier has moved a full slack horizon past them; unreleased cuts and
// cuts inside the horizon stay.
func TestJournalTrim(t *testing.T) {
	j := j2(t, 0, 2) // slack = 2*100+1 = 201
	j.Append(cutFor([3]int64{0, 1, 0}, [3]int64{5, 2, 2}), 2)
	j.Append(cutFor([3]int64{100, 3, 1}, [3]int64{110, 4, 3}), 4)
	j.Append(cutFor([3]int64{300, 5, 0}, [3]int64{310, 6, 2}), 6)
	j.Append(cutFor([3]int64{600, 7, 1}, [3]int64{610, 8, 3}), 8)
	if j.Cuts() != 4 || j.Events() != 8 {
		t.Fatalf("retained %d cuts / %d events, want 4/8", j.Cuts(), j.Events())
	}
	if j.Bytes() <= 0 {
		t.Fatal("no memory accounted")
	}

	// Releasing through seq 6 puts the frontier at relTS = {300, 100,
	// 310, 110}; horizon = 100 - 201 < 0, nothing trims yet (shards 1 and
	// 3 lag).
	j.Advance(6)
	if j.Cuts() != 4 {
		t.Fatalf("horizon behind laggiest shard, yet trimmed to %d cuts", j.Cuts())
	}

	// Releasing everything puts the frontier at relTS = {300, 600, 310,
	// 610}: min 300, horizon 99 — only the first cut (maxTS 5) has aged
	// out.
	j.Advance(8)
	if j.Cuts() != 3 {
		t.Fatalf("trimmed to %d cuts, want 3 (min frontier 300, horizon 99)", j.Cuts())
	}
	j.Append(cutFor([3]int64{900, 9, 0}, [3]int64{900, 10, 1}, [3]int64{900, 11, 2}, [3]int64{900, 12, 3}), 12)
	j.Advance(12)
	// Frontier now 900 on every shard; horizon 699 drops the cuts at
	// maxTS 110, 310 and 610, keeping only the 900 cut.
	if j.Cuts() != 1 {
		t.Fatalf("trimmed to %d cuts, want 1", j.Cuts())
	}
	if err := j.Covered(0, 4); err != nil {
		t.Fatalf("normal trim reported coverage loss: %v", err)
	}
}

// TestJournalReplay: replay yields exactly the retained cuts that carry
// the node's events, oldest first, with their watermarks.
func TestJournalReplay(t *testing.T) {
	j := j2(t, 0, 2)
	j.Append(cutFor([3]int64{0, 1, 0}), 1)                      // node 0 only
	j.Append(cutFor([3]int64{10, 2, 2}, [3]int64{11, 3, 3}), 3) // node 1 only
	j.Append(cutFor([3]int64{20, 4, 1}, [3]int64{21, 5, 2}), 5) // both

	var ups []uint64
	var n int
	err := j.Replay(1, func(evs []event.Event, upTo uint64) error {
		ups = append(ups, upTo)
		n += len(evs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 || ups[0] != 3 || ups[1] != 5 || n != 3 {
		t.Fatalf("replayed cuts %v (%d events), want [3 5] with 3 events", ups, n)
	}
	if up := j.ReplayUpTo(1); up != 5 {
		t.Fatalf("ReplayUpTo(1) = %d, want 5", up)
	}
	if up := j.ReplayUpTo(0); up != 5 {
		t.Fatalf("ReplayUpTo(0) = %d, want 5", up)
	}
	if j.LastUpTo() != 5 {
		t.Fatalf("LastUpTo = %d, want 5", j.LastUpTo())
	}
}

// TestJournalForceTrim: the byte bound evicts history past the safe
// horizon and Covered then refuses the affected block, while a block
// whose horizon survived stays recoverable.
func TestJournalForceTrim(t *testing.T) {
	j := j2(t, 600, 2) // a few events' worth
	for i := int64(0); i < 32; i++ {
		j.Append(cutFor([3]int64{i * 10, i + 1, i % 4}), uint64(i+1))
	}
	if j.Bytes() > 600 {
		t.Fatalf("byte bound not enforced: %d", j.Bytes())
	}
	if j.Cuts() >= 32 {
		t.Fatal("nothing force-trimmed")
	}
	if err := j.Covered(0, 4); err == nil {
		t.Fatal("coverage loss not reported after force-trim of unreleased history")
	}
}

// TestJournalAbandon: a degraded block's frozen frontier stops pinning
// the horizon once abandoned — history retained only for its sake trims
// away.
func TestJournalAbandon(t *testing.T) {
	j := j2(t, 0, 1) // slack = 101
	j.Append(cutFor([3]int64{0, 1, 2}), 1)
	j.Append(cutFor([3]int64{500, 2, 0}, [3]int64{500, 3, 1}), 3)
	j.Append(cutFor([3]int64{900, 4, 0}, [3]int64{900, 5, 1}), 5)
	j.Advance(5)
	// Shard 2 (node 1's block) released only its TS-0 event: the first
	// cut is pinned on its behalf.
	if j.Cuts() != 3 {
		t.Fatalf("retained %d cuts, want 3 (shard 2 pins the horizon)", j.Cuts())
	}
	j.Abandon(2, 2)
	// With shards 2-3 abandoned, the horizon is 900-101: the first two
	// cuts trim.
	if j.Cuts() != 1 {
		t.Fatalf("retained %d cuts after Abandon, want 1", j.Cuts())
	}
}

// TestJournalAliasesCuts: journaled slices alias the appended buffers
// (retention is the only memory cost) and empty cuts are skipped.
func TestJournalAliasesCuts(t *testing.T) {
	j := j2(t, 0, 1)
	evs := []event.Event{{TS: 1, Seq: 1, Attrs: []float64{0}}}
	j.Append([][]event.Event{evs, nil}, 1)
	j.Append([][]event.Event{nil, nil}, 2) // empty: skipped
	if j.Cuts() != 1 {
		t.Fatalf("%d cuts, want 1 (empty cut journaled)", j.Cuts())
	}
	j.Replay(0, func(got []event.Event, _ uint64) error {
		if &got[0] != &evs[0] {
			t.Error("journal copied the cut instead of aliasing it")
		}
		return nil
	})
}

// TestDetector: a node expires only when it owes a beat — silent past
// the timeout after a send — so frames reset the clock, an idle source
// (no sends) never kills anyone, and a zero timeout disables expiry.
func TestDetector(t *testing.T) {
	d := NewDetector(3, 30*time.Millisecond)
	if d.Expired(0, false) || d.Expired(1, false) || d.Expired(2, false) {
		t.Fatal("fresh detector already expired")
	}
	d.Sent(0)
	d.Sent(1)
	deadline := time.Now().Add(5 * time.Second)
	for !d.Expired(1, false) {
		d.Heard(0)
		d.Sent(0)
		if time.Now().After(deadline) {
			t.Fatal("silent node never expired")
		}
		time.Sleep(time.Millisecond)
	}
	if d.Expired(0, false) {
		t.Fatal("heartbeating node expired")
	}
	// Node 2 was never sent anything: it owes no beat, however long the
	// ingress idles...
	if d.Expired(2, false) {
		t.Fatal("idle node (nothing sent) expired")
	}
	// ...unless the caller awaits its completion: then silence alone
	// expires (a draining node beats through its watermarks).
	if !d.Expired(2, true) {
		t.Fatal("awaited silent node did not expire")
	}

	off := NewDetector(1, 0)
	off.Sent(0)
	time.Sleep(2 * time.Millisecond)
	if off.Expired(0, false) {
		t.Fatal("disabled detector expired")
	}
	if NewDetector(1, time.Hour).Expired(5, true) {
		t.Fatal("out-of-range node expired")
	}
}
