package recovery

import (
	"testing"
	"time"

	"acep/internal/event"
)

// j4 builds a 4-shard journal with window 100.
func j4(t *testing.T, maxBytes int64, slack int) *Journal {
	t.Helper()
	j, err := NewJournal(JournalConfig{
		Window: 100, Shards: 4, SlackWindows: slack, MaxBytes: maxBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// cutFor builds one per-shard cut: each event is (ts, seq, shard).
func cutFor(evs ...[3]int64) [][]event.Event {
	perShard := make([][]event.Event, 4)
	for _, e := range evs {
		g := int(e[2])
		perShard[g] = append(perShard[g], event.Event{
			TS: event.Time(e[0]), Seq: uint64(e[1]), Attrs: []float64{float64(e[2])},
		})
	}
	return perShard
}

func TestJournalValidation(t *testing.T) {
	if _, err := NewJournal(JournalConfig{Shards: 1}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewJournal(JournalConfig{Window: 1}); err == nil {
		t.Error("zero shards accepted")
	}
}

// TestJournalTrim: a shard's released slices trim once that shard's own
// frontier has moved a full slack horizon past them; unreleased slices
// and slices inside the horizon stay, and a cut vanishes when its last
// slice does.
func TestJournalTrim(t *testing.T) {
	j := j4(t, 0, 2) // slack = 2*100+1 = 201
	j.Append(cutFor([3]int64{0, 1, 0}, [3]int64{5, 2, 2}), 2)
	j.Append(cutFor([3]int64{100, 3, 1}, [3]int64{110, 4, 3}), 4)
	j.Append(cutFor([3]int64{300, 5, 0}, [3]int64{310, 6, 2}), 6)
	j.Append(cutFor([3]int64{600, 7, 1}, [3]int64{610, 8, 3}), 8)
	if j.Cuts() != 4 || j.Events() != 8 {
		t.Fatalf("retained %d cuts / %d events, want 4/8", j.Cuts(), j.Events())
	}
	if j.Bytes() <= 0 {
		t.Fatal("no memory accounted")
	}

	// Releasing through seq 6 puts the frontiers at {300, 100, 310, 110}:
	// the first cut's slices (TS 0 on shard 0, TS 5 on shard 2) are both
	// past their own shards' horizons (99 and 109) and drop, taking the
	// cut with them; every other slice is inside its horizon.
	j.Advance(6)
	if j.Cuts() != 3 {
		t.Fatalf("trimmed to %d cuts, want 3 (first cut aged out per shard)", j.Cuts())
	}

	// Releasing everything moves shards 1 and 3 to {600, 610}: the second
	// cut's slices (TS 100 and 110) age out behind horizons 399 and 409.
	// Shards 0 and 2 did not move, so the third cut stays.
	j.Advance(8)
	if j.Cuts() != 2 {
		t.Fatalf("trimmed to %d cuts, want 2 (cut 2 aged out, cut 3 pinned)", j.Cuts())
	}
	j.Append(cutFor([3]int64{900, 9, 0}, [3]int64{900, 10, 1}, [3]int64{900, 11, 2}, [3]int64{900, 12, 3}), 12)
	j.Advance(12)
	// Frontier now 900 on every shard; horizon 699 drops everything older,
	// keeping only the 900 cut.
	if j.Cuts() != 1 {
		t.Fatalf("trimmed to %d cuts, want 1", j.Cuts())
	}
	if err := j.Covered(0, 4); err != nil {
		t.Fatalf("normal trim reported coverage loss: %v", err)
	}
}

// TestJournalTrimSkew is the retention-under-skew regression: a cold
// shard with one ancient slice must pin only that slice — the hot
// shard's history keeps trimming on its own frontier, so a byte bound
// that whole-cut retention would have blown (forcing coverage loss)
// is never even approached.
func TestJournalTrimSkew(t *testing.T) {
	j, err := NewJournal(JournalConfig{
		Window: 100, Shards: 2, SlackWindows: 1, MaxBytes: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The cold shard's only traffic, released immediately: frontier 0.
	j.Append([][]event.Event{nil, {{TS: 0, Seq: 1, Attrs: []float64{1}}}}, 1)
	j.Advance(1)
	// 100 hot cuts on shard 0, each released as soon as sealed. Retaining
	// them all would cost ~5.6 KiB — past MaxBytes — so under whole-cut
	// retention the cold slice would have force-trimmed coverage away.
	for i := int64(0); i < 100; i++ {
		j.Append([][]event.Event{{{TS: event.Time(i * 50), Seq: uint64(i + 2), Attrs: []float64{0}}}, nil}, uint64(i+2))
		j.Advance(uint64(i + 2))
	}
	// Horizon 101 behind a frontier stepping by 50: at most a few hot
	// slices live at any time, plus the pinned cold one.
	if j.Cuts() > 6 {
		t.Fatalf("retained %d cuts; hot shard not trimming on its own frontier", j.Cuts())
	}
	if err := j.CoveredShard(0); err != nil {
		t.Fatalf("hot shard lost coverage: %v", err)
	}
	if err := j.CoveredShard(1); err != nil {
		t.Fatalf("cold shard lost coverage: %v", err)
	}
	// The cold shard's slice itself must still be replayable.
	var cold int
	j.ReplayShard(1, func(evs []event.Event, _ uint64) error {
		cold += len(evs)
		return nil
	})
	if cold != 1 {
		t.Fatalf("cold shard replayed %d events, want its 1 pinned event", cold)
	}
}

// TestJournalReplay: per-shard replay yields exactly the retained cuts
// carrying that shard's events, oldest first, passing only that shard's
// slices.
func TestJournalReplay(t *testing.T) {
	j := j4(t, 0, 2)
	j.Append(cutFor([3]int64{0, 1, 0}), 1)
	j.Append(cutFor([3]int64{10, 2, 2}, [3]int64{11, 3, 3}), 3)
	j.Append(cutFor([3]int64{20, 4, 1}, [3]int64{21, 5, 2}), 5)

	var ups []uint64
	var n int
	err := j.ReplayShard(2, func(evs []event.Event, upTo uint64) error {
		ups = append(ups, upTo)
		n += len(evs)
		for i := range evs {
			if evs[i].Attrs[0] != 2 {
				t.Errorf("replay of shard 2 leaked an event of shard %v", evs[i].Attrs[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 || ups[0] != 3 || ups[1] != 5 || n != 2 {
		t.Fatalf("replayed cuts %v (%d events), want [3 5] with 2 events", ups, n)
	}
	if up := j.ReplayUpToShard(2); up != 5 {
		t.Fatalf("ReplayUpToShard(2) = %d, want 5", up)
	}
	if up := j.ReplayUpToShard(0); up != 1 {
		t.Fatalf("ReplayUpToShard(0) = %d, want 1", up)
	}
	if up := j.ReplayUpToShard(3); up != 3 {
		t.Fatalf("ReplayUpToShard(3) = %d, want 3", up)
	}
	if j.LastUpTo() != 5 {
		t.Fatalf("LastUpTo = %d, want 5", j.LastUpTo())
	}
}

// TestJournalForceTrim: the byte bound evicts history past the safe
// horizon and Covered then refuses the affected shards.
func TestJournalForceTrim(t *testing.T) {
	j := j4(t, 600, 2) // a few events' worth
	for i := int64(0); i < 32; i++ {
		j.Append(cutFor([3]int64{i * 10, i + 1, i % 4}), uint64(i+1))
	}
	if j.Bytes() > 600 {
		t.Fatalf("byte bound not enforced: %d", j.Bytes())
	}
	if j.Cuts() >= 32 {
		t.Fatal("nothing force-trimmed")
	}
	if err := j.Covered(0, 4); err == nil {
		t.Fatal("coverage loss not reported after force-trim of unreleased history")
	}
}

// TestJournalAbandon: an abandoned shard's frozen frontier stops pinning
// history — slices retained only for its sake trim away.
func TestJournalAbandon(t *testing.T) {
	j := j4(t, 0, 1) // slack = 101
	j.Append(cutFor([3]int64{0, 1, 2}), 1)
	j.Append(cutFor([3]int64{500, 2, 0}, [3]int64{500, 3, 1}), 3)
	j.Append(cutFor([3]int64{900, 4, 0}, [3]int64{900, 5, 1}), 5)
	j.Advance(5)
	// Shards 0 and 1 released through TS 900, so their TS-500 slices aged
	// out; shard 2's TS-0 slice pins the first cut (frontier 0).
	if j.Cuts() != 2 {
		t.Fatalf("retained %d cuts, want 2 (shard 2 pins its own cut)", j.Cuts())
	}
	j.Abandon(2, 2)
	if j.Cuts() != 1 {
		t.Fatalf("retained %d cuts after Abandon, want 1", j.Cuts())
	}
}

// TestJournalAliasesCuts: journaled slices alias the appended buffers
// (retention is the only memory cost) and all-empty cuts are skipped.
func TestJournalAliasesCuts(t *testing.T) {
	j := j4(t, 0, 1)
	evs := []event.Event{{TS: 1, Seq: 1, Attrs: []float64{0}}}
	j.Append([][]event.Event{evs, nil}, 1)
	j.Append([][]event.Event{nil, nil}, 2) // empty: skipped
	if j.Cuts() != 1 {
		t.Fatalf("%d cuts, want 1 (empty cut journaled)", j.Cuts())
	}
	j.ReplayShard(0, func(got []event.Event, _ uint64) error {
		if &got[0] != &evs[0] {
			t.Error("journal copied the cut instead of aliasing it")
		}
		return nil
	})
}

// TestDetector: a node expires only when it owes a beat — silent past
// the timeout after a send — so frames reset the clock, an idle source
// (no sends) never kills anyone, and a zero timeout disables expiry.
func TestDetector(t *testing.T) {
	d := NewDetector(3, 30*time.Millisecond)
	if d.Expired(0, false) || d.Expired(1, false) || d.Expired(2, false) {
		t.Fatal("fresh detector already expired")
	}
	d.Sent(0)
	d.Sent(1)
	deadline := time.Now().Add(5 * time.Second)
	for !d.Expired(1, false) {
		d.Heard(0)
		d.Sent(0)
		if time.Now().After(deadline) {
			t.Fatal("silent node never expired")
		}
		time.Sleep(time.Millisecond)
	}
	if d.Expired(0, false) {
		t.Fatal("heartbeating node expired")
	}
	// Node 2 was never sent anything: it owes no beat, however long the
	// ingress idles...
	if d.Expired(2, false) {
		t.Fatal("idle node (nothing sent) expired")
	}
	// ...unless the caller awaits its completion: then silence alone
	// expires (a draining node beats through its watermarks).
	if !d.Expired(2, true) {
		t.Fatal("awaited silent node did not expire")
	}

	off := NewDetector(1, 0)
	off.Sent(0)
	time.Sleep(2 * time.Millisecond)
	if off.Expired(0, false) {
		t.Fatal("disabled detector expired")
	}
	if NewDetector(1, time.Hour).Expired(5, true) {
		t.Fatal("out-of-range node expired")
	}
}

// TestDetectorGrow: slots added to a live detector start with a fresh
// clock and share the existing clocks with concurrent readers.
func TestDetectorGrow(t *testing.T) {
	d := NewDetector(1, time.Hour)
	if got := d.Grow(); got != 1 {
		t.Fatalf("Grow returned slot %d, want 1", got)
	}
	if d.Expired(1, false) {
		t.Fatal("freshly grown slot already expired")
	}
	d.Sent(1)
	d.Heard(1)
	if d.Expired(1, false) {
		t.Fatal("grown slot expired after a beat")
	}
}
