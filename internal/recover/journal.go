// Package recovery is the fault-tolerance and elasticity subsystem of
// the distributed cluster layer (internal/cluster): the pieces that let
// an ingress move a shard between nodes — because its host died, or
// because a placement controller decided to — without losing or
// duplicating a single match. (The directory is internal/recover; the
// package is named recovery so importers do not shadow the built-in
// recover.)
//
// The design exploits the paper's per-partition adaptation argument
// (§7): a shard engine's match output depends only on the events of its
// partition inside the pattern window, never on evaluator state older
// than that — plans change performance, not semantics. A shard is
// therefore movable by replaying its recent history into a fresh engine
// on the destination; no evaluator-state serialization is needed. Three
// parts make that concrete:
//
//   - Journal — a bounded ring of sealed ingress cuts retaining, per
//     global shard, at least two pattern windows of history behind that
//     shard's released (delivered) frontier: one window because any
//     undelivered match's events lie within a window of its emission
//     point, and a second because negation scopes and parked (residual)
//     matches reach one further window back. Retention is per shard —
//     a cold shard trims on its own clock instead of pinning every
//     sibling's history. Memory is accounted explicitly; a hard byte
//     bound force-trims with an explicit per-shard coverage-lost marker
//     rather than growing silently.
//   - Detector — a wall-clock heartbeat monitor fed by the frames each
//     node sends (watermarks double as heartbeats; nodes additionally
//     acknowledge every cut on receipt), declaring a silent node dead
//     after a configurable timeout. Transport errors bypass it (they
//     are definitive); it grows as nodes join a running cluster.
//   - Migration / Failover — the per-shard and per-incident records:
//     what moved or died, why, how much was replayed, and when the
//     destination caught up.
//
// The ingress-side orchestration (freezing the shard's merge source,
// the wire Migrate handshake, replay, suppression of already-released
// matches) lives in internal/cluster; this package holds the mechanism
// and its accounting.
package recovery

import (
	"fmt"

	"acep/internal/event"
)

// perEventBytes approximates the fixed in-memory footprint of one
// journaled event (struct header plus slice bookkeeping); attribute
// payloads are accounted at 8 bytes each on top.
const perEventBytes = 48

// DefaultMaxBytes bounds the journal at 256 MiB unless configured.
const DefaultMaxBytes = 256 << 20

// DefaultSlackWindows is the retention horizon in pattern windows behind
// a shard's released frontier. Two windows are exactly sufficient: an
// undelivered match's own events span at most one window back from its
// emission point, and its residual scopes (negated events that could
// veto it, Kleene events that belong in it) reach at most one window
// further.
const DefaultSlackWindows = 2

// JournalConfig assembles a Journal.
type JournalConfig struct {
	// Window is the pattern's time window (required, positive).
	Window event.Time
	// Shards is the global shard count (required). Cuts arrive and trim
	// per global shard: each shard's own released frontier decides what
	// of its history is safe to drop, so one laggy or cold shard no
	// longer pins every other shard's retention.
	Shards int
	// SlackWindows overrides the retention horizon (default 2). One
	// window is sufficient for residual-free patterns (pure sequences
	// and conjunctions); below two, negation scopes and parked matches
	// may outrun the journal.
	SlackWindows int
	// MaxBytes is the hard memory bound (default DefaultMaxBytes). When
	// exceeded the oldest cuts are trimmed regardless of the horizon and
	// the journal records, per shard, the coverage loss; a later
	// migration whose replay would have needed the trimmed history fails
	// explicitly instead of delivering a silently incomplete stream.
	MaxBytes int64
}

// cutRecord is one sealed ingress cut: every global shard's events in
// arrival order (evs[g] nil when the shard had none, or after its slice
// trimmed away) plus the global watermark the cut covers.
type cutRecord struct {
	upTo  uint64
	evs   [][]event.Event
	bytes int64
}

// EventsBytes accounts a slice of events with the journal's memory
// formula (fixed overhead plus attribute payload).
func EventsBytes(evs []event.Event) int64 {
	b := int64(len(evs)) * perEventBytes
	for i := range evs {
		b += 8 * int64(len(evs[i].Attrs))
	}
	return b
}

// lastTS is a slice's newest timestamp; per-shard slices are in arrival
// (hence timestamp) order, so the last event is the newest.
func lastTS(evs []event.Event) event.Time { return evs[len(evs)-1].TS }

// Journal is the ingress's cut journal. It is confined to the ingress
// goroutine (no internal locking): Append seals cuts, Advance folds the
// released watermark and trims, ReplayShard feeds a migration. The
// journaled event slices alias the per-shard cut buffers the ingress
// already sent — both sides treat them as immutable — so retention, not
// copying, is the journal's only memory cost.
type Journal struct {
	cfg   JournalConfig
	slack event.Time // retention horizon behind a shard's released frontier

	cuts     []cutRecord // oldest first; cuts[:folded] are released
	bytes    int64
	events   int
	lastUp   uint64
	relSeq   uint64
	folded   int // cuts already folded into the released frontiers
	relTS    []event.Time
	relSeen  []bool
	excluded []bool // abandoned shards: history dropped, never replayed

	forced   []bool // MaxBytes force-trimmed into this shard's safe horizon
	forcedTS []event.Time
}

// NewJournal validates the configuration.
func NewJournal(cfg JournalConfig) (*Journal, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("recovery: journal needs a positive pattern window, got %d", cfg.Window)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("recovery: journal needs the global shard count, got %d", cfg.Shards)
	}
	if cfg.SlackWindows <= 0 {
		cfg.SlackWindows = DefaultSlackWindows
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	return &Journal{
		cfg:      cfg,
		slack:    event.Time(cfg.SlackWindows)*cfg.Window + 1,
		relTS:    make([]event.Time, cfg.Shards),
		relSeen:  make([]bool, cfg.Shards),
		excluded: make([]bool, cfg.Shards),
		forced:   make([]bool, cfg.Shards),
		forcedTS: make([]event.Time, cfg.Shards),
	}, nil
}

// AbandonShard drops shard g from the journal: its slot was given up
// with no successor, so no replay will ever need its history again. Its
// retained slices free immediately and future cuts for it are not
// retained.
func (j *Journal) AbandonShard(g int) {
	if g >= 0 && g < len(j.excluded) {
		j.excluded[g] = true
	}
	j.trim()
}

// Abandon drops shard block [base, base+shards) (see AbandonShard).
func (j *Journal) Abandon(base, shards int) {
	for g := base; g < base+shards && g < len(j.excluded); g++ {
		j.excluded[g] = true
	}
	j.trim()
}

// Append seals one cut: perShard holds each global shard's events of
// the cut in arrival order (the journal aliases the slices; they must
// not be mutated afterwards), upTo is the cut's global watermark.
// All-empty cuts are skipped. Exceeding MaxBytes force-trims oldest
// cuts and marks the affected shards' coverage as lost from that point.
func (j *Journal) Append(perShard [][]event.Event, upTo uint64) {
	var bytes int64
	n := 0
	for g, evs := range perShard {
		if len(evs) == 0 || (g < len(j.excluded) && j.excluded[g]) {
			continue
		}
		n += len(evs)
		bytes += EventsBytes(evs)
	}
	if n == 0 {
		return
	}
	rec := cutRecord{upTo: upTo, bytes: bytes, evs: make([][]event.Event, len(perShard))}
	for g, evs := range perShard {
		if len(evs) == 0 || (g < len(j.excluded) && j.excluded[g]) {
			continue
		}
		rec.evs[g] = evs
	}
	j.cuts = append(j.cuts, rec)
	j.bytes += bytes
	j.events += n
	j.lastUp = upTo
	for j.bytes > j.cfg.MaxBytes && len(j.cuts) > 1 {
		j.forceTrimOldest()
	}
}

// EachCut visits every retained cut oldest-first with its per-shard
// event slices and watermark — the serialization walk a standby uses to
// hand its mirror to a takeover successor over the wire (trimmed shard
// slices visit as nil). The slices are the journal's retained storage:
// callers must not mutate them or call other Journal methods from fn.
func (j *Journal) EachCut(fn func(perShard [][]event.Event, upTo uint64) error) error {
	for k := range j.cuts {
		if err := fn(j.cuts[k].evs, j.cuts[k].upTo); err != nil {
			return err
		}
	}
	return nil
}

// Advance folds the released (delivered) watermark into the per-shard
// frontiers and trims every slice no undelivered or future match can
// reach: released slices whose newest event is more than the slack
// horizon behind their own shard's released frontier.
func (j *Journal) Advance(relSeq uint64) {
	if relSeq <= j.relSeq {
		j.trim()
		return
	}
	j.relSeq = relSeq
	for j.folded < len(j.cuts) && j.cuts[j.folded].upTo <= relSeq {
		for g, evs := range j.cuts[j.folded].evs {
			if len(evs) == 0 || g >= len(j.relTS) {
				continue
			}
			j.relTS[g] = lastTS(evs)
			j.relSeen[g] = true
		}
		j.folded++
	}
	j.trim()
}

// droppable reports whether shard g's slice with newest timestamp ts is
// past its own retention horizon (or the shard is abandoned).
func (j *Journal) droppable(g int, ts event.Time) bool {
	if g < len(j.excluded) && j.excluded[g] {
		return true
	}
	if g >= len(j.relTS) || !j.relSeen[g] {
		return false
	}
	return ts < j.relTS[g]-j.slack
}

// trim drops, slice by slice, the history no replay can need: within
// released cuts, each shard's slice goes as soon as that shard's own
// frontier moves past it (abandoned shards' slices go anywhere). Cuts
// whose every slice dropped are compacted away.
func (j *Journal) trim() {
	changed := false
	for k := range j.cuts {
		released := k < j.folded
		for g, evs := range j.cuts[k].evs {
			if len(evs) == 0 {
				continue
			}
			excl := g < len(j.excluded) && j.excluded[g]
			if !excl && (!released || !j.droppable(g, lastTS(evs))) {
				continue
			}
			j.dropSlice(k, g)
			changed = true
		}
	}
	if changed {
		j.compact()
	}
}

// dropSlice releases one shard's slice of one cut.
func (j *Journal) dropSlice(k, g int) {
	evs := j.cuts[k].evs[g]
	b := EventsBytes(evs)
	j.cuts[k].bytes -= b
	j.bytes -= b
	j.events -= len(evs)
	j.cuts[k].evs[g] = nil
}

// compact removes cuts whose every slice has been dropped.
func (j *Journal) compact() {
	w := 0
	for k := range j.cuts {
		empty := true
		for _, evs := range j.cuts[k].evs {
			if len(evs) > 0 {
				empty = false
				break
			}
		}
		if empty {
			if k < j.folded {
				j.folded--
			}
			continue
		}
		j.cuts[w] = j.cuts[k]
		w++
	}
	j.cuts = j.cuts[:w]
}

// forceTrimOldest drops the oldest cut whole to honor MaxBytes,
// recording, per shard still holding a slice inside its safe horizon,
// that coverage was lost.
func (j *Journal) forceTrimOldest() {
	c := &j.cuts[0]
	for g, evs := range c.evs {
		if len(evs) == 0 {
			continue
		}
		ts := lastTS(evs)
		if g < len(j.forced) && (!j.droppable(g, ts) || c.upTo > j.relSeq) {
			j.forced[g] = true
			if ts > j.forcedTS[g] {
				j.forcedTS[g] = ts
			}
		}
		j.dropSlice(0, g)
	}
	j.cuts = append(j.cuts[:0], j.cuts[1:]...)
	if j.folded > 0 {
		j.folded--
	}
}

// CoveredShard reports whether the retained journal still holds
// everything a migration of shard g needs — i.e. whether MaxBytes
// force-trimming ever cut into that shard's safe horizon.
func (j *Journal) CoveredShard(g int) error {
	if g < 0 || g >= len(j.forced) || !j.forced[g] {
		return nil
	}
	if !j.relSeen[g] {
		// The shard never released an event; everything undelivered must
		// be replayable, and its history has been force-trimmed.
		return fmt.Errorf("recovery: journal overflowed (%d bytes cap) before shard %d released anything; replay would be incomplete",
			j.cfg.MaxBytes, g)
	}
	if j.forcedTS[g] >= j.relTS[g]-j.slack {
		return fmt.Errorf("recovery: journal overflowed (%d bytes cap) and trimmed into shard %d's replay horizon; raise MaxBytes or shrink the window",
			j.cfg.MaxBytes, g)
	}
	return nil
}

// Covered reports whether every shard of block [base, base+shards) is
// still fully replayable (see CoveredShard).
func (j *Journal) Covered(base, shards int) error {
	for g := base; g < base+shards; g++ {
		if err := j.CoveredShard(g); err != nil {
			return err
		}
	}
	return nil
}

// ReplayShard walks the retained cuts that still carry events for
// shard g, oldest first, stopping on the first error.
func (j *Journal) ReplayShard(g int, fn func(events []event.Event, upTo uint64) error) error {
	for _, c := range j.cuts {
		if g >= len(c.evs) || len(c.evs[g]) == 0 {
			continue
		}
		if err := fn(c.evs[g], c.upTo); err != nil {
			return err
		}
	}
	return nil
}

// ReplayUpToShard is the watermark of the newest retained cut carrying
// events for shard g — the point at which a destination replaying the
// shard has caught up with everything sealed before the migration
// (0 if none).
func (j *Journal) ReplayUpToShard(g int) uint64 {
	for k := len(j.cuts) - 1; k >= 0; k-- {
		if g < len(j.cuts[k].evs) && len(j.cuts[k].evs[g]) > 0 {
			return j.cuts[k].upTo
		}
	}
	return 0
}

// Bytes reports the accounted memory of the retained cuts.
func (j *Journal) Bytes() int64 { return j.bytes }

// Cuts reports the number of retained cuts.
func (j *Journal) Cuts() int { return len(j.cuts) }

// Events reports the number of retained events.
func (j *Journal) Events() int { return j.events }

// LastUpTo is the watermark of the newest sealed cut (0 before any).
func (j *Journal) LastUpTo() uint64 { return j.lastUp }
