// Package recovery is the fault-tolerance subsystem of the distributed
// cluster layer (internal/cluster): the pieces that let an ingress
// survive a worker-node death without losing or duplicating a single
// match. (The directory is internal/recover; the package is named
// recovery so importers do not shadow the built-in recover.)
//
// The design exploits the paper's per-partition adaptation argument
// (§7): a shard engine's match output depends only on the events of its
// partition inside the pattern window, never on evaluator state older
// than that — plans change performance, not semantics. A dead node's
// shard block is therefore rebuildable by replaying recent history into
// a fresh engine; no evaluator-state serialization is needed. Three
// parts make that concrete:
//
//   - Journal — a bounded ring of sealed ingress cuts retaining, per
//     global shard, at least two pattern windows of history behind the
//     released (delivered) watermark: one window because any undelivered
//     match's events lie within a window of its emission point, and a
//     second because negation scopes and parked (residual) matches reach
//     one further window back. Memory is accounted explicitly; cuts trim
//     on watermark advance, and a hard byte bound force-trims with an
//     explicit coverage-lost marker rather than growing silently.
//   - Detector — a wall-clock heartbeat monitor fed by the frames each
//     node sends (watermarks double as heartbeats; nodes additionally
//     acknowledge every cut on receipt), declaring a silent node dead
//     after a configurable timeout. Transport errors detect immediately
//     regardless.
//   - Failover — the per-incident record: what died, when, how much was
//     replayed, and when the successor caught up.
//
// The ingress-side orchestration (standby adoption, the wire Reassign
// handshake, collector re-registration, suppression of already-released
// matches) lives in internal/cluster; this package holds the mechanism
// and its accounting.
package recovery

import (
	"fmt"

	"acep/internal/event"
)

// perEventBytes approximates the fixed in-memory footprint of one
// journaled event (struct header plus slice bookkeeping); attribute
// payloads are accounted at 8 bytes each on top.
const perEventBytes = 48

// DefaultMaxBytes bounds the journal at 256 MiB unless configured.
const DefaultMaxBytes = 256 << 20

// DefaultSlackWindows is the retention horizon in pattern windows behind
// the released frontier. Two windows are exactly sufficient: an
// undelivered match's own events span at most one window back from its
// emission point, and its residual scopes (negated events that could
// veto it, Kleene events that belong in it) reach at most one window
// further.
const DefaultSlackWindows = 2

// JournalConfig assembles a Journal.
type JournalConfig struct {
	// Window is the pattern's time window (required, positive).
	Window event.Time
	// Shards is the global shard count; Route maps an event to its
	// global shard index (both required). The per-shard released frontier
	// decides what is safe to trim — node granularity would under-retain
	// for a shard idling behind a busy sibling.
	Shards int
	Route  func(*event.Event) int
	// SlackWindows overrides the retention horizon (default 2). One
	// window is sufficient for residual-free patterns (pure sequences
	// and conjunctions); below two, negation scopes and parked matches
	// may outrun the journal.
	SlackWindows int
	// MaxBytes is the hard memory bound (default DefaultMaxBytes). When
	// exceeded the oldest cuts are trimmed regardless of the horizon and
	// the journal records the coverage loss; a later failover whose
	// replay would have needed them fails explicitly instead of
	// delivering a silently incomplete stream.
	MaxBytes int64
}

// cutRecord is one sealed ingress cut: every node's events in arrival
// order plus the global watermark the cut covers.
type cutRecord struct {
	upTo    uint64
	maxTS   event.Time
	perNode [][]event.Event
	bytes   int64
}

// EventsBytes accounts a slice of events with the journal's memory
// formula (fixed overhead plus attribute payload).
func EventsBytes(evs []event.Event) int64 {
	b := int64(len(evs)) * perEventBytes
	for i := range evs {
		b += 8 * int64(len(evs[i].Attrs))
	}
	return b
}

// Journal is the ingress's cut journal. It is confined to the ingress
// goroutine (no internal locking): Append seals cuts, Advance folds the
// released watermark and trims, Replay feeds a successor. The journaled
// event slices alias the cut buffers the ingress already sent — both
// sides treat them as immutable — so retention, not copying, is the
// journal's only memory cost.
type Journal struct {
	cfg   JournalConfig
	slack event.Time // retention horizon behind the released frontier

	cuts     []cutRecord // oldest first; cuts[:folded] are released
	bytes    int64
	events   int
	lastUp   uint64
	relSeq   uint64
	folded   int // cuts already folded into the released frontier
	relTS    []event.Time
	relSeen  []bool
	excluded []bool // abandoned shards: ignored by the retention horizon

	forced   bool // MaxBytes force-trimmed past the safe horizon
	forcedTS event.Time
}

// NewJournal validates the configuration.
func NewJournal(cfg JournalConfig) (*Journal, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("recovery: journal needs a positive pattern window, got %d", cfg.Window)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("recovery: journal needs the global shard count, got %d", cfg.Shards)
	}
	if cfg.Route == nil {
		return nil, fmt.Errorf("recovery: journal needs the shard route function")
	}
	if cfg.SlackWindows <= 0 {
		cfg.SlackWindows = DefaultSlackWindows
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	return &Journal{
		cfg:      cfg,
		slack:    event.Time(cfg.SlackWindows)*cfg.Window + 1,
		relTS:    make([]event.Time, cfg.Shards),
		relSeen:  make([]bool, cfg.Shards),
		excluded: make([]bool, cfg.Shards),
	}, nil
}

// Abandon excludes shard block [base, base+shards) from the retention
// horizon: its slot was given up with no successor, so no replay will
// ever need its history again. Without this, the dead block's frozen
// released frontier would pin the horizon and the journal would grow to
// MaxBytes for the rest of the run.
func (j *Journal) Abandon(base, shards int) {
	for g := base; g < base+shards && g < len(j.excluded); g++ {
		j.excluded[g] = true
	}
	j.trim()
}

// Append seals one cut: perNode holds each node's events of the cut in
// arrival order (the journal aliases the slices; they must not be
// mutated afterwards), upTo is the cut's global watermark. All-empty
// cuts are skipped. Exceeding MaxBytes force-trims oldest cuts and marks
// coverage as lost from that point.
func (j *Journal) Append(perNode [][]event.Event, upTo uint64) {
	var bytes int64
	var maxTS event.Time
	n := 0
	for _, evs := range perNode {
		if len(evs) == 0 {
			continue
		}
		// Events per node are in arrival (hence timestamp) order, so the
		// node's newest is its last.
		if ts := evs[len(evs)-1].TS; n == 0 || ts > maxTS {
			maxTS = ts
		}
		n += len(evs)
		for i := range evs {
			bytes += perEventBytes + 8*int64(len(evs[i].Attrs))
		}
	}
	if n == 0 {
		return
	}
	rec := cutRecord{upTo: upTo, maxTS: maxTS, bytes: bytes}
	rec.perNode = append(rec.perNode, perNode...)
	j.cuts = append(j.cuts, rec)
	j.bytes += bytes
	j.events += n
	j.lastUp = upTo
	for j.bytes > j.cfg.MaxBytes && len(j.cuts) > 1 {
		j.forceTrimOldest()
	}
}

// Advance folds the released (delivered) watermark into the per-shard
// frontier and trims every cut that no undelivered or future match can
// reach: released cuts whose newest event is more than the slack horizon
// behind every shard's released frontier.
func (j *Journal) Advance(relSeq uint64) {
	if relSeq <= j.relSeq {
		j.trim()
		return
	}
	j.relSeq = relSeq
	for j.folded < len(j.cuts) && j.cuts[j.folded].upTo <= relSeq {
		for _, evs := range j.cuts[j.folded].perNode {
			for i := range evs {
				g := j.cfg.Route(&evs[i])
				if g >= 0 && g < len(j.relTS) {
					j.relTS[g] = evs[i].TS
					j.relSeen[g] = true
				}
			}
		}
		j.folded++
	}
	j.trim()
}

// horizon is the oldest event timestamp any undelivered or future match
// can still reference: the slack behind the laggiest shard's released
// frontier. The second value is false while no shard has released an
// event yet (nothing is trimmable then).
func (j *Journal) horizon() (event.Time, bool) {
	min, any := event.Time(0), false
	for g, seen := range j.relSeen {
		if !seen || j.excluded[g] {
			continue
		}
		if !any || j.relTS[g] < min {
			min = j.relTS[g]
		}
		any = true
	}
	if !any {
		return 0, false
	}
	return min - j.slack, true
}

func (j *Journal) trim() {
	h, ok := j.horizon()
	if !ok {
		return
	}
	k := 0
	for k < j.folded && j.cuts[k].maxTS < h {
		j.drop(k)
		k++
	}
	if k > 0 {
		j.cuts = append(j.cuts[:0], j.cuts[k:]...)
		j.folded -= k
	}
}

// forceTrimOldest drops the oldest cut to honor MaxBytes, recording the
// coverage loss when the cut was still inside the safe horizon.
func (j *Journal) forceTrimOldest() {
	c := j.cuts[0]
	if h, ok := j.horizon(); !ok || c.maxTS >= h || c.upTo > j.relSeq {
		j.forced = true
		if c.maxTS > j.forcedTS {
			j.forcedTS = c.maxTS
		}
	}
	j.drop(0)
	j.cuts = append(j.cuts[:0], j.cuts[1:]...)
	if j.folded > 0 {
		j.folded--
	}
}

func (j *Journal) drop(k int) {
	j.bytes -= j.cuts[k].bytes
	for _, evs := range j.cuts[k].perNode {
		j.events -= len(evs)
	}
}

// Covered reports whether the retained journal still holds everything a
// failover of node block [base, base+shards) needs — i.e. whether
// MaxBytes force-trimming ever cut into that block's safe horizon.
func (j *Journal) Covered(base, shards int) error {
	if !j.forced {
		return nil
	}
	needed := event.Time(0)
	any := false
	for g := base; g < base+shards && g < len(j.relTS); g++ {
		if !j.relSeen[g] {
			continue
		}
		if !any || j.relTS[g] < needed {
			needed = j.relTS[g]
		}
		any = true
	}
	if !any {
		// The block never released an event; everything undelivered must
		// be replayable, and history has been force-trimmed.
		return fmt.Errorf("recovery: journal overflowed (%d bytes cap) before shard block [%d,%d) released anything; replay would be incomplete",
			j.cfg.MaxBytes, base, base+shards)
	}
	if j.forcedTS >= needed-j.slack {
		return fmt.Errorf("recovery: journal overflowed (%d bytes cap) and trimmed into shard block [%d,%d)'s replay horizon; raise MaxBytes or shrink the window",
			j.cfg.MaxBytes, base, base+shards)
	}
	return nil
}

// Replay walks the retained cuts that carry events for node, oldest
// first, stopping on the first error.
func (j *Journal) Replay(node int, fn func(events []event.Event, upTo uint64) error) error {
	for _, c := range j.cuts {
		if node >= len(c.perNode) || len(c.perNode[node]) == 0 {
			continue
		}
		if err := fn(c.perNode[node], c.upTo); err != nil {
			return err
		}
	}
	return nil
}

// ReplayUpTo is the watermark of the newest retained cut carrying events
// for node — the point at which a successor replaying the block has
// caught up with everything sealed before the failure (0 if none).
func (j *Journal) ReplayUpTo(node int) uint64 {
	for k := len(j.cuts) - 1; k >= 0; k-- {
		if node < len(j.cuts[k].perNode) && len(j.cuts[k].perNode[node]) > 0 {
			return j.cuts[k].upTo
		}
	}
	return 0
}

// Bytes reports the accounted memory of the retained cuts.
func (j *Journal) Bytes() int64 { return j.bytes }

// Cuts reports the number of retained cuts.
func (j *Journal) Cuts() int { return len(j.cuts) }

// Events reports the number of retained events.
func (j *Journal) Events() int { return j.events }

// LastUpTo is the watermark of the newest sealed cut (0 before any).
func (j *Journal) LastUpTo() uint64 { return j.lastUp }
