package stats

import (
	"math"
	"testing"
)

// TestQuantileSmall: with fewer observations than the cap, estimates are
// exact nearest-rank quantiles.
func TestQuantileSmall(t *testing.T) {
	var q Quantile
	for i := 100; i >= 1; i-- { // reversed, order must not matter
		q.Add(float64(i))
	}
	if q.Count() != 100 {
		t.Fatalf("count = %d, want 100", q.Count())
	}
	if got := q.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := q.Quantile(1); got != 100 {
		t.Errorf("p1 = %v, want 100", got)
	}
	if got := q.Quantile(0.5); math.Abs(got-50) > 1 {
		t.Errorf("p50 = %v, want ~50", got)
	}
}

// TestQuantileEmpty: the zero value reports zero everywhere.
func TestQuantileEmpty(t *testing.T) {
	var q Quantile
	if q.Quantile(0.5) != 0 || q.Count() != 0 {
		t.Fatal("empty estimator should report zeros")
	}
}

// TestQuantileDecimation: far more observations than the cap still yield
// accurate estimates on a uniform ramp, and the reservoir stays bounded.
func TestQuantileDecimation(t *testing.T) {
	var q Quantile
	const n = 100000
	for i := 0; i < n; i++ {
		q.Add(float64(i))
	}
	if len(q.Samples()) >= quantileCap {
		t.Fatalf("reservoir %d not bounded by %d", len(q.Samples()), quantileCap)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got := q.Quantile(p)
		want := p * n
		if math.Abs(got-want) > 0.02*n {
			t.Errorf("p%v = %v, want ~%v", p, got, want)
		}
	}
}

// TestQuantileDeterministic: identical observation sequences yield
// identical estimates (the determinism contract).
func TestQuantileDeterministic(t *testing.T) {
	var a, b Quantile
	for i := 0; i < 10000; i++ {
		v := float64((i * 2654435761) % 1000)
		a.Add(v)
		b.Add(v)
	}
	for _, p := range []float64{0.1, 0.5, 0.99} {
		if a.Quantile(p) != b.Quantile(p) {
			t.Fatalf("p%v diverged: %v vs %v", p, a.Quantile(p), b.Quantile(p))
		}
	}
}

// TestQuantileMerge: merging per-worker estimators approximates the
// pooled distribution.
func TestQuantileMerge(t *testing.T) {
	var lo, hi Quantile
	for i := 0; i < 5000; i++ {
		lo.Add(float64(i % 100))     // 0..99
		hi.Add(float64(100 + i%100)) // 100..199
	}
	var m Quantile
	m.Merge(&lo)
	m.Merge(&hi)
	if m.Count() != 10000 {
		t.Fatalf("merged count = %d, want 10000", m.Count())
	}
	if got := m.Quantile(0.5); math.Abs(got-100) > 15 {
		t.Errorf("merged p50 = %v, want ~100", got)
	}
	if got := m.Quantile(0.99); math.Abs(got-198) > 6 {
		t.Errorf("merged p99 = %v, want ~198", got)
	}
}

// TestQuantileRestore: Count/Samples round-trip through RestoreQuantile
// (the wire codec path) and the restored estimator keeps estimating.
func TestQuantileRestore(t *testing.T) {
	var q Quantile
	for i := 0; i < 1000; i++ {
		q.Add(float64(i))
	}
	r := RestoreQuantile(q.Count(), q.Samples())
	if r.Count() != q.Count() {
		t.Fatalf("restored count = %d, want %d", r.Count(), q.Count())
	}
	if r.Quantile(0.5) != q.Quantile(0.5) {
		t.Fatalf("restored p50 = %v, want %v", r.Quantile(0.5), q.Quantile(0.5))
	}
	r.Add(5) // must not panic; estimator stays live
}
