package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acep/internal/event"
)

func TestNewEHValidation(t *testing.T) {
	if _, err := NewEH(0, 0.1); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewEH(100, 0); err == nil {
		t.Error("zero eps accepted")
	}
	if _, err := NewEH(100, 1.5); err == nil {
		t.Error("eps > 1 accepted")
	}
	h, err := NewEH(100, 0.05)
	if err != nil {
		t.Fatalf("NewEH: %v", err)
	}
	if h.Window() != 100 {
		t.Errorf("Window = %d", h.Window())
	}
}

func TestEHEmpty(t *testing.T) {
	h, _ := NewEH(1000, 0.1)
	if got := h.Count(500); got != 0 {
		t.Errorf("empty Count = %g", got)
	}
	if got := h.Rate(500); got != 0 {
		t.Errorf("empty Rate = %g", got)
	}
}

func TestEHExactSmall(t *testing.T) {
	// With few events, no merging beyond r happens and the estimate is
	// close to exact (only the oldest bucket is discounted).
	h, _ := NewEH(event.Time(1000), 0.01)
	for ts := event.Time(1); ts <= 10; ts++ {
		h.Add(ts)
	}
	got := h.Count(10)
	if got < 9 || got > 10 {
		t.Errorf("Count = %g; want within [9,10]", got)
	}
}

func TestEHExpiry(t *testing.T) {
	h, _ := NewEH(event.Time(100), 0.1)
	for ts := event.Time(1); ts <= 50; ts++ {
		h.Add(ts)
	}
	// At now=500 every event has left the window (ts <= now-window).
	if got := h.Count(500); got != 0 {
		t.Errorf("Count after expiry = %g; want 0", got)
	}
	if h.Buckets() != 0 {
		t.Errorf("buckets after expiry = %d; want 0", h.Buckets())
	}
}

func TestEHErrorBound(t *testing.T) {
	// Relative error of the windowed count must stay within eps for
	// several regimes (uniform, bursty, sparse).
	regimes := []struct {
		name string
		gap  func(r *rand.Rand) event.Time
	}{
		{"uniform", func(r *rand.Rand) event.Time { return 1 }},
		{"random", func(r *rand.Rand) event.Time { return event.Time(1 + r.Intn(5)) }},
		{"bursty", func(r *rand.Rand) event.Time {
			if r.Intn(10) == 0 {
				return 50
			}
			return 1
		}},
	}
	const window = event.Time(5000)
	const eps = 0.05
	for _, reg := range regimes {
		r := rand.New(rand.NewSource(7))
		h, _ := NewEH(window, eps)
		var times []event.Time
		now := event.Time(0)
		for i := 0; i < 20000; i++ {
			now += reg.gap(r)
			h.Add(now)
			times = append(times, now)
			if i%512 == 0 && i > 0 {
				exact := 0
				for _, ts := range times {
					if ts > now-window {
						exact++
					}
				}
				got := h.Count(now)
				if exact > 0 {
					rel := math.Abs(got-float64(exact)) / float64(exact)
					if rel > eps*1.01 {
						t.Fatalf("%s: at %d events rel err %.4f > eps %.2f (est %.1f exact %d)",
							reg.name, i, rel, eps, got, exact)
					}
				}
			}
		}
	}
}

func TestEHSpaceLogarithmic(t *testing.T) {
	h, _ := NewEH(event.Time(1<<20), 0.05)
	for ts := event.Time(1); ts <= 1<<17; ts++ {
		h.Add(ts)
	}
	// r ~ 11 for eps=0.05; sizes up to 2^17 -> ~18 size classes.
	if h.Buckets() > 11*20 {
		t.Errorf("buckets = %d; want O(r log N)", h.Buckets())
	}
}

func TestEHRate(t *testing.T) {
	// 1 event per ms over a 2-second window = 1000 events/sec.
	h, _ := NewEH(2*event.Second, 0.01)
	for ts := event.Time(1); ts <= 4000; ts++ {
		h.Add(ts)
	}
	got := h.Rate(4000)
	if math.Abs(got-1000)/1000 > 0.02 {
		t.Errorf("Rate = %g; want ~1000", got)
	}
}

func TestEHCountQuick(t *testing.T) {
	// Property: for any positive gap sequence, estimate error stays
	// within the configured bound.
	f := func(gaps []uint8) bool {
		if len(gaps) < 10 {
			return true
		}
		const window = event.Time(300)
		const eps = 0.1
		h, _ := NewEH(window, eps)
		var times []event.Time
		now := event.Time(0)
		for _, g := range gaps {
			now += event.Time(g%16) + 1
			h.Add(now)
			times = append(times, now)
		}
		exact := 0
		for _, ts := range times {
			if ts > now-window {
				exact++
			}
		}
		got := h.Count(now)
		if exact == 0 {
			return got == 0
		}
		return math.Abs(got-float64(exact))/float64(exact) <= eps*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
