package stats

import (
	"acep/internal/event"
	"acep/internal/pattern"
)

// Exact computes a precise Snapshot from a finite slice of events, with
// rates measured over the span of the slice and selectivities evaluated
// exhaustively over all event pairs. It is the ground truth against which
// the streaming estimators are tested, and a convenient way to seed an
// engine with a-priori statistics.
//
// Events need not be sorted. An empty slice yields zero rates and unit
// selectivities.
func Exact(pat *pattern.Pattern, events []event.Event) *Snapshot {
	n := pat.NumPositions()
	s := NewSnapshot(n)
	if len(events) == 0 {
		return s
	}
	minTS, maxTS := events[0].TS, events[0].TS
	byPos := make([][]*event.Event, n)
	for idx := range events {
		ev := &events[idx]
		if ev.TS < minTS {
			minTS = ev.TS
		}
		if ev.TS > maxTS {
			maxTS = ev.TS
		}
		for i, pos := range pat.Positions {
			if pos.Type == ev.Type {
				byPos[i] = append(byPos[i], ev)
			}
		}
	}
	span := float64(maxTS-minTS) / float64(event.Second)
	if span <= 0 {
		span = 1
	}
	for i := 0; i < n; i++ {
		s.Rates[i] = float64(len(byPos[i])) / span
	}
	selOf := func(k int) float64 {
		pr := &pat.Preds[k]
		var pass, total int
		if pr.IsUnary() {
			for _, ev := range byPos[pr.L] {
				total++
				if pr.Eval(ev, nil) {
					pass++
				}
			}
		} else {
			for _, el := range byPos[pr.L] {
				for _, er := range byPos[pr.R] {
					total++
					if pr.Eval(el, er) {
						pass++
					}
				}
			}
		}
		if total == 0 {
			return 1
		}
		return float64(pass) / float64(total)
	}
	for i := 0; i < n; i++ {
		for _, k := range pat.PredsAt(i) {
			s.Sel[i][i] *= selOf(k)
		}
		for j := i + 1; j < n; j++ {
			v := 1.0
			for _, k := range pat.PredsBetween(i, j) {
				v *= selOf(k)
			}
			s.SetSym(i, j, v)
		}
	}
	return s
}
