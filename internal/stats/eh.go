// Package stats maintains the data-stream statistics that drive plan
// generation and adaptation decisions: per-position event arrival rates
// and inter-event predicate selectivities, estimated over sliding windows.
//
// Arrival rates use the exponential-histogram algorithm of Datar, Gionis,
// Indyk and Motwani ("Maintaining stream statistics over sliding windows",
// SIAM J. Comput. 2002) — the paper's reference [27] — which counts the
// events of a type inside a sliding time window with bounded relative
// error in O(log^2 N) space. Selectivities are estimated by evaluating
// each pattern predicate over pairs drawn from small rings of recent
// events, smoothed with an exponential moving average.
//
// A Snapshot is an immutable copy of all estimates at one instant; it is
// the only statistics type the planner and decision layers see.
package stats

import (
	"fmt"
	"math"

	"acep/internal/event"
)

// EH counts ones over a sliding time window with bounded relative error,
// per Datar et al. Buckets hold power-of-two counts with the timestamp of
// their most recent element; at most r buckets of each size are kept, and
// overflow merges the two oldest buckets of that size into one of twice
// the size. The count estimate drops half of the oldest (straddling)
// bucket, giving relative error at most 1/(2(r-1)).
type EH struct {
	window event.Time
	r      int // max buckets per size before merge
	// buckets is ordered oldest first; sizes are non-increasing oldest to
	// newest.
	buckets []ehBucket
	total   uint64 // sum of bucket sizes
}

type ehBucket struct {
	size uint64
	ts   event.Time // timestamp of the newest element in the bucket
}

// NewEH builds a sliding-window counter with the given window width and
// target relative error eps (0 < eps <= 1).
func NewEH(window event.Time, eps float64) (*EH, error) {
	if window <= 0 {
		return nil, fmt.Errorf("stats: EH window must be positive, got %d", window)
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("stats: EH eps must be in (0,1], got %g", eps)
	}
	r := int(math.Ceil(1/(2*eps))) + 1
	if r < 2 {
		r = 2
	}
	return &EH{window: window, r: r}, nil
}

// Add records one event at timestamp ts. Timestamps must be non-decreasing.
func (h *EH) Add(ts event.Time) {
	h.expire(ts)
	h.buckets = append(h.buckets, ehBucket{size: 1, ts: ts})
	h.total++
	// Cascade merges from the newest size upward. Buckets of equal size
	// are contiguous because sizes are non-increasing oldest-to-newest.
	end := len(h.buckets)
	size := uint64(1)
	for {
		// Find the run [start, end) of buckets with the current size.
		start := end
		for start > 0 && h.buckets[start-1].size == size {
			start--
		}
		if end-start <= h.r {
			break
		}
		// Merge the two oldest buckets of this size (start, start+1):
		// the merged bucket keeps the newer timestamp.
		h.buckets[start+1].size = 2 * size
		h.buckets = append(h.buckets[:start], h.buckets[start+1:]...)
		end = start + 1
		size *= 2
	}
}

// expire drops buckets that have fully left the window ending at now.
func (h *EH) expire(now event.Time) {
	cut := 0
	for cut < len(h.buckets) && h.buckets[cut].ts <= now-h.window {
		h.total -= h.buckets[cut].size
		cut++
	}
	if cut > 0 {
		h.buckets = h.buckets[cut:]
	}
}

// Count estimates the number of events with timestamps in (now-window,
// now]. The estimate discounts half of the oldest bucket, which may
// straddle the window boundary.
func (h *EH) Count(now event.Time) float64 {
	h.expire(now)
	if len(h.buckets) == 0 {
		return 0
	}
	return float64(h.total) - float64(h.buckets[0].size-1)/2
}

// Rate estimates the arrival rate in events per second over the window
// ending at now.
func (h *EH) Rate(now event.Time) float64 {
	secs := float64(h.window) / float64(event.Second)
	if secs <= 0 {
		return 0
	}
	return h.Count(now) / secs
}

// Buckets reports the current number of buckets (for tests and
// introspection of the space bound).
func (h *EH) Buckets() int { return len(h.buckets) }

// Window returns the window width the counter was built with.
func (h *EH) Window() event.Time { return h.window }
