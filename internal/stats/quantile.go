package stats

import "sort"

// quantileCap bounds the reservoir of a Quantile. 512 samples put the
// worst-case p99 rank error near 1/512 of the retained distribution,
// plenty for the observability use (latency p50/p99 in Metrics).
const quantileCap = 512

// Quantile is a bounded, deterministic streaming quantile estimator: it
// keeps the first quantileCap observations verbatim, then halves the
// reservoir and doubles a keep-stride every time it refills, so the
// retained samples are an evenly spaced systematic sample of the
// observation sequence. No randomness is involved — two identical
// observation sequences yield identical estimates — matching the
// library-wide determinism contract (see internal/shed).
//
// The zero value is an empty estimator ready for use. Quantile is not
// safe for concurrent use; each writer owns its own and folds them
// together with Merge (the shard layer merges per-worker estimators into
// the stream-wide Metrics view).
type Quantile struct {
	count   uint64    // observations offered
	stride  uint64    // keep every stride-th observation (power of two)
	ticker  uint64    // observations since the last kept one
	samples []float64 // systematic sample of the observations
}

// Add offers one observation.
func (q *Quantile) Add(v float64) {
	q.count++
	if q.stride == 0 {
		q.stride = 1
	}
	q.ticker++
	if q.ticker < q.stride {
		return
	}
	q.ticker = 0
	q.samples = append(q.samples, v)
	if len(q.samples) >= quantileCap {
		q.decimate()
	}
}

// decimate halves the reservoir (keeping every other sample) and doubles
// the stride, preserving the even spacing of retained observations.
func (q *Quantile) decimate() {
	half := q.samples[:0]
	for i := 1; i < len(q.samples); i += 2 {
		half = append(half, q.samples[i])
	}
	q.samples = half
	q.stride *= 2
}

// Count reports the number of observations offered (not retained).
func (q *Quantile) Count() uint64 { return q.count }

// Quantile estimates the p-quantile (p in [0,1]) of the observation
// distribution by nearest-rank over the retained sample. It returns 0
// when nothing has been observed.
func (q *Quantile) Quantile(p float64) float64 {
	if len(q.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), q.samples...)
	sort.Float64s(s)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	i := int(p * float64(len(s)-1))
	return s[i]
}

// Merge folds another estimator's retained samples into q. The combined
// reservoir decimates back under the cap, so merging many estimators
// stays bounded; the merged estimate weights each source by its retained
// sample count (sources of similar volume merge faithfully).
func (q *Quantile) Merge(o *Quantile) {
	if o.count == 0 {
		return
	}
	q.count += o.count
	if q.stride == 0 {
		q.stride = 1
	}
	if o.stride > q.stride {
		q.stride = o.stride
	}
	q.samples = append(q.samples, o.samples...)
	for len(q.samples) >= quantileCap {
		q.decimate()
	}
}

// Samples exposes the retained reservoir (wire codec use; do not mutate).
func (q *Quantile) Samples() []float64 { return q.samples }

// RestoreQuantile rebuilds an estimator from a transported count and
// reservoir (the inverse of Count/Samples, used by the wire codec). The
// restored estimator continues to accept observations.
func RestoreQuantile(count uint64, samples []float64) Quantile {
	q := Quantile{count: count, stride: 1, samples: append([]float64(nil), samples...)}
	for len(q.samples) >= quantileCap {
		q.decimate()
	}
	return q
}
