package stats

import (
	"fmt"
	"strings"
)

// Snapshot is an immutable copy of all statistics for one pattern at one
// instant: per-position arrival rates and the combined selectivity of the
// predicates between every pair of positions. It is the STAT argument of
// the paper's reoptimizing decision function D and of the plan generation
// algorithm A.
//
// Indexing is by pattern position (not by event type): Rates[i] is the
// arrival rate of the type at position i in events/second, Sel[i][j]
// (i != j) is the product of the selectivities of the binary predicates
// between positions i and j, and Sel[i][i] is the product of the unary
// predicate selectivities at position i.
//
// Contract: Sel[i][j] must equal exactly 1 whenever no predicate connects
// positions i and j. Cost models and recorded invariant expressions rely
// on this to skip predicate-free pairs; the Estimator maintains it by
// construction, and hand-built snapshots must respect it.
type Snapshot struct {
	Rates []float64
	Sel   [][]float64
	// Version increases with every snapshot taken by an Estimator, letting
	// consumers detect staleness cheaply.
	Version uint64
}

// NewSnapshot allocates an n-position snapshot with unit selectivities and
// zero rates.
func NewSnapshot(n int) *Snapshot {
	s := &Snapshot{
		Rates: make([]float64, n),
		Sel:   make([][]float64, n),
	}
	for i := range s.Sel {
		s.Sel[i] = make([]float64, n)
		for j := range s.Sel[i] {
			s.Sel[i][j] = 1
		}
	}
	return s
}

// N reports the number of positions covered.
func (s *Snapshot) N() int { return len(s.Rates) }

// Clone deep-copies the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{
		Rates:   append([]float64(nil), s.Rates...),
		Sel:     make([][]float64, len(s.Sel)),
		Version: s.Version,
	}
	for i := range s.Sel {
		c.Sel[i] = append([]float64(nil), s.Sel[i]...)
	}
	return c
}

// SetSym sets Sel[i][j] and Sel[j][i].
func (s *Snapshot) SetSym(i, j int, v float64) {
	s.Sel[i][j] = v
	s.Sel[j][i] = v
}

// Flatten appends all statistic values (rates, then the upper selectivity
// triangle including the diagonal) to dst and returns it. The constant-
// threshold baseline policy compares flattened vectors; the layout is
// stable for a given n.
func (s *Snapshot) Flatten(dst []float64) []float64 {
	dst = append(dst, s.Rates...)
	for i := 0; i < len(s.Sel); i++ {
		for j := i; j < len(s.Sel[i]); j++ {
			dst = append(dst, s.Sel[i][j])
		}
	}
	return dst
}

// String renders the snapshot compactly for diagnostics.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stats{v%d rates=%.3v", s.Version, s.Rates)
	b.WriteString(" sel=[")
	for i := range s.Sel {
		for j := i; j < len(s.Sel[i]); j++ {
			if s.Sel[i][j] != 1 {
				fmt.Fprintf(&b, " %d,%d:%.3g", i, j, s.Sel[i][j])
			}
		}
	}
	b.WriteString(" ]}")
	return b.String()
}
