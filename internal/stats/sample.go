package stats

import "acep/internal/event"

// sampleRing keeps the most recent events observed for one pattern
// position. Selectivity estimation evaluates predicates over pairs drawn
// from two rings; keeping the latest events (rather than a uniform
// reservoir) matches the sliding-window spirit of the other estimators
// and is deterministic, which the tests rely on.
type sampleRing struct {
	buf  []event.Event
	next int
	full bool
}

func newSampleRing(capacity int) *sampleRing {
	if capacity < 1 {
		capacity = 1
	}
	return &sampleRing{buf: make([]event.Event, capacity)}
}

// add records an event (copied by value).
func (r *sampleRing) add(ev *event.Event) {
	r.buf[r.next] = *ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// len reports how many events are currently held.
func (r *sampleRing) len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// at returns the i-th held event (0 <= i < len), oldest first.
func (r *sampleRing) at(i int) *event.Event {
	if !r.full {
		return &r.buf[i]
	}
	return &r.buf[(r.next+i)%len(r.buf)]
}
