package stats

import (
	"math"
	"math/rand"
	"testing"

	"acep/internal/event"
	"acep/internal/pattern"
)

func estSchema() *event.Schema {
	s := event.NewSchema()
	s.MustAddType("A", "x")
	s.MustAddType("B", "x")
	s.MustAddType("C", "x")
	return s
}

func estPattern(s *event.Schema) *pattern.Pattern {
	b := pattern.NewBuilder(s, pattern.Seq, 10*event.Second)
	a := b.EventName("A")
	bb := b.EventName("B")
	c := b.EventName("C")
	b.WhereEq(a, "x", bb, "x")
	b.WhereConst(c, "x", pattern.GT, 0.5)
	return b.MustBuild()
}

func TestNewEstimatorRejectsOr(t *testing.T) {
	s := estSchema()
	mk := func() *pattern.Pattern {
		b := pattern.NewBuilder(s, pattern.Seq, event.Second)
		b.EventName("A")
		return b.MustBuild()
	}
	or, _ := pattern.NewOr(mk(), mk())
	if _, err := NewEstimator(or, Config{}); err == nil {
		t.Fatal("estimator accepted OR pattern")
	}
}

func TestEstimatorRates(t *testing.T) {
	s := estSchema()
	pat := estPattern(s)
	e, err := NewEstimator(pat, Config{Window: 2 * event.Second})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	// A: every 10ms (100/s), B: every 20ms (50/s), C: every 100ms (10/s).
	var seq uint64
	emit := func(typ int, ts event.Time) {
		ev := s.MustNew(typ, ts, 1)
		ev.Seq = seq
		seq++
		e.Observe(&ev)
	}
	for ts := event.Time(0); ts < 4000; ts += 10 {
		emit(0, ts)
		if ts%20 == 0 {
			emit(1, ts)
		}
		if ts%100 == 0 {
			emit(2, ts)
		}
	}
	snap := e.Snapshot(4000)
	want := []float64{100, 50, 10}
	for i, w := range want {
		if math.Abs(snap.Rates[i]-w)/w > 0.15 {
			t.Errorf("rate[%d] = %.1f; want ~%.0f", i, snap.Rates[i], w)
		}
	}
	if snap.Version != 1 {
		t.Errorf("version = %d; want 1", snap.Version)
	}
	if e.Snapshot(4000).Version != 2 {
		t.Error("version must increase per snapshot")
	}
}

func TestEstimatorSelectivities(t *testing.T) {
	s := estSchema()
	pat := estPattern(s)
	e, _ := NewEstimator(pat, Config{Window: 5 * event.Second, Alpha: 1, SampleSize: 32})
	r := rand.New(rand.NewSource(42))
	var seq uint64
	emit := func(typ int, ts event.Time, x float64) {
		ev := s.MustNew(typ, ts, x)
		ev.Seq = seq
		seq++
		e.Observe(&ev)
	}
	// A.x and B.x drawn uniformly from {0..9}: P(eq) = 0.1.
	// C.x uniform in [0,1): P(>0.5) = 0.5.
	for ts := event.Time(0); ts < 3000; ts += 5 {
		emit(0, ts, float64(r.Intn(10)))
		emit(1, ts+1, float64(r.Intn(10)))
		emit(2, ts+2, r.Float64())
	}
	snap := e.Snapshot(3000)
	if got := snap.Sel[0][1]; math.Abs(got-0.1) > 0.06 {
		t.Errorf("sel(A,B) = %.3f; want ~0.1", got)
	}
	if got := snap.Sel[1][0]; got != snap.Sel[0][1] {
		t.Error("Sel must be symmetric")
	}
	if got := snap.Sel[2][2]; math.Abs(got-0.5) > 0.2 {
		t.Errorf("unary sel(C) = %.3f; want ~0.5", got)
	}
	if got := snap.Sel[0][2]; got != 1 {
		t.Errorf("sel(A,C) = %.3f; want 1 (no predicate)", got)
	}
}

func TestEstimatorEWMA(t *testing.T) {
	s := estSchema()
	pat := estPattern(s)
	e, _ := NewEstimator(pat, Config{Alpha: 0.5, SampleSize: 8})
	var seq uint64
	emit := func(typ int, ts event.Time, x float64) {
		ev := s.MustNew(typ, ts, x)
		ev.Seq = seq
		seq++
		e.Observe(&ev)
	}
	// Phase 1: A.x == B.x always -> sel 1.
	for ts := event.Time(0); ts < 100; ts += 5 {
		emit(0, ts, 1)
		emit(1, ts, 1)
	}
	e.Snapshot(100)
	first := e.PredSelectivity(0)
	if first < 0.99 {
		t.Fatalf("phase-1 sel = %.3f; want ~1", first)
	}
	// Phase 2: never equal -> raw 0 (floored), EWMA pulls halfway.
	for ts := event.Time(100); ts < 200; ts += 5 {
		emit(0, ts, 1)
		emit(1, ts, 2)
	}
	e.Snapshot(200)
	second := e.PredSelectivity(0)
	if second > 0.51 || second < 0.4 {
		t.Fatalf("phase-2 sel = %.3f; want ~0.5 after one EWMA step", second)
	}
}

func TestEstimatorMinSelFloor(t *testing.T) {
	s := estSchema()
	pat := estPattern(s)
	e, _ := NewEstimator(pat, Config{Alpha: 1, MinSel: 0.01, SampleSize: 8})
	var seq uint64
	for ts := event.Time(0); ts < 100; ts += 5 {
		ev := s.MustNew(0, ts, 1)
		ev.Seq = seq
		seq++
		e.Observe(&ev)
		ev2 := s.MustNew(1, ts, 2)
		ev2.Seq = seq
		seq++
		e.Observe(&ev2)
	}
	snap := e.Snapshot(100)
	if got := snap.Sel[0][1]; got != 0.01 {
		t.Errorf("floored sel = %g; want 0.01", got)
	}
}

func TestEstimatorUnseenKeepsOptimistic(t *testing.T) {
	s := estSchema()
	pat := estPattern(s)
	e, _ := NewEstimator(pat, Config{})
	snap := e.Snapshot(1000)
	if snap.Sel[0][1] != 1 || snap.Sel[2][2] != 1 {
		t.Error("selectivities with no data must stay 1")
	}
	if snap.Rates[0] != 0 {
		t.Error("rates with no data must be 0")
	}
}

func TestExactMatchesConstruction(t *testing.T) {
	s := estSchema()
	pat := estPattern(s)
	var events []event.Event
	var seq uint64
	add := func(typ int, ts event.Time, x float64) {
		ev := s.MustNew(typ, ts, x)
		ev.Seq = seq
		seq++
		events = append(events, ev)
	}
	// Over 10 seconds: 20 As, 10 Bs, 5 Cs.
	for i := 0; i < 20; i++ {
		add(0, event.Time(i)*500, float64(i%2)) // x alternates 0,1
	}
	for i := 0; i < 10; i++ {
		add(1, event.Time(i)*1000, 0) // x always 0
	}
	for i := 0; i < 5; i++ {
		add(2, event.Time(i)*2000, float64(i)) // x = 0..4; >0.5 for 4 of 5
	}
	snap := Exact(pat, events)
	// Span is 9500ms = 9.5s.
	if math.Abs(snap.Rates[0]-20/9.5) > 1e-9 {
		t.Errorf("rate[A] = %g", snap.Rates[0])
	}
	// P(A.x == B.x): A.x is 0 half the time, B.x always 0 -> 0.5.
	if math.Abs(snap.Sel[0][1]-0.5) > 1e-9 {
		t.Errorf("sel(A,B) = %g; want 0.5", snap.Sel[0][1])
	}
	if math.Abs(snap.Sel[2][2]-0.8) > 1e-9 {
		t.Errorf("unary sel(C) = %g; want 0.8", snap.Sel[2][2])
	}
}

func TestExactEmpty(t *testing.T) {
	s := estSchema()
	pat := estPattern(s)
	snap := Exact(pat, nil)
	if snap.Rates[0] != 0 || snap.Sel[0][1] != 1 {
		t.Error("empty Exact must be zero rates, unit sels")
	}
}

func TestSnapshotCloneAndFlatten(t *testing.T) {
	snap := NewSnapshot(3)
	snap.Rates[0] = 5
	snap.SetSym(0, 1, 0.25)
	c := snap.Clone()
	c.Rates[0] = 99
	c.Sel[0][1] = 0.5
	if snap.Rates[0] != 5 || snap.Sel[0][1] != 0.25 {
		t.Error("Clone must deep-copy")
	}
	flat := snap.Flatten(nil)
	// 3 rates + 6 upper-triangle sels.
	if len(flat) != 9 {
		t.Fatalf("Flatten len = %d; want 9", len(flat))
	}
	if flat[0] != 5 {
		t.Error("Flatten rates first")
	}
	// Sel[0][1] is the second selectivity entry (after Sel[0][0]).
	if flat[4] != 0.25 {
		t.Errorf("flat = %v", flat)
	}
}

func TestSnapshotString(t *testing.T) {
	snap := NewSnapshot(2)
	snap.SetSym(0, 1, 0.5)
	if s := snap.String(); s == "" {
		t.Error("empty String()")
	}
}
