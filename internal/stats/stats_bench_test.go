package stats

import (
	"testing"

	"acep/internal/event"
)

// BenchmarkEHAdd measures the per-event cost of the sliding-window
// counter (paid once per event per pattern position).
func BenchmarkEHAdd(b *testing.B) {
	h, _ := NewEH(10*event.Second, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(event.Time(i))
	}
}

// BenchmarkEHCount measures the windowed-count estimate.
func BenchmarkEHCount(b *testing.B) {
	h, _ := NewEH(10*event.Second, 0.05)
	for i := 0; i < 100000; i++ {
		h.Add(event.Time(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Count(100000) < 0 {
			b.Fatal("negative count")
		}
	}
}

// BenchmarkSnapshot measures a full statistics refresh (selectivity
// re-evaluation over the sample rings plus rate reads) — the per-check
// cost of the adaptation loop's statistics component.
func BenchmarkSnapshot(b *testing.B) {
	s := estSchema()
	pat := estPattern(s)
	e, _ := NewEstimator(pat, Config{})
	var seq uint64
	for ts := event.Time(0); ts < 10000; ts += 5 {
		for typ := 0; typ < 3; typ++ {
			ev := s.MustNew(typ, ts, float64(ts%7))
			seq++
			ev.Seq = seq
			e.Observe(&ev)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := e.Snapshot(10000); snap == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// BenchmarkObserve measures the per-event estimator cost.
func BenchmarkObserve(b *testing.B) {
	s := estSchema()
	pat := estPattern(s)
	e, _ := NewEstimator(pat, Config{})
	ev := s.MustNew(0, 1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.TS = event.Time(i)
		e.Observe(&ev)
	}
}
