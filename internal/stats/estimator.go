package stats

import (
	"fmt"

	"acep/internal/event"
	"acep/internal/pattern"
)

// Config tunes an Estimator. The zero value is usable: Defaults are
// applied by NewEstimator.
type Config struct {
	// Window is the statistics window; zero defaults to 20x the pattern
	// window, large enough that per-type counts are statistically stable
	// while still tracking regime changes quickly. Rates and
	// selectivities describe the stream over this trailing interval.
	Window event.Time
	// EHEps is the relative-error target of the exponential histograms
	// (default 0.05).
	EHEps float64
	// SampleSize is the per-position recent-event ring capacity used for
	// selectivity estimation (default 24).
	SampleSize int
	// Alpha is the EWMA smoothing factor for selectivities in (0,1]
	// (default 0.5; 1 disables smoothing).
	Alpha float64
	// MinSel floors selectivity estimates away from zero so that cost
	// products stay well-defined and tiny-selectivity noise does not
	// translate into huge relative swings (default 1e-3).
	MinSel float64
}

func (c Config) withDefaults(patWindow event.Time) Config {
	if c.Window <= 0 {
		c.Window = 20 * patWindow
	}
	if c.EHEps <= 0 {
		c.EHEps = 0.05
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 24
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.MinSel <= 0 {
		c.MinSel = 1e-3
	}
	return c
}

// Estimator maintains the running statistics for one (non-OR) pattern.
// Feed it every input event via Observe; take immutable copies of the
// current estimates with Snapshot. An Estimator is the paper's dedicated
// statistics-collection component (Figure 2).
//
// Estimators are not safe for concurrent use; the engine drives one from
// its event loop.
type Estimator struct {
	pat     *pattern.Pattern
	cfg     Config
	ehs     []*EH         // per position
	rings   []*sampleRing // per position
	selPred []float64     // per predicate, EWMA-smoothed
	seeded  []bool        // per predicate: has a first estimate landed
	version uint64
}

// NewEstimator builds an estimator for the pattern. OR patterns are
// rejected; the engine maintains one estimator per disjunct.
func NewEstimator(pat *pattern.Pattern, cfg Config) (*Estimator, error) {
	if pat.Op == pattern.Or {
		return nil, fmt.Errorf("stats: estimator works per sub-pattern; got OR")
	}
	cfg = cfg.withDefaults(pat.Window)
	n := pat.NumPositions()
	e := &Estimator{
		pat:     pat,
		cfg:     cfg,
		ehs:     make([]*EH, n),
		rings:   make([]*sampleRing, n),
		selPred: make([]float64, len(pat.Preds)),
		seeded:  make([]bool, len(pat.Preds)),
	}
	for i := 0; i < n; i++ {
		eh, err := NewEH(cfg.Window, cfg.EHEps)
		if err != nil {
			return nil, err
		}
		e.ehs[i] = eh
		e.rings[i] = newSampleRing(cfg.SampleSize)
	}
	for i := range e.selPred {
		e.selPred[i] = 1 // optimistic until observed
	}
	return e, nil
}

// Observe records one input event. Events whose type matches no pattern
// position are ignored. An event type occupying several positions updates
// each of them.
func (e *Estimator) Observe(ev *event.Event) {
	for i, pos := range e.pat.Positions {
		if pos.Type == ev.Type {
			e.ehs[i].Add(ev.TS)
			e.rings[i].add(ev)
		}
	}
}

// refreshSelectivities re-evaluates every predicate over the current
// sample rings and folds the result into the EWMA estimates.
func (e *Estimator) refreshSelectivities() {
	for k := range e.pat.Preds {
		pr := &e.pat.Preds[k]
		var pass, total int
		if pr.IsUnary() {
			ring := e.rings[pr.L]
			for i := 0; i < ring.len(); i++ {
				total++
				if pr.Eval(ring.at(i), nil) {
					pass++
				}
			}
		} else {
			lring, rring := e.rings[pr.L], e.rings[pr.R]
			for i := 0; i < lring.len(); i++ {
				for j := 0; j < rring.len(); j++ {
					total++
					if pr.Eval(lring.at(i), rring.at(j)) {
						pass++
					}
				}
			}
		}
		if total == 0 {
			continue // keep previous estimate
		}
		obs := float64(pass) / float64(total)
		if obs < e.cfg.MinSel {
			obs = e.cfg.MinSel
		}
		if !e.seeded[k] {
			e.selPred[k] = obs
			e.seeded[k] = true
		} else {
			e.selPred[k] = e.cfg.Alpha*obs + (1-e.cfg.Alpha)*e.selPred[k]
		}
	}
}

// Snapshot refreshes the selectivity estimates and returns an immutable
// copy of all statistics as of now.
func (e *Estimator) Snapshot(now event.Time) *Snapshot {
	e.refreshSelectivities()
	n := e.pat.NumPositions()
	s := NewSnapshot(n)
	e.version++
	s.Version = e.version
	for i := 0; i < n; i++ {
		s.Rates[i] = e.ehs[i].Rate(now)
	}
	for i := 0; i < n; i++ {
		for _, k := range e.pat.PredsAt(i) {
			s.Sel[i][i] *= e.selPred[k]
		}
		for j := i + 1; j < n; j++ {
			v := 1.0
			for _, k := range e.pat.PredsBetween(i, j) {
				v *= e.selPred[k]
			}
			s.SetSym(i, j, v)
		}
	}
	return s
}

// PredSelectivity exposes the current smoothed estimate for predicate k
// (index into the pattern's Preds); for tests and introspection.
func (e *Estimator) PredSelectivity(k int) float64 { return e.selPred[k] }

// Window returns the statistics window in effect.
func (e *Estimator) Window() event.Time { return e.cfg.Window }
