package gen

import (
	"fmt"

	"acep/internal/event"
	"acep/internal/pattern"
)

// PatternSetEntry is one member of a generated multi-pattern set: the
// registry id, owning tenant, and the pattern itself (the gen-level
// mirror of multi.Spec, kept dependency-free so the generator sits below
// the evaluation layers).
type PatternSetEntry struct {
	ID      uint32
	Tenant  uint32
	Pattern *pattern.Pattern
}

// OverlapPatterns builds n patterns that share a SEQ prefix of `overlap`
// types (types 0..overlap-1 with the workload's all-pairs domain
// predicates, plus key-equality adjacency on keyed workloads) and
// diverge in their suffixes: each pattern appends one core position of a
// distinct remaining type (cycled), differentiated by a per-pattern
// constant predicate once the remaining types are exhausted. kind
// selects the suffix flavor:
//
//   - Sequence: prefix + one core suffix position;
//   - Negation: a negated position of another remaining type inserted
//     between prefix and suffix;
//   - Kleene: the inserted position is under Kleene closure instead.
//
// Tenants > 1 assigns tenants round-robin, which also partitions the
// sharing analysis (prefix runners never cross tenants). The result is
// fully determined by the arguments — two calls on workloads with equal
// parameters produce equal sets, which is what lets a spec file stand in
// for the patterns themselves (see WritePatternSet).
func (w *Workload) OverlapPatterns(kind Kind, n, overlap int, window event.Time, tenants int) ([]PatternSetEntry, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: pattern count %d < 1", n)
	}
	if overlap < 2 {
		return nil, fmt.Errorf("gen: overlap %d < 2 (a shared prefix needs two positions)", overlap)
	}
	types := w.Schema.NumTypes()
	rem := types - overlap
	need := 1
	if kind == Negation || kind == Kleene {
		need = 2
	}
	if rem < need {
		return nil, fmt.Errorf("gen: overlap %d leaves %d of %d types for suffixes, need %d", overlap, rem, types, need)
	}
	switch kind {
	case Sequence, Negation, Kleene:
	default:
		return nil, fmt.Errorf("gen: overlap sets support sequence, negation and kleene kinds, not %v", kind)
	}
	if tenants < 1 {
		tenants = 1
	}
	out := make([]PatternSetEntry, 0, n)
	for i := 0; i < n; i++ {
		b := pattern.NewBuilder(w.Schema, pattern.Seq, window)
		for t := 0; t < overlap; t++ {
			b.Event(t)
		}
		sufType := overlap + i%rem
		resAt := -1
		if kind != Sequence {
			resType := overlap + (i+1)%rem
			resAt = b.Event(resType)
			if kind == Negation {
				b.Negate(resAt)
			} else {
				b.Kleene(resAt)
			}
		}
		suf := b.Event(sufType)
		core := make([]int, 0, overlap+1)
		for t := 0; t < overlap; t++ {
			core = append(core, t)
		}
		core = append(core, suf)
		for a := 0; a < len(core); a++ {
			for c := a + 1; c < len(core); c++ {
				if err := w.domainPred(b, core[a], core[c]); err != nil {
					return nil, err
				}
				if c == a+1 && w.Keys > 0 {
					b.WhereEq(core[a], "key", core[c], "key")
				}
			}
		}
		if resAt >= 0 {
			// Anchor the residual position to its core predecessor, as
			// the single-pattern chains do.
			anchor := overlap - 1
			if err := w.domainPred(b, anchor, resAt); err != nil {
				return nil, err
			}
			if w.Keys > 0 {
				b.WhereEq(anchor, "key", resAt, "key")
			}
		}
		// Once every remaining type is taken, keep later patterns
		// distinct with an always-true per-pattern constant threshold on
		// the suffix (distinct unary predicates also keep the shared
		// verdict table honest in benchmarks).
		if i >= rem {
			b.WherePred(pattern.Pred{
				L: suf, R: pattern.Unary, AttrL: 0,
				Op: pattern.GT, C: -1e12 - float64(i),
			})
		}
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("gen: overlap pattern %d: %w", i, err)
		}
		out = append(out, PatternSetEntry{
			ID:      uint32(i + 1),
			Tenant:  uint32(i % tenants),
			Pattern: p,
		})
	}
	return out, nil
}

// domainPred adds the workload's domain predicate pair between two
// positions (lo earlier, hi later), matching Workload.chain.
func (w *Workload) domainPred(b *pattern.Builder, lo, hi int) error {
	switch w.Domain {
	case "traffic":
		b.Where(hi, "speed", pattern.GT, lo, "speed", 0)
		b.Where(hi, "count", pattern.GT, lo, "count", 0)
	case "stocks":
		b.Where(hi, "diff", pattern.GT, lo, "diff", 0)
	default:
		return fmt.Errorf("gen: unknown domain %q", w.Domain)
	}
	return nil
}
