package gen

import (
	"bytes"
	"testing"
)

func TestPatternSetRoundTrip(t *testing.T) {
	spec := PatternSetSpec{
		Dataset: "traffic", Types: 10, Keys: 16, Kind: Negation,
		Patterns: 32, Overlap: 3, Window: 150, Tenants: 4,
	}
	var buf bytes.Buffer
	if err := WritePatternSet(&buf, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPatternSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Fatalf("round trip: %+v != %+v", got, spec)
	}
}

func TestPatternSetReproducible(t *testing.T) {
	spec := PatternSetSpec{
		Dataset: "stocks", Types: 8, Kind: Sequence,
		Patterns: 12, Overlap: 3, Window: 90, Tenants: 2,
	}
	w1, err := spec.Workload(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := spec.Workload(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.Build(w1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build(w2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 12 {
		t.Fatalf("set sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Tenant != b[i].Tenant {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Pattern.String() != b[i].Pattern.String() {
			t.Fatalf("entry %d pattern differs:\n%s\n%s", i, a[i].Pattern, b[i].Pattern)
		}
	}
	// Overlapping prefix: the first patterns' type sequences agree on
	// the prefix and diverge after.
	if a[0].Pattern.Positions[0].Type != a[1].Pattern.Positions[0].Type {
		t.Fatal("prefix types differ")
	}
}

func TestPatternSetRejectsBadInput(t *testing.T) {
	if _, err := ReadPatternSet(bytes.NewBufferString("dataset=traffic\nbogus=1\n")); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ReadPatternSet(bytes.NewBufferString("dataset=traffic\n")); err == nil {
		t.Fatal("missing keys accepted")
	}
	w := Traffic(TrafficConfig{Types: 4, Events: 10})
	if _, err := w.OverlapPatterns(Sequence, 4, 4, 100, 1); err == nil {
		t.Fatal("overlap consuming all types accepted")
	}
	if _, err := w.OverlapPatterns(Composite, 4, 2, 100, 1); err == nil {
		t.Fatal("composite kind accepted")
	}
}
