package gen

import (
	"fmt"

	"acep/internal/event"
	"acep/internal/pattern"
)

// Kind enumerates the paper's five experiment pattern sets (§5.1 and
// Appendix A).
type Kind int

const (
	// Sequence is a single SEQ operator over `size` types.
	Sequence Kind = iota
	// Conjunction is the sequence pattern with temporal constraints
	// removed (a single AND operator).
	Conjunction
	// Negation is the sequence pattern with one negated event inserted
	// mid-pattern.
	Negation
	// Kleene is the sequence pattern with the middle event under Kleene
	// closure.
	Kleene
	// Composite is a disjunction of three shorter sequences.
	Composite
)

// String names the pattern set as in the paper.
func (k Kind) String() string {
	switch k {
	case Sequence:
		return "sequence"
	case Conjunction:
		return "conjunction"
	case Negation:
		return "negation"
	case Kleene:
		return "kleene"
	case Composite:
		return "composite"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all five pattern sets.
func Kinds() []Kind { return []Kind{Sequence, Conjunction, Negation, Kleene, Composite} }

// Pattern builds the pattern of the given kind and size over the
// workload's schema, with the paper's domain-motivated predicates:
//
//   - traffic: adjacent observations with an increase in both the average
//     speed and the vehicle count (a violation of normal driving
//     behaviour, §5.1);
//   - stocks: adjacent positions with increasing price difference
//     (A.diff < B.diff < ..., §5.1).
//
// Size follows the paper's definition: Kleene events count, negated
// events do not (the negation pattern therefore has size+1 positions),
// and for Composite the size is the length of each subsequence.
func (w *Workload) Pattern(kind Kind, size int, window event.Time) (*pattern.Pattern, error) {
	if size < 1 {
		return nil, fmt.Errorf("gen: pattern size %d < 1", size)
	}
	switch kind {
	case Sequence:
		return w.chain(pattern.Seq, 0, size, window, -1, -1)
	case Conjunction:
		return w.chain(pattern.And, 0, size, window, -1, -1)
	case Negation:
		// One extra (negated) type inserted mid-pattern; excluded from
		// size per the paper.
		return w.chain(pattern.Seq, 0, size+1, window, size/2, -1)
	case Kleene:
		return w.chain(pattern.Seq, 0, size, window, -1, size/2)
	case Composite:
		var subs []*pattern.Pattern
		for s := 0; s < 3; s++ {
			sub, err := w.chain(pattern.Seq, s, size, window, -1, -1)
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
		}
		return pattern.NewOr(subs...)
	default:
		return nil, fmt.Errorf("gen: unknown pattern kind %d", kind)
	}
}

// chain builds op(T_first, ..., T_first+n-1) with domain predicates
// between adjacent non-negated positions. negAt/kleeneAt mark one
// position (-1 for none). On keyed workloads (Keys > 0) every adjacent
// core pair and every residual anchor additionally requires equality on
// the "key" attribute, which makes the pattern key-partitionable: the
// equality graph spans all positions, so a match can only combine events
// of one entity.
func (w *Workload) chain(op pattern.Op, first, n int, window event.Time, negAt, kleeneAt int) (*pattern.Pattern, error) {
	if first+n > w.Schema.NumTypes() {
		return nil, fmt.Errorf("gen: pattern needs %d types, schema has %d", first+n, w.Schema.NumTypes())
	}
	b := pattern.NewBuilder(w.Schema, op, window)
	for i := 0; i < n; i++ {
		p := b.Event(first + i)
		if p == negAt {
			b.Negate(p)
		}
		if p == kleeneAt {
			b.Kleene(p)
		}
	}
	addPred := func(lo, hi int) error { return w.domainPred(b, lo, hi) }
	addKey := func(lo, hi int) {
		if w.Keys > 0 {
			b.WhereEq(lo, "key", hi, "key")
		}
	}
	// The monotone-increase requirement is expressed as all-pairs
	// predicates over the plannable positions (equivalent to the adjacent
	// chain by transitivity, but it exposes the full selectivity graph to
	// the planners). Each residual (negated/Kleene) position is
	// constrained against its nearest plannable neighbour.
	var corePos []int
	for i := 0; i < n; i++ {
		if i != negAt && i != kleeneAt {
			corePos = append(corePos, i)
		}
	}
	for a := 0; a < len(corePos); a++ {
		for c := a + 1; c < len(corePos); c++ {
			if err := addPred(corePos[a], corePos[c]); err != nil {
				return nil, err
			}
			if c == a+1 {
				addKey(corePos[a], corePos[c])
			}
		}
	}
	for _, res := range []int{negAt, kleeneAt} {
		if res < 0 {
			continue
		}
		anchor := -1
		for _, cp := range corePos {
			if cp < res {
				anchor = cp
			}
		}
		if anchor >= 0 {
			if err := addPred(anchor, res); err != nil {
				return nil, err
			}
			addKey(anchor, res)
		} else if len(corePos) > 0 {
			if err := addPred(res, corePos[0]); err != nil {
				return nil, err
			}
			addKey(res, corePos[0])
		}
	}
	return b.Build()
}
