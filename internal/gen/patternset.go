package gen

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"acep/internal/event"
)

// PatternSetSpec is the reproducible description of an overlapping-prefix
// pattern set: not the patterns themselves but the parameters that
// regenerate them, so a small text file shared between acep-gen,
// acep-run and acep-bench pins the exact same set everywhere
// (OverlapPatterns is deterministic in these parameters).
type PatternSetSpec struct {
	// Dataset is the workload family the set is built against ("traffic"
	// or "stocks"); it fixes the schema and domain predicates.
	Dataset string
	// Types is the schema width the workload must be generated with.
	Types int
	// Keys is the workload's partition-key cardinality (0 = unkeyed).
	Keys int
	// Kind is the suffix flavor: sequence, negation or kleene.
	Kind Kind
	// Patterns is the set size.
	Patterns int
	// Overlap is the shared-prefix length in positions.
	Overlap int
	// Window is each pattern's time window.
	Window event.Time
	// Tenants assigns patterns round-robin over this many tenants.
	Tenants int
}

// Build regenerates the pattern set against a workload. The workload
// must match the spec's dataset parameters — the schema is structural,
// so a mismatch surfaces as a build error or a type-count error here.
func (s PatternSetSpec) Build(w *Workload) ([]PatternSetEntry, error) {
	if w.Domain != s.Dataset {
		return nil, fmt.Errorf("gen: pattern set is for dataset %q, workload is %q", s.Dataset, w.Domain)
	}
	if w.Schema.NumTypes() != s.Types {
		return nil, fmt.Errorf("gen: pattern set wants %d types, workload has %d", s.Types, w.Schema.NumTypes())
	}
	return w.OverlapPatterns(s.Kind, s.Patterns, s.Overlap, s.Window, s.Tenants)
}

// Workload generates the matching workload for the spec.
func (s PatternSetSpec) Workload(events int, seed int64) (*Workload, error) {
	switch s.Dataset {
	case "traffic":
		return Traffic(TrafficConfig{Types: s.Types, Events: events, Seed: seed, Keys: s.Keys}), nil
	case "stocks":
		return Stocks(StocksConfig{Types: s.Types, Events: events, Seed: seed, Keys: s.Keys}), nil
	default:
		return nil, fmt.Errorf("gen: unknown dataset %q", s.Dataset)
	}
}

// KindFromString parses a Kind name as printed by Kind.String.
func KindFromString(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("gen: unknown pattern kind %q", s)
}

// WritePatternSet writes the spec in its line-oriented key=value form.
func WritePatternSet(w io.Writer, s PatternSetSpec) error {
	_, err := fmt.Fprintf(w,
		"# acep pattern set (regenerated via gen.PatternSetSpec)\n"+
			"dataset=%s\ntypes=%d\nkeys=%d\nkind=%s\npatterns=%d\noverlap=%d\nwindow=%d\ntenants=%d\n",
		s.Dataset, s.Types, s.Keys, s.Kind, s.Patterns, s.Overlap, int64(s.Window), s.Tenants)
	return err
}

// ReadPatternSet parses a spec written by WritePatternSet. Unknown keys
// are rejected (the file is a contract, not a config grab-bag).
func ReadPatternSet(r io.Reader) (PatternSetSpec, error) {
	var s PatternSetSpec
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, val, ok := strings.Cut(text, "=")
		if !ok {
			return s, fmt.Errorf("gen: pattern set line %d: %q is not key=value", line, text)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		atoi := func() (int, error) {
			n, err := strconv.Atoi(val)
			if err != nil {
				return 0, fmt.Errorf("gen: pattern set line %d: %s=%q is not a number", line, key, val)
			}
			return n, nil
		}
		var err error
		switch key {
		case "dataset":
			s.Dataset = val
		case "types":
			s.Types, err = atoi()
		case "keys":
			s.Keys, err = atoi()
		case "kind":
			s.Kind, err = KindFromString(val)
		case "patterns":
			s.Patterns, err = atoi()
		case "overlap":
			s.Overlap, err = atoi()
		case "window":
			var n int
			n, err = atoi()
			s.Window = event.Time(n)
		case "tenants":
			s.Tenants, err = atoi()
		default:
			return s, fmt.Errorf("gen: pattern set line %d: unknown key %q", line, key)
		}
		if err != nil {
			return s, err
		}
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	if s.Dataset == "" || s.Types <= 0 || s.Patterns <= 0 || s.Overlap <= 0 || s.Window <= 0 {
		return s, fmt.Errorf("gen: pattern set is missing required keys (dataset/types/patterns/overlap/window)")
	}
	if s.Tenants < 1 {
		s.Tenants = 1
	}
	return s, nil
}

// LoadPatternSet reads a spec file from disk.
func LoadPatternSet(path string) (PatternSetSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return PatternSetSpec{}, err
	}
	defer f.Close()
	return ReadPatternSet(f)
}
