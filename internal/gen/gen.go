// Package gen produces the synthetic workloads that stand in for the
// paper's two real-world datasets (see DESIGN.md, "Substitutions").
//
// Traffic reproduces the statistical regime of the City of Aarhus
// vehicle-traffic sensor data: highly skewed per-type arrival rates that
// stay stable for long stretches and then undergo rare, extreme regime
// shifts (rate permutations combined with magnitude jumps and attribute-
// distribution changes).
//
// Stocks reproduces the regime of the NASDAQ per-minute price updates:
// near-uniform arrival rates across types with frequent but minor
// fluctuations, and attribute distributions whose predicate selectivities
// barely move.
//
// Both generators are deterministic functions of their configuration
// (including Seed), which the experiment harness relies on: every
// adaptation method is measured on the identical event sequence.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"acep/internal/event"
)

// Workload is a generated event stream plus the schema it conforms to.
type Workload struct {
	Schema *event.Schema
	Events []event.Event
	// Domain records which generator produced the workload ("traffic" or
	// "stocks"); pattern builders use it to pick attributes.
	Domain string
	// Keys is the number of distinct partition-key values carried in the
	// "key" attribute, or 0 when the workload has no partition key. Keyed
	// workloads model per-entity streams (one vehicle, one trading
	// account): patterns built over them carry equality-on-key predicates
	// and are therefore partitionable by the shard layer.
	Keys int
}

// keySeedMix decorrelates the partition-key random stream from the main
// generator stream, so enabling Keys changes no other event field.
const keySeedMix int64 = 0x1e3779b97f4a7c15

// TrafficConfig tunes the traffic-like generator.
type TrafficConfig struct {
	// Types is the number of event types (observation points); default 10.
	Types int
	// Events is the stream length; default 100000.
	Events int
	// Seed makes the stream reproducible.
	Seed int64
	// MeanGap is the mean inter-event gap in logical ms; default 2.
	MeanGap event.Time
	// Skew is the Zipf exponent of the rate distribution; default 1.2.
	Skew float64
	// Shifts is the number of extreme regime shifts; default 3.
	Shifts int
	// Keys, when positive, adds a "key" attribute holding one of Keys
	// distinct entity ids, drawn from an independent random stream (all
	// other fields of the generated events are unchanged).
	Keys int
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.Types <= 0 {
		c.Types = 10
	}
	if c.Events <= 0 {
		c.Events = 100000
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 2
	}
	if c.Skew <= 0 {
		c.Skew = 1.2
	}
	if c.Shifts < 0 {
		c.Shifts = 0
	}
	return c
}

// Traffic generates a traffic-like workload. Event attributes are
// "speed" and "count"; their per-type distributions shift together with
// the rates, so both arrival rates and predicate selectivities move at
// regime boundaries.
func Traffic(cfg TrafficConfig) *Workload {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	s := event.NewSchema()
	attrs := []string{"speed", "count"}
	if cfg.Keys > 0 {
		attrs = append(attrs, "key")
	}
	for i := 0; i < cfg.Types; i++ {
		s.MustAddType(fmt.Sprintf("T%d", i), attrs...)
	}
	var kr *rand.Rand
	if cfg.Keys > 0 {
		kr = rand.New(rand.NewSource(cfg.Seed ^ keySeedMix))
	}
	// Zipf-skewed weights over types.
	weights := make([]float64, cfg.Types)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.Skew)
	}
	speedMean := make([]float64, cfg.Types)
	countMean := make([]float64, cfg.Types)
	redraw := func() {
		for i := range speedMean {
			speedMean[i] = 20 + r.Float64()*80 // km/h
			countMean[i] = 5 + r.Float64()*95  // vehicles
		}
	}
	redraw()

	// Extreme regime shifts at evenly spaced points: permute the weights
	// and multiply each by a random magnitude, and redraw the attribute
	// distributions.
	shiftAt := make(map[int]bool, cfg.Shifts)
	for k := 1; k <= cfg.Shifts; k++ {
		shiftAt[k*cfg.Events/(cfg.Shifts+1)] = true
	}

	w := &Workload{Schema: s, Domain: "traffic"}
	w.Events = make([]event.Event, 0, cfg.Events)
	ts := event.Time(0)
	for i := 0; i < cfg.Events; i++ {
		if shiftAt[i] {
			r.Shuffle(len(weights), func(a, b int) {
				weights[a], weights[b] = weights[b], weights[a]
			})
			for j := range weights {
				weights[j] *= 0.2 + r.Float64()*4.8
			}
			redraw()
		}
		typ := sampleWeighted(r, weights)
		ts += 1 + event.Time(r.ExpFloat64()*float64(cfg.MeanGap))
		// Noise is wide relative to the mean spread so cross-type
		// predicate selectivities land in a skewed but non-degenerate
		// range (~0.02..0.6) rather than collapsing to 0/1.
		speed := speedMean[typ] + r.NormFloat64()*20
		count := countMean[typ] + r.NormFloat64()*25
		vals := []float64{speed, count}
		if kr != nil {
			vals = append(vals, float64(kr.Intn(cfg.Keys)))
		}
		ev := s.MustNew(typ, ts, vals...)
		ev.Seq = uint64(i + 1)
		w.Events = append(w.Events, ev)
	}
	w.Keys = cfg.Keys
	return w
}

// StocksConfig tunes the stocks-like generator.
type StocksConfig struct {
	// Types is the number of stock identifiers; default 10.
	Types int
	// Events is the stream length; default 100000.
	Events int
	// Seed makes the stream reproducible.
	Seed int64
	// MeanGap is the mean inter-event gap in logical ms; default 2.
	MeanGap event.Time
	// DriftEvery is the interval (events) between small rate
	// fluctuations; default 500.
	DriftEvery int
	// DriftMag is the relative magnitude of each fluctuation; default
	// 0.08.
	DriftMag float64
	// Keys, when positive, adds a "key" attribute holding one of Keys
	// distinct entity ids, drawn from an independent random stream (all
	// other fields of the generated events are unchanged).
	Keys int
}

func (c StocksConfig) withDefaults() StocksConfig {
	if c.Types <= 0 {
		c.Types = 10
	}
	if c.Events <= 0 {
		c.Events = 100000
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 2
	}
	if c.DriftEvery <= 0 {
		c.DriftEvery = 500
	}
	if c.DriftMag <= 0 {
		c.DriftMag = 0.08
	}
	return c
}

// Stocks generates a stocks-like workload. Event attributes are "price"
// (a per-type random walk) and "diff" (the step just taken).
func Stocks(cfg StocksConfig) *Workload {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	s := event.NewSchema()
	attrs := []string{"price", "diff"}
	if cfg.Keys > 0 {
		attrs = append(attrs, "key")
	}
	for i := 0; i < cfg.Types; i++ {
		s.MustAddType(fmt.Sprintf("S%d", i), attrs...)
	}
	var kr *rand.Rand
	if cfg.Keys > 0 {
		kr = rand.New(rand.NewSource(cfg.Seed ^ keySeedMix))
	}
	weights := make([]float64, cfg.Types)
	price := make([]float64, cfg.Types)
	bias := make([]float64, cfg.Types) // per-type price trend
	for i := range weights {
		weights[i] = 0.9 + r.Float64()*0.2 // near uniform
		price[i] = 50 + r.Float64()*150
		bias[i] = r.NormFloat64() * 0.4
	}
	w := &Workload{Schema: s, Domain: "stocks"}
	w.Events = make([]event.Event, 0, cfg.Events)
	ts := event.Time(0)
	for i := 0; i < cfg.Events; i++ {
		if i > 0 && i%cfg.DriftEvery == 0 {
			// Frequent minor fluctuation: nudge one type's rate weight
			// and its price trend. Trends make the cross-type diff
			// predicates heterogeneously selective, so the drift moves
			// selectivities as well as rates — by small steps, matching
			// the dataset regime the generator stands in for.
			j := r.Intn(cfg.Types)
			weights[j] *= 1 + (r.Float64()*2-1)*cfg.DriftMag
			if weights[j] < 0.1 {
				weights[j] = 0.1
			}
			bias[j] += (r.Float64()*2 - 1) * cfg.DriftMag * 2
		}
		typ := sampleWeighted(r, weights)
		ts += 1 + event.Time(r.ExpFloat64()*float64(cfg.MeanGap))
		step := bias[typ] + r.NormFloat64()
		price[typ] += step
		vals := []float64{price[typ], step}
		if kr != nil {
			vals = append(vals, float64(kr.Intn(cfg.Keys)))
		}
		ev := s.MustNew(typ, ts, vals...)
		ev.Seq = uint64(i + 1)
		w.Events = append(w.Events, ev)
	}
	w.Keys = cfg.Keys
	return w
}

// sampleWeighted draws an index proportionally to weights.
func sampleWeighted(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
