package gen

import (
	"reflect"
	"testing"

	"acep/internal/event"
	"acep/internal/pattern"
	"acep/internal/stats"
)

func TestTrafficDeterministic(t *testing.T) {
	a := Traffic(TrafficConfig{Types: 5, Events: 2000, Seed: 1})
	b := Traffic(TrafficConfig{Types: 5, Events: 2000, Seed: 1})
	if len(a.Events) != 2000 || len(b.Events) != 2000 {
		t.Fatalf("lengths %d,%d", len(a.Events), len(b.Events))
	}
	if !reflect.DeepEqual(a.Events[:50], b.Events[:50]) {
		t.Fatal("same seed produced different streams")
	}
	c := Traffic(TrafficConfig{Types: 5, Events: 2000, Seed: 2})
	if reflect.DeepEqual(a.Events[:50], c.Events[:50]) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestTrafficProperties(t *testing.T) {
	w := Traffic(TrafficConfig{Types: 8, Events: 30000, Seed: 3, Shifts: 2})
	// Timestamps non-decreasing, Seqs strictly increasing.
	for i := 1; i < len(w.Events); i++ {
		if w.Events[i].TS < w.Events[i-1].TS {
			t.Fatal("timestamps decrease")
		}
		if w.Events[i].Seq <= w.Events[i-1].Seq {
			t.Fatal("seqs not increasing")
		}
	}
	// Skew: in the first regime (before any shift), type 0 must clearly
	// outnumber type 7.
	counts := make([]int, 8)
	for _, e := range w.Events[:10000] {
		counts[e.Type]++
	}
	if counts[0] < counts[7]*3 {
		t.Errorf("expected skew: counts=%v", counts)
	}
	// Regime shift: the rate ranking before and after must differ.
	before := make([]int, 8)
	after := make([]int, 8)
	for _, e := range w.Events[:9000] {
		before[e.Type]++
	}
	for _, e := range w.Events[11000:19000] {
		after[e.Type]++
	}
	if argmax(before) == argmax(after) && secondArgmax(before) == secondArgmax(after) {
		// Permutation could coincidentally preserve the top-2, but with 8
		// types this is unlikely for this seed; treat as failure so a
		// silent generator regression is caught.
		t.Errorf("shift did not change rate ranking: before=%v after=%v", before, after)
	}
}

func argmax(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func secondArgmax(xs []int) int {
	b := argmax(xs)
	second := -1
	for i, x := range xs {
		if i == b {
			continue
		}
		if second < 0 || x > xs[second] {
			second = i
		}
	}
	return second
}

func TestStocksProperties(t *testing.T) {
	w := Stocks(StocksConfig{Types: 6, Events: 30000, Seed: 5})
	for i := 1; i < len(w.Events); i++ {
		if w.Events[i].TS < w.Events[i-1].TS {
			t.Fatal("timestamps decrease")
		}
	}
	// Near-uniform rates: max/min count ratio below 2.
	counts := make([]int, 6)
	for _, e := range w.Events {
		counts[e.Type]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(min) > 2 {
		t.Errorf("stocks rates too skewed: %v", counts)
	}
	// diff attribute is the price step: reconstruct one type's walk.
	var prev float64
	seen := false
	for _, e := range w.Events {
		if e.Type != 2 {
			continue
		}
		if seen {
			if d := e.Attr(0) - prev - e.Attr(1); d > 1e-9 || d < -1e-9 {
				t.Fatal("diff attribute inconsistent with price walk")
			}
		}
		prev = e.Attr(0)
		seen = true
	}
}

func TestStocksSelectivityStable(t *testing.T) {
	// The adjacent-diff predicate keeps ~0.5 selectivity across the
	// stream: the stocks regime's signature.
	w := Stocks(StocksConfig{Types: 4, Events: 20000, Seed: 7})
	pat, err := w.Pattern(Sequence, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	first := stats.Exact(pat, w.Events[:10000])
	second := stats.Exact(pat, w.Events[10000:])
	for _, s := range []*stats.Snapshot{first, second} {
		if s.Sel[0][1] < 0.35 || s.Sel[0][1] > 0.65 {
			t.Errorf("diff selectivity %g out of [0.35,0.65]", s.Sel[0][1])
		}
	}
}

func TestPatternKinds(t *testing.T) {
	w := Traffic(TrafficConfig{Types: 10, Events: 100, Seed: 1})
	for _, k := range Kinds() {
		for _, size := range []int{3, 5, 8} {
			p, err := w.Pattern(k, size, 1000)
			if err != nil {
				t.Fatalf("%v size %d: %v", k, size, err)
			}
			if got := p.Size(); got != size {
				t.Errorf("%v size %d: Size() = %d", k, size, got)
			}
			switch k {
			case Sequence:
				if p.Op != pattern.Seq || len(p.Core()) != size {
					t.Errorf("%v: wrong shape", k)
				}
			case Conjunction:
				if p.Op != pattern.And {
					t.Errorf("%v: wrong op", k)
				}
			case Negation:
				if p.NumPositions() != size+1 || len(p.Core()) != size {
					t.Errorf("%v: positions=%d core=%d", k, p.NumPositions(), len(p.Core()))
				}
			case Kleene:
				if len(p.Core()) != size-1 {
					t.Errorf("%v: core=%d; want %d", k, len(p.Core()), size-1)
				}
			case Composite:
				if p.Op != pattern.Or || len(p.Subs) != 3 {
					t.Errorf("%v: wrong shape", k)
				}
			}
		}
	}
	if _, err := w.Pattern(Sequence, 0, 1000); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := w.Pattern(Sequence, 99, 1000); err == nil {
		t.Error("oversized pattern accepted")
	}
	if _, err := w.Pattern(Kind(42), 3, 1000); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindStrings(t *testing.T) {
	want := []string{"sequence", "conjunction", "negation", "kleene", "composite"}
	for i, k := range Kinds() {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q", i, k.String())
		}
	}
}

func TestPatternPredicatesByDomain(t *testing.T) {
	tr := Traffic(TrafficConfig{Types: 5, Events: 10, Seed: 1})
	p, _ := tr.Pattern(Sequence, 3, 1000)
	// Two predicates (speed, count) per core pair: 3 pairs.
	if len(p.Preds) != 6 {
		t.Errorf("traffic preds = %d; want 6", len(p.Preds))
	}
	st := Stocks(StocksConfig{Types: 5, Events: 10, Seed: 1})
	p2, _ := st.Pattern(Sequence, 3, 1000)
	if len(p2.Preds) != 3 {
		t.Errorf("stocks preds = %d; want 3", len(p2.Preds))
	}
	// Residual positions carry exactly one anchor predicate (per
	// domain attribute).
	pn, _ := tr.Pattern(Negation, 3, 1000)
	negPos := -1
	for i, pos := range pn.Positions {
		if pos.Neg {
			negPos = i
		}
	}
	if got := len(pn.PredsTouching(negPos)); got != 2 {
		t.Errorf("negated position touches %d preds; want 2", got)
	}
	// Windows propagate.
	if p.Window != 1000 || p2.Window != 1000 {
		t.Error("window not propagated")
	}
}

func TestDefaults(t *testing.T) {
	w := Traffic(TrafficConfig{Events: 10})
	if w.Schema.NumTypes() != 10 {
		t.Errorf("default types = %d", w.Schema.NumTypes())
	}
	s := Stocks(StocksConfig{Events: 10})
	if s.Schema.NumTypes() != 10 {
		t.Errorf("default types = %d", s.Schema.NumTypes())
	}
	if s.Events[0].TS <= 0 {
		t.Error("timestamps must start positive")
	}
	var _ event.Time = s.Events[0].TS
}
