package cluster

import (
	"fmt"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/multi"
	"acep/internal/pattern"
	recovery "acep/internal/recover"
	"acep/internal/shard"
	"acep/internal/shed"
	"acep/internal/stats"
)

// LocalConfig assembles an in-process cluster: worker nodes served over
// chan-transport pipes inside this process, behind the identical
// protocol surface a TCP deployment uses. This is the zero-setup way to
// run the cluster layer (and what the facade's NewClusterIngress builds
// when no addresses are given); it is also how the tests pin
// transport-independent behavior.
type LocalConfig struct {
	// Nodes is the worker-node count (default 2).
	Nodes int
	// ShardsPerNode is each node's local shard-engine count (default 1).
	ShardsPerNode int
	// Batch is the events-per-cut of the ingress and the local handoff
	// batch of every node (default 256).
	Batch int
	// QueueCap / Snapshot / Window size each node's local ingestion
	// queues (see shard.Options).
	QueueCap int
	Snapshot *stats.Snapshot
	Window   event.Time
	// Overflow selects the nodes' full-queue behavior.
	Overflow shard.Overflow
	// Key or KeyAttr+Schema selects the partition key (see shard.Options).
	Key     shard.KeyFunc
	KeyAttr string
	Schema  *event.Schema
	// OnMatch / OnTagged receive the merged match stream (exactly one).
	OnMatch  func(*match.Match)
	OnTagged func(shard.Tagged)
	// Patterns hosts a multi-pattern set instead of a single pattern
	// (pass pat nil to StartLocal): the nodes start bare, the ingress
	// ships the set in every handshake, and matches arrive pattern-tagged
	// through OnTagged. Same contract as IngressOptions.Patterns.
	Patterns []multi.Spec
	// Tenants installs per-tenant admission budgets (multi mode only).
	Tenants map[uint32]shed.TenantBudget
	// OnNodeErr (optional) observes node-side session errors; transport
	// failures surface at the ingress regardless.
	OnNodeErr func(error)
	// Recover enables fault-tolerant failover: the ingress journals cuts
	// and, when a node dies, spawns a bare in-process standby (at most
	// Standbys of them, default 2) that adopts the lost shard block via
	// pattern shipping and watermark replay.
	Recover  bool
	Standbys int
	// HeartbeatTimeout / MaxJournalBytes / OnFailover tune detection,
	// the journal bound and failover observation (see RecoveryConfig).
	HeartbeatTimeout time.Duration
	MaxJournalBytes  int64
	OnFailover       func(recovery.Failover)
	// Elastic configures the placement controller (see ElasticConfig;
	// Rebalance needs Recover).
	Elastic *ElasticConfig
}

// StartLocal builds the nodes, connects them to a new ingress over
// pipes, and returns the ingress ready for Process/Finish. cfg
// configures every shard engine on every node identically (same contract
// as shard.New).
func StartLocal(pat *pattern.Pattern, cfg engine.Config, lc LocalConfig) (*Ingress, error) {
	if lc.Nodes <= 0 {
		lc.Nodes = 2
	}
	if lc.ShardsPerNode <= 0 {
		lc.ShardsPerNode = 1
	}
	conns := make([]Conn, lc.Nodes)
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close() // unblocks the node goroutine behind the pipe
			}
		}
	}
	if len(lc.Patterns) > 0 && pat != nil {
		closeAll()
		return nil, fmt.Errorf("cluster: StartLocal with Patterns needs a nil pattern (the set rides the handshake)")
	}
	for i := 0; i < lc.Nodes; i++ {
		node, err := NewNode(NodeConfig{
			Pattern:  pat,
			Engine:   cfg,
			Shards:   lc.ShardsPerNode,
			Batch:    lc.Batch,
			QueueCap: lc.QueueCap,
			Snapshot: lc.Snapshot,
			Window:   lc.Window,
			Overflow: lc.Overflow,
			Key:      lc.Key,
			KeyAttr:  lc.KeyAttr,
			Schema:   lc.Schema,
		})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		client, server := Pipe()
		conns[i] = client
		go func(n *Node, c Conn) {
			if err := n.Serve(c); err != nil && lc.OnNodeErr != nil {
				lc.OnNodeErr(err)
			}
		}(node, server)
	}
	opts := IngressOptions{
		Batch:    lc.Batch,
		Key:      lc.Key,
		KeyAttr:  lc.KeyAttr,
		Schema:   lc.Schema,
		OnMatch:  lc.OnMatch,
		OnTagged: lc.OnTagged,
		Patterns: lc.Patterns,
		Tenants:  lc.Tenants,
		Elastic:  lc.Elastic,
	}
	if lc.Recover {
		if lc.Standbys <= 0 {
			lc.Standbys = 2
		}
		spawned := 0
		opts.Recovery = &RecoveryConfig{
			HeartbeatTimeout: lc.HeartbeatTimeout,
			MaxJournalBytes:  lc.MaxJournalBytes,
			OnFailover:       lc.OnFailover,
			// Each standby is a bare node: it learns the pattern and
			// schema from the Assign frame and its shards from the
			// Migrate handshake (pattern shipping), so the factory needs
			// only the engine config and the key.
			Standby: func() (Conn, error) {
				if spawned >= lc.Standbys {
					return nil, fmt.Errorf("cluster: all %d in-process standbys used", lc.Standbys)
				}
				spawned++
				node, err := NewNode(NodeConfig{
					Engine:   cfg,
					Shards:   lc.ShardsPerNode,
					Batch:    lc.Batch,
					QueueCap: lc.QueueCap,
					Overflow: lc.Overflow,
					Key:      lc.Key,
					KeyAttr:  lc.KeyAttr,
				})
				if err != nil {
					return nil, err
				}
				client, server := Pipe()
				go func() {
					if err := node.Serve(server); err != nil && lc.OnNodeErr != nil {
						lc.OnNodeErr(err)
					}
				}()
				return client, nil
			},
		}
	}
	return NewIngress(pat, conns, opts)
}
