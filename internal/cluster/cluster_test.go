package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/oracle"
	"acep/internal/shard"
	"acep/internal/wire"
)

// keyedWorkload mirrors the shard-layer exactness tests: a small keyed
// stream with a regime shift, so every node's engines adapt mid-stream
// while being checked for exactness.
func keyedWorkload(t *testing.T, dataset string) *gen.Workload {
	t.Helper()
	switch dataset {
	case "traffic":
		return gen.Traffic(gen.TrafficConfig{
			Types: 6, Events: 5000, Seed: 17, Shifts: 1, MeanGap: 3, Keys: 4,
		})
	case "stocks":
		return gen.Stocks(gen.StocksConfig{
			Types: 6, Events: 5000, Seed: 23, MeanGap: 3, DriftEvery: 300, Keys: 8,
		})
	default:
		t.Fatalf("unknown dataset %s", dataset)
		return nil
	}
}

// tagRecorder canonicalizes a tagged-match stream: the wire encoding of
// every match in delivery order. Byte equality of two recordings means
// identical match sets in identical order, down to every attribute bit.
type tagRecorder struct {
	buf  []byte
	n    int
	keys []string
}

func (r *tagRecorder) rec(t shard.Tagged) {
	r.buf = wire.Append(r.buf, wire.TaggedMatch{Seq: t.Seq, M: t.M})
	r.keys = append(r.keys, t.M.Key())
	r.n++
}

// runSharded is the single-process reference: the shard engine at the
// given total shard count.
func runSharded(t *testing.T, w *gen.Workload, kind gen.Kind, shards int) *tagRecorder {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	eng, err := shard.New(pat, engine.Config{CheckEvery: 250}, shard.Options{
		Shards: shards, Batch: 128, KeyAttr: "key", Schema: w.Schema,
		OnTagged: rec.rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	return rec
}

// runClusterTCP runs the workload through a loopback-TCP cluster of
// len(shardsPerNode) worker nodes and returns the recording plus the
// ingress (for metrics assertions).
func runClusterTCP(t *testing.T, w *gen.Workload, kind gen.Kind, shardsPerNode []int) (*tagRecorder, *Ingress) {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, len(shardsPerNode))
	conns := make([]Conn, len(shardsPerNode))
	for i, shards := range shardsPerNode {
		node, err := NewNode(NodeConfig{
			Pattern: pat,
			Engine:  engine.Config{CheckEvery: 250},
			Shards:  shards,
			Batch:   128,
			KeyAttr: "key",
			Schema:  w.Schema,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer l.Close()
			c, err := l.Accept()
			if err != nil {
				serveErr <- err
				return
			}
			serveErr <- node.Serve(c)
		}()
		if conns[i], err = DialTCP(l.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	rec := &tagRecorder{}
	ing, err := NewIngress(pat, conns, IngressOptions{
		Batch: 128, KeyAttr: "key", Schema: w.Schema, OnTagged: rec.rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		ing.Process(&w.Events[i])
	}
	if err := ing.Finish(); err != nil {
		t.Fatalf("ingress finish: %v", err)
	}
	for range shardsPerNode {
		if err := <-serveErr; err != nil {
			t.Fatalf("node serve: %v", err)
		}
	}
	return rec, ing
}

// TestClusterTCPByteIdentical is the layer's central exactness property
// (and the PR's acceptance criterion): a 3-node loopback-TCP cluster
// must deliver a byte-identical match stream, in the identical
// deterministic order, to the single-process sharded engine with the
// same global shard count — across pattern families including negation,
// Kleene closure and composite (OR) patterns, on both workload regimes.
func TestClusterTCPByteIdentical(t *testing.T) {
	shardsPerNode := []int{2, 2, 2} // 3 nodes hosting global shards 0..5
	for _, dataset := range []string{"traffic", "stocks"} {
		w := keyedWorkload(t, dataset)
		for _, kind := range []gen.Kind{gen.Sequence, gen.Negation, gen.Kleene, gen.Composite} {
			want := runSharded(t, w, kind, 6)
			if want.n == 0 {
				t.Fatalf("%s/%v: reference produced no matches; test is vacuous", dataset, kind)
			}
			got, ing := runClusterTCP(t, w, kind, shardsPerNode)
			if !bytes.Equal(got.buf, want.buf) {
				i := 0
				for i < len(got.keys) && i < len(want.keys) && got.keys[i] == want.keys[i] {
					i++
				}
				t.Fatalf("%s/%v: cluster stream diverges from sharded reference (%d vs %d matches, first divergence at %d)",
					dataset, kind, got.n, want.n, i)
			}
			if m := ing.Metrics(); m.EventsArrived != uint64(len(w.Events)) {
				t.Fatalf("%s/%v: cluster metrics saw %d events, stream has %d", dataset, kind, m.EventsArrived, len(w.Events))
			}
		}
	}
}

// TestClusterHeterogeneousNodes: nodes may host different shard counts;
// the match set must still equal the single-threaded engine's.
func TestClusterHeterogeneousNodes(t *testing.T) {
	w := keyedWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	var want []*match.Match
	ref, err := engine.New(pat, engine.Config{CheckEvery: 250, OnMatch: func(m *match.Match) { want = append(want, m) }})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		ref.Process(&w.Events[i])
	}
	ref.Finish()
	wantKeys := oracle.Keys(want)
	if len(wantKeys) == 0 {
		t.Fatal("reference produced no matches")
	}

	rec, _ := runClusterTCP(t, w, gen.Sequence, []int{1, 3, 2})
	if !reflect.DeepEqual(sorted(rec.keys), wantKeys) {
		t.Fatalf("heterogeneous cluster: %d matches vs single-threaded %d", rec.n, len(wantKeys))
	}
}

// TestClusterLocalPipes: the chan transport behaves identically to TCP —
// same protocol, no serialization — across node counts, and reruns
// deliver the identical order (determinism).
func TestClusterLocalPipes(t *testing.T) {
	w := keyedWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := runSharded(t, w, gen.Sequence, 4)
	run := func(nodes, shardsPer int) *tagRecorder {
		rec := &tagRecorder{}
		ing, err := StartLocal(pat, engine.Config{CheckEvery: 250}, LocalConfig{
			Nodes: nodes, ShardsPerNode: shardsPer, Batch: 128,
			KeyAttr: "key", Schema: w.Schema, OnTagged: rec.rec,
			OnNodeErr: func(err error) { t.Errorf("node error: %v", err) },
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Events {
			ing.Process(&w.Events[i])
		}
		if err := ing.Finish(); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	// 1×4, 2×2 and 4×1 all realize the same global 4-shard layout, so
	// all three must reproduce the single-process byte stream.
	for _, layout := range []struct{ nodes, per int }{{1, 4}, {2, 2}, {4, 1}} {
		got := run(layout.nodes, layout.per)
		if !bytes.Equal(got.buf, want.buf) {
			t.Fatalf("%d nodes × %d shards: stream diverges from 4-shard reference (%d vs %d matches)",
				layout.nodes, layout.per, got.n, want.n)
		}
	}
	// Determinism: reruns of one layout are byte-identical.
	a, b := run(2, 2), run(2, 2)
	if !bytes.Equal(a.buf, b.buf) {
		t.Fatal("rerun delivered a different stream")
	}
}

// TestClusterMetrics: per-node metrics arrive over the wire and merge;
// the latency estimators sampled inside each node survive the transport.
func TestClusterMetrics(t *testing.T) {
	w := keyedWorkload(t, "traffic")
	rec, ing := runClusterTCP(t, w, gen.Sequence, []int{2, 2, 2})
	m := ing.Metrics()
	if m.Events != uint64(len(w.Events)) {
		t.Fatalf("merged Events = %d, want %d", m.Events, len(w.Events))
	}
	if m.Matches != uint64(rec.n) {
		t.Fatalf("merged Matches = %d, delivered %d", m.Matches, rec.n)
	}
	per := ing.NodeMetrics()
	if len(per) != 3 {
		t.Fatalf("%d node metrics", len(per))
	}
	var sum uint64
	active := 0
	for _, pm := range per {
		sum += pm.Events
		if pm.Events > 0 {
			active++
		}
	}
	if sum != m.Events {
		t.Fatalf("per-node events sum %d != merged %d", sum, m.Events)
	}
	if active < 2 {
		t.Fatalf("only %d nodes saw events; placement not spreading", active)
	}
	if m.QueueWait.Count() != uint64(len(w.Events)) {
		t.Fatalf("queue-wait samples %d, want one per event", m.QueueWait.Count())
	}
	if m.DetectTime.Count() == 0 || m.DetectTime.Quantile(0.99) <= 0 {
		t.Fatal("detection-time estimator did not survive the wire")
	}
	if ing.Nodes() != 3 || ing.TotalShards() != 6 {
		t.Fatal("Nodes/TotalShards accessors wrong")
	}
}

func sorted(keys []string) []string {
	out := append([]string(nil), keys...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
