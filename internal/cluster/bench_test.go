package cluster

import (
	"testing"

	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/shard"
)

// BenchmarkClusterIngest measures the wire-to-match ingest path end to
// end: one full cluster run (handshake, batch cuts, merge, finish) per
// iteration over a small keyed workload, on both transports — the
// in-process pipe (frames by reference) and loopback TCP (the
// serializing path: delta encode, zero-copy decode into the node's
// arena, columnar mask scan, owned-emit match bytes back). The ns/event
// metric is the per-event cluster overhead; CI runs this as a smoke
// (benchtime=10x), not a measurement.
func BenchmarkClusterIngest(b *testing.B) {
	w := gen.Traffic(gen.TrafficConfig{
		Types: 6, Events: 5000, Seed: 17, Shifts: 1, MeanGap: 3, Keys: 4,
	})
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("pipe", func(b *testing.B) {
		var matches int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ing, err := StartLocal(pat, engine.Config{CheckEvery: 250}, LocalConfig{
				Nodes: 2, ShardsPerNode: 2, Batch: 128,
				KeyAttr: "key", Schema: w.Schema,
				OnTagged: func(shard.Tagged) { matches++ },
			})
			if err != nil {
				b.Fatal(err)
			}
			for j := range w.Events {
				ing.Process(&w.Events[j])
			}
			if err := ing.Finish(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w.Events)), "ns/event")
		if matches == 0 {
			b.Fatal("cluster ingest benchmark detected no matches")
		}
	})

	b.Run("tcp", func(b *testing.B) {
		var matches int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			const nodes = 2
			conns := make([]Conn, nodes)
			serveErr := make(chan error, nodes)
			for n := 0; n < nodes; n++ {
				node, err := NewNode(NodeConfig{
					Pattern: pat, Engine: engine.Config{CheckEvery: 250},
					Shards: 2, Batch: 128, KeyAttr: "key", Schema: w.Schema,
				})
				if err != nil {
					b.Fatal(err)
				}
				l, err := ListenTCP("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				go func() {
					defer l.Close()
					c, err := l.Accept()
					if err != nil {
						serveErr <- err
						return
					}
					serveErr <- node.Serve(c)
				}()
				if conns[n], err = DialTCP(l.Addr()); err != nil {
					b.Fatal(err)
				}
			}
			ing, err := NewIngress(pat, conns, IngressOptions{
				Batch: 128, KeyAttr: "key", Schema: w.Schema,
				OnTagged: func(shard.Tagged) { matches++ },
			})
			if err != nil {
				b.Fatal(err)
			}
			for j := range w.Events {
				ing.Process(&w.Events[j])
			}
			if err := ing.Finish(); err != nil {
				b.Fatal(err)
			}
			for n := 0; n < nodes; n++ {
				if err := <-serveErr; err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w.Events)), "ns/event")
		if matches == 0 {
			b.Fatal("cluster ingest benchmark detected no matches")
		}
	})
}
