package cluster

import (
	"fmt"
	"sync"
	"time"

	"acep/internal/event"
	recovery "acep/internal/recover"
	"acep/internal/wire"
)

// maxAdoptAttempts caps how many successor connections one failover
// will try before degrading the slot: with addresses recycled back
// into the standby pool, an endpoint that keeps accepting and dying
// could otherwise hold the ingress in an adopt loop forever.
const maxAdoptAttempts = 8

// RecoveryConfig enables fault-tolerant failover on an ingress: sealed
// cuts are journaled per shard (internal/recover), node failures are
// detected through transport errors and heartbeat silence, and a dead
// node's shards migrate to a standby connection, which replays each
// shard's journaled history and suppresses every match the collector
// had already released — so the delivered stream stays exactly the one
// a fully healthy cluster (or the single-process sharded engine) would
// produce: no duplicate, no loss, same order.
type RecoveryConfig struct {
	// Standby supplies successor connections, one call per adoption
	// attempt (a fresh acep-node, a survivor's listener — any endpoint
	// speaking the node protocol; bare nodes learn the pattern from the
	// Assign frame and their shards from the Migrate handshake). Called
	// on the ingress goroutine. An error means no standby remains: the
	// failure then surfaces from Finish exactly as it would without
	// recovery configured.
	Standby func() (Conn, error)
	// Window is the pattern's time window for journal sizing (default:
	// the pattern's own Window).
	Window event.Time
	// SlackWindows / MaxJournalBytes tune the journal's retention
	// horizon and memory bound (see recovery.JournalConfig).
	SlackWindows    int
	MaxJournalBytes int64
	// HeartbeatTimeout declares a node dead after this much frame
	// silence even without a transport error (0 disables timeout
	// detection; errors always detect). Checked at every cut.
	HeartbeatTimeout time.Duration
	// OnFailover observes each completed adoption, on the ingress
	// goroutine, as soon as replay has been sent (RecoveredAt is still
	// zero then; read Failovers after Finish for final records).
	OnFailover func(recovery.Failover)
}

// releaseConn returns its standby address to the pool when the
// connection closes, so a consumed standby whose process restarts (and
// re-listens) can be dialed again by a later failover or join.
type releaseConn struct {
	Conn
	addr    string
	once    sync.Once
	release func()
}

func (c *releaseConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}

// RemoteAddr exposes the dialed standby address so an adoption can
// record where the slot now lives (and replicate it to a standby
// coordinator for takeover re-dialing).
func (c *releaseConn) RemoteAddr() string { return c.addr }

// DialStandbys builds a RecoveryConfig.Standby supplier over a list of
// TCP addresses. Each call dials a free address; an address returns to
// the pool when its connection closes, so a standby that was consumed,
// died and restarted its listener is usable again (a failover retries
// it on the next attempt). It errors when every address is in use or
// unreachable — which degrades that failover to the surfaced-error
// behavior.
func DialStandbys(addrs []string) func() (Conn, error) {
	var mu sync.Mutex
	inUse := make([]bool, len(addrs))
	return func() (Conn, error) {
		var lastErr error
		for i := range addrs {
			mu.Lock()
			busy := inUse[i]
			if !busy {
				inUse[i] = true
			}
			mu.Unlock()
			if busy {
				continue
			}
			c, err := DialTCP(addrs[i])
			if err != nil {
				mu.Lock()
				inUse[i] = false
				mu.Unlock()
				lastErr = err
				continue
			}
			i := i
			rc := &releaseConn{Conn: c, addr: addrs[i]}
			rc.release = func() {
				mu.Lock()
				inUse[i] = false
				mu.Unlock()
			}
			return rc, nil
		}
		if lastErr != nil {
			return nil, fmt.Errorf("cluster: no standby address reachable: %w", lastErr)
		}
		return nil, fmt.Errorf("cluster: all %d standby addresses in use", len(addrs))
	}
}

// suspectRec is a failure observed by a reader goroutine, queued for the
// ingress goroutine to act on. gen guards against a stale suspect from a
// previous tenant of the slot killing its successor.
type suspectRec struct {
	node int
	gen  int
	err  error
}

// suspect queues a failure observation from node slot i's reader.
func (in *Ingress) suspect(i, gen int, err error) {
	in.mu.Lock()
	if gen == in.gen[i] {
		in.suspects = append(in.suspects, suspectRec{node: i, gen: gen, err: err})
	}
	in.mu.Unlock()
}

// checkSuspects acts on queued reader failures and heartbeat expiries.
// Runs on the ingress goroutine at every cut and during Finish.
func (in *Ingress) checkSuspects() {
	if in.rec == nil {
		return
	}
	in.mu.Lock()
	sus := in.suspects
	in.suspects = nil
	in.mu.Unlock()
	for _, s := range sus {
		in.mu.Lock()
		stale := s.gen != in.gen[s.node]
		in.mu.Unlock()
		if !stale && !in.dead[s.node] {
			in.failNode(s.node, s.err)
		}
	}
	for n := range in.conns {
		if in.dead[n] {
			continue
		}
		select {
		case <-in.readerDone[n]:
			// The session is over — finished cleanly, or its failure is
			// already queued as a suspect. A finished node stops
			// heartbeating legitimately.
			continue
		default:
		}
		if in.det.Expired(n, in.finSent[n]) {
			in.failNode(n, fmt.Errorf("cluster: node %d silent past the heartbeat timeout", n))
		}
	}
}

// fail routes a node failure to failover (recovery configured) or to the
// record-and-drain path (not configured).
func (in *Ingress) fail(n int, err error) {
	if in.rec != nil {
		in.failNode(n, err)
	} else {
		in.kill(n, err)
	}
}

// failNode declares node slot n dead and drives the failover: stop the
// old reader, drop its aborted in-flight migrations, verify per-shard
// journal coverage, then migrate its shards to standby connections
// until one survives adoption, the attempt cap is hit, or none remain.
func (in *Ingress) failNode(n int, cause error) {
	if in.dead[n] {
		return
	}
	in.dead[n] = true
	in.finSent[n] = false
	// Closing the connection makes the old reader observe the failure
	// and exit without posting; its frames must stop before the
	// collector slot is re-registered.
	in.conns[n].Close()
	<-in.readerDone[n]
	in.dropAbortedMigrations(n)
	owned := in.ownedShards(n)
	if len(owned) == 0 {
		// A drained or never-loaded slot died: nothing to recover, the
		// delivered stream is unaffected. Record the incident and move on.
		now := time.Now()
		in.mu.Lock()
		in.failovers = append(in.failovers, recovery.Failover{
			Node: n, Cause: cause.Error(), DetectedAt: now, RecoveredAt: now,
		})
		in.facked = append(in.facked, 0)
		in.mu.Unlock()
		return
	}
	for _, g := range owned {
		if err := in.journal.CoveredShard(g); err != nil {
			in.degrade(n, fmt.Errorf("%v (node %d failed: %v)", err, n, cause))
			return
		}
	}
	in.mu.Lock()
	fidx := len(in.failovers)
	in.failovers = append(in.failovers, recovery.Failover{
		Node: n, Cause: cause.Error(), DetectedAt: time.Now(),
		JournalBytes: in.journal.Bytes(), JournalCuts: in.journal.Cuts(),
	})
	in.facked = append(in.facked, 0)
	in.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if in.rec.Standby == nil {
			in.popFailover(fidx)
			in.degrade(n, fmt.Errorf("cluster: node %d failed with no standby configured: %w", n, cause))
			return
		}
		if attempt >= maxAdoptAttempts {
			in.popFailover(fidx)
			in.degrade(n, fmt.Errorf("cluster: node %d failed (%v): gave up after %d adoption attempts", n, cause, attempt))
			return
		}
		conn, err := in.rec.Standby()
		if err != nil {
			in.popFailover(fidx)
			in.degrade(n, fmt.Errorf("cluster: node %d failed (%v) and no standby remains: %w", n, cause, err))
			return
		}
		if in.adopt(n, conn, fidx) == nil {
			return
		}
		// The standby itself died during adoption ("during replay" in
		// the kill matrix); the next one re-purges and replays afresh.
	}
}

// popFailover removes a failover record whose every adoption attempt
// failed (its aborted migrations are already dropped, so nothing can
// reference the index).
func (in *Ingress) popFailover(fidx int) {
	in.mu.Lock()
	in.failovers = in.failovers[:fidx]
	in.facked = in.facked[:fidx]
	in.mu.Unlock()
}

// dropAbortedMigrations compacts away every in-flight migration headed
// to slot n — its session is dead, so no acknowledgement will ever
// arrive. Each dropped move is subtracted from its failover's shard
// count, re-checking whether the remaining acknowledged moves now
// complete the record.
func (in *Ingress) dropAbortedMigrations(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	kept := in.migrations[:0]
	keptF := in.migFailover[:0]
	for i, m := range in.migrations {
		fi := in.migFailover[i]
		if m.To == n && m.CompletedAt.IsZero() {
			if fi >= 0 {
				in.failovers[fi].Shards--
				if in.facked[fi] >= in.failovers[fi].Shards && in.failovers[fi].RecoveredAt.IsZero() {
					in.failovers[fi].RecoveredAt = time.Now()
				}
			}
			continue
		}
		kept = append(kept, m)
		keptF = append(keptF, fi)
	}
	in.migrations = kept
	in.migFailover = keptF
}

// degrade gives up on the slot: record the error and abandon its
// shards at the collector so the merge drains instead of deadlocking —
// the exact behavior of a cluster without recovery configured. The
// abandoned shards' history is released from the journal (no replay
// will ever need it) so their frozen frontiers cannot pin retention at
// MaxBytes for the rest of the run.
func (in *Ingress) degrade(n int, err error) {
	in.recordErr(err)
	in.abandoned[n] = true
	in.addrs[n] = ""
	for _, g := range in.ownedShards(n) {
		in.journal.AbandonShard(g)
	}
	in.col.Abandon(n)
}

// adopt hands slot n's shards to one successor connection: handshake,
// a zero-shard Assign (the successor runs a total-sized engine and
// learns its shards from the Migrate frames), then one migrateShard
// per owned shard. On error the connection is closed, its reader (if
// started) has exited, aborted migrations are dropped, and the slot is
// dead again — the caller may try another standby, which re-migrates
// every owned shard afresh.
func (in *Ingress) adopt(n int, conn Conn, fidx int) error {
	f, err := conn.Recv()
	if err != nil {
		conn.Close()
		return fmt.Errorf("cluster: standby hello for node %d: %w", n, err)
	}
	h, ok := f.(wire.Hello)
	if !ok {
		conn.Close()
		return fmt.Errorf("cluster: standby for node %d sent %s, want hello", n, wire.KindOf(f))
	}
	if h.Version != wire.Version {
		conn.Close()
		return fmt.Errorf("cluster: standby for node %d speaks protocol v%d, ingress v%d", n, h.Version, wire.Version)
	}
	// A bare standby (sig 0) learns the pattern from the Assign frame;
	// a configured one must already match.
	if h.PatternSig != 0 && h.PatternSig != in.sig {
		conn.Close()
		return fmt.Errorf("cluster: standby for node %d serves a different pattern (fingerprint %x, want %x)", n, h.PatternSig, in.sig)
	}
	if err := conn.Send(in.assignFrame(0, 0)); err != nil {
		conn.Close()
		return fmt.Errorf("cluster: assigning standby for node %d: %w", n, err)
	}

	// Register the new session and start its reader before replaying:
	// the reader must drain the upstream (matches, heartbeats, acks)
	// while replay cuts flow down, or a bounded transport fills in both
	// directions and deadlocks. An adoption retry resets the per-replay
	// aggregates the failed attempt accumulated; the final shard's ack
	// re-stamps RecoveredAt, so a premature stamp cannot survive.
	in.mu.Lock()
	in.gen[n]++
	gen := in.gen[n]
	in.stats[n] = nil
	fr := &in.failovers[fidx]
	fr.Shards, fr.SuppressUpTo, fr.ReplayUpTo = 0, 0, 0
	fr.ReplayCuts, fr.ReplayEvents, fr.ReplayBytes = 0, 0, 0
	fr.RecoveredAt = time.Time{}
	in.facked[fidx] = 0
	in.mu.Unlock()
	in.conns[n] = conn
	in.hosted[n] = map[int]bool{} // a fresh session has hosted nothing
	done := make(chan struct{})
	in.readerDone[n] = done
	in.det.Heard(n)
	in.readers.Add(1)
	go in.read(n, conn, gen, done)

	for _, g := range in.ownedShards(n) {
		if err := in.migrateShard(g, n, "failover", fidx); err != nil {
			in.dead[n] = true
			conn.Close()
			<-done
			in.dropAbortedMigrations(n)
			return err
		}
	}
	in.dead[n] = false
	in.addrs[n] = connAddr(conn) // the slot now lives at the standby's address
	in.routeBroadcast()
	if in.rec.OnFailover != nil {
		in.mu.Lock()
		snap := in.failovers[fidx]
		in.mu.Unlock()
		in.rec.OnFailover(snap)
	}
	return nil
}

// drainRecovered is Finish's wait loop with recovery configured: it
// blocks until every reader has exited cleanly, while still detecting
// and failing over nodes that die — or fall heartbeat-silent — during
// the drain. Successors adopted here receive the Finish frame and
// deliver the missing tail before the merge closes.
func (in *Ingress) drainRecovered() {
	var poll time.Duration
	if in.rec.HeartbeatTimeout > 0 {
		// A silent node produces no reader exit to wake on; poll a few
		// times per timeout so expiry is noticed promptly.
		poll = in.rec.HeartbeatTimeout / 4
		if poll < 5*time.Millisecond {
			poll = 5 * time.Millisecond
		}
		if poll > 250*time.Millisecond {
			poll = 250 * time.Millisecond
		}
	}
	for {
		in.checkSuspects()
		in.finishNodes()
		idle := true
		for n := range in.conns {
			select {
			case <-in.readerDone[n]:
			default:
				idle = false
			}
		}
		in.mu.Lock()
		pending := len(in.suspects)
		in.mu.Unlock()
		if pending > 0 {
			continue // act on fresh suspects immediately
		}
		if idle {
			return
		}
		if poll > 0 {
			select {
			case <-in.exitCh:
			case <-time.After(poll):
			}
		} else {
			<-in.exitCh
		}
	}
}

// Failovers reports the node-death incidents so far, in order. Call
// after Finish for settled RecoveredAt stamps.
func (in *Ingress) Failovers() []recovery.Failover {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]recovery.Failover, len(in.failovers))
	copy(out, in.failovers)
	return out
}
