package cluster

import (
	"fmt"
	"time"

	"acep/internal/event"
	recovery "acep/internal/recover"
	"acep/internal/wire"
)

// RecoveryConfig enables fault-tolerant failover on an ingress: sealed
// cuts are journaled (internal/recover), node failures are detected
// through transport errors and heartbeat silence, and a dead node's
// shard block is reassigned to a standby connection, which replays the
// journaled history of the block and suppresses every match the
// collector had already released — so the delivered stream stays exactly
// the one a fully healthy cluster (or the single-process sharded engine)
// would produce: no duplicate, no loss, same order.
type RecoveryConfig struct {
	// Standby supplies successor connections, one call per adoption
	// attempt (a fresh acep-node, a survivor's listener — any endpoint
	// speaking the node protocol; bare nodes learn the pattern from the
	// Reassign handshake). Called on the ingress goroutine. An error
	// means no standby remains: the failure then surfaces from Finish
	// exactly as it would without recovery configured.
	Standby func() (Conn, error)
	// Window is the pattern's time window for journal sizing (default:
	// the pattern's own Window).
	Window event.Time
	// SlackWindows / MaxJournalBytes tune the journal's retention
	// horizon and memory bound (see recovery.JournalConfig).
	SlackWindows    int
	MaxJournalBytes int64
	// HeartbeatTimeout declares a node dead after this much frame
	// silence even without a transport error (0 disables timeout
	// detection; errors always detect). Checked at every cut.
	HeartbeatTimeout time.Duration
	// OnFailover observes each completed adoption, on the ingress
	// goroutine, as soon as replay has been sent (RecoveredAt is still
	// zero then; read Failovers after Finish for final records).
	OnFailover func(recovery.Failover)
}

// DialStandbys builds a RecoveryConfig.Standby supplier over a list of
// TCP addresses: each failover attempt dials the next address, erroring
// when all are used (which degrades that failover to the surfaced-error
// behavior).
func DialStandbys(addrs []string) func() (Conn, error) {
	next := 0
	return func() (Conn, error) {
		if next >= len(addrs) {
			return nil, fmt.Errorf("cluster: all %d standby addresses used", len(addrs))
		}
		c, err := DialTCP(addrs[next])
		next++
		return c, err
	}
}

// suspectRec is a failure observed by a reader goroutine, queued for the
// ingress goroutine to act on. gen guards against a stale suspect from a
// previous tenant of the slot killing its successor.
type suspectRec struct {
	node int
	gen  int
	err  error
}

// suspect queues a failure observation from node slot i's reader.
func (in *Ingress) suspect(i, gen int, err error) {
	in.mu.Lock()
	if gen == in.gen[i] {
		in.suspects = append(in.suspects, suspectRec{node: i, gen: gen, err: err})
	}
	in.mu.Unlock()
}

// checkSuspects acts on queued reader failures and heartbeat expiries.
// Runs on the ingress goroutine at every cut and during Finish.
func (in *Ingress) checkSuspects() {
	if in.rec == nil {
		return
	}
	in.mu.Lock()
	sus := in.suspects
	in.suspects = nil
	in.mu.Unlock()
	for _, s := range sus {
		in.mu.Lock()
		stale := s.gen != in.gen[s.node]
		in.mu.Unlock()
		if !stale && !in.dead[s.node] {
			in.failNode(s.node, s.err)
		}
	}
	for n := range in.conns {
		if in.dead[n] {
			continue
		}
		select {
		case <-in.readerDone[n]:
			// The session is over — finished cleanly, or its failure is
			// already queued as a suspect. A finished node stops
			// heartbeating legitimately.
			continue
		default:
		}
		if in.det.Expired(n, in.finSent[n]) {
			in.failNode(n, fmt.Errorf("cluster: node %d silent past the heartbeat timeout", n))
		}
	}
}

// fail routes a node failure to failover (recovery configured) or to the
// record-and-drain path (not configured).
func (in *Ingress) fail(n int, err error) {
	if in.rec != nil {
		in.failNode(n, err)
	} else {
		in.kill(n, err)
	}
}

// failNode declares node slot n dead and drives the failover: stop the
// old reader, verify journal coverage, then hand the block to standby
// connections until one survives adoption or none remain.
func (in *Ingress) failNode(n int, cause error) {
	if in.dead[n] {
		return
	}
	in.dead[n] = true
	in.finSent[n] = false
	// Closing the connection makes the old reader observe the failure
	// and exit without posting; its frames must stop before the
	// collector slot is re-registered.
	in.conns[n].Close()
	<-in.readerDone[n]
	if err := in.journal.Covered(in.base[n], in.nodeShards[n]); err != nil {
		in.degrade(n, fmt.Errorf("%v (node %d failed: %v)", err, n, cause))
		return
	}
	rec := recovery.Failover{Node: n, Cause: cause.Error(), DetectedAt: time.Now()}
	for {
		if in.rec.Standby == nil {
			in.degrade(n, fmt.Errorf("cluster: node %d failed with no standby configured: %w", n, cause))
			return
		}
		conn, err := in.rec.Standby()
		if err != nil {
			in.degrade(n, fmt.Errorf("cluster: node %d failed (%v) and no standby remains: %w", n, cause, err))
			return
		}
		if in.adopt(n, conn, rec) == nil {
			return
		}
		// The standby itself died during adoption ("during replay" in
		// the kill matrix); the next one re-purges and replays afresh.
	}
}

// degrade gives up on the slot: record the error and post the terminal
// watermark so the merge drains instead of deadlocking — the exact
// behavior of a cluster without recovery configured. The abandoned
// block's history is released from the journal (no replay will ever
// need it) so its frozen frontier cannot pin retention at MaxBytes for
// the rest of the run.
func (in *Ingress) degrade(n int, err error) {
	in.recordErr(err)
	in.abandoned[n] = true
	in.journal.Abandon(in.base[n], in.nodeShards[n])
	in.col.Post(n, maxSeq, nil)
}

// adopt hands shard block n to one successor connection: handshake,
// collector re-registration, Reassign, then journal replay. On error the
// connection is closed, its reader (if started) has exited, and the slot
// is still dead — the caller may try another standby.
func (in *Ingress) adopt(n int, conn Conn, rec recovery.Failover) error {
	f, err := conn.Recv()
	if err != nil {
		conn.Close()
		return fmt.Errorf("cluster: standby hello for node %d: %w", n, err)
	}
	h, ok := f.(wire.Hello)
	if !ok {
		conn.Close()
		return fmt.Errorf("cluster: standby for node %d sent %s, want hello", n, wire.KindOf(f))
	}
	if h.Version != wire.Version {
		conn.Close()
		return fmt.Errorf("cluster: standby for node %d speaks protocol v%d, ingress v%d", n, h.Version, wire.Version)
	}
	// A bare standby (sig 0) learns the pattern from the Reassign frame;
	// a configured one must already match.
	if h.PatternSig != 0 && h.PatternSig != in.sig {
		conn.Close()
		return fmt.Errorf("cluster: standby for node %d serves a different pattern (fingerprint %x, want %x)", n, h.PatternSig, in.sig)
	}

	// Re-register the collector slot. Everything at or below the
	// returned boundary has been delivered — the successor suppresses
	// regenerated matches up to it — and the slot's buffered remainder
	// is purged here, to be regenerated by replay.
	boundary := in.col.Reassign(n)
	rec.SuppressUpTo = boundary
	rec.ReplayUpTo = in.journal.ReplayUpTo(n)
	rec.JournalBytes, rec.JournalCuts = in.journal.Bytes(), in.journal.Cuts()
	if err := conn.Send(wire.Reassign{
		Base:         uint32(in.base[n]),
		Shards:       uint32(in.nodeShards[n]),
		Total:        uint32(in.total),
		SuppressUpTo: boundary,
		ReplayUpTo:   rec.ReplayUpTo,
		Pattern:      in.pat,
		Schema:       in.schema,
	}); err != nil {
		conn.Close()
		return fmt.Errorf("cluster: reassigning node %d block: %w", n, err)
	}

	// Register the record and start the successor's reader before
	// replaying: the reader must drain the upstream (matches, heartbeats,
	// RecoveryDone) while replay cuts flow down, or a bounded transport
	// fills in both directions and deadlocks.
	in.mu.Lock()
	in.gen[n]++
	gen := in.gen[n]
	idx := len(in.failovers)
	in.failovers = append(in.failovers, rec)
	in.mu.Unlock()
	in.conns[n] = conn
	done := make(chan struct{})
	in.readerDone[n] = done
	in.det.Heard(n)
	in.readers.Add(1)
	go in.read(n, conn, gen, done)

	replayErr := in.journal.Replay(n, func(evs []event.Event, upTo uint64) error {
		rec.ReplayCuts++
		rec.ReplayEvents += len(evs)
		rec.ReplayBytes += recovery.EventsBytes(evs)
		in.det.Sent(n)
		return conn.Send(wire.Batch{UpTo: upTo, Events: evs})
	})
	if replayErr != nil {
		conn.Close()
		<-done
		in.mu.Lock()
		in.failovers = in.failovers[:idx]
		in.mu.Unlock()
		return fmt.Errorf("cluster: replaying node %d block: %w", n, replayErr)
	}
	in.dead[n] = false
	in.mu.Lock()
	in.failovers[idx].ReplayCuts = rec.ReplayCuts
	in.failovers[idx].ReplayEvents = rec.ReplayEvents
	in.failovers[idx].ReplayBytes = rec.ReplayBytes
	rec.RecoveredAt = in.failovers[idx].RecoveredAt
	in.mu.Unlock()
	if in.rec.OnFailover != nil {
		in.rec.OnFailover(rec)
	}
	return nil
}

// drainRecovered is Finish's wait loop with recovery configured: it
// blocks until every reader has exited cleanly, while still detecting
// and failing over nodes that die — or fall heartbeat-silent — during
// the drain. Successors adopted here receive the Finish frame and
// deliver the missing tail before the merge closes.
func (in *Ingress) drainRecovered() {
	var poll time.Duration
	if in.rec.HeartbeatTimeout > 0 {
		// A silent node produces no reader exit to wake on; poll a few
		// times per timeout so expiry is noticed promptly.
		poll = in.rec.HeartbeatTimeout / 4
		if poll < 5*time.Millisecond {
			poll = 5 * time.Millisecond
		}
		if poll > 250*time.Millisecond {
			poll = 250 * time.Millisecond
		}
	}
	for {
		in.checkSuspects()
		in.finishNodes()
		idle := true
		for n := range in.conns {
			select {
			case <-in.readerDone[n]:
			default:
				idle = false
			}
		}
		in.mu.Lock()
		pending := len(in.suspects)
		in.mu.Unlock()
		if pending > 0 {
			continue // act on fresh suspects immediately
		}
		if idle {
			return
		}
		if poll > 0 {
			select {
			case <-in.exitCh:
			case <-time.After(poll):
			}
		} else {
			<-in.exitCh
		}
	}
}

// recoveredNode stamps the youngest in-flight failover of slot n on
// receipt of the successor's RecoveryDone frame (reader goroutine).
func (in *Ingress) recoveredNode(n int) {
	in.mu.Lock()
	for k := len(in.failovers) - 1; k >= 0; k-- {
		if in.failovers[k].Node == n && in.failovers[k].RecoveredAt.IsZero() {
			in.failovers[k].RecoveredAt = time.Now()
			break
		}
	}
	in.mu.Unlock()
}

// Failovers reports the completed failovers, in order. Call after Finish
// for settled RecoveredAt stamps.
func (in *Ingress) Failovers() []recovery.Failover {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]recovery.Failover, len(in.failovers))
	copy(out, in.failovers)
	return out
}
