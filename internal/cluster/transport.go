// Package cluster is the distributed execution layer: it scales the
// key-partitioned shard engine (internal/shard) across processes and
// machines. A worker Node hosts a contiguous block of the global shard
// space behind a transport connection; the Ingress coordinator partitions
// the input stream across nodes with the same consistent placement the
// shard layer uses locally, drives uniform watermark cuts so idle nodes
// still advance, and merges the node match streams — already ordered
// per node — through the shard layer's heap Collector into one
// deterministic global output.
//
// The paper's adaptation method applies per partition without
// modification (§7), so every shard engine inside every node keeps its
// own plan, statistics and invariants; nothing about adaptation crosses
// the wire. For key-partitionable patterns (shard.Partitionable) the
// cluster's match set is exactly the single-process sharded engine's —
// byte-identical, in the identical deterministic order — because the
// global placement function, the per-shard event subsequences, and the
// (sequence, shard, emission) merge order are all preserved across the
// distribution boundary. internal/cluster tests verify this on loopback
// TCP against internal/shard directly.
//
// Messages travel as internal/wire frames over a Conn, the transport
// abstraction with three implementations: an in-process channel pipe
// (Pipe), loopback/remote TCP (ListenTCP/DialTCP), and failure-injecting
// wrappers in the tests.
package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"acep/internal/match"
	"acep/internal/wire"
)

// Conn is one ordered, bidirectional frame connection between the
// ingress and a node. Implementations need not support concurrent Send
// calls (each endpoint writes from one goroutine at a time); Recv may run
// concurrently with Send. Close releases the connection; a Recv on the
// other end then drains buffered frames and reports io.EOF.
type Conn interface {
	Send(wire.Frame) error
	Recv() (wire.Frame, error)
	Close() error
}

// pipeDepth is the per-direction frame buffer of an in-process pipe;
// when a node falls this many cuts behind, the ingress's Send blocks —
// the same backpressure a TCP socket buffer provides.
const pipeDepth = 64

// pipeHalf is one endpoint of an in-process connection.
type pipeHalf struct {
	out      chan wire.Frame
	in       chan wire.Frame
	ownDone  chan struct{}
	peerDone chan struct{}
	once     sync.Once
}

// Pipe returns the two endpoints of an in-process connection: frames
// sent on one are received on the other, in order. It is the chan-based
// transport the in-process cluster (and the transport-agnostic tests)
// run on — no serialization, but the identical protocol surface.
func Pipe() (Conn, Conn) {
	ab := make(chan wire.Frame, pipeDepth)
	ba := make(chan wire.Frame, pipeDepth)
	aDone := make(chan struct{})
	bDone := make(chan struct{})
	a := &pipeHalf{out: ab, in: ba, ownDone: aDone, peerDone: bDone}
	b := &pipeHalf{out: ba, in: ab, ownDone: bDone, peerDone: aDone}
	return a, b
}

func (p *pipeHalf) Send(f wire.Frame) error {
	select {
	case <-p.ownDone:
		return fmt.Errorf("cluster: send on closed pipe")
	default:
	}
	select {
	case p.out <- f:
		return nil
	case <-p.peerDone:
		return fmt.Errorf("cluster: pipe peer closed: %w", io.ErrClosedPipe)
	}
}

func (p *pipeHalf) Recv() (wire.Frame, error) {
	// Drain buffered frames even after the peer closed, so a clean
	// shutdown delivers everything already sent.
	f, ok := <-p.in
	if !ok {
		return nil, io.EOF
	}
	return f, nil
}

func (p *pipeHalf) Close() error {
	p.once.Do(func() {
		close(p.ownDone)
		close(p.out)
	})
	return nil
}

// streamConn frames wire messages over any io stream (TCP here). Both
// directions are buffered: reads through a bufio.Reader so a frame's
// length prefix and body (and any frames already queued in the socket)
// cost one read syscall instead of two each, and writes through a
// bufio.Writer that Send flushes by default — one syscall per frame,
// the pre-buffering behavior. A session that emits bursts of small
// frames (a node's per-cut heartbeat, watermark and matches) can probe
// for SetSendHold/Flush and coalesce a burst into a single write.
type streamConn struct {
	c    net.Conn
	sc   *stallNetConn
	r    *wire.Reader
	bw   *bufio.Writer
	w    *wire.Writer
	hold bool
}

const streamBufSize = 32 << 10

func newStreamConn(c net.Conn) Conn {
	sc := &stallNetConn{Conn: c}
	bw := bufio.NewWriterSize(sc, streamBufSize)
	return &streamConn{
		c:  c,
		sc: sc,
		r:  wire.NewReader(bufio.NewReaderSize(sc, streamBufSize)),
		bw: bw,
		w:  wire.NewWriter(bw),
	}
}

// WrapNetConn frames wire messages over an already-established net.Conn.
// Callers that need their own socket setup (chaos wrappers, shrunken
// kernel buffers in tests, custom dialers) use this instead of DialTCP;
// the result is the same streamConn DialTCP returns, including the
// SetWriteStall/SetReadStall probes.
func WrapNetConn(c net.Conn) Conn { return newStreamConn(c) }

// stallSlices is how many deadline slices a stall window is cut into:
// progress within any slice resets the stall clock, so only a peer that
// accepts zero bytes for the whole window trips the error — a slow
// reader that drains even one byte per slice never does.
const stallSlices = 4

// stallNetConn wraps a net.Conn with progress-based stall detection.
// A plain absolute deadline cannot distinguish a wedged peer from a
// merely slow one on a large write; instead each Read/Write runs under
// sliced deadlines and errors only after *zero bytes of progress* for
// the full stall window. Durations are atomics so probes may arm and
// disarm them while the connection is in use; a zero duration (the
// default) bypasses deadlines entirely.
type stallNetConn struct {
	net.Conn
	writeStall atomic.Int64
	readStall  atomic.Int64
}

func (s *stallNetConn) Write(p []byte) (n int, err error) {
	d := time.Duration(s.writeStall.Load())
	if d <= 0 {
		return s.Conn.Write(p)
	}
	slice := d / stallSlices
	if slice < time.Millisecond {
		slice = time.Millisecond
	}
	var idle time.Duration
	for n < len(p) {
		s.Conn.SetWriteDeadline(time.Now().Add(slice))
		m, werr := s.Conn.Write(p[n:])
		n += m
		if werr == nil {
			idle = 0
			continue
		}
		var ne net.Error
		if errors.As(werr, &ne) && ne.Timeout() {
			if m > 0 {
				idle = 0 // progress: the peer is slow, not wedged
				continue
			}
			idle += slice
			if idle < d {
				continue
			}
			werr = fmt.Errorf("cluster: write stalled %v with zero progress: %w", d, werr)
		}
		s.Conn.SetWriteDeadline(time.Time{})
		return n, werr
	}
	s.Conn.SetWriteDeadline(time.Time{})
	return n, nil
}

func (s *stallNetConn) Read(p []byte) (int, error) {
	d := time.Duration(s.readStall.Load())
	if d <= 0 {
		return s.Conn.Read(p)
	}
	slice := d / stallSlices
	if slice < time.Millisecond {
		slice = time.Millisecond
	}
	var idle time.Duration
	for {
		s.Conn.SetReadDeadline(time.Now().Add(slice))
		n, err := s.Conn.Read(p)
		if n > 0 || err == nil {
			s.Conn.SetReadDeadline(time.Time{})
			return n, err
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			idle += slice
			if idle < d {
				continue
			}
			err = fmt.Errorf("cluster: read stalled %v with zero progress: %w", d, err)
		}
		s.Conn.SetReadDeadline(time.Time{})
		return n, err
	}
}

func (s *streamConn) Send(f wire.Frame) error {
	if err := s.w.Write(f); err != nil {
		return err
	}
	if s.hold {
		return nil
	}
	return s.bw.Flush()
}

// SetSendHold switches Send between write-through (false, the default:
// every frame is flushed to the socket immediately) and held mode
// (true: frames accumulate in the write buffer until Flush). Held mode
// is only safe when the caller owns a protocol quiescence point to
// flush at — the node flushes after handling each inbound frame and at
// session end — since a held frame the peer is waiting for would
// otherwise deadlock the session. Callers probe for this method; the
// in-process pipe delivers frames by reference and does not buffer.
func (s *streamConn) SetSendHold(on bool) { s.hold = on }

// Flush writes any held frames through to the socket.
func (s *streamConn) Flush() error { return s.bw.Flush() }

// RemoteAddr reports the peer's network address. The ingress replicates
// it per node slot so a standby coordinator can re-dial the worker on
// takeover; the in-process pipe deliberately has no analogue.
func (s *streamConn) RemoteAddr() string { return s.c.RemoteAddr().String() }

// SetDecodeArena switches the receive side to zero-copy batch decoding:
// Batch frames decode straight into arena chunks and surface as
// wire.BatchView (see wire.Reader.SetDecodeArena). Nodes probe for this
// method on their Conn — it marks a serializing transport, where the
// decode-into-arena and owned-emit paths pay off; the in-process pipe
// passes frames by reference and deliberately does not implement it.
func (s *streamConn) SetDecodeArena(a *match.Arena) { s.r.SetDecodeArena(a) }
func (s *streamConn) Recv() (wire.Frame, error) {
	f, err := s.r.Read()
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("cluster: recv: %w", err)
	}
	return f, err
}
func (s *streamConn) Close() error { return s.c.Close() }

// SetWriteStall arms (d > 0) or disarms (d <= 0) progress-based write
// stall detection: a Send that makes zero bytes of progress for d fails
// with a link error instead of blocking forever on a blackholed peer.
// Callers probe for this method; the in-process pipe backpressures by
// design and does not implement it.
func (s *streamConn) SetWriteStall(d time.Duration) { s.sc.writeStall.Store(int64(d)) }

// SetReadStall arms (d > 0) or disarms (d <= 0) progress-based read
// stall detection. Unlike the write side this must only stay armed while
// a response is actually owed (an RPC in flight, a handshake reply): an
// idle connection legitimately carries nothing for long stretches.
func (s *streamConn) SetReadStall(d time.Duration) { s.sc.readStall.Store(int64(d)) }

// DialPolicy bounds a TCP dial: a per-attempt connect timeout plus
// bounded exponential backoff with jitter between attempts. The zero
// value means the package defaults (3s timeout, 3 attempts, 50ms base
// backoff capped at 500ms).
type DialPolicy struct {
	Timeout    time.Duration // per-attempt connect timeout
	Attempts   int           // total connect attempts
	Backoff    time.Duration // base wait before the second attempt
	MaxBackoff time.Duration // backoff growth cap
}

func (p DialPolicy) withDefaults() DialPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 3 * time.Second
	}
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	return p
}

// DialTCPContext connects to a listener under a DialPolicy: each attempt
// gets its own connect timeout, attempts are separated by exponential
// backoff with ±50% jitter (so a herd of redialing coordinators doesn't
// self-synchronize), and the returned error carries the full per-attempt
// trail. The context aborts both connects in flight and backoff waits.
func DialTCPContext(ctx context.Context, addr string, p DialPolicy) (Conn, error) {
	p = p.withDefaults()
	d := net.Dialer{Timeout: p.Timeout}
	backoff := p.Backoff
	var trail []error
	for i := 0; i < p.Attempts; i++ {
		if i > 0 {
			wait := backoff/2 + rand.N(backoff)
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				trail = append(trail, ctx.Err())
				return nil, fmt.Errorf("cluster: dial %s: %w", addr, errors.Join(trail...))
			}
			if backoff *= 2; backoff > p.MaxBackoff {
				backoff = p.MaxBackoff
			}
		}
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return newStreamConn(c), nil
		}
		trail = append(trail, fmt.Errorf("attempt %d: %w", i+1, err))
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("cluster: dial %s after %d attempts: %w", addr, len(trail), errors.Join(trail...))
}

// DialTCP connects to a node's listener and returns the framed
// connection, under the default DialPolicy — a bounded dial with
// retries, never the unkillable bare net.Dial it once was.
func DialTCP(addr string) (Conn, error) {
	return DialTCPContext(context.Background(), addr, DialPolicy{})
}

// Listener accepts framed node connections over TCP.
type Listener struct {
	l net.Listener
}

// ListenTCP binds a node listener; pass ":0" (or "127.0.0.1:0" for
// loopback-only) to let the kernel pick a port, then read Addr.
func ListenTCP(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Accept waits for the next ingress connection.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return newStreamConn(c), nil
}

// Addr reports the bound address (with the resolved port).
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }
