// Package cluster is the distributed execution layer: it scales the
// key-partitioned shard engine (internal/shard) across processes and
// machines. A worker Node hosts a contiguous block of the global shard
// space behind a transport connection; the Ingress coordinator partitions
// the input stream across nodes with the same consistent placement the
// shard layer uses locally, drives uniform watermark cuts so idle nodes
// still advance, and merges the node match streams — already ordered
// per node — through the shard layer's heap Collector into one
// deterministic global output.
//
// The paper's adaptation method applies per partition without
// modification (§7), so every shard engine inside every node keeps its
// own plan, statistics and invariants; nothing about adaptation crosses
// the wire. For key-partitionable patterns (shard.Partitionable) the
// cluster's match set is exactly the single-process sharded engine's —
// byte-identical, in the identical deterministic order — because the
// global placement function, the per-shard event subsequences, and the
// (sequence, shard, emission) merge order are all preserved across the
// distribution boundary. internal/cluster tests verify this on loopback
// TCP against internal/shard directly.
//
// Messages travel as internal/wire frames over a Conn, the transport
// abstraction with three implementations: an in-process channel pipe
// (Pipe), loopback/remote TCP (ListenTCP/DialTCP), and failure-injecting
// wrappers in the tests.
package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"acep/internal/match"
	"acep/internal/wire"
)

// Conn is one ordered, bidirectional frame connection between the
// ingress and a node. Implementations need not support concurrent Send
// calls (each endpoint writes from one goroutine at a time); Recv may run
// concurrently with Send. Close releases the connection; a Recv on the
// other end then drains buffered frames and reports io.EOF.
type Conn interface {
	Send(wire.Frame) error
	Recv() (wire.Frame, error)
	Close() error
}

// pipeDepth is the per-direction frame buffer of an in-process pipe;
// when a node falls this many cuts behind, the ingress's Send blocks —
// the same backpressure a TCP socket buffer provides.
const pipeDepth = 64

// pipeHalf is one endpoint of an in-process connection.
type pipeHalf struct {
	out      chan wire.Frame
	in       chan wire.Frame
	ownDone  chan struct{}
	peerDone chan struct{}
	once     sync.Once
}

// Pipe returns the two endpoints of an in-process connection: frames
// sent on one are received on the other, in order. It is the chan-based
// transport the in-process cluster (and the transport-agnostic tests)
// run on — no serialization, but the identical protocol surface.
func Pipe() (Conn, Conn) {
	ab := make(chan wire.Frame, pipeDepth)
	ba := make(chan wire.Frame, pipeDepth)
	aDone := make(chan struct{})
	bDone := make(chan struct{})
	a := &pipeHalf{out: ab, in: ba, ownDone: aDone, peerDone: bDone}
	b := &pipeHalf{out: ba, in: ab, ownDone: bDone, peerDone: aDone}
	return a, b
}

func (p *pipeHalf) Send(f wire.Frame) error {
	select {
	case <-p.ownDone:
		return fmt.Errorf("cluster: send on closed pipe")
	default:
	}
	select {
	case p.out <- f:
		return nil
	case <-p.peerDone:
		return fmt.Errorf("cluster: pipe peer closed: %w", io.ErrClosedPipe)
	}
}

func (p *pipeHalf) Recv() (wire.Frame, error) {
	// Drain buffered frames even after the peer closed, so a clean
	// shutdown delivers everything already sent.
	f, ok := <-p.in
	if !ok {
		return nil, io.EOF
	}
	return f, nil
}

func (p *pipeHalf) Close() error {
	p.once.Do(func() {
		close(p.ownDone)
		close(p.out)
	})
	return nil
}

// streamConn frames wire messages over any io stream (TCP here). Both
// directions are buffered: reads through a bufio.Reader so a frame's
// length prefix and body (and any frames already queued in the socket)
// cost one read syscall instead of two each, and writes through a
// bufio.Writer that Send flushes by default — one syscall per frame,
// the pre-buffering behavior. A session that emits bursts of small
// frames (a node's per-cut heartbeat, watermark and matches) can probe
// for SetSendHold/Flush and coalesce a burst into a single write.
type streamConn struct {
	c    net.Conn
	r    *wire.Reader
	bw   *bufio.Writer
	w    *wire.Writer
	hold bool
}

const streamBufSize = 32 << 10

func newStreamConn(c net.Conn) Conn {
	bw := bufio.NewWriterSize(c, streamBufSize)
	return &streamConn{
		c:  c,
		r:  wire.NewReader(bufio.NewReaderSize(c, streamBufSize)),
		bw: bw,
		w:  wire.NewWriter(bw),
	}
}

func (s *streamConn) Send(f wire.Frame) error {
	if err := s.w.Write(f); err != nil {
		return err
	}
	if s.hold {
		return nil
	}
	return s.bw.Flush()
}

// SetSendHold switches Send between write-through (false, the default:
// every frame is flushed to the socket immediately) and held mode
// (true: frames accumulate in the write buffer until Flush). Held mode
// is only safe when the caller owns a protocol quiescence point to
// flush at — the node flushes after handling each inbound frame and at
// session end — since a held frame the peer is waiting for would
// otherwise deadlock the session. Callers probe for this method; the
// in-process pipe delivers frames by reference and does not buffer.
func (s *streamConn) SetSendHold(on bool) { s.hold = on }

// Flush writes any held frames through to the socket.
func (s *streamConn) Flush() error { return s.bw.Flush() }

// RemoteAddr reports the peer's network address. The ingress replicates
// it per node slot so a standby coordinator can re-dial the worker on
// takeover; the in-process pipe deliberately has no analogue.
func (s *streamConn) RemoteAddr() string { return s.c.RemoteAddr().String() }

// SetDecodeArena switches the receive side to zero-copy batch decoding:
// Batch frames decode straight into arena chunks and surface as
// wire.BatchView (see wire.Reader.SetDecodeArena). Nodes probe for this
// method on their Conn — it marks a serializing transport, where the
// decode-into-arena and owned-emit paths pay off; the in-process pipe
// passes frames by reference and deliberately does not implement it.
func (s *streamConn) SetDecodeArena(a *match.Arena) { s.r.SetDecodeArena(a) }
func (s *streamConn) Recv() (wire.Frame, error) {
	f, err := s.r.Read()
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("cluster: recv: %w", err)
	}
	return f, err
}
func (s *streamConn) Close() error { return s.c.Close() }

// DialTCP connects to a node's listener and returns the framed
// connection.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return newStreamConn(c), nil
}

// Listener accepts framed node connections over TCP.
type Listener struct {
	l net.Listener
}

// ListenTCP binds a node listener; pass ":0" (or "127.0.0.1:0" for
// loopback-only) to let the kernel pick a port, then read Addr.
func ListenTCP(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Accept waits for the next ingress connection.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return newStreamConn(c), nil
}

// Addr reports the bound address (with the resolved port).
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }
