package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	recovery "acep/internal/recover"
	"acep/internal/shard"
	"acep/internal/wire"
)

// seqRecorder is a tagRecorder that also remembers each match's tag and
// byte offset, so a recording can be truncated to the prefix at or
// below a watermark — the emission boundary a takeover successor
// resumes from.
type seqRecorder struct {
	mu   sync.Mutex
	buf  []byte
	offs []int
	seqs []uint64
}

func (r *seqRecorder) rec(t shard.Tagged) {
	r.mu.Lock()
	r.offs = append(r.offs, len(r.buf))
	r.seqs = append(r.seqs, t.Seq)
	r.buf = wire.Append(r.buf, wire.TaggedMatch{Seq: t.Seq, M: t.M})
	r.mu.Unlock()
}

// prefix returns the encoded matches with Seq <= upTo. Collector
// delivery is monotone in merge order, so they form a byte prefix.
func (r *seqRecorder) prefix(upTo uint64) ([]byte, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for n < len(r.seqs) && r.seqs[n] <= upTo {
		n++
	}
	if n == len(r.seqs) {
		return r.buf, n
	}
	return r.buf[:r.offs[n]], n
}

// inlineMirror is a synchronous stand-in for the HA standby: the OnCut
// tap appends every sealed cut to its own journal and tracks the owner
// and address tables, exactly the state a successor's ResumeState needs.
// (internal/ha runs the same protocol over a real replication link; this
// test pins the cluster-layer Resume mechanics in isolation.)
type inlineMirror struct {
	journal  *recovery.Journal
	lastUpTo uint64
	owner    []int
	addrs    []string
	cuts     int
}

func (m *inlineMirror) onCut(ci CutInfo) {
	perShard := make([][]event.Event, len(ci.Bufs))
	copy(perShard, ci.Bufs) // inner runs are journal-retained, stable
	m.journal.Append(perShard, ci.UpTo)
	m.lastUpTo = ci.UpTo
	m.owner = append(m.owner[:0], ci.Owner...)
	m.addrs = append(m.addrs[:0], ci.Addrs...)
	m.cuts++
}

// TestTakeoverResume kills a founding coordinator mid-stream and builds
// a successor from a mirrored ResumeState: fresh connections at a
// higher epoch, adoption migrations that replay the mirror with the
// already-emitted prefix suppressed, and a re-fed unacknowledged tail.
// The combined consumer stream must be byte-identical to the
// single-process engine.
func TestTakeoverResume(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 6)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rig, _ := startFailoverRig(t, w, gen.Sequence, 0, nil, nil)
	var addrs []string
	for _, c := range rig.conns {
		addrs = append(addrs, connAddr(c))
	}

	mir := &inlineMirror{}
	mir.journal, err = recovery.NewJournal(recovery.JournalConfig{
		Window: pat.Window, Shards: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	primRec := &seqRecorder{}
	var released uint64 // last collector release watermark (the boundary)
	var relMu sync.Mutex
	ing, err := NewIngress(pat, rig.conns, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema,
		OnTagged: primRec.rec,
		OnProgress: func(wm uint64) {
			relMu.Lock()
			if wm > released {
				released = wm
			}
			relMu.Unlock()
		},
		OnCut:    mir.onCut,
		Epoch:    1,
		Addrs:    addrs,
		Recovery: &RecoveryConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}

	const killAt = 2500
	for i := 0; i < killAt; i++ {
		ing.Process(&w.Events[i])
		if (i+1)%512 == 0 {
			// Pace the feed so the workers' release frontier tracks it:
			// an unpaced coordinator can outrun single-CPU workers by the
			// whole prefix, leaving no emitted boundary to resume over.
			// (internal/ha gets the same effect from replication flow
			// control; this is a bare ingress.)
			deadline := time.Now().Add(10 * time.Second)
			for {
				relMu.Lock()
				r := released
				relMu.Unlock()
				if r+512 >= w.Events[i].Seq || time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	ing.Kill()
	relMu.Lock()
	boundary := released
	relMu.Unlock()
	if mir.cuts == 0 || boundary == 0 {
		t.Fatalf("nothing to resume from: %d cuts mirrored, boundary %d", mir.cuts, boundary)
	}
	kept, delivered := primRec.prefix(boundary)
	if delivered == 0 {
		t.Fatal("primary delivered nothing below the boundary; test is vacuous")
	}

	// The successor: fresh dials to the replicated addresses, epoch 2,
	// resuming at the mirrored watermark with the emitted prefix
	// suppressed.
	var conns []Conn
	for _, a := range mir.addrs {
		c, err := DialTCP(a)
		if err != nil {
			t.Fatalf("re-dialing %s: %v", a, err)
		}
		conns = append(conns, c)
	}
	succRec := &seqRecorder{}
	succ, err := NewIngress(pat, conns, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema,
		OnTagged: func(tm shard.Tagged) {
			if tm.Seq <= boundary {
				t.Errorf("successor re-emitted match at seq %d <= boundary %d", tm.Seq, boundary)
			}
			succRec.rec(tm)
		},
		Epoch:    2,
		Addrs:    mir.addrs,
		Recovery: &RecoveryConfig{},
		Resume: &ResumeState{
			NextSeq: mir.lastUpTo, Boundary: boundary,
			Owner: mir.owner, Journal: mir.journal,
		},
	})
	if err != nil {
		t.Fatalf("building successor: %v", err)
	}
	refed := 0
	for i := 0; i < len(w.Events); i++ {
		if w.Events[i].Seq <= mir.lastUpTo {
			continue
		}
		succ.Process(&w.Events[i])
		refed++
	}
	if err := finishWithin(t, 60*time.Second, succ); err != nil {
		t.Fatalf("successor finished with error: %v", err)
	}
	if refed == 0 {
		t.Fatal("no tail was re-fed")
	}

	succRec.mu.Lock()
	combined := append(append([]byte(nil), kept...), succRec.buf...)
	succRec.mu.Unlock()
	if string(combined) != string(want.buf) {
		t.Fatalf("takeover stream diverges from the reference (%d+%d vs %d matches)",
			delivered, len(succRec.seqs), want.n)
	}

	mgs := succ.Migrations()
	adopted := 0
	for _, m := range mgs {
		if m.Reason == "takeover" {
			adopted++
			if m.CompletedAt.IsZero() {
				t.Fatalf("takeover adoption never acknowledged: %+v", m)
			}
		}
	}
	if adopted != 6 {
		t.Fatalf("%d takeover adoptions, want one per shard (6): %+v", adopted, mgs)
	}
}

// TestTakeoverEpochFence pins the worker-side fencing that keeps a dead
// primary from resurrecting: once a worker has served epoch 2, an
// epoch-1 coordinator (the zombie) is refused, while a fresh epoch-2
// session is still welcome.
func TestTakeoverEpochFence(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(NodeConfig{
		Pattern: pat, Engine: engine.Config{CheckEvery: 250},
		Shards: 2, Batch: 64, KeyAttr: "key", Schema: w.Schema,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var rigErrs []error
	var mu sync.Mutex
	go node.ServeListener(l, func(e error) { //nolint:errcheck // closed at test end
		mu.Lock()
		rigErrs = append(rigErrs, e)
		mu.Unlock()
	})

	run := func(epoch uint64, events int) error {
		c, err := DialTCP(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		ing, err := NewIngress(pat, []Conn{c}, IngressOptions{
			Batch: 64, KeyAttr: "key", Schema: w.Schema,
			OnTagged: func(shard.Tagged) {}, Epoch: epoch,
		})
		if err != nil {
			return err
		}
		for i := 0; i < events; i++ {
			ing.Process(&w.Events[i])
		}
		return finishWithin(t, 30*time.Second, ing)
	}
	if err := run(2, 500); err != nil {
		t.Fatalf("founding epoch-2 session failed: %v", err)
	}
	if err := run(1, 500); err == nil {
		t.Fatal("worker served an epoch-1 coordinator after serving epoch 2")
	}
	if err := run(2, 500); err != nil {
		t.Fatalf("equal-epoch session refused after the fence tripped: %v", err)
	}
}

// TestRemoveNodeScaleIn pins the scale-in path symmetric to AddNode:
// RemoveNode drains a slot, retires its session cleanly, and releases
// its worker — which must be immediately reusable, here by re-joining
// the very same worker process and handing it a shard back.
func TestRemoveNodeScaleIn(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 6)
	rig, _ := startFailoverRig(t, w, gen.Sequence, 0, nil, nil)
	removedAddr := connAddr(rig.conns[2])

	ec := (*ElasticConfig)(nil)
	rec, ing := runElastic(t, rig, w, gen.Sequence, ec, map[int]func(*Ingress){
		2000: func(in *Ingress) {
			if err := in.RemoveNode(2); err != nil {
				t.Fatalf("RemoveNode: %v", err)
			}
			for g, o := range in.Owners() {
				if o == 2 {
					t.Fatalf("shard %d still on the removed slot", g)
				}
			}
		},
		3500: func(in *Ingress) {
			// The released worker re-joins: the same process serves a
			// fresh session and takes a shard back.
			c, err := DialTCP(removedAddr)
			if err != nil {
				t.Fatalf("re-dialing the released worker: %v", err)
			}
			n, err := in.AddNode(c)
			if err != nil {
				t.Fatalf("re-joining the released worker: %v", err)
			}
			if err := in.MigrateShard(0, n); err != nil {
				t.Fatalf("handing shard 0 back: %v", err)
			}
		},
	})
	requireIdentical(t, "scale-in + rejoin", rec, want)
	drains, joins := 0, 0
	for _, m := range ing.Migrations() {
		switch m.Reason {
		case "drain":
			drains++
		case "join":
			joins++
		}
	}
	if drains != 2 || joins != 1 {
		t.Fatalf("migrations: %d drains and %d joins, want 2 drains (slot 2's shards) and 1 join: %+v",
			drains, joins, ing.Migrations())
	}
	if len(ing.Failovers()) != 0 {
		t.Fatalf("scale-in recorded failovers: %+v", ing.Failovers())
	}
}

// TestTakeoverRequiresMirror pins the guard rails around ResumeState:
// a resume without a journal or owner table must be refused outright.
func TestTakeoverRequiresMirror(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rig, _ := startFailoverRig(t, w, gen.Sequence, 0, nil, nil)
	_, err = NewIngress(pat, rig.conns, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema,
		OnTagged: func(shard.Tagged) {}, Epoch: 2,
		Recovery: &RecoveryConfig{},
		Resume:   &ResumeState{NextSeq: 64},
	})
	if err == nil || !strings.Contains(err.Error(), "Resume") {
		t.Fatalf("resume without a mirror built an ingress (err %v)", err)
	}
}
