package cluster

import (
	"fmt"
	"io"
	"math"
	"strings"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/pattern"
	"acep/internal/shard"
	"acep/internal/stats"
	"acep/internal/wire"
)

// NodeConfig assembles a worker node: which pattern it detects, how many
// local shard engines it hosts, and the shard-layer tuning those engines
// run with. The ingress assigns the node's slice of the global shard
// space during the handshake, so the same binary can serve any position
// in any cluster layout.
type NodeConfig struct {
	// Pattern is the detected pattern; it must equal the ingress's (the
	// handshake compares fingerprints and refuses to pair otherwise).
	Pattern *pattern.Pattern
	// Engine configures every local shard engine identically (same
	// contract as shard.New: Policy and OnMatch must be nil). Ingress
	// shedding lives here too: Engine.Shedding applies per local shard,
	// with each shard's ingestion-queue depth probing the load monitor.
	Engine engine.Config
	// Shards is the number of local shard engines (default 1).
	Shards int
	// Batch is the local handoff batch (default 256); the network cut
	// drives uniform watermark flushes regardless.
	Batch int
	// QueueCap bounds each local shard's ingestion queue in events;
	// Snapshot+Window derive it from measured statistics when unset (see
	// shard.Options).
	QueueCap int
	Snapshot *stats.Snapshot
	Window   event.Time
	// Overflow selects the full-queue behavior (default Backpressure).
	Overflow shard.Overflow
	// Key extracts the partition key; Key or KeyAttr+Schema is required
	// and must match the ingress's placement.
	Key     shard.KeyFunc
	KeyAttr string
	Schema  *event.Schema
}

// Node hosts a block of the global shard space behind a transport
// connection. Construct with NewNode, then Serve one connection (or
// ServeListener for an accept loop).
type Node struct {
	cfg NodeConfig
	key shard.KeyFunc
	sig uint64
}

// signature fingerprints the pattern plus the schema's type/attribute
// layout; ingress and node must agree on both for events and matches to
// mean the same thing on either side.
func signature(pat *pattern.Pattern, s *event.Schema) uint64 {
	var b strings.Builder
	b.WriteString(pat.String())
	if s != nil {
		for t := 0; t < s.NumTypes(); t++ {
			fmt.Fprintf(&b, "|%s:%v", s.TypeName(t), s.Attrs(t))
		}
	}
	return wire.Fingerprint(b.String())
}

// NewNode validates the configuration and resolves the partition key.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Pattern == nil {
		return nil, fmt.Errorf("cluster: node needs a pattern")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	key := cfg.Key
	switch {
	case key != nil && cfg.KeyAttr != "":
		return nil, fmt.Errorf("cluster: set exactly one of Key and KeyAttr")
	case key == nil && cfg.KeyAttr == "":
		return nil, fmt.Errorf("cluster: a partition key is required: set Key or KeyAttr")
	case cfg.KeyAttr != "":
		if cfg.Schema == nil {
			return nil, fmt.Errorf("cluster: KeyAttr needs Schema to resolve the attribute")
		}
		if err := shard.Partitionable(cfg.Pattern, cfg.Schema, cfg.KeyAttr); err != nil {
			return nil, err
		}
		k, err := shard.ByAttrName(cfg.Schema, cfg.KeyAttr)
		if err != nil {
			return nil, err
		}
		key = k
	}
	return &Node{cfg: cfg, key: key, sig: signature(cfg.Pattern, cfg.Schema)}, nil
}

// sender serializes a node's upstream frames and latches the first send
// error; after a failure every further send is a no-op, so the engines
// can still drain cleanly.
type sender struct {
	c   Conn
	err error
}

func (s *sender) send(f wire.Frame) {
	if s.err == nil {
		s.err = s.c.Send(f)
	}
}

// Serve runs one ingress session over the connection: handshake, event
// ingestion with uniform watermark flushes, tagged-match and watermark
// streaming, and a final metrics report. It returns when the ingress
// finishes the stream (nil) or the transport fails (the error), closing
// the connection either way.
func (n *Node) Serve(conn Conn) error {
	defer conn.Close()
	if err := conn.Send(wire.Hello{
		Version:    wire.Version,
		Shards:     uint32(n.cfg.Shards),
		PatternSig: n.sig,
	}); err != nil {
		return fmt.Errorf("cluster: node hello: %w", err)
	}
	f, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("cluster: node awaiting assignment: %w", err)
	}
	assign, ok := f.(wire.Assign)
	if !ok {
		return fmt.Errorf("cluster: node expected assign frame, got %s", wire.KindOf(f))
	}
	base, total := int(assign.Base), int(assign.Total)
	if total < 1 || base < 0 || base+n.cfg.Shards > total {
		return fmt.Errorf("cluster: assignment [%d,%d) outside global shard space of %d",
			base, base+n.cfg.Shards, total)
	}

	// The local engines are pinned to global shard indices [base,
	// base+Shards): the route function inverts the ingress's placement,
	// so the cluster-wide event-to-engine assignment — and therefore
	// every engine's event subsequence, its adaptation trajectory and
	// its match tags — is identical to a single-process sharded engine
	// with `total` shards.
	key := n.key
	up := &sender{c: conn}
	eng, err := shard.New(n.cfg.Pattern, n.cfg.Engine, shard.Options{
		Shards:   n.cfg.Shards,
		Batch:    n.cfg.Batch,
		QueueCap: n.cfg.QueueCap,
		Snapshot: n.cfg.Snapshot,
		Window:   n.cfg.Window,
		Overflow: n.cfg.Overflow,
		Key:      key,
		Route: func(ev *event.Event) int {
			g := shard.GlobalIndex(key(ev), total)
			local := g - base
			if local < 0 || local >= n.cfg.Shards {
				panic(fmt.Sprintf("cluster: event for global shard %d routed to node owning [%d,%d)",
					g, base, base+n.cfg.Shards))
			}
			return local
		},
		OnTagged: func(t shard.Tagged) {
			up.send(wire.TaggedMatch{Seq: t.Seq, M: t.M})
		},
		OnProgress: func(w uint64) {
			up.send(wire.Watermark{UpTo: w})
		},
	})
	if err != nil {
		return err
	}

	finish := func() { // idempotent by shard.Engine contract
		eng.Finish()
	}
	for {
		f, err := conn.Recv()
		if err != nil {
			finish()
			if err == io.EOF {
				return fmt.Errorf("cluster: ingress closed before finish")
			}
			return err
		}
		switch v := f.(type) {
		case wire.Batch:
			for i := range v.Events {
				eng.Process(&v.Events[i])
			}
			eng.Flush(v.UpTo)
		case wire.Finish:
			// Drain everything: Finish returns only after the collector
			// has delivered every match (and the MaxUint64 watermark)
			// through the sender above.
			finish()
			up.send(wire.Metrics{M: eng.Metrics()})
			if up.err != nil {
				return fmt.Errorf("cluster: node streaming results: %w", up.err)
			}
			return nil
		default:
			finish()
			return fmt.Errorf("cluster: node received unexpected %s frame", wire.KindOf(f))
		}
	}
}

// ServeListener accepts ingress sessions in a loop, serving one at a
// time (a node belongs to one cluster run; sequential sessions let the
// same worker process serve several consecutive runs). It returns when
// the listener closes; per-session errors go to onErr (nil to ignore).
func (n *Node) ServeListener(l *Listener, onErr func(error)) error {
	for {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		if err := n.Serve(c); err != nil && onErr != nil {
			onErr(err)
		}
	}
}

// maxSeq is the final watermark every source reports at end of stream.
const maxSeq = math.MaxUint64
