package cluster

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/multi"
	"acep/internal/pattern"
	"acep/internal/shard"
	"acep/internal/shed"
	"acep/internal/stats"
	"acep/internal/wire"
)

// statsEveryCuts is how often a node snapshots per-shard load for the
// ingress placement controller: one ShardStats frame every this many
// cuts keeps the overhead a rounding error while staying fresher than
// the controller's own cooldown.
const statsEveryCuts = 4

// NodeConfig assembles a worker node: which pattern it detects, how many
// shards it claims at the handshake, and the shard-layer tuning its
// engine runs with. The ingress assigns the node's initial slice of the
// global shard space during the handshake — and may migrate shards in
// and out afterwards — so the same binary can serve any position in any
// cluster layout.
type NodeConfig struct {
	// Pattern is the detected pattern; it must equal the ingress's (the
	// handshake compares fingerprints and refuses to pair otherwise).
	// Nil runs the node bare: it greets with fingerprint 0 and adopts
	// the pattern and schema the ingress ships in the Assign frame — the
	// standby/join mode of the elasticity subsystem, and the zero-config
	// way to start a worker fleet.
	Pattern *pattern.Pattern
	// Engine configures every local shard engine identically (same
	// contract as shard.New: Policy and OnMatch must be nil). Ingress
	// shedding lives here too: Engine.Shedding applies per local shard,
	// with each shard's ingestion-queue depth probing the load monitor.
	Engine engine.Config
	// Shards is the number of shards this node claims in its hello
	// (default 1); the ingress sizes the global shard space from the
	// fleet's claims. The session's engine spans the whole global space
	// — shards the node does not own simply stay idle — which is what
	// lets any shard migrate onto any node mid-run.
	Shards int
	// Batch is the local handoff batch (default 256); the network cut
	// drives uniform watermark flushes regardless.
	Batch int
	// QueueCap bounds each local shard's ingestion queue in events;
	// Snapshot+Window derive it from measured statistics when unset (see
	// shard.Options).
	QueueCap int
	Snapshot *stats.Snapshot
	Window   event.Time
	// Overflow selects the full-queue behavior (default Backpressure).
	Overflow shard.Overflow
	// Key extracts the partition key; Key or KeyAttr+Schema is required
	// and must match the ingress's placement.
	Key     shard.KeyFunc
	KeyAttr string
	Schema  *event.Schema
	// WriteStall bounds how long the node's upstream sender tolerates
	// zero write progress before failing the session (default 30s,
	// negative disables). A coordinator that stops reading — wedged
	// process, one-way partition — otherwise blocks the sender mutex
	// forever and wedges the whole session with it.
	WriteStall time.Duration
}

// Node hosts shards of the global shard space behind a transport
// connection. Construct with NewNode, then Serve one connection (or
// ServeListener for an accept loop).
type Node struct {
	cfg NodeConfig
	key shard.KeyFunc
	sig uint64

	// epoch is the highest coordinator epoch any session of this Node
	// has served — process-level state, deliberately shared across
	// ServeListener sessions. A takeover successor raises it through its
	// Assign frame; sessions a superseded primary still drives are
	// refused at the handshake or terminated at their next frame, so a
	// zombie coordinator cannot keep feeding workers after its standby
	// took over. Non-HA coordinators all stamp epoch 0 and never move
	// the fence.
	epoch atomic.Uint64
}

// signature fingerprints the pattern plus the schema's type/attribute
// layout; ingress and node must agree on both for events and matches to
// mean the same thing on either side.
func signature(pat *pattern.Pattern, s *event.Schema) uint64 {
	var b strings.Builder
	b.WriteString(pat.String())
	if s != nil {
		for t := 0; t < s.NumTypes(); t++ {
			fmt.Fprintf(&b, "|%s:%v", s.TypeName(t), s.Attrs(t))
		}
	}
	return wire.Fingerprint(b.String())
}

// NewNode validates the configuration and resolves the partition key. A
// bare node (nil Pattern) defers pattern, schema and key resolution to
// the handshake that ships them.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	key := cfg.Key
	switch {
	case key != nil && cfg.KeyAttr != "":
		return nil, fmt.Errorf("cluster: set exactly one of Key and KeyAttr")
	case key == nil && cfg.KeyAttr == "":
		return nil, fmt.Errorf("cluster: a partition key is required: set Key or KeyAttr")
	}
	if cfg.Pattern == nil {
		// Bare mode: the ingress ships pattern and schema; KeyAttr (or a
		// custom Key) resolves against them at handshake time.
		return &Node{cfg: cfg, key: key, sig: 0}, nil
	}
	if cfg.KeyAttr != "" {
		if cfg.Schema == nil {
			return nil, fmt.Errorf("cluster: KeyAttr needs Schema to resolve the attribute")
		}
		if err := shard.Partitionable(cfg.Pattern, cfg.Schema, cfg.KeyAttr); err != nil {
			return nil, err
		}
		k, err := shard.ByAttrName(cfg.Schema, cfg.KeyAttr)
		if err != nil {
			return nil, err
		}
		key = k
	}
	return &Node{cfg: cfg, key: key, sig: signature(cfg.Pattern, cfg.Schema)}, nil
}

// sender serializes a node's upstream frames and latches the first send
// error; after a failure every further send is a no-op, so the engines
// can still drain cleanly. The mutex interleaves the Serve loop's
// heartbeats with the collector goroutine's matches and watermarks.
// When the conn supports held sends (fl non-nil), frames accumulate in
// its write buffer and flush() pushes the burst out in one syscall.
type sender struct {
	mu  sync.Mutex
	c   Conn
	fl  interface{ Flush() error }
	err error
}

func (s *sender) send(f wire.Frame) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.c.Send(f)
	}
	s.mu.Unlock()
}

func (s *sender) flush() {
	if s.fl == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = s.fl.Flush()
	}
	s.mu.Unlock()
}

func (s *sender) failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Serve runs one ingress session over the connection: handshake, event
// ingestion with uniform watermark flushes, tagged-match and watermark
// streaming, shard migration in and out, and a final metrics report. It
// returns when the ingress finishes the stream (nil) or the transport
// fails (the error), closing the connection either way.
//
// The Assign reply fixes the session's view of the global shard space;
// whether the node starts with a block of shards (a founding member) or
// none (a standby adoption or a runtime join) it runs one engine
// spanning the whole space, so any shard the ingress later Migrates in
// — replaying the shard's journaled history, with matches at or below
// the shipped release boundary suppressed as already-delivered — lands
// on a worker that is bit-identical to the one a founding member would
// have run.
func (n *Node) Serve(conn Conn) error {
	defer conn.Close()
	if ws := n.cfg.WriteStall; ws >= 0 {
		if ws == 0 {
			ws = 30 * time.Second
		}
		if sc, ok := conn.(interface{ SetWriteStall(time.Duration) }); ok {
			sc.SetWriteStall(ws)
		}
	}
	if err := conn.Send(wire.Hello{
		Version:    wire.Version,
		Shards:     uint32(n.cfg.Shards),
		PatternSig: n.sig,
	}); err != nil {
		return fmt.Errorf("cluster: node hello: %w", err)
	}
	f, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("cluster: node awaiting assignment: %w", err)
	}
	a, ok := f.(wire.Assign)
	if !ok {
		return fmt.Errorf("cluster: node expected assign frame, got %s", wire.KindOf(f))
	}
	return n.serveBlock(conn, blockAssign{
		base: int(a.Base), shards: int(a.Shards), total: int(a.Total),
		pattern: a.Pattern, schema: a.Schema,
		primaryID: a.PrimaryID, primaryTenant: a.PrimaryTenant,
		extra: a.Extra, tenants: a.Tenants,
		epoch: a.Epoch,
	})
}

// blockAssign is a resolved handshake reply: which slice of the global
// shard space this session initially hosts (possibly empty), with what
// pattern — or, when primaryID is nonzero, with what pattern *set*
// (Pattern is the primary entry, extra carries the rest, tenants the
// per-tenant budgets).
type blockAssign struct {
	base, shards, total int
	pattern             *pattern.Pattern
	schema              *event.Schema

	primaryID, primaryTenant uint32
	extra                    []wire.PatternEntry
	tenants                  []wire.TenantBudgetEntry

	epoch uint64 // coordinator epoch stamped on the Assign (0 without HA)
}

// serveBlock hosts one ingress session.
func (n *Node) serveBlock(conn Conn, a blockAssign) error {
	// Epoch fence, entry half: latch the highest coordinator epoch this
	// process has served and refuse anything lower — a session from a
	// primary that a takeover already superseded must not rebuild state.
	// (The loop half below terminates a session that was current at the
	// handshake but got superseded mid-run.)
	for {
		cur := n.epoch.Load()
		if a.epoch < cur {
			return fmt.Errorf("cluster: node fencing coordinator epoch %d (process has served epoch %d)", a.epoch, cur)
		}
		if n.epoch.CompareAndSwap(cur, a.epoch) {
			break
		}
	}
	pat, schema := n.cfg.Pattern, n.cfg.Schema
	if pat == nil {
		// Bare mode: adopt the shipped pattern and schema.
		if a.pattern == nil {
			return fmt.Errorf("cluster: bare node got an assignment without a shipped pattern")
		}
		pat, schema = a.pattern, a.schema
	}
	// A nonzero primary id marks a multi-pattern assignment: the session
	// hosts the whole shipped set (Pattern is the primary entry, Extra
	// the rest) behind one shared-evaluation engine. Only a bare node can
	// adopt a set — a configured node's fingerprint covers exactly one
	// pattern, and the handshake has already cross-validated it.
	var specs []multi.Spec
	if a.primaryID != 0 {
		if n.cfg.Pattern != nil {
			return fmt.Errorf("cluster: multi-pattern assignment needs a bare node (configured node serves one pattern)")
		}
		if schema == nil {
			return fmt.Errorf("cluster: multi-pattern assignment without a shipped schema")
		}
		specs = append(specs, multi.Spec{
			ID: a.primaryID, Tenant: a.primaryTenant, Pattern: pat, Config: n.cfg.Engine,
		})
		for _, e := range a.extra {
			specs = append(specs, multi.Spec{
				ID: e.ID, Tenant: e.Tenant, Pattern: e.Pattern, Config: n.cfg.Engine,
			})
		}
	}
	key := n.key
	if key == nil {
		// Bare KeyAttr mode: resolve against the shipped schema, with
		// the same partitionability validation a configured node runs.
		// (Multi mode defers the per-spec validation to shard.New.)
		if schema == nil {
			return fmt.Errorf("cluster: bare node needs a shipped schema to resolve key attribute %q", n.cfg.KeyAttr)
		}
		if specs == nil {
			if err := shard.Partitionable(pat, schema, n.cfg.KeyAttr); err != nil {
				return err
			}
		}
		k, err := shard.ByAttrName(schema, n.cfg.KeyAttr)
		if err != nil {
			return err
		}
		key = k
	}
	if a.total < 1 || a.base < 0 || a.shards < 0 || a.base+a.shards > a.total {
		return fmt.Errorf("cluster: assignment [%d,%d) outside global shard space of %d",
			a.base, a.base+a.shards, a.total)
	}

	// The engine spans the full global shard space with the identity
	// route — worker g IS global shard g — so the cluster-wide
	// event-to-engine assignment, and therefore every engine's event
	// subsequence and its match tags, is identical to a single-process
	// sharded engine with `total` shards regardless of which node runs
	// which shard. Workers for shards this session does not own receive
	// no events and stay idle; a migrated-in shard rebuilds its worker
	// from replayed history (the adaptation trajectory differs — plans
	// restart fresh — but match sets and tags do not depend on it).
	up := &sender{c: conn}
	// Coalesced upstream writes: a serializing transport holds the cut's
	// burst (heartbeat, matches, watermark) in its write buffer and the
	// loop flushes once per inbound frame — one write syscall per cut
	// instead of one per frame. The handler boundary is a protocol
	// quiescence point: the ingress never blocks on a node frame while
	// it still has frames of its own to send, and the final drain is
	// flushed before the session returns.
	if h, ok := conn.(interface {
		SetSendHold(bool)
		Flush() error
	}); ok {
		h.SetSendHold(true)
		up.fl = h
	}
	total := a.total

	// Migration state, shared between the session loop (which receives
	// Migrate frames and the ShardRoute markers that end each replay
	// burst) and the engine collector goroutine (which emits matches and
	// watermarks). suppress[g] is the release boundary below which
	// regenerated matches are duplicates. ackWait[g] is the strict
	// watermark threshold above which shard g's replay is provably
	// processed: it is the highest cut watermark enqueued when the
	// post-replay marker arrived, so any completion watermark beyond it
	// belongs to a cut enqueued after every replay batch — and cuts
	// complete in order, with matches delivered before their watermark.
	var (
		migMu    sync.Mutex
		suppress = map[int]uint64{}
		ackWait  = map[int]uint64{}
		pending  []int // Migrate received, awaiting the ShardRoute marker
		maxUpTo  uint64
		// suppressAll is the takeover boundary: a successor coordinator's
		// session-wide floor below which every regenerated match was
		// already delivered by the old primary (0 outside takeovers).
		suppressAll uint64
	)

	// Zero-copy receive: on a serializing transport (probe below), Batch
	// frames decode straight into this arena — the decoded slots are the
	// events the evaluators retain, no re-intern — and surface as
	// wire.BatchView with columnar spans for the unary mask scan. The
	// arena never recycles chunks (the zero value), so releasing behind
	// the time horizon merely unpins: anything an evaluator or an
	// in-flight match still references stays alive through the GC —
	// which is also what makes replaying old-timestamp history into a
	// live session memory-safe.
	var decArena *match.Arena
	if da, ok := conn.(interface{ SetDecodeArena(*match.Arena) }); ok {
		decArena = &match.Arena{}
		da.SetDecodeArena(decArena)
	}
	// OR patterns split into per-disjunct runners inside the engine, so a
	// top-level mask would index the wrong positions — skip the scan. In
	// multi-pattern mode the shared evaluator composes per-pattern masks
	// from its own predicate table, so the node-level scan is off too.
	scannable := specs == nil && pat.MaskScannable() && pat.Op != pattern.Or
	// relWindow is the arena-release horizon: the widest window any
	// hosted pattern can reach back (grows if PatternAdd ships a wider
	// one).
	relWindow := pat.Window
	for _, sp := range specs {
		if sp.Pattern.Window > relWindow {
			relWindow = sp.Pattern.Window
		}
	}
	var (
		maskBuf []uint32
		ptrBuf  []*event.Event
		maxTS   event.Time
		cuts    uint64
	)

	// Cut reassembly. A live cut arrives as one events-only frame (UpTo
	// 0) per owned shard followed by one watermark-bearing frame, because
	// the ingress groups each cut per shard for the journal. The shards'
	// runs are merged back into global seq order before the engine sees
	// them: the engine's own batch accounting can seal a cut of its own
	// mid-stream, and its watermark (the last ingested seq) only covers a
	// prefix of the cut if ingestion order is seq order — otherwise a
	// match could surface after a watermark that already covers it and
	// the merge collectors would deliver out of order. Replay frames
	// carry their original cut watermark and flush immediately, one frame
	// per reconstructed cut.
	var (
		cutEvs   []*event.Event
		cutMasks []uint32
		runEnds  []int
		mergEvs  []*event.Event
		mergMask []uint32
		runHead  []int
	)
	appendRun := func(evs []*event.Event, masks []uint32) {
		if len(evs) == 0 {
			return
		}
		cutEvs = append(cutEvs, evs...)
		if masks != nil {
			cutMasks = append(cutMasks, masks...)
		}
		runEnds = append(runEnds, len(cutEvs))
	}
	// flushCut (defined after the engine below) feeds the buffered runs
	// to the engine in seq order and seals the cut at upTo.
	var flushCut func(upTo uint64)

	enginePat, engineCfg := pat, n.cfg.Engine
	var budgets map[uint32]shed.TenantBudget
	if specs != nil {
		// Multi mode: the set travels in Options.Patterns (each spec
		// carries the node's engine config) and per-tenant budgets apply
		// per local shard.
		enginePat, engineCfg = nil, engine.Config{}
		if len(a.tenants) > 0 {
			budgets = make(map[uint32]shed.TenantBudget, len(a.tenants))
			for _, t := range a.tenants {
				budgets[t.Tenant] = t.Budget
			}
		}
	}
	eng, err := shard.New(enginePat, engineCfg, shard.Options{
		Shards:   total,
		Batch:    n.cfg.Batch,
		QueueCap: n.cfg.QueueCap,
		Snapshot: n.cfg.Snapshot,
		Window:   n.cfg.Window,
		Overflow: n.cfg.Overflow,
		Key:      key,
		Schema:   schema,
		Patterns: specs,
		Tenants:  budgets,
		Route: func(ev *event.Event) int {
			return shard.GlobalIndex(key(ev), total)
		},
		// Owned emit: workers encode each match into a per-shard outbox
		// slab as it is emitted; the tag carries the encoded body and the
		// node forwards it verbatim — a serializing transport then writes
		// the bytes through (no second encode), and the in-process pipe
		// hands the slab slice to the ingress by reference.
		EncodeMatch: wire.AppendMatchBody,
		OnTagged: func(t shard.Tagged) {
			migMu.Lock()
			boundary, migrated := suppress[t.Src]
			floor := suppressAll
			migMu.Unlock()
			if floor > 0 && t.Seq <= floor {
				return // at or below the takeover boundary: the old primary delivered it
			}
			if migrated && t.Seq <= boundary {
				return // already delivered before the shard moved here
			}
			if t.Enc != nil {
				up.send(wire.TaggedMatchRaw{Shard: uint32(t.Src), Seq: t.Seq, Pattern: t.Pattern, Body: t.Enc})
				return
			}
			up.send(wire.TaggedMatch{Shard: uint32(t.Src), Seq: t.Seq, Pattern: t.Pattern, M: t.M})
		},
		OnProgress: func(w uint64) {
			// Acknowledge caught-up migrations before the watermark that
			// proves them, so the ingress completes the move before it
			// can act on the watermark.
			var ready []int
			migMu.Lock()
			for g, limit := range ackWait {
				if w > limit {
					ready = append(ready, g)
				}
			}
			for _, g := range ready {
				delete(ackWait, g)
			}
			migMu.Unlock()
			if len(ready) > 0 {
				sort.Ints(ready)
				for _, g := range ready {
					up.send(wire.MigrateAck{Shard: uint32(g), UpTo: w})
				}
			}
			up.send(wire.Watermark{UpTo: w})
		},
	})
	if err != nil {
		return err
	}
	flushCut = func(upTo uint64) {
		haveMasks := len(cutMasks) > 0 && len(cutMasks) == len(cutEvs)
		switch len(runEnds) {
		case 0:
		case 1: // single run: already in seq order
			if haveMasks {
				eng.ProcessStable(cutEvs, cutMasks)
			} else {
				eng.ProcessStable(cutEvs, nil)
			}
		default:
			// k-way merge of the per-shard runs (each seq-ordered).
			mergEvs, mergMask, runHead = mergEvs[:0], mergMask[:0], runHead[:0]
			start := 0
			for range runEnds {
				runHead = append(runHead, start)
				start = runEnds[len(runHead)-1]
			}
			for len(mergEvs) < len(cutEvs) {
				best := -1
				var bestSeq uint64
				for r, h := range runHead {
					if h >= runEnds[r] {
						continue
					}
					if s := cutEvs[h].Seq; best < 0 || s < bestSeq {
						best, bestSeq = r, s
					}
				}
				h := runHead[best]
				mergEvs = append(mergEvs, cutEvs[h])
				if haveMasks {
					mergMask = append(mergMask, cutMasks[h])
				}
				runHead[best] = h + 1
			}
			if haveMasks {
				eng.ProcessStable(mergEvs, mergMask)
			} else {
				eng.ProcessStable(mergEvs, nil)
			}
			for i := range mergEvs {
				mergEvs[i] = nil // do not pin arena chunks across cuts
			}
		}
		for i := range cutEvs {
			cutEvs[i] = nil
		}
		cutEvs, cutMasks, runEnds = cutEvs[:0], cutMasks[:0], runEnds[:0]
		eng.Flush(upTo)
	}

	finish := func() { // idempotent by shard.Engine contract
		eng.Finish()
	}
	// sendStats ships a per-shard load snapshot (events processed and
	// ingestion queue-wait p99) for the placement controller; shards
	// that processed nothing are omitted. Each stat is stamped with the
	// highest cut watermark sealed so far, so the controller can discard
	// reports that predate its decision horizon.
	sendStats := func() {
		loads := eng.ShardLoads()
		migMu.Lock()
		cutMark := maxUpTo
		migMu.Unlock()
		var ss []wire.ShardStat
		for g, l := range loads {
			if l.Events == 0 {
				continue
			}
			ss = append(ss, wire.ShardStat{
				Shard: uint32(g), Events: l.Events, P99Nanos: uint64(l.WaitP99), Cut: cutMark,
			})
		}
		if len(ss) > 0 {
			up.send(wire.ShardStats{Stats: ss})
		}
	}
	for {
		f, err := conn.Recv()
		if err != nil {
			finish()
			up.flush() // best-effort: the drained tail may still arrive
			if err == io.EOF {
				return fmt.Errorf("cluster: ingress closed before finish")
			}
			return err
		}
		// Epoch fence, loop half: a takeover successor may have raised
		// the process epoch since the handshake — stop serving the
		// superseded coordinator at its next frame.
		if cur := n.epoch.Load(); cur > a.epoch {
			finish()
			up.flush()
			return fmt.Errorf("cluster: session fenced: coordinator epoch %d superseded by %d", a.epoch, cur)
		}
		switch v := f.(type) {
		case *wire.BatchView:
			// Serializing transport: the events already live in decArena
			// (decoded in place by conn.Recv). Scan the columnar spans
			// into per-event unary masks, then buffer the stable pointers
			// as one run of the current cut — no copy anywhere between
			// socket and match.
			var masks []uint32
			if scannable && len(v.Events) > 0 {
				if cap(maskBuf) < len(v.Events) {
					maskBuf = make([]uint32, len(v.Events))
				}
				masks = maskBuf[:len(v.Events)]
				pat.ScanUnarySpans(v.Spans, masks)
			}
			appendRun(v.Events, masks)
			if ne := len(v.Events); ne > 0 {
				if ts := v.Events[ne-1].TS; ts > maxTS {
					maxTS = ts
				}
			}
			if v.UpTo == 0 {
				break // events-only frame; the cut's watermark frame follows
			}
			up.send(wire.Heartbeat{UpTo: v.UpTo})
			flushCut(v.UpTo)
			migMu.Lock()
			if v.UpTo > maxUpTo {
				maxUpTo = v.UpTo
			}
			migMu.Unlock()
			cuts++
			if cuts%statsEveryCuts == 0 {
				sendStats()
			}
			// Unpin decoded chunks the engines can no longer need for
			// new matches (recycle is off, so any horizon is safe — see
			// the arena comment above).
			if relWindow > 0 {
				decArena.Release(maxTS - 2*relWindow)
			} else if decArena.Live() > 64 {
				decArena.Release(maxTS)
			}
		case wire.Batch:
			// Reference transport (in-process pipe): the frame's event
			// slice is owned by the ingress/journal and stable for the
			// run, so the engines can retain pointers into it directly.
			if len(v.Events) > 0 {
				ptrBuf = ptrBuf[:0]
				for i := range v.Events {
					ptrBuf = append(ptrBuf, &v.Events[i])
				}
				appendRun(ptrBuf, nil)
			}
			if v.UpTo == 0 {
				break // events-only frame; the cut's watermark frame follows
			}
			up.send(wire.Heartbeat{UpTo: v.UpTo})
			flushCut(v.UpTo)
			migMu.Lock()
			if v.UpTo > maxUpTo {
				maxUpTo = v.UpTo
			}
			migMu.Unlock()
			cuts++
			if cuts%statsEveryCuts == 0 {
				sendStats()
			}
		case wire.Migrate:
			// A shard is moving onto this session: suppress its
			// regenerated duplicates, and queue it for acknowledgement
			// once the post-replay marker and a proving watermark pass.
			g := int(v.Shard)
			if g < 0 || g >= total {
				finish()
				up.flush()
				return fmt.Errorf("cluster: migrate for shard %d outside global space of %d", g, total)
			}
			migMu.Lock()
			suppress[g] = v.SuppressUpTo
			pending = append(pending, g)
			migMu.Unlock()
			up.send(wire.Heartbeat{UpTo: v.ReplayUpTo}) // receipt beat: replay may be long
		case wire.Takeover:
			// A successor coordinator announces its assumption: every
			// match at or below the boundary was already delivered by the
			// old primary — suppress session-wide. The per-shard Migrate
			// boundaries that follow repeat it shard by shard; this floor
			// additionally covers any match a frame-ordering edge could
			// slip in between.
			migMu.Lock()
			if v.Boundary > suppressAll {
				suppressAll = v.Boundary
			}
			migMu.Unlock()
			up.send(wire.Heartbeat{UpTo: v.Boundary})
		case wire.ShardRoute:
			// Routing is advisory here (ownership semantics ride the
			// Migrate frames), but its position is load-bearing: the
			// ingress broadcasts it after a migration burst's replay, so
			// every pending migration's history is enqueued behind us —
			// any completion watermark beyond the cuts seen so far proves
			// the replay (and its regenerated matches) fully processed.
			migMu.Lock()
			for _, g := range pending {
				ackWait[g] = maxUpTo
			}
			pending = pending[:0]
			migMu.Unlock()
		case wire.PatternAdd:
			// Register a pattern on the running set. The frame sits
			// between two cuts in the stream, so the engine pins the
			// mutation to that cut boundary on every local shard.
			if specs == nil {
				finish()
				up.flush()
				return fmt.Errorf("cluster: pattern add on a single-pattern session")
			}
			sp := multi.Spec{
				ID: v.Entry.ID, Tenant: v.Entry.Tenant,
				Pattern: v.Entry.Pattern, Config: n.cfg.Engine,
			}
			if err := eng.AddPattern(sp); err != nil {
				finish()
				up.flush()
				return fmt.Errorf("cluster: node adding pattern %d: %w", sp.ID, err)
			}
			if sp.Pattern.Window > relWindow {
				relWindow = sp.Pattern.Window
			}
		case wire.PatternRemove:
			if specs == nil {
				finish()
				up.flush()
				return fmt.Errorf("cluster: pattern remove on a single-pattern session")
			}
			if err := eng.RemovePattern(v.ID); err != nil {
				finish()
				up.flush()
				return fmt.Errorf("cluster: node removing pattern %d: %w", v.ID, err)
			}
		case wire.Finish:
			// Drain everything: Finish returns only after the collector
			// has delivered every match (and the MaxUint64 watermark)
			// through the sender above.
			finish()
			if specs != nil {
				// One Metrics frame per live pattern; the first carries
				// the per-tenant shed accounting for the whole session
				// (on exactly one frame, so the ingress never counts a
				// tenant twice).
				pms := eng.PatternMetrics()
				ts := eng.TenantStats()
				if len(pms) == 0 {
					up.send(wire.Metrics{Tenants: ts})
				}
				for i, pm := range pms {
					fr := wire.Metrics{Pattern: pm.ID, M: pm.M}
					if i == 0 {
						fr.Tenants = ts
					}
					up.send(fr)
				}
			} else {
				up.send(wire.Metrics{M: eng.Metrics()})
			}
			up.flush()
			if err := up.failed(); err != nil {
				return fmt.Errorf("cluster: node streaming results: %w", err)
			}
			return nil
		default:
			finish()
			up.flush()
			return fmt.Errorf("cluster: node received unexpected %s frame", wire.KindOf(f))
		}
		up.flush()
		if err := up.failed(); err != nil {
			// The upstream write failed — wedged coordinator, one-way
			// partition, write stall. Without this check the session
			// would go back to Recv and block forever on a peer that is
			// done talking to us; surface the link error instead.
			finish()
			return fmt.Errorf("cluster: node upstream send: %w", err)
		}
	}
}

// ServeListener accepts ingress sessions in a loop, serving each on its
// own goroutine: a Node is stateless across sessions, so one worker
// process can serve consecutive runs, act as a recovery standby, or
// join a running cluster. It returns when the listener closes;
// per-session errors go to onErr (nil to ignore).
func (n *Node) ServeListener(l *Listener, onErr func(error)) error {
	for {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := n.Serve(c); err != nil && onErr != nil {
				onErr(err)
			}
		}()
	}
}

// maxSeq is the final watermark every source reports at end of stream.
const maxSeq = math.MaxUint64
