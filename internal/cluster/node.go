package cluster

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/shard"
	"acep/internal/stats"
	"acep/internal/wire"
)

// NodeConfig assembles a worker node: which pattern it detects, how many
// local shard engines it hosts, and the shard-layer tuning those engines
// run with. The ingress assigns the node's slice of the global shard
// space during the handshake, so the same binary can serve any position
// in any cluster layout.
type NodeConfig struct {
	// Pattern is the detected pattern; it must equal the ingress's (the
	// handshake compares fingerprints and refuses to pair otherwise).
	// Nil runs the node bare: it greets with fingerprint 0 and adopts
	// the pattern and schema the ingress ships in the Assign (or
	// Reassign) handshake — the standby mode of the failover subsystem,
	// and the zero-config way to start a worker fleet.
	Pattern *pattern.Pattern
	// Engine configures every local shard engine identically (same
	// contract as shard.New: Policy and OnMatch must be nil). Ingress
	// shedding lives here too: Engine.Shedding applies per local shard,
	// with each shard's ingestion-queue depth probing the load monitor.
	Engine engine.Config
	// Shards is the number of local shard engines (default 1).
	Shards int
	// Batch is the local handoff batch (default 256); the network cut
	// drives uniform watermark flushes regardless.
	Batch int
	// QueueCap bounds each local shard's ingestion queue in events;
	// Snapshot+Window derive it from measured statistics when unset (see
	// shard.Options).
	QueueCap int
	Snapshot *stats.Snapshot
	Window   event.Time
	// Overflow selects the full-queue behavior (default Backpressure).
	Overflow shard.Overflow
	// Key extracts the partition key; Key or KeyAttr+Schema is required
	// and must match the ingress's placement.
	Key     shard.KeyFunc
	KeyAttr string
	Schema  *event.Schema
}

// Node hosts a block of the global shard space behind a transport
// connection. Construct with NewNode, then Serve one connection (or
// ServeListener for an accept loop).
type Node struct {
	cfg NodeConfig
	key shard.KeyFunc
	sig uint64
}

// signature fingerprints the pattern plus the schema's type/attribute
// layout; ingress and node must agree on both for events and matches to
// mean the same thing on either side.
func signature(pat *pattern.Pattern, s *event.Schema) uint64 {
	var b strings.Builder
	b.WriteString(pat.String())
	if s != nil {
		for t := 0; t < s.NumTypes(); t++ {
			fmt.Fprintf(&b, "|%s:%v", s.TypeName(t), s.Attrs(t))
		}
	}
	return wire.Fingerprint(b.String())
}

// NewNode validates the configuration and resolves the partition key. A
// bare node (nil Pattern) defers pattern, schema and key resolution to
// the handshake that ships them.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	key := cfg.Key
	switch {
	case key != nil && cfg.KeyAttr != "":
		return nil, fmt.Errorf("cluster: set exactly one of Key and KeyAttr")
	case key == nil && cfg.KeyAttr == "":
		return nil, fmt.Errorf("cluster: a partition key is required: set Key or KeyAttr")
	}
	if cfg.Pattern == nil {
		// Bare mode: the ingress ships pattern and schema; KeyAttr (or a
		// custom Key) resolves against them at handshake time.
		return &Node{cfg: cfg, key: key, sig: 0}, nil
	}
	if cfg.KeyAttr != "" {
		if cfg.Schema == nil {
			return nil, fmt.Errorf("cluster: KeyAttr needs Schema to resolve the attribute")
		}
		if err := shard.Partitionable(cfg.Pattern, cfg.Schema, cfg.KeyAttr); err != nil {
			return nil, err
		}
		k, err := shard.ByAttrName(cfg.Schema, cfg.KeyAttr)
		if err != nil {
			return nil, err
		}
		key = k
	}
	return &Node{cfg: cfg, key: key, sig: signature(cfg.Pattern, cfg.Schema)}, nil
}

// sender serializes a node's upstream frames and latches the first send
// error; after a failure every further send is a no-op, so the engines
// can still drain cleanly. The mutex interleaves the Serve loop's
// heartbeats with the collector goroutine's matches and watermarks.
// When the conn supports held sends (fl non-nil), frames accumulate in
// its write buffer and flush() pushes the burst out in one syscall.
type sender struct {
	mu  sync.Mutex
	c   Conn
	fl  interface{ Flush() error }
	err error
}

func (s *sender) send(f wire.Frame) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.c.Send(f)
	}
	s.mu.Unlock()
}

func (s *sender) flush() {
	if s.fl == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = s.fl.Flush()
	}
	s.mu.Unlock()
}

func (s *sender) failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Serve runs one ingress session over the connection: handshake, event
// ingestion with uniform watermark flushes, tagged-match and watermark
// streaming, and a final metrics report. It returns when the ingress
// finishes the stream (nil) or the transport fails (the error), closing
// the connection either way.
//
// The handshake reply selects the session flavor: a normal Assign hosts
// the node's configured shard count, a Reassign adopts a failed peer's
// block in recovery mode — the ingress replays the block's journaled
// history, the node suppresses every match tagged at or below the
// release boundary it was given (those were delivered before the
// failure), and reports RecoveryDone once its completion watermark
// passes the replay horizon.
func (n *Node) Serve(conn Conn) error {
	defer conn.Close()
	if err := conn.Send(wire.Hello{
		Version:    wire.Version,
		Shards:     uint32(n.cfg.Shards),
		PatternSig: n.sig,
	}); err != nil {
		return fmt.Errorf("cluster: node hello: %w", err)
	}
	f, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("cluster: node awaiting assignment: %w", err)
	}
	switch a := f.(type) {
	case wire.Assign:
		return n.serveBlock(conn, blockAssign{
			base: int(a.Base), shards: n.cfg.Shards, total: int(a.Total),
			pattern: a.Pattern, schema: a.Schema,
		})
	case wire.Reassign:
		if a.Shards < 1 || a.Shards > maxShardsPerNode {
			return fmt.Errorf("cluster: reassigned block of %d shards out of range", a.Shards)
		}
		return n.serveBlock(conn, blockAssign{
			base: int(a.Base), shards: int(a.Shards), total: int(a.Total),
			pattern: a.Pattern, schema: a.Schema,
			recovering: true, suppress: a.SuppressUpTo, replayUpTo: a.ReplayUpTo,
		})
	default:
		return fmt.Errorf("cluster: node expected assign frame, got %s", wire.KindOf(f))
	}
}

// blockAssign is a resolved handshake reply: which slice of the global
// shard space this session hosts, with what pattern, in which mode.
type blockAssign struct {
	base, shards, total int
	pattern             *pattern.Pattern
	schema              *event.Schema
	recovering          bool
	suppress            uint64 // release boundary: matches tagged <= are duplicates
	replayUpTo          uint64 // watermark at which replay has caught up
}

// serveBlock hosts one shard block for the rest of the session.
func (n *Node) serveBlock(conn Conn, a blockAssign) error {
	pat, schema := n.cfg.Pattern, n.cfg.Schema
	if pat == nil {
		// Bare mode: adopt the shipped pattern and schema.
		if a.pattern == nil {
			return fmt.Errorf("cluster: bare node got an assignment without a shipped pattern")
		}
		pat, schema = a.pattern, a.schema
	}
	key := n.key
	if key == nil {
		// Bare KeyAttr mode: resolve against the shipped schema, with
		// the same partitionability validation a configured node runs.
		if schema == nil {
			return fmt.Errorf("cluster: bare node needs a shipped schema to resolve key attribute %q", n.cfg.KeyAttr)
		}
		if err := shard.Partitionable(pat, schema, n.cfg.KeyAttr); err != nil {
			return err
		}
		k, err := shard.ByAttrName(schema, n.cfg.KeyAttr)
		if err != nil {
			return err
		}
		key = k
	}
	if a.total < 1 || a.base < 0 || a.base+a.shards > a.total {
		return fmt.Errorf("cluster: assignment [%d,%d) outside global shard space of %d",
			a.base, a.base+a.shards, a.total)
	}

	// The local engines are pinned to global shard indices [base,
	// base+shards): the route function inverts the ingress's placement,
	// so the cluster-wide event-to-engine assignment — and therefore
	// every engine's event subsequence and its match tags — is identical
	// to a single-process sharded engine with `total` shards. A
	// recovering session rebuilds those engines from replayed history:
	// the adaptation trajectory differs (plans restart fresh), but
	// match sets and tags do not depend on it.
	up := &sender{c: conn}
	// Coalesced upstream writes: a serializing transport holds the cut's
	// burst (heartbeat, matches, watermark) in its write buffer and the
	// loop flushes once per inbound frame — one write syscall per cut
	// instead of one per frame. The handler boundary is a protocol
	// quiescence point: the ingress never blocks on a node frame while
	// it still has frames of its own to send, and the final drain is
	// flushed before the session returns.
	if h, ok := conn.(interface {
		SetSendHold(bool)
		Flush() error
	}); ok {
		h.SetSendHold(true)
		up.fl = h
	}
	base, shards, total := a.base, a.shards, a.total
	var doneSent bool

	// Zero-copy receive: on a serializing transport (probe below), Batch
	// frames decode straight into this arena — the decoded slots are the
	// events the evaluators retain, no re-intern — and surface as
	// wire.BatchView with columnar spans for the unary mask scan. The
	// arena never recycles chunks (the zero value), so releasing behind
	// the time horizon merely unpins: anything an evaluator or an
	// in-flight match still references stays alive through the GC.
	var decArena *match.Arena
	if da, ok := conn.(interface{ SetDecodeArena(*match.Arena) }); ok {
		decArena = &match.Arena{}
		da.SetDecodeArena(decArena)
	}
	// OR patterns split into per-disjunct runners inside the engine, so a
	// top-level mask would index the wrong positions — skip the scan.
	scannable := pat.MaskScannable() && pat.Op != pattern.Or
	var (
		maskBuf []uint32
		ptrBuf  []*event.Event
		maxTS   event.Time
	)

	eng, err := shard.New(pat, n.cfg.Engine, shard.Options{
		Shards:   shards,
		Batch:    n.cfg.Batch,
		QueueCap: n.cfg.QueueCap,
		Snapshot: n.cfg.Snapshot,
		Window:   n.cfg.Window,
		Overflow: n.cfg.Overflow,
		Key:      key,
		Route: func(ev *event.Event) int {
			g := shard.GlobalIndex(key(ev), total)
			local := g - base
			if local < 0 || local >= shards {
				panic(fmt.Sprintf("cluster: event for global shard %d routed to node owning [%d,%d)",
					g, base, base+shards))
			}
			return local
		},
		// Owned emit: workers encode each match into a per-shard outbox
		// slab as it is emitted; the tag carries the encoded body and the
		// node forwards it verbatim — a serializing transport then writes
		// the bytes through (no second encode), and the in-process pipe
		// hands the slab slice to the ingress by reference.
		EncodeMatch: wire.AppendMatchBody,
		OnTagged: func(t shard.Tagged) {
			if a.recovering && t.Seq <= a.suppress {
				return // already delivered before the failure
			}
			if t.Enc != nil {
				up.send(wire.TaggedMatchRaw{Seq: t.Seq, Body: t.Enc})
				return
			}
			up.send(wire.TaggedMatch{Seq: t.Seq, M: t.M})
		},
		OnProgress: func(w uint64) {
			if a.recovering && !doneSent && w >= a.replayUpTo {
				doneSent = true
				up.send(wire.RecoveryDone{UpTo: w})
			}
			up.send(wire.Watermark{UpTo: w})
		},
	})
	if err != nil {
		return err
	}

	finish := func() { // idempotent by shard.Engine contract
		eng.Finish()
	}
	for {
		f, err := conn.Recv()
		if err != nil {
			finish()
			up.flush() // best-effort: the drained tail may still arrive
			if err == io.EOF {
				return fmt.Errorf("cluster: ingress closed before finish")
			}
			return err
		}
		switch v := f.(type) {
		case *wire.BatchView:
			// Serializing transport: the events already live in decArena
			// (decoded in place by conn.Recv). Scan the columnar spans
			// into per-event unary masks, then hand the stable pointers
			// to the engine — no copy anywhere between socket and match.
			up.send(wire.Heartbeat{UpTo: v.UpTo})
			var masks []uint32
			if scannable && len(v.Events) > 0 {
				if cap(maskBuf) < len(v.Events) {
					maskBuf = make([]uint32, len(v.Events))
				}
				masks = maskBuf[:len(v.Events)]
				pat.ScanUnarySpans(v.Spans, masks)
			}
			eng.ProcessStable(v.Events, masks)
			eng.Flush(v.UpTo)
			if ne := len(v.Events); ne > 0 {
				if ts := v.Events[ne-1].TS; ts > maxTS {
					maxTS = ts
				}
				// Unpin decoded chunks the engines can no longer need for
				// new matches (recycle is off, so any horizon is safe —
				// see the arena comment above).
				if w := pat.Window; w > 0 {
					decArena.Release(maxTS - 2*w)
				} else if decArena.Live() > 64 {
					decArena.Release(maxTS)
				}
			}
		case wire.Batch:
			// Reference transport (in-process pipe): the frame's event
			// slice is owned by the ingress/journal and stable for the
			// run, so the engines can retain pointers into it directly.
			up.send(wire.Heartbeat{UpTo: v.UpTo})
			ptrBuf = ptrBuf[:0]
			for i := range v.Events {
				ptrBuf = append(ptrBuf, &v.Events[i])
			}
			eng.ProcessStable(ptrBuf, nil)
			eng.Flush(v.UpTo)
		case wire.Finish:
			// Drain everything: Finish returns only after the collector
			// has delivered every match (and the MaxUint64 watermark)
			// through the sender above.
			finish()
			up.send(wire.Metrics{M: eng.Metrics()})
			up.flush()
			if err := up.failed(); err != nil {
				return fmt.Errorf("cluster: node streaming results: %w", err)
			}
			return nil
		default:
			finish()
			up.flush()
			return fmt.Errorf("cluster: node received unexpected %s frame", wire.KindOf(f))
		}
		up.flush()
	}
}

// ServeListener accepts ingress sessions in a loop, serving each on its
// own goroutine: a Node is stateless across sessions, so one worker
// process can serve consecutive runs, act as a recovery standby, or —
// as a survivor — adopt a failed peer's shard block in a second,
// concurrent session while still serving its own. It returns when the
// listener closes; per-session errors go to onErr (nil to ignore).
func (n *Node) ServeListener(l *Listener, onErr func(error)) error {
	for {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := n.Serve(c); err != nil && onErr != nil {
				onErr(err)
			}
		}()
	}
}

// maxSeq is the final watermark every source reports at end of stream.
const maxSeq = math.MaxUint64
