package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"acep/internal/chaos"
	"acep/internal/engine"
	"acep/internal/gen"
)

// runElastic streams the workload through the rig's cluster with the
// placement controller configured, invoking the `at` hooks just before
// the given event indexes — on the ingress goroutine, which is the
// calling contract of MigrateShard, AddNode and Drain.
func runElastic(t *testing.T, rig *failoverRig, w *gen.Workload, kind gen.Kind,
	ec *ElasticConfig, at map[int]func(*Ingress)) (*tagRecorder, *Ingress) {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	ing, err := NewIngress(pat, rig.conns, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema, OnTagged: rec.rec,
		Recovery: &rig.recOptions, Elastic: ec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		if fn, ok := at[i]; ok {
			fn(ing)
		}
		ing.Process(&w.Events[i])
	}
	if err := finishWithin(t, 60*time.Second, ing); err != nil {
		t.Fatalf("elastic cluster finished with error: %v", err)
	}
	return rec, ing
}

// TestMigrateLive is the tentpole's acceptance shape: a shard migrates
// between two healthy nodes mid-stream — ingest never stops, no failure
// is involved — and the delivered stream is byte-identical to the
// single-process engine. The migration record carries the replay volume
// and a completed timestamp (the ack round-trip happened).
func TestMigrateLive(t *testing.T) {
	for _, kind := range []gen.Kind{gen.Sequence, gen.Kleene} {
		w := failoverWorkload(t, "traffic")
		want := runSharded(t, w, kind, 6)
		rig, _ := startFailoverRig(t, w, kind, 0, nil, nil)
		got, ing := runElastic(t, rig, w, kind, nil, map[int]func(*Ingress){
			2000: func(ing *Ingress) {
				// Shard 2 is node 1's first shard; node 0 never hosted it.
				if err := ing.MigrateShard(2, 0); err != nil {
					t.Fatalf("live migration failed: %v", err)
				}
			},
		})
		requireIdentical(t, fmt.Sprintf("live migration/%v", kind), got, want)
		if fos := ing.Failovers(); len(fos) != 0 {
			t.Fatalf("%v: healthy migration recorded failovers: %+v", kind, fos)
		}
		mgs := ing.Migrations()
		if len(mgs) != 1 {
			t.Fatalf("%v: %d migrations, want 1: %+v", kind, len(mgs), mgs)
		}
		m := mgs[0]
		if m.Shard != 2 || m.From != 1 || m.To != 0 || m.Reason != "rebalance" {
			t.Fatalf("%v: migration record %+v, want shard 2 node 1 -> 0 (rebalance)", kind, m)
		}
		if m.ReplayCuts == 0 || m.ReplayEvents == 0 {
			t.Fatalf("%v: migration replayed nothing: %+v", kind, m)
		}
		if m.CompletedAt.IsZero() || m.Pause() <= 0 {
			t.Fatalf("%v: migration never acknowledged: %+v", kind, m)
		}
		if o := ing.Owners(); o[2] != 0 {
			t.Fatalf("%v: owners %v, want shard 2 on node 0", kind, o)
		}
	}
}

// waitForStats blocks until at least `nodes` slots have reported a
// ShardStats snapshot. A test ingress outruns its nodes by design (no
// flow control ties ingest to worker progress), so a controller test
// must let the first snapshots arrive before streaming on — a paced
// real deployment gets them continuously.
func waitForStats(t *testing.T, ing *Ingress, nodes int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := 0
		ing.mu.Lock()
		for _, ss := range ing.stats {
			if len(ss) > 0 {
				got++
			}
		}
		ing.mu.Unlock()
		if got >= nodes {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("nodes never reported shard stats")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRebalanceSkewed: the placement controller, fed per-shard
// queue-wait p99 snapshots, moves at least one shard off the hottest
// node on its own — and however many moves it makes, the stream stays
// byte-identical to the single-process reference.
func TestRebalanceSkewed(t *testing.T) {
	// Keys: 4 over 6 global shards leaves at least two shards idle, so
	// node load is skewed from the start and stays so.
	w := gen.Traffic(gen.TrafficConfig{
		Types: 6, Events: 5000, Seed: 17, Shifts: 1, MeanGap: 3, Keys: 4,
	})
	want := runSharded(t, w, gen.Sequence, 6)
	rig, _ := startFailoverRig(t, w, gen.Sequence, 0, nil, nil)
	got, ing := runElastic(t, rig, w, gen.Sequence, &ElasticConfig{
		Rebalance: true, HotRatio: 1.1, MinWaitP99: 1, CooldownCuts: 2,
	}, map[int]func(*Ingress){
		// Snapshots need ~20 cuts of worker progress (publish and ship
		// strides) before the controller can see the skew.
		3000: func(ing *Ingress) { waitForStats(t, ing, 2) },
	})
	requireIdentical(t, "rebalance under skew", got, want)
	if fos := ing.Failovers(); len(fos) != 0 {
		t.Fatalf("rebalance recorded failovers: %+v", fos)
	}
	mgs := ing.Migrations()
	if len(mgs) == 0 {
		t.Fatal("controller never moved a shard off the hot node")
	}
	for _, m := range mgs {
		if m.Reason != "rebalance" && m.Reason != "join" {
			t.Fatalf("controller move with reason %q: %+v", m.Reason, m)
		}
		if m.CompletedAt.IsZero() {
			t.Fatalf("migration never acknowledged: %+v", m)
		}
	}
}

// TestMigrateSourceKilled — kill matrix (1): the migration's source
// node dies right as the move is in flight (its remaining shard fails
// over to a standby while the migrated shard's ack may still be
// pending). Both the migrated and the failed-over shard must land
// exactly once in the output.
func TestMigrateSourceKilled(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 6)
	// Node 1 has sent ≤94 frames by event 2000 (1 assign + 31 cuts × ≤3);
	// budget 95 kills it on the first frames after the migration below.
	rig, _ := startFailoverRig(t, w, gen.Sequence, 1, func(i int, c Conn) Conn {
		if i == 1 {
			return &chaos.Flaky{C: c, Budget: 95}
		}
		return c
	}, nil)
	got, ing := runElastic(t, rig, w, gen.Sequence, nil, map[int]func(*Ingress){
		2000: func(ing *Ingress) {
			if err := ing.MigrateShard(2, 0); err != nil {
				t.Fatalf("migration off the doomed source failed: %v", err)
			}
		},
	})
	requireIdentical(t, "source killed mid-migration", got, want)
	fos := ing.Failovers()
	if len(fos) != 1 || fos[0].Node != 1 {
		t.Fatalf("failovers = %+v, want exactly one for node 1", fos)
	}
	var sawMove, sawFailover bool
	for _, m := range ing.Migrations() {
		if m.Shard == 2 && m.To == 0 && m.Reason == "rebalance" {
			sawMove = true
			if m.CompletedAt.IsZero() {
				t.Fatalf("migrated shard 2 never acknowledged: %+v", m)
			}
		}
		if m.Shard == 3 && m.Reason == "failover" {
			sawFailover = true
		}
	}
	if !sawMove || !sawFailover {
		t.Fatalf("migrations %+v: want shard 2 rebalanced and shard 3 failed over", ing.Migrations())
	}
}

// TestMigrateDestKilled — kill matrix (2): the migration's destination
// dies while the shard's history is being replayed into it. The aborted
// move is dropped, the destination's whole block (the half-migrated
// shard included) fails over to a standby, and the stream stays exact.
func TestMigrateDestKilled(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 6)
	// Node 0's budget expires just as the migration's Migrate-plus-replay
	// burst lands on top of its ≤94 pre-migration frames.
	rig, _ := startFailoverRig(t, w, gen.Sequence, 1, func(i int, c Conn) Conn {
		if i == 0 {
			return &chaos.Flaky{C: c, Budget: 96}
		}
		return c
	}, nil)
	got, ing := runElastic(t, rig, w, gen.Sequence, nil, map[int]func(*Ingress){
		2000: func(ing *Ingress) {
			// The destination dies during this call's replay loop (or on
			// the cut right after): the error path parks the failure for
			// the next barrier either way.
			ing.MigrateShard(2, 0) //nolint:errcheck // the death is the point
		},
	})
	requireIdentical(t, "destination killed mid-replay", got, want)
	fos := ing.Failovers()
	if len(fos) != 1 || fos[0].Node != 0 {
		t.Fatalf("failovers = %+v, want exactly one for node 0", fos)
	}
	owners := ing.Owners()
	for _, g := range []int{0, 1, 2} {
		if owners[g] != 0 {
			t.Fatalf("owners %v: shard %d must ride node 0's successor", owners, g)
		}
	}
}

// TestRebalanceDuringFailover — kill matrix (3): the placement
// controller is live while a node dies and fails over. The controller
// must not interleave moves with the in-flight recovery (it never moves
// while any migration is unacknowledged), and the stream stays exact.
func TestRebalanceDuringFailover(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 6)
	rig, _ := startFailoverRig(t, w, gen.Sequence, 1, func(i int, c Conn) Conn {
		if i == 1 {
			return &chaos.Flaky{C: c, Budget: 45}
		}
		return c
	}, nil)
	got, ing := runElastic(t, rig, w, gen.Sequence, &ElasticConfig{
		Rebalance: true, HotRatio: 1.1, MinWaitP99: 1, CooldownCuts: 2,
	}, nil)
	requireIdentical(t, "rebalance during failover", got, want)
	fos := ing.Failovers()
	if len(fos) != 1 || fos[0].Node != 1 {
		t.Fatalf("failovers = %+v, want exactly one for node 1", fos)
	}
	if fos[0].RecoveredAt.IsZero() {
		t.Fatal("failover never completed under the live controller")
	}
}

// TestStandbyRestartRejoins — satellite regression: a consumed standby
// whose process dies and restarts (a fresh accept on the same address,
// serving the bare-node Hello path) returns to the standby pool and is
// adopted again by a later failover. Two failovers of the same slot
// ride one standby address; the stream stays exact.
func TestStandbyRestartRejoins(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 6)
	rig, _ := startFailoverRig(t, w, gen.Sequence, 0, func(i int, c Conn) Conn {
		if i == 1 {
			return &chaos.Flaky{C: c, Budget: 30}
		}
		return c
	}, nil)

	// One standby address. Each accepted session runs a fresh bare node —
	// the "restarted process". The first session is killed mid-stream
	// after adoption; the second must find the address back in the pool.
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var sessions atomic.Int32
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			n := sessions.Add(1)
			node, err := NewNode(NodeConfig{
				Engine: engine.Config{CheckEvery: 250}, Batch: 64, KeyAttr: "key",
			})
			if err != nil {
				rig.noteErr(err)
				c.Close()
				continue
			}
			if n == 1 {
				// First tenancy dies ~30 cuts after adoption.
				c = &recvKiller{Conn: c, budget: 120}
			}
			go node.Serve(c) //nolint:errcheck // session 1's crash is the point
		}
	}()
	rig.recOptions.Standby = DialStandbys([]string{l.Addr()})

	got, ing := runElastic(t, rig, w, gen.Sequence, nil, nil)
	requireIdentical(t, "standby restart rejoins", got, want)
	fos := ing.Failovers()
	if len(fos) != 2 || fos[0].Node != 1 || fos[1].Node != 1 {
		t.Fatalf("failovers = %+v, want two for node 1 (original death, adoptee death)", fos)
	}
	if n := sessions.Load(); n != 2 {
		t.Fatalf("standby address served %d sessions, want 2 (consumed, then rejoined after restart)", n)
	}
}

// TestAddNodeDrain: runtime scale-out and graceful scale-in on one
// cluster — a bare node joins mid-stream and receives a shard, then a
// founding node drains its shards to the survivors and finishes while
// the cluster keeps running. Stream byte-identical, every move
// acknowledged, no failovers.
func TestAddNodeDrain(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 4)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}

	var conns []Conn
	rig := &failoverRig{}
	for i := 0; i < 2; i++ {
		node, err := NewNode(NodeConfig{
			Pattern: pat, Engine: engine.Config{CheckEvery: 250},
			Shards: 2, Batch: 64, KeyAttr: "key", Schema: w.Schema,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go node.ServeListener(l, rig.noteErr) //nolint:errcheck // closed at test end
		c, err := DialTCP(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	// The joining node: bare (adopts pattern and schema from the Assign
	// reply), listening but not yet part of the cluster.
	joiner, err := NewNode(NodeConfig{
		Engine: engine.Config{CheckEvery: 250}, Batch: 64, KeyAttr: "key",
	})
	if err != nil {
		t.Fatal(err)
	}
	jl, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.Close() })
	go joiner.ServeListener(jl, rig.noteErr) //nolint:errcheck // closed at test end

	rec := &tagRecorder{}
	ing, err := NewIngress(pat, conns, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema, OnTagged: rec.rec,
		Recovery: &RecoveryConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		switch i {
		case 1500:
			c, err := DialTCP(jl.Addr())
			if err != nil {
				t.Fatal(err)
			}
			n, err := ing.AddNode(c)
			if err != nil {
				t.Fatalf("AddNode: %v", err)
			}
			if n != 2 {
				t.Fatalf("joined as slot %d, want 2", n)
			}
			if err := ing.MigrateShard(1, n); err != nil {
				t.Fatalf("handing shard 1 to the joiner: %v", err)
			}
		case 3500:
			if err := ing.Drain(0); err != nil {
				t.Fatalf("Drain: %v", err)
			}
		}
		ing.Process(&w.Events[i])
	}
	if err := finishWithin(t, 60*time.Second, ing); err != nil {
		t.Fatalf("elastic cluster finished with error: %v", err)
	}
	requireIdentical(t, "join+drain", rec, want)
	if fos := ing.Failovers(); len(fos) != 0 {
		t.Fatalf("join+drain recorded failovers: %+v", fos)
	}
	mgs := ing.Migrations()
	if len(mgs) != 2 {
		t.Fatalf("%d migrations, want 2 (join, drain): %+v", len(mgs), mgs)
	}
	if mgs[0].Shard != 1 || mgs[0].To != 2 || mgs[0].Reason != "join" {
		t.Fatalf("join move %+v, want shard 1 -> slot 2 (join)", mgs[0])
	}
	if mgs[1].From != 0 || mgs[1].Reason != "drain" {
		t.Fatalf("drain move %+v, want off node 0 (drain)", mgs[1])
	}
	for _, m := range mgs {
		if m.CompletedAt.IsZero() {
			t.Fatalf("migration never acknowledged: %+v", m)
		}
	}
	owners := ing.Owners()
	if owners[1] != 2 || owners[0] == 0 {
		t.Fatalf("owners %v: shard 1 must ride the joiner and shard 0 must have left node 0", owners)
	}
}
