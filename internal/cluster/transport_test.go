package cluster

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/wire"
)

// TestDialRetryTrail: a dial against a dead port runs the full bounded
// attempt schedule and surfaces every attempt in the error — the
// per-attempt trail a degraded takeover needs to explain itself.
func TestDialRetryTrail(t *testing.T) {
	// Bind-then-close guarantees an unserved port.
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	l.Close()
	_, err = DialTCPContext(context.Background(), addr, DialPolicy{
		Timeout: 200 * time.Millisecond, Attempts: 3,
		Backoff: 5 * time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dialing a closed port succeeded")
	}
	for _, want := range []string{"after 3 attempts", "attempt 1", "attempt 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("dial error %q missing %q", err, want)
		}
	}
}

// TestDialContextAborts: cancelling the context ends the retry schedule
// early instead of running out the remaining backoff waits.
func TestDialContextAborts(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialTCPContext(ctx, addr, DialPolicy{
		Timeout: 100 * time.Millisecond, Attempts: 10,
		Backoff: 400 * time.Millisecond, MaxBackoff: time.Second,
	})
	if err == nil {
		t.Fatal("dial under a cancelled context succeeded")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled dial took %v, should abort within the context window", el)
	}
}

// TestReadStallWedgedPeer: an armed read-stall probe turns a peer that
// sends nothing into a link error instead of an indefinite block.
func TestReadStallWedgedPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := WrapNetConn(a)
	conn.(interface{ SetReadStall(time.Duration) }).SetReadStall(200 * time.Millisecond)
	start := time.Now()
	_, err := conn.Recv()
	if err == nil || !strings.Contains(err.Error(), "read stalled") {
		t.Fatalf("Recv from a silent peer returned %v, want a read-stall error", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("stall detection took %v, window was 200ms", el)
	}
}

// TestReadStallToleratesLatePeer: a peer that answers within the stall
// window is not a stall — the sliced deadlines must not misfire on
// ordinary latency.
func TestReadStallToleratesLatePeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := WrapNetConn(a)
	conn.(interface{ SetReadStall(time.Duration) }).SetReadStall(time.Second)
	go func() {
		time.Sleep(100 * time.Millisecond)
		b.Write(wire.Append(nil, wire.Watermark{UpTo: 7}))
	}()
	f, err := conn.Recv()
	if err != nil {
		t.Fatalf("Recv with a merely slow peer: %v", err)
	}
	if w, ok := f.(wire.Watermark); !ok || w.UpTo != 7 {
		t.Fatalf("got %#v, want Watermark{7}", f)
	}
}

// TestWriteStallWedgedPeer: an armed write-stall probe fails a Send into
// a peer that accepts zero bytes (net.Pipe is unbuffered, so an absent
// reader models a wedged process exactly).
func TestWriteStallWedgedPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := WrapNetConn(a)
	conn.(interface{ SetWriteStall(time.Duration) }).SetWriteStall(200 * time.Millisecond)
	err := conn.Send(wire.Watermark{UpTo: 1})
	if err == nil || !strings.Contains(err.Error(), "write stalled") {
		t.Fatalf("Send into a wedged peer returned %v, want a write-stall error", err)
	}
}

// TestWriteStallToleratesSlowReader: progress resets the stall clock —
// a reader draining a trickle per deadline slice never trips the error,
// even when the whole write takes longer than the stall window.
func TestWriteStallToleratesSlowReader(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := WrapNetConn(a)
	conn.(interface{ SetWriteStall(time.Duration) }).SetWriteStall(200 * time.Millisecond)
	// A frame several times larger than the per-read trickle.
	big := wire.ReplCut{UpTo: 1, Cut: 1, Addrs: []string{strings.Repeat("x", 4096)}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
			time.Sleep(30 * time.Millisecond) // slower than a slice, faster than the window
		}
	}()
	if err := conn.Send(big); err != nil {
		t.Fatalf("Send to a slow-but-progressing reader: %v", err)
	}
	a.Close()
	<-done
}

// TestNodeWedgedIngressFailsSession: the node's upstream sender sits
// behind a mutex; a coordinator that stops reading (wedged process,
// one-way partition) used to block that mutex forever and wedge the
// session with it. With WriteStall armed the session must end in a link
// error instead.
func TestNodeWedgedIngressFailsSession(t *testing.T) {
	w := keyedWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(NodeConfig{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key",
		Engine: engine.Config{CheckEvery: 250}, Shards: 1, Batch: 64,
		WriteStall: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer b.Close()
	served := make(chan error, 1)
	go func() { served <- node.Serve(WrapNetConn(a)) }()
	ing := WrapNetConn(b)
	if f, err := ing.Recv(); err != nil {
		t.Fatalf("hello: %v", err)
	} else if _, ok := f.(wire.Hello); !ok {
		t.Fatalf("expected hello, got %s", wire.KindOf(f))
	}
	if err := ing.Send(wire.Assign{Base: 0, Shards: 1, Total: 1}); err != nil {
		t.Fatalf("assign: %v", err)
	}
	// Wedge: stop reading entirely, then make the node owe us frames. A
	// cut-carrying batch forces a heartbeat + watermark upstream, which
	// blocks on the unbuffered pipe until the stall probe fires.
	if err := ing.Send(wire.Batch{UpTo: 64}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	select {
	case err := <-served:
		if err == nil || !strings.Contains(err.Error(), "stalled") {
			t.Fatalf("wedged-ingress session returned %v, want a write-stall link error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("node session still wedged 10s after the ingress stopped reading")
	}
}
