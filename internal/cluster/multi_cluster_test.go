package cluster

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"acep/internal/chaos"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/multi"
	"acep/internal/shard"
	"acep/internal/shed"
	"acep/internal/wire"
)

// multiClusterWorkload is a dense keyed stream for the multi-pattern
// cluster tests: dense enough that every pattern of an overlapping-
// prefix set (Kleene suffixes included) fires, keyed so the set is
// partitionable by "key" and spreads across the shards.
func multiClusterWorkload(t *testing.T, dataset string, keys int) *gen.Workload {
	t.Helper()
	switch dataset {
	case "traffic":
		return gen.Traffic(gen.TrafficConfig{
			Types: 7, Events: 6000, Seed: 29, Shifts: 1, MeanGap: 2, Keys: keys,
		})
	case "stocks":
		return gen.Stocks(gen.StocksConfig{
			Types: 7, Events: 6000, Seed: 31, MeanGap: 2, DriftEvery: 300, Keys: keys,
		})
	default:
		t.Fatalf("unknown dataset %s", dataset)
		return nil
	}
}

// multiClusterSpecs builds an overlapping-prefix pattern set over w.
func multiClusterSpecs(t *testing.T, w *gen.Workload, kind gen.Kind, n, tenants int) []multi.Spec {
	t.Helper()
	entries, err := w.OverlapPatterns(kind, n, 3, 700, tenants)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]multi.Spec, len(entries))
	for i, e := range entries {
		specs[i] = multi.Spec{
			ID: e.ID, Tenant: e.Tenant, Pattern: e.Pattern,
			Config: engine.Config{CheckEvery: 250},
		}
	}
	return specs
}

// multiRecorder canonicalizes a pattern-multiplexed match stream: one
// wire-encoded byte stream per pattern id, in delivery order. Per-
// pattern byte equality of two recordings means identical match sets
// in identical order, down to every attribute bit.
type multiRecorder struct {
	bufs map[uint32][]byte
	keys map[uint32][]string
	n    int
}

func (r *multiRecorder) rec(tg shard.Tagged) {
	if r.bufs == nil {
		r.bufs = make(map[uint32][]byte)
		r.keys = make(map[uint32][]string)
	}
	r.bufs[tg.Pattern] = wire.Append(r.bufs[tg.Pattern], wire.TaggedMatch{Seq: tg.Seq, M: tg.M})
	r.keys[tg.Pattern] = append(r.keys[tg.Pattern], tg.M.Key())
	r.n++
}

// runMultiLocal is the single-process reference: the multi-pattern
// shard engine at the given total shard count (itself cross-checked
// against independent engines in the shard package's tests).
func runMultiLocal(t *testing.T, w *gen.Workload, specs []multi.Spec, shards int, tenants map[uint32]shed.TenantBudget) *multiRecorder {
	t.Helper()
	rec := &multiRecorder{}
	eng, err := shard.New(nil, engine.Config{}, shard.Options{
		Shards: shards, Batch: 64, KeyAttr: "key", Schema: w.Schema,
		Patterns: specs, Tenants: tenants, OnTagged: rec.rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	return rec
}

// startMultiRig launches a loopback-TCP cluster of bare worker nodes
// (multi-pattern sessions always ship the set from the ingress) plus
// bare standby nodes behind a dialing Standby factory.
func startMultiRig(t *testing.T, nodes, shardsPer, standbys int, wrapConn func(i int, c Conn) Conn) *failoverRig {
	t.Helper()
	rig := &failoverRig{}
	serve := func(node *Node, l *Listener) {
		go node.ServeListener(l, rig.noteErr) //nolint:errcheck // closed at test end
	}
	for i := 0; i < nodes; i++ {
		node, err := NewNode(NodeConfig{
			Engine: engine.Config{CheckEvery: 250},
			Shards: shardsPer, Batch: 64, KeyAttr: "key",
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		serve(node, l)
		c, err := DialTCP(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if wrapConn != nil {
			c = wrapConn(i, c)
		}
		rig.conns = append(rig.conns, c)
	}
	for k := 0; k < standbys; k++ {
		node, err := NewNode(NodeConfig{
			Engine: engine.Config{CheckEvery: 250}, Batch: 64, KeyAttr: "key",
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		serve(node, l)
		rig.standbyLs = append(rig.standbyLs, l)
	}
	rig.recOptions = RecoveryConfig{
		Standby: func() (Conn, error) {
			if rig.dialed >= len(rig.standbyLs) {
				return nil, fmt.Errorf("rig: standbys exhausted")
			}
			c, err := DialTCP(rig.standbyLs[rig.dialed].Addr())
			if err != nil {
				return nil, err
			}
			rig.dialed++
			return c, nil
		},
	}
	return rig
}

// runMultiCluster streams the workload through the rig's cluster with
// the given pattern set, firing the `at` hooks before their event
// index, and requires a clean finish.
func runMultiCluster(t *testing.T, rig *failoverRig, w *gen.Workload, specs []multi.Spec,
	tenants map[uint32]shed.TenantBudget, recover bool, at map[int]func(*Ingress)) (*multiRecorder, *Ingress) {
	t.Helper()
	rec := &multiRecorder{}
	opts := IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema, OnTagged: rec.rec,
		Patterns: specs, Tenants: tenants,
	}
	if recover {
		opts.Recovery = &rig.recOptions
	}
	ing, err := NewIngress(nil, rig.conns, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		if f := at[i]; f != nil {
			f(ing)
		}
		ing.Process(&w.Events[i])
	}
	if err := finishWithin(t, 60*time.Second, ing); err != nil {
		t.Fatalf("multi cluster finished with error: %v", err)
	}
	return rec, ing
}

// requireMultiIdentical compares two recordings pattern by pattern.
func requireMultiIdentical(t *testing.T, label string, specs []multi.Spec, got, want *multiRecorder) {
	t.Helper()
	if want.n == 0 {
		t.Fatalf("%s: reference produced no matches; test is vacuous", label)
	}
	for _, sp := range specs {
		if !bytes.Equal(got.bufs[sp.ID], want.bufs[sp.ID]) {
			t.Fatalf("%s: pattern %d stream diverges from the reference (%d vs %d matches)",
				label, sp.ID, len(got.keys[sp.ID]), len(want.keys[sp.ID]))
		}
	}
	if got.n != want.n {
		t.Fatalf("%s: %d matches delivered, reference has %d", label, got.n, want.n)
	}
}

// TestMultiClusterByteIdentical is the subsystem's acceptance
// criterion on the wire: a 3-node loopback-TCP cluster hosting an
// overlapping-prefix pattern set must deliver, per pattern, a stream
// byte-identical to the single-process multi-pattern shard engine at
// equal total shards — for plain, negation and Kleene suffixes on
// both workload regimes.
func TestMultiClusterByteIdentical(t *testing.T) {
	for _, dataset := range []string{"traffic", "stocks"} {
		for _, kind := range []gen.Kind{gen.Sequence, gen.Negation, gen.Kleene} {
			w := multiClusterWorkload(t, dataset, 4)
			// Kleene closures need their own density: the standard regime
			// is too cross-key-diluted for traffic closures to fire, while
			// dense stocks streams make the closure count explode.
			if kind == gen.Kleene {
				if dataset == "traffic" {
					w = gen.Traffic(gen.TrafficConfig{
						Types: 7, Events: 6000, Seed: 23, Shifts: 1, MeanGap: 2, Keys: 2,
					})
				} else {
					w = gen.Stocks(gen.StocksConfig{
						Types: 7, Events: 6000, Seed: 31, MeanGap: 2, DriftEvery: 300, Keys: 8,
					})
				}
			}
			specs := multiClusterSpecs(t, w, kind, 6, 1)
			want := runMultiLocal(t, w, specs, 6, nil)
			rig := startMultiRig(t, 3, 2, 0, nil)
			got, ing := runMultiCluster(t, rig, w, specs, nil, false, nil)
			requireMultiIdentical(t, fmt.Sprintf("%s/%v", dataset, kind), specs, got, want)
			pms := ing.PatternMetrics()
			if len(pms) != len(specs) {
				t.Fatalf("%s/%v: %d pattern metrics, want %d", dataset, kind, len(pms), len(specs))
			}
			for _, pm := range pms {
				if pm.M.Events == 0 {
					t.Fatalf("%s/%v: pattern %d reports zero events", dataset, kind, pm.ID)
				}
			}
		}
	}
}

// TestMultiClusterMigrationFailover: the per-pattern streams stay
// byte-identical through both reshaping paths at once — a manual
// shard migration early in the stream, then a node death whose block
// fails over to a bare standby (which adopts the whole pattern set
// through the Assign handshake and journal replay).
func TestMultiClusterMigrationFailover(t *testing.T) {
	w := multiClusterWorkload(t, "traffic", 4)
	specs := multiClusterSpecs(t, w, gen.Sequence, 6, 1)
	want := runMultiLocal(t, w, specs, 6, nil)
	// Budget 45 ≈ the assign frame plus 44 cuts of 64 events: node 1's
	// link dies ~47% into the stream, after the migration at event 1000.
	rig := startMultiRig(t, 3, 2, 1, func(i int, c Conn) Conn {
		if i == 1 {
			return &chaos.Flaky{C: c, Budget: 45}
		}
		return c
	})
	got, ing := runMultiCluster(t, rig, w, specs, nil, true, map[int]func(*Ingress){
		1000: func(ing *Ingress) {
			if err := ing.MigrateShard(4, 0); err != nil {
				t.Fatalf("migrating shard 4: %v", err)
			}
		},
	})
	requireMultiIdentical(t, "migration+failover", specs, got, want)
	fos := ing.Failovers()
	if len(fos) != 1 || fos[0].Node != 1 {
		t.Fatalf("failovers = %+v, want exactly one for node 1", fos)
	}
	if fos[0].ReplayEvents == 0 {
		t.Fatalf("failover replayed nothing: %+v", fos[0])
	}
	var sawMove bool
	for _, m := range ing.Migrations() {
		if m.Shard == 4 && m.To == 0 && m.Reason == "rebalance" {
			sawMove = true
			if m.CompletedAt.IsZero() {
				t.Fatalf("manual migration never acknowledged: %+v", m)
			}
		}
	}
	if !sawMove {
		t.Fatalf("migrations %+v: manual move of shard 4 missing", ing.Migrations())
	}
}

// TestMultiClusterAddRemove: registering and retiring patterns on a
// live cluster — with a shard migration after the mutation, so the
// replay filter for the runtime-added pattern is exercised — leaves
// every untouched pattern's match multiset identical to a run without
// the mutation, the removed pattern emits a subset of its baseline,
// and the added pattern emits a subset of its full-stream solo set
// (the migration replay must not regenerate pre-registration matches).
func TestMultiClusterAddRemove(t *testing.T) {
	w := multiClusterWorkload(t, "traffic", 4)
	all := multiClusterSpecs(t, w, gen.Sequence, 7, 1)
	initial, extra := all[:6], all[6]
	removed := initial[1].ID

	rigBase := startMultiRig(t, 3, 2, 0, nil)
	base, _ := runMultiCluster(t, rigBase, w, initial, nil, false, nil)
	solo := runMultiLocal(t, w, []multi.Spec{extra}, 1, nil)

	// Mutate early so the baseline certainly has post-mutation matches
	// of the removed pattern; migrate one of the mutated shards later.
	at := len(w.Events) / 8
	rig := startMultiRig(t, 3, 2, 0, nil)
	got, ing := runMultiCluster(t, rig, w, initial, nil, true, map[int]func(*Ingress){
		at: func(ing *Ingress) {
			if err := ing.AddPattern(extra); err != nil {
				t.Fatalf("AddPattern: %v", err)
			}
			if err := ing.RemovePattern(removed); err != nil {
				t.Fatalf("RemovePattern: %v", err)
			}
		},
		3 * len(w.Events) / 8: func(ing *Ingress) {
			if err := ing.MigrateShard(1, 2); err != nil {
				t.Fatalf("migrating shard 1 after the mutation: %v", err)
			}
		},
	})

	live := ing.Patterns()
	if len(live) != 6 {
		t.Fatalf("%d live patterns after add+remove, want 6", len(live))
	}
	for _, sp := range live {
		if sp.ID == removed {
			t.Fatalf("removed pattern %d still in the shipped set", removed)
		}
	}
	for _, sp := range initial {
		if sp.ID == removed {
			continue
		}
		if !reflect.DeepEqual(sorted(got.keys[sp.ID]), sorted(base.keys[sp.ID])) {
			t.Fatalf("pattern %d disturbed by add/remove: %d vs %d matches",
				sp.ID, len(got.keys[sp.ID]), len(base.keys[sp.ID]))
		}
	}
	baseSet := make(map[string]int)
	for _, k := range base.keys[removed] {
		baseSet[k]++
	}
	for _, k := range got.keys[removed] {
		if baseSet[k] == 0 {
			t.Fatalf("removed pattern emitted a match outside its baseline: %s", k)
		}
		baseSet[k]--
	}
	if len(got.keys[removed]) >= len(base.keys[removed]) && len(base.keys[removed]) > 0 {
		t.Fatalf("removal had no effect: %d of %d matches still emitted",
			len(got.keys[removed]), len(base.keys[removed]))
	}
	soloSet := make(map[string]int)
	for _, k := range solo.keys[extra.ID] {
		soloSet[k]++
	}
	for _, k := range got.keys[extra.ID] {
		if soloSet[k] == 0 {
			t.Fatalf("added pattern emitted a match outside its solo set (replay regenerated history?): %s", k)
		}
		soloSet[k]--
	}
}

// TestMultiClusterTenantBudgets: a budgeted tenant sheds cluster-wide
// while the other tenant's patterns stay byte-identical to an
// unbudgeted run, and the per-tenant accounting merges across nodes
// into the ingress TenantStats.
func TestMultiClusterTenantBudgets(t *testing.T) {
	w := multiClusterWorkload(t, "traffic", 4)
	specs := multiClusterSpecs(t, w, gen.Sequence, 6, 2)
	rigFree := startMultiRig(t, 3, 2, 0, nil)
	free, _ := runMultiCluster(t, rigFree, w, specs, nil, false, nil)

	budgets := map[uint32]shed.TenantBudget{0: {Rate: 5, Burst: 5}}
	rig := startMultiRig(t, 3, 2, 0, nil)
	got, ing := runMultiCluster(t, rig, w, specs, budgets, false, nil)

	stats := ing.TenantStats()
	if len(stats) != 2 {
		t.Fatalf("%d tenant stats, want 2: %+v", len(stats), stats)
	}
	var shed0, shed1, adm0, adm1 uint64
	for _, ts := range stats {
		if ts.Tenant == 0 {
			shed0, adm0 = ts.Shed, ts.Admitted
		} else {
			shed1, adm1 = ts.Shed, ts.Admitted
		}
	}
	if shed0 == 0 || adm0 == 0 {
		t.Fatalf("budgeted tenant: admitted %d, shed %d — want both nonzero", adm0, shed0)
	}
	if shed1 != 0 || adm1 == 0 {
		t.Fatalf("unbudgeted tenant: admitted %d, shed %d — want shedding zero", adm1, shed1)
	}
	for _, sp := range specs {
		if sp.Tenant != 1 {
			continue
		}
		if !bytes.Equal(got.bufs[sp.ID], free.bufs[sp.ID]) {
			t.Fatalf("unbudgeted tenant's pattern %d disturbed by the other tenant's budget", sp.ID)
		}
	}
}

// waitGhost blocks until slot n's session has fully ended (reader
// exited, final metrics recorded) so the next AddNode can compact it.
func waitGhost(t *testing.T, ing *Ingress, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		exited := false
		select {
		case <-ing.readerDone[n]:
			exited = true
		default:
		}
		if exited && ing.metricsDone(n) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot %d never became a ghost", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMultiClusterGhostSlots: join/drain churn on a live multi-pattern
// cluster compacts ghost slots instead of growing the node arrays — a
// later joiner reuses the drained slot, the drained session's metrics
// move to the retired accumulator, its stale load report is dropped
// from NodeStats, and the delivered streams stay byte-identical.
func TestMultiClusterGhostSlots(t *testing.T) {
	w := multiClusterWorkload(t, "traffic", 4)
	specs := multiClusterSpecs(t, w, gen.Sequence, 6, 1)
	want := runMultiLocal(t, w, specs, 4, nil)
	rig := startMultiRig(t, 2, 2, 0, nil)

	// Two joiner nodes, each behind its own listener.
	var joinLs []*Listener
	for j := 0; j < 2; j++ {
		node, err := NewNode(NodeConfig{
			Engine: engine.Config{CheckEvery: 250}, Batch: 64, KeyAttr: "key",
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go node.ServeListener(l, rig.noteErr) //nolint:errcheck // closed at test end
		joinLs = append(joinLs, l)
	}
	join := func(ing *Ingress, j int) int {
		c, err := DialTCP(joinLs[j].Addr())
		if err != nil {
			t.Fatal(err)
		}
		n, err := ing.AddNode(c)
		if err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		return n
	}

	got, ing := runMultiCluster(t, rig, w, specs, nil, true, map[int]func(*Ingress){
		1500: func(ing *Ingress) {
			// Satellite check: load reports are cut-stamped. Checked
			// before any membership change — a join resets the stat
			// cadence for a few cuts.
			waitForStats(t, ing, 2)
			var stamped bool
			for _, ss := range ing.NodeStats() {
				for _, s := range ss {
					if s.Cut > 0 {
						stamped = true
					}
				}
			}
			if !stamped {
				t.Fatal("no shard stat carries a cut stamp")
			}
		},
		1800: func(ing *Ingress) {
			if n := join(ing, 0); n != 2 {
				t.Fatalf("first joiner landed in slot %d, want appended slot 2", n)
			}
		},
		2600: func(ing *Ingress) {
			if err := ing.Drain(0); err != nil {
				t.Fatalf("Drain(0): %v", err)
			}
			if ss := ing.NodeStats()[0]; len(ss) != 0 {
				t.Fatalf("drained slot 0 still shows %d shard stats", len(ss))
			}
		},
		4000: func(ing *Ingress) {
			waitGhost(t, ing, 0)
			if n := join(ing, 1); n != 0 {
				t.Fatalf("second joiner landed in slot %d, want reused ghost slot 0", n)
			}
			ing.mu.Lock()
			banked := ing.retired.Events
			ing.mu.Unlock()
			if banked == 0 {
				t.Fatal("reused slot did not bank the drained session's metrics")
			}
		},
		4800: func(ing *Ingress) {
			if err := ing.Drain(1); err != nil {
				t.Fatalf("Drain(1): %v", err)
			}
		},
	})

	requireMultiIdentical(t, "ghost slots", specs, got, want)
	if n := ing.Nodes(); n != 3 {
		t.Fatalf("slot array grew to %d, want 3 (second joiner must reuse the ghost)", n)
	}
	if fos := ing.Failovers(); len(fos) != 0 {
		t.Fatalf("join/drain churn recorded failovers: %+v", fos)
	}
	if ev := ing.Metrics().Events; ev < uint64(len(w.Events)) {
		t.Fatalf("cluster metrics lost the retired sessions: %d events accounted, want >= %d",
			ev, len(w.Events))
	}
}

// TestMultiClusterValidation covers the multi-pattern constructor,
// handshake and runtime-mutation misuse errors.
func TestMultiClusterValidation(t *testing.T) {
	w := multiClusterWorkload(t, "traffic", 4)
	specs := multiClusterSpecs(t, w, gen.Sequence, 4, 1)
	pat := specs[0].Pattern
	onTag := func(shard.Tagged) {}
	conn := func() Conn { c, _ := Pipe(); return c }

	if _, err := NewIngress(pat, []Conn{conn()}, IngressOptions{
		KeyAttr: "key", Schema: w.Schema, OnTagged: onTag, Patterns: specs,
	}); err == nil {
		t.Error("non-nil pattern accepted alongside Options.Patterns")
	}
	if _, err := NewIngress(nil, []Conn{conn()}, IngressOptions{
		KeyAttr: "key", Schema: w.Schema, OnTagged: onTag,
	}); err == nil {
		t.Error("ingress without any pattern accepted")
	}
	if _, err := NewIngress(nil, []Conn{conn()}, IngressOptions{
		KeyAttr: "key", OnTagged: onTag, Patterns: specs,
	}); err == nil {
		t.Error("multi mode without schema accepted")
	}
	zero := append([]multi.Spec(nil), specs...)
	zero[2].ID = 0
	if _, err := NewIngress(nil, []Conn{conn()}, IngressOptions{
		KeyAttr: "key", Schema: w.Schema, OnTagged: onTag, Patterns: zero,
	}); err == nil {
		t.Error("zero pattern id accepted")
	}
	if _, err := NewIngress(pat, []Conn{conn()}, IngressOptions{
		KeyAttr: "key", Schema: w.Schema, OnTagged: onTag,
		Tenants: map[uint32]shed.TenantBudget{0: {Rate: 1}},
	}); err == nil {
		t.Error("tenant budgets without multi mode accepted")
	}

	// A configured single-pattern node must be refused by a multi
	// ingress at the handshake: its fingerprint covers one pattern, the
	// session's covers the set.
	single, err := NewNode(NodeConfig{
		Pattern: pat, Engine: engine.Config{CheckEvery: 250},
		Shards: 2, Batch: 64, KeyAttr: "key", Schema: w.Schema,
	})
	if err != nil {
		t.Fatal(err)
	}
	client, server := Pipe()
	go single.Serve(server) //nolint:errcheck // the rejection is the point
	if _, err := NewIngress(nil, []Conn{client}, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema, OnTagged: onTag, Patterns: specs,
	}); err == nil || !strings.Contains(err.Error(), "different pattern") {
		t.Errorf("configured node accepted by multi ingress: %v", err)
	}

	// Runtime mutation misuse on a live pipe-backed multi cluster.
	bare, err := NewNode(NodeConfig{
		Engine: engine.Config{CheckEvery: 250}, Shards: 2, Batch: 64, KeyAttr: "key",
	})
	if err != nil {
		t.Fatal(err)
	}
	mc, ms := Pipe()
	go bare.Serve(ms) //nolint:errcheck // finished at test end
	ing, err := NewIngress(nil, []Conn{mc}, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema, OnTagged: onTag, Patterns: specs[:2],
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.AddPattern(specs[0]); err == nil {
		t.Error("duplicate AddPattern accepted")
	}
	if err := ing.AddPattern(multi.Spec{ID: 0, Pattern: pat}); err == nil {
		t.Error("AddPattern with zero id accepted")
	}
	if err := ing.RemovePattern(999); err == nil {
		t.Error("unknown RemovePattern accepted")
	}
	if err := ing.RemovePattern(specs[0].ID); err != nil {
		t.Errorf("valid RemovePattern rejected: %v", err)
	}
	if err := ing.RemovePattern(specs[1].ID); err == nil {
		t.Error("removing the last pattern accepted")
	}
	if err := ing.AddPattern(specs[2]); err != nil {
		t.Errorf("valid AddPattern rejected: %v", err)
	}
	if err := finishWithin(t, 30*time.Second, ing); err != nil {
		t.Fatalf("validation cluster finish: %v", err)
	}

	// AddPattern needs a multi-pattern session.
	sn, err := NewNode(NodeConfig{
		Pattern: pat, Engine: engine.Config{CheckEvery: 250},
		Shards: 1, Batch: 64, KeyAttr: "key", Schema: w.Schema,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, ss := Pipe()
	go sn.Serve(ss) //nolint:errcheck // finished at test end
	sing, err := NewIngress(pat, []Conn{sc}, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema, OnTagged: onTag,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sing.AddPattern(specs[2]); err == nil {
		t.Error("AddPattern on a single-pattern cluster accepted")
	}
	if err := sing.RemovePattern(specs[2].ID); err == nil {
		t.Error("RemovePattern on a single-pattern cluster accepted")
	}
	if err := finishWithin(t, 30*time.Second, sing); err != nil {
		t.Fatalf("single-pattern cluster finish: %v", err)
	}
}
