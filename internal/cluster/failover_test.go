package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"acep/internal/chaos"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/match"
	recovery "acep/internal/recover"
	"acep/internal/wire"
)

// failoverWorkload spreads enough keys that every node of a 3×2 cluster
// owns live traffic — a kill must actually lose in-flight state.
func failoverWorkload(t *testing.T, dataset string) *gen.Workload {
	t.Helper()
	switch dataset {
	case "traffic":
		return gen.Traffic(gen.TrafficConfig{
			Types: 6, Events: 5000, Seed: 17, Shifts: 1, MeanGap: 3, Keys: 12,
		})
	case "stocks":
		return gen.Stocks(gen.StocksConfig{
			Types: 6, Events: 5000, Seed: 23, MeanGap: 3, DriftEvery: 300, Keys: 16,
		})
	default:
		t.Fatalf("unknown dataset %s", dataset)
		return nil
	}
}

// recvKiller crashes the node side: after budget received frames the
// connection slams shut — the remote-process-died failure mode.
type recvKiller struct {
	Conn
	budget int
}

func (k *recvKiller) Recv() (wire.Frame, error) {
	if k.budget <= 0 {
		k.Conn.Close()
		return nil, fmt.Errorf("recvkiller: injected node crash")
	}
	k.budget--
	return k.Conn.Recv()
}

// blackholeConn goes silent without an error after budget sends: frames
// are swallowed, nothing ever errors — the netsplit failure mode only
// the heartbeat detector can catch.
type blackholeConn struct {
	Conn
	budget int
}

func (b *blackholeConn) Send(f wire.Frame) error {
	if b.budget <= 0 {
		return nil
	}
	b.budget--
	return b.Conn.Send(f)
}

// failoverRig wires a 3-node loopback-TCP cluster (2 shards each) with
// bare TCP standby nodes behind a dialing Standby factory.
type failoverRig struct {
	conns      []Conn
	standbyLs  []*Listener
	dialed     int
	mu         sync.Mutex
	serveErrs  []error
	wrapStand  func(k int, c Conn) Conn
	recOptions RecoveryConfig
}

func (r *failoverRig) noteErr(err error) {
	r.mu.Lock()
	r.serveErrs = append(r.serveErrs, err)
	r.mu.Unlock()
}

// startFailoverRig launches the worker and standby processes. wrapConn
// (optional) injects failures into the ingress-side worker connections;
// wrapStand into the dialed standby connections, by dial order.
func startFailoverRig(t *testing.T, w *gen.Workload, kind gen.Kind, standbys int,
	wrapConn func(i int, c Conn) Conn, wrapStand func(k int, c Conn) Conn) (*failoverRig, *gen.Workload) {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rig := &failoverRig{wrapStand: wrapStand}

	serve := func(node *Node, l *Listener) {
		go node.ServeListener(l, rig.noteErr) //nolint:errcheck // closed at test end
	}
	for i := 0; i < 3; i++ {
		node, err := NewNode(NodeConfig{
			Pattern: pat, Engine: engine.Config{CheckEvery: 250},
			Shards: 2, Batch: 64, KeyAttr: "key", Schema: w.Schema,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		serve(node, l)
		c, err := DialTCP(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if wrapConn != nil {
			c = wrapConn(i, c)
		}
		rig.conns = append(rig.conns, c)
	}
	// Standbys are bare nodes: no pattern, no schema — they adopt both
	// from the Assign handshake (pattern shipping over real TCP).
	for k := 0; k < standbys; k++ {
		node, err := NewNode(NodeConfig{
			Engine: engine.Config{CheckEvery: 250}, Batch: 64, KeyAttr: "key",
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		serve(node, l)
		rig.standbyLs = append(rig.standbyLs, l)
	}
	rig.recOptions = RecoveryConfig{
		Standby: func() (Conn, error) {
			if rig.dialed >= len(rig.standbyLs) {
				return nil, fmt.Errorf("rig: standbys exhausted")
			}
			c, err := DialTCP(rig.standbyLs[rig.dialed].Addr())
			if err != nil {
				return nil, err
			}
			if rig.wrapStand != nil {
				c = rig.wrapStand(rig.dialed, c)
			}
			rig.dialed++
			return c, nil
		},
	}
	return rig, w
}

// runRecovered streams the workload through the rig's cluster and
// requires a clean finish (every failure must have been recovered).
func runRecovered(t *testing.T, rig *failoverRig, w *gen.Workload, kind gen.Kind) (*tagRecorder, *Ingress) {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	ing, err := NewIngress(pat, rig.conns, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema, OnTagged: rec.rec,
		Recovery: &rig.recOptions,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		ing.Process(&w.Events[i])
	}
	done := make(chan error, 1)
	go func() { done <- ing.Finish() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recovered cluster finished with error: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("recovered cluster Finish hung")
	}
	return rec, ing
}

func requireIdentical(t *testing.T, label string, got, want *tagRecorder) {
	t.Helper()
	if want.n == 0 {
		t.Fatalf("%s: reference produced no matches; test is vacuous", label)
	}
	if !bytes.Equal(got.buf, want.buf) {
		i := 0
		for i < len(got.keys) && i < len(want.keys) && got.keys[i] == want.keys[i] {
			i++
		}
		t.Fatalf("%s: recovered stream diverges from sharded reference (%d vs %d matches, first divergence at %d)",
			label, got.n, want.n, i)
	}
}

// TestFailoverByteIdentical is the PR's acceptance criterion: killing
// one node mid-stream (ingress-side link death mid-window, while its
// shards hold live partial matches) on a 3-node loopback-TCP cluster
// must deliver a match stream byte-identical to the single-process
// sharded engine at equal total shards — across sequence, negation,
// Kleene and composite patterns on both workload regimes.
func TestFailoverByteIdentical(t *testing.T) {
	for _, dataset := range []string{"traffic", "stocks"} {
		w := failoverWorkload(t, dataset)
		for _, kind := range []gen.Kind{gen.Sequence, gen.Negation, gen.Kleene, gen.Composite} {
			want := runSharded(t, w, kind, 6)
			// Budget 30 ≈ the assign frame plus 29 cuts of 64 events:
			// the link dies ~37% into the stream.
			rig, _ := startFailoverRig(t, w, kind, 1, func(i int, c Conn) Conn {
				if i == 1 {
					return &chaos.Flaky{C: c, Budget: 30}
				}
				return c
			}, nil)
			got, ing := runRecovered(t, rig, w, kind)
			requireIdentical(t, fmt.Sprintf("%s/%v", dataset, kind), got, want)
			fos := ing.Failovers()
			if len(fos) != 1 || fos[0].Node != 1 {
				t.Fatalf("%s/%v: failovers = %+v, want exactly one for node 1", dataset, kind, fos)
			}
			if fos[0].ReplayEvents == 0 || fos[0].ReplayCuts == 0 {
				t.Fatalf("%s/%v: failover replayed nothing: %+v", dataset, kind, fos[0])
			}
			if fos[0].RecoveredAt.IsZero() {
				t.Fatalf("%s/%v: successor never reported RecoveryDone", dataset, kind)
			}
		}
	}
}

// TestFailoverNodeSideCrash: the node process dies (its side of the
// connection slams shut mid-stream); the reader-side error triggers the
// failover and the stream stays exact.
func TestFailoverNodeSideCrash(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 6)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rig, _ := startFailoverRig(t, w, gen.Sequence, 1, nil, nil)
	// Replace node 2's connection with a pipe-backed node whose receive
	// path dies after 25 frames: a node-side crash, not a link failure.
	rig.conns[2].Close()
	node, err := NewNode(NodeConfig{
		Pattern: pat, Engine: engine.Config{CheckEvery: 250},
		Shards: 2, Batch: 64, KeyAttr: "key", Schema: w.Schema,
	})
	if err != nil {
		t.Fatal(err)
	}
	client, server := Pipe()
	go node.Serve(&recvKiller{Conn: server, budget: 25}) //nolint:errcheck // the crash is the point
	rig.conns[2] = client

	got, ing := runRecovered(t, rig, w, gen.Sequence)
	requireIdentical(t, "node-side crash", got, want)
	if fos := ing.Failovers(); len(fos) != 1 || fos[0].Node != 2 {
		t.Fatalf("failovers = %+v, want one for node 2", fos)
	}
}

// TestFailoverDuringReplay: the first standby dies while the journal is
// being replayed into it; the ingress discards it, re-purges the slot
// and adopts the second standby. The delivered stream stays exact.
func TestFailoverDuringReplay(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 6)
	rig, _ := startFailoverRig(t, w, gen.Sequence, 2,
		func(i int, c Conn) Conn {
			if i == 0 {
				return &chaos.Flaky{C: c, Budget: 40}
			}
			return c
		},
		func(k int, c Conn) Conn {
			if k == 0 {
				// Survives the adoption handshake, dies on the first
				// replay cut.
				return &chaos.Flaky{C: c, Budget: 1}
			}
			return c
		})
	got, ing := runRecovered(t, rig, w, gen.Sequence)
	requireIdentical(t, "standby died during replay", got, want)
	if rig.dialed != 2 {
		t.Fatalf("dialed %d standbys, want 2 (first died during replay)", rig.dialed)
	}
	if fos := ing.Failovers(); len(fos) != 1 || fos[0].Node != 0 {
		t.Fatalf("failovers = %+v, want one completed failover for node 0", fos)
	}
}

// TestFailoverDoubleFailure: two different nodes die at different points
// of the stream; both blocks fail over (to a fresh standby each) and the
// stream stays exact.
func TestFailoverDoubleFailure(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	for _, kind := range []gen.Kind{gen.Sequence, gen.Kleene} {
		want := runSharded(t, w, kind, 6)
		rig, _ := startFailoverRig(t, w, kind, 2, func(i int, c Conn) Conn {
			switch i {
			case 0:
				return &chaos.Flaky{C: c, Budget: 45}
			case 2:
				return &chaos.Flaky{C: c, Budget: 20}
			}
			return c
		}, nil)
		got, ing := runRecovered(t, rig, w, kind)
		requireIdentical(t, fmt.Sprintf("double failure/%v", kind), got, want)
		fos := ing.Failovers()
		if len(fos) != 2 {
			t.Fatalf("%v: %d failovers, want 2: %+v", kind, len(fos), fos)
		}
		if fos[0].Node != 2 || fos[1].Node != 0 {
			t.Fatalf("%v: failover order %+v, want node 2 then node 0", kind, fos)
		}
	}
}

// TestFailoverHeartbeatTimeout: a node that goes silent without any
// transport error (frames swallowed — a netsplit) is declared dead by
// the heartbeat detector and failed over; the stream stays exact.
func TestFailoverHeartbeatTimeout(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Sequence, 6)
	rig, _ := startFailoverRig(t, w, gen.Sequence, 1, func(i int, c Conn) Conn {
		if i == 1 {
			return &blackholeConn{Conn: c, budget: 25}
		}
		return c
	}, nil)
	rig.recOptions.HeartbeatTimeout = 150 * time.Millisecond
	got, ing := runRecovered(t, rig, w, gen.Sequence)
	requireIdentical(t, "heartbeat timeout", got, want)
	fos := ing.Failovers()
	if len(fos) != 1 || fos[0].Node != 1 {
		t.Fatalf("failovers = %+v, want one for node 1", fos)
	}
	if !strings.Contains(fos[0].Cause, "heartbeat") {
		t.Fatalf("cause %q does not name the heartbeat detector", fos[0].Cause)
	}
}

// TestFailoverStandbyExhausted: with no standby remaining the failure
// degrades to the exactness-over-availability behavior — Finish surfaces
// the error instead of hanging or silently under-delivering.
func TestFailoverStandbyExhausted(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	rig, _ := startFailoverRig(t, w, gen.Sequence, 0, func(i int, c Conn) Conn {
		if i == 1 {
			return &chaos.Flaky{C: c, Budget: 30}
		}
		return c
	}, nil)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := NewIngress(pat, rig.conns, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema,
		OnMatch:  func(*match.Match) {},
		Recovery: &rig.recOptions,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		ing.Process(&w.Events[i])
	}
	if err := finishWithin(t, 60*time.Second, ing); err == nil {
		t.Fatal("Finish reported success with an unrecoverable dead node")
	} else if !strings.Contains(err.Error(), "standby") {
		t.Fatalf("error %v does not explain the exhausted standbys", err)
	}
}

// TestRecoveryHealthyRun: with recovery armed but no failure, the
// journal and heartbeats must not perturb the stream — byte-identical to
// the sharded reference, zero failovers — and the journal must have
// trimmed behind the released watermark rather than retaining the whole
// stream.
func TestRecoveryHealthyRun(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	want := runSharded(t, w, gen.Negation, 6)
	rig, _ := startFailoverRig(t, w, gen.Negation, 1, nil, nil)
	got, ing := runRecovered(t, rig, w, gen.Negation)
	requireIdentical(t, "healthy run with recovery armed", got, want)
	if fos := ing.Failovers(); len(fos) != 0 {
		t.Fatalf("healthy run recorded failovers: %+v", fos)
	}
	if rig.dialed != 0 {
		t.Fatal("healthy run dialed a standby")
	}
}

// TestLocalClusterRecover: the in-process StartLocal path spawns bare
// standbys on demand; heartbeat detection is wired through LocalConfig.
// (No failure is injectable through StartLocal's own pipes, so this pins
// the healthy path plus configuration plumbing.)
func TestLocalClusterRecover(t *testing.T) {
	w := failoverWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := runSharded(t, w, gen.Sequence, 4)
	rec := &tagRecorder{}
	var fos []recovery.Failover
	ing, err := StartLocal(pat, engine.Config{CheckEvery: 250}, LocalConfig{
		Nodes: 2, ShardsPerNode: 2, Batch: 64,
		KeyAttr: "key", Schema: w.Schema, OnTagged: rec.rec,
		Recover: true, Standbys: 1,
		OnFailover: func(f recovery.Failover) { fos = append(fos, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		ing.Process(&w.Events[i])
	}
	if err := ing.Finish(); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "local recover-enabled cluster", rec, want)
	if len(fos) != 0 {
		t.Fatalf("healthy local run failed over: %+v", fos)
	}
}
