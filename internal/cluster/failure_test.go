package cluster

import (
	"net"
	"strings"
	"testing"
	"time"

	"acep/internal/chaos"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/wire"
)

// Failure-injecting transports live in internal/chaos now
// (chaos.Flaky, chaos.Script) — shared between these tests, the HA
// tests, acep-bench chaos-* and acep-run -chaos.

// finishWithin guards the deadlock-freedom claims: Finish must return
// even with dead links in the cluster.
func finishWithin(t *testing.T, d time.Duration, ing *Ingress) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- ing.Finish() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatal("Finish deadlocked on a dead node link")
		return nil
	}
}

// brokenCluster builds a 3-node pipe cluster whose middle link dies
// after the given number of successful ingress sends.
func brokenCluster(t *testing.T, budget int) (*Ingress, *gen.Workload) {
	t.Helper()
	w := keyedWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]Conn, 3)
	for i := range conns {
		node, err := NewNode(NodeConfig{
			Pattern: pat, Engine: engine.Config{CheckEvery: 250},
			Shards: 2, Batch: 128, KeyAttr: "key", Schema: w.Schema,
		})
		if err != nil {
			t.Fatal(err)
		}
		client, server := Pipe()
		go node.Serve(server) //nolint:errcheck // the severed node's error is expected
		conns[i] = client
	}
	conns[1] = &chaos.Flaky{C: conns[1], Budget: budget}
	ing, err := NewIngress(pat, conns, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema,
		OnMatch: func(*match.Match) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ing, w
}

// TestIngressSurvivesDeadNodeLink: when one node's link dies mid-stream,
// the ingress records the error, keeps draining the surviving nodes, and
// Finish returns the failure instead of hanging. (Exactness is
// necessarily lost with a dead node — that is why the error must
// surface.)
func TestIngressSurvivesDeadNodeLink(t *testing.T) {
	// Budget 2 covers the assign frame and one cut; the link dies while
	// the stream is still flowing.
	ing, w := brokenCluster(t, 2)
	for i := range w.Events {
		ing.Process(&w.Events[i])
	}
	err := finishWithin(t, 30*time.Second, ing)
	if err == nil {
		t.Fatal("Finish reported success despite a dead node link")
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Fatalf("error does not identify the dead link: %v", err)
	}
	if ing.Err() == nil {
		t.Fatal("Err() lost the recorded failure")
	}
	// The surviving nodes' metrics still arrive: the merged view has seen
	// events even though node 1's share is lost. (With only 4 keys over 6
	// global shards an individual survivor may legitimately be idle, so
	// the assertion is on the merged view.)
	if ing.Metrics().EventsArrived == 0 {
		t.Fatal("no surviving node reported metrics")
	}
}

// TestIngressSurvivesNodeCrash: a node whose process dies (connection
// closes abruptly, no metrics ever sent) must not wedge the cluster.
func TestIngressSurvivesNodeCrash(t *testing.T) {
	w := keyedWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]Conn, 2)
	for i := range conns {
		node, err := NewNode(NodeConfig{
			Pattern: pat, Engine: engine.Config{CheckEvery: 250},
			Shards: 1, Batch: 128, KeyAttr: "key", Schema: w.Schema,
		})
		if err != nil {
			t.Fatal(err)
		}
		client, server := Pipe()
		if i == 1 {
			// Crash the node right after the handshake: greet, take the
			// assignment, then slam the connection shut.
			sig := signature(pat, w.Schema)
			go func() {
				server.Send(wire.Hello{Version: wire.Version, Shards: 1, PatternSig: sig}) //nolint:errcheck
				server.Recv()                                                              //nolint:errcheck // assign
				server.Close()
			}()
		} else {
			go node.Serve(server) //nolint:errcheck
		}
		conns[i] = client
	}
	ing, err := NewIngress(pat, conns, IngressOptions{
		Batch: 64, KeyAttr: "key", Schema: w.Schema,
		OnMatch: func(*match.Match) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		ing.Process(&w.Events[i])
	}
	if err := finishWithin(t, 30*time.Second, ing); err == nil {
		t.Fatal("Finish reported success despite a crashed node")
	}
}

// TestHandshakeRejections: version skew, pattern mismatch and protocol
// violations are refused before any event crosses the wire.
func TestHandshakeRejections(t *testing.T) {
	w := keyedWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	sig := signature(pat, w.Schema)
	opts := IngressOptions{KeyAttr: "key", Schema: w.Schema, OnMatch: func(*match.Match) {}}
	cases := []struct {
		name  string
		hello wire.Frame
	}{
		{"version skew", wire.Hello{Version: wire.Version + 1, Shards: 1, PatternSig: sig}},
		{"pattern mismatch", wire.Hello{Version: wire.Version, Shards: 1, PatternSig: sig ^ 1}},
		{"zero shards", wire.Hello{Version: wire.Version, Shards: 0, PatternSig: sig}},
		{"wrong frame", wire.Batch{UpTo: 1}},
	}
	for _, c := range cases {
		if _, err := NewIngress(pat, []Conn{&chaos.Script{Frames: []wire.Frame{c.hello}}}, opts); err == nil {
			t.Errorf("%s: handshake accepted", c.name)
		}
	}

	// Node side: a peer that answers hello with something other than an
	// assignment is refused.
	node, err := NewNode(NodeConfig{
		Pattern: pat, Engine: engine.Config{}, Shards: 1, KeyAttr: "key", Schema: w.Schema,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Serve(&chaos.Script{Frames: []wire.Frame{wire.Watermark{UpTo: 1}}}); err == nil {
		t.Error("node accepted a non-assign handshake reply")
	}
	// An assignment outside the global shard space is refused.
	if err := node.Serve(&chaos.Script{Frames: []wire.Frame{wire.Assign{Base: 5, Total: 3}}}); err == nil {
		t.Error("node accepted an out-of-range assignment")
	}
}

// TestNodeRejectsGarbageBytes: raw junk on the TCP listener must produce
// a decode error, not a hang or a crash.
func TestNodeRejectsGarbageBytes(t *testing.T) {
	w := keyedWorkload(t, "traffic")
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(NodeConfig{
		Pattern: pat, Engine: engine.Config{}, Shards: 1, KeyAttr: "key", Schema: w.Schema,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveErr := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		serveErr <- node.Serve(c)
	}()
	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe, 0xef}) //nolint:errcheck
	raw.Close()
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("node served a garbage byte stream without error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("node hung on garbage bytes")
	}
}
