package cluster

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	recovery "acep/internal/recover"
	"acep/internal/shard"
	"acep/internal/wire"
)

// maxShardsPerNode bounds the shard count a node may claim in its
// hello; far above any sane deployment, low enough that the global
// shard->node map stays small.
const maxShardsPerNode = 1 << 12

// IngressOptions tunes the coordinator side of a cluster.
type IngressOptions struct {
	// Batch is the number of ingested events per uniform cut (default
	// 256): at every cut, every node — including nodes whose partitions
	// received nothing — gets a frame carrying the global watermark, so
	// completion progress advances cluster-wide even through idle
	// partitions.
	Batch int
	// Key extracts the partition key; Key or KeyAttr+Schema is required
	// and must match the nodes' configuration.
	Key     shard.KeyFunc
	KeyAttr string
	Schema  *event.Schema
	// OnMatch receives every match, on the merge-collector goroutine, in
	// the deterministic global order (identical to the single-process
	// sharded engine's, see the package comment).
	OnMatch func(*match.Match)
	// OnTagged, when set instead of OnMatch, receives matches with their
	// merge tags (Src is the node index).
	OnTagged func(shard.Tagged)
	// Recovery, when non-nil, makes the ingress fault-tolerant: sealed
	// cuts are journaled and a dead node's shard block fails over to a
	// standby with watermark replay and exact dedup (see RecoveryConfig
	// and DESIGN.md "Fault tolerance"). When nil, a node failure surfaces
	// as an error from Finish (exactness over availability).
	Recovery *RecoveryConfig
}

// Ingress is the cluster coordinator: it partitions one input stream
// across worker nodes, drives uniform watermark cuts, and merges the
// node match streams into one deterministic, ordered output. Process and
// Finish must be called from a single goroutine; the match callback
// fires on the collector goroutine. Construct with NewIngress.
type Ingress struct {
	conns []Conn
	key   shard.KeyFunc
	batch int
	total int   // global shard count (sum of node shard counts)
	node  []int // global shard index -> node index

	bufs      [][]event.Event
	spare     [][]event.Event // recycled cut buffers (serializing transports only)
	recycle   []bool          // per node: cut buffers may be reused (nil with recovery)
	pending   int
	lastSeq   uint64
	dead      []bool
	abandoned []bool // degraded with no successor: stop journaling its events

	// Cut pipelining: each sealed cut's frames are encoded and sent by
	// per-node goroutines while the coordinator returns to accumulating
	// the next cut. sendWG is the in-flight cut; sendErr[n] is node n's
	// send failure, acted on at the next barrier (waitSends). Per-node
	// frame order is preserved because a new cut's sends only launch
	// after the barrier, and all failover machinery (which closes,
	// replaces and replays connections) runs strictly behind it.
	sendWG  sync.WaitGroup
	sendErr []error

	col     *shard.Collector
	readers sync.WaitGroup

	nodeShards  []int
	base        []int // node index -> first global shard of its block
	nodeMetrics []engine.Metrics
	gotMetrics  []bool
	finSent     []bool

	// Recovery state (nil/empty without IngressOptions.Recovery). The
	// pattern, schema and fingerprint are kept for the Reassign
	// handshake; released is the collector's delivered watermark.
	pat        *pattern.Pattern
	schema     *event.Schema
	sig        uint64
	rec        *RecoveryConfig
	journal    *recovery.Journal
	det        *recovery.Detector
	released   atomic.Uint64
	readerDone []chan struct{}
	exitCh     chan struct{} // coalesced reader-exit wakeup for the drain loop

	mu        sync.Mutex
	err       error
	finished  bool
	gen       []int // per-slot reader generation (guards stale suspects)
	suspects  []suspectRec
	failovers []recovery.Failover
}

// NewIngress performs the handshake over the given node connections
// (node i's shard block starts after node i-1's) and starts the merge
// collector. The pattern and schema must match every node's — the
// handshake compares fingerprints — and the pattern must be
// key-partitionable in KeyAttr mode, exactly like shard.New.
func NewIngress(pat *pattern.Pattern, conns []Conn, opts IngressOptions) (*Ingress, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("cluster: ingress needs at least one node connection")
	}
	// Every error return below must release the connections: a node left
	// attached to a half-built ingress would block in its handshake (or
	// hold its listener's session slot) forever.
	built := false
	defer func() {
		if !built {
			for _, c := range conns {
				c.Close()
			}
		}
	}()
	if opts.OnMatch != nil && opts.OnTagged != nil {
		return nil, fmt.Errorf("cluster: set at most one of OnMatch and OnTagged")
	}
	if pat == nil {
		return nil, fmt.Errorf("cluster: ingress needs a pattern")
	}
	if opts.Batch <= 0 {
		opts.Batch = 256
	}
	key := opts.Key
	switch {
	case key != nil && opts.KeyAttr != "":
		return nil, fmt.Errorf("cluster: set exactly one of Key and KeyAttr")
	case key == nil && opts.KeyAttr == "":
		return nil, fmt.Errorf("cluster: a partition key is required: set Key or KeyAttr")
	case opts.KeyAttr != "":
		if opts.Schema == nil {
			return nil, fmt.Errorf("cluster: KeyAttr needs Schema to resolve the attribute")
		}
		if err := shard.Partitionable(pat, opts.Schema, opts.KeyAttr); err != nil {
			return nil, err
		}
		k, err := shard.ByAttrName(opts.Schema, opts.KeyAttr)
		if err != nil {
			return nil, err
		}
		key = k
	}

	sig := signature(pat, opts.Schema)
	in := &Ingress{
		conns:       conns,
		key:         key,
		batch:       opts.Batch,
		bufs:        make([][]event.Event, len(conns)),
		sendErr:     make([]error, len(conns)),
		dead:        make([]bool, len(conns)),
		abandoned:   make([]bool, len(conns)),
		nodeShards:  make([]int, len(conns)),
		nodeMetrics: make([]engine.Metrics, len(conns)),
		gotMetrics:  make([]bool, len(conns)),
		finSent:     make([]bool, len(conns)),
		readerDone:  make([]chan struct{}, len(conns)),
		exitCh:      make(chan struct{}, 1),
		gen:         make([]int, len(conns)),
		pat:         pat,
		schema:      opts.Schema,
		sig:         sig,
	}
	// Collect every node's greeting, then assign contiguous blocks of the
	// global shard space in connection order.
	for i, c := range conns {
		f, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d hello: %w", i, err)
		}
		h, ok := f.(wire.Hello)
		if !ok {
			return nil, fmt.Errorf("cluster: node %d sent %s, want hello", i, wire.KindOf(f))
		}
		if h.Version != wire.Version {
			return nil, fmt.Errorf("cluster: node %d speaks protocol v%d, ingress v%d", i, h.Version, wire.Version)
		}
		// Fingerprint 0 is a bare node: it has no pattern of its own and
		// adopts the one shipped in the Assign reply. Configured nodes
		// cross-validate.
		if h.PatternSig != 0 && h.PatternSig != sig {
			return nil, fmt.Errorf("cluster: node %d serves a different pattern or schema (fingerprint %x, want %x)", i, h.PatternSig, sig)
		}
		if h.Shards < 1 {
			return nil, fmt.Errorf("cluster: node %d hosts no shards", i)
		}
		// Cap the claimed shard count before it sizes the global
		// shard->node map: a buggy or hostile hello must not be able to
		// force a multi-gigabyte allocation (the same promise the wire
		// codec makes for frame-internal counts).
		if h.Shards > maxShardsPerNode {
			return nil, fmt.Errorf("cluster: node %d claims %d shards, cap is %d", i, h.Shards, maxShardsPerNode)
		}
		in.nodeShards[i] = int(h.Shards)
		in.total += int(h.Shards)
	}
	base := 0
	for i, c := range conns {
		if err := c.Send(wire.Assign{
			Base: uint32(base), Total: uint32(in.total),
			Pattern: pat, Schema: opts.Schema,
		}); err != nil {
			return nil, fmt.Errorf("cluster: assigning node %d: %w", i, err)
		}
		in.base = append(in.base, base)
		for s := 0; s < in.nodeShards[i]; s++ {
			in.node = append(in.node, i)
		}
		base += in.nodeShards[i]
	}

	deliver := func(t shard.Tagged) {
		if opts.OnMatch != nil {
			opts.OnMatch(t.M)
		}
	}
	if opts.OnTagged != nil {
		deliver = opts.OnTagged
	}
	var progress func(uint64)
	if opts.Recovery != nil {
		rc := *opts.Recovery
		if rc.Window <= 0 {
			rc.Window = pat.Window
		}
		in.rec = &rc
		key, total := in.key, in.total
		journal, err := recovery.NewJournal(recovery.JournalConfig{
			Window: rc.Window, Shards: in.total,
			Route:        func(ev *event.Event) int { return shard.GlobalIndex(key(ev), total) },
			SlackWindows: rc.SlackWindows,
			MaxBytes:     rc.MaxJournalBytes,
		})
		if err != nil {
			return nil, err
		}
		in.journal = journal
		in.det = recovery.NewDetector(len(conns), rc.HeartbeatTimeout)
		progress = func(w uint64) { in.released.Store(w) }
	}
	// Cut-buffer recycling: on a serializing transport the Batch frame
	// is fully encoded onto the wire by the time Send returns, so a
	// cut's event buffer is reusable once its send has been barriered
	// (two cuts later, behind waitSends). The in-process pipe hands the
	// slice to the node by reference — stable for the run, never reused
	// — and the recovery journal retains cut history, so a pipe conn or
	// a configured Recovery disables recycling for the session.
	in.spare = make([][]event.Event, len(conns))
	if in.rec == nil {
		in.recycle = make([]bool, len(conns))
		for i, c := range conns {
			_, serializing := c.(interface{ SetDecodeArena(*match.Arena) })
			in.recycle[i] = serializing
		}
	}
	in.col = shard.NewCollector(len(conns), deliver, progress)
	for i, c := range conns {
		done := make(chan struct{})
		in.readerDone[i] = done
		in.readers.Add(1)
		go in.read(i, c, 0, done)
	}
	built = true
	return in, nil
}

// read is node slot i's reader goroutine (generation gen): it buffers
// tagged matches and posts them to the merge collector together with
// each completion watermark, stores the node's final metrics, and on
// failure either queues a suspect for failover (recovery configured,
// posting nothing — the slot will be re-registered) or posts a terminal
// watermark so the merge never deadlocks on a dead node.
func (in *Ingress) read(i int, c Conn, gen int, done chan struct{}) {
	defer func() { // runs last: done is closed by the time the drain wakes
		select {
		case in.exitCh <- struct{}{}:
		default:
		}
	}()
	defer close(done)
	defer in.readers.Done()
	var pend []shard.Tagged
	var idx uint64
	for {
		f, err := c.Recv()
		if err != nil {
			clean := err == io.EOF && in.gotMetrics[i]
			if in.rec != nil && !clean {
				in.suspect(i, gen, fmt.Errorf("cluster: node %d stream: %w", i, err))
				return
			}
			if !clean {
				in.recordErr(fmt.Errorf("cluster: node %d stream: %w", i, err))
			}
			in.col.Post(i, maxSeq, pend)
			return
		}
		in.det.Heard(i)
		switch v := f.(type) {
		case wire.TaggedMatch:
			pend = append(pend, shard.Tagged{M: v.M, Seq: v.Seq, Src: i, Idx: idx})
			idx++
		case wire.TaggedMatchRaw:
			// Owned-emit match over a reference transport (the pipe): the
			// body is the worker's pre-encoded outbox slice; decode it
			// here. A serializing transport never delivers this frame —
			// its codec reads the identical bytes back as a TaggedMatch.
			m, derr := wire.DecodeMatchBody(v.Body)
			if derr != nil {
				err := fmt.Errorf("cluster: node %d match body: %w", i, derr)
				if in.rec != nil {
					in.suspect(i, gen, err)
					return
				}
				in.recordErr(err)
				in.col.Post(i, maxSeq, pend)
				return
			}
			pend = append(pend, shard.Tagged{M: m, Seq: v.Seq, Src: i, Idx: idx})
			idx++
		case wire.Watermark:
			in.col.Post(i, v.UpTo, pend)
			pend = nil
		case wire.Heartbeat:
			// Liveness only (recorded above).
		case wire.RecoveryDone:
			in.recoveredNode(i)
		case wire.Metrics:
			in.nodeMetrics[i] = v.M
			in.gotMetrics[i] = true
		default:
			err := fmt.Errorf("cluster: node %d sent unexpected %s frame", i, wire.KindOf(f))
			if in.rec != nil {
				in.suspect(i, gen, err)
				return
			}
			in.recordErr(err)
			in.col.Post(i, maxSeq, pend)
			return
		}
	}
}

// kill records a node's transport failure and closes its connection
// immediately: the node then observes end-of-input and drains instead of
// waiting for cuts that will never come, and the node's reader
// goroutine observes the close and posts its terminal watermark — either
// way the cluster finishes instead of deadlocking on a dead link.
func (in *Ingress) kill(n int, err error) {
	in.recordErr(err)
	in.dead[n] = true
	in.conns[n].Close()
}

func (in *Ingress) recordErr(err error) {
	in.mu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.mu.Unlock()
}

// Err reports the first transport or protocol error observed (nil while
// healthy). Finish returns the same error.
func (in *Ingress) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.err
}

// Process routes one event to its node. Events must arrive in
// non-decreasing timestamp order with unique, increasing Seq numbers
// (the same contract as the engines underneath).
func (in *Ingress) Process(ev *event.Event) {
	if in.finished {
		panic("cluster: Process after Finish")
	}
	g := shard.GlobalIndex(in.key(ev), in.total)
	n := in.node[g]
	in.bufs[n] = append(in.bufs[n], *ev)
	in.lastSeq = ev.Seq
	in.pending++
	if in.pending >= in.batch {
		in.cutAll()
	}
}

// cutAll seals the current cut: the previous cut's pipelined sends are
// barriered first and their failures — together with pending reader
// suspects — handled (so a failover's replay ends at the previous cut
// and this one rides the normal send), the cut is journaled when
// recovery is on, and then every live node's frame — carrying its
// accumulated events (possibly none) and the global watermark — is
// encoded and sent by a per-node goroutine while the coordinator goes
// back to ingesting. A send failure surfaces at the next barrier and
// fails over there; the successor receives the journaled cuts through
// replay.
func (in *Ingress) cutAll() {
	in.waitSends()
	in.checkSuspects()
	if in.journal != nil {
		for n := range in.bufs {
			if in.abandoned[n] {
				in.bufs[n] = nil // the block is lost for good; don't retain its events
			}
		}
		in.journal.Advance(in.released.Load())
		in.journal.Append(in.bufs, in.lastSeq)
	}
	upTo := in.lastSeq
	for n, c := range in.conns {
		evs := in.bufs[n]
		in.bufs[n] = nil
		if in.recycle != nil && in.recycle[n] {
			// Hand the next cut the buffer recycled two cuts ago (its
			// send completed at the barrier above) and queue this one.
			in.bufs[n] = in.spare[n][:0]
			in.spare[n] = evs
		}
		if in.dead[n] {
			continue
		}
		in.det.Sent(n)
		in.sendWG.Add(1)
		go func(n int, c Conn, evs []event.Event) {
			defer in.sendWG.Done()
			if err := c.Send(wire.Batch{UpTo: upTo, Events: evs}); err != nil {
				in.sendErr[n] = err
			}
		}(n, c, evs)
	}
	in.pending = 0
}

// waitSends is the pipeline barrier: it blocks until the in-flight cut's
// sends complete and routes any send failure into the failover (or
// record-and-drain) path. All connection mutation — close, replace,
// replay — happens behind this barrier, which is what keeps per-node
// frame order and the one-writer-per-connection discipline intact.
func (in *Ingress) waitSends() {
	in.sendWG.Wait()
	for n, err := range in.sendErr {
		if err == nil {
			continue
		}
		in.sendErr[n] = nil
		if !in.dead[n] {
			in.fail(n, fmt.Errorf("cluster: sending cut to node %d: %w", n, err))
		}
	}
}

// finishNodes delivers the Finish frame to every live node that has not
// received one, failing over (and retrying the successor) on send
// errors. Terminates because every failed attempt either consumes a
// standby or degrades the slot.
func (in *Ingress) finishNodes() {
	for again := true; again; {
		again = false
		for n, c := range in.conns {
			if in.dead[n] || in.finSent[n] {
				continue
			}
			if err := c.Send(wire.Finish{}); err != nil {
				in.fail(n, fmt.Errorf("cluster: finishing node %d: %w", n, err))
				again = true
				continue
			}
			in.det.Sent(n)
			in.finSent[n] = true
		}
	}
}

// Finish flushes the final partial cut, tells every node to finish,
// waits until every node's matches have been merged and delivered, and
// closes the connections. With recovery configured, nodes that die
// during the drain still fail over: their successors replay, finish and
// deliver the missing tail before the merge closes. It returns the
// first unrecovered error observed anywhere in the cluster session (nil
// for a clean or fully recovered run). Idempotent.
func (in *Ingress) Finish() error {
	if in.finished {
		return in.Err()
	}
	in.finished = true
	in.cutAll()
	// Barrier the final cut's pipelined sends before the Finish frames:
	// per-node ordering requires the last Batch to hit the wire first,
	// and a send failure must fail over before the drain begins.
	in.waitSends()
	in.finishNodes()
	if in.rec == nil {
		in.readers.Wait()
	} else {
		in.drainRecovered()
	}
	in.col.Close()
	for _, c := range in.conns {
		c.Close()
	}
	return in.Err()
}

// Nodes reports the node count.
func (in *Ingress) Nodes() int { return len(in.conns) }

// TotalShards reports the global shard count across all nodes.
func (in *Ingress) TotalShards() int { return in.total }

// Metrics merges every node's engine metrics into one cluster-wide view.
// Call after Finish.
func (in *Ingress) Metrics() engine.Metrics {
	var m engine.Metrics
	for i := range in.nodeMetrics {
		if in.gotMetrics[i] {
			m.Merge(in.nodeMetrics[i])
		}
	}
	return m
}

// NodeMetrics is the per-node breakdown behind Metrics (zero-valued for
// nodes that failed before reporting). Call after Finish.
func (in *Ingress) NodeMetrics() []engine.Metrics {
	out := make([]engine.Metrics, len(in.nodeMetrics))
	copy(out, in.nodeMetrics)
	return out
}
