package cluster

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/multi"
	"acep/internal/pattern"
	recovery "acep/internal/recover"
	"acep/internal/shard"
	"acep/internal/shed"
	"acep/internal/wire"
)

// maxShardsPerNode bounds the shard count a node may claim in its
// hello; far above any sane deployment, low enough that the global
// shard->node map stays small.
const maxShardsPerNode = 1 << 12

// ElasticConfig tunes the placement controller: when Rebalance is set
// the ingress watches per-shard queue-wait p99 snapshots reported by
// the nodes and migrates the busiest shard off the hottest node onto
// the coolest one — with hysteresis (the hot node must be HotRatio
// times the cool one and above MinWaitP99 before anything moves) and a
// cooldown (CooldownCuts cuts must pass between moves, and never while
// another migration is still in flight) so the controller converges
// instead of thrashing.
type ElasticConfig struct {
	// Rebalance enables the controller. Requires IngressOptions.Recovery:
	// migrations replay shard history from the journal.
	Rebalance bool
	// HotRatio is the load ratio (hottest node / coolest node, by max
	// owned-shard queue-wait p99) that triggers a move. Values <= 1 mean
	// the default 2.0.
	HotRatio float64
	// MinWaitP99 is the absolute queue-wait floor below which the
	// controller never moves anything, however skewed the ratio looks
	// (default 1ms): an idle cluster has nothing worth migrating.
	MinWaitP99 time.Duration
	// CooldownCuts is the minimum number of cuts between moves (default
	// 16), giving each move's effect time to show up in the stats.
	CooldownCuts int
}

// CutInfo is one sealed cut as observed by IngressOptions.OnCut: the
// global watermark, every shard's events of the cut, and the routing
// truth at seal time. The slices alias ingress-owned state and are
// valid only during the call — a replicator must encode or copy before
// returning. Final marks the cut sealed by Finish (the stream's last).
type CutInfo struct {
	UpTo  uint64
	Final bool
	Bufs  [][]event.Event // per global shard, arrival order
	Owner []int           // shard -> slot (-1: abandoned)
	Addrs []string        // per slot: dialable worker address ("" unknown)
}

// ResumeState builds a takeover successor: a standby coordinator that
// mirrored the primary's sealed cuts constructs a fresh ingress that
// resumes the stream at the exact point its mirror covers. Owner is the
// mirrored routing table (conns[i] serves slot i), Journal the mirrored
// cut journal, NextSeq the watermark of the newest mirrored cut, and
// Boundary the primary's last replicated emission watermark — every
// match at or below it was already delivered downstream, so the
// successor's adoption migrations suppress that prefix and regenerate
// the rest by replay.
type ResumeState struct {
	NextSeq  uint64
	Boundary uint64
	Owner    []int
	Journal  *recovery.Journal
}

// IngressOptions tunes the coordinator side of a cluster.
type IngressOptions struct {
	// Batch is the number of ingested events per uniform cut (default
	// 256): at every cut, every node — including nodes whose partitions
	// received nothing — gets a frame carrying the global watermark, so
	// completion progress advances cluster-wide even through idle
	// partitions.
	Batch int
	// Key extracts the partition key; Key or KeyAttr+Schema is required
	// and must match the nodes' configuration.
	Key     shard.KeyFunc
	KeyAttr string
	Schema  *event.Schema
	// OnMatch receives every match, on the merge-collector goroutine, in
	// the deterministic global order (identical to the single-process
	// sharded engine's, see the package comment).
	OnMatch func(*match.Match)
	// OnTagged, when set instead of OnMatch, receives matches with their
	// merge tags (Src is the global shard index).
	OnTagged func(shard.Tagged)
	// Patterns switches the cluster to multi-pattern mode: every node
	// hosts the whole set behind one shared-evaluation engine (see
	// internal/multi), every match callback sees the emitting pattern's
	// id on its Tagged, and the set can be mutated at runtime with
	// AddPattern/RemovePattern. NewIngress must then be called with a nil
	// pattern; ids must be nonzero (zero marks a single-pattern session
	// on the wire) and Schema is required. Spec Configs are ignored —
	// each node applies its own engine configuration.
	Patterns []multi.Spec
	// Tenants ships per-tenant token-bucket budgets to every node
	// (multi-pattern mode only). Budgets gate per local shard on each
	// node, so a rate intended as a global bound should be divided by
	// the global shard count. Per-tenant admission counters come back
	// with the final metrics (TenantStats).
	Tenants map[uint32]shed.TenantBudget
	// Recovery, when non-nil, makes the ingress fault-tolerant and
	// elastic: sealed cuts are journaled per shard, a dead node's shards
	// fail over to a standby, and shards can migrate between live nodes
	// (rebalance, join, drain) with watermark replay and exact dedup (see
	// RecoveryConfig and DESIGN.md "Elasticity"). When nil, a node
	// failure surfaces as an error from Finish (exactness over
	// availability) and migration is unavailable.
	Recovery *RecoveryConfig
	// Elastic configures the placement controller (optional; needs
	// Recovery when Rebalance is set).
	Elastic *ElasticConfig
	// Epoch stamps every Assign frame this ingress issues (0 without
	// HA). Worker processes latch the highest epoch they have served and
	// fence sessions from anything lower, so a superseded primary cannot
	// keep driving the cluster after its standby took over.
	Epoch uint64
	// OnCut, when set, observes every sealed cut on the ingress
	// goroutine, strictly behind the send barrier and after the cut has
	// been journaled — the replication tap of the HA subsystem
	// (internal/ha). The CutInfo slices are valid only during the call.
	// Requires Recovery (replication rides the journal's framing and
	// retention guarantees).
	OnCut func(CutInfo)
	// OnProgress taps the merge collector's release watermark: called on
	// the collector goroutine after the matches the watermark covers have
	// been delivered. The HA emission gate keys off it.
	OnProgress func(uint64)
	// Addrs seeds each node slot's dialable worker address (index-
	// aligned with the conns passed to NewIngress; "" unknown), so OnCut
	// can replicate a routing table a standby coordinator could re-dial
	// on takeover. Adoptions and joins refresh a slot's entry when the
	// new connection exposes its remote address; drains clear it.
	Addrs []string
	// Resume, when non-nil, builds a takeover successor instead of a
	// founding coordinator: every worker handshakes into a zero-shard
	// session, the mirrored journal and routing table are adopted as-is,
	// and NewIngress re-establishes every shard on its mirrored slot via
	// adoption migrations (reason "takeover") that replay the mirror and
	// suppress matches at or below Resume.Boundary. Requires Recovery.
	Resume *ResumeState
}

// Ingress is the cluster coordinator: it partitions one input stream
// across worker nodes, drives uniform watermark cuts, and merges the
// per-shard match streams into one deterministic, ordered output.
// Process, Finish, AddNode, Drain and MigrateShard must be called from
// a single goroutine; the match callback fires on the collector
// goroutine. Construct with NewIngress.
type Ingress struct {
	conns []Conn
	key   shard.KeyFunc
	batch int
	total int

	// owner is the routing truth: global shard index -> the node slot
	// currently feeding it (-1: abandoned). Mutated only on the ingress
	// goroutine, strictly behind the send barrier. hosted[n] records
	// every shard node slot n's *current session* has ever hosted: a
	// session that already ran a shard holds stale window state for it,
	// so migrating the shard back would double-process — the set is
	// reset when a slot is re-adopted by a fresh standby.
	owner  []int
	hosted []map[int]bool

	bufs      [][]event.Event   // per global shard: the accumulating cut
	spare     [][]event.Event   // recycled cut buffers (serializing transports, no recovery)
	recycle   []bool            // per shard: cut buffers may be reused
	outs      [][][]event.Event // per node: send-goroutine scratch, regrouped each cut
	pending   int
	lastSeq   uint64
	dead      []bool
	drained   []bool // gracefully emptied and finished; skip its sends
	abandoned []bool // degraded with no successor: stop journaling its shards

	// Cut pipelining: each sealed cut's frames are encoded and sent by
	// per-node goroutines while the coordinator returns to accumulating
	// the next cut. sendWG is the in-flight cut; sendErr[n] is node n's
	// send failure, acted on at the next barrier (waitSends). Per-node
	// frame order is preserved because a new cut's sends only launch
	// after the barrier, and all routing mutation (migrate, adopt, join,
	// drain — which closes, replaces and replays connections) runs
	// strictly behind it.
	sendWG  sync.WaitGroup
	sendErr []error

	col     *shard.Collector
	readers sync.WaitGroup

	nodeShards []int
	finSent    []bool

	// Recovery/elasticity state (nil/empty without
	// IngressOptions.Recovery). The pattern, schema and fingerprint are
	// kept for the standby/join handshake; released is the collector's
	// delivered watermark.
	pat           *pattern.Pattern
	schema        *event.Schema
	sig           uint64
	rec           *RecoveryConfig
	elastic       *ElasticConfig
	journal       *recovery.Journal
	det           *recovery.Detector
	released      atomic.Uint64
	readerDone    []chan struct{}
	exitCh        chan struct{} // coalesced reader-exit wakeup for the drain loop
	cutsSinceMove int
	moveHorizon   uint64 // cut watermark at the last shard move (staleness horizon)

	// HA state (zero without the internal/ha subsystem driving this
	// ingress). onCut is the replication tap, addrs the per-slot worker
	// addresses it replicates, epoch the coordinator epoch stamped on
	// every Assign, and suppressFloor the takeover boundary a successor
	// imposes on every adoption migration (a fresh collector's release
	// frontier starts at zero, so the mirrored emission watermark — not
	// the collector — is the truth about what was already delivered).
	onCut         func(CutInfo)
	addrs         []string
	epoch         uint64
	suppressFloor uint64

	// Multi-pattern state (ingress goroutine unless noted). specs is the
	// current set — the truth shipped to every join and adoption; keyAttr
	// re-validates runtime additions; tenants are the shipped budgets.
	// addCut maps runtime-added pattern ids to the cut boundary they
	// joined at; reader goroutines load it to drop matches a migration
	// replay regenerated from events the pattern never saw in the
	// original timeline (see AddPattern).
	multi   bool
	specs   []multi.Spec
	keyAttr string
	tenants map[uint32]shed.TenantBudget
	addCut  atomic.Pointer[map[uint32]uint64]

	mu          sync.Mutex
	err         error
	finished    bool
	gen         []int // per-slot reader generation (guards stale suspects)
	suspects    []suspectRec
	failovers   []recovery.Failover
	facked      []int // per failover: migrations acknowledged so far
	migrations  []recovery.Migration
	migFailover []int // per migration: owning failover index, -1 if none
	nodeMetrics []engine.Metrics
	gotMetrics  []bool
	stats       [][]wire.ShardStat // per slot: latest load snapshot
	retired     engine.Metrics     // metrics of drained sessions whose slot was reused
	patMetrics  map[uint32]engine.Metrics
	tenantAgg   map[uint32]shed.TenantStat
}

// NewIngress performs the handshake over the given node connections
// (node i's shard block starts after node i-1's) and starts the merge
// collector. The pattern and schema must match every node's — the
// handshake compares fingerprints — and the pattern must be
// key-partitionable in KeyAttr mode, exactly like shard.New.
func NewIngress(pat *pattern.Pattern, conns []Conn, opts IngressOptions) (*Ingress, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("cluster: ingress needs at least one node connection")
	}
	// Every error return below must release the connections: a node left
	// attached to a half-built ingress would block in its handshake (or
	// hold its listener's session slot) forever.
	built := false
	defer func() {
		if !built {
			for _, c := range conns {
				c.Close()
			}
		}
	}()
	if opts.OnMatch != nil && opts.OnTagged != nil {
		return nil, fmt.Errorf("cluster: set at most one of OnMatch and OnTagged")
	}
	switch {
	case pat == nil && len(opts.Patterns) == 0:
		return nil, fmt.Errorf("cluster: ingress needs a pattern (or a pattern set in Options.Patterns)")
	case pat != nil && len(opts.Patterns) > 0:
		return nil, fmt.Errorf("cluster: in multi-pattern mode the set travels in Options.Patterns; pass a nil pattern")
	}
	if len(opts.Tenants) > 0 && len(opts.Patterns) == 0 {
		return nil, fmt.Errorf("cluster: Options.Tenants needs multi-pattern mode (Options.Patterns)")
	}
	if len(opts.Patterns) > 0 {
		if opts.Schema == nil {
			return nil, fmt.Errorf("cluster: multi-pattern mode needs Options.Schema (set analysis rides the assignment)")
		}
		for _, sp := range opts.Patterns {
			if sp.ID == 0 {
				return nil, fmt.Errorf("cluster: pattern ids must be nonzero (zero marks a single-pattern session on the wire)")
			}
		}
		// Fail a bad set here, not as one cryptic handshake error per node.
		if _, err := multi.Analyze(opts.Patterns, opts.Schema); err != nil {
			return nil, err
		}
	}
	if opts.Batch <= 0 {
		opts.Batch = 256
	}
	if opts.Elastic != nil && opts.Elastic.Rebalance && opts.Recovery == nil {
		return nil, fmt.Errorf("cluster: Elastic.Rebalance requires Recovery (migrations replay from the journal)")
	}
	if opts.OnCut != nil && opts.Recovery == nil {
		return nil, fmt.Errorf("cluster: Options.OnCut requires Recovery (replication rides the journal)")
	}
	if opts.Resume != nil {
		if opts.Recovery == nil {
			return nil, fmt.Errorf("cluster: Options.Resume requires Recovery (adoption migrations replay the mirror)")
		}
		if opts.Resume.Journal == nil || len(opts.Resume.Owner) == 0 {
			return nil, fmt.Errorf("cluster: Options.Resume needs the mirrored journal and owner table")
		}
		for g, o := range opts.Resume.Owner {
			if o >= len(conns) {
				return nil, fmt.Errorf("cluster: Options.Resume: shard %d owned by slot %d, only %d connections", g, o, len(conns))
			}
		}
	}
	key := opts.Key
	switch {
	case key != nil && opts.KeyAttr != "":
		return nil, fmt.Errorf("cluster: set exactly one of Key and KeyAttr")
	case key == nil && opts.KeyAttr == "":
		return nil, fmt.Errorf("cluster: a partition key is required: set Key or KeyAttr")
	case opts.KeyAttr != "":
		if opts.Schema == nil {
			return nil, fmt.Errorf("cluster: KeyAttr needs Schema to resolve the attribute")
		}
		if len(opts.Patterns) > 0 {
			for _, sp := range opts.Patterns {
				if err := shard.Partitionable(sp.Pattern, opts.Schema, opts.KeyAttr); err != nil {
					return nil, fmt.Errorf("cluster: pattern %d: %w", sp.ID, err)
				}
			}
		} else if err := shard.Partitionable(pat, opts.Schema, opts.KeyAttr); err != nil {
			return nil, err
		}
		k, err := shard.ByAttrName(opts.Schema, opts.KeyAttr)
		if err != nil {
			return nil, err
		}
		key = k
	}

	var sig uint64
	if len(opts.Patterns) > 0 {
		sig = signatureMulti(opts.Patterns, opts.Schema)
	} else {
		sig = signature(pat, opts.Schema)
	}
	in := &Ingress{
		conns:       conns,
		key:         key,
		batch:       opts.Batch,
		sendErr:     make([]error, len(conns)),
		dead:        make([]bool, len(conns)),
		drained:     make([]bool, len(conns)),
		abandoned:   make([]bool, len(conns)),
		nodeShards:  make([]int, len(conns)),
		hosted:      make([]map[int]bool, len(conns)),
		outs:        make([][][]event.Event, len(conns)),
		nodeMetrics: make([]engine.Metrics, len(conns)),
		gotMetrics:  make([]bool, len(conns)),
		finSent:     make([]bool, len(conns)),
		stats:       make([][]wire.ShardStat, len(conns)),
		readerDone:  make([]chan struct{}, len(conns)),
		exitCh:      make(chan struct{}, 1),
		gen:         make([]int, len(conns)),
		pat:         pat,
		schema:      opts.Schema,
		sig:         sig,
		epoch:       opts.Epoch,
		onCut:       opts.OnCut,
	}
	in.addrs = make([]string, len(conns))
	copy(in.addrs, opts.Addrs)
	if opts.Recovery != nil && opts.Recovery.HeartbeatTimeout > 0 {
		// A worker that stops draining its socket (wedged peer, one-way
		// partition) must surface as that slot's link error in bounded
		// time instead of wedging the feed inside a blocking send.
		// Scaled off the heartbeat timeout: a peer making zero write
		// progress for several heartbeat windows is already dead by the
		// read-side detector's standards.
		ws := 4 * opts.Recovery.HeartbeatTimeout
		if ws < 2*time.Second {
			ws = 2 * time.Second
		}
		for _, c := range conns {
			if sc, ok := c.(interface{ SetWriteStall(time.Duration) }); ok {
				sc.SetWriteStall(ws)
			}
		}
	}
	if len(opts.Patterns) > 0 {
		in.multi = true
		in.specs = append([]multi.Spec(nil), opts.Patterns...)
		in.keyAttr = opts.KeyAttr
		in.patMetrics = make(map[uint32]engine.Metrics)
		in.tenantAgg = make(map[uint32]shed.TenantStat)
		if len(opts.Tenants) > 0 {
			in.tenants = make(map[uint32]shed.TenantBudget, len(opts.Tenants))
			for t, b := range opts.Tenants {
				in.tenants[t] = b
			}
		}
	}
	if opts.Elastic != nil {
		ec := *opts.Elastic
		if ec.HotRatio <= 1 {
			ec.HotRatio = 2.0
		}
		if ec.MinWaitP99 <= 0 {
			ec.MinWaitP99 = time.Millisecond
		}
		if ec.CooldownCuts <= 0 {
			ec.CooldownCuts = 16
		}
		in.elastic = &ec
	}
	// Collect every node's greeting, then assign contiguous blocks of the
	// global shard space in connection order.
	for i, c := range conns {
		f, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d hello: %w", i, err)
		}
		h, ok := f.(wire.Hello)
		if !ok {
			return nil, fmt.Errorf("cluster: node %d sent %s, want hello", i, wire.KindOf(f))
		}
		if h.Version != wire.Version {
			return nil, fmt.Errorf("cluster: node %d speaks protocol v%d, ingress v%d", i, h.Version, wire.Version)
		}
		// Fingerprint 0 is a bare node: it has no pattern of its own and
		// adopts the one shipped in the Assign reply. Configured nodes
		// cross-validate.
		if h.PatternSig != 0 && h.PatternSig != sig {
			return nil, fmt.Errorf("cluster: node %d serves a different pattern or schema (fingerprint %x, want %x)", i, h.PatternSig, sig)
		}
		if h.Shards < 1 {
			return nil, fmt.Errorf("cluster: node %d hosts no shards", i)
		}
		// Cap the claimed shard count before it sizes the global
		// shard->node map: a buggy or hostile hello must not be able to
		// force a multi-gigabyte allocation (the same promise the wire
		// codec makes for frame-internal counts).
		if h.Shards > maxShardsPerNode {
			return nil, fmt.Errorf("cluster: node %d claims %d shards, cap is %d", i, h.Shards, maxShardsPerNode)
		}
		if opts.Resume == nil {
			in.nodeShards[i] = int(h.Shards)
			in.total += int(h.Shards)
		}
	}
	if rs := opts.Resume; rs != nil {
		// Takeover successor: the mirrored table defines the global shard
		// space, every worker session starts bare (it learns its shards
		// through the adoption migrations below), and the stream resumes
		// at the newest mirrored cut.
		in.total = len(rs.Owner)
		in.owner = append([]int(nil), rs.Owner...)
		in.lastSeq = rs.NextSeq
		in.moveHorizon = rs.NextSeq
		in.suppressFloor = rs.Boundary
		for i, c := range conns {
			if err := c.Send(in.assignFrame(0, 0)); err != nil {
				return nil, fmt.Errorf("cluster: assigning successor worker %d: %w", i, err)
			}
			in.hosted[i] = make(map[int]bool)
		}
	} else {
		base := 0
		for i, c := range conns {
			if err := c.Send(in.assignFrame(base, in.nodeShards[i])); err != nil {
				return nil, fmt.Errorf("cluster: assigning node %d: %w", i, err)
			}
			in.hosted[i] = make(map[int]bool, in.nodeShards[i])
			for s := 0; s < in.nodeShards[i]; s++ {
				in.owner = append(in.owner, i)
				in.hosted[i][base+s] = true
			}
			base += in.nodeShards[i]
		}
	}
	in.bufs = make([][]event.Event, in.total)
	in.spare = make([][]event.Event, in.total)

	deliver := func(t shard.Tagged) {
		if opts.OnMatch != nil {
			opts.OnMatch(t.M)
		}
	}
	if opts.OnTagged != nil {
		deliver = opts.OnTagged
	}
	var progress func(uint64)
	if opts.Recovery != nil {
		rc := *opts.Recovery
		if rc.Window <= 0 {
			rc.Window = in.maxWindow()
		}
		in.rec = &rc
		if opts.Resume != nil {
			in.journal = opts.Resume.Journal
		} else {
			journal, err := recovery.NewJournal(recovery.JournalConfig{
				Window: rc.Window, Shards: in.total,
				SlackWindows: rc.SlackWindows,
				MaxBytes:     rc.MaxJournalBytes,
			})
			if err != nil {
				return nil, err
			}
			in.journal = journal
		}
		in.det = recovery.NewDetector(len(conns), rc.HeartbeatTimeout)
		progress = func(w uint64) { in.released.Store(w) }
	}
	if tap := opts.OnProgress; tap != nil {
		if inner := progress; inner != nil {
			progress = func(w uint64) { inner(w); tap(w) }
		} else {
			progress = tap
		}
	}
	// Cut-buffer recycling: on a serializing transport the Batch frame
	// is fully encoded onto the wire by the time Send returns, so a
	// cut's event buffer is reusable once its send has been barriered
	// (behind waitSends). The in-process pipe hands the slice to the
	// node by reference — stable for the run, never reused — and the
	// recovery journal retains cut history (and lets shards change
	// owner), so a pipe conn or a configured Recovery disables recycling
	// for the session.
	if in.rec == nil {
		in.recycle = make([]bool, in.total)
		for g, o := range in.owner {
			_, serializing := conns[o].(interface{ SetDecodeArena(*match.Arena) })
			in.recycle[g] = serializing
		}
	}
	in.col = shard.NewCollectorOwned(in.owner, deliver, progress)
	for i, c := range conns {
		done := make(chan struct{})
		in.readerDone[i] = done
		in.readers.Add(1)
		go in.read(i, c, 0, done)
	}
	if rs := opts.Resume; rs != nil {
		if err := in.takeoverAdopt(rs); err != nil {
			// Orderly teardown: close every session so the readers exit,
			// then drain the collector — the deferred sweep above would
			// leave both running.
			for _, c := range conns {
				c.Close()
			}
			in.readers.Wait()
			in.col.Close()
			built = true // connections already released
			return nil, err
		}
	}
	built = true
	return in, nil
}

// takeoverAdopt re-establishes every mirrored shard on its slot's fresh
// worker session: a Takeover frame announces the successor's epoch and
// suppress boundary, then each shard runs the standard adoption
// migration (reason "takeover") — replaying the mirrored journal with
// duplicates at or below the boundary suppressed on the worker. Runs
// once, at successor construction, before any ingest.
func (in *Ingress) takeoverAdopt(rs *ResumeState) error {
	tk := wire.Takeover{Epoch: in.epoch, Boundary: rs.Boundary}
	for i, c := range in.conns {
		if err := c.Send(tk); err != nil {
			return fmt.Errorf("cluster: takeover announce to worker %d: %w", i, err)
		}
		in.det.Sent(i)
	}
	for g, o := range in.owner {
		if o < 0 {
			continue
		}
		if err := in.migrateShard(g, o, "takeover", -1); err != nil {
			return err
		}
	}
	in.routeBroadcast()
	return nil
}

// signatureMulti fingerprints a pattern set plus the schema layout, the
// multi-pattern analogue of signature. Only bare nodes (fingerprint 0)
// can join a multi cluster, so this mainly guards against pairing a
// multi ingress with a configured single-pattern node.
func signatureMulti(specs []multi.Spec, s *event.Schema) uint64 {
	var b strings.Builder
	for _, sp := range specs {
		fmt.Fprintf(&b, "%d@%d:%s;", sp.ID, sp.Tenant, sp.Pattern.String())
	}
	if s != nil {
		for t := 0; t < s.NumTypes(); t++ {
			fmt.Fprintf(&b, "|%s:%v", s.TypeName(t), s.Attrs(t))
		}
	}
	return wire.Fingerprint(b.String())
}

// maxWindow is the widest time window any hosted pattern can reach back
// — the journal-sizing horizon.
func (in *Ingress) maxWindow() event.Time {
	if !in.multi {
		return in.pat.Window
	}
	var w event.Time
	for _, sp := range in.specs {
		if sp.Pattern.Window > w {
			w = sp.Pattern.Window
		}
	}
	return w
}

// assignFrame builds the handshake reply for a session hosting shards
// [base, base+shards): single-pattern sessions ship the pattern; multi
// sessions ship the current set (the first spec as the primary entry,
// the rest in Extra) plus the tenant budgets, sorted for a
// deterministic wire image. Ingress goroutine (reads in.specs).
func (in *Ingress) assignFrame(base, shards int) wire.Assign {
	a := wire.Assign{
		Base: uint32(base), Shards: uint32(shards), Total: uint32(in.total),
		Pattern: in.pat, Schema: in.schema, Epoch: in.epoch,
	}
	if !in.multi {
		return a
	}
	a.Pattern = in.specs[0].Pattern
	a.PrimaryID = in.specs[0].ID
	a.PrimaryTenant = in.specs[0].Tenant
	for _, sp := range in.specs[1:] {
		a.Extra = append(a.Extra, wire.PatternEntry{ID: sp.ID, Tenant: sp.Tenant, Pattern: sp.Pattern})
	}
	if len(in.tenants) > 0 {
		ids := make([]int, 0, len(in.tenants))
		for t := range in.tenants {
			ids = append(ids, int(t))
		}
		sort.Ints(ids)
		for _, t := range ids {
			a.Tenants = append(a.Tenants, wire.TenantBudgetEntry{Tenant: uint32(t), Budget: in.tenants[uint32(t)]})
		}
	}
	return a
}

// dropRegen reports whether a match of pattern p tagged at seq is a
// replay artifact: a migration replays journaled history into a live
// session whose evaluators already host patterns added later, so a
// replayed cut can regenerate matches from events the pattern never saw
// in the original timeline. Every legitimate match of a runtime-added
// pattern is triggered by an event after its add boundary, so matches
// at or below the boundary are dropped. Reader goroutines.
func (in *Ingress) dropRegen(p uint32, seq uint64) bool {
	m := in.addCut.Load()
	if m == nil {
		return false
	}
	born, ok := (*m)[p]
	return ok && seq <= born
}

// metricsDone reports whether slot i delivered its final metrics (the
// clean-exit marker), synchronized with the reader that records them.
func (in *Ingress) metricsDone(i int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.gotMetrics[i]
}

// read is node slot i's reader goroutine (generation gen): it buffers
// tagged matches and posts them to the merge collector together with
// each completion watermark, applies migration acknowledgements,
// stores the node's load snapshots and final metrics, and on failure
// either queues a suspect for failover (recovery configured, posting
// nothing — the slot will be re-registered) or posts a terminal
// watermark so the merge never deadlocks on a dead node.
func (in *Ingress) read(i int, c Conn, gen int, done chan struct{}) {
	defer func() { // runs last: done is closed by the time the drain wakes
		select {
		case in.exitCh <- struct{}{}:
		default:
		}
	}()
	defer close(done)
	defer in.readers.Done()
	var pend []shard.Tagged
	for {
		f, err := c.Recv()
		if err != nil {
			clean := err == io.EOF && in.metricsDone(i)
			if in.rec != nil && !clean {
				in.suspect(i, gen, fmt.Errorf("cluster: node %d stream: %w", i, err))
				return
			}
			if !clean {
				in.recordErr(fmt.Errorf("cluster: node %d stream: %w", i, err))
			}
			in.col.Post(i, maxSeq, pend)
			return
		}
		in.det.Heard(i)
		switch v := f.(type) {
		case wire.TaggedMatch:
			if in.dropRegen(v.Pattern, v.Seq) {
				break
			}
			pend = append(pend, shard.Tagged{M: v.M, Seq: v.Seq, Src: int(v.Shard), Pattern: v.Pattern})
		case wire.TaggedMatchRaw:
			// Owned-emit match over a reference transport (the pipe): the
			// body is the worker's pre-encoded outbox slice; decode it
			// here. A serializing transport never delivers this frame —
			// its codec reads the identical bytes back as a TaggedMatch.
			if in.dropRegen(v.Pattern, v.Seq) {
				break
			}
			m, derr := wire.DecodeMatchBody(v.Body)
			if derr != nil {
				err := fmt.Errorf("cluster: node %d match body: %w", i, derr)
				if in.rec != nil {
					in.suspect(i, gen, err)
					return
				}
				in.recordErr(err)
				in.col.Post(i, maxSeq, pend)
				return
			}
			pend = append(pend, shard.Tagged{M: m, Seq: v.Seq, Src: int(v.Shard), Pattern: v.Pattern})
		case wire.Watermark:
			in.col.Post(i, v.UpTo, pend)
			pend = nil
		case wire.Heartbeat:
			// Liveness only (recorded above).
		case wire.MigrateAck:
			// The destination caught up to a migration's replay horizon.
			// Flush buffered matches first (watermark 0 never advances a
			// mark) so unfreezing cannot release past a match still
			// sitting in this reader's buffer.
			if len(pend) > 0 {
				in.col.Post(i, 0, pend)
				pend = nil
			}
			in.col.Complete(i, int(v.Shard), v.UpTo)
			in.migrationAcked(i, int(v.Shard))
		case wire.ShardStats:
			in.mu.Lock()
			in.stats[i] = v.Stats
			in.mu.Unlock()
		case wire.Metrics:
			in.mu.Lock()
			if in.multi {
				// Multi sessions report one frame per live pattern (plus
				// the tenant accounting on exactly one frame); merge them
				// into the per-slot, per-pattern and per-tenant views.
				in.nodeMetrics[i].Merge(v.M)
				if v.Pattern != 0 {
					pm := in.patMetrics[v.Pattern]
					pm.Merge(v.M)
					in.patMetrics[v.Pattern] = pm
				}
				for _, ts := range v.Tenants {
					agg := in.tenantAgg[ts.Tenant]
					agg.Tenant = ts.Tenant
					agg.Admitted += ts.Admitted
					agg.Shed += ts.Shed
					in.tenantAgg[ts.Tenant] = agg
				}
			} else {
				in.nodeMetrics[i] = v.M
			}
			in.gotMetrics[i] = true
			in.mu.Unlock()
		default:
			err := fmt.Errorf("cluster: node %d sent unexpected %s frame", i, wire.KindOf(f))
			if in.rec != nil {
				in.suspect(i, gen, err)
				return
			}
			in.recordErr(err)
			in.col.Post(i, maxSeq, pend)
			return
		}
	}
}

// kill records a node's transport failure and closes its connection
// immediately: the node then observes end-of-input and drains instead of
// waiting for cuts that will never come, and the node's reader
// goroutine observes the close and posts its terminal watermark — either
// way the cluster finishes instead of deadlocking on a dead link.
func (in *Ingress) kill(n int, err error) {
	in.recordErr(err)
	in.dead[n] = true
	in.conns[n].Close()
}

func (in *Ingress) recordErr(err error) {
	in.mu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.mu.Unlock()
}

// Err reports the first transport or protocol error observed (nil while
// healthy). Finish returns the same error.
func (in *Ingress) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.err
}

// Process routes one event to its shard. Events must arrive in
// non-decreasing timestamp order with unique, increasing Seq numbers
// (the same contract as the engines underneath).
func (in *Ingress) Process(ev *event.Event) {
	if in.finished {
		panic("cluster: Process after Finish")
	}
	g := shard.GlobalIndex(in.key(ev), in.total)
	in.bufs[g] = append(in.bufs[g], *ev)
	in.lastSeq = ev.Seq
	in.pending++
	if in.pending >= in.batch {
		in.cutAll()
	}
}

// cutAll seals the current cut: the previous cut's pipelined sends are
// barriered first and their failures — together with pending reader
// suspects — handled (so a failover's replay ends at the previous cut
// and this one rides the normal send), the placement controller gets a
// chance to move a shard, the cut is journaled per shard when recovery
// is on, and then every live node's frames — one Batch per owned shard
// with accumulated events, or a bare one carrying just the global
// watermark — are encoded and sent by a per-node goroutine while the
// coordinator goes back to ingesting. A send failure surfaces at the
// next barrier and fails over there; the successor receives the
// journaled cuts through replay.
func (in *Ingress) cutAll() {
	in.waitSends()
	in.checkSuspects()
	in.rebalance()
	if in.journal != nil {
		in.journal.Advance(in.released.Load())
		in.journal.Append(in.bufs, in.lastSeq)
	}
	if in.onCut != nil {
		// Replication tap: behind the barrier (routing settled for this
		// cut, the previous cut fully sent) and after journaling, so what
		// the standby mirrors is exactly what a failover would replay.
		in.onCut(CutInfo{
			UpTo: in.lastSeq, Final: in.finished,
			Bufs: in.bufs, Owner: in.owner, Addrs: in.addrs,
		})
	}
	upTo := in.lastSeq
	for n := range in.outs {
		in.outs[n] = in.outs[n][:0]
	}
	for g := range in.bufs {
		evs := in.bufs[g]
		in.bufs[g] = nil
		if in.recycle != nil && in.recycle[g] {
			// Hand the next cut the previous cut's buffer (its send
			// completed at the barrier above) and queue this one.
			in.bufs[g] = in.spare[g][:0]
			in.spare[g] = evs
		}
		o := in.owner[g]
		if o < 0 || in.dead[o] || in.drained[o] || len(evs) == 0 {
			continue
		}
		in.outs[o] = append(in.outs[o], evs)
	}
	for n, c := range in.conns {
		if in.dead[n] || in.drained[n] {
			continue
		}
		in.det.Sent(n)
		in.sendWG.Add(1)
		go func(n int, c Conn, slices [][]event.Event) {
			defer in.sendWG.Done()
			// Events-only frames (UpTo 0), one per owned shard with
			// traffic, then the cut's single watermark frame: the node
			// reassembles the runs into seq order and seals its cut only
			// when the watermark arrives, so a cut split across shards
			// can never publish a watermark ahead of its own events.
			for _, evs := range slices {
				if err := c.Send(wire.Batch{Events: evs}); err != nil {
					in.sendErr[n] = err
					return
				}
			}
			if err := c.Send(wire.Batch{UpTo: upTo}); err != nil {
				in.sendErr[n] = err
			}
		}(n, c, in.outs[n])
	}
	in.pending = 0
}

// waitSends is the pipeline barrier: it blocks until the in-flight cut's
// sends complete and routes any send failure into the failover (or
// record-and-drain) path. All connection and routing mutation — close,
// replace, migrate, replay — happens behind this barrier, which is what
// keeps per-node frame order and the one-writer-per-connection
// discipline intact.
func (in *Ingress) waitSends() {
	in.sendWG.Wait()
	for n, err := range in.sendErr {
		if err == nil {
			continue
		}
		in.sendErr[n] = nil
		if !in.dead[n] {
			in.fail(n, fmt.Errorf("cluster: sending cut to node %d: %w", n, err))
		}
	}
}

// ownedShards lists the global shards currently owned by slot n.
// Ingress goroutine only.
func (in *Ingress) ownedShards(n int) []int {
	var owned []int
	for g, o := range in.owner {
		if o == n {
			owned = append(owned, g)
		}
	}
	return owned
}

// migrateShard is the one primitive every routing change is built from:
// it freezes shard g at the merge collector (capturing the release
// boundary), flips its owner to slot `to`, ships the Migrate frame with
// the suppress boundary and replay horizon, and replays g's journaled
// history to the destination. Failover, rebalance, scale-out handoff
// and drain are all callers. Must run on the ingress goroutine behind
// the send barrier; fidx >= 0 folds the move into that failover record.
// On error the destination is in an unknown state — the caller routes
// it into the failure path (and aborted in-flight records are dropped
// there).
func (in *Ingress) migrateShard(g, to int, reason string, fidx int) error {
	if in.hosted[to][g] {
		return fmt.Errorf("cluster: node %d already hosted shard %d this session; migrating it back would double-process", to, g)
	}
	if err := in.journal.CoveredShard(g); err != nil {
		return err
	}
	from := in.owner[g]
	boundary := in.col.Migrate(g, to)
	if boundary < in.suppressFloor {
		// Takeover successor: the fresh collector's release frontier is
		// zero, but the mirrored emission watermark proves everything at
		// or below it already delivered by the old primary.
		boundary = in.suppressFloor
	}
	in.owner[g] = to
	in.hosted[to][g] = true
	// Every move invalidates the fleet's load picture: reports stamped
	// before this cut describe the pre-move distribution, and the
	// placement controller must not act on them (see rebalance).
	in.moveHorizon = in.lastSeq
	replayUpTo := in.journal.ReplayUpToShard(g)
	// Register the record before the replay: the destination's ack races
	// with the tail of the replay loop, and an ack that finds no record
	// would leave the migration in flight forever.
	in.mu.Lock()
	in.migrations = append(in.migrations, recovery.Migration{
		Shard: g, From: from, To: to, Reason: reason,
		StartedAt: time.Now(), SuppressUpTo: boundary, ReplayUpTo: replayUpTo,
	})
	in.migFailover = append(in.migFailover, fidx)
	idx := len(in.migrations) - 1
	if fidx >= 0 {
		f := &in.failovers[fidx]
		f.Shards++
		if boundary > f.SuppressUpTo {
			f.SuppressUpTo = boundary
		}
		if replayUpTo > f.ReplayUpTo {
			f.ReplayUpTo = replayUpTo
		}
	}
	in.mu.Unlock()
	c := in.conns[to]
	in.det.Sent(to)
	if err := c.Send(wire.Migrate{Shard: uint32(g), SuppressUpTo: boundary, ReplayUpTo: replayUpTo}); err != nil {
		return fmt.Errorf("cluster: migrating shard %d to node %d: %w", g, to, err)
	}
	var cuts, events int
	var bytes int64
	rerr := in.journal.ReplayShard(g, func(evs []event.Event, upTo uint64) error {
		in.det.Sent(to)
		if err := c.Send(wire.Batch{UpTo: upTo, Events: evs}); err != nil {
			return err
		}
		cuts++
		events += len(evs)
		bytes += recovery.EventsBytes(evs)
		return nil
	})
	in.mu.Lock()
	m := &in.migrations[idx]
	m.ReplayCuts, m.ReplayEvents, m.ReplayBytes = cuts, events, bytes
	if fidx >= 0 {
		f := &in.failovers[fidx]
		f.ReplayCuts += cuts
		f.ReplayEvents += events
		f.ReplayBytes += bytes
	}
	in.mu.Unlock()
	if rerr != nil {
		return fmt.Errorf("cluster: replaying shard %d to node %d: %w", g, to, rerr)
	}
	return nil
}

// routeBroadcast ships the current shard->slot owner table to every
// live node (abandoned shards carry ^uint32(0)). Advisory for the
// nodes — ownership semantics ride the Migrate frames — but it keeps
// every member's picture of the routing current. Ingress goroutine,
// behind the barrier; a send failure is parked in sendErr and handled
// at the next waitSends.
func (in *Ingress) routeBroadcast() {
	route := wire.ShardRoute{Owner: make([]uint32, len(in.owner))}
	for g, o := range in.owner {
		if o < 0 {
			route.Owner[g] = ^uint32(0)
		} else {
			route.Owner[g] = uint32(o)
		}
	}
	for n, c := range in.conns {
		if in.dead[n] || in.drained[n] {
			continue
		}
		if err := c.Send(route); err != nil {
			if in.sendErr[n] == nil {
				in.sendErr[n] = err
			}
			continue
		}
		in.det.Sent(n)
	}
}

// migrationAcked stamps the youngest in-flight migration of shard g to
// slot n complete, and — when the move belonged to a failover — counts
// it toward the failover's recovery, stamping RecoveredAt when the
// last migrated shard has acknowledged. Reader goroutines.
func (in *Ingress) migrationAcked(n, g int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := len(in.migrations) - 1; i >= 0; i-- {
		m := &in.migrations[i]
		if m.Shard != g || m.To != n || !m.CompletedAt.IsZero() {
			continue
		}
		m.CompletedAt = time.Now()
		if fi := in.migFailover[i]; fi >= 0 {
			in.facked[fi]++
			if in.facked[fi] >= in.failovers[fi].Shards {
				// The final ack wins: an adoption retry resets the
				// aggregates and this overwrites any premature stamp.
				in.failovers[fi].RecoveredAt = time.Now()
			}
		}
		return
	}
}

// rebalance is the placement controller, run once per cut behind the
// barrier: when the hottest node's max owned-shard queue-wait p99
// exceeds both the absolute floor and HotRatio times the coolest
// node's, the hottest node's busiest shard migrates to the coolest
// node. Hysteresis plus the cut cooldown (and never moving while any
// migration is still in flight) keep it from thrashing.
func (in *Ingress) rebalance() {
	if in.journal == nil || in.elastic == nil || !in.elastic.Rebalance {
		return
	}
	in.cutsSinceMove++
	if in.cutsSinceMove < in.elastic.CooldownCuts {
		return
	}
	waits := make([]time.Duration, in.total)
	events := make([]uint64, in.total)
	// A report also goes stale by age alone: stats ride the nodes'
	// upstream frame flow, so a node that stops reporting (wedged, or
	// about to be declared dead) leaves numbers describing a
	// distribution many cuts old next to its peers' current ones.
	// Discount any report whose cut stamp trails the freshest report by
	// more than one controller period (floored at two reporting
	// intervals so a report is never discarded just for riding the
	// statsEveryCuts cadence). The reference is the newest *report*, not
	// the ingest frontier: nothing paces Process against worker
	// progress, so all reports trail in.lastSeq by an unbounded, shared
	// lag — what marks one stale is falling behind its peers.
	staleCuts := in.elastic.CooldownCuts
	if staleCuts < 2*statsEveryCuts {
		staleCuts = 2 * statsEveryCuts
	}
	ageHorizon := uint64(staleCuts * in.batch)
	in.mu.Lock()
	for _, m := range in.migrations {
		if m.CompletedAt.IsZero() {
			in.mu.Unlock()
			return
		}
	}
	var freshest uint64
	for n, ss := range in.stats {
		for _, s := range ss {
			g := int(s.Shard)
			if g >= 0 && g < in.total && in.owner[g] == n && s.Cut > freshest {
				freshest = s.Cut
			}
		}
	}
	for n, ss := range in.stats {
		for _, s := range ss {
			g := int(s.Shard)
			if g < 0 || g >= in.total || in.owner[g] != n {
				continue // stale: reported by a slot that no longer owns g
			}
			// Reports stamped before the cooldown horizon — the cut at
			// which the last move happened — describe a load distribution
			// that move already reshaped; acting on them would ping-pong
			// the same shard. Wait for numbers from after the move.
			if s.Cut < in.moveHorizon {
				continue
			}
			if s.Cut+ageHorizon < freshest {
				continue // older than one controller period: stale reporter
			}
			waits[g] = time.Duration(s.P99Nanos)
			events[g] = s.Events
		}
	}
	in.mu.Unlock()
	ownedCount := make([]int, len(in.conns))
	for _, o := range in.owner {
		if o >= 0 {
			ownedCount[o]++
		}
	}
	hot, cold := -1, -1
	var hotLoad, coldLoad time.Duration
	for n := range in.conns {
		if in.dead[n] || in.drained[n] || in.abandoned[n] {
			continue
		}
		var load time.Duration
		for g, o := range in.owner {
			if o == n && waits[g] > load {
				load = waits[g]
			}
		}
		if hot < 0 || load > hotLoad {
			hot, hotLoad = n, load
		}
		if cold < 0 || load < coldLoad {
			cold, coldLoad = n, load
		}
	}
	if hot < 0 || cold < 0 || hot == cold {
		return
	}
	if hotLoad <= in.elastic.MinWaitP99 {
		return
	}
	if float64(hotLoad) <= in.elastic.HotRatio*float64(coldLoad) {
		return
	}
	// Never empty the hot node unless the cold one has nothing: moving a
	// sole shard between two busy nodes just relocates the hotspot.
	if ownedCount[hot] < 2 && ownedCount[cold] != 0 {
		return
	}
	pick := -1
	var pickEv uint64
	for g, o := range in.owner {
		if o != hot || in.hosted[cold][g] {
			continue
		}
		if in.journal.CoveredShard(g) != nil {
			continue
		}
		if pick < 0 || events[g] > pickEv {
			pick, pickEv = g, events[g]
		}
	}
	if pick < 0 {
		return
	}
	reason := "rebalance"
	if ownedCount[cold] == 0 {
		reason = "join"
	}
	if err := in.migrateShard(pick, cold, reason, -1); err != nil {
		if in.sendErr[cold] == nil {
			in.sendErr[cold] = err
		}
	} else {
		in.routeBroadcast()
	}
	in.cutsSinceMove = 0
}

// AddNode admits a freshly dialed node into the running cluster: it
// runs the hello/assign handshake (the node joins with zero shards and
// a total-sized engine), registers the new slot's reader and heartbeat
// clock, and returns the slot index. The placement controller (or an
// explicit MigrateShard) hands it work. Requires Recovery; must be
// called from the Process goroutine. The connection is closed on error.
func (in *Ingress) AddNode(c Conn) (int, error) {
	if in.finished {
		c.Close()
		return -1, fmt.Errorf("cluster: AddNode after Finish")
	}
	if in.rec == nil {
		c.Close()
		return -1, fmt.Errorf("cluster: AddNode requires Recovery (the journal feeds shard handoff)")
	}
	in.waitSends()
	f, err := c.Recv()
	if err != nil {
		c.Close()
		return -1, fmt.Errorf("cluster: joining node hello: %w", err)
	}
	h, ok := f.(wire.Hello)
	if !ok {
		c.Close()
		return -1, fmt.Errorf("cluster: joining node sent %s, want hello", wire.KindOf(f))
	}
	if h.Version != wire.Version {
		c.Close()
		return -1, fmt.Errorf("cluster: joining node speaks protocol v%d, ingress v%d", h.Version, wire.Version)
	}
	if h.PatternSig != 0 && h.PatternSig != in.sig {
		c.Close()
		return -1, fmt.Errorf("cluster: joining node serves a different pattern or schema (fingerprint %x, want %x)", h.PatternSig, in.sig)
	}
	if err := c.Send(in.assignFrame(0, 0)); err != nil {
		c.Close()
		return -1, fmt.Errorf("cluster: assigning joining node: %w", err)
	}
	// Ghost-slot compaction: a drained slot whose session has fully
	// ended (reader exited, final metrics recorded) is a ghost — it owns
	// nothing and will never speak again. Reuse the oldest one for the
	// joining node instead of growing every per-slot array, so a
	// long-running cluster's join/drain churn doesn't leak slots. The
	// retired session's metrics move to the retired accumulator first,
	// keeping the cluster-wide Metrics sum intact.
	slot := -1
	for m := range in.conns {
		if !in.drained[m] || in.dead[m] || in.abandoned[m] {
			continue
		}
		select {
		case <-in.readerDone[m]:
		default:
			continue // session still draining
		}
		if !in.metricsDone(m) {
			continue
		}
		slot = m
		break
	}
	if slot >= 0 {
		in.conns[slot] = c
		in.sendErr[slot] = nil
		in.dead[slot] = false
		in.drained[slot] = false
		in.finSent[slot] = false
		in.nodeShards[slot] = 0
		in.hosted[slot] = map[int]bool{} // a fresh session has hosted nothing
		in.outs[slot] = nil
		in.addrs[slot] = connAddr(c)
		done := make(chan struct{})
		in.readerDone[slot] = done
		in.mu.Lock()
		in.gen[slot]++
		gen := in.gen[slot]
		in.retired.Merge(in.nodeMetrics[slot])
		in.nodeMetrics[slot] = engine.Metrics{}
		in.gotMetrics[slot] = false
		in.stats[slot] = nil
		in.mu.Unlock()
		in.det.Heard(slot)
		in.readers.Add(1)
		go in.read(slot, c, gen, done)
		return slot, nil
	}
	n := len(in.conns)
	in.conns = append(in.conns, c)
	in.sendErr = append(in.sendErr, nil)
	in.dead = append(in.dead, false)
	in.drained = append(in.drained, false)
	in.abandoned = append(in.abandoned, false)
	in.nodeShards = append(in.nodeShards, 0)
	in.finSent = append(in.finSent, false)
	in.hosted = append(in.hosted, map[int]bool{})
	in.outs = append(in.outs, nil)
	in.addrs = append(in.addrs, connAddr(c))
	done := make(chan struct{})
	in.readerDone = append(in.readerDone, done)
	in.mu.Lock()
	in.gen = append(in.gen, 0)
	in.nodeMetrics = append(in.nodeMetrics, engine.Metrics{})
	in.gotMetrics = append(in.gotMetrics, false)
	in.stats = append(in.stats, nil)
	in.mu.Unlock()
	in.det.Grow()
	in.readers.Add(1)
	go in.read(n, c, 0, done)
	return n, nil
}

// Drain gracefully empties node slot n: every shard it owns migrates
// to a live peer (round-robin, skipping peers whose session already
// hosted the shard), then the node gets its Finish frame and reports
// final metrics while the rest of the cluster keeps running. Requires
// Recovery; must be called from the Process goroutine.
func (in *Ingress) Drain(n int) error {
	if in.finished {
		return fmt.Errorf("cluster: Drain after Finish")
	}
	if in.rec == nil {
		return fmt.Errorf("cluster: Drain requires Recovery (migrations replay from the journal)")
	}
	if n < 0 || n >= len(in.conns) {
		return fmt.Errorf("cluster: Drain: no node slot %d", n)
	}
	in.waitSends()
	in.checkSuspects()
	if in.dead[n] {
		return fmt.Errorf("cluster: Drain: node %d is dead", n)
	}
	if in.drained[n] {
		return fmt.Errorf("cluster: Drain: node %d already drained", n)
	}
	owned := in.ownedShards(n)
	var targets []int
	for m := range in.conns {
		if m != n && !in.dead[m] && !in.drained[m] && !in.abandoned[m] {
			targets = append(targets, m)
		}
	}
	if len(owned) > 0 && len(targets) == 0 {
		return fmt.Errorf("cluster: draining node %d: no live node can take its shards", n)
	}
	ti := 0
	for _, g := range owned {
		pick := -1
		for k := 0; k < len(targets); k++ {
			t := targets[(ti+k)%len(targets)]
			if !in.hosted[t][g] {
				pick = t
				ti = (ti + k + 1) % len(targets)
				break
			}
		}
		if pick < 0 {
			return fmt.Errorf("cluster: draining node %d: every live node already hosted shard %d this session", n, g)
		}
		if err := in.migrateShard(g, pick, "drain", -1); err != nil {
			if in.sendErr[pick] == nil {
				in.sendErr[pick] = err
			}
			return err
		}
	}
	if len(owned) > 0 {
		in.routeBroadcast()
	}
	if err := in.conns[n].Send(wire.Finish{}); err != nil {
		// The shards are already safe on their new owners; the node's
		// death at this point is a benign failover.
		in.fail(n, fmt.Errorf("cluster: finishing drained node %d: %w", n, err))
		return nil
	}
	in.det.Sent(n)
	in.finSent[n] = true
	in.drained[n] = true
	in.addrs[n] = "" // the slot no longer lives anywhere dialable
	// The ghost slot's last load report is history now — drop it so
	// NodeStats and the placement controller never see it again.
	in.mu.Lock()
	in.stats[n] = nil
	in.mu.Unlock()
	return nil
}

// RemoveNode scales the cluster in — the symmetric inverse of AddNode,
// in one call: it drains slot n (every owned shard migrates to a live
// peer), waits for the drained session to report its final metrics and
// end, folds those metrics into the retired accumulator, closes the
// connection — which returns a pooled standby address to circulation
// for later adoptions and joins — and compacts the slot into an
// immediately reusable ghost. Requires Recovery; must be called from
// the Process goroutine.
func (in *Ingress) RemoveNode(n int) error {
	if err := in.Drain(n); err != nil {
		return err
	}
	// The drained session ends on its own clock: it owns nothing, but
	// its engines still flush and its reader must record the final
	// metrics before the slot can be compacted. The wait cannot starve —
	// draining needs no further ingress sends, and the merge collector
	// runs on its own goroutine.
	<-in.readerDone[n]
	in.conns[n].Close()
	in.mu.Lock()
	if in.gotMetrics[n] {
		// Fold the retired session's counters now so the slot's metrics
		// slate is clean for reuse; gotMetrics stays set — it is the
		// clean-end marker ghost-slot compaction keys on.
		in.retired.Merge(in.nodeMetrics[n])
		in.nodeMetrics[n] = engine.Metrics{}
	}
	in.stats[n] = nil
	in.mu.Unlock()
	in.nodeShards[n] = 0
	in.outs[n] = nil
	return nil
}

// connAddr reports a connection's dialable remote address ("" when the
// transport does not expose one — the in-process pipe).
func connAddr(c Conn) string {
	if ra, ok := c.(interface{ RemoteAddr() string }); ok {
		return ra.RemoteAddr()
	}
	return ""
}

// MigrateShard moves one shard to node slot `to` on demand — the
// manual override of the placement controller. Requires Recovery; must
// be called from the Process goroutine.
func (in *Ingress) MigrateShard(g, to int) error {
	if in.finished {
		return fmt.Errorf("cluster: MigrateShard after Finish")
	}
	if in.journal == nil {
		return fmt.Errorf("cluster: MigrateShard requires Recovery (migrations replay from the journal)")
	}
	if g < 0 || g >= in.total {
		return fmt.Errorf("cluster: MigrateShard: no shard %d", g)
	}
	if to < 0 || to >= len(in.conns) {
		return fmt.Errorf("cluster: MigrateShard: no node slot %d", to)
	}
	in.waitSends()
	in.checkSuspects()
	if in.dead[to] || in.drained[to] || in.abandoned[to] {
		return fmt.Errorf("cluster: MigrateShard: node %d cannot take shards", to)
	}
	if in.owner[g] == to {
		return fmt.Errorf("cluster: MigrateShard: node %d already owns shard %d", to, g)
	}
	reason := "rebalance"
	if len(in.ownedShards(to)) == 0 {
		reason = "join"
	}
	if err := in.migrateShard(g, to, reason, -1); err != nil {
		if in.sendErr[to] == nil {
			in.sendErr[to] = err
		}
		return err
	}
	in.routeBroadcast()
	return nil
}

// AddPattern registers one more pattern on a running multi-pattern
// cluster. The in-progress cut is sealed first, so the mutation lands
// on a clean cut boundary on every node: events already ingested stay
// ahead of the new pattern and events after this call are the first it
// sees. The spec joins the shipped set — future joins, adoptions and
// failover replays host it — and matches a migration replay regenerates
// from history before the boundary are filtered at the merge, so the
// delivered stream for the new pattern is exactly what a cluster that
// had hosted it from this boundary onward would produce. The spec's
// Config is ignored (each node applies its own engine configuration).
// Requires multi-pattern mode; must be called from the Process
// goroutine.
func (in *Ingress) AddPattern(sp multi.Spec) error {
	if in.finished {
		return fmt.Errorf("cluster: AddPattern after Finish")
	}
	if !in.multi {
		return fmt.Errorf("cluster: AddPattern needs a multi-pattern ingress (Options.Patterns)")
	}
	if sp.ID == 0 {
		return fmt.Errorf("cluster: pattern ids must be nonzero (zero marks a single-pattern session on the wire)")
	}
	for _, have := range in.specs {
		if have.ID == sp.ID {
			return fmt.Errorf("cluster: pattern id %d already registered", sp.ID)
		}
	}
	// Prevalidate here so a bad spec is one error return, not a poisoned
	// session on every node.
	if _, err := multi.Analyze([]multi.Spec{sp}, in.schema); err != nil {
		return err
	}
	if in.keyAttr != "" {
		if err := shard.Partitionable(sp.Pattern, in.schema, in.keyAttr); err != nil {
			return err
		}
	}
	if in.pending > 0 {
		in.cutAll()
	}
	in.waitSends()
	in.checkSuspects()
	in.specs = append(in.specs, sp)
	in.sig = signatureMulti(in.specs, in.schema)
	// Publish the add boundary before any node can emit for the new
	// pattern: the reader-side replay filter must be in place first.
	next := map[uint32]uint64{sp.ID: in.lastSeq}
	if old := in.addCut.Load(); old != nil {
		for id, cut := range *old {
			next[id] = cut
		}
	}
	in.addCut.Store(&next)
	entry := wire.PatternEntry{ID: sp.ID, Tenant: sp.Tenant, Pattern: sp.Pattern}
	for n, c := range in.conns {
		if in.dead[n] || in.drained[n] {
			continue
		}
		if err := c.Send(wire.PatternAdd{Entry: entry}); err != nil {
			// Parked like any cut-send failure: the next barrier fails the
			// node over, and its successor adopts the updated set.
			if in.sendErr[n] == nil {
				in.sendErr[n] = err
			}
			continue
		}
		in.det.Sent(n)
	}
	return nil
}

// RemovePattern retires a pattern cluster-wide at the next cut
// boundary: its evaluation state is dropped on every node and no
// further matches of it are delivered. Removal is a deliberate
// stop-caring operation — matches the pattern produced before the
// boundary but not yet delivered still drain normally, but if a shard
// later migrates or fails over, undelivered matches of the retired
// pattern inside the replayed span are not regenerated (the successor
// no longer hosts it). The last live pattern cannot be removed.
// Requires multi-pattern mode; must be called from the Process
// goroutine.
func (in *Ingress) RemovePattern(id uint32) error {
	if in.finished {
		return fmt.Errorf("cluster: RemovePattern after Finish")
	}
	if !in.multi {
		return fmt.Errorf("cluster: RemovePattern needs a multi-pattern ingress (Options.Patterns)")
	}
	at := -1
	for i, sp := range in.specs {
		if sp.ID == id {
			at = i
			break
		}
	}
	if at < 0 {
		return fmt.Errorf("cluster: no pattern %d registered", id)
	}
	if len(in.specs) == 1 {
		return fmt.Errorf("cluster: cannot remove the last pattern (joins and adoptions need a live set)")
	}
	if in.pending > 0 {
		in.cutAll()
	}
	in.waitSends()
	in.checkSuspects()
	in.specs = append(in.specs[:at:at], in.specs[at+1:]...)
	in.sig = signatureMulti(in.specs, in.schema)
	for n, c := range in.conns {
		if in.dead[n] || in.drained[n] {
			continue
		}
		if err := c.Send(wire.PatternRemove{ID: id}); err != nil {
			if in.sendErr[n] == nil {
				in.sendErr[n] = err
			}
			continue
		}
		in.det.Sent(n)
	}
	return nil
}

// Patterns snapshots the current pattern set (multi-pattern mode; nil
// otherwise). Process goroutine.
func (in *Ingress) Patterns() []multi.Spec {
	return append([]multi.Spec(nil), in.specs...)
}

// PatternMetrics merges every node's per-pattern engine counters
// (multi-pattern mode; nil otherwise), ascending by pattern id.
// Patterns removed before Finish stop reporting and are absent. Call
// after Finish.
func (in *Ingress) PatternMetrics() []multi.PatternMetrics {
	if !in.multi {
		return nil
	}
	tenant := make(map[uint32]uint32, len(in.specs))
	for _, sp := range in.specs {
		tenant[sp.ID] = sp.Tenant
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ids := make([]int, 0, len(in.patMetrics))
	for id := range in.patMetrics {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]multi.PatternMetrics, 0, len(ids))
	for _, id := range ids {
		out = append(out, multi.PatternMetrics{
			ID: uint32(id), Tenant: tenant[uint32(id)], M: in.patMetrics[uint32(id)],
		})
	}
	return out
}

// TenantStats merges the per-tenant admission accounting reported by
// every node (multi-pattern mode; nil otherwise), sorted by tenant id.
// Call after Finish.
func (in *Ingress) TenantStats() []shed.TenantStat {
	if !in.multi {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ids := make([]int, 0, len(in.tenantAgg))
	for t := range in.tenantAgg {
		ids = append(ids, int(t))
	}
	sort.Ints(ids)
	out := make([]shed.TenantStat, 0, len(ids))
	for _, t := range ids {
		out = append(out, in.tenantAgg[uint32(t)])
	}
	return out
}

// Migrations reports every shard move so far (completed and in
// flight), oldest first.
func (in *Ingress) Migrations() []recovery.Migration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]recovery.Migration(nil), in.migrations...)
}

// Owners snapshots the shard->slot routing table (-1: abandoned).
// Process goroutine.
func (in *Ingress) Owners() []int {
	return append([]int(nil), in.owner...)
}

// NodeStats snapshots the latest per-shard load report of every node
// slot (nil for a slot that has not reported yet — a dead node, or one
// whose shards have seen no traffic). This is the placement
// controller's input, exposed so operators and benchmarks can observe
// when load telemetry has actually arrived: stats ride the node's
// upstream frame flow, so a coordinator far ahead of its workers sees
// them lag.
func (in *Ingress) NodeStats() [][]wire.ShardStat {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([][]wire.ShardStat, len(in.stats))
	for i, ss := range in.stats {
		if len(ss) > 0 {
			out[i] = append([]wire.ShardStat(nil), ss...)
		}
	}
	return out
}

// finishNodes delivers the Finish frame to every live node that has not
// received one, failing over (and retrying the successor) on send
// errors. Terminates because every failed attempt either consumes a
// standby or degrades the slot.
func (in *Ingress) finishNodes() {
	for again := true; again; {
		again = false
		for n, c := range in.conns {
			if in.dead[n] || in.finSent[n] {
				continue
			}
			if err := c.Send(wire.Finish{}); err != nil {
				in.fail(n, fmt.Errorf("cluster: finishing node %d: %w", n, err))
				again = true
				continue
			}
			in.det.Sent(n)
			in.finSent[n] = true
		}
	}
}

// Finish flushes the final partial cut, tells every node to finish,
// waits until every node's matches have been merged and delivered, and
// closes the connections. With recovery configured, nodes that die
// during the drain still fail over: their successors replay, finish and
// deliver the missing tail before the merge closes. It returns the
// first unrecovered error observed anywhere in the cluster session (nil
// for a clean or fully recovered run). Idempotent.
func (in *Ingress) Finish() error {
	if in.finished {
		return in.Err()
	}
	in.finished = true
	in.cutAll()
	// Barrier the final cut's pipelined sends before the Finish frames:
	// per-node ordering requires the last Batch to hit the wire first,
	// and a send failure must fail over before the drain begins.
	in.waitSends()
	in.finishNodes()
	if in.rec == nil {
		in.readers.Wait()
	} else {
		in.drainRecovered()
	}
	in.col.Close()
	for _, c := range in.conns {
		c.Close()
	}
	return in.Err()
}

// Kill abandons the ingress as if its process died: every connection
// closes without Finish frames or a drain, the readers exit without
// posting, and the merge collector shuts down delivering nothing
// further downstream (the HA layer freezes its emission gate first).
// Worker sessions observe the closed links and discard their state —
// takeover re-establishes them fresh. Must be called from the Process
// goroutine; idempotent with Finish.
func (in *Ingress) Kill() {
	if in.finished {
		return
	}
	in.finished = true
	for _, c := range in.conns {
		c.Close()
	}
	in.sendWG.Wait()
	in.readers.Wait()
	in.col.Close()
}

// Nodes reports the node slot count (live, drained and dead slots
// included).
func (in *Ingress) Nodes() int { return len(in.conns) }

// TotalShards reports the global shard count across all nodes.
func (in *Ingress) TotalShards() int { return in.total }

// Metrics merges every node's engine metrics into one cluster-wide view.
// Call after Finish.
func (in *Ingress) Metrics() engine.Metrics {
	in.mu.Lock()
	defer in.mu.Unlock()
	var m engine.Metrics
	m.Merge(in.retired)
	for i := range in.nodeMetrics {
		if in.gotMetrics[i] {
			m.Merge(in.nodeMetrics[i])
		}
	}
	return m
}

// NodeMetrics is the per-node breakdown behind Metrics (zero-valued for
// nodes that failed before reporting). Call after Finish.
func (in *Ingress) NodeMetrics() []engine.Metrics {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]engine.Metrics, len(in.nodeMetrics))
	copy(out, in.nodeMetrics)
	return out
}
