package cluster

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	recovery "acep/internal/recover"
	"acep/internal/shard"
	"acep/internal/wire"
)

// maxShardsPerNode bounds the shard count a node may claim in its
// hello; far above any sane deployment, low enough that the global
// shard->node map stays small.
const maxShardsPerNode = 1 << 12

// ElasticConfig tunes the placement controller: when Rebalance is set
// the ingress watches per-shard queue-wait p99 snapshots reported by
// the nodes and migrates the busiest shard off the hottest node onto
// the coolest one — with hysteresis (the hot node must be HotRatio
// times the cool one and above MinWaitP99 before anything moves) and a
// cooldown (CooldownCuts cuts must pass between moves, and never while
// another migration is still in flight) so the controller converges
// instead of thrashing.
type ElasticConfig struct {
	// Rebalance enables the controller. Requires IngressOptions.Recovery:
	// migrations replay shard history from the journal.
	Rebalance bool
	// HotRatio is the load ratio (hottest node / coolest node, by max
	// owned-shard queue-wait p99) that triggers a move. Values <= 1 mean
	// the default 2.0.
	HotRatio float64
	// MinWaitP99 is the absolute queue-wait floor below which the
	// controller never moves anything, however skewed the ratio looks
	// (default 1ms): an idle cluster has nothing worth migrating.
	MinWaitP99 time.Duration
	// CooldownCuts is the minimum number of cuts between moves (default
	// 16), giving each move's effect time to show up in the stats.
	CooldownCuts int
}

// IngressOptions tunes the coordinator side of a cluster.
type IngressOptions struct {
	// Batch is the number of ingested events per uniform cut (default
	// 256): at every cut, every node — including nodes whose partitions
	// received nothing — gets a frame carrying the global watermark, so
	// completion progress advances cluster-wide even through idle
	// partitions.
	Batch int
	// Key extracts the partition key; Key or KeyAttr+Schema is required
	// and must match the nodes' configuration.
	Key     shard.KeyFunc
	KeyAttr string
	Schema  *event.Schema
	// OnMatch receives every match, on the merge-collector goroutine, in
	// the deterministic global order (identical to the single-process
	// sharded engine's, see the package comment).
	OnMatch func(*match.Match)
	// OnTagged, when set instead of OnMatch, receives matches with their
	// merge tags (Src is the global shard index).
	OnTagged func(shard.Tagged)
	// Recovery, when non-nil, makes the ingress fault-tolerant and
	// elastic: sealed cuts are journaled per shard, a dead node's shards
	// fail over to a standby, and shards can migrate between live nodes
	// (rebalance, join, drain) with watermark replay and exact dedup (see
	// RecoveryConfig and DESIGN.md "Elasticity"). When nil, a node
	// failure surfaces as an error from Finish (exactness over
	// availability) and migration is unavailable.
	Recovery *RecoveryConfig
	// Elastic configures the placement controller (optional; needs
	// Recovery when Rebalance is set).
	Elastic *ElasticConfig
}

// Ingress is the cluster coordinator: it partitions one input stream
// across worker nodes, drives uniform watermark cuts, and merges the
// per-shard match streams into one deterministic, ordered output.
// Process, Finish, AddNode, Drain and MigrateShard must be called from
// a single goroutine; the match callback fires on the collector
// goroutine. Construct with NewIngress.
type Ingress struct {
	conns []Conn
	key   shard.KeyFunc
	batch int
	total int

	// owner is the routing truth: global shard index -> the node slot
	// currently feeding it (-1: abandoned). Mutated only on the ingress
	// goroutine, strictly behind the send barrier. hosted[n] records
	// every shard node slot n's *current session* has ever hosted: a
	// session that already ran a shard holds stale window state for it,
	// so migrating the shard back would double-process — the set is
	// reset when a slot is re-adopted by a fresh standby.
	owner  []int
	hosted []map[int]bool

	bufs      [][]event.Event   // per global shard: the accumulating cut
	spare     [][]event.Event   // recycled cut buffers (serializing transports, no recovery)
	recycle   []bool            // per shard: cut buffers may be reused
	outs      [][][]event.Event // per node: send-goroutine scratch, regrouped each cut
	pending   int
	lastSeq   uint64
	dead      []bool
	drained   []bool // gracefully emptied and finished; skip its sends
	abandoned []bool // degraded with no successor: stop journaling its shards

	// Cut pipelining: each sealed cut's frames are encoded and sent by
	// per-node goroutines while the coordinator returns to accumulating
	// the next cut. sendWG is the in-flight cut; sendErr[n] is node n's
	// send failure, acted on at the next barrier (waitSends). Per-node
	// frame order is preserved because a new cut's sends only launch
	// after the barrier, and all routing mutation (migrate, adopt, join,
	// drain — which closes, replaces and replays connections) runs
	// strictly behind it.
	sendWG  sync.WaitGroup
	sendErr []error

	col     *shard.Collector
	readers sync.WaitGroup

	nodeShards []int
	finSent    []bool

	// Recovery/elasticity state (nil/empty without
	// IngressOptions.Recovery). The pattern, schema and fingerprint are
	// kept for the standby/join handshake; released is the collector's
	// delivered watermark.
	pat           *pattern.Pattern
	schema        *event.Schema
	sig           uint64
	rec           *RecoveryConfig
	elastic       *ElasticConfig
	journal       *recovery.Journal
	det           *recovery.Detector
	released      atomic.Uint64
	readerDone    []chan struct{}
	exitCh        chan struct{} // coalesced reader-exit wakeup for the drain loop
	cutsSinceMove int

	mu          sync.Mutex
	err         error
	finished    bool
	gen         []int // per-slot reader generation (guards stale suspects)
	suspects    []suspectRec
	failovers   []recovery.Failover
	facked      []int // per failover: migrations acknowledged so far
	migrations  []recovery.Migration
	migFailover []int // per migration: owning failover index, -1 if none
	nodeMetrics []engine.Metrics
	gotMetrics  []bool
	stats       [][]wire.ShardStat // per slot: latest load snapshot
}

// NewIngress performs the handshake over the given node connections
// (node i's shard block starts after node i-1's) and starts the merge
// collector. The pattern and schema must match every node's — the
// handshake compares fingerprints — and the pattern must be
// key-partitionable in KeyAttr mode, exactly like shard.New.
func NewIngress(pat *pattern.Pattern, conns []Conn, opts IngressOptions) (*Ingress, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("cluster: ingress needs at least one node connection")
	}
	// Every error return below must release the connections: a node left
	// attached to a half-built ingress would block in its handshake (or
	// hold its listener's session slot) forever.
	built := false
	defer func() {
		if !built {
			for _, c := range conns {
				c.Close()
			}
		}
	}()
	if opts.OnMatch != nil && opts.OnTagged != nil {
		return nil, fmt.Errorf("cluster: set at most one of OnMatch and OnTagged")
	}
	if pat == nil {
		return nil, fmt.Errorf("cluster: ingress needs a pattern")
	}
	if opts.Batch <= 0 {
		opts.Batch = 256
	}
	if opts.Elastic != nil && opts.Elastic.Rebalance && opts.Recovery == nil {
		return nil, fmt.Errorf("cluster: Elastic.Rebalance requires Recovery (migrations replay from the journal)")
	}
	key := opts.Key
	switch {
	case key != nil && opts.KeyAttr != "":
		return nil, fmt.Errorf("cluster: set exactly one of Key and KeyAttr")
	case key == nil && opts.KeyAttr == "":
		return nil, fmt.Errorf("cluster: a partition key is required: set Key or KeyAttr")
	case opts.KeyAttr != "":
		if opts.Schema == nil {
			return nil, fmt.Errorf("cluster: KeyAttr needs Schema to resolve the attribute")
		}
		if err := shard.Partitionable(pat, opts.Schema, opts.KeyAttr); err != nil {
			return nil, err
		}
		k, err := shard.ByAttrName(opts.Schema, opts.KeyAttr)
		if err != nil {
			return nil, err
		}
		key = k
	}

	sig := signature(pat, opts.Schema)
	in := &Ingress{
		conns:       conns,
		key:         key,
		batch:       opts.Batch,
		sendErr:     make([]error, len(conns)),
		dead:        make([]bool, len(conns)),
		drained:     make([]bool, len(conns)),
		abandoned:   make([]bool, len(conns)),
		nodeShards:  make([]int, len(conns)),
		hosted:      make([]map[int]bool, len(conns)),
		outs:        make([][][]event.Event, len(conns)),
		nodeMetrics: make([]engine.Metrics, len(conns)),
		gotMetrics:  make([]bool, len(conns)),
		finSent:     make([]bool, len(conns)),
		stats:       make([][]wire.ShardStat, len(conns)),
		readerDone:  make([]chan struct{}, len(conns)),
		exitCh:      make(chan struct{}, 1),
		gen:         make([]int, len(conns)),
		pat:         pat,
		schema:      opts.Schema,
		sig:         sig,
	}
	if opts.Elastic != nil {
		ec := *opts.Elastic
		if ec.HotRatio <= 1 {
			ec.HotRatio = 2.0
		}
		if ec.MinWaitP99 <= 0 {
			ec.MinWaitP99 = time.Millisecond
		}
		if ec.CooldownCuts <= 0 {
			ec.CooldownCuts = 16
		}
		in.elastic = &ec
	}
	// Collect every node's greeting, then assign contiguous blocks of the
	// global shard space in connection order.
	for i, c := range conns {
		f, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d hello: %w", i, err)
		}
		h, ok := f.(wire.Hello)
		if !ok {
			return nil, fmt.Errorf("cluster: node %d sent %s, want hello", i, wire.KindOf(f))
		}
		if h.Version != wire.Version {
			return nil, fmt.Errorf("cluster: node %d speaks protocol v%d, ingress v%d", i, h.Version, wire.Version)
		}
		// Fingerprint 0 is a bare node: it has no pattern of its own and
		// adopts the one shipped in the Assign reply. Configured nodes
		// cross-validate.
		if h.PatternSig != 0 && h.PatternSig != sig {
			return nil, fmt.Errorf("cluster: node %d serves a different pattern or schema (fingerprint %x, want %x)", i, h.PatternSig, sig)
		}
		if h.Shards < 1 {
			return nil, fmt.Errorf("cluster: node %d hosts no shards", i)
		}
		// Cap the claimed shard count before it sizes the global
		// shard->node map: a buggy or hostile hello must not be able to
		// force a multi-gigabyte allocation (the same promise the wire
		// codec makes for frame-internal counts).
		if h.Shards > maxShardsPerNode {
			return nil, fmt.Errorf("cluster: node %d claims %d shards, cap is %d", i, h.Shards, maxShardsPerNode)
		}
		in.nodeShards[i] = int(h.Shards)
		in.total += int(h.Shards)
	}
	base := 0
	for i, c := range conns {
		if err := c.Send(wire.Assign{
			Base: uint32(base), Shards: uint32(in.nodeShards[i]), Total: uint32(in.total),
			Pattern: pat, Schema: opts.Schema,
		}); err != nil {
			return nil, fmt.Errorf("cluster: assigning node %d: %w", i, err)
		}
		in.hosted[i] = make(map[int]bool, in.nodeShards[i])
		for s := 0; s < in.nodeShards[i]; s++ {
			in.owner = append(in.owner, i)
			in.hosted[i][base+s] = true
		}
		base += in.nodeShards[i]
	}
	in.bufs = make([][]event.Event, in.total)
	in.spare = make([][]event.Event, in.total)

	deliver := func(t shard.Tagged) {
		if opts.OnMatch != nil {
			opts.OnMatch(t.M)
		}
	}
	if opts.OnTagged != nil {
		deliver = opts.OnTagged
	}
	var progress func(uint64)
	if opts.Recovery != nil {
		rc := *opts.Recovery
		if rc.Window <= 0 {
			rc.Window = pat.Window
		}
		in.rec = &rc
		journal, err := recovery.NewJournal(recovery.JournalConfig{
			Window: rc.Window, Shards: in.total,
			SlackWindows: rc.SlackWindows,
			MaxBytes:     rc.MaxJournalBytes,
		})
		if err != nil {
			return nil, err
		}
		in.journal = journal
		in.det = recovery.NewDetector(len(conns), rc.HeartbeatTimeout)
		progress = func(w uint64) { in.released.Store(w) }
	}
	// Cut-buffer recycling: on a serializing transport the Batch frame
	// is fully encoded onto the wire by the time Send returns, so a
	// cut's event buffer is reusable once its send has been barriered
	// (behind waitSends). The in-process pipe hands the slice to the
	// node by reference — stable for the run, never reused — and the
	// recovery journal retains cut history (and lets shards change
	// owner), so a pipe conn or a configured Recovery disables recycling
	// for the session.
	if in.rec == nil {
		in.recycle = make([]bool, in.total)
		for g, o := range in.owner {
			_, serializing := conns[o].(interface{ SetDecodeArena(*match.Arena) })
			in.recycle[g] = serializing
		}
	}
	in.col = shard.NewCollectorOwned(in.owner, deliver, progress)
	for i, c := range conns {
		done := make(chan struct{})
		in.readerDone[i] = done
		in.readers.Add(1)
		go in.read(i, c, 0, done)
	}
	built = true
	return in, nil
}

// metricsDone reports whether slot i delivered its final metrics (the
// clean-exit marker), synchronized with the reader that records them.
func (in *Ingress) metricsDone(i int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.gotMetrics[i]
}

// read is node slot i's reader goroutine (generation gen): it buffers
// tagged matches and posts them to the merge collector together with
// each completion watermark, applies migration acknowledgements,
// stores the node's load snapshots and final metrics, and on failure
// either queues a suspect for failover (recovery configured, posting
// nothing — the slot will be re-registered) or posts a terminal
// watermark so the merge never deadlocks on a dead node.
func (in *Ingress) read(i int, c Conn, gen int, done chan struct{}) {
	defer func() { // runs last: done is closed by the time the drain wakes
		select {
		case in.exitCh <- struct{}{}:
		default:
		}
	}()
	defer close(done)
	defer in.readers.Done()
	var pend []shard.Tagged
	for {
		f, err := c.Recv()
		if err != nil {
			clean := err == io.EOF && in.metricsDone(i)
			if in.rec != nil && !clean {
				in.suspect(i, gen, fmt.Errorf("cluster: node %d stream: %w", i, err))
				return
			}
			if !clean {
				in.recordErr(fmt.Errorf("cluster: node %d stream: %w", i, err))
			}
			in.col.Post(i, maxSeq, pend)
			return
		}
		in.det.Heard(i)
		switch v := f.(type) {
		case wire.TaggedMatch:
			pend = append(pend, shard.Tagged{M: v.M, Seq: v.Seq, Src: int(v.Shard)})
		case wire.TaggedMatchRaw:
			// Owned-emit match over a reference transport (the pipe): the
			// body is the worker's pre-encoded outbox slice; decode it
			// here. A serializing transport never delivers this frame —
			// its codec reads the identical bytes back as a TaggedMatch.
			m, derr := wire.DecodeMatchBody(v.Body)
			if derr != nil {
				err := fmt.Errorf("cluster: node %d match body: %w", i, derr)
				if in.rec != nil {
					in.suspect(i, gen, err)
					return
				}
				in.recordErr(err)
				in.col.Post(i, maxSeq, pend)
				return
			}
			pend = append(pend, shard.Tagged{M: m, Seq: v.Seq, Src: int(v.Shard)})
		case wire.Watermark:
			in.col.Post(i, v.UpTo, pend)
			pend = nil
		case wire.Heartbeat:
			// Liveness only (recorded above).
		case wire.MigrateAck:
			// The destination caught up to a migration's replay horizon.
			// Flush buffered matches first (watermark 0 never advances a
			// mark) so unfreezing cannot release past a match still
			// sitting in this reader's buffer.
			if len(pend) > 0 {
				in.col.Post(i, 0, pend)
				pend = nil
			}
			in.col.Complete(i, int(v.Shard), v.UpTo)
			in.migrationAcked(i, int(v.Shard))
		case wire.ShardStats:
			in.mu.Lock()
			in.stats[i] = v.Stats
			in.mu.Unlock()
		case wire.Metrics:
			in.mu.Lock()
			in.nodeMetrics[i] = v.M
			in.gotMetrics[i] = true
			in.mu.Unlock()
		default:
			err := fmt.Errorf("cluster: node %d sent unexpected %s frame", i, wire.KindOf(f))
			if in.rec != nil {
				in.suspect(i, gen, err)
				return
			}
			in.recordErr(err)
			in.col.Post(i, maxSeq, pend)
			return
		}
	}
}

// kill records a node's transport failure and closes its connection
// immediately: the node then observes end-of-input and drains instead of
// waiting for cuts that will never come, and the node's reader
// goroutine observes the close and posts its terminal watermark — either
// way the cluster finishes instead of deadlocking on a dead link.
func (in *Ingress) kill(n int, err error) {
	in.recordErr(err)
	in.dead[n] = true
	in.conns[n].Close()
}

func (in *Ingress) recordErr(err error) {
	in.mu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.mu.Unlock()
}

// Err reports the first transport or protocol error observed (nil while
// healthy). Finish returns the same error.
func (in *Ingress) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.err
}

// Process routes one event to its shard. Events must arrive in
// non-decreasing timestamp order with unique, increasing Seq numbers
// (the same contract as the engines underneath).
func (in *Ingress) Process(ev *event.Event) {
	if in.finished {
		panic("cluster: Process after Finish")
	}
	g := shard.GlobalIndex(in.key(ev), in.total)
	in.bufs[g] = append(in.bufs[g], *ev)
	in.lastSeq = ev.Seq
	in.pending++
	if in.pending >= in.batch {
		in.cutAll()
	}
}

// cutAll seals the current cut: the previous cut's pipelined sends are
// barriered first and their failures — together with pending reader
// suspects — handled (so a failover's replay ends at the previous cut
// and this one rides the normal send), the placement controller gets a
// chance to move a shard, the cut is journaled per shard when recovery
// is on, and then every live node's frames — one Batch per owned shard
// with accumulated events, or a bare one carrying just the global
// watermark — are encoded and sent by a per-node goroutine while the
// coordinator goes back to ingesting. A send failure surfaces at the
// next barrier and fails over there; the successor receives the
// journaled cuts through replay.
func (in *Ingress) cutAll() {
	in.waitSends()
	in.checkSuspects()
	in.rebalance()
	if in.journal != nil {
		in.journal.Advance(in.released.Load())
		in.journal.Append(in.bufs, in.lastSeq)
	}
	upTo := in.lastSeq
	for n := range in.outs {
		in.outs[n] = in.outs[n][:0]
	}
	for g := range in.bufs {
		evs := in.bufs[g]
		in.bufs[g] = nil
		if in.recycle != nil && in.recycle[g] {
			// Hand the next cut the previous cut's buffer (its send
			// completed at the barrier above) and queue this one.
			in.bufs[g] = in.spare[g][:0]
			in.spare[g] = evs
		}
		o := in.owner[g]
		if o < 0 || in.dead[o] || in.drained[o] || len(evs) == 0 {
			continue
		}
		in.outs[o] = append(in.outs[o], evs)
	}
	for n, c := range in.conns {
		if in.dead[n] || in.drained[n] {
			continue
		}
		in.det.Sent(n)
		in.sendWG.Add(1)
		go func(n int, c Conn, slices [][]event.Event) {
			defer in.sendWG.Done()
			// Events-only frames (UpTo 0), one per owned shard with
			// traffic, then the cut's single watermark frame: the node
			// reassembles the runs into seq order and seals its cut only
			// when the watermark arrives, so a cut split across shards
			// can never publish a watermark ahead of its own events.
			for _, evs := range slices {
				if err := c.Send(wire.Batch{Events: evs}); err != nil {
					in.sendErr[n] = err
					return
				}
			}
			if err := c.Send(wire.Batch{UpTo: upTo}); err != nil {
				in.sendErr[n] = err
			}
		}(n, c, in.outs[n])
	}
	in.pending = 0
}

// waitSends is the pipeline barrier: it blocks until the in-flight cut's
// sends complete and routes any send failure into the failover (or
// record-and-drain) path. All connection and routing mutation — close,
// replace, migrate, replay — happens behind this barrier, which is what
// keeps per-node frame order and the one-writer-per-connection
// discipline intact.
func (in *Ingress) waitSends() {
	in.sendWG.Wait()
	for n, err := range in.sendErr {
		if err == nil {
			continue
		}
		in.sendErr[n] = nil
		if !in.dead[n] {
			in.fail(n, fmt.Errorf("cluster: sending cut to node %d: %w", n, err))
		}
	}
}

// ownedShards lists the global shards currently owned by slot n.
// Ingress goroutine only.
func (in *Ingress) ownedShards(n int) []int {
	var owned []int
	for g, o := range in.owner {
		if o == n {
			owned = append(owned, g)
		}
	}
	return owned
}

// migrateShard is the one primitive every routing change is built from:
// it freezes shard g at the merge collector (capturing the release
// boundary), flips its owner to slot `to`, ships the Migrate frame with
// the suppress boundary and replay horizon, and replays g's journaled
// history to the destination. Failover, rebalance, scale-out handoff
// and drain are all callers. Must run on the ingress goroutine behind
// the send barrier; fidx >= 0 folds the move into that failover record.
// On error the destination is in an unknown state — the caller routes
// it into the failure path (and aborted in-flight records are dropped
// there).
func (in *Ingress) migrateShard(g, to int, reason string, fidx int) error {
	if in.hosted[to][g] {
		return fmt.Errorf("cluster: node %d already hosted shard %d this session; migrating it back would double-process", to, g)
	}
	if err := in.journal.CoveredShard(g); err != nil {
		return err
	}
	from := in.owner[g]
	boundary := in.col.Migrate(g, to)
	in.owner[g] = to
	in.hosted[to][g] = true
	replayUpTo := in.journal.ReplayUpToShard(g)
	// Register the record before the replay: the destination's ack races
	// with the tail of the replay loop, and an ack that finds no record
	// would leave the migration in flight forever.
	in.mu.Lock()
	in.migrations = append(in.migrations, recovery.Migration{
		Shard: g, From: from, To: to, Reason: reason,
		StartedAt: time.Now(), SuppressUpTo: boundary, ReplayUpTo: replayUpTo,
	})
	in.migFailover = append(in.migFailover, fidx)
	idx := len(in.migrations) - 1
	if fidx >= 0 {
		f := &in.failovers[fidx]
		f.Shards++
		if boundary > f.SuppressUpTo {
			f.SuppressUpTo = boundary
		}
		if replayUpTo > f.ReplayUpTo {
			f.ReplayUpTo = replayUpTo
		}
	}
	in.mu.Unlock()
	c := in.conns[to]
	in.det.Sent(to)
	if err := c.Send(wire.Migrate{Shard: uint32(g), SuppressUpTo: boundary, ReplayUpTo: replayUpTo}); err != nil {
		return fmt.Errorf("cluster: migrating shard %d to node %d: %w", g, to, err)
	}
	var cuts, events int
	var bytes int64
	rerr := in.journal.ReplayShard(g, func(evs []event.Event, upTo uint64) error {
		in.det.Sent(to)
		if err := c.Send(wire.Batch{UpTo: upTo, Events: evs}); err != nil {
			return err
		}
		cuts++
		events += len(evs)
		bytes += recovery.EventsBytes(evs)
		return nil
	})
	in.mu.Lock()
	m := &in.migrations[idx]
	m.ReplayCuts, m.ReplayEvents, m.ReplayBytes = cuts, events, bytes
	if fidx >= 0 {
		f := &in.failovers[fidx]
		f.ReplayCuts += cuts
		f.ReplayEvents += events
		f.ReplayBytes += bytes
	}
	in.mu.Unlock()
	if rerr != nil {
		return fmt.Errorf("cluster: replaying shard %d to node %d: %w", g, to, rerr)
	}
	return nil
}

// routeBroadcast ships the current shard->slot owner table to every
// live node (abandoned shards carry ^uint32(0)). Advisory for the
// nodes — ownership semantics ride the Migrate frames — but it keeps
// every member's picture of the routing current. Ingress goroutine,
// behind the barrier; a send failure is parked in sendErr and handled
// at the next waitSends.
func (in *Ingress) routeBroadcast() {
	route := wire.ShardRoute{Owner: make([]uint32, len(in.owner))}
	for g, o := range in.owner {
		if o < 0 {
			route.Owner[g] = ^uint32(0)
		} else {
			route.Owner[g] = uint32(o)
		}
	}
	for n, c := range in.conns {
		if in.dead[n] || in.drained[n] {
			continue
		}
		if err := c.Send(route); err != nil {
			if in.sendErr[n] == nil {
				in.sendErr[n] = err
			}
			continue
		}
		in.det.Sent(n)
	}
}

// migrationAcked stamps the youngest in-flight migration of shard g to
// slot n complete, and — when the move belonged to a failover — counts
// it toward the failover's recovery, stamping RecoveredAt when the
// last migrated shard has acknowledged. Reader goroutines.
func (in *Ingress) migrationAcked(n, g int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := len(in.migrations) - 1; i >= 0; i-- {
		m := &in.migrations[i]
		if m.Shard != g || m.To != n || !m.CompletedAt.IsZero() {
			continue
		}
		m.CompletedAt = time.Now()
		if fi := in.migFailover[i]; fi >= 0 {
			in.facked[fi]++
			if in.facked[fi] >= in.failovers[fi].Shards {
				// The final ack wins: an adoption retry resets the
				// aggregates and this overwrites any premature stamp.
				in.failovers[fi].RecoveredAt = time.Now()
			}
		}
		return
	}
}

// rebalance is the placement controller, run once per cut behind the
// barrier: when the hottest node's max owned-shard queue-wait p99
// exceeds both the absolute floor and HotRatio times the coolest
// node's, the hottest node's busiest shard migrates to the coolest
// node. Hysteresis plus the cut cooldown (and never moving while any
// migration is still in flight) keep it from thrashing.
func (in *Ingress) rebalance() {
	if in.journal == nil || in.elastic == nil || !in.elastic.Rebalance {
		return
	}
	in.cutsSinceMove++
	if in.cutsSinceMove < in.elastic.CooldownCuts {
		return
	}
	waits := make([]time.Duration, in.total)
	events := make([]uint64, in.total)
	in.mu.Lock()
	for _, m := range in.migrations {
		if m.CompletedAt.IsZero() {
			in.mu.Unlock()
			return
		}
	}
	for n, ss := range in.stats {
		for _, s := range ss {
			g := int(s.Shard)
			if g < 0 || g >= in.total || in.owner[g] != n {
				continue // stale: reported by a slot that no longer owns g
			}
			waits[g] = time.Duration(s.P99Nanos)
			events[g] = s.Events
		}
	}
	in.mu.Unlock()
	ownedCount := make([]int, len(in.conns))
	for _, o := range in.owner {
		if o >= 0 {
			ownedCount[o]++
		}
	}
	hot, cold := -1, -1
	var hotLoad, coldLoad time.Duration
	for n := range in.conns {
		if in.dead[n] || in.drained[n] || in.abandoned[n] {
			continue
		}
		var load time.Duration
		for g, o := range in.owner {
			if o == n && waits[g] > load {
				load = waits[g]
			}
		}
		if hot < 0 || load > hotLoad {
			hot, hotLoad = n, load
		}
		if cold < 0 || load < coldLoad {
			cold, coldLoad = n, load
		}
	}
	if hot < 0 || cold < 0 || hot == cold {
		return
	}
	if hotLoad <= in.elastic.MinWaitP99 {
		return
	}
	if float64(hotLoad) <= in.elastic.HotRatio*float64(coldLoad) {
		return
	}
	// Never empty the hot node unless the cold one has nothing: moving a
	// sole shard between two busy nodes just relocates the hotspot.
	if ownedCount[hot] < 2 && ownedCount[cold] != 0 {
		return
	}
	pick := -1
	var pickEv uint64
	for g, o := range in.owner {
		if o != hot || in.hosted[cold][g] {
			continue
		}
		if in.journal.CoveredShard(g) != nil {
			continue
		}
		if pick < 0 || events[g] > pickEv {
			pick, pickEv = g, events[g]
		}
	}
	if pick < 0 {
		return
	}
	reason := "rebalance"
	if ownedCount[cold] == 0 {
		reason = "join"
	}
	if err := in.migrateShard(pick, cold, reason, -1); err != nil {
		if in.sendErr[cold] == nil {
			in.sendErr[cold] = err
		}
	} else {
		in.routeBroadcast()
	}
	in.cutsSinceMove = 0
}

// AddNode admits a freshly dialed node into the running cluster: it
// runs the hello/assign handshake (the node joins with zero shards and
// a total-sized engine), registers the new slot's reader and heartbeat
// clock, and returns the slot index. The placement controller (or an
// explicit MigrateShard) hands it work. Requires Recovery; must be
// called from the Process goroutine. The connection is closed on error.
func (in *Ingress) AddNode(c Conn) (int, error) {
	if in.finished {
		c.Close()
		return -1, fmt.Errorf("cluster: AddNode after Finish")
	}
	if in.rec == nil {
		c.Close()
		return -1, fmt.Errorf("cluster: AddNode requires Recovery (the journal feeds shard handoff)")
	}
	in.waitSends()
	f, err := c.Recv()
	if err != nil {
		c.Close()
		return -1, fmt.Errorf("cluster: joining node hello: %w", err)
	}
	h, ok := f.(wire.Hello)
	if !ok {
		c.Close()
		return -1, fmt.Errorf("cluster: joining node sent %s, want hello", wire.KindOf(f))
	}
	if h.Version != wire.Version {
		c.Close()
		return -1, fmt.Errorf("cluster: joining node speaks protocol v%d, ingress v%d", h.Version, wire.Version)
	}
	if h.PatternSig != 0 && h.PatternSig != in.sig {
		c.Close()
		return -1, fmt.Errorf("cluster: joining node serves a different pattern or schema (fingerprint %x, want %x)", h.PatternSig, in.sig)
	}
	if err := c.Send(wire.Assign{
		Base: 0, Shards: 0, Total: uint32(in.total),
		Pattern: in.pat, Schema: in.schema,
	}); err != nil {
		c.Close()
		return -1, fmt.Errorf("cluster: assigning joining node: %w", err)
	}
	n := len(in.conns)
	in.conns = append(in.conns, c)
	in.sendErr = append(in.sendErr, nil)
	in.dead = append(in.dead, false)
	in.drained = append(in.drained, false)
	in.abandoned = append(in.abandoned, false)
	in.nodeShards = append(in.nodeShards, 0)
	in.finSent = append(in.finSent, false)
	in.hosted = append(in.hosted, map[int]bool{})
	in.outs = append(in.outs, nil)
	done := make(chan struct{})
	in.readerDone = append(in.readerDone, done)
	in.mu.Lock()
	in.gen = append(in.gen, 0)
	in.nodeMetrics = append(in.nodeMetrics, engine.Metrics{})
	in.gotMetrics = append(in.gotMetrics, false)
	in.stats = append(in.stats, nil)
	in.mu.Unlock()
	in.det.Grow()
	in.readers.Add(1)
	go in.read(n, c, 0, done)
	return n, nil
}

// Drain gracefully empties node slot n: every shard it owns migrates
// to a live peer (round-robin, skipping peers whose session already
// hosted the shard), then the node gets its Finish frame and reports
// final metrics while the rest of the cluster keeps running. Requires
// Recovery; must be called from the Process goroutine.
func (in *Ingress) Drain(n int) error {
	if in.finished {
		return fmt.Errorf("cluster: Drain after Finish")
	}
	if in.rec == nil {
		return fmt.Errorf("cluster: Drain requires Recovery (migrations replay from the journal)")
	}
	if n < 0 || n >= len(in.conns) {
		return fmt.Errorf("cluster: Drain: no node slot %d", n)
	}
	in.waitSends()
	in.checkSuspects()
	if in.dead[n] {
		return fmt.Errorf("cluster: Drain: node %d is dead", n)
	}
	if in.drained[n] {
		return fmt.Errorf("cluster: Drain: node %d already drained", n)
	}
	owned := in.ownedShards(n)
	var targets []int
	for m := range in.conns {
		if m != n && !in.dead[m] && !in.drained[m] && !in.abandoned[m] {
			targets = append(targets, m)
		}
	}
	if len(owned) > 0 && len(targets) == 0 {
		return fmt.Errorf("cluster: draining node %d: no live node can take its shards", n)
	}
	ti := 0
	for _, g := range owned {
		pick := -1
		for k := 0; k < len(targets); k++ {
			t := targets[(ti+k)%len(targets)]
			if !in.hosted[t][g] {
				pick = t
				ti = (ti + k + 1) % len(targets)
				break
			}
		}
		if pick < 0 {
			return fmt.Errorf("cluster: draining node %d: every live node already hosted shard %d this session", n, g)
		}
		if err := in.migrateShard(g, pick, "drain", -1); err != nil {
			if in.sendErr[pick] == nil {
				in.sendErr[pick] = err
			}
			return err
		}
	}
	if len(owned) > 0 {
		in.routeBroadcast()
	}
	if err := in.conns[n].Send(wire.Finish{}); err != nil {
		// The shards are already safe on their new owners; the node's
		// death at this point is a benign failover.
		in.fail(n, fmt.Errorf("cluster: finishing drained node %d: %w", n, err))
		return nil
	}
	in.det.Sent(n)
	in.finSent[n] = true
	in.drained[n] = true
	return nil
}

// MigrateShard moves one shard to node slot `to` on demand — the
// manual override of the placement controller. Requires Recovery; must
// be called from the Process goroutine.
func (in *Ingress) MigrateShard(g, to int) error {
	if in.finished {
		return fmt.Errorf("cluster: MigrateShard after Finish")
	}
	if in.journal == nil {
		return fmt.Errorf("cluster: MigrateShard requires Recovery (migrations replay from the journal)")
	}
	if g < 0 || g >= in.total {
		return fmt.Errorf("cluster: MigrateShard: no shard %d", g)
	}
	if to < 0 || to >= len(in.conns) {
		return fmt.Errorf("cluster: MigrateShard: no node slot %d", to)
	}
	in.waitSends()
	in.checkSuspects()
	if in.dead[to] || in.drained[to] || in.abandoned[to] {
		return fmt.Errorf("cluster: MigrateShard: node %d cannot take shards", to)
	}
	if in.owner[g] == to {
		return fmt.Errorf("cluster: MigrateShard: node %d already owns shard %d", to, g)
	}
	reason := "rebalance"
	if len(in.ownedShards(to)) == 0 {
		reason = "join"
	}
	if err := in.migrateShard(g, to, reason, -1); err != nil {
		if in.sendErr[to] == nil {
			in.sendErr[to] = err
		}
		return err
	}
	in.routeBroadcast()
	return nil
}

// Migrations reports every shard move so far (completed and in
// flight), oldest first.
func (in *Ingress) Migrations() []recovery.Migration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]recovery.Migration(nil), in.migrations...)
}

// Owners snapshots the shard->slot routing table (-1: abandoned).
// Process goroutine.
func (in *Ingress) Owners() []int {
	return append([]int(nil), in.owner...)
}

// NodeStats snapshots the latest per-shard load report of every node
// slot (nil for a slot that has not reported yet — a dead node, or one
// whose shards have seen no traffic). This is the placement
// controller's input, exposed so operators and benchmarks can observe
// when load telemetry has actually arrived: stats ride the node's
// upstream frame flow, so a coordinator far ahead of its workers sees
// them lag.
func (in *Ingress) NodeStats() [][]wire.ShardStat {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([][]wire.ShardStat, len(in.stats))
	for i, ss := range in.stats {
		if len(ss) > 0 {
			out[i] = append([]wire.ShardStat(nil), ss...)
		}
	}
	return out
}

// finishNodes delivers the Finish frame to every live node that has not
// received one, failing over (and retrying the successor) on send
// errors. Terminates because every failed attempt either consumes a
// standby or degrades the slot.
func (in *Ingress) finishNodes() {
	for again := true; again; {
		again = false
		for n, c := range in.conns {
			if in.dead[n] || in.finSent[n] {
				continue
			}
			if err := c.Send(wire.Finish{}); err != nil {
				in.fail(n, fmt.Errorf("cluster: finishing node %d: %w", n, err))
				again = true
				continue
			}
			in.det.Sent(n)
			in.finSent[n] = true
		}
	}
}

// Finish flushes the final partial cut, tells every node to finish,
// waits until every node's matches have been merged and delivered, and
// closes the connections. With recovery configured, nodes that die
// during the drain still fail over: their successors replay, finish and
// deliver the missing tail before the merge closes. It returns the
// first unrecovered error observed anywhere in the cluster session (nil
// for a clean or fully recovered run). Idempotent.
func (in *Ingress) Finish() error {
	if in.finished {
		return in.Err()
	}
	in.finished = true
	in.cutAll()
	// Barrier the final cut's pipelined sends before the Finish frames:
	// per-node ordering requires the last Batch to hit the wire first,
	// and a send failure must fail over before the drain begins.
	in.waitSends()
	in.finishNodes()
	if in.rec == nil {
		in.readers.Wait()
	} else {
		in.drainRecovered()
	}
	in.col.Close()
	for _, c := range in.conns {
		c.Close()
	}
	return in.Err()
}

// Nodes reports the node slot count (live, drained and dead slots
// included).
func (in *Ingress) Nodes() int { return len(in.conns) }

// TotalShards reports the global shard count across all nodes.
func (in *Ingress) TotalShards() int { return in.total }

// Metrics merges every node's engine metrics into one cluster-wide view.
// Call after Finish.
func (in *Ingress) Metrics() engine.Metrics {
	in.mu.Lock()
	defer in.mu.Unlock()
	var m engine.Metrics
	for i := range in.nodeMetrics {
		if in.gotMetrics[i] {
			m.Merge(in.nodeMetrics[i])
		}
	}
	return m
}

// NodeMetrics is the per-node breakdown behind Metrics (zero-valued for
// nodes that failed before reporting). Call after Finish.
func (in *Ingress) NodeMetrics() []engine.Metrics {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]engine.Metrics, len(in.nodeMetrics))
	copy(out, in.nodeMetrics)
	return out
}
