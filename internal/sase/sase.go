// Package sase parses the SASE-style textual pattern syntax the paper
// uses in its examples (§2.1):
//
//	PATTERN SEQ(A a, B b, C c)
//	WHERE a.person_id = b.person_id AND b.person_id = c.person_id
//	WITHIN 10 minutes
//
// Supported grammar (case-insensitive keywords):
//
//	pattern  := "PATTERN" op "(" events ")" [ "WHERE" conds ] "WITHIN" dur
//	op       := "SEQ" | "AND"
//	events   := event { "," event }
//	event    := [ "~" ] TypeName [ "+" ] alias        (~ negation, + Kleene)
//	conds    := cond { "AND" cond }
//	cond     := operand cmp operand
//	          | "|" ref "-" ref "|" "<" number        (absolute difference)
//	operand  := ref [ ("+"|"-") number ] | number
//	ref      := alias "." attribute
//	cmp      := "=" | "!=" | "<" | "<=" | ">" | ">="
//	dur      := number unit ; unit := "ms" | "s" | "sec" | "seconds"
//	          | "m" | "min" | "minute" | "minutes"
//
// One side of a condition must be an event reference. Disjunctions are
// composed programmatically with pattern.NewOr over parsed sub-patterns.
package sase

import (
	"fmt"
	"strconv"
	"strings"

	"acep/internal/event"
	"acep/internal/pattern"
)

// Parse compiles a SASE-style pattern specification against the schema.
func Parse(schema *event.Schema, src string) (*pattern.Pattern, error) {
	p := &parser{toks: lex(src), schema: schema}
	pat, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("sase: %w", err)
	}
	return pat, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(schema *event.Schema, src string) *pattern.Pattern {
	p, err := Parse(schema, src)
	if err != nil {
		panic(err)
	}
	return p
}

// token kinds
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct // single punctuation rune or two-rune comparison
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tNumber, src[i:j], i})
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i + 1
			for j < len(src) && (src[j] == '_' || src[j] >= 'a' && src[j] <= 'z' ||
				src[j] >= 'A' && src[j] <= 'Z' || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], i})
			i = j
		case (c == '<' || c == '>' || c == '!') && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{tPunct, src[i : i+2], i})
			i += 2
		default:
			toks = append(toks, token{tPunct, string(c), i})
			i++
		}
	}
	toks = append(toks, token{tEOF, "", len(src)})
	return toks
}

type parser struct {
	toks   []token
	i      int
	schema *event.Schema
	// alias -> position index
	aliases map[string]int
	// declTypes[pos] is the event type declared at each position.
	declTypes []int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("at offset %d: "+format, append([]interface{}{p.cur().pos}, args...)...)
}

// expectIdent consumes an identifier, optionally requiring a specific
// (case-insensitive) keyword.
func (p *parser) expectIdent(keyword string) (string, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", p.errf("expected %s, got %q", orWord(keyword, "identifier"), t.text)
	}
	if keyword != "" && !strings.EqualFold(t.text, keyword) {
		return "", p.errf("expected %q, got %q", keyword, t.text)
	}
	p.i++
	return t.text, nil
}

func orWord(kw, fallback string) string {
	if kw != "" {
		return fmt.Sprintf("%q", kw)
	}
	return fallback
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tPunct || t.text != s {
		return p.errf("expected %q, got %q", s, t.text)
	}
	p.i++
	return nil
}

func (p *parser) parse() (*pattern.Pattern, error) {
	if _, err := p.expectIdent("PATTERN"); err != nil {
		return nil, err
	}
	opName, err := p.expectIdent("")
	if err != nil {
		return nil, err
	}
	var op pattern.Op
	switch strings.ToUpper(opName) {
	case "SEQ":
		op = pattern.Seq
	case "AND":
		op = pattern.And
	default:
		return nil, p.errf("unsupported operator %q (want SEQ or AND)", opName)
	}

	// The window is parsed last but the builder needs it up front; use a
	// placeholder and patch afterwards by rebuilding. Simpler: collect
	// declarations first, then build once WITHIN is known.
	type eventDecl struct {
		typeID      int
		alias       string
		neg, kleene bool
	}
	var decls []eventDecl
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	p.aliases = make(map[string]int)
	for {
		var d eventDecl
		if p.cur().kind == tPunct && p.cur().text == "~" {
			d.neg = true
			p.i++
		}
		typeName, err := p.expectIdent("")
		if err != nil {
			return nil, err
		}
		id, ok := p.schema.TypeByName(typeName)
		if !ok {
			return nil, p.errf("unknown event type %q", typeName)
		}
		d.typeID = id
		if p.cur().kind == tPunct && p.cur().text == "+" {
			d.kleene = true
			p.i++
		}
		alias, err := p.expectIdent("")
		if err != nil {
			return nil, err
		}
		if _, dup := p.aliases[alias]; dup {
			return nil, p.errf("duplicate alias %q", alias)
		}
		p.aliases[alias] = len(decls)
		p.declTypes = append(p.declTypes, d.typeID)
		decls = append(decls, d)
		if p.cur().kind == tPunct && p.cur().text == "," {
			p.i++
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}

	// Conditions are parsed into closures applied after the builder
	// exists (the window comes last in the grammar).
	var conds []func(b *pattern.Builder) error
	if p.cur().kind == tIdent && strings.EqualFold(p.cur().text, "WHERE") {
		p.i++
		for {
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			conds = append(conds, cond)
			if p.cur().kind == tIdent && strings.EqualFold(p.cur().text, "AND") {
				p.i++
				continue
			}
			break
		}
	}

	if _, err := p.expectIdent("WITHIN"); err != nil {
		return nil, err
	}
	window, err := p.parseDuration()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}

	b := pattern.NewBuilder(p.schema, op, window)
	for _, d := range decls {
		pos := b.Event(d.typeID)
		if d.neg {
			b.Negate(pos)
		}
		if d.kleene {
			b.Kleene(pos)
		}
	}
	for _, apply := range conds {
		if err := apply(b); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// parseDuration reads "number unit" into a logical-millisecond window.
func (p *parser) parseDuration() (event.Time, error) {
	v, err := p.parseNumber()
	if err != nil {
		return 0, err
	}
	unitName, err := p.expectIdent("")
	if err != nil {
		return 0, err
	}
	var unit event.Time
	switch strings.ToLower(unitName) {
	case "ms", "millis", "milliseconds":
		unit = event.Millisecond
	case "s", "sec", "second", "seconds":
		unit = event.Second
	case "m", "min", "minute", "minutes":
		unit = event.Minute
	default:
		return 0, p.errf("unknown time unit %q", unitName)
	}
	w := event.Time(v * float64(unit))
	if w <= 0 {
		return 0, p.errf("window must be positive")
	}
	return w, nil
}

// ref is a parsed alias.attribute reference.
type ref struct {
	pos  int
	attr string
}

func (p *parser) parseRef() (ref, error) {
	alias, err := p.expectIdent("")
	if err != nil {
		return ref{}, err
	}
	pos, ok := p.aliases[alias]
	if !ok {
		return ref{}, p.errf("unknown alias %q", alias)
	}
	if err := p.expectPunct("."); err != nil {
		return ref{}, err
	}
	attr, err := p.expectIdent("")
	if err != nil {
		return ref{}, err
	}
	return ref{pos: pos, attr: attr}, nil
}

func (p *parser) parseNumber() (float64, error) {
	neg := false
	if p.cur().kind == tPunct && p.cur().text == "-" {
		neg = true
		p.i++
	}
	t := p.cur()
	if t.kind != tNumber {
		return 0, p.errf("expected number, got %q", t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf("bad number %q", t.text)
	}
	p.i++
	if neg {
		v = -v
	}
	return v, nil
}

func cmpFromText(s string) (pattern.CmpOp, bool) {
	switch s {
	case "=":
		return pattern.EQ, true
	case "!=":
		return pattern.NE, true
	case "<":
		return pattern.LT, true
	case "<=":
		return pattern.LE, true
	case ">":
		return pattern.GT, true
	case ">=":
		return pattern.GE, true
	}
	return 0, false
}

// parseCond parses one comparison and returns a closure that adds the
// predicate to a builder.
func (p *parser) parseCond() (func(b *pattern.Builder) error, error) {
	// Absolute-difference form: | a.x - b.y | < c
	if p.cur().kind == tPunct && p.cur().text == "|" {
		p.i++
		l, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("-"); err != nil {
			return nil, err
		}
		r, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("|"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("<"); err != nil {
			return nil, err
		}
		c, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return func(b *pattern.Builder) error {
			b.WherePred(pattern.Pred{
				L: l.pos, AttrL: p.attrIndex(l),
				R: r.pos, AttrR: p.attrIndex(r),
				Op: pattern.AbsDiffLT, C: c,
			})
			return nil
		}, nil
	}

	left, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	op, ok := cmpFromText(t.text)
	if t.kind != tPunct || !ok {
		return nil, p.errf("expected comparison operator, got %q", t.text)
	}
	p.i++

	// Right side: number, or ref [± number].
	if p.cur().kind == tNumber || p.cur().kind == tPunct && p.cur().text == "-" {
		c, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return func(b *pattern.Builder) error {
			b.WherePred(pattern.Pred{
				L: left.pos, AttrL: p.attrIndex(left),
				R: pattern.Unary, Op: op, C: c,
			})
			return nil
		}, nil
	}
	right, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	c := 0.0
	if p.cur().kind == tPunct && (p.cur().text == "+" || p.cur().text == "-") {
		sign := 1.0
		if p.cur().text == "-" {
			sign = -1
		}
		p.i++
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		c = sign * v
	}
	return func(b *pattern.Builder) error {
		b.WherePred(pattern.Pred{
			L: left.pos, AttrL: p.attrIndex(left),
			R: right.pos, AttrR: p.attrIndex(right),
			Op: op, C: c,
		})
		return nil
	}, nil
}

// attrIndex resolves an attribute name against the referenced position's
// declared type; an unknown name maps to -1, which the builder's
// validation rejects with a position-specific error.
func (p *parser) attrIndex(r ref) int {
	idx, ok := p.schema.AttrIndex(p.declTypes[r.pos], r.attr)
	if !ok {
		return -1
	}
	return idx
}
