package sase

import (
	"testing"

	"acep/internal/event"
	"acep/internal/pattern"
)

func testSchema() *event.Schema {
	s := event.NewSchema()
	s.MustAddType("A", "person_id", "x")
	s.MustAddType("B", "person_id", "x")
	s.MustAddType("C", "person_id", "x")
	return s
}

func TestParsePaperExample(t *testing.T) {
	s := testSchema()
	p, err := Parse(s, `
		PATTERN SEQ(A a, B b, C c)
		WHERE a.person_id = b.person_id AND b.person_id = c.person_id
		WITHIN 10 minutes`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != pattern.Seq || p.NumPositions() != 3 {
		t.Fatalf("shape: %v", p)
	}
	if p.Window != 10*event.Minute {
		t.Fatalf("window = %d", p.Window)
	}
	if len(p.Preds) != 2 {
		t.Fatalf("preds = %d", len(p.Preds))
	}
	pr := p.Preds[0]
	if pr.L != 0 || pr.R != 1 || pr.Op != pattern.EQ {
		t.Fatalf("pred0 = %v", pr)
	}
}

func TestParseModifiers(t *testing.T) {
	s := testSchema()
	p := MustParse(s, `PATTERN SEQ(A a, ~B b, C+ c) WHERE b.x = a.x WITHIN 5 s`)
	if !p.Positions[1].Neg {
		t.Fatal("negation not parsed")
	}
	if !p.Positions[2].Kleene {
		t.Fatal("kleene not parsed")
	}
	if p.Size() != 2 {
		t.Fatalf("size = %d", p.Size())
	}
}

func TestParseAndOperator(t *testing.T) {
	s := testSchema()
	p := MustParse(s, `PATTERN AND(A a, B b) WITHIN 100 ms`)
	if p.Op != pattern.And || p.Window != 100 {
		t.Fatalf("%v", p)
	}
}

func TestParseConditionForms(t *testing.T) {
	s := testSchema()
	p := MustParse(s, `
		PATTERN SEQ(A a, B b)
		WHERE a.x < b.x + 3 AND a.x >= 10 AND |a.x - b.x| < 5 AND a.x != b.x - 2.5
		WITHIN 1 minute`)
	if len(p.Preds) != 4 {
		t.Fatalf("preds = %d", len(p.Preds))
	}
	if p.Preds[0].Op != pattern.LT || p.Preds[0].C != 3 {
		t.Fatalf("pred0 = %v", p.Preds[0])
	}
	if !p.Preds[1].IsUnary() || p.Preds[1].Op != pattern.GE || p.Preds[1].C != 10 {
		t.Fatalf("pred1 = %v", p.Preds[1])
	}
	if p.Preds[2].Op != pattern.AbsDiffLT || p.Preds[2].C != 5 {
		t.Fatalf("pred2 = %v", p.Preds[2])
	}
	if p.Preds[3].Op != pattern.NE || p.Preds[3].C != -2.5 {
		t.Fatalf("pred3 = %v", p.Preds[3])
	}
	// Evaluate one to be sure wiring is right: a.x < b.x + 3.
	ea := &event.Event{Attrs: []float64{0, 4}}
	eb := &event.Event{Attrs: []float64{0, 2}}
	if !p.Preds[0].Eval(ea, eb) { // 4 < 2+3
		t.Fatal("pred0 evaluation wrong")
	}
}

func TestParseNegativeConstant(t *testing.T) {
	s := testSchema()
	p := MustParse(s, `PATTERN SEQ(A a) WHERE a.x > -4 WITHIN 1 s`)
	if p.Preds[0].C != -4 {
		t.Fatalf("C = %g", p.Preds[0].C)
	}
}

func TestParseDurationUnits(t *testing.T) {
	s := testSchema()
	cases := map[string]event.Time{
		"250 ms":      250,
		"2 s":         2000,
		"1.5 seconds": 1500,
		"3 min":       3 * event.Minute,
	}
	for src, want := range cases {
		p := MustParse(s, "PATTERN SEQ(A a, B b) WITHIN "+src)
		if p.Window != want {
			t.Errorf("%q: window = %d; want %d", src, p.Window, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	s := testSchema()
	cases := []string{
		"",
		"SEQ(A a) WITHIN 1 s",                                    // missing PATTERN
		"PATTERN OR(A a, B b) WITHIN 1 s",                        // unsupported op
		"PATTERN SEQ(Z z) WITHIN 1 s",                            // unknown type
		"PATTERN SEQ(A a, A a) WITHIN 1 s",                       // duplicate alias
		"PATTERN SEQ(A a, B b WITHIN 1 s",                        // missing paren
		"PATTERN SEQ(A a) WHERE q.x = a.x WITHIN 1 s",            // unknown alias
		"PATTERN SEQ(A a) WHERE a.nope = 3 WITHIN 1 s",           // unknown attr
		"PATTERN SEQ(A a, B b) WHERE a.x ~ b.x WITHIN 1 s",       // bad operator
		"PATTERN SEQ(A a) WITHIN 1 fortnight",                    // bad unit
		"PATTERN SEQ(A a) WITHIN -1 s",                           // nonpositive window
		"PATTERN SEQ(A a) WITHIN 1 s trailing",                   // trailing input
		"PATTERN SEQ(A a, B b) WHERE |a.x + b.x| < 5 WITHIN 1 s", // bad abs form
		"PATTERN SEQ(~A+ a) WITHIN 1 s",                          // neg+kleene rejected by builder
		"PATTERN SEQ(A a) WHERE a.x < WITHIN 1 s",                // missing operand
	}
	for _, src := range cases {
		if _, err := Parse(s, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	s := testSchema()
	p := MustParse(s, `pattern seq(A a, B b) where a.x = b.x within 1 minute`)
	if p.Op != pattern.Seq || len(p.Preds) != 1 {
		t.Fatalf("%v", p)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse(testSchema(), "garbage")
}
