package sase

import (
	"strings"
	"testing"

	"acep/internal/event"
)

// fuzzSchema is the schema every fuzz input is parsed against: a few
// types with attributes, covering aliasable names the seed corpus uses.
func fuzzSchema() *event.Schema {
	s := event.NewSchema()
	s.MustAddType("A", "x", "y", "person_id")
	s.MustAddType("B", "x", "y", "person_id")
	s.MustAddType("C", "x", "y", "person_id")
	s.MustAddType("Peak", "height")
	return s
}

// FuzzParse asserts the parser's crash-safety contract: for arbitrary
// input, Parse returns a pattern or an error — it never panics, and it
// never returns both nil and no error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// The grammar's happy paths.
		"PATTERN SEQ(A a, B b, C c) WHERE a.person_id = b.person_id AND b.person_id = c.person_id WITHIN 10 minutes",
		"PATTERN AND(A a, B b) WHERE a.x < b.x + 5 WITHIN 3 s",
		"PATTERN SEQ(A a, ~B b, C c) WHERE a.x = c.x WITHIN 100 ms",
		"PATTERN SEQ(A a, B+ b, C c) WHERE a.y >= c.y WITHIN 1 m",
		"PATTERN SEQ(A a, B b) WHERE | a.x - b.x | < 2.5 WITHIN 5 sec",
		"PATTERN SEQ(A a, B b) WHERE a.x != -3.5 WITHIN 2 minutes",
		"PATTERN SEQ(Peak p) WHERE p.height > 100 WITHIN 1 min",
		// Durations, negatives, fractions.
		"PATTERN SEQ(A a) WITHIN 0.5 s",
		"PATTERN SEQ(A a) WITHIN -5 s",
		"PATTERN SEQ(A a) WITHIN 999999999999999999999 minutes",
		// Malformed inputs the parser must reject gracefully.
		"",
		"PATTERN",
		"PATTERN SEQ(",
		"PATTERN SEQ(A a",
		"PATTERN SEQ(A a, A a) WITHIN 1 s",
		"PATTERN OR(A a) WITHIN 1 s",
		"PATTERN SEQ(~A+ a) WITHIN 1 s",
		"PATTERN SEQ(A a) WHERE WITHIN 1 s",
		"PATTERN SEQ(A a) WHERE a.x WITHIN 1 s",
		"PATTERN SEQ(A a) WHERE a.nosuch = 1 WITHIN 1 s",
		"PATTERN SEQ(A a) WHERE b.x = 1 WITHIN 1 s",
		"PATTERN SEQ(A a, B b) WHERE | a.x - b.x | > 2 WITHIN 1 s",
		"PATTERN SEQ(A a) WITHIN 1 lightyears",
		"PATTERN SEQ(A a) WITHIN 1 s trailing",
		"PATTERN SEQ(A a) WITHIN . s",
		"PATTERN SEQ(A a) WITHIN - s",
		"pattern seq(a a) within 1 s",
		"PATTERN SEQ(A a) WHERE a.x = 1.2.3 WITHIN 1 s",
		"PATTERN SEQ(A a) WHERE a.x <=> 1 WITHIN 1 s",
		"|||||", "~~~~", "....", "((((((((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := fuzzSchema()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // linear-time parser; cap the input to keep fuzzing fast
		}
		pat, err := Parse(schema, src)
		if err == nil && pat == nil {
			t.Fatalf("Parse(%q) returned neither pattern nor error", src)
		}
		if err != nil && !strings.HasPrefix(err.Error(), "sase: ") {
			t.Fatalf("Parse(%q) error %q lacks the package prefix", src, err)
		}
	})
}
