package ha

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"acep/internal/chaos"
	"acep/internal/cluster"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/shard"
	"acep/internal/wire"
)

// tagRecorder canonicalizes a tagged-match stream exactly like the
// cluster tests: the wire encoding of every match in delivery order, so
// byte equality means identical match sets in identical order.
type tagRecorder struct {
	mu  sync.Mutex
	buf []byte
	n   int
}

func (r *tagRecorder) rec(t shard.Tagged) {
	r.mu.Lock()
	r.buf = wire.Append(r.buf, wire.TaggedMatch{Seq: t.Seq, M: t.M})
	r.n++
	r.mu.Unlock()
}

// haWorkload mirrors the cluster failover workloads: enough keys that
// every node of a 3×2 cluster owns live traffic.
func haWorkload(t *testing.T, dataset string) *gen.Workload {
	t.Helper()
	switch dataset {
	case "traffic":
		return gen.Traffic(gen.TrafficConfig{
			Types: 6, Events: 5000, Seed: 17, Shifts: 1, MeanGap: 3, Keys: 12,
		})
	case "stocks":
		return gen.Stocks(gen.StocksConfig{
			Types: 6, Events: 5000, Seed: 23, MeanGap: 3, DriftEvery: 300, Keys: 16,
		})
	default:
		t.Fatalf("unknown dataset %s", dataset)
		return nil
	}
}

// runShardedRef is the single-process reference at equal total shards.
func runShardedRef(t *testing.T, w *gen.Workload, kind gen.Kind, shards int) *tagRecorder {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	eng, err := shard.New(pat, engine.Config{CheckEvery: 250}, shard.Options{
		Shards: shards, Batch: 128, KeyAttr: "key", Schema: w.Schema,
		OnTagged: rec.rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	return rec
}

func requireIdentical(t *testing.T, label string, got, want *tagRecorder) {
	t.Helper()
	if want.n == 0 {
		t.Fatalf("%s: reference produced no matches; test is vacuous", label)
	}
	if !bytes.Equal(got.buf, want.buf) {
		t.Fatalf("%s: HA stream diverges from sharded reference (%d vs %d matches)",
			label, got.n, want.n)
	}
}

// haRig launches worker node processes (ServeListener on loopback TCP)
// plus a pool of bare standby workers, returning their addresses. Fresh
// nodes per call: a worker process latches the highest coordinator
// epoch it has served, so rigs are never shared between runs.
type haRig struct {
	workers  []string
	standbys []string
	mu       sync.Mutex
	errs     []error
}

func (r *haRig) noteErr(err error) {
	r.mu.Lock()
	r.errs = append(r.errs, err)
	r.mu.Unlock()
}

func startHARig(t *testing.T, w *gen.Workload, kind gen.Kind, standbys int) *haRig {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rig := &haRig{}
	start := func(configured bool) string {
		cfg := cluster.NodeConfig{
			Engine: engine.Config{CheckEvery: 250}, Batch: 64, KeyAttr: "key",
		}
		if configured {
			cfg.Pattern, cfg.Schema, cfg.Shards = pat, w.Schema, 2
		}
		node, err := cluster.NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, err := cluster.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go node.ServeListener(l, rig.noteErr) //nolint:errcheck // closed at test end
		return l.Addr()
	}
	for i := 0; i < 3; i++ {
		rig.workers = append(rig.workers, start(true))
	}
	for k := 0; k < standbys; k++ {
		rig.standbys = append(rig.standbys, start(false))
	}
	return rig
}

// runPair streams the workload through a replicated pair, invoking the
// `at` hooks just before the given event indexes (on the feed
// goroutine, the calling contract of KillPrimary and friends).
func runPair(t *testing.T, rig *haRig, w *gen.Workload, kind gen.Kind,
	wrap func(i int, c cluster.Conn) cluster.Conn, at map[int]func(*Pair)) (*tagRecorder, *Pair) {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, Standbys: rig.standbys,
		OnTagged: rec.rec, WrapWorker: wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		if fn, ok := at[i]; ok {
			fn(p)
		}
		p.Process(&w.Events[i])
	}
	done := make(chan error, 1)
	go func() { done <- p.Finish() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pair finished with error: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("pair Finish hung")
	}
	return rec, p
}

// TestTakeoverByteIdentical is the tentpole's acceptance criterion:
// the primary coordinator is killed mid-cut (a partial cut pending,
// matches in flight at the gate) and the standby's successor resumes —
// the delivered stream must be byte-identical to the single-process
// sharded engine, across sequence, negation, Kleene and composite
// patterns on both workload regimes.
func TestTakeoverByteIdentical(t *testing.T) {
	for _, dataset := range []string{"traffic", "stocks"} {
		for _, kind := range []gen.Kind{gen.Sequence, gen.Negation, gen.Kleene, gen.Composite} {
			w := haWorkload(t, dataset)
			want := runShardedRef(t, w, kind, 6)
			rig := startHARig(t, w, kind, 0)
			got, p := runPair(t, rig, w, kind, nil, map[int]func(*Pair){
				2500: func(p *Pair) {
					if err := p.KillPrimary(); err != nil {
						t.Fatalf("takeover failed: %v", err)
					}
				},
			})
			requireIdentical(t, fmt.Sprintf("%s/%v", dataset, kind), got, want)
			tk := p.Takeover()
			if tk == nil {
				t.Fatalf("%s/%v: no takeover record", dataset, kind)
			}
			if tk.Epoch != 2 || tk.Workers != 3 {
				t.Fatalf("%s/%v: takeover %+v, want epoch 2 over 3 workers", dataset, kind, tk)
			}
			if tk.Boundary == 0 || tk.ReplayCuts == 0 || tk.ReplayEvents == 0 {
				t.Fatalf("%s/%v: successor replayed nothing: %+v", dataset, kind, tk)
			}
			if tk.RefedEvents == 0 {
				t.Fatalf("%s/%v: no unacknowledged tail was re-fed: %+v", dataset, kind, tk)
			}
			if tk.ResumedAt.IsZero() || tk.Pause() <= 0 {
				t.Fatalf("%s/%v: takeover never stamped its resumption: %+v", dataset, kind, tk)
			}
			if deg, cause := p.Degraded(); deg {
				t.Fatalf("%s/%v: healthy takeover reported degradation: %s", dataset, kind, cause)
			}
		}
	}
}

// TestTakeoverMidMigration — kill matrix: the primary dies right after
// initiating a shard migration, before (and after) the mirrored owner
// table could reflect it. Either way the successor resumes from the
// table its mirror holds and the stream stays exact.
func TestTakeoverMidMigration(t *testing.T) {
	for _, killAt := range []int{2010, 2100} { // before / after the next cut mirrors the move
		w := haWorkload(t, "traffic")
		want := runShardedRef(t, w, gen.Sequence, 6)
		rig := startHARig(t, w, gen.Sequence, 0)
		got, p := runPair(t, rig, w, gen.Sequence, nil, map[int]func(*Pair){
			2000: func(p *Pair) {
				if err := p.Ingress().MigrateShard(2, 0); err != nil {
					t.Fatalf("migration before the kill failed: %v", err)
				}
			},
			killAt: func(p *Pair) {
				if err := p.KillPrimary(); err != nil {
					t.Fatalf("takeover failed: %v", err)
				}
			},
		})
		requireIdentical(t, fmt.Sprintf("mid-migration kill@%d", killAt), got, want)
		if tk := p.Takeover(); tk == nil || tk.ReplayCuts == 0 {
			t.Fatalf("kill@%d: takeover record %+v", killAt, tk)
		}
	}
}

// TestTakeoverDuringWorkerFailover — kill matrix: a worker dies first
// (its shards fail over to a pool standby on the primary), then the
// primary dies. The successor re-dials the replicated address table —
// which already points the failed slot at its adopted standby — and the
// stream stays exact end to end.
func TestTakeoverDuringWorkerFailover(t *testing.T) {
	w := haWorkload(t, "traffic")
	want := runShardedRef(t, w, gen.Sequence, 6)
	rig := startHARig(t, w, gen.Sequence, 1)
	got, p := runPair(t, rig, w, gen.Sequence,
		func(i int, c cluster.Conn) cluster.Conn {
			if i == 1 {
				return &chaos.Flaky{C: c, Budget: 30}
			}
			return c
		},
		map[int]func(*Pair){
			2500: func(p *Pair) {
				if err := p.KillPrimary(); err != nil {
					t.Fatalf("takeover after worker failover failed: %v", err)
				}
			},
		})
	requireIdentical(t, "takeover during worker failover", got, want)
	tk := p.Takeover()
	if tk == nil || tk.Workers != 3 {
		t.Fatalf("takeover %+v, want 3 workers re-established", tk)
	}
}

// TestStandbyKilledBeforeTakeover — kill matrix: the standby dies
// mid-run. The primary degrades (gate opens on the collector frontier
// alone) and the run completes exactly, with the degradation surfaced.
func TestStandbyKilledBeforeTakeover(t *testing.T) {
	w := haWorkload(t, "traffic")
	want := runShardedRef(t, w, gen.Sequence, 6)
	rig := startHARig(t, w, gen.Sequence, 0)
	got, p := runPair(t, rig, w, gen.Sequence, nil, map[int]func(*Pair){
		2000: func(p *Pair) { p.KillStandby() },
	})
	requireIdentical(t, "standby killed mid-run", got, want)
	deg, cause := p.Degraded()
	if !deg || cause == "" {
		t.Fatal("losing the standby did not surface degradation")
	}
	if p.Takeover() != nil {
		t.Fatal("degraded run recorded a takeover")
	}
}

// TestDoubleDeath — kill matrix: the primary dies after the standby is
// already gone. No state can resume the stream; the failure must be an
// explicit error, not a hang or a silently truncated stream.
func TestDoubleDeath(t *testing.T) {
	w := haWorkload(t, "traffic")
	rig := startHARig(t, w, gen.Sequence, 0)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, OnTagged: rec.rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var killErr error
	for i := range w.Events {
		switch i {
		case 2000:
			p.KillStandby()
		case 3000:
			killErr = p.KillPrimary()
		}
		p.Process(&w.Events[i])
	}
	if killErr == nil || !strings.Contains(killErr.Error(), "double death") {
		t.Fatalf("double death returned %v, want an explicit double-death error", killErr)
	}
	if err := p.Finish(); err == nil || !strings.Contains(err.Error(), "double death") {
		t.Fatalf("Finish returned %v after a double death", err)
	}
}
