package ha

import (
	"sync"
	"testing"

	"acep/internal/match"
	"acep/internal/shard"
	"acep/internal/wire"
)

// TestGateDemoteMidCommitEmitsCommittedPrefix pins the race between a
// feed-side demotion (lease keepalive failure, replication timeout) and
// a drain that is unlocked mid-commit. The demotion must not discard
// the queue under the in-flight drain: the commit already recorded the
// prefix at the lease, so the drain must still emit it — discarding
// would panic the emit loop on the yanked queue and leave the lease
// count ahead of the delivered stream (a successor would over-skip).
// The queue discard is deferred to the drain's exit.
func TestGateDemoteMidCommitEmitsCommittedPrefix(t *testing.T) {
	var got []uint64
	g := &gate{
		out:     func(tg shard.Tagged) { got = append(got, tg.Seq) },
		publish: func(wire.Frame) {},
	}
	g.ackCond = sync.NewCond(&g.mu)
	g.commit = func(boundary, count uint64) bool {
		// The demotion lands while this drain holds no lock (it is out
		// doing the lease RPC); the commit itself succeeded, so the
		// lease durably records (boundary, count) as emitted.
		g.demote()
		return true
	}
	for seq := uint64(1); seq <= 2; seq++ {
		g.onTagged(shard.Tagged{M: &match.Match{}, Seq: seq})
	}
	g.onProgress(2)
	g.onAck(2) // drain: commit(2, 2) succeeds, demotion races in

	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("emitted %v, want [1 2] (the committed prefix must survive a racing demotion)", got)
	}
	if b, c := g.committedState(); b != 2 || c != 2 {
		t.Fatalf("committed state = (%d, %d), want (2, 2)", b, c)
	}
	g.mu.Lock()
	demoted, qlen := g.demoted, len(g.q)
	g.mu.Unlock()
	if !demoted {
		t.Fatal("gate not demoted")
	}
	if qlen != 0 {
		t.Fatalf("queue not discarded after the in-flight drain exited: %d entries", qlen)
	}

	// Nothing further escapes the demoted gate.
	g.onTagged(shard.Tagged{M: &match.Match{}, Seq: 3})
	g.onProgress(3)
	if len(got) != 2 {
		t.Fatalf("demoted gate emitted past the committed prefix: %v", got)
	}
}

// TestGateDemoteMidCommitFenced: the complementary race — the demotion
// lands mid-commit and the commit itself fails (fence). Nothing may be
// emitted: a fenced commit recorded nothing, so the successor resumes
// from the previous boundary and the prefix belongs to it.
func TestGateDemoteMidCommitFenced(t *testing.T) {
	var got []uint64
	g := &gate{
		out:     func(tg shard.Tagged) { got = append(got, tg.Seq) },
		publish: func(wire.Frame) {},
	}
	g.ackCond = sync.NewCond(&g.mu)
	g.commit = func(boundary, count uint64) bool {
		g.demote()
		return false
	}
	g.onTagged(shard.Tagged{M: &match.Match{}, Seq: 1})
	g.onProgress(1)
	g.onAck(1)
	if len(got) != 0 {
		t.Fatalf("fenced gate emitted %v, want nothing", got)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.demoted {
		t.Fatal("gate not demoted")
	}
	if len(g.q) != 0 {
		t.Fatalf("queue not discarded: %d entries", len(g.q))
	}
}
