// Package ha removes the cluster's last single point of failure: the
// ingress coordinator. A Pair runs a primary coordinator with a hot
// standby tailing it over a dedicated replication link — every sealed
// cut (events, owner table, worker addresses) is mirrored into a
// standby-side journal, every emission boundary is published, and every
// match is held at an emission gate until the cut producing it has been
// acknowledged by the mirror. On primary death the standby's state
// rebuilds a successor coordinator: it re-dials every worker (the
// replicated address table, falling back to the standby pool),
// announces a higher epoch so workers fence the dead primary,
// re-establishes each shard via adoption migrations that replay the
// mirror with the already-delivered prefix suppressed, re-feeds the
// unacknowledged event tail from a consumer-side ring, and drops the
// bounded skip prefix of regenerated matches the primary delivered past
// its last published emission state. The delivered stream is
// byte-identical to an unkilled run — the same guarantee workers
// already have for shard failover, extended to the coordinator itself.
//
// The standby is a separate process by default in deployment terms: it
// is a StandbyServer speaking only TCP framing (hosted by
// cmd/acep-standby, or spawned on loopback in-process when
// Config.StandbyAddr is empty — one code path either way), and takeover
// pulls the mirrored state back over the wire with the Handover
// exchange. Nothing about a takeover reads the standby's memory.
//
// Partition tolerance is arbitrated by an external single-writer lease
// (Config.LeaseAddr, internal/lease): the primary must hold the lease
// to emit, commits every emission boundary to it *before* emitting
// (commit-then-emit), and demotes — gate frozen, a Demotion recorded,
// the run surfacing an error unless a successor takes over — the moment
// it cannot renew or is fenced. The takeover successor must acquire the
// same lease first. Two coordinators partitioned from each other can
// therefore never both emit: whatever the partition does to the
// replication link, the lease server observes exactly one writer.
//
// Failure handling is graded: without a lease, losing the standby (or
// the replication link) degrades the primary to plain
// exactly-once-by-collector emission and the run continues; with a
// lease the same loss is a demotion, because a primary that cannot
// prove its mirror is current must not keep emitting a stream a
// successor might re-emit. Losing the primary after the standby is gone
// is a double death and surfaces an explicit error.
package ha

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"acep/internal/cluster"
	"acep/internal/event"
	"acep/internal/lease"
	"acep/internal/pattern"
	recovery "acep/internal/recover"
	"acep/internal/shard"
	"acep/internal/wire"
)

// replDepth is the replication sender's frame buffer: deep enough to
// decouple the ingress goroutine from the link's syscall latency,
// shallow enough that a stalled standby backpressures the primary
// within a few cuts instead of buffering unbounded history.
const replDepth = 4

// replLagCuts is the replication flow-control window: the primary
// blocks sealing a new cut once the standby's acknowledged watermark
// trails by more than this many cuts. The window keeps the pipeline
// full (sends overlap acks) while guaranteeing a hot mirror — the
// takeover state is never more than replLagCuts cuts behind the feed —
// and bounding the consumer-side ring to window + ring-trim slack.
const replLagCuts = 8

// Lease holder identities: the pair only ever has two candidate
// writers, the original primary and the takeover successor.
const (
	leasePrimaryHolder   = 1
	leaseSuccessorHolder = 2
)

// Config assembles a replicated coordinator pair.
type Config struct {
	// Pattern, Schema and KeyAttr mirror cluster.IngressOptions: the
	// pattern must be key-partitionable in KeyAttr over Schema.
	Pattern *pattern.Pattern
	Schema  *event.Schema
	KeyAttr string
	// Batch is the events-per-cut granularity (default 256). It is also
	// the replication granularity: the standby mirrors whole cuts.
	Batch int
	// Workers are the worker node listener addresses. The primary dials
	// each one; the successor re-dials them (or their replicated
	// replacements) on takeover.
	Workers []string
	// Standbys is the worker standby pool, shared between the primary's
	// node-failover path and the successor's takeover fallback dialing.
	Standbys []string
	// OnTagged receives the delivered match stream — gated, so a match
	// arrives only once across any single takeover.
	OnTagged func(shard.Tagged)
	// HeartbeatTimeout, SlackWindows and MaxJournalBytes pass through
	// to the coordinator's RecoveryConfig (and size the mirror journal).
	HeartbeatTimeout time.Duration
	SlackWindows     int
	MaxJournalBytes  int64
	// StandbyAddr is the listener address of an out-of-process standby
	// (cmd/acep-standby). Empty spawns a StandbyServer on loopback
	// inside this process — same server, same protocol.
	StandbyAddr string
	// LeaseAddr is the lease arbiter's address (internal/lease). Empty
	// disables lease arbitration: link loss degrades instead of
	// demoting, and takeover trusts the local delivered count — exactly
	// the pre-partition-tolerance behavior.
	LeaseAddr string
	// LeaseTTL is the emission lease's time-to-live (default 2s): the
	// window a partitioned primary can keep believing it is primary,
	// and the longest a successor waits for a dead primary's grant to
	// lapse.
	LeaseTTL time.Duration
	// ReplTimeout bounds the replication flow-control wait (default
	// 30s): a standby that has not acknowledged within it is treated as
	// lost even though the link never errored — the silently blackholed
	// peer a plain TCP read would wait on forever.
	ReplTimeout time.Duration
	// WrapWorker (tests) wraps each initially dialed worker connection,
	// by slot, to inject failures.
	WrapWorker func(i int, c cluster.Conn) cluster.Conn
	// WrapRepl (tests, chaos) wraps the primary's replication
	// connection to inject failures: drops, duplicates, delays,
	// partitions. The replication protocol is the one place silent
	// drops and duplicates are safe to inject — the cut ordinal detects
	// them.
	WrapRepl func(c cluster.Conn) cluster.Conn
	// WrapLease (tests, chaos) wraps the primary's lease connection —
	// partitioning primary-to-arbiter is half of the split-brain
	// matrix.
	WrapLease func(c cluster.Conn) cluster.Conn
}

// Pair is a replicated coordinator: one primary ingress, one hot
// standby, one replication link between them. Process, Finish,
// KillPrimary and KillStandby must run on a single goroutine (the
// feed); the OnTagged callback fires on collector or link goroutines.
type Pair struct {
	cfg         Config
	pool        func() (cluster.Conn, error)
	g           *gate
	srv         *StandbyServer // in-process standby; nil when StandbyAddr is set
	standbyAddr string
	ing         *cluster.Ingress

	replCh     chan wire.Frame
	replConn   cluster.Conn
	replDown   atomic.Bool
	cleanFinal atomic.Bool
	killedFlag atomic.Bool
	senderDone chan struct{}
	ackDone    chan struct{}
	replClosed bool
	srvStopped bool
	cutSeq     uint64 // dense replication cut ordinal (ingress goroutine)

	leaseCl     *lease.Client
	leaseHolder uint64
	leaseEpoch  uint64

	// ring retains fed events the standby has not yet acknowledged
	// (consumer side): the takeover successor re-feeds the tail past
	// the last mirrored cut. Trimmed to the gate's acked watermark.
	// ringForfeited records that a demoted primary outgrew
	// demotedRingCap and dropped the tail — takeover is off the table.
	ring          []event.Event
	ringForfeited bool

	tookOver    bool
	standbyLost atomic.Bool
	degradeErr  atomic.Pointer[string]
	demotedFlag atomic.Bool
	demotion    atomic.Pointer[recovery.Demotion]
	takeover    *recovery.Takeover
	mirrorCuts  int
	mirrorEvs   int
	err         error
}

// New dials the workers, connects the standby (spawning one on loopback
// if no external address is given), acquires the emission lease when an
// arbiter is configured, and brings up the primary coordinator at
// epoch 1.
func New(cfg Config) (*Pair, error) {
	if cfg.Pattern == nil || cfg.Schema == nil || cfg.KeyAttr == "" {
		return nil, fmt.Errorf("ha: Pattern, Schema and KeyAttr are required")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("ha: at least one worker address is required")
	}
	if cfg.OnTagged == nil {
		return nil, fmt.Errorf("ha: OnTagged is required (the pair exists to deliver a stream)")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if cfg.ReplTimeout <= 0 {
		cfg.ReplTimeout = 30 * time.Second
	}
	if cfg.Pattern.Window <= 0 {
		return nil, fmt.Errorf("ha: pattern window must be positive (it sizes the mirror journal)")
	}
	p := &Pair{
		cfg:        cfg,
		replCh:     make(chan wire.Frame, replDepth),
		senderDone: make(chan struct{}),
		ackDone:    make(chan struct{}),
	}
	if len(cfg.Standbys) > 0 {
		p.pool = cluster.DialStandbys(cfg.Standbys)
	}

	// The standby: an external process's listener, or the same server
	// spawned on loopback — the replication link is a real TCP stream
	// either way, so the v6 frames serialize end to end and the
	// mirror's decoded events are fresh allocations with no aliasing
	// back into the primary.
	p.standbyAddr = cfg.StandbyAddr
	if p.standbyAddr == "" {
		l, err := cluster.ListenTCP("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("ha: replication listener: %w", err)
		}
		p.srv = NewStandbyServer(l)
		go p.srv.Serve()
		p.standbyAddr = l.Addr()
	}
	replConn, err := cluster.DialTCP(p.standbyAddr)
	if err != nil {
		p.stopStandby()
		return nil, fmt.Errorf("ha: dialing replication link: %w", err)
	}
	if cfg.WrapRepl != nil {
		replConn = cfg.WrapRepl(replConn)
	}
	p.replConn = replConn
	// The opening Epoch frame carries the journal sizing so the standby
	// process needs no pattern knowledge of its own.
	if err := replConn.Send(wire.Epoch{
		Epoch:    1,
		Window:   int64(cfg.Pattern.Window),
		Slack:    uint32(cfg.SlackWindows),
		MaxBytes: uint64(cfg.MaxJournalBytes),
	}); err != nil {
		// The sender and ack reader have not started: tear down by hand.
		replConn.Close()
		p.stopStandby()
		return nil, fmt.Errorf("ha: opening replication link: %w", err)
	}
	p.g = &gate{out: cfg.OnTagged, publish: p.replSend}
	p.g.ackCond = sync.NewCond(&p.g.mu)
	go p.sender()
	go p.ackReader()

	// The lease comes before the first event: a primary that cannot
	// acquire it must not start emitting at all.
	if cfg.LeaseAddr != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 4*cfg.LeaseTTL+2*time.Second)
		cl, err := lease.Dial(ctx, cfg.LeaseAddr, cluster.DialPolicy{}, cfg.WrapLease)
		if err != nil {
			cancel()
			p.abort()
			return nil, fmt.Errorf("ha: lease arbiter: %w", err)
		}
		fence, err := cl.AcquireWait(ctx, leasePrimaryHolder, cfg.LeaseTTL)
		cancel()
		if err != nil {
			cl.Close()
			p.abort()
			return nil, fmt.Errorf("ha: acquiring emission lease: %w", err)
		}
		p.leaseCl = cl
		p.leaseHolder = leasePrimaryHolder
		p.leaseEpoch = fence.Epoch
		p.g.commit = p.leaseCommit
	}

	conns := make([]cluster.Conn, len(cfg.Workers))
	for i, addr := range cfg.Workers {
		c, err := cluster.DialTCP(addr)
		if err != nil {
			for _, cc := range conns[:i] {
				cc.Close()
			}
			p.abort()
			return nil, fmt.Errorf("ha: dialing worker %d: %w", i, err)
		}
		if cfg.WrapWorker != nil {
			c = cfg.WrapWorker(i, c)
		}
		conns[i] = c
	}
	ing, err := cluster.NewIngress(cfg.Pattern, conns, cluster.IngressOptions{
		Batch: cfg.Batch, KeyAttr: cfg.KeyAttr, Schema: cfg.Schema,
		OnTagged:   p.g.onTagged,
		OnProgress: p.g.onProgress,
		OnCut:      p.onCut,
		Epoch:      1,
		Addrs:      cfg.Workers,
		Recovery: &cluster.RecoveryConfig{
			Standby: p.pool, HeartbeatTimeout: cfg.HeartbeatTimeout,
			SlackWindows: cfg.SlackWindows, MaxJournalBytes: cfg.MaxJournalBytes,
		},
	})
	if err != nil {
		p.abort()
		return nil, err
	}
	p.ing = ing
	return p, nil
}

// stopStandby stops the in-process standby server (no-op for an
// external one — that is its own process) and waits it out. Idempotent.
func (p *Pair) stopStandby() {
	if p.srv == nil || p.srvStopped {
		return
	}
	p.srvStopped = true
	p.srv.Stop()
	p.srv.Wait()
}

// abort tears the replication machinery down from a failed
// construction: closing the link first unblocks the ack reader, so
// shutdownRepl's joins cannot hang on a healthy standby.
func (p *Pair) abort() {
	p.cleanFinal.Store(true) // suppress degrade bookkeeping: nothing ran
	p.replDown.Store(true)
	p.replConn.Close()
	p.shutdownRepl()
	p.stopStandby()
	if p.leaseCl != nil {
		p.leaseCl.Close()
	}
}

// leaseCommit is the gate's commit hook (called with the gate unlocked,
// from a drain): renew the lease and durably record the emission
// boundary about to be emitted. Any failure — transport error or a
// fence from a higher epoch — records the demotion and vetoes the emit.
func (p *Pair) leaseCommit(boundary, count uint64) bool {
	fence, err := p.leaseCl.Renew(p.leaseHolder, p.leaseEpoch, p.cfg.LeaseTTL, boundary, count)
	if err != nil {
		p.noteDemotion(fmt.Sprintf("ha: lease renew failed: %v", err))
		return false
	}
	if !fence.Granted {
		p.noteDemotion(fmt.Sprintf("ha: fenced off the emission lease by holder %d at epoch %d", fence.Holder, fence.Epoch))
		return false
	}
	return true
}

// noteDemotion records the demotion and severs replication (the gate
// freeze happens at the call site — inside the failing drain, or via
// demote). Idempotent.
func (p *Pair) noteDemotion(cause string) {
	if !p.demotedFlag.CompareAndSwap(false, true) {
		return
	}
	b, c := p.g.committedState()
	p.demotion.Store(&recovery.Demotion{
		At: time.Now(), Cause: cause,
		Epoch: p.leaseEpoch, Boundary: b, Count: c,
	})
	// Stop replicating: the mirror may be partitioned away, and a
	// frozen primary has nothing further to mirror. Closing the link
	// also unblocks the sender and ack reader. The lease is NOT
	// released — the last committed state must stand exactly as the
	// final commit left it, and the grant lapses by TTL.
	p.replDown.Store(true)
	p.replConn.Close()
}

// demote is the feed-side demotion path (keepalive failure, replication
// timeout): record it and freeze the gate.
func (p *Pair) demote(cause string) {
	p.noteDemotion(cause)
	p.g.demote()
}

// onCut is the primary's replication tap (ingress goroutine, behind the
// send barrier): the sealed cut becomes one ReplCut frame stamped with
// the next dense cut ordinal — the standby's dedup/gap detector. Owner
// and Addrs are copied — the ingress mutates them after the call —
// while the event runs alias the journal-retained cut slices, which are
// immutable for the rest of the run.
func (p *Pair) onCut(ci cluster.CutInfo) {
	if p.replDown.Load() {
		return
	}
	p.cutSeq++
	rc := wire.ReplCut{
		UpTo: ci.UpTo, Cut: p.cutSeq, Final: ci.Final,
		Owner: make([]uint32, len(ci.Owner)),
		Addrs: append([]string(nil), ci.Addrs...),
	}
	for g, o := range ci.Owner {
		if o < 0 {
			rc.Owner[g] = ^uint32(0)
		} else {
			rc.Owner[g] = uint32(o)
		}
	}
	for g, evs := range ci.Bufs {
		if len(evs) > 0 {
			rc.Runs = append(rc.Runs, wire.ReplRun{Shard: uint32(g), Events: evs})
		}
	}
	p.replCh <- rc
	if rc.Final {
		// The Final cut resolves through the stand-down handshake in
		// Finish rather than flow control.
		return
	}
	if p.leaseCl != nil && !p.demotedFlag.Load() {
		// Per-cut lease keepalive: on a silently partitioned arbiter
		// this is what demotes the primary promptly — the gate's own
		// commits stop firing once acks stop advancing the threshold.
		b, c := p.g.committedState()
		if !p.leaseCommit(b, c) {
			p.g.demote()
			return
		}
	}
	if ci.UpTo > uint64(replLagCuts*p.cfg.Batch) {
		// Flow control: block the feed until the mirror is within the
		// replication window — but never forever. A timeout here is the
		// silently blackholed standby.
		floor := ci.UpTo - uint64(replLagCuts*p.cfg.Batch)
		if !p.g.waitAckedTimeout(floor, p.cfg.ReplTimeout) {
			p.replDown.Store(true)
			p.replConn.Close()
			p.linkLost(fmt.Errorf("ha: standby acknowledgements stalled for %v (silent partition)", p.cfg.ReplTimeout))
		}
	}
}

// replSend enqueues a gate-published frame on the replication link.
func (p *Pair) replSend(f wire.Frame) {
	if p.replDown.Load() {
		return
	}
	p.replCh <- f
}

// sender owns all writes to the replication link: ReplCut frames from
// the ingress goroutine and ReplState frames from the gate serialize
// through one channel, keeping the single-writer contract of the Conn.
// After a link failure it keeps draining (discarding) so no producer
// ever blocks on a dead standby.
func (p *Pair) sender() {
	defer close(p.senderDone)
	for f := range p.replCh {
		if p.replDown.Load() {
			continue
		}
		if err := p.replConn.Send(f); err != nil {
			p.replDown.Store(true)
			p.linkLost(err)
		}
	}
}

// ackReader consumes the standby's acknowledgements: per-cut mirror
// watermarks, and the terminal stand-down ack that fully opens the
// gate at end of stream.
func (p *Pair) ackReader() {
	defer close(p.ackDone)
	for {
		f, err := p.replConn.Recv()
		if err != nil {
			if !p.cleanFinal.Load() {
				p.replDown.Store(true)
				p.linkLost(err)
			}
			return
		}
		if w, ok := f.(wire.Watermark); ok {
			if w.UpTo == math.MaxUint64 {
				// Terminal stand-down ack: the standby saw the Final cut
				// and holds its session open for our teardown. Exit here
				// rather than wait for a link event that never comes.
				p.cleanFinal.Store(true)
				p.g.onAck(w.UpTo)
				return
			}
			p.g.onAck(w.UpTo)
		}
	}
}

// linkLost routes a replication-link failure. After a clean final, a
// deliberate primary kill, or a demotion already recorded it is
// expected. Otherwise: with a lease, a primary that lost its mirror
// must demote — it can no longer prove a successor could resume
// exactly, and availability now belongs to whoever holds the lease
// next. Without a lease the primary degrades — the gate opens on the
// collector frontier alone and the run continues without takeover
// coverage.
func (p *Pair) linkLost(err error) {
	if p.cleanFinal.Load() || p.killedFlag.Load() || p.demotedFlag.Load() {
		return
	}
	if p.leaseCl != nil && !p.tookOver {
		p.demote(fmt.Sprintf("ha: replication link lost: %v", err))
		return
	}
	if p.standbyLost.CompareAndSwap(false, true) {
		msg := fmt.Sprintf("ha: replication link lost, primary continuing degraded: %v", err)
		p.degradeErr.Store(&msg)
	}
	p.g.degrade()
}

// demotedRingCap bounds the consumer-side ring on a demoted primary.
// After a demotion the acked watermark is frozen, so trimRing can never
// reclaim the ring again — yet the tail must keep growing, because a
// demoted primary can still be superseded (KillPrimary drives the
// standby takeover) and the successor re-feeds exactly this tail.
// Retaining it forever trades unbounded memory for takeover coverage;
// past the cap the pair forfeits takeover explicitly (the ring is
// dropped and KillPrimary reports it) rather than grow without bound
// or lose tail events silently. A var so tests can shrink the window.
var demotedRingCap = 1 << 18

// Process feeds one event through the primary (or, after takeover, the
// successor). Same contract as Ingress.Process.
func (p *Pair) Process(ev *event.Event) {
	if p.err != nil {
		return
	}
	switch {
	case p.tookOver || p.standbyLost.Load() || p.ringForfeited:
		// No successor can ever consume the ring from here (the
		// successor replays its own journal after a takeover; a lost
		// standby means a later kill is a double death) — it is dead
		// weight, and with acks stopped trimRing would never reclaim it.
		p.ring = nil
	case p.demotedFlag.Load():
		// Demoted but still supersedable: retain the takeover tail up
		// to the cap, then forfeit takeover instead of growing forever.
		if len(p.ring) >= demotedRingCap {
			p.ring = nil
			p.ringForfeited = true
		} else {
			p.ring = append(p.ring, *ev)
		}
	default:
		p.ring = append(p.ring, *ev)
		if len(p.ring) >= 4*p.cfg.Batch {
			p.trimRing()
		}
	}
	p.ing.Process(ev)
}

// trimRing drops the ring prefix the standby has acknowledged — those
// events live in the mirror journal now and will never be re-fed.
func (p *Pair) trimRing() {
	acked := p.g.ackedSeq()
	i := 0
	for i < len(p.ring) && p.ring[i].Seq <= acked {
		i++
	}
	if i > 0 {
		p.ring = append(p.ring[:0], p.ring[i:]...)
	}
}

// Finish flushes and drains the stream. On the primary path the final
// cut rides the replication link, the standby acknowledges it and
// stands down, and the gate opens fully — so every match (including
// the end-of-stream flush matches at the max watermark) is delivered
// before Finish returns. A demoted primary that was never taken over
// finishes with an explicit error: its stream is incomplete by design,
// and silence would hide the partition.
func (p *Pair) Finish() error {
	if p.err != nil {
		return p.err
	}
	err := p.ing.Finish()
	p.shutdownRepl()
	p.stopStandby()
	demoted := p.demotedFlag.Load()
	if p.leaseCl != nil {
		if p.tookOver || !demoted {
			b, c := p.g.committedState()
			p.leaseCl.Release(p.leaseHolder, p.leaseEpoch, b, c) //nolint:errcheck // best-effort courtesy to the next holder
		}
		p.leaseCl.Close()
	}
	if err != nil {
		return err
	}
	if demoted && !p.tookOver {
		d := p.demotion.Load()
		return fmt.Errorf("ha: primary demoted without takeover: %s", d.Cause)
	}
	return nil
}

// shutdownRepl tears the replication machinery down in dependency
// order: wait for the ack reader (it exits on stand-down, link failure,
// demotion, or kill), stop the sender, then close the link. Idempotent;
// safe on every path (clean finish, degraded, demoted, takeover).
func (p *Pair) shutdownRepl() {
	if p.replClosed {
		return
	}
	p.replClosed = true
	<-p.ackDone
	close(p.replCh)
	<-p.senderDone
	p.replConn.Close()
}

// KillPrimary kills the primary coordinator as if its process died —
// the emission gate freezes, the replication link drops, every worker
// connection slams shut — and then drives the standby's takeover: the
// successor acquires the emission lease (when configured), pulls the
// mirrored state from the standby process over the handover protocol,
// and resumes the stream. Returns the double-death error when the
// standby was already lost; the takeover record is available from
// Takeover().
func (p *Pair) KillPrimary() error {
	if p.err != nil {
		return p.err
	}
	if p.tookOver {
		return fmt.Errorf("ha: primary already killed (successor running)")
	}
	p.killedFlag.Store(true)
	delivered := p.g.kill()
	p.replDown.Store(true)
	p.replConn.Close()
	p.ing.Kill()
	p.shutdownRepl()
	if p.leaseCl != nil {
		// The dead primary's client dies with it; the grant lapses by
		// TTL (a dead process releases nothing).
		p.leaseCl.Close()
		p.leaseCl = nil
	}

	if p.standbyLost.Load() {
		p.err = fmt.Errorf("ha: double death: primary killed after the standby was lost; the stream cannot resume")
		return p.err
	}
	if p.ringForfeited {
		p.stopStandby()
		p.err = fmt.Errorf("ha: takeover impossible: the demoted primary outlived its takeover window (event tail exceeded %d events and was dropped)", demotedRingCap)
		return p.err
	}

	// Arbitration before anything else: no lease, no takeover. The
	// successor waits out the dead primary's grant.
	var leaseN uint64
	haveLease := false
	if p.cfg.LeaseAddr != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 4*p.cfg.LeaseTTL+2*time.Second)
		cl, err := lease.Dial(ctx, p.cfg.LeaseAddr, cluster.DialPolicy{}, nil)
		if err != nil {
			cancel()
			p.err = fmt.Errorf("ha: takeover blocked: lease arbiter unreachable: %w", err)
			return p.err
		}
		fence, err := cl.AcquireWait(ctx, leaseSuccessorHolder, p.cfg.LeaseTTL)
		cancel()
		if err != nil {
			cl.Close()
			p.err = fmt.Errorf("ha: takeover blocked: emission lease not acquired: %w", err)
			return p.err
		}
		p.leaseCl = cl
		p.leaseHolder = leaseSuccessorHolder
		p.leaseEpoch = fence.Epoch
		leaseN = fence.Count
		haveLease = true
	}

	st, err := p.fetchMirror(2)
	if err != nil {
		p.err = fmt.Errorf("ha: double death: %w", err)
		return p.err
	}
	p.mirrorCuts, p.mirrorEvs = st.cuts, st.events
	detectedAt := st.detectedAt
	cause := st.cause
	if !st.dead {
		// The standby had not yet observed the death when we read the
		// handover; the death is still real, just attributed here.
		detectedAt = time.Now()
		cause = "ha: primary killed before the mirror observed it"
	}
	if st.journal == nil {
		p.err = fmt.Errorf("ha: takeover impossible: the standby mirrored no cut before the primary died")
		return p.err
	}
	// How many regenerated matches the dead primary already delivered
	// past the mirror's emission state: with a lease, the lease's
	// committed count is exact by commit-then-emit — readable across a
	// process boundary, immune to partition-lost ReplStates. Without
	// one, trust the local delivered count (in-process knowledge).
	if haveLease {
		delivered = leaseN
	}
	err = p.runTakeover(delivered, st, cause, detectedAt)
	p.stopStandby()
	return err
}

// fetchMirror pulls the mirrored state out of the standby process over
// the handover protocol: dial, one Handover request, the HandoverState
// header, then the retained journal cuts as ReplCut frames.
func (p *Pair) fetchMirror(epoch uint64) (mirrorState, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c, err := cluster.DialTCPContext(ctx, p.standbyAddr, cluster.DialPolicy{})
	if err != nil {
		return mirrorState{}, fmt.Errorf("standby unreachable for handover: %w", err)
	}
	defer c.Close()
	// A response is owed for the whole session: a wedged standby must
	// surface as an error, not hang the takeover.
	if sc, ok := c.(interface{ SetReadStall(time.Duration) }); ok {
		sc.SetReadStall(5 * time.Second)
	}
	if err := c.Send(wire.Handover{Epoch: epoch}); err != nil {
		return mirrorState{}, fmt.Errorf("handover request: %w", err)
	}
	f, err := c.Recv()
	if err != nil {
		return mirrorState{}, fmt.Errorf("handover header: %w", err)
	}
	hs, ok := f.(wire.HandoverState)
	if !ok {
		return mirrorState{}, fmt.Errorf("handover: unexpected %s frame", wire.KindOf(f))
	}
	st := mirrorState{
		lastUpTo: hs.LastUpTo,
		emitted:  hs.EmittedUpTo, count: hs.Count,
		cuts: int(hs.Cuts), events: int(hs.Events),
		finished: hs.Finished, dead: hs.Dead, cause: hs.Cause,
		addrs: hs.Addrs,
	}
	if hs.DetectedAt != 0 {
		st.detectedAt = time.Unix(0, int64(hs.DetectedAt))
	}
	st.owner = make([]int, len(hs.Owner))
	for g, o := range hs.Owner {
		if o == ^uint32(0) {
			st.owner[g] = -1
		} else {
			st.owner[g] = int(o)
		}
	}
	if hs.Cuts > 0 && len(hs.Owner) > 0 {
		// Rebuild the mirror journal locally: the successor knows the
		// retention parameters (it shares the pair's Config).
		j, err := recovery.NewJournal(recovery.JournalConfig{
			Window: p.cfg.Pattern.Window, Shards: len(hs.Owner),
			SlackWindows: p.cfg.SlackWindows, MaxBytes: p.cfg.MaxJournalBytes,
		})
		if err != nil {
			return mirrorState{}, fmt.Errorf("rebuilding mirror journal: %w", err)
		}
		for i := uint64(0); i < hs.Cuts; i++ {
			f, err := c.Recv()
			if err != nil {
				return mirrorState{}, fmt.Errorf("handover cut %d/%d: %w", i+1, hs.Cuts, err)
			}
			rc, ok := f.(wire.ReplCut)
			if !ok {
				return mirrorState{}, fmt.Errorf("handover cut %d/%d: unexpected %s frame", i+1, hs.Cuts, wire.KindOf(f))
			}
			perShard := make([][]event.Event, len(hs.Owner))
			for _, r := range rc.Runs {
				if int(r.Shard) < len(perShard) {
					perShard[r.Shard] = r.Events
				}
			}
			j.Append(perShard, rc.UpTo)
		}
		j.Advance(hs.EmittedUpTo)
		st.journal = j
	}
	return st, nil
}

// runTakeover builds the successor from the mirrored state: re-dial
// every live slot (replicated address first, standby pool as fallback),
// construct a resuming ingress at epoch 2, re-feed the unacknowledged
// event tail, and record the incident.
func (p *Pair) runTakeover(delivered uint64, st mirrorState, cause string, detectedAt time.Time) error {
	slotIdx := make(map[int]int)
	var conns []cluster.Conn
	var addrs []string
	redialed := 0
	newOwner := make([]int, len(st.owner))
	fail := func(err error) error {
		for _, c := range conns {
			c.Close()
		}
		p.err = err
		return err
	}
	for g, o := range st.owner {
		if o < 0 {
			newOwner[g] = -1
			continue
		}
		idx, ok := slotIdx[o]
		if !ok {
			var c cluster.Conn
			addr := ""
			if o < len(st.addrs) {
				addr = st.addrs[o]
			}
			if addr != "" {
				if cc, err := cluster.DialTCP(addr); err == nil {
					c = cc
					redialed++
				}
			}
			if c == nil && p.pool != nil {
				if cc, err := p.pool(); err == nil {
					c = cc
				}
			}
			if c == nil {
				return fail(fmt.Errorf("ha: double death: worker slot %d (addr %q) unreachable and no standby remains", o, addr))
			}
			idx = len(conns)
			conns = append(conns, c)
			addrs = append(addrs, addr)
			slotIdx[o] = idx
		}
		newOwner[g] = idx
	}
	// The regenerated stream repeats, in the same deterministic merge
	// order, exactly the matches the primary delivered past the last
	// emission state the mirror received — drop that many.
	skip := delivered - st.count
	p.g.takeover(skip)
	ing, err := cluster.NewIngress(p.cfg.Pattern, conns, cluster.IngressOptions{
		Batch: p.cfg.Batch, KeyAttr: p.cfg.KeyAttr, Schema: p.cfg.Schema,
		OnTagged: p.g.onTagged,
		Epoch:    2,
		Addrs:    addrs,
		Recovery: &cluster.RecoveryConfig{
			Standby: p.pool, HeartbeatTimeout: p.cfg.HeartbeatTimeout,
			SlackWindows: p.cfg.SlackWindows, MaxJournalBytes: p.cfg.MaxJournalBytes,
		},
		Resume: &cluster.ResumeState{
			NextSeq: st.lastUpTo, Boundary: st.emitted,
			Owner: newOwner, Journal: st.journal,
		},
	})
	if err != nil {
		p.err = fmt.Errorf("ha: building takeover successor: %w", err)
		return p.err
	}
	p.ing = ing
	p.tookOver = true
	refed := 0
	for i := range p.ring {
		if p.ring[i].Seq <= st.lastUpTo {
			continue
		}
		ing.Process(&p.ring[i])
		refed++
	}
	p.ring = nil
	var replayCuts, replayEvents int
	for _, m := range ing.Migrations() {
		if m.Reason == "takeover" {
			replayCuts += m.ReplayCuts
			replayEvents += m.ReplayEvents
		}
	}
	p.takeover = &recovery.Takeover{
		Epoch: 2, Cause: cause, DetectedAt: detectedAt,
		Boundary: st.emitted, Skipped: skip,
		Workers: len(conns), Redialed: redialed,
		ReplayCuts: replayCuts, ReplayEvents: replayEvents,
		RefedEvents: refed, ResumedAt: time.Now(),
	}
	return nil
}

// KillStandby kills the standby as if its process died. With a lease
// the primary demotes (it can no longer prove its mirror); without one
// it observes the link failure, degrades the gate, and continues. A
// later KillPrimary is a double death either way.
func (p *Pair) KillStandby() {
	p.stopStandby()
	p.standbyLost.Store(true)
	if p.leaseCl != nil && !p.tookOver {
		p.demote("ha: standby killed; the primary cannot prove its mirror is current")
		return
	}
	// Deterministic degrade: don't wait for the ack reader to notice.
	if s := p.degradeErr.Load(); s == nil {
		msg := "ha: standby killed; primary continuing degraded"
		p.degradeErr.Store(&msg)
	}
	p.g.degrade()
}

// Ingress exposes the live coordinator (primary, or successor after
// takeover) for metrics and placement introspection.
func (p *Pair) Ingress() *cluster.Ingress { return p.ing }

// Takeover reports the coordinator-takeover record (nil if the primary
// was never killed or takeover failed).
func (p *Pair) Takeover() *recovery.Takeover { return p.takeover }

// Demotion reports the primary's demotion record (nil if it never lost
// the emission lease).
func (p *Pair) Demotion() *recovery.Demotion { return p.demotion.Load() }

// Degraded reports whether the pair lost its standby and continued
// without takeover coverage, with the cause.
func (p *Pair) Degraded() (bool, string) {
	if s := p.degradeErr.Load(); s != nil {
		return true, *s
	}
	return false, ""
}

// MirrorStats reports how much the standby mirrored (cuts, events) —
// the replication volume behind the overhead measurements. For an
// external standby the numbers come from the handover (zero before a
// takeover).
func (p *Pair) MirrorStats() (cuts, events int) {
	if p.srv != nil {
		return p.srv.Stats()
	}
	return p.mirrorCuts, p.mirrorEvs
}

// Delivered reports the matches emitted downstream so far.
func (p *Pair) Delivered() uint64 { return p.g.deliveredCount() }
