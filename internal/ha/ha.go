// Package ha removes the cluster's last single point of failure: the
// ingress coordinator. A Pair runs a primary coordinator with a hot
// standby tailing it over a dedicated replication link — every sealed
// cut (events, owner table, worker addresses) is mirrored into a
// standby-side journal, every emission boundary is published, and every
// match is held at an emission gate until the cut producing it has been
// acknowledged by the mirror. On primary death the standby's state
// rebuilds a successor coordinator: it re-dials every worker (the
// replicated address table, falling back to the standby pool),
// announces a higher epoch so workers fence the dead primary,
// re-establishes each shard via adoption migrations that replay the
// mirror with the already-delivered prefix suppressed, re-feeds the
// unacknowledged event tail from a consumer-side ring, and drops the
// bounded skip prefix of regenerated matches the primary delivered past
// its last published emission state. The delivered stream is
// byte-identical to an unkilled run — the same guarantee workers
// already have for shard failover, extended to the coordinator itself.
//
// Failure handling is graded: losing the standby (or the replication
// link) degrades the primary to plain exactly-once-by-collector
// emission and the run continues; losing the primary after the standby
// is gone is a double death and surfaces an explicit error.
package ha

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"acep/internal/cluster"
	"acep/internal/event"
	"acep/internal/pattern"
	recovery "acep/internal/recover"
	"acep/internal/shard"
	"acep/internal/wire"
	"sync"
)

// replDepth is the replication sender's frame buffer: deep enough to
// decouple the ingress goroutine from the link's syscall latency,
// shallow enough that a stalled standby backpressures the primary
// within a few cuts instead of buffering unbounded history.
const replDepth = 4

// replLagCuts is the replication flow-control window: the primary
// blocks sealing a new cut once the standby's acknowledged watermark
// trails by more than this many cuts. The window keeps the pipeline
// full (sends overlap acks) while guaranteeing a hot mirror — the
// takeover state is never more than replLagCuts cuts behind the feed —
// and bounding the consumer-side ring to window + ring-trim slack.
const replLagCuts = 8

// Config assembles a replicated coordinator pair.
type Config struct {
	// Pattern, Schema and KeyAttr mirror cluster.IngressOptions: the
	// pattern must be key-partitionable in KeyAttr over Schema.
	Pattern *pattern.Pattern
	Schema  *event.Schema
	KeyAttr string
	// Batch is the events-per-cut granularity (default 256). It is also
	// the replication granularity: the standby mirrors whole cuts.
	Batch int
	// Workers are the worker node listener addresses. The primary dials
	// each one; the successor re-dials them (or their replicated
	// replacements) on takeover.
	Workers []string
	// Standbys is the worker standby pool, shared between the primary's
	// node-failover path and the successor's takeover fallback dialing.
	Standbys []string
	// OnTagged receives the delivered match stream — gated, so a match
	// arrives only once across any single takeover.
	OnTagged func(shard.Tagged)
	// HeartbeatTimeout, SlackWindows and MaxJournalBytes pass through
	// to the coordinator's RecoveryConfig (and size the mirror journal).
	HeartbeatTimeout time.Duration
	SlackWindows     int
	MaxJournalBytes  int64
	// WrapWorker (tests) wraps each initially dialed worker connection,
	// by slot, to inject failures.
	WrapWorker func(i int, c cluster.Conn) cluster.Conn
}

// Pair is a replicated coordinator: one primary ingress, one hot
// standby, one replication link between them. Process, Finish,
// KillPrimary and KillStandby must run on a single goroutine (the
// feed); the OnTagged callback fires on collector or link goroutines.
type Pair struct {
	cfg  Config
	pool func() (cluster.Conn, error)
	g    *gate
	st   *standby
	ing  *cluster.Ingress

	replCh     chan wire.Frame
	replConn   cluster.Conn
	replDown   atomic.Bool
	cleanFinal atomic.Bool
	killedFlag atomic.Bool
	senderDone chan struct{}
	ackDone    chan struct{}
	replClosed bool

	// ring retains fed events the standby has not yet acknowledged
	// (consumer side): the takeover successor re-feeds the tail past
	// the last mirrored cut. Trimmed to the gate's acked watermark.
	ring []event.Event

	tookOver    bool
	standbyLost atomic.Bool
	degradeErr  atomic.Pointer[string]
	takeover    *recovery.Takeover
	err         error
}

// New dials the workers, starts the standby and its replication link,
// and brings up the primary coordinator at epoch 1.
func New(cfg Config) (*Pair, error) {
	if cfg.Pattern == nil || cfg.Schema == nil || cfg.KeyAttr == "" {
		return nil, fmt.Errorf("ha: Pattern, Schema and KeyAttr are required")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("ha: at least one worker address is required")
	}
	if cfg.OnTagged == nil {
		return nil, fmt.Errorf("ha: OnTagged is required (the pair exists to deliver a stream)")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	if cfg.Pattern.Window <= 0 {
		return nil, fmt.Errorf("ha: pattern window must be positive (it sizes the mirror journal)")
	}
	p := &Pair{
		cfg:        cfg,
		replCh:     make(chan wire.Frame, replDepth),
		senderDone: make(chan struct{}),
		ackDone:    make(chan struct{}),
	}
	if len(cfg.Standbys) > 0 {
		p.pool = cluster.DialStandbys(cfg.Standbys)
	}

	// The replication link is a real loopback stream — the v5 frames
	// serialize end to end, and the mirror's decoded events are fresh
	// allocations with no aliasing back into the primary.
	l, err := cluster.ListenTCP("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("ha: replication listener: %w", err)
	}
	p.st = &standby{
		window: cfg.Pattern.Window, slack: cfg.SlackWindows,
		maxBytes: cfg.MaxJournalBytes, l: l, done: make(chan struct{}),
	}
	go p.st.run()
	replConn, err := cluster.DialTCP(l.Addr())
	if err != nil {
		p.st.stop()
		<-p.st.done
		return nil, fmt.Errorf("ha: dialing replication link: %w", err)
	}
	p.replConn = replConn
	if err := replConn.Send(wire.Epoch{Epoch: 1}); err != nil {
		// The sender and ack reader have not started: tear down by hand.
		p.st.stop()
		<-p.st.done
		replConn.Close()
		return nil, fmt.Errorf("ha: opening replication link: %w", err)
	}
	p.g = &gate{out: cfg.OnTagged, publish: p.replSend}
	p.g.ackCond = sync.NewCond(&p.g.mu)
	go p.sender()
	go p.ackReader()

	conns := make([]cluster.Conn, len(cfg.Workers))
	for i, addr := range cfg.Workers {
		c, err := cluster.DialTCP(addr)
		if err != nil {
			for _, cc := range conns[:i] {
				cc.Close()
			}
			p.abort()
			return nil, fmt.Errorf("ha: dialing worker %d: %w", i, err)
		}
		if cfg.WrapWorker != nil {
			c = cfg.WrapWorker(i, c)
		}
		conns[i] = c
	}
	ing, err := cluster.NewIngress(cfg.Pattern, conns, cluster.IngressOptions{
		Batch: cfg.Batch, KeyAttr: cfg.KeyAttr, Schema: cfg.Schema,
		OnTagged:   p.g.onTagged,
		OnProgress: p.g.onProgress,
		OnCut:      p.onCut,
		Epoch:      1,
		Addrs:      cfg.Workers,
		Recovery: &cluster.RecoveryConfig{
			Standby: p.pool, HeartbeatTimeout: cfg.HeartbeatTimeout,
			SlackWindows: cfg.SlackWindows, MaxJournalBytes: cfg.MaxJournalBytes,
		},
	})
	if err != nil {
		p.abort()
		return nil, err
	}
	p.ing = ing
	return p, nil
}

// abort tears the replication machinery down from a failed
// construction: closing the link first unblocks the ack reader, so
// shutdownRepl's joins cannot hang on a healthy standby.
func (p *Pair) abort() {
	p.cleanFinal.Store(true) // suppress degrade bookkeeping: nothing ran
	p.replDown.Store(true)
	p.replConn.Close()
	p.st.stop()
	p.shutdownRepl()
}

// onCut is the primary's replication tap (ingress goroutine, behind the
// send barrier): the sealed cut becomes one ReplCut frame. Owner and
// Addrs are copied — the ingress mutates them after the call — while
// the event runs alias the journal-retained cut slices, which are
// immutable for the rest of the run.
func (p *Pair) onCut(ci cluster.CutInfo) {
	if p.replDown.Load() {
		return
	}
	rc := wire.ReplCut{
		UpTo: ci.UpTo, Final: ci.Final,
		Owner: make([]uint32, len(ci.Owner)),
		Addrs: append([]string(nil), ci.Addrs...),
	}
	for g, o := range ci.Owner {
		if o < 0 {
			rc.Owner[g] = ^uint32(0)
		} else {
			rc.Owner[g] = uint32(o)
		}
	}
	for g, evs := range ci.Bufs {
		if len(evs) > 0 {
			rc.Runs = append(rc.Runs, wire.ReplRun{Shard: uint32(g), Events: evs})
		}
	}
	p.replCh <- rc
	if !rc.Final && ci.UpTo > uint64(replLagCuts*p.cfg.Batch) {
		// Flow control: block the feed until the mirror is within the
		// replication window. The Final cut instead resolves through the
		// stand-down handshake in Finish.
		p.g.waitAcked(ci.UpTo - uint64(replLagCuts*p.cfg.Batch))
	}
}

// replSend enqueues a gate-published frame on the replication link.
func (p *Pair) replSend(f wire.Frame) {
	if p.replDown.Load() {
		return
	}
	p.replCh <- f
}

// sender owns all writes to the replication link: ReplCut frames from
// the ingress goroutine and ReplState frames from the gate serialize
// through one channel, keeping the single-writer contract of the Conn.
// After a link failure it keeps draining (discarding) so no producer
// ever blocks on a dead standby.
func (p *Pair) sender() {
	defer close(p.senderDone)
	for f := range p.replCh {
		if p.replDown.Load() {
			continue
		}
		if err := p.replConn.Send(f); err != nil {
			p.replDown.Store(true)
			p.replFailed(err)
		}
	}
}

// ackReader consumes the standby's acknowledgements: per-cut mirror
// watermarks, and the terminal stand-down ack that fully opens the
// gate at end of stream.
func (p *Pair) ackReader() {
	defer close(p.ackDone)
	for {
		f, err := p.replConn.Recv()
		if err != nil {
			if !p.cleanFinal.Load() {
				p.replDown.Store(true)
				p.replFailed(err)
			}
			return
		}
		if w, ok := f.(wire.Watermark); ok {
			if w.UpTo == math.MaxUint64 {
				p.cleanFinal.Store(true)
			}
			p.g.onAck(w.UpTo)
		}
	}
}

// replFailed routes a replication-link failure: after a clean final or
// a deliberate primary kill it is expected; otherwise the standby is
// lost and the primary degrades — the gate opens on the collector
// frontier alone and the run continues without takeover coverage.
func (p *Pair) replFailed(err error) {
	if p.cleanFinal.Load() || p.killedFlag.Load() {
		return
	}
	if p.standbyLost.CompareAndSwap(false, true) {
		msg := fmt.Sprintf("ha: replication link lost, primary continuing degraded: %v", err)
		p.degradeErr.Store(&msg)
	}
	p.g.degrade()
}

// Process feeds one event through the primary (or, after takeover, the
// successor). Same contract as Ingress.Process.
func (p *Pair) Process(ev *event.Event) {
	if p.err != nil {
		return
	}
	if !p.tookOver && !p.standbyLost.Load() {
		p.ring = append(p.ring, *ev)
		if len(p.ring) >= 4*p.cfg.Batch {
			p.trimRing()
		}
	}
	p.ing.Process(ev)
}

// trimRing drops the ring prefix the standby has acknowledged — those
// events live in the mirror journal now and will never be re-fed.
func (p *Pair) trimRing() {
	acked := p.g.ackedSeq()
	i := 0
	for i < len(p.ring) && p.ring[i].Seq <= acked {
		i++
	}
	if i > 0 {
		p.ring = append(p.ring[:0], p.ring[i:]...)
	}
}

// Finish flushes and drains the stream. On the primary path the final
// cut rides the replication link, the standby acknowledges it and
// stands down, and the gate opens fully — so every match (including
// the end-of-stream flush matches at the max watermark) is delivered
// before Finish returns.
func (p *Pair) Finish() error {
	if p.err != nil {
		return p.err
	}
	err := p.ing.Finish()
	p.shutdownRepl()
	if err != nil {
		return err
	}
	return nil
}

// shutdownRepl tears the replication machinery down in dependency
// order: wait for the ack reader (it exits on stand-down, link failure,
// or kill), stop the sender, then join the standby goroutine.
// Idempotent; safe on every path (clean finish, degraded, takeover).
func (p *Pair) shutdownRepl() {
	if p.replClosed {
		return
	}
	p.replClosed = true
	<-p.ackDone
	close(p.replCh)
	<-p.senderDone
	p.replConn.Close()
	<-p.st.done
}

// KillPrimary kills the primary coordinator as if its process died —
// the emission gate freezes, the replication link drops, every worker
// connection slams shut — and then drives the standby's takeover:
// a successor coordinator is built from the mirrored state and the
// stream resumes. Returns the double-death error when the standby was
// already lost; the takeover record is available from Takeover().
func (p *Pair) KillPrimary() error {
	if p.err != nil {
		return p.err
	}
	if p.tookOver {
		return fmt.Errorf("ha: primary already killed (successor running)")
	}
	p.killedFlag.Store(true)
	delivered := p.g.kill()
	p.replDown.Store(true)
	p.replConn.Close()
	p.ing.Kill()
	p.shutdownRepl()

	st := p.st.snapshot()
	if st.stopped || p.standbyLost.Load() {
		p.err = fmt.Errorf("ha: double death: primary killed after the standby was lost; the stream cannot resume")
		return p.err
	}
	detectedAt := st.detectedAt
	cause := st.cause
	if !st.dead {
		// The standby goroutine lost the accept race to the kill; the
		// death is still real, just attributed here.
		detectedAt = time.Now()
		cause = "ha: primary killed before the mirror observed it"
	}
	if st.journal == nil || st.cuts == 0 {
		p.err = fmt.Errorf("ha: takeover impossible: the standby mirrored no cut before the primary died")
		return p.err
	}
	return p.runTakeover(delivered, st, cause, detectedAt)
}

// runTakeover builds the successor from the mirrored state: re-dial
// every live slot (replicated address first, standby pool as fallback),
// construct a resuming ingress at epoch 2, re-feed the unacknowledged
// event tail, and record the incident.
func (p *Pair) runTakeover(delivered uint64, st mirrorState, cause string, detectedAt time.Time) error {
	slotIdx := make(map[int]int)
	var conns []cluster.Conn
	var addrs []string
	redialed := 0
	newOwner := make([]int, len(st.owner))
	fail := func(err error) error {
		for _, c := range conns {
			c.Close()
		}
		p.err = err
		return err
	}
	for g, o := range st.owner {
		if o < 0 {
			newOwner[g] = -1
			continue
		}
		idx, ok := slotIdx[o]
		if !ok {
			var c cluster.Conn
			addr := ""
			if o < len(st.addrs) {
				addr = st.addrs[o]
			}
			if addr != "" {
				if cc, err := cluster.DialTCP(addr); err == nil {
					c = cc
					redialed++
				}
			}
			if c == nil && p.pool != nil {
				if cc, err := p.pool(); err == nil {
					c = cc
				}
			}
			if c == nil {
				return fail(fmt.Errorf("ha: double death: worker slot %d (addr %q) unreachable and no standby remains", o, addr))
			}
			idx = len(conns)
			conns = append(conns, c)
			addrs = append(addrs, addr)
			slotIdx[o] = idx
		}
		newOwner[g] = idx
	}
	// The regenerated stream repeats, in the same deterministic merge
	// order, exactly the matches the primary delivered past the last
	// emission state the mirror received — drop that many.
	skip := delivered - st.count
	p.g.takeover(skip)
	ing, err := cluster.NewIngress(p.cfg.Pattern, conns, cluster.IngressOptions{
		Batch: p.cfg.Batch, KeyAttr: p.cfg.KeyAttr, Schema: p.cfg.Schema,
		OnTagged: p.g.onTagged,
		Epoch:    2,
		Addrs:    addrs,
		Recovery: &cluster.RecoveryConfig{
			Standby: p.pool, HeartbeatTimeout: p.cfg.HeartbeatTimeout,
			SlackWindows: p.cfg.SlackWindows, MaxJournalBytes: p.cfg.MaxJournalBytes,
		},
		Resume: &cluster.ResumeState{
			NextSeq: st.lastUpTo, Boundary: st.emitted,
			Owner: newOwner, Journal: st.journal,
		},
	})
	if err != nil {
		p.err = fmt.Errorf("ha: building takeover successor: %w", err)
		return p.err
	}
	p.ing = ing
	p.tookOver = true
	refed := 0
	for i := range p.ring {
		if p.ring[i].Seq <= st.lastUpTo {
			continue
		}
		ing.Process(&p.ring[i])
		refed++
	}
	p.ring = nil
	var replayCuts, replayEvents int
	for _, m := range ing.Migrations() {
		if m.Reason == "takeover" {
			replayCuts += m.ReplayCuts
			replayEvents += m.ReplayEvents
		}
	}
	p.takeover = &recovery.Takeover{
		Epoch: 2, Cause: cause, DetectedAt: detectedAt,
		Boundary: st.emitted, Skipped: skip,
		Workers: len(conns), Redialed: redialed,
		ReplayCuts: replayCuts, ReplayEvents: replayEvents,
		RefedEvents: refed, ResumedAt: time.Now(),
	}
	return nil
}

// KillStandby kills the standby as if its process died. The primary
// observes the link failure, degrades the gate, and continues; a later
// KillPrimary is a double death.
func (p *Pair) KillStandby() {
	p.st.stop()
	<-p.st.done
	// Deterministic degrade: don't wait for the ack reader to notice.
	if p.standbyLost.CompareAndSwap(false, true) {
		msg := "ha: standby killed; primary continuing degraded"
		p.degradeErr.Store(&msg)
	}
	p.g.degrade()
}

// Ingress exposes the live coordinator (primary, or successor after
// takeover) for metrics and placement introspection.
func (p *Pair) Ingress() *cluster.Ingress { return p.ing }

// Takeover reports the coordinator-takeover record (nil if the primary
// was never killed or takeover failed).
func (p *Pair) Takeover() *recovery.Takeover { return p.takeover }

// Degraded reports whether the pair lost its standby and continued
// without takeover coverage, with the cause.
func (p *Pair) Degraded() (bool, string) {
	if s := p.degradeErr.Load(); s != nil {
		return true, *s
	}
	return false, ""
}

// MirrorStats reports how much the standby mirrored (cuts, events) —
// the replication volume behind the overhead measurements.
func (p *Pair) MirrorStats() (cuts, events int) {
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	return p.st.cuts, p.st.events
}

// Delivered reports the matches emitted downstream so far.
func (p *Pair) Delivered() uint64 { return p.g.deliveredCount() }
