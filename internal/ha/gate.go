package ha

import (
	"sync"

	"acep/internal/shard"
	"acep/internal/wire"
)

// pendMatch is one match held by the emission gate: the merge tag plus
// the match body re-encoded through the wire codec. The body copy is
// load-bearing — under the cluster's owned-emit path the *match.Match a
// callback sees is scratch valid only during the call, and the gate by
// design outlives the call (it holds matches until the standby's mirror
// acknowledgement catches up). Encoding through AppendMatchBody keeps
// the copy byte-canonical: the re-decoded match serializes to exactly
// the bytes the original would have.
type pendMatch struct {
	seq  uint64
	src  int
	pat  uint32
	body []byte
}

// gate is the HA emission gate, the piece that turns replication into
// an exactly-once guarantee. A primary coordinator must not let a match
// reach the consumer before the standby's mirror could regenerate it:
// the gate queues every match the merge collector releases and emits
// only the prefix with Seq <= min(acked, released), where acked is the
// standby's last mirrored cut watermark and released the collector's
// own release frontier. Both bounds are monotone and the queue is in
// merge order, so the emitted set is always exactly {Seq <= T} — which
// is what lets one (EmittedUpTo, Count) pair describe it to the standby
// (see ReplState) and lets a successor resume with a watermark
// suppression plus a bounded skip count.
//
// The gate moves through three phases: gated (primary healthy),
// frozen (primary killed: nothing further escapes — the collector's
// shutdown drain is discarded), and direct (takeover successor: matches
// pass straight through, minus the skip prefix the dead primary already
// delivered). A replication-link loss instead degrades the gate: acked
// stops being a bound and emission follows released alone, trading the
// takeover guarantee for availability.
type gate struct {
	out     func(shard.Tagged)
	publish func(wire.Frame) // enqueues a ReplState on the repl link

	mu        sync.Mutex
	ackCond   *sync.Cond // broadcast whenever acked advances or gating ends
	q         []pendMatch
	head      int
	acked     uint64 // standby's mirrored watermark (ack-reader)
	released  uint64 // collector release frontier (progress tap)
	delivered uint64 // matches emitted downstream so far (D)
	emitted   uint64 // highest threshold published in a ReplState (E)
	frozen    bool
	degraded  bool
	direct    bool
	skip      uint64
}

// onTagged receives every match the merge collector delivers, on the
// collector goroutine.
func (g *gate) onTagged(t shard.Tagged) {
	g.mu.Lock()
	if g.direct {
		if g.skip > 0 {
			g.skip--
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
		g.out(t)
		return
	}
	if g.frozen {
		g.mu.Unlock()
		return
	}
	g.q = append(g.q, pendMatch{
		seq: t.Seq, src: t.Src, pat: t.Pattern,
		body: wire.AppendMatchBody(nil, t.M),
	})
	g.mu.Unlock()
}

// onProgress is the collector's release tap: matches at or below w have
// all been queued (delivery precedes the progress callback), so w is a
// complete emission bound.
func (g *gate) onProgress(w uint64) {
	g.mu.Lock()
	if w > g.released {
		g.released = w
	}
	g.drainLocked()
	g.mu.Unlock()
}

// onAck applies a standby acknowledgement (ack-reader goroutine). The
// final stand-down ack carries ^uint64(0), fully opening the gate for
// the end-of-stream flush matches.
func (g *gate) onAck(w uint64) {
	g.mu.Lock()
	if w > g.acked {
		g.acked = w
	}
	g.drainLocked()
	g.ackCond.Broadcast()
	g.mu.Unlock()
}

// waitAcked blocks the caller (the feed goroutine, from the replication
// tap) until the standby has acknowledged at least floor — the
// replication flow-control window. Bounding the primary's lead is what
// makes the mirror hot rather than nominal: without it a fast feed can
// run arbitrarily far ahead of the standby (the link and socket buffers
// absorb whole cut batches), leaving a takeover with a cold mirror and
// the consumer ring unbounded. Returns immediately once the gate stops
// gating (degraded, frozen, or successor mode).
func (g *gate) waitAcked(floor uint64) {
	g.mu.Lock()
	for g.acked < floor && !g.degraded && !g.frozen && !g.direct {
		g.ackCond.Wait()
	}
	g.mu.Unlock()
}

// drainLocked emits the queued prefix at or below the current
// threshold and publishes the new emission state to the standby.
func (g *gate) drainLocked() {
	if g.frozen || g.direct {
		return
	}
	t := g.released
	if !g.degraded && g.acked < t {
		t = g.acked
	}
	n := 0
	for g.head < len(g.q) && g.q[g.head].seq <= t {
		pm := g.q[g.head]
		g.q[g.head] = pendMatch{}
		g.head++
		m, err := wire.DecodeMatchBody(pm.body)
		if err != nil {
			continue // unreachable: the body is our own encode
		}
		g.out(shard.Tagged{M: m, Seq: pm.seq, Src: pm.src, Pattern: pm.pat})
		g.delivered++
		n++
	}
	if g.head == len(g.q) {
		g.q = g.q[:0]
		g.head = 0
	}
	if (n > 0 || t > g.emitted) && !g.degraded {
		g.emitted = t
		g.publish(wire.ReplState{EmittedUpTo: t, Count: g.delivered})
	}
}

// degrade drops the acked bound: the replication link is gone, the
// primary keeps serving on the collector frontier alone.
func (g *gate) degrade() {
	g.mu.Lock()
	g.degraded = true
	g.drainLocked()
	g.ackCond.Broadcast()
	g.mu.Unlock()
}

// kill freezes the gate — the primary is dead, nothing further may
// reach the consumer — and reports how many matches were delivered in
// total (the D of the takeover skip computation). The queue is
// discarded; the successor regenerates its matches.
func (g *gate) kill() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.frozen = true
	g.q = nil
	g.head = 0
	g.ackCond.Broadcast()
	return g.delivered
}

// takeover switches the gate to successor mode: matches pass straight
// through (there is no standby left to gate on), except the first skip
// regenerated ones — the ones the dead primary delivered past the last
// emission state its standby received.
func (g *gate) takeover(skip uint64) {
	g.mu.Lock()
	g.direct = true
	g.skip = skip
	g.ackCond.Broadcast()
	g.mu.Unlock()
}

// ackedSeq reports the standby's mirrored watermark as last
// acknowledged — the bound below which the consumer-side event ring may
// be trimmed.
func (g *gate) ackedSeq() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.acked
}

// deliveredCount reports the matches emitted downstream so far.
func (g *gate) deliveredCount() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.delivered
}
