package ha

import (
	"sync"
	"time"

	"acep/internal/shard"
	"acep/internal/wire"
)

// pendMatch is one match held by the emission gate: the merge tag plus
// the match body re-encoded through the wire codec. The body copy is
// load-bearing — under the cluster's owned-emit path the *match.Match a
// callback sees is scratch valid only during the call, and the gate by
// design outlives the call (it holds matches until the standby's mirror
// acknowledgement catches up). Encoding through AppendMatchBody keeps
// the copy byte-canonical: the re-decoded match serializes to exactly
// the bytes the original would have.
type pendMatch struct {
	seq  uint64
	src  int
	pat  uint32
	body []byte
}

// gate is the HA emission gate, the piece that turns replication into
// an exactly-once guarantee. A primary coordinator must not let a match
// reach the consumer before the standby's mirror could regenerate it:
// the gate queues every match the merge collector releases and emits
// only the prefix with Seq <= min(acked, released), where acked is the
// standby's last mirrored cut watermark and released the collector's
// own release frontier. Both bounds are monotone and the queue is in
// merge order, so the emitted set is always exactly {Seq <= T} — which
// is what lets one (EmittedUpTo, Count) pair describe it to the standby
// (see ReplState) and lets a successor resume with a watermark
// suppression plus a bounded skip count.
//
// With a lease configured (commit non-nil) the gate additionally obeys
// commit-then-emit: before emitting a prefix it commits the boundary
// and the projected delivered count to the lease arbiter, and a commit
// that fails — fence or unreachable arbiter — demotes the gate without
// emitting a byte. The committed state therefore always equals the
// gate's actual emitted state, which is what lets an out-of-process
// successor compute an exact skip count from the lease alone. (The one
// exception is a torn commit: commit succeeded, process died before the
// emit loop ran — an at-most-once window inherent to commit-then-emit
// without consumer-side dedup. A partition cannot open it: a failed or
// fenced commit emits nothing.)
//
// The gate moves through phases: gated (primary healthy), frozen
// (killed or demoted: nothing further escapes — except that a demotion
// arriving while a successfully committed prefix is mid-flight lets
// that prefix finish, keeping committed == emitted), and direct
// (takeover successor: matches pass straight through, minus the skip
// prefix the dead primary already delivered). A replication-link loss
// without a lease instead degrades the gate: acked stops being a bound
// and emission follows released alone, trading the takeover guarantee
// for availability.
type gate struct {
	out     func(shard.Tagged)
	publish func(wire.Frame) // enqueues a ReplState on the repl link
	// commit, when set, is the lease hook: it must durably record
	// (boundary, projected count) and report whether the gate may emit.
	// Called without the gate lock held (it does an RPC).
	commit func(boundary, count uint64) bool

	mu        sync.Mutex
	ackCond   *sync.Cond // broadcast whenever acked advances or gating ends
	q         []pendMatch
	head      int
	acked     uint64 // standby's mirrored watermark (ack-reader)
	released  uint64 // collector release frontier (progress tap)
	delivered uint64 // matches emitted downstream so far (D)
	emitted   uint64 // highest threshold published in a ReplState (E)
	frozen    bool
	killed    bool // frozen by kill (vs demotion): no further emission at all
	demoted   bool
	degraded  bool
	direct    bool
	draining  bool // a drain (possibly unlocked mid-commit) is in flight
	skip      uint64
}

// onTagged receives every match the merge collector delivers, on the
// collector goroutine.
func (g *gate) onTagged(t shard.Tagged) {
	g.mu.Lock()
	if g.direct {
		if g.skip > 0 {
			g.skip--
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
		g.out(t)
		return
	}
	if g.frozen {
		g.mu.Unlock()
		return
	}
	g.q = append(g.q, pendMatch{
		seq: t.Seq, src: t.Src, pat: t.Pattern,
		body: wire.AppendMatchBody(nil, t.M),
	})
	g.mu.Unlock()
}

// onProgress is the collector's release tap: matches at or below w have
// all been queued (delivery precedes the progress callback), so w is a
// complete emission bound.
func (g *gate) onProgress(w uint64) {
	g.mu.Lock()
	if w > g.released {
		g.released = w
	}
	g.drainLocked()
	g.mu.Unlock()
}

// onAck applies a standby acknowledgement (ack-reader goroutine). The
// final stand-down ack carries ^uint64(0), fully opening the gate for
// the end-of-stream flush matches.
func (g *gate) onAck(w uint64) {
	g.mu.Lock()
	if w > g.acked {
		g.acked = w
	}
	g.drainLocked()
	g.ackCond.Broadcast()
	g.mu.Unlock()
}

// waitAcked blocks the caller (the feed goroutine, from the replication
// tap) until the standby has acknowledged at least floor — the
// replication flow-control window. Bounding the primary's lead is what
// makes the mirror hot rather than nominal: without it a fast feed can
// run arbitrarily far ahead of the standby (the link and socket buffers
// absorb whole cut batches), leaving a takeover with a cold mirror and
// the consumer ring unbounded. Returns immediately once the gate stops
// gating (degraded, frozen, or successor mode).
func (g *gate) waitAcked(floor uint64) {
	g.mu.Lock()
	for g.acked < floor && !g.degraded && !g.frozen && !g.direct {
		g.ackCond.Wait()
	}
	g.mu.Unlock()
}

// waitAckedTimeout is waitAcked with an upper bound: it reports false
// when the standby still had not acknowledged floor after d — the
// silently-blackholed replication link that plain waitAcked would block
// on forever. The caller decides what a timeout means (degrade without
// a lease, demote with one).
func (g *gate) waitAckedTimeout(floor uint64, d time.Duration) bool {
	timedOut := false
	tm := time.AfterFunc(d, func() {
		g.mu.Lock()
		timedOut = true
		g.mu.Unlock()
		g.ackCond.Broadcast()
	})
	defer tm.Stop()
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.acked < floor && !g.degraded && !g.frozen && !g.direct && !timedOut {
		g.ackCond.Wait()
	}
	return g.acked >= floor || g.degraded || g.frozen || g.direct
}

// drainLocked emits the queued prefix at or below the current threshold
// and publishes the new emission state to the standby. With a commit
// hook the gate unlocks around the lease RPC, so the loop re-reads the
// bounds each pass until no further progress is possible; the draining
// flag keeps concurrent taps from interleaving their own drains through
// the unlocked window.
func (g *gate) drainLocked() {
	if g.frozen || g.direct || g.draining {
		return
	}
	g.draining = true
	for {
		t := g.released
		if !g.degraded && g.acked < t {
			t = g.acked
		}
		// The emit prefix is fixed before any unlock: every match with
		// seq <= t <= released is already queued (the collector queues
		// matches before advancing the release frontier past them), so
		// the projected count cannot drift while the lock is dropped.
		n := 0
		for i := g.head; i < len(g.q) && g.q[i].seq <= t; i++ {
			n++
		}
		if n == 0 && t <= g.emitted {
			break
		}
		if g.commit != nil && !g.degraded {
			proj := g.delivered + uint64(n)
			g.mu.Unlock()
			ok := g.commit(t, proj)
			g.mu.Lock()
			if !ok {
				g.demoteLocked()
				break
			}
			if g.killed || g.direct {
				break
			}
			// A demotion that raced the commit still lets this committed
			// prefix out: the lease already records it, and holding it
			// back would leave the lease ahead of the actually delivered
			// stream (a successor would over-skip). demoteLocked defers
			// the queue discard while draining is set, so the prefix is
			// still intact here.
		}
		for k := 0; k < n; k++ {
			pm := g.q[g.head]
			g.q[g.head] = pendMatch{}
			g.head++
			m, err := wire.DecodeMatchBody(pm.body)
			if err != nil {
				continue // unreachable: the body is our own encode
			}
			g.out(shard.Tagged{M: m, Seq: pm.seq, Src: pm.src, Pattern: pm.pat})
			g.delivered++
		}
		if g.head == len(g.q) {
			g.q = g.q[:0]
			g.head = 0
		}
		if (n > 0 || t > g.emitted) && !g.degraded {
			g.emitted = t
			g.publish(wire.ReplState{EmittedUpTo: t, Count: g.delivered})
		}
		if g.frozen {
			break // demoted mid-commit: the committed prefix is out, stop
		}
		if g.commit == nil || g.degraded {
			break // no unlock happened, the bounds cannot have moved
		}
	}
	g.draining = false
	if g.demoted {
		// A demotion that landed while this drain was in flight deferred
		// its queue discard to us (see demoteLocked); nothing beyond the
		// committed prefix may ever escape now.
		g.q = nil
		g.head = 0
	}
}

// demoteLocked freezes the gate after a lost lease: queued uncommitted
// matches are discarded (the successor regenerates them), nothing
// further escapes. While a drain is in flight — possibly unlocked
// mid-commit — the discard is deferred to the drain's exit: the drain
// must still see its fixed prefix to emit what the lease already
// records as committed, and yanking the queue under it would both
// panic the emit loop and leave the lease count ahead of the stream.
func (g *gate) demoteLocked() {
	if g.killed || g.direct || g.demoted {
		return
	}
	g.demoted = true
	g.frozen = true
	if !g.draining {
		g.q = nil
		g.head = 0
	}
	g.ackCond.Broadcast()
}

// demote is the external demotion entry (feed goroutine: keepalive
// failure or replication timeout with a lease). It reports the last
// committed emission state for the demotion record.
func (g *gate) demote() (boundary, count uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.demoteLocked()
	return g.emitted, g.delivered
}

// degrade drops the acked bound: the replication link is gone, the
// primary keeps serving on the collector frontier alone.
func (g *gate) degrade() {
	g.mu.Lock()
	g.degraded = true
	g.drainLocked()
	g.ackCond.Broadcast()
	g.mu.Unlock()
}

// kill freezes the gate — the primary is dead, nothing further may
// reach the consumer — and reports how many matches were delivered in
// total (the D of the takeover skip computation). The queue is
// discarded; the successor regenerates its matches.
func (g *gate) kill() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.frozen = true
	g.killed = true
	g.q = nil
	g.head = 0
	g.ackCond.Broadcast()
	return g.delivered
}

// takeover switches the gate to successor mode: matches pass straight
// through (there is no standby left to gate on), except the first skip
// regenerated ones — the ones the dead primary delivered past the last
// emission state its standby received.
func (g *gate) takeover(skip uint64) {
	g.mu.Lock()
	g.direct = true
	g.skip = skip
	g.ackCond.Broadcast()
	g.mu.Unlock()
}

// ackedSeq reports the standby's mirrored watermark as last
// acknowledged — the bound below which the consumer-side event ring may
// be trimmed.
func (g *gate) ackedSeq() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.acked
}

// deliveredCount reports the matches emitted downstream so far.
func (g *gate) deliveredCount() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.delivered
}

// committedState reports the emission state as last published/committed
// — what a clean lease release should record.
func (g *gate) committedState() (boundary, count uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.emitted, g.delivered
}
