package ha

import (
	"fmt"
	"math"
	"sync"
	"time"

	"acep/internal/cluster"
	"acep/internal/event"
	recovery "acep/internal/recover"
	"acep/internal/wire"
)

// standby is the hot-standby side of the replication link: it tails the
// primary's sealed-cut stream into a mirror journal — the same journal
// type the primary itself retains for worker failover — together with
// the owner table, the per-slot worker addresses, and the primary's
// emission state. Every mirrored cut is acknowledged with its
// watermark; the primary's emission gate holds matches until the cut
// producing them is acknowledged, which is what makes the mirror's
// (lastUpTo, emitted, count) triple sufficient to resume the stream
// byte-identically after a takeover.
//
// run owns the link end to end on one goroutine; the Pair reads the
// mirrored state (snapshot) only after that goroutine has exited — on
// primary death, stand-down, or KillStandby.
type standby struct {
	window   event.Time
	slack    int
	maxBytes int64

	l    *cluster.Listener
	done chan struct{}

	mu         sync.Mutex
	conn       cluster.Conn
	journal    *recovery.Journal
	lastUpTo   uint64 // newest mirrored cut watermark
	emitted    uint64 // primary's last received EmittedUpTo (E*)
	count      uint64 // primary's delivered count at that boundary (N*)
	owner      []int
	addrs      []string
	cuts       int
	events     int
	finished   bool // saw the Final cut: clean stand-down
	stopped    bool // KillStandby: deliberate shutdown
	dead       bool // primary death observed on the link
	cause      string
	detectedAt time.Time
}

// mirrorState is the snapshot a takeover resumes from.
type mirrorState struct {
	journal    *recovery.Journal
	lastUpTo   uint64
	emitted    uint64
	count      uint64
	owner      []int
	addrs      []string
	cuts       int
	events     int
	finished   bool
	stopped    bool
	dead       bool
	cause      string
	detectedAt time.Time
}

// run accepts the primary's replication dial and tails the link until
// the primary stands it down (Final cut), dies, or the standby itself
// is stopped.
func (s *standby) run() {
	defer close(s.done)
	conn, err := s.l.Accept()
	if err != nil {
		s.fail(fmt.Errorf("ha: standby accept: %w", err))
		return
	}
	s.mu.Lock()
	s.conn = conn
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		conn.Close()
		return
	}
	for {
		f, err := conn.Recv()
		if err != nil {
			s.fail(fmt.Errorf("ha: replication link: %w", err))
			conn.Close()
			return
		}
		switch v := f.(type) {
		case wire.Epoch:
			// Link opening: the primary declares its epoch. The mirror
			// only ever serves one primary per run, so recording it is
			// all the fencing this side needs.
		case wire.ReplCut:
			s.mirror(v)
			if v.Final {
				// Stand-down: the stream ended cleanly on the primary.
				// The terminal ack fully opens the primary's gate (its
				// end-of-stream flush matches carry the max watermark).
				conn.Send(wire.Watermark{UpTo: math.MaxUint64}) //nolint:errcheck // primary may already be gone
				s.mu.Lock()
				s.finished = true
				s.mu.Unlock()
				conn.Close()
				return
			}
			if err := conn.Send(wire.Watermark{UpTo: v.UpTo}); err != nil {
				s.fail(fmt.Errorf("ha: acking mirrored cut: %w", err))
				conn.Close()
				return
			}
		case wire.ReplState:
			s.mu.Lock()
			s.emitted, s.count = v.EmittedUpTo, v.Count
			if s.journal != nil {
				// Retention follows the primary's *emission* boundary,
				// not the mirrored watermark: matches above it may need
				// regeneration on takeover, so the history producing
				// them must stay replayable.
				s.journal.Advance(v.EmittedUpTo)
			}
			s.mu.Unlock()
		default:
			s.fail(fmt.Errorf("ha: unexpected %s frame on the replication link", wire.KindOf(f)))
			conn.Close()
			return
		}
	}
}

// mirror appends one replicated cut to the mirror journal, creating it
// lazily at the first cut (which fixes the global shard count).
func (s *standby) mirror(v wire.ReplCut) {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := len(v.Owner)
	if s.journal == nil && total > 0 {
		j, err := recovery.NewJournal(recovery.JournalConfig{
			Window: s.window, Shards: total,
			SlackWindows: s.slack, MaxBytes: s.maxBytes,
		})
		if err != nil {
			return // window invalid: New validated it, unreachable
		}
		s.journal = j
	}
	if s.journal != nil {
		perShard := make([][]event.Event, total)
		for _, r := range v.Runs {
			if int(r.Shard) < total {
				perShard[r.Shard] = r.Events
			}
		}
		s.journal.Append(perShard, v.UpTo)
	}
	s.lastUpTo = v.UpTo
	s.owner = s.owner[:0]
	for _, o := range v.Owner {
		if o == ^uint32(0) {
			s.owner = append(s.owner, -1)
		} else {
			s.owner = append(s.owner, int(o))
		}
	}
	s.addrs = append(s.addrs[:0], v.Addrs...)
	s.cuts++
	for _, r := range v.Runs {
		s.events += len(r.Events)
	}
}

// fail records the primary's death as observed on the link — unless the
// link ended for a benign reason (stand-down or deliberate stop).
func (s *standby) fail(err error) {
	s.mu.Lock()
	if !s.finished && !s.stopped && !s.dead {
		s.dead = true
		s.cause = err.Error()
		s.detectedAt = time.Now()
	}
	s.mu.Unlock()
}

// stop shuts the standby down deliberately (the standby-death half of
// the kill matrix). Safe before or after the link is up.
func (s *standby) stop() {
	s.mu.Lock()
	s.stopped = true
	c := s.conn
	s.mu.Unlock()
	s.l.Close()
	if c != nil {
		c.Close()
	}
}

// snapshot copies the mirrored state. Call only after done is closed.
func (s *standby) snapshot() mirrorState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return mirrorState{
		journal: s.journal, lastUpTo: s.lastUpTo,
		emitted: s.emitted, count: s.count,
		owner: append([]int(nil), s.owner...),
		addrs: append([]string(nil), s.addrs...),
		cuts:  s.cuts, events: s.events,
		finished: s.finished, stopped: s.stopped, dead: s.dead,
		cause: s.cause, detectedAt: s.detectedAt,
	}
}
