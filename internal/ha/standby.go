package ha

import (
	"fmt"
	"math"
	"sync"
	"time"

	"acep/internal/cluster"
	"acep/internal/event"
	recovery "acep/internal/recover"
	"acep/internal/wire"
)

// StandbyServer is the standby side of the replication link: it tails
// the primary's sealed-cut stream into a mirror journal — the same
// journal type the primary itself retains for worker failover — together
// with the owner table, the per-slot worker addresses, and the primary's
// emission state. Every mirrored cut is acknowledged with its watermark;
// the primary's emission gate holds matches until the cut producing them
// is acknowledged, which is what makes the mirror's (lastUpTo, emitted,
// count) triple sufficient to resume the stream byte-identically after a
// takeover.
//
// Since the partition-tolerance work the server is process-agnostic: it
// speaks only the wire protocol. The opening Epoch frame carries the
// journal sizing (window, slack, byte bound), so `acep-standby` hosts a
// StandbyServer with no pattern knowledge; and a takeover successor
// pulls the mirrored state back out over TCP with the Handover /
// HandoverState exchange instead of reading this struct's memory. The
// in-process standby the Pair spawns by default is the same server on a
// loopback listener — one code path for both deployments.
//
// The serve loop owns sessions sequentially: first the primary's
// replication session, then any number of handover reads. Duplicated or
// reordered replication frames are detected by the dense ReplCut.Cut
// ordinal (re-acked, not re-mirrored); a gap means a dropped frame, and
// the server fails the link rather than journal incomplete history.
type StandbyServer struct {
	l    *cluster.Listener
	done chan struct{}

	// Logf, when set before Serve, receives session lifecycle lines
	// (used by cmd/acep-standby).
	Logf func(format string, args ...any)

	mu         sync.Mutex
	conn       cluster.Conn // active session conn (Stop must unblock it)
	journal    *recovery.Journal
	window     event.Time
	slack      int
	maxBytes   int64
	lastUpTo   uint64 // newest mirrored cut watermark
	lastCut    uint64 // newest mirrored cut ordinal (dedup/gap detector)
	emitted    uint64 // primary's last received EmittedUpTo (E*)
	count      uint64 // primary's delivered count at that boundary (N*)
	owner      []uint32
	addrs      []string
	cuts       int
	events     int
	mirrored   bool // a replication session has produced at least one cut
	finished   bool // saw the Final cut: clean stand-down
	stopped    bool // deliberate shutdown
	dead       bool // primary death observed on the link
	cause      string
	detectedAt time.Time
}

// NewStandbyServer wraps a listener; call Serve (usually on its own
// goroutine) to start accepting the primary.
func NewStandbyServer(l *cluster.Listener) *StandbyServer {
	return &StandbyServer{l: l, done: make(chan struct{})}
}

// Addr reports the listener address the primary should dial.
func (s *StandbyServer) Addr() string { return s.l.Addr() }

func (s *StandbyServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts sessions until Stop: one replication session from the
// primary, then handover reads from takeover successors. Sessions are
// served sequentially — the protocol never overlaps them (a handover
// only happens once the primary is dead or demoted).
func (s *StandbyServer) Serve() {
	defer close(s.done)
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // Stop closed the listener
		}
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			conn.Close()
			return
		}
		s.serveSession(conn)
	}
}

// serveSession dispatches one accepted connection on its opening frame.
func (s *StandbyServer) serveSession(conn cluster.Conn) {
	s.mu.Lock()
	s.conn = conn
	stopped := s.stopped
	s.mu.Unlock()
	defer func() {
		conn.Close()
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
	}()
	if stopped {
		return // Stop raced the accept; don't serve a dead server
	}
	f, err := conn.Recv()
	if err != nil {
		return // dialer vanished before speaking; not a primary death
	}
	switch v := f.(type) {
	case wire.Epoch:
		s.logf("replication session open: epoch %d window %d slack %d maxbytes %d",
			v.Epoch, v.Window, v.Slack, v.MaxBytes)
		s.mu.Lock()
		s.window = event.Time(v.Window)
		s.slack = int(v.Slack)
		s.maxBytes = int64(v.MaxBytes)
		s.mu.Unlock()
		s.serveReplication(conn)
	case wire.Handover:
		s.logf("handover read: successor epoch %d", v.Epoch)
		s.serveHandover(conn)
	default:
		s.fail(fmt.Errorf("ha: unexpected %s frame opening a standby session", wire.KindOf(f)))
	}
}

// serveReplication tails the primary until it stands the link down
// (Final cut), dies, or the standby is stopped.
func (s *StandbyServer) serveReplication(conn cluster.Conn) {
	for {
		f, err := conn.Recv()
		if err != nil {
			s.fail(fmt.Errorf("ha: replication link: %w", err))
			return
		}
		switch v := f.(type) {
		case wire.Epoch:
			// Re-declaration on an open link: tolerated, no-op.
		case wire.ReplCut:
			switch dup, gap := s.mirror(v); {
			case gap:
				// A replication frame was lost in transit. Journaling on
				// would silently hand a successor incomplete history, so
				// fail the link — the primary degrades (or demotes) and
				// the mirror stops advertising itself as current.
				s.fail(fmt.Errorf("ha: replication gap: cut %d arrived after cut %d", v.Cut, s.snapLastCut()))
				return
			case dup:
				// Duplicate or reordered-behind frame: the cut is already
				// mirrored. Re-ack so a lost ack cannot stall the
				// primary's flow control, but touch nothing.
				if serr := conn.Send(wire.Watermark{UpTo: v.UpTo}); serr != nil {
					s.fail(fmt.Errorf("ha: re-acking duplicated cut: %w", serr))
					return
				}
				continue
			}
			if v.Final {
				// Stand-down: the stream ended cleanly on the primary.
				// The terminal ack fully opens the primary's gate (its
				// end-of-stream flush matches carry the max watermark).
				// Keep the session open — late frames already in flight
				// (a delayed ReplState, a duplicated Final) must land
				// harmlessly, not race our close; the primary closes
				// the link once its own teardown finishes.
				conn.Send(wire.Watermark{UpTo: math.MaxUint64}) //nolint:errcheck // primary may already be gone
				s.mu.Lock()
				s.finished = true
				cuts, events := s.cuts, s.events
				s.mu.Unlock()
				s.logf("stand-down: %d cuts, %d events mirrored", cuts, events)
				continue
			}
			if err := conn.Send(wire.Watermark{UpTo: v.UpTo}); err != nil {
				s.fail(fmt.Errorf("ha: acking mirrored cut: %w", err))
				return
			}
		case wire.ReplState:
			s.mu.Lock()
			if v.EmittedUpTo >= s.emitted {
				// Monotone guard: a reordered stale state frame must not
				// roll the resume point backward.
				s.emitted, s.count = v.EmittedUpTo, v.Count
				if s.journal != nil {
					// Retention follows the primary's *emission* boundary,
					// not the mirrored watermark: matches above it may
					// need regeneration on takeover, so the history
					// producing them must stay replayable.
					s.journal.Advance(v.EmittedUpTo)
				}
			}
			s.mu.Unlock()
		default:
			s.fail(fmt.Errorf("ha: unexpected %s frame on the replication link", wire.KindOf(f)))
			return
		}
	}
}

// mirror appends one replicated cut to the mirror journal, creating it
// lazily at the first cut (which fixes the global shard count). It
// reports dup for an already-mirrored ordinal and gap for a skipped one.
func (s *StandbyServer) mirror(v wire.ReplCut) (dup, gap bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v.Cut <= s.lastCut && s.mirrored {
		return true, false
	}
	if v.Cut != s.lastCut+1 {
		return false, true
	}
	total := len(v.Owner)
	if s.journal == nil && total > 0 {
		j, err := recovery.NewJournal(recovery.JournalConfig{
			Window: s.window, Shards: total,
			SlackWindows: s.slack, MaxBytes: s.maxBytes,
		})
		if err != nil {
			return false, false // window invalid: the primary validated it, unreachable
		}
		s.journal = j
	}
	if s.journal != nil {
		perShard := make([][]event.Event, total)
		for _, r := range v.Runs {
			if int(r.Shard) < total {
				perShard[r.Shard] = r.Events
			}
		}
		s.journal.Append(perShard, v.UpTo)
	}
	s.lastUpTo = v.UpTo
	s.lastCut = v.Cut
	s.mirrored = true
	s.owner = append(s.owner[:0], v.Owner...)
	s.addrs = append(s.addrs[:0], v.Addrs...)
	s.cuts++
	for _, r := range v.Runs {
		s.events += len(r.Events)
	}
	return false, false
}

// serveHandover streams the mirrored state to a takeover successor: the
// HandoverState header, then each retained journal cut as a ReplCut
// frame. Reading is idempotent — the mirror is not consumed.
func (s *StandbyServer) serveHandover(conn cluster.Conn) {
	s.mu.Lock()
	hs := wire.HandoverState{
		LastUpTo: s.lastUpTo, LastCut: s.lastCut,
		EmittedUpTo: s.emitted, Count: s.count,
		Events:   uint64(s.events),
		Finished: s.finished, Dead: s.dead, Cause: s.cause,
		Owner: append([]uint32(nil), s.owner...),
		Addrs: append([]string(nil), s.addrs...),
	}
	if !s.detectedAt.IsZero() {
		hs.DetectedAt = uint64(s.detectedAt.UnixNano())
	}
	if s.journal != nil {
		hs.Cuts = uint64(s.journal.Cuts())
	}
	j := s.journal
	s.mu.Unlock()
	// The journal is only ever mutated from this serve goroutine
	// (sessions are sequential), so walking it without the lock is safe.
	if conn.Send(hs) != nil {
		return
	}
	if j != nil {
		var cut uint64
		j.EachCut(func(perShard [][]event.Event, upTo uint64) error { //nolint:errcheck // send failure just ends the walk
			cut++
			rc := wire.ReplCut{UpTo: upTo, Cut: cut}
			for g, evs := range perShard {
				if len(evs) > 0 {
					rc.Runs = append(rc.Runs, wire.ReplRun{Shard: uint32(g), Events: evs})
				}
			}
			return conn.Send(rc)
		})
	}
}

// snapLastCut reads the newest mirrored ordinal (error-message helper).
func (s *StandbyServer) snapLastCut() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCut
}

// fail records the primary's death as observed on the link — unless the
// link ended for a benign reason (stand-down or deliberate stop).
func (s *StandbyServer) fail(err error) {
	s.mu.Lock()
	if !s.finished && !s.stopped && !s.dead {
		s.dead = true
		s.cause = err.Error()
		s.detectedAt = time.Now()
	}
	s.mu.Unlock()
	s.logf("replication session over: %v", err)
}

// Stop shuts the server down deliberately (the standby-death half of the
// kill matrix, or process shutdown). Safe before or after any session.
func (s *StandbyServer) Stop() {
	s.mu.Lock()
	s.stopped = true
	conn := s.conn
	s.mu.Unlock()
	s.l.Close()
	if conn != nil {
		conn.Close() // unblock a session mid-Recv
	}
}

// Wait blocks until the serve loop has exited.
func (s *StandbyServer) Wait() { <-s.done }

// Stats reports how much the server mirrored (cuts, events) — the
// replication volume behind the overhead measurements.
func (s *StandbyServer) Stats() (cuts, events int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cuts, s.events
}

// mirrorState is the snapshot a takeover resumes from, rebuilt on the
// successor side from the handover exchange.
type mirrorState struct {
	journal    *recovery.Journal
	lastUpTo   uint64
	emitted    uint64
	count      uint64
	owner      []int
	addrs      []string
	cuts       int
	events     int
	finished   bool
	dead       bool
	cause      string
	detectedAt time.Time
}
