package ha

import (
	"math"
	"strings"
	"testing"
	"time"

	"acep/internal/chaos"
	"acep/internal/cluster"
	"acep/internal/gen"
	"acep/internal/lease"
	"acep/internal/wire"
)

// startArbiter brings up a lease arbiter on loopback TCP for one test.
func startArbiter(t *testing.T) (string, *lease.Server) {
	t.Helper()
	arb := lease.New()
	addr, err := arb.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(arb.Close)
	return addr, arb
}

// TestSplitBrainLeaseArbitrated is the acceptance drill for partition
// tolerance: the replication link is silently blackholed both ways
// mid-stream while the old primary stays alive. The lease demotes it —
// gate frozen, a Demotion recorded, nothing further emitted — the
// successor acquires the lease and takes over, and the delivered stream
// is byte-identical to a single-process engine: exactly one ingress
// ever emits.
func TestSplitBrainLeaseArbitrated(t *testing.T) {
	w := haWorkload(t, "traffic")
	want := runShardedRef(t, w, gen.Sequence, 6)
	rig := startHARig(t, w, gen.Sequence, 0)
	arbAddr, _ := startArbiter(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	var wrap *chaos.Wrapper
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, OnTagged: rec.rec,
		LeaseAddr: arbAddr, LeaseTTL: 300 * time.Millisecond,
		ReplTimeout: 500 * time.Millisecond,
		WrapRepl: func(c cluster.Conn) cluster.Conn {
			wrap = chaos.Wrap(c, chaos.Config{Seed: 0xbad})
			return wrap
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		if i == 2000 {
			wrap.Partition() // both directions, silently
		}
		p.Process(&w.Events[i])
	}
	// The replication flow-control window trips during the feed: the
	// blackholed standby stops acknowledging, and with a lease that is a
	// demotion, not a degrade.
	d := p.Demotion()
	if d == nil {
		t.Fatal("partitioned lease-holding primary never demoted")
	}
	if !strings.Contains(d.Cause, "stalled") && !strings.Contains(d.Cause, "replication") {
		t.Fatalf("demotion cause %q does not name the replication loss", d.Cause)
	}
	if deg, cause := p.Degraded(); deg {
		t.Fatalf("lease-holding primary degraded (%s) instead of demoting", cause)
	}
	// The frozen primary must not have emitted past its committed state.
	if got := p.Delivered(); got != d.Count {
		t.Fatalf("demoted primary delivered %d matches but committed %d — commit-then-emit violated", got, d.Count)
	}
	if err := p.KillPrimary(); err != nil {
		t.Fatalf("lease-arbitrated takeover failed: %v", err)
	}
	if err := p.Finish(); err != nil {
		t.Fatalf("finish after takeover: %v", err)
	}
	requireIdentical(t, "split brain", rec, want)
	tk := p.Takeover()
	if tk == nil {
		t.Fatal("no takeover record after a lease-arbitrated takeover")
	}
	if tk.Skipped != 0 && want.n == 0 {
		t.Fatalf("takeover skipped %d with an empty reference", tk.Skipped)
	}
}

// TestDemotedWithoutTakeoverErrors: a demoted primary that is never
// taken over must finish with an explicit error — a silently truncated
// stream would hide the partition from the operator.
func TestDemotedWithoutTakeoverErrors(t *testing.T) {
	w := haWorkload(t, "traffic")
	rig := startHARig(t, w, gen.Sequence, 0)
	arbAddr, _ := startArbiter(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	var wrap *chaos.Wrapper
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, OnTagged: rec.rec,
		LeaseAddr: arbAddr, LeaseTTL: 300 * time.Millisecond,
		ReplTimeout: 400 * time.Millisecond,
		WrapRepl: func(c cluster.Conn) cluster.Conn {
			wrap = chaos.Wrap(c, chaos.Config{Seed: 0xbad})
			return wrap
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		if i == 2000 {
			wrap.Partition()
		}
		p.Process(&w.Events[i])
	}
	if p.Demotion() == nil {
		t.Fatal("partitioned primary never demoted")
	}
	err = p.Finish()
	if err == nil || !strings.Contains(err.Error(), "demoted without takeover") {
		t.Fatalf("Finish on a demoted, never-superseded primary returned %v, want an explicit demotion error", err)
	}
}

// TestDemotedRingCapForfeitsTakeover: a demoted primary retains the
// takeover tail (the events the frozen mirror never saw) only up to
// demotedRingCap — past it the ring is reclaimed and a later
// KillPrimary reports the forfeited takeover explicitly instead of
// building a silently lossy successor or growing memory without bound.
func TestDemotedRingCapForfeitsTakeover(t *testing.T) {
	oldCap := demotedRingCap
	demotedRingCap = 256
	defer func() { demotedRingCap = oldCap }()
	w := haWorkload(t, "traffic")
	rig := startHARig(t, w, gen.Sequence, 0)
	arbAddr, _ := startArbiter(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	var wrap *chaos.Wrapper
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, OnTagged: rec.rec,
		LeaseAddr: arbAddr, LeaseTTL: 300 * time.Millisecond,
		ReplTimeout: 400 * time.Millisecond,
		WrapRepl: func(c cluster.Conn) cluster.Conn {
			wrap = chaos.Wrap(c, chaos.Config{Seed: 0xbad})
			return wrap
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		if i == 2000 {
			wrap.Partition()
		}
		p.Process(&w.Events[i])
	}
	if p.Demotion() == nil {
		t.Fatal("partitioned primary never demoted")
	}
	if !p.ringForfeited {
		t.Fatalf("demoted primary fed %d events past the partition without tripping the %d-event ring cap", len(w.Events)-2000, demotedRingCap)
	}
	if err := p.KillPrimary(); err == nil || !strings.Contains(err.Error(), "takeover impossible") {
		t.Fatalf("KillPrimary after the ring cap returned %v, want an explicit forfeit error", err)
	}
}

// TestLeaseFencedPrimaryDemotes: a stale primary attempting to emit
// after another holder fenced it off the lease must demote, not emit.
// The feed pauses past the TTL (a long GC pause, a suspended VM), an
// external holder acquires, and the primary's next commit is denied.
func TestLeaseFencedPrimaryDemotes(t *testing.T) {
	w := haWorkload(t, "traffic")
	rig := startHARig(t, w, gen.Sequence, 0)
	arbAddr, _ := startArbiter(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, OnTagged: rec.rec,
		LeaseAddr: arbAddr, LeaseTTL: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		if i == 2500 {
			// Pause past the TTL so the grant lapses, then usurp it.
			time.Sleep(600 * time.Millisecond)
			fenceLease(t, arbAddr, 7)
		}
		p.Process(&w.Events[i])
	}
	d := p.Demotion()
	if d == nil {
		t.Fatal("fenced primary never demoted")
	}
	if !strings.Contains(d.Cause, "fenced") {
		t.Fatalf("demotion cause %q does not name the fence", d.Cause)
	}
	// Commit-then-emit: the fenced drain emitted nothing, so delivered
	// equals the last successfully committed count exactly.
	if got := p.Delivered(); got != d.Count {
		t.Fatalf("fenced primary delivered %d matches but committed %d", got, d.Count)
	}
	if err := p.Finish(); err == nil || !strings.Contains(err.Error(), "demoted without takeover") {
		t.Fatalf("Finish returned %v after a fence", err)
	}
}

// fenceLease acquires the arbiter's lease as a foreign holder (the
// usurper must wait out any live grant first).
func fenceLease(t *testing.T, addr string, holder uint64) {
	t.Helper()
	cl, err := lease.Dial(t.Context(), addr, cluster.DialPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Acquire(holder, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Granted {
		t.Fatalf("usurper denied: lease still held by %d at epoch %d", f.Holder, f.Epoch)
	}
}

// TestChaosFaultyLinkAbsorbed: duplicated and delayed replication
// frames — the only faults the cut-ordinal protocol absorbs silently —
// must have zero effect on the delivered stream, with no degrade.
func TestChaosFaultyLinkAbsorbed(t *testing.T) {
	w := haWorkload(t, "traffic")
	want := runShardedRef(t, w, gen.Sequence, 6)
	rig := startHARig(t, w, gen.Sequence, 0)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	var wrap *chaos.Wrapper
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, OnTagged: rec.rec,
		WrapRepl: func(c cluster.Conn) cluster.Conn {
			wrap = chaos.Wrap(c, chaos.Config{
				Seed: 0xfeed, DupProb: 0.08,
				DelayProb: 0.15, MaxDelay: time.Millisecond,
			})
			return wrap
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		p.Process(&w.Events[i])
	}
	if err := p.Finish(); err != nil {
		t.Fatalf("finish under dup/delay faults: %v", err)
	}
	if deg, cause := p.Degraded(); deg {
		t.Fatalf("absorbable faults degraded the pair: %s", cause)
	}
	requireIdentical(t, "faulty link", rec, want)
	st := wrap.Stats()
	if st.Dups+st.Delays == 0 {
		t.Fatal("fault injector injected nothing; test is vacuous")
	}
}

// TestChaosDroppedCutDegrades: a silently dropped replication frame is
// NOT absorbable — the next cut's ordinal exposes the gap, the standby
// fails the link rather than journal incomplete history, and the
// leaseless primary degrades (still byte-exact, no takeover coverage).
func TestChaosDroppedCutDegrades(t *testing.T) {
	w := haWorkload(t, "traffic")
	want := runShardedRef(t, w, gen.Sequence, 6)
	rig := startHARig(t, w, gen.Sequence, 0)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	var wrap *chaos.Wrapper
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, OnTagged: rec.rec,
		WrapRepl: func(c cluster.Conn) cluster.Conn {
			wrap = chaos.Wrap(c, chaos.Config{Seed: 0xd0d0})
			return wrap
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		switch i {
		case 1000:
			wrap.PartitionSend() // outbound frames vanish silently
		case 1200:
			wrap.Heal() // the next cut arrives with a gapped ordinal
		}
		p.Process(&w.Events[i])
	}
	if err := p.Finish(); err != nil {
		t.Fatalf("finish after a dropped cut: %v", err)
	}
	deg, cause := p.Degraded()
	if !deg {
		t.Fatal("dropped replication frames did not degrade the pair")
	}
	if cause == "" {
		t.Fatal("degradation carried no cause")
	}
	if p.Takeover() != nil {
		t.Fatal("degraded run recorded a takeover")
	}
	requireIdentical(t, "dropped cut", rec, want)
}

// TestOutOfProcessStandbyTakeover exercises the acep-standby deployment
// shape in-process: the StandbyServer lives behind its own listener
// (Config.StandbyAddr), the Pair spawns nothing, and the takeover pulls
// the mirrored state back over TCP through the handover protocol.
func TestOutOfProcessStandbyTakeover(t *testing.T) {
	w := haWorkload(t, "traffic")
	want := runShardedRef(t, w, gen.Sequence, 6)
	rig := startHARig(t, w, gen.Sequence, 0)
	l, err := cluster.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewStandbyServer(l)
	go srv.Serve()
	t.Cleanup(func() { srv.Stop(); srv.Wait() })
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, OnTagged: rec.rec,
		StandbyAddr: l.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		if i == 2500 {
			if err := p.KillPrimary(); err != nil {
				t.Fatalf("takeover from the external standby failed: %v", err)
			}
		}
		p.Process(&w.Events[i])
	}
	if err := p.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	requireIdentical(t, "external standby", rec, want)
	tk := p.Takeover()
	if tk == nil || tk.ReplayCuts == 0 {
		t.Fatalf("takeover record %+v, want replayed cuts from the external mirror", tk)
	}
	cuts, events := p.MirrorStats()
	if cuts == 0 || events == 0 {
		t.Fatalf("handover recorded no mirror volume (%d cuts, %d events)", cuts, events)
	}
}

// TestWedgedStandbyHandoverTimesOut: a successor adopting from a
// standby that accepts the handover request and then never responds
// must surface an error via the read-stall probe — not hang the
// takeover forever.
func TestWedgedStandbyHandoverTimesOut(t *testing.T) {
	w := haWorkload(t, "traffic")
	rig := startHARig(t, w, gen.Sequence, 0)
	// A fake standby: mirrors nothing, acks every cut (so the primary
	// runs normally), and wedges on the first Handover frame.
	l, err := cluster.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop); l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c cluster.Conn) {
				defer c.Close()
				for {
					f, err := c.Recv()
					if err != nil {
						return
					}
					switch v := f.(type) {
					case wire.ReplCut:
						up := v.UpTo
						if v.Final {
							up = math.MaxUint64
						}
						if c.Send(wire.Watermark{UpTo: up}) != nil {
							return
						}
					case wire.Handover:
						<-stop // wedge: the successor is owed a reply that never comes
						return
					}
				}
			}(c)
		}
	}()
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	rec := &tagRecorder{}
	p, err := New(Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: 64,
		Workers: rig.workers, OnTagged: rec.rec,
		StandbyAddr: l.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2500; i++ {
		p.Process(&w.Events[i])
	}
	start := time.Now()
	err = p.KillPrimary()
	if err == nil || !strings.Contains(err.Error(), "handover") {
		t.Fatalf("takeover from a wedged standby returned %v, want a handover error", err)
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("wedged handover took %v to fail", el)
	}
}
