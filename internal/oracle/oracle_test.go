// Cross-checks of the brute-force oracle against both evaluation engines
// on small generated workloads: any divergence means either the oracle's
// direct semantics or an engine's incremental evaluation is wrong, and
// the other tests that rely on oracle.Matches as ground truth would be
// built on sand.
package oracle_test

import (
	"reflect"
	"testing"

	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/oracle"
	"acep/internal/pattern"
)

// engineKeys runs the stream through an adaptive engine and returns the
// sorted canonical match keys.
func engineKeys(t *testing.T, pat *pattern.Pattern, evs []event.Event, model engine.Model) []string {
	t.Helper()
	var out []*match.Match
	cfg := engine.Config{
		Model:      model,
		CheckEvery: 200,
		NewPolicy:  func() core.Policy { return &core.Invariant{} },
		OnMatch:    func(m *match.Match) { out = append(out, m) },
	}
	e, err := engine.New(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		e.Process(&evs[i])
	}
	e.Finish()
	return oracle.Keys(out)
}

// TestOracleAgreesWithEngines cross-checks the oracle's match sets
// against the NFA and tree engines for every pattern family over small
// traffic and stocks workloads.
func TestOracleAgreesWithEngines(t *testing.T) {
	workloads := map[string]*gen.Workload{
		"traffic": gen.Traffic(gen.TrafficConfig{Types: 5, Events: 1200, Seed: 13, Shifts: 1, MeanGap: 3}),
		"stocks":  gen.Stocks(gen.StocksConfig{Types: 5, Events: 1200, Seed: 13, MeanGap: 3}),
	}
	kinds := []gen.Kind{gen.Sequence, gen.Conjunction, gen.Negation, gen.Kleene, gen.Composite}
	sawMatches := false
	for name, w := range workloads {
		for _, kind := range kinds {
			pat, err := w.Pattern(kind, 3, 40)
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.Keys(oracle.Matches(pat, w.Events))
			if len(want) > 0 {
				sawMatches = true
			}
			for _, model := range []engine.Model{engine.GreedyNFA, engine.ZStreamTree} {
				got := engineKeys(t, pat, w.Events, model)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%v/%v: engine %d matches, oracle %d",
						name, kind, model, len(got), len(want))
				}
			}
		}
	}
	if !sawMatches {
		t.Fatal("oracle found no matches anywhere; workloads too sparse for a meaningful cross-check")
	}
}

// TestOracleKeyedAgreement repeats the cross-check on a keyed workload,
// whose equality-on-key predicates exercise the oracle's predicate
// filtering on a very selective pattern (this is the ground truth the
// shard layer's exactness ultimately rests on).
func TestOracleKeyedAgreement(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 5, Events: 1500, Seed: 17, Shifts: 1, MeanGap: 3, Keys: 4})
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Keys(oracle.Matches(pat, w.Events))
	if len(want) == 0 {
		t.Fatal("no keyed matches; cross-check is vacuous")
	}
	for _, model := range []engine.Model{engine.GreedyNFA, engine.ZStreamTree} {
		got := engineKeys(t, pat, w.Events, model)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: engine %d matches, oracle %d", model, len(got), len(want))
		}
	}
}

// TestOracleIgnoresInputOrder: the oracle's semantics are defined over
// the event set, so shuffled input must yield the same match set.
func TestOracleIgnoresInputOrder(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{Types: 4, Events: 300, Seed: 7, MeanGap: 4})
	pat, err := w.Pattern(gen.Sequence, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Keys(oracle.Matches(pat, w.Events))
	shuffled := make([]event.Event, len(w.Events))
	for i, j := range len2perm(len(w.Events)) {
		shuffled[i] = w.Events[j]
	}
	got := oracle.Keys(oracle.Matches(pat, shuffled))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order sensitivity: %d vs %d matches", len(got), len(want))
	}
}

// len2perm is a fixed pseudo-random permutation (deterministic, no seed
// plumbing needed at this size).
func len2perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	state := uint64(88172645463325252)
	for i := n - 1; i > 0; i-- {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := int(state % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
