// Package oracle provides an exponential brute-force reference matcher.
// It enumerates every assignment of events to the pattern's core
// positions and applies the residual semantics directly over the full
// event history. The evaluation engines are validated against it on
// randomized streams: any plan, any engine model and any adaptation
// policy must produce exactly the oracle's match set.
package oracle

import (
	"sort"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
)

// Matches computes the complete match set of pat over the finite event
// slice. Events need not be sorted. Only small inputs are feasible; this
// is a test oracle, not an engine.
func Matches(pat *pattern.Pattern, events []event.Event) []*match.Match {
	if pat.Op == pattern.Or {
		var out []*match.Match
		for _, sub := range pat.Subs {
			out = append(out, Matches(sub, events)...)
		}
		return out
	}
	evs := make([]*event.Event, len(events))
	for i := range events {
		evs[i] = &events[i]
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })

	var np uint64
	core := pat.Core()
	assign := make([]*event.Event, pat.NumPositions())
	var out []*match.Match

	var rec func(k int)
	rec = func(k int) {
		if k == len(core) {
			if m := resolveResiduals(pat, assign, evs, &np); m != nil {
				out = append(out, m)
			}
			return
		}
		p := core[k]
		for _, e := range evs {
			if e.Type != pat.Positions[p].Type {
				continue
			}
			if !match.UnaryOK(pat, p, e, &np) {
				continue
			}
			ok := true
			for _, q := range core[:k] {
				if !match.PairOK(pat, pat.Window, q, assign[q], p, e, &np) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[p] = e
			rec(k + 1)
			assign[p] = nil
		}
	}
	rec(0)
	return out
}

// resolveResiduals applies negation and Kleene semantics for one core
// assignment, returning the match or nil.
func resolveResiduals(pat *pattern.Pattern, assign []*event.Event, evs []*event.Event, np *uint64) *match.Match {
	var minTS, maxTS event.Time
	first := true
	for _, e := range assign {
		if e == nil {
			continue
		}
		if first || e.TS < minTS {
			minTS = e.TS
		}
		if first || e.TS > maxTS {
			maxTS = e.TS
		}
		first = false
	}
	var kleene [][]*event.Event
	for p, pos := range pat.Positions {
		if !pos.Neg && !pos.Kleene {
			continue
		}
		lo, hi := maxTS-pat.Window, minTS+pat.Window
		loExcl, hiExcl := false, false
		if pat.Op == pattern.Seq {
			for q := p - 1; q >= 0; q-- {
				if assign[q] != nil {
					lo, loExcl = assign[q].TS, true
					break
				}
			}
			for q := p + 1; q < len(assign); q++ {
				if assign[q] != nil {
					hi, hiExcl = assign[q].TS, true
					break
				}
			}
		}
		var set []*event.Event
		for _, e := range evs {
			if e.Type != pos.Type {
				continue
			}
			if e.TS < lo || (loExcl && e.TS == lo) {
				continue
			}
			if e.TS > hi || (hiExcl && e.TS == hi) {
				continue
			}
			if !match.UnaryOK(pat, p, e, np) {
				continue
			}
			ok := true
			for _, k := range pat.PredsTouching(p) {
				pr := &pat.Preds[k]
				if pr.IsUnary() {
					continue
				}
				other := pr.L
				if other == p {
					other = pr.R
				}
				oev := assign[other]
				if oev == nil {
					continue
				}
				var l, r *event.Event
				if pr.L == p {
					l, r = e, oev
				} else {
					l, r = oev, e
				}
				if !pr.Eval(l, r) {
					ok = false
					break
				}
			}
			if ok {
				set = append(set, e)
			}
		}
		if pos.Neg {
			if len(set) > 0 {
				return nil
			}
			continue
		}
		if len(set) == 0 {
			return nil
		}
		if kleene == nil {
			kleene = make([][]*event.Event, len(assign))
		}
		kleene[p] = set
	}
	return &match.Match{Events: append([]*event.Event(nil), assign...), Kleene: kleene}
}

// Keys returns the sorted canonical keys of a match list, the form used
// to compare engines against the oracle and each other.
func Keys(ms []*match.Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}
