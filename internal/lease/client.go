package lease

import (
	"context"
	"fmt"
	"sync"
	"time"

	"acep/internal/cluster"
	"acep/internal/wire"
)

// rpcTimeout bounds every lease RPC: the whole point of the lease is to
// detect a partition, so a request into a blackhole must come back as an
// error, never hang. It is armed as a read stall on the underlying
// connection (see cluster.SetReadStall).
const rpcTimeout = 2 * time.Second

// Client speaks the lease protocol over one TCP connection. All methods
// are safe for concurrent use; requests serialize on the connection.
// Any transport error is terminal for the client — the caller treats it
// exactly like a denial (it cannot prove it still holds the lease) and
// the HA layer demotes.
type Client struct {
	// protected by mu in rpc
	mu sync.Mutex
	c  cluster.Conn
}

// Dial connects to a lease server under the given dial policy (zero
// value = cluster defaults). wrap, when non-nil, wraps the connection —
// the chaos hook that lets tests partition a primary from its arbiter.
func Dial(ctx context.Context, addr string, p cluster.DialPolicy, wrap func(cluster.Conn) cluster.Conn) (*Client, error) {
	c, err := cluster.DialTCPContext(ctx, addr, p)
	if err != nil {
		return nil, fmt.Errorf("lease: %w", err)
	}
	if wrap != nil {
		c = wrap(c)
	}
	return &Client{c: c}, nil
}

func (cl *Client) rpc(f wire.Frame) (wire.LeaseFence, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.c == nil {
		return wire.LeaseFence{}, fmt.Errorf("lease: client closed")
	}
	// A response is owed from Send to Recv — arm the read stall for
	// exactly that window so a partitioned server surfaces as an error
	// in bounded time instead of wedging the caller.
	type stallConn interface{ SetReadStall(time.Duration) }
	if sc, ok := cl.c.(stallConn); ok {
		sc.SetReadStall(rpcTimeout)
		defer sc.SetReadStall(0)
	} else {
		// A wrapped connection (chaos) hides the stall probe: fall back
		// to killing the connection outright. Terminal either way — a
		// client that timed out an RPC can no longer prove anything.
		conn := cl.c
		tm := time.AfterFunc(2*rpcTimeout, func() { conn.Close() })
		defer tm.Stop()
	}
	if err := cl.c.Send(f); err != nil {
		return wire.LeaseFence{}, fmt.Errorf("lease: send: %w", err)
	}
	r, err := cl.c.Recv()
	if err != nil {
		return wire.LeaseFence{}, fmt.Errorf("lease: recv: %w", err)
	}
	fence, ok := r.(wire.LeaseFence)
	if !ok {
		return wire.LeaseFence{}, fmt.Errorf("lease: unexpected %s frame in response", wire.KindOf(r))
	}
	return fence, nil
}

// Acquire makes one acquisition attempt.
func (cl *Client) Acquire(holder uint64, ttl time.Duration) (wire.LeaseFence, error) {
	return cl.rpc(wire.LeaseAcquire{Holder: holder, TTLMillis: uint64(ttl / time.Millisecond)})
}

// AcquireWait retries Acquire until granted or the context ends. It
// polls at ttl/8 (floor 5ms) — fast enough that takeover waits little
// past the previous grant's expiry, slow enough not to hammer the
// arbiter. Transport errors end the wait: if the arbiter itself is
// unreachable, nobody can prove ownership and takeover must not proceed.
func (cl *Client) AcquireWait(ctx context.Context, holder uint64, ttl time.Duration) (wire.LeaseFence, error) {
	poll := ttl / 8
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	for {
		fence, err := cl.Acquire(holder, ttl)
		if err != nil || fence.Granted {
			return fence, err
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return fence, fmt.Errorf("lease: acquire %d: %w (held by %d epoch %d)",
				holder, ctx.Err(), fence.Holder, fence.Epoch)
		}
	}
}

// Renew extends the grant and commits the emission boundary.
func (cl *Client) Renew(holder, epoch uint64, ttl time.Duration, boundary, count uint64) (wire.LeaseFence, error) {
	return cl.rpc(wire.LeaseRenew{
		Holder:      holder,
		Epoch:       epoch,
		TTLMillis:   uint64(ttl / time.Millisecond),
		EmittedUpTo: boundary,
		Count:       count,
	})
}

// Release gives the lease up cleanly (TTL-zero renew); the committed
// boundary survives on the server.
func (cl *Client) Release(holder, epoch, boundary, count uint64) error {
	fence, err := cl.rpc(wire.LeaseRenew{
		Holder: holder, Epoch: epoch, EmittedUpTo: boundary, Count: count,
	})
	if err != nil {
		return err
	}
	if !fence.Granted {
		return fmt.Errorf("lease: release fenced: holder %d epoch %d", fence.Holder, fence.Epoch)
	}
	return nil
}

// Close drops the connection; in-flight RPCs fail.
func (cl *Client) Close() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.c != nil {
		cl.c.Close()
		cl.c = nil
	}
}
