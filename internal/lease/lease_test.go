package lease

import (
	"context"
	"sync"
	"testing"
	"time"

	"acep/internal/cluster"
	"acep/internal/wire"
)

// fakeClock is a hand-advanced clock for deterministic expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAcquireFencesNewHolder(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := NewAt(clk.now)

	f := s.Acquire(1, time.Second)
	if !f.Granted || f.Holder != 1 || f.Epoch != 1 {
		t.Fatalf("first acquire: %+v", f)
	}
	// Re-acquire by the same holder: granted, same epoch.
	if f = s.Acquire(1, time.Second); !f.Granted || f.Epoch != 1 {
		t.Fatalf("same-holder re-acquire: %+v", f)
	}
	// Contender while the grant is live: denied, remaining TTL reported.
	clk.advance(400 * time.Millisecond)
	f = s.Acquire(2, time.Second)
	if f.Granted {
		t.Fatalf("contender granted over a live lease: %+v", f)
	}
	if f.Holder != 1 || f.LeftMillis == 0 || f.LeftMillis > 600 {
		t.Fatalf("denial fence: %+v", f)
	}
	// Past expiry the contender wins and the epoch advances.
	clk.advance(700 * time.Millisecond)
	f = s.Acquire(2, time.Second)
	if !f.Granted || f.Holder != 2 || f.Epoch != 2 {
		t.Fatalf("post-expiry acquire: %+v", f)
	}
}

func TestRenewCommitsAndFences(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := NewAt(clk.now)
	s.Acquire(1, time.Second)

	f := s.Renew(wire.LeaseRenew{Holder: 1, Epoch: 1, TTLMillis: 1000, EmittedUpTo: 500, Count: 42})
	if !f.Granted || f.EmittedUpTo != 500 || f.Count != 42 {
		t.Fatalf("renew: %+v", f)
	}

	// Expiry alone does not invalidate a renew — only a competing
	// acquisition does (expiry matters at acquisition time only).
	clk.advance(5 * time.Second)
	f = s.Renew(wire.LeaseRenew{Holder: 1, Epoch: 1, TTLMillis: 1000, EmittedUpTo: 800, Count: 77})
	if !f.Granted {
		t.Fatalf("expired-but-unclaimed renew denied: %+v", f)
	}

	// A successor takes over; the stale holder's renew is now fenced and
	// the fence carries the committed resume state.
	clk.advance(5 * time.Second)
	if f = s.Acquire(2, time.Second); !f.Granted || f.Epoch != 2 {
		t.Fatalf("successor acquire: %+v", f)
	}
	f = s.Renew(wire.LeaseRenew{Holder: 1, Epoch: 1, TTLMillis: 1000, EmittedUpTo: 900, Count: 99})
	if f.Granted {
		t.Fatal("stale holder renewed through a fence")
	}
	if f.Holder != 2 || f.EmittedUpTo != 800 || f.Count != 77 {
		t.Fatalf("fence state: %+v", f)
	}
}

func TestReleaseKeepsBoundary(t *testing.T) {
	s := New()
	s.Acquire(1, time.Minute)
	f := s.Renew(wire.LeaseRenew{Holder: 1, Epoch: 1, EmittedUpTo: 1000, Count: 10}) // TTL 0: release
	if !f.Granted {
		t.Fatalf("release: %+v", f)
	}
	holder, _, boundary, count := s.State()
	if holder != 0 || boundary != 1000 || count != 10 {
		t.Fatalf("post-release state: holder=%d boundary=%d count=%d", holder, boundary, count)
	}
	// Next holder acquires immediately (no TTL wait) and sees the state.
	f = s.Acquire(2, time.Minute)
	if !f.Granted || f.Epoch != 2 || f.EmittedUpTo != 1000 || f.Count != 10 {
		t.Fatalf("post-release acquire: %+v", f)
	}
}

func TestTCPClientServer(t *testing.T) {
	s := New()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c1, err := Dial(ctx, addr, cluster.DialPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(ctx, addr, cluster.DialPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	f, err := c1.Acquire(1, 200*time.Millisecond)
	if err != nil || !f.Granted {
		t.Fatalf("acquire over TCP: %+v %v", f, err)
	}
	if f, err = c1.Renew(1, f.Epoch, 200*time.Millisecond, 123, 4); err != nil || !f.Granted {
		t.Fatalf("renew over TCP: %+v %v", f, err)
	}
	// Contender denied while live, then wins via AcquireWait once the
	// holder stops renewing.
	if f, err = c2.Acquire(2, 200*time.Millisecond); err != nil || f.Granted {
		t.Fatalf("contender: %+v %v", f, err)
	}
	f, err = c2.AcquireWait(ctx, 2, 200*time.Millisecond)
	if err != nil || !f.Granted || f.Epoch != 2 {
		t.Fatalf("acquire-wait: %+v %v", f, err)
	}
	if f.EmittedUpTo != 123 || f.Count != 4 {
		t.Fatalf("committed state lost across takeover: %+v", f)
	}
	// The fenced holder's renew now fails as a denial, not an error.
	if f, err = c1.Renew(1, 1, 200*time.Millisecond, 999, 9); err != nil || f.Granted {
		t.Fatalf("fenced renew: %+v %v", f, err)
	}
}

// TestRPCTimesOutOnBlackhole proves the lease client cannot hang on a
// partitioned arbiter: a server that accepts and then never answers must
// surface as an error within the RPC timeout.
func TestRPCTimesOutOnBlackhole(t *testing.T) {
	lst, err := cluster.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	go func() {
		for {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			_ = c // accept and go silent
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl, err := Dial(ctx, lst.Addr(), cluster.DialPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Acquire(1, time.Second)
	if err == nil {
		t.Fatal("acquire into a blackhole succeeded")
	}
	if el := time.Since(start); el > 8*time.Second {
		t.Fatalf("blackholed RPC took %v, want ~%v", el, rpcTimeout)
	}
}
