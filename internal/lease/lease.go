// Package lease is the split-brain arbiter for the HA coordinator pair:
// a tiny single-writer TTL lease served in-process or over TCP with the
// wire v6 LeaseAcquire / LeaseRenew / LeaseFence frames.
//
// The protocol is deliberately minimal — one lease, one holder, one
// epoch counter — because the correctness argument wants to be short:
//
//   - Acquire grants when the lease is free, expired, or already held by
//     the same holder. Granting to a *new* holder increments the lease
//     epoch, fencing every frame the previous holder could still send.
//   - Renew extends a grant and atomically commits the holder's emission
//     boundary (EmittedUpTo, Count). A renew is valid whenever holder
//     and epoch both match — even past expiry. Expiry only matters at
//     acquisition time: an expired-but-unclaimed lease still belongs to
//     its holder, so a slow primary that nobody has replaced keeps
//     running instead of demoting on a scheduling hiccup.
//   - Renew with TTL zero releases the lease; the committed boundary
//     survives the release so a successor can still read it.
//
// The emission gate in internal/ha commits its boundary via Renew
// *before* emitting past it (commit-then-emit). A partitioned primary's
// renew therefore fails before any unarbitrated byte reaches the
// consumer, and the state stored here is exactly the primary's emitted
// state — which is what makes takeover skip counts exact across a
// process boundary.
//
// Denied requests return a fence carrying the current holder, epoch,
// committed boundary and the grant's remaining TTL, so a contender knows
// both who owns the stream and when to retry.
package lease

import (
	"fmt"
	"sync"
	"time"

	"acep/internal/cluster"
	"acep/internal/wire"
)

// Server is the lease arbiter. One Server holds one lease. The zero
// holder ID means "free"; clients must use nonzero holder IDs.
type Server struct {
	mu       sync.Mutex
	holder   uint64
	epoch    uint64
	expires  time.Time
	boundary uint64 // last committed EmittedUpTo
	count    uint64 // delivered count at that boundary

	now func() time.Time

	lst    *cluster.Listener
	conns  map[cluster.Conn]struct{}
	closed bool // Close ran: late-accepted conns are closed, not served
	wg     sync.WaitGroup
}

// New returns an arbiter on the real clock.
func New() *Server { return NewAt(time.Now) }

// NewAt returns an arbiter on an injected clock (tests).
func NewAt(now func() time.Time) *Server {
	return &Server{now: now, conns: make(map[cluster.Conn]struct{})}
}

// fenceLocked snapshots the lease as a fence frame.
func (s *Server) fenceLocked(granted bool, at time.Time) wire.LeaseFence {
	f := wire.LeaseFence{
		Granted:     granted,
		Holder:      s.holder,
		Epoch:       s.epoch,
		EmittedUpTo: s.boundary,
		Count:       s.count,
	}
	if !granted && s.holder != 0 {
		if left := s.expires.Sub(at); left > 0 {
			f.LeftMillis = uint64(left / time.Millisecond)
		}
	}
	return f
}

// Acquire claims the lease for holder with the given TTL. It grants when
// the lease is free, expired, or already held by the same holder; a
// grant to a new holder increments the epoch (the fence).
func (s *Server) Acquire(holder uint64, ttl time.Duration) wire.LeaseFence {
	s.mu.Lock()
	defer s.mu.Unlock()
	at := s.now()
	if holder == 0 || ttl <= 0 {
		return s.fenceLocked(false, at)
	}
	if s.holder != 0 && s.holder != holder && at.Before(s.expires) {
		return s.fenceLocked(false, at)
	}
	if s.holder != holder {
		s.epoch++
	}
	s.holder = holder
	s.expires = at.Add(ttl)
	return s.fenceLocked(true, at)
}

// Renew extends holder's grant and commits its emission boundary. Valid
// whenever holder and epoch match the current grant, even past expiry;
// TTL zero releases the lease (the committed boundary survives).
func (s *Server) Renew(r wire.LeaseRenew) wire.LeaseFence {
	s.mu.Lock()
	defer s.mu.Unlock()
	at := s.now()
	if r.Holder == 0 || r.Holder != s.holder || r.Epoch != s.epoch {
		return s.fenceLocked(false, at)
	}
	// Monotone commit: a keepalive renew racing a drain commit on the
	// same holder must never roll the recorded emission state backward —
	// the stored pair is the successor's resume point.
	if r.EmittedUpTo > s.boundary || (r.EmittedUpTo == s.boundary && r.Count > s.count) {
		s.boundary = r.EmittedUpTo
		s.count = r.Count
	}
	if r.TTLMillis == 0 {
		s.holder = 0
		s.expires = time.Time{}
		f := s.fenceLocked(true, at)
		f.Epoch = r.Epoch // the epoch the release happened under
		return f
	}
	s.expires = at.Add(time.Duration(r.TTLMillis) * time.Millisecond)
	return s.fenceLocked(true, at)
}

// State reports the committed emission boundary and delivered count —
// what a successor resumes from.
func (s *Server) State() (holder, epoch, boundary, count uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.holder, s.epoch, s.boundary, s.count
}

// Serve answers lease RPCs on the listener until Close. Each connection
// gets its own goroutine; the protocol is strict request/response
// (LeaseAcquire or LeaseRenew in, LeaseFence out), anything else closes
// the connection.
func (s *Server) Serve(l *cluster.Listener) {
	s.mu.Lock()
	s.lst = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				// Accepted just before Close snapshotted s.conns: serving
				// it would leave a goroutine blocked in Recv that Close's
				// wg.Wait then hangs on. Close it instead.
				s.mu.Unlock()
				c.Close()
				continue
			}
			s.conns[c] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(c)
		}
	}()
}

// ListenAndServe binds addr (":0" for an ephemeral port) and serves on
// it, returning the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	l, err := cluster.ListenTCP(addr)
	if err != nil {
		return "", fmt.Errorf("lease: %w", err)
	}
	s.Serve(l)
	return l.Addr(), nil
}

func (s *Server) serveConn(c cluster.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	for {
		f, err := c.Recv()
		if err != nil {
			return
		}
		var fence wire.LeaseFence
		switch v := f.(type) {
		case wire.LeaseAcquire:
			fence = s.Acquire(v.Holder, time.Duration(v.TTLMillis)*time.Millisecond)
		case wire.LeaseRenew:
			fence = s.Renew(v)
		default:
			return
		}
		if c.Send(fence) != nil {
			return
		}
	}
}

// Close stops serving: the listener and every open connection close, and
// Close returns once all connection goroutines have exited. The lease
// state itself is not cleared.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lst := s.lst
	s.lst = nil
	conns := make([]cluster.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lst != nil {
		lst.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
