package core

import (
	"fmt"

	"acep/internal/stats"
)

// MetaInvariant is the meta-adaptive variant sketched in §3.4(3): it
// wraps the invariant method and tunes the violation distance d
// on-the-fly. The controller observes the outcome of each
// reoptimization attempt it triggered — reported by the
// detection-adaptation loop through ObserveOutcome — and adjusts d:
// an attempt that did not improve the plan (or improved it marginally)
// means d was too permissive, so d grows; a genuine improvement means
// the opportunity was real and d decays back towards its initial value
// so future opportunities are not missed.
type MetaInvariant struct {
	// Inner is the wrapped invariant policy; its K and Select settings
	// apply. D is managed by the controller (initialized from InitialD).
	Inner Invariant
	// InitialD seeds the distance (default 0.1).
	InitialD float64
	// MinGain is the relative plan-cost improvement below which a
	// replacement is considered marginal (default 0.1, i.e. 10%).
	MinGain float64
	// Grow multiplies d after a wasted attempt (default 1.5); Shrink
	// multiplies d after a productive one (default 0.8).
	Grow, Shrink float64
	// MaxD caps the distance (default 2.0).
	MaxD float64
}

// Name implements Policy.
func (p *MetaInvariant) Name() string {
	return fmt.Sprintf("meta-invariant(d=%.3g)", p.Inner.D)
}

func (p *MetaInvariant) defaults() {
	if p.InitialD <= 0 {
		p.InitialD = 0.1
	}
	if p.MinGain <= 0 {
		p.MinGain = 0.1
	}
	if p.Grow <= 1 {
		p.Grow = 1.5
	}
	if p.Shrink <= 0 || p.Shrink >= 1 {
		p.Shrink = 0.8
	}
	if p.MaxD <= 0 {
		p.MaxD = 2.0
	}
	if p.Inner.D == 0 {
		p.Inner.D = p.InitialD
	}
}

// Install implements Policy.
func (p *MetaInvariant) Install(t *Trace, s *stats.Snapshot) {
	p.defaults()
	p.Inner.Install(t, s)
	// Install resets the invariant list; keep the tuned distance.
	p.Inner.d = p.Inner.D
}

// ShouldReoptimize implements Policy.
func (p *MetaInvariant) ShouldReoptimize(s *stats.Snapshot) bool {
	p.defaults()
	return p.Inner.ShouldReoptimize(s)
}

// ObserveOutcome implements OutcomeObserver: the loop reports the
// relative cost improvement of the plan produced after this policy fired
// (0 when the plan was unchanged or not better).
func (p *MetaInvariant) ObserveOutcome(relGain float64) {
	p.defaults()
	if relGain < p.MinGain {
		p.Inner.D *= p.Grow
		if p.Inner.D > p.MaxD {
			p.Inner.D = p.MaxD
		}
	} else {
		p.Inner.D *= p.Shrink
		if p.Inner.D < p.InitialD {
			p.Inner.D = p.InitialD
		}
	}
	p.Inner.d = p.Inner.D
}

// Distance reports the current tuned distance.
func (p *MetaInvariant) Distance() float64 {
	p.defaults()
	return p.Inner.D
}

// OutcomeObserver is implemented by policies that adapt to the outcomes
// of the reoptimization attempts they trigger. After a positive decision
// the loop reports the relative cost improvement of A's new plan over the
// deployed one (0 when no better plan was found).
type OutcomeObserver interface {
	ObserveOutcome(relGain float64)
}
