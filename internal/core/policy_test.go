package core

import (
	"strings"
	"testing"

	"acep/internal/stats"
)

// paperTrace reproduces the Figure 4 trace for SEQ(A,B,C) with rates
// 100/15/10: DCS1 = {C<B, C<A}, DCS2 = {B<A}, DCS3 = {}.
func paperTrace() *Trace {
	return &Trace{Blocks: []DCS{
		{Block: "C first", Conds: []Condition{
			{LHS: rateExpr(2), RHS: rateExpr(1)},
			{LHS: rateExpr(2), RHS: rateExpr(0)},
		}},
		{Block: "B second", Conds: []Condition{
			{LHS: rateExpr(1), RHS: rateExpr(0)},
		}},
		{Block: "A third"},
	}}
}

func TestStaticPolicy(t *testing.T) {
	var p Static
	p.Install(paperTrace(), snapABC(100, 15, 10))
	if p.ShouldReoptimize(snapABC(1, 2, 3)) {
		t.Error("static must never reoptimize")
	}
	if p.Name() != "static" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestUnconditionalPolicy(t *testing.T) {
	var p Unconditional
	p.Install(paperTrace(), snapABC(100, 15, 10))
	if !p.ShouldReoptimize(snapABC(100, 15, 10)) {
		t.Error("unconditional must always reoptimize")
	}
	if p.Name() != "unconditional" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestThresholdPolicy(t *testing.T) {
	p := &Threshold{T: 0.2}
	base := snapABC(100, 15, 10)
	p.Install(nil, base)
	if p.ShouldReoptimize(base.Clone()) {
		t.Error("no deviation must not trigger")
	}
	// 10% move: below threshold.
	if p.ShouldReoptimize(snapABC(110, 15, 10)) {
		t.Error("10% < t=20% must not trigger")
	}
	// 25% move on one statistic: trigger.
	if !p.ShouldReoptimize(snapABC(100, 15, 12.5)) {
		t.Error("25% >= t=20% must trigger")
	}
	if !strings.Contains(p.Name(), "0.2") {
		t.Errorf("Name = %q", p.Name())
	}
}

// TestThresholdMotivatingScenario reproduces the paper's introduction
// example: rates A=100, B=15, C=10. A threshold t > 6/15 misses C
// overtaking B, while t small enough to catch it also fires on harmless
// fluctuations of A. The invariant policy handles both correctly.
func TestThresholdMotivatingScenario(t *testing.T) {
	base := snapABC(100, 15, 10)

	// C grows to 16 (overtakes B: reopt genuinely needed). Relative
	// change: 60% on C. A threshold of 0.7 misses it.
	grown := snapABC(100, 15, 16)
	// A fluctuates by 65% (harmless: order C,B,A unchanged).
	fluct := snapABC(35, 15, 10)

	coarse := &Threshold{T: 0.7}
	coarse.Install(nil, base)
	if coarse.ShouldReoptimize(grown) {
		t.Error("coarse threshold unexpectedly caught the C change")
	}

	fine := &Threshold{T: 0.5}
	fine.Install(nil, base)
	if !fine.ShouldReoptimize(grown) {
		t.Error("fine threshold must catch the C change")
	}
	if !fine.ShouldReoptimize(fluct) {
		t.Error("fine threshold fires on the harmless A fluctuation (expected false positive)")
	}

	inv := &Invariant{}
	inv.Install(paperTrace(), base)
	if !inv.ShouldReoptimize(grown) {
		t.Error("invariant policy must catch C overtaking B")
	}
	if inv.ShouldReoptimize(fluct) {
		t.Error("invariant policy must ignore the harmless A fluctuation")
	}
}

func TestInvariantSelectsTightest(t *testing.T) {
	p := &Invariant{}
	p.Install(paperTrace(), snapABC(100, 15, 10))
	// K=1: one invariant for DCS1 (the tightest: C<B, gap 5) and one for
	// DCS2 (B<A); DCS3 empty.
	if p.NumInvariants() != 2 {
		t.Fatalf("NumInvariants = %d; want 2", p.NumInvariants())
	}
	// rateA drops to 12: violates B<A (selected) -> caught even though
	// DCS1's selected invariant C<B still holds.
	if !p.ShouldReoptimize(snapABC(12, 15, 10)) {
		t.Error("B overtaking A must trip the DCS2 invariant")
	}
	// rateA drops to 50: C<A (unselected, gap 90) untouched; no
	// violation of the kept invariants -> no reoptimization.
	if p.ShouldReoptimize(snapABC(50, 15, 10)) {
		t.Error("harmless A drop must not trip")
	}
}

func TestInvariantKMethod(t *testing.T) {
	// With K=1 a violation of the non-tightest DCS1 condition (C<A) is a
	// false negative; K=2 keeps both conditions and catches it.
	// Scenario: A collapses below C while B stays above both - the plan
	// should start with A, but the tightest invariant C<B still holds.
	base := snapABC(100, 15, 10)
	after := snapABC(8, 15, 10) // A now smallest: plan must change

	k1 := &Invariant{K: 1}
	k1.Install(paperTrace(), base)
	// B<A (DCS2 invariant) IS violated here (15 > 8) so K=1 catches it
	// through a later block; drop that block to isolate the K effect.
	soloDCS1 := &Trace{Blocks: []DCS{paperTrace().Blocks[0]}}
	k1.Install(soloDCS1, base)
	if k1.ShouldReoptimize(after) {
		t.Error("K=1 kept only C<B and should miss the C<A violation")
	}

	k2 := &Invariant{K: 2}
	k2.Install(soloDCS1, base)
	if k2.NumInvariants() != 2 {
		t.Fatalf("K=2 invariants = %d; want 2", k2.NumInvariants())
	}
	if !k2.ShouldReoptimize(after) {
		t.Error("K=2 must catch the C<A violation")
	}
}

func TestInvariantDistance(t *testing.T) {
	p := &Invariant{D: 0.5}
	p.Install(paperTrace(), snapABC(100, 15, 10))
	// C creeps just past B: absorbed by the margin.
	if p.ShouldReoptimize(snapABC(100, 15, 16)) {
		t.Error("d=0.5 must absorb a 7% reversal")
	}
	// C doubles past B.
	if !p.ShouldReoptimize(snapABC(100, 15, 31)) {
		t.Error("d=0.5 must catch a 2x reversal")
	}
	if p.Distance() != 0.5 {
		t.Errorf("Distance = %g", p.Distance())
	}
}

func TestInvariantAutoDistance(t *testing.T) {
	p := &Invariant{AutoDistance: true}
	s := snapABC(100, 15, 10)
	p.Install(paperTrace(), s)
	// Tightest condition per DCS: C<B (relgap 0.5) and B<A (relgap 85/15).
	want := (0.5 + 85.0/15) / 2
	if got := p.Distance(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("auto distance = %g; want %g", got, want)
	}
	if !strings.Contains(p.Name(), "d=avg") {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Installs() != 1 {
		t.Errorf("Installs = %d", p.Installs())
	}
}

func TestInvariantReinstallResets(t *testing.T) {
	p := &Invariant{}
	p.Install(paperTrace(), snapABC(100, 15, 10))
	if p.NumInvariants() != 2 {
		t.Fatalf("first install: %d invariants", p.NumInvariants())
	}
	// New plan with a single block.
	p.Install(&Trace{Blocks: []DCS{paperTrace().Blocks[1]}}, snapABC(100, 15, 10))
	if p.NumInvariants() != 1 {
		t.Fatalf("after reinstall: %d invariants; want 1", p.NumInvariants())
	}
	if p.Installs() != 2 {
		t.Errorf("Installs = %d", p.Installs())
	}
}

func TestSelectors(t *testing.T) {
	s := snapABC(100, 15, 10)
	dcs := paperTrace().Blocks[0] // conds: C<B (gap 5, rel 0.5), C<A (gap 90, rel 9)
	got := TightestGap(dcs, s, 1)
	if len(got) != 1 || got[0].RHS.Eval(s) != 15 {
		t.Errorf("TightestGap picked RHS=%g; want rateB", got[0].RHS.Eval(s))
	}
	got = TightestRelGap(dcs, s, 1)
	if len(got) != 1 || got[0].RHS.Eval(s) != 15 {
		t.Errorf("TightestRelGap picked RHS=%g; want rateB", got[0].RHS.Eval(s))
	}
	if got := All(dcs, s, 1); len(got) != 2 {
		t.Errorf("All returned %d conds", len(got))
	}
	// k larger than the set size returns everything.
	if got := TightestGap(dcs, s, 5); len(got) != 2 {
		t.Errorf("k=5 returned %d conds", len(got))
	}
	// k <= 0 coerces to 1.
	if got := TightestGap(dcs, s, 0); len(got) != 1 {
		t.Errorf("k=0 returned %d conds", len(got))
	}
}

func TestInvariantFullDCSMatchesTraceAnyViolated(t *testing.T) {
	// With Select=All the policy must agree with Trace.AnyViolated on any
	// snapshot (Theorem 2's decision function).
	tr := paperTrace()
	base := snapABC(100, 15, 10)
	p := &Invariant{Select: All}
	p.Install(tr, base)
	snaps := []*stats.Snapshot{
		snapABC(100, 15, 10),
		snapABC(100, 15, 16),
		snapABC(8, 15, 10),
		snapABC(50, 15, 10),
		snapABC(14, 15, 10),
		snapABC(9, 9, 9),
	}
	for i, s := range snaps {
		if p.ShouldReoptimize(s) != tr.AnyViolated(s, 0) {
			t.Errorf("snapshot %d: policy and trace disagree", i)
		}
	}
}

func TestThresholdShapeChange(t *testing.T) {
	p := &Threshold{T: 0.5}
	p.Install(nil, snapABC(1, 2, 3))
	if !p.ShouldReoptimize(stats.NewSnapshot(2)) {
		t.Error("statistic-vector shape change must trigger")
	}
}

func TestThresholdZeroBaseline(t *testing.T) {
	p := &Threshold{T: 0.1}
	base := stats.NewSnapshot(2)
	p.Install(nil, base) // all rates zero
	if p.ShouldReoptimize(base.Clone()) {
		t.Error("zero->zero must not trigger")
	}
	moved := stats.NewSnapshot(2)
	moved.Rates[0] = 1
	if !p.ShouldReoptimize(moved) {
		t.Error("zero->nonzero must trigger")
	}
}
