package core

import (
	"math"
	"strings"
	"testing"

	"acep/internal/stats"
)

func snapABC(ra, rb, rc float64) *stats.Snapshot {
	s := stats.NewSnapshot(3)
	s.Rates = []float64{ra, rb, rc}
	return s
}

// rateExpr builds the trivial expression f(x) = rate_i.
func rateExpr(i int) Expr {
	return Expr{Terms: []Term{{Coef: 1, Rates: []int{i}}}}
}

func TestExprEval(t *testing.T) {
	s := snapABC(100, 15, 10)
	s.SetSym(0, 1, 0.5)
	s.Sel[2][2] = 0.25

	cases := []struct {
		e    Expr
		want float64
	}{
		{Expr{}, 0},
		{Expr{Add: 7}, 7},
		{rateExpr(0), 100},
		{Expr{Terms: []Term{{Coef: 2, Rates: []int{1}}}}, 30},
		{Expr{Terms: []Term{{Coef: 1, Rates: []int{0, 1}, Sels: [][2]int{{0, 1}}}}}, 750},
		{Expr{Add: 5, Terms: []Term{{Coef: 1, Rates: []int{2}, Sels: [][2]int{{2, 2}}}}}, 7.5},
		{Expr{Terms: []Term{{Coef: 1, Rates: []int{0}}, {Coef: 1, Rates: []int{1}}}}, 115},
	}
	for i, tc := range cases {
		if got := tc.e.Eval(s); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: Eval = %g; want %g", i, got, tc.want)
		}
	}
}

func TestConditionViolated(t *testing.T) {
	s := snapABC(100, 15, 10)
	c := Condition{LHS: rateExpr(2), RHS: rateExpr(1)} // 10 < 15
	if c.Violated(s, 0) {
		t.Error("holding condition reported violated")
	}
	s2 := snapABC(100, 15, 20) // rateC grew past rateB
	if !c.Violated(s2, 0) {
		t.Error("reversed condition not reported violated")
	}
	// Equality must not violate with d = 0 (ties stay stable).
	s3 := snapABC(100, 15, 15)
	if c.Violated(s3, 0) {
		t.Error("tie reported violated with d=0")
	}
}

func TestConditionDistance(t *testing.T) {
	c := Condition{LHS: rateExpr(2), RHS: rateExpr(1)}
	// Holding condition stays quiet at any d.
	s := snapABC(100, 15, 14)
	if c.Violated(s, 0) || c.Violated(s, 0.1) {
		t.Error("14 < 15 must hold at any d")
	}
	// A small reversal trips at d=0 but is absorbed by d=0.1 hysteresis:
	// violation requires LHS > (1+d)*RHS = 16.5.
	s2 := snapABC(100, 15, 15.5)
	if !c.Violated(s2, 0) {
		t.Error("15.5 vs 15 must trip at d=0")
	}
	if c.Violated(s2, 0.1) {
		t.Error("15.5 <= 16.5 must stay quiet at d=0.1")
	}
	// A large reversal overcomes the margin.
	s3 := snapABC(100, 15, 17)
	if !c.Violated(s3, 0.1) {
		t.Error("17 > 16.5 must trip at d=0.1")
	}
}

func TestConditionGapAndRelGap(t *testing.T) {
	s := snapABC(100, 15, 10)
	c := Condition{LHS: rateExpr(2), RHS: rateExpr(1)}
	if got := c.Gap(s); math.Abs(got-5) > 1e-12 {
		t.Errorf("Gap = %g; want 5", got)
	}
	if got := c.RelGap(s); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RelGap = %g; want 0.5 (5/10)", got)
	}
	// RelGap guards against nonpositive denominators.
	z := snapABC(0, 0, 0)
	if got := c.RelGap(z); got != 0 {
		t.Errorf("RelGap at zero = %g; want 0", got)
	}
}

func TestTraceAnyViolatedAndCount(t *testing.T) {
	tr := &Trace{Blocks: []DCS{
		{Block: "b0", Conds: []Condition{
			{LHS: rateExpr(2), RHS: rateExpr(1)},
			{LHS: rateExpr(2), RHS: rateExpr(0)},
		}},
		{Block: "b1", Conds: []Condition{
			{LHS: rateExpr(1), RHS: rateExpr(0)},
		}},
	}}
	if tr.NumConditions() != 3 {
		t.Fatalf("NumConditions = %d", tr.NumConditions())
	}
	if tr.AnyViolated(snapABC(100, 15, 10), 0) {
		t.Error("violated on consistent snapshot")
	}
	if !tr.AnyViolated(snapABC(100, 15, 16), 0) {
		t.Error("missed rateC > rateB")
	}
	if !tr.AnyViolated(snapABC(14, 15, 10), 0) {
		t.Error("missed rateB > rateA")
	}
}

func TestAvgRelDiff(t *testing.T) {
	// Gaps: (15-10)/10 = 0.5, (100-10)/10 = 9, (100-15)/15 ~= 5.6667.
	tr := &Trace{Blocks: []DCS{
		{Conds: []Condition{
			{LHS: rateExpr(2), RHS: rateExpr(1)},
			{LHS: rateExpr(2), RHS: rateExpr(0)},
		}},
		{Conds: []Condition{
			{LHS: rateExpr(1), RHS: rateExpr(0)},
		}},
	}}
	s := snapABC(100, 15, 10)
	want := (0.5 + 9 + 85.0/15) / 3
	if got := tr.AvgRelDiff(s); math.Abs(got-want) > 1e-9 {
		t.Errorf("AvgRelDiff = %g; want %g", got, want)
	}
	empty := &Trace{}
	if got := empty.AvgRelDiff(s); got != 0 {
		t.Errorf("empty AvgRelDiff = %g", got)
	}
}

func TestAvgRelDiffTightest(t *testing.T) {
	tr := &Trace{Blocks: []DCS{
		{Conds: []Condition{
			{LHS: rateExpr(2), RHS: rateExpr(1)}, // relgap 0.5
			{LHS: rateExpr(2), RHS: rateExpr(0)}, // relgap 9
		}},
		{Conds: []Condition{
			{LHS: rateExpr(1), RHS: rateExpr(0)}, // relgap 85/15
		}},
		{}, // empty DCS contributes nothing
	}}
	s := snapABC(100, 15, 10)
	want := (0.5 + 85.0/15) / 2
	if got := tr.AvgRelDiffTightest(s); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("AvgRelDiffTightest = %g; want %g", got, want)
	}
	empty := &Trace{}
	if got := empty.AvgRelDiffTightest(s); got != 0 {
		t.Errorf("empty AvgRelDiffTightest = %g", got)
	}
}

func TestExprString(t *testing.T) {
	e := Expr{Add: 3, Terms: []Term{{Coef: 2, Rates: []int{1}, Sels: [][2]int{{0, 1}}}}}
	str := e.String()
	for _, want := range []string{"3", "2", "r1", "sel0,1"} {
		if !strings.Contains(str, want) {
			t.Errorf("Expr.String() = %q; missing %q", str, want)
		}
	}
	if (Expr{}).String() != "0" {
		t.Errorf("zero Expr string = %q", (Expr{}).String())
	}
	c := Condition{LHS: rateExpr(0), RHS: rateExpr(1)}
	if !strings.Contains(c.String(), " < ") {
		t.Errorf("Condition.String() = %q", c.String())
	}
}
