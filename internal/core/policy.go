package core

import (
	"fmt"
	"math"
	"sort"

	"acep/internal/stats"
)

// Policy is a reoptimizing decision function D together with its
// installation lifecycle. The detection-adaptation loop calls Install
// whenever a plan produced by A is deployed (passing A's instrumentation
// trace and the snapshot A optimized for) and then calls ShouldReoptimize
// with fresh statistics on every adaptation check.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Install resets the policy for a newly deployed plan.
	Install(t *Trace, s *stats.Snapshot)
	// ShouldReoptimize is D: true requests a re-run of A.
	ShouldReoptimize(s *stats.Snapshot) bool
}

// Static is the no-adaptation baseline: D constantly returns false and
// the initial plan is kept forever.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Install implements Policy.
func (Static) Install(*Trace, *stats.Snapshot) {}

// ShouldReoptimize implements Policy.
func (Static) ShouldReoptimize(*stats.Snapshot) bool { return false }

// Unconditional is the baseline of the tree-based lazy NFA (paper ref
// [36]): D constantly returns true, so A runs on every adaptation check
// regardless of whether the statistics moved.
type Unconditional struct{}

// Name implements Policy.
func (Unconditional) Name() string { return "unconditional" }

// Install implements Policy.
func (Unconditional) Install(*Trace, *stats.Snapshot) {}

// ShouldReoptimize implements Policy.
func (Unconditional) ShouldReoptimize(*stats.Snapshot) bool { return true }

// Threshold is the ZStream baseline (paper ref [42]): a single constant
// threshold T for all monitored statistics. D returns true iff some
// statistic deviates from its value at plan-installation time by a
// relative factor of at least T.
type Threshold struct {
	T float64

	base []float64
	cur  []float64
}

// Name implements Policy.
func (p *Threshold) Name() string { return fmt.Sprintf("threshold(%g)", p.T) }

// Install implements Policy.
func (p *Threshold) Install(_ *Trace, s *stats.Snapshot) {
	p.base = s.Flatten(p.base[:0])
}

// ShouldReoptimize implements Policy.
func (p *Threshold) ShouldReoptimize(s *stats.Snapshot) bool {
	p.cur = s.Flatten(p.cur[:0])
	if len(p.cur) != len(p.base) {
		return true // shape changed; be safe
	}
	for i, b := range p.base {
		d := math.Abs(p.cur[i] - b)
		den := math.Abs(b)
		if den < 1e-12 {
			if d > 1e-12 {
				return true
			}
			continue
		}
		if d/den >= p.T {
			return true
		}
	}
	return false
}

// Selector picks up to k conditions from a deciding condition set to act
// as the block's invariants, given the plan-creation snapshot. The
// default TightestGap implements §3.1's tightest-condition strategy;
// TightestRelGap is the §3.5 alternative that normalizes by magnitude.
type Selector func(dcs DCS, s *stats.Snapshot, k int) []Condition

// TightestGap selects the k conditions with the smallest absolute slack
// RHS-LHS at creation time (§3.1).
func TightestGap(dcs DCS, s *stats.Snapshot, k int) []Condition {
	return selectBy(dcs, k, func(c Condition) float64 { return c.Gap(s) })
}

// TightestRelGap selects the k conditions with the smallest relative
// slack, an instance of the alternative selection strategies discussed in
// §3.5 (conditions between small values are as fragile as conditions
// between large ones).
func TightestRelGap(dcs DCS, s *stats.Snapshot, k int) []Condition {
	return selectBy(dcs, k, func(c Condition) float64 { return c.RelGap(s) })
}

// All selects every condition in the DCS, realizing the full-DCS decision
// function of Theorem 2 regardless of k.
func All(dcs DCS, _ *stats.Snapshot, _ int) []Condition {
	return append([]Condition(nil), dcs.Conds...)
}

func selectBy(dcs DCS, k int, score func(Condition) float64) []Condition {
	if k <= 0 {
		k = 1
	}
	idx := make([]int, len(dcs.Conds))
	for i := range idx {
		idx[i] = i
	}
	scores := make([]float64, len(dcs.Conds))
	for i, c := range dcs.Conds {
		scores[i] = score(c)
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Condition, 0, k)
	for _, i := range idx[:k] {
		out = append(out, dcs.Conds[i])
	}
	return out
}

// Invariant is the paper's invariant-based reoptimizing decision function.
// On Install it distills the trace into an ordered invariant list — up to
// K conditions per building block chosen by Select (the K-invariant
// method of §3.3; K=1 is the basic method) — and ShouldReoptimize returns
// true exactly when some invariant is violated under the current
// statistics with minimal relative distance D (§3.4).
type Invariant struct {
	// K caps the invariants kept per building block (default 1).
	K int
	// D is the minimal violation distance d: an invariant trips only when
	// (1+D)·LHS > RHS (default 0, the basic method).
	D float64
	// AutoDistance, when set, overrides D at every Install with the
	// average-relative-difference estimate d_avg computed from the new
	// trace over the monitored (tightest) conditions (§3.4, "data
	// analysis" approach).
	AutoDistance bool
	// Select picks the per-block invariants (default TightestGap).
	Select Selector

	invariants []Condition
	d          float64
	installs   int
}

// Name implements Policy.
func (p *Invariant) Name() string {
	if p.AutoDistance {
		return fmt.Sprintf("invariant(K=%d,d=avg)", p.kOrDefault())
	}
	return fmt.Sprintf("invariant(K=%d,d=%g)", p.kOrDefault(), p.D)
}

func (p *Invariant) kOrDefault() int {
	if p.K <= 0 {
		return 1
	}
	return p.K
}

// Install implements Policy: builds the invariant list for the new plan.
func (p *Invariant) Install(t *Trace, s *stats.Snapshot) {
	sel := p.Select
	if sel == nil {
		sel = TightestGap
	}
	p.invariants = p.invariants[:0]
	for _, dcs := range t.Blocks {
		if len(dcs.Conds) == 0 {
			continue
		}
		p.invariants = append(p.invariants, sel(dcs, s, p.kOrDefault())...)
	}
	p.d = p.D
	if p.AutoDistance {
		p.d = t.AvgRelDiffTightest(s)
	}
	p.installs++
}

// ShouldReoptimize implements Policy: verifies the invariants in plan
// order and trips on the first violation.
func (p *Invariant) ShouldReoptimize(s *stats.Snapshot) bool {
	for _, c := range p.invariants {
		if c.Violated(s, p.d) {
			return true
		}
	}
	return false
}

// NumInvariants reports the size of the currently installed invariant
// list.
func (p *Invariant) NumInvariants() int { return len(p.invariants) }

// Distance reports the violation distance currently in effect (useful
// when AutoDistance recomputes it per install).
func (p *Invariant) Distance() float64 { return p.d }

// Installs reports how many times a plan has been installed.
func (p *Invariant) Installs() int { return p.installs }
