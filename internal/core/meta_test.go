package core

import (
	"strings"
	"testing"
)

func TestMetaInvariantGrowsOnWastedAttempts(t *testing.T) {
	p := &MetaInvariant{InitialD: 0.1}
	p.Install(paperTrace(), snapABC(100, 15, 10))
	if d := p.Distance(); d != 0.1 {
		t.Fatalf("initial d = %g", d)
	}
	// Wasted attempts (no gain): d grows geometrically up to the cap.
	for i := 0; i < 20; i++ {
		p.ObserveOutcome(0)
	}
	if d := p.Distance(); d != 2.0 {
		t.Fatalf("d after wasted attempts = %g; want capped 2.0", d)
	}
	// A productive attempt decays d.
	p.ObserveOutcome(0.5)
	if d := p.Distance(); d >= 2.0 {
		t.Fatalf("d did not shrink: %g", d)
	}
	// Repeated productive attempts floor at InitialD.
	for i := 0; i < 30; i++ {
		p.ObserveOutcome(0.5)
	}
	if d := p.Distance(); d != 0.1 {
		t.Fatalf("d floor = %g; want 0.1", d)
	}
}

func TestMetaInvariantAppliesTunedDistance(t *testing.T) {
	p := &MetaInvariant{InitialD: 0.1}
	base := snapABC(100, 15, 10)
	p.Install(paperTrace(), base)
	// A 20% reversal of C over B trips at d=0.1.
	burst := snapABC(100, 15, 18)
	if !p.ShouldReoptimize(burst) {
		t.Fatal("d=0.1 must trip on a 20% reversal")
	}
	// Grow d past the reversal; after reinstall the same snapshot stays
	// quiet.
	for i := 0; i < 5; i++ {
		p.ObserveOutcome(0)
	}
	p.Install(paperTrace(), base)
	if p.ShouldReoptimize(burst) {
		t.Fatalf("grown d=%g should absorb the 20%% reversal", p.Distance())
	}
	if !strings.Contains(p.Name(), "meta-invariant") {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestMetaInvariantMarginalGainCountsAsWasted(t *testing.T) {
	p := &MetaInvariant{InitialD: 0.1, MinGain: 0.2}
	p.Install(paperTrace(), snapABC(100, 15, 10))
	p.ObserveOutcome(0.05) // below MinGain
	if d := p.Distance(); d <= 0.1 {
		t.Fatalf("marginal gain must grow d; d = %g", d)
	}
}
