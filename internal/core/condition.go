// Package core implements the paper's contribution: the invariant-based
// method for the reoptimizing decision problem, together with the baseline
// decision functions it is evaluated against (static, unconditional and
// constant-threshold).
//
// During a run of the plan generation algorithm A, every block-building
// comparison (BBC) is captured as a deciding Condition — an inequality
// f1(stat1) < f2(stat2) between two constant-time-evaluable cost
// expressions. The conditions verified for one building block form its
// deciding condition set (DCS); a Trace is the ordered list of DCSs for
// the blocks of the produced plan. The invariant method distills a Trace
// into a small ordered list of invariants (the tightest condition(s) per
// block, §3.1/§3.3), optionally widened by a minimal violation distance d
// (§3.4), and declares a reoptimization opportunity exactly when some
// invariant is violated by the current statistics.
package core

import (
	"fmt"
	"strings"

	"acep/internal/stats"
)

// Term is one multiplicative term of a cost expression: a constant
// coefficient times a product of arrival rates and selectivities looked up
// in a statistics snapshot.
type Term struct {
	Coef  float64
	Rates []int    // rate indices (pattern positions)
	Sels  [][2]int // selectivity indices (i,j); (i,i) selects the unary product
}

// Expr is a cost expression: an additive constant (used to freeze subtree
// costs per §4.2) plus a sum of terms. Evaluation is O(pattern size), the
// paper's "near-constant time".
type Expr struct {
	Add   float64
	Terms []Term
}

// Eval computes the expression's value under the snapshot.
func (e Expr) Eval(s *stats.Snapshot) float64 {
	v := e.Add
	for _, t := range e.Terms {
		tv := t.Coef
		for _, r := range t.Rates {
			tv *= s.Rates[r]
		}
		for _, ij := range t.Sels {
			tv *= s.Sel[ij[0]][ij[1]]
		}
		v += tv
	}
	return v
}

// String renders the expression for diagnostics.
func (e Expr) String() string {
	var b strings.Builder
	first := true
	if e.Add != 0 || len(e.Terms) == 0 {
		fmt.Fprintf(&b, "%.4g", e.Add)
		first = false
	}
	for _, t := range e.Terms {
		if !first {
			b.WriteString(" + ")
		}
		first = false
		fmt.Fprintf(&b, "%.4g", t.Coef)
		for _, r := range t.Rates {
			fmt.Fprintf(&b, "·r%d", r)
		}
		for _, ij := range t.Sels {
			fmt.Fprintf(&b, "·sel%d,%d", ij[0], ij[1])
		}
	}
	return b.String()
}

// Condition is a deciding condition "LHS < RHS" recorded at a
// block-building comparison: the winner's cost expression on the left, the
// rejected alternative's on the right. At recording time LHS <= RHS held.
type Condition struct {
	LHS, RHS Expr
}

// Violated reports whether the condition no longer holds under the
// snapshot, with minimal relative distance d (§3.4): the condition is
// violated iff LHS > (1+d)·RHS, i.e. a violation requires the inequality
// to reverse by at least the relative margin d. With d = 0 this is a
// strict reversal, so recording-time ties do not self-trigger.
//
// Note: the paper's §3.4 text writes the monitored invariant as
// "(1+d)·f1 < f2", which would make larger d values trip *earlier*; that
// contradicts both the stated motivation (suppressing oscillation-driven
// replans) and the Figure 5 narrative ("for distances higher than d_opt,
// too many changes in the statistics are undetected"). We therefore
// implement the semantics those descriptions require: d is hysteresis on
// the violation side.
func (c Condition) Violated(s *stats.Snapshot, d float64) bool {
	return c.LHS.Eval(s) > (1+d)*c.RHS.Eval(s)
}

// Gap returns RHS - LHS under the snapshot: the slack that the
// tightest-condition selection strategy minimizes (§3.1).
func (c Condition) Gap(s *stats.Snapshot) float64 {
	return c.RHS.Eval(s) - c.LHS.Eval(s)
}

// RelGap returns the relative slack |RHS-LHS| / min(LHS,RHS), the
// quantity averaged by the d_avg estimator (§3.4).
func (c Condition) RelGap(s *stats.Snapshot) float64 {
	l, r := c.LHS.Eval(s), c.RHS.Eval(s)
	min := l
	if r < min {
		min = r
	}
	if min <= 0 {
		return 0
	}
	diff := r - l
	if diff < 0 {
		diff = -diff
	}
	return diff / min
}

// String renders the condition.
func (c Condition) String() string {
	return c.LHS.String() + " < " + c.RHS.String()
}

// DCS is the deciding condition set of one building block: every
// condition whose verification led A to include the block in the plan.
type DCS struct {
	// Block is a human-readable label of the building block (for
	// diagnostics; ordering is positional).
	Block string
	// Conds holds the deciding conditions.
	Conds []Condition
}

// Trace is the full instrumentation record of one run of A: the DCSs of
// the produced plan's building blocks, ordered in the plan's verification
// order (step order for order-based plans, leaves-to-root for tree-based
// plans).
type Trace struct {
	Blocks []DCS
}

// NumConditions counts all recorded deciding conditions.
func (t *Trace) NumConditions() int {
	n := 0
	for _, b := range t.Blocks {
		n += len(b.Conds)
	}
	return n
}

// AnyViolated reports whether any recorded condition (across all DCSs) is
// violated under the snapshot — the full-DCS decision of Theorem 2.
func (t *Trace) AnyViolated(s *stats.Snapshot, d float64) bool {
	for _, b := range t.Blocks {
		for _, c := range b.Conds {
			if c.Violated(s, d) {
				return true
			}
		}
	}
	return false
}

// AvgRelDiff computes the d_avg distance estimate of §3.4: the average
// relative difference between the two sides of every deciding condition
// in the trace, evaluated at the creation-time snapshot. It returns 0
// when the trace holds no conditions.
func (t *Trace) AvgRelDiff(s *stats.Snapshot) float64 {
	sum, n := 0.0, 0
	for _, b := range t.Blocks {
		for _, c := range b.Conds {
			sum += c.RelGap(s)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AvgRelDiffTightest is the d_avg variant averaged over only the tightest
// condition of each deciding condition set — i.e. over the conditions the
// basic invariant method actually monitors. With winner-versus-all DCS
// capture, averaging over all conditions is dominated by the huge slack
// of hopeless alternatives (a rare type versus the most frequent one) and
// wildly overestimates a useful distance; the monitored conditions are
// the ones whose oscillation d must absorb.
func (t *Trace) AvgRelDiffTightest(s *stats.Snapshot) float64 {
	sum, n := 0.0, 0
	for _, b := range t.Blocks {
		best, ok := 0.0, false
		for _, c := range b.Conds {
			if g := c.RelGap(s); !ok || g < best {
				best, ok = g, true
			}
		}
		if ok {
			sum += best
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
