package shard

import (
	"testing"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/stats"
)

// stocksAtGap generates a keyed stocks workload whose total arrival rate
// is controlled by the mean inter-event gap, plus a size-4 sequence
// pattern that references all four types (so the snapshot's position
// rates sum to the full stream rate).
func stocksAtGap(t *testing.T, gap event.Time) (*gen.Workload, *stats.Snapshot) {
	t.Helper()
	w := gen.Stocks(gen.StocksConfig{Types: 4, Events: 6000, Seed: 7, MeanGap: gap, Keys: 16})
	pat, err := w.Pattern(gen.Sequence, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return w, stats.Exact(pat, w.Events)
}

// TestDeriveQueueCapTracksRate: the snapshot-driven queue bound follows
// the generator's configured arrival rate — halving the rate (doubling
// the mean gap) halves the derived cap, and the absolute value matches
// one window's worth of events at the measured rate.
func TestDeriveQueueCapTracksRate(t *testing.T) {
	const window = 2 * event.Second
	wFast, snapFast := stocksAtGap(t, 2) // ~1000/3 events per logical second
	_, snapSlow := stocksAtGap(t, 8)     // ~1000/9 events per logical second

	capFast := DeriveQueueCap(snapFast, window, 1)
	capSlow := DeriveQueueCap(snapSlow, window, 1)
	if capFast <= 0 || capSlow <= 0 {
		t.Fatalf("derived caps not positive: fast=%d slow=%d", capFast, capSlow)
	}

	// Absolute: the cap must be one window's worth of the true measured
	// rate (events / logical span × window).
	span := float64(wFast.Events[len(wFast.Events)-1].TS-wFast.Events[0].TS) / float64(event.Second)
	want := float64(len(wFast.Events)) / span * float64(window) / float64(event.Second)
	if got := float64(capFast); got < 0.8*want || got > 1.2*want {
		t.Errorf("fast cap %v, want ~%.0f (one window at the measured rate)", got, want)
	}

	// Relative: cap ratio tracks the configured rate ratio (gap 2→8 is a
	// 3x rate drop: mean per-event gap 1+gap goes 3ms → 9ms).
	ratio := float64(capFast) / float64(capSlow)
	if ratio < 2.2 || ratio > 3.8 {
		t.Errorf("cap ratio fast/slow = %.2f, want ~3 (rate-proportional)", ratio)
	}

	// More shards split the same budget.
	if c4 := DeriveQueueCap(snapFast, window, 4); c4 < capFast/5 || c4 > capFast/3 {
		t.Errorf("4-shard cap %d, want ~%d/4", c4, capFast)
	}

	// Degenerate inputs derive nothing (callers fall back to defaults).
	if DeriveQueueCap(nil, window, 1) != 0 || DeriveQueueCap(snapFast, 0, 1) != 0 {
		t.Error("nil snapshot / zero window must derive no cap")
	}
}

// TestAutoQueueSizingWired: New derives QueueCap from Options.Snapshot +
// Options.Window when no explicit bound is set, and still detects the
// exact match set.
func TestAutoQueueSizingWired(t *testing.T) {
	const window = 2 * event.Second
	w, snap := stocksAtGap(t, 2)
	pat, err := w.Pattern(gen.Sequence, 4, window)
	if err != nil {
		t.Fatal(err)
	}

	var auto, fixed uint64
	engAuto, err := New(pat, engine.Config{}, Options{
		Shards: 2, Batch: 64, Snapshot: snap, Window: window,
		KeyAttr: "key", Schema: w.Schema,
		OnMatch: func(*match.Match) { auto++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	derived := engAuto.QueueCap()
	want := DeriveQueueCap(snap, window, 2)
	if derived < want || derived > want+2*64 {
		t.Errorf("wired cap %d events, want >= derived %d (rounded to batches)", derived, want)
	}

	engFixed, err := New(pat, engine.Config{}, Options{
		Shards: 2, Batch: 64, KeyAttr: "key", Schema: w.Schema,
		OnMatch: func(*match.Match) { fixed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if engFixed.QueueCap() != 4*64 {
		t.Errorf("default cap %d, want 4 batches of 64", engFixed.QueueCap())
	}

	for i := range w.Events {
		engAuto.Process(&w.Events[i])
		engFixed.Process(&w.Events[i])
	}
	engAuto.Finish()
	engFixed.Finish()
	if auto != fixed || auto == 0 {
		t.Fatalf("auto-sized engine found %d matches, fixed-queue engine %d (want equal, nonzero)", auto, fixed)
	}
}

// TestLatencyEstimators: the shard workers sample per-event queue wait
// and detection time into the merged Metrics.
func TestLatencyEstimators(t *testing.T) {
	w, _ := stocksAtGap(t, 2)
	pat, err := w.Pattern(gen.Sequence, 4, 2*event.Second)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(pat, engine.Config{}, Options{
		Shards: 2, Batch: 64, KeyAttr: "key", Schema: w.Schema,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	m := eng.Metrics()
	if m.QueueWait.Count() != uint64(len(w.Events)) {
		t.Errorf("queue-wait samples %d, want one per event (%d)", m.QueueWait.Count(), len(w.Events))
	}
	if m.DetectTime.Count() == 0 {
		t.Error("no detection-time samples recorded")
	}
	if p50, p99 := m.QueueWait.Quantile(0.5), m.QueueWait.Quantile(0.99); p50 < 0 || p99 < p50 {
		t.Errorf("queue-wait percentiles implausible: p50=%v p99=%v", p50, p99)
	}
	if m.DetectTime.Quantile(0.99) <= 0 {
		t.Error("detection-time p99 should be positive")
	}
}
