package shard

import (
	"math"
	"testing"

	"acep/internal/match"
)

// TestCollectorReassign pins the failover re-registration contract: the
// reassigned source's undelivered matches are purged, the returned
// boundary equals the released watermark, and a successor replaying from
// an older horizon (watermark rewound below the boundary) merges back
// into one correctly ordered stream with no duplicate and no loss.
func TestCollectorReassign(t *testing.T) {
	var got []uint64
	mk := func(seq uint64) Tagged { return Tagged{M: &match.Match{}, Seq: seq} }
	c := NewCollector(2, func(tg Tagged) { got = append(got, tg.Seq) }, nil)

	// Source 0 (the survivor) posts 10, 30; source 1 posts 20 and 25 but
	// only watermarks up to 20 — so 10 and 20 release, 25 and 30 buffer.
	c.Post(0, 30, []Tagged{mk(10), mk(30)})
	c.Post(1, 20, []Tagged{tag1(mk(20)), tag1(mk(25))})

	// Source 1 dies. Reassign purges its buffered 25 and reports the
	// release boundary 20.
	if b := c.Reassign(1); b != 20 {
		t.Fatalf("boundary = %d, want 20", b)
	}

	// The successor replays: it regenerates 20 (suppressed by the caller
	// via the boundary — so never posted) and 25, then continues to 40.
	// Its watermarks restart below the boundary, which Reassign allows.
	c.Post(1, 5, nil)
	c.Post(1, 28, []Tagged{tag1(mk(25))})
	c.Post(1, math.MaxUint64, []Tagged{tag1(mk(40))})
	c.Post(0, math.MaxUint64, nil)
	c.Close()

	want := []uint64{10, 20, 25, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

func tag1(t Tagged) Tagged { t.Src = 1; return t }
