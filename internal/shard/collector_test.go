package shard

import (
	"math"
	"sync"
	"testing"

	"acep/internal/match"
)

// seqRec records delivered seqs race-safely: deliver runs on the
// collector goroutine while the tests peek mid-stream.
type seqRec struct {
	mu  sync.Mutex
	got []uint64
}

func (r *seqRec) add(t Tagged) {
	r.mu.Lock()
	r.got = append(r.got, t.Seq)
	r.mu.Unlock()
}

func (r *seqRec) snapshot() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.got...)
}

func (r *seqRec) expect(t *testing.T, want ...uint64) {
	t.Helper()
	got := r.snapshot()
	ok := len(got) == len(want)
	if ok {
		for i := range want {
			if got[i] != want[i] {
				ok = false
				break
			}
		}
	}
	if !ok {
		t.Fatalf("delivered %v, want %v", got, want)
	}
}

// TestCollectorMigrate pins the shard-handoff contract: Migrate purges
// the shard's undelivered matches and returns the release boundary,
// delivery of the shard freezes until Complete, and a destination
// replaying from an older horizon (suppressing at the boundary) merges
// back into one correctly ordered stream with no duplicate and no loss.
func TestCollectorMigrate(t *testing.T) {
	rec := &seqRec{}
	mk := func(seq uint64) Tagged { return Tagged{M: &match.Match{}, Seq: seq} }
	c := NewCollector(2, rec.add, nil)

	// Shard 0 (the survivor) posts 10, 30; shard 1 posts 20 and 25 but
	// only watermarks up to 20 — so 10 and 20 release, 25 and 30 buffer.
	c.Post(0, 30, []Tagged{mk(10), mk(30)})
	c.Post(1, 20, []Tagged{tag1(mk(20)), tag1(mk(25))})

	// Shard 1's node dies; a successor adopts the slot. Migrate purges
	// the buffered 25 and reports the release boundary 20. (Its reply
	// also proves the posts above were consumed.)
	if b := c.Migrate(1, 1); b != 20 {
		t.Fatalf("boundary = %d, want 20", b)
	}
	rec.expect(t, 10, 20)

	// The successor replays: it regenerates 20 (suppressed by the caller
	// via the boundary — so never posted) and 25. While the shard is
	// frozen its matches buffer and no watermark releases them.
	c.Post(1, 5, nil)
	c.Post(1, 28, []Tagged{tag1(mk(25))})
	if got := rec.snapshot(); len(got) > 2 {
		t.Fatalf("frozen shard released matches: delivered %v", got)
	}
	// Complete unfreezes at the acknowledged watermark and delivery
	// resumes in merged order.
	c.Complete(1, 1, 28)
	c.Post(1, math.MaxUint64, []Tagged{tag1(mk(40))})
	c.Post(0, math.MaxUint64, nil)
	c.Close()
	rec.expect(t, 10, 20, 25, 30, 40)
}

// TestCollectorMigrateOwnership: after a shard moves to a new owner,
// stale in-flight posts from the previous owner are dropped, and the
// new owner's watermarks advance every shard it owns.
func TestCollectorMigrateOwnership(t *testing.T) {
	rec := &seqRec{}
	mk := func(seq uint64) Tagged { return Tagged{M: &match.Match{}, Seq: seq} }
	c := NewCollector(2, rec.add, nil)

	c.Post(0, 30, []Tagged{mk(10), mk(30)})
	c.Post(1, 20, []Tagged{tag1(mk(20))})

	// Shard 1 migrates to node 0 (a live-rebalance shape: node 0 now
	// owns both shards).
	if b := c.Migrate(1, 0); b != 20 {
		t.Fatalf("boundary = %d, want 20", b)
	}
	// A stale post from the previous owner must be dropped, match and
	// watermark both.
	c.Post(1, 99, []Tagged{tag1(mk(21))})
	// The new owner regenerates 21 beyond the boundary and completes.
	c.Post(0, 30, []Tagged{tag1(mk(21))})
	c.Complete(0, 1, 28)
	c.Post(0, math.MaxUint64, nil)
	c.Post(1, math.MaxUint64, nil) // old slot's terminal (ignored: owns nothing)
	c.Close()
	rec.expect(t, 10, 20, 21, 30)
}

// TestCollectorAbandon: abandoning a node releases its shards' gate —
// already-buffered matches deliver and the merge never again waits on
// the abandoned shards.
func TestCollectorAbandon(t *testing.T) {
	rec := &seqRec{}
	mk := func(seq uint64) Tagged { return Tagged{M: &match.Match{}, Seq: seq} }
	c := NewCollector(2, rec.add, nil)

	c.Post(0, math.MaxUint64, []Tagged{mk(10)})
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("released %v while shard 1 still gates", got)
	}
	c.Abandon(1)
	c.Close()
	rec.expect(t, 10)
}

func tag1(t Tagged) Tagged { t.Src = 1; return t }
