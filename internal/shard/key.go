package shard

import (
	"fmt"
	"math"

	"acep/internal/event"
	"acep/internal/pattern"
)

// KeyFunc extracts the partition key of an event. The returned value is a
// key, not a shard index: the engine hashes it (splitmix64) before taking
// it modulo the shard count, so small integer keys spread evenly. Two
// events belong to the same partition iff their KeyFunc values are equal.
type KeyFunc func(*event.Event) uint64

// GlobalIndex maps a partition-key value to its shard index among n
// shards (the splitmix64 finalizer modulo n) — the same placement Engine
// uses by default, exported so the cluster ingress and its worker nodes
// compute one consistent global layout.
func GlobalIndex(key uint64, n int) int { return int(mix64(key) % uint64(n)) }

// mix64 is the splitmix64 finalizer: a cheap bijective hash that turns
// clustered keys (entity ids 0..n) into uniformly spread shard indices.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ByAttr keys on the attribute at index idx, which every event type must
// carry at the same index. The key is the attribute's float64 bit
// pattern; values that compare equal as floats must be bit-identical
// (integral entity ids are; beware -0.0 and NaN).
func ByAttr(idx int) KeyFunc {
	return func(ev *event.Event) uint64 {
		return math.Float64bits(ev.Attrs[idx])
	}
}

// ByAttrName keys on the named attribute, resolved per event type through
// the schema. Every registered type must carry the attribute.
func ByAttrName(s *event.Schema, name string) (KeyFunc, error) {
	if s == nil {
		return nil, fmt.Errorf("shard: ByAttrName needs a schema")
	}
	if s.NumTypes() == 0 {
		return nil, fmt.Errorf("shard: schema has no types")
	}
	idx := make([]int, s.NumTypes())
	for t := 0; t < s.NumTypes(); t++ {
		i, ok := s.AttrIndex(t, name)
		if !ok {
			return nil, fmt.Errorf("shard: type %q has no attribute %q", s.TypeName(t), name)
		}
		idx[t] = i
	}
	return func(ev *event.Event) uint64 {
		return math.Float64bits(ev.Attrs[idx[ev.Type]])
	}, nil
}

// Partitionable verifies that pat can be detected shard-locally when the
// stream is partitioned by the attribute named key: every position must
// carry the attribute, and exact-equality predicates on it must connect
// all positions (including negated and Kleene ones) into one component.
// Under that condition any match — and any partial match, negation scope
// or Kleene scope — combines events of a single key value, all of which
// the partitioner routes to the same shard, so the per-shard match sets
// union to exactly the global match set.
func Partitionable(pat *pattern.Pattern, s *event.Schema, key string) error {
	if pat == nil {
		return fmt.Errorf("shard: nil pattern")
	}
	if pat.Op == pattern.Or {
		for i, sub := range pat.Subs {
			if err := Partitionable(sub, s, key); err != nil {
				return fmt.Errorf("shard: OR disjunct %d: %w", i, err)
			}
		}
		return nil
	}
	n := pat.NumPositions()
	keyIdx := make([]int, n)
	for p := 0; p < n; p++ {
		i, ok := s.AttrIndex(pat.Positions[p].Type, key)
		if !ok {
			return fmt.Errorf("shard: position %d (type %q) has no attribute %q",
				p, s.TypeName(pat.Positions[p].Type), key)
		}
		keyIdx[p] = i
	}
	// Union positions connected by exact key-equality predicates.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, pr := range pat.Preds {
		if pr.IsUnary() || pr.Op != pattern.EQ || pr.C != 0 {
			continue
		}
		if pr.AttrL != keyIdx[pr.L] || pr.AttrR != keyIdx[pr.R] {
			continue
		}
		parent[find(pr.L)] = find(pr.R)
	}
	root := find(0)
	for p := 1; p < n; p++ {
		if find(p) != root {
			return fmt.Errorf("shard: pattern is not partitionable by %q: position %d is not connected to position 0 by equality-on-%s predicates", key, p, key)
		}
	}
	return nil
}
