package shard

import (
	"testing"
	"time"

	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/shed"
	"acep/internal/stats"
)

// slowPolicy stalls its shard's worker on every adaptation check, letting
// the tests fill a bounded ingestion queue deterministically enough to
// observe overflow behavior.
type slowPolicy struct{ delay time.Duration }

func (slowPolicy) Name() string                         { return "slow" }
func (slowPolicy) Install(*core.Trace, *stats.Snapshot) {}
func (p slowPolicy) ShouldReoptimize(*stats.Snapshot) bool {
	time.Sleep(p.delay)
	return false
}

// TestZeroEventShardLiveness routes every event to a single key: all but
// one shard receive only empty watermark cuts, and the collector must
// still release every match. A stalling shard watermark would deadlock
// Finish; the test completing is the assertion.
func TestZeroEventShardLiveness(t *testing.T) {
	w := keyedWorkload(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	var matches []*match.Match
	eng, err := New(pat, engine.Config{CheckEvery: 250}, Options{
		Shards: 8,
		Batch:  64,
		// Constant key: every event lands on one shard; the other seven
		// process nothing, ever.
		Key:     func(*event.Event) uint64 { return 42 },
		OnMatch: func(m *match.Match) { matches = append(matches, m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	m := eng.Metrics()
	if m.Events != uint64(len(w.Events)) {
		t.Fatalf("processed %d of %d events", m.Events, len(w.Events))
	}
	// Matches are released in detection order; on a timestamp-ordered
	// stream a (negation/Kleene-free) match's latest event is the one
	// whose processing detected it, so spans end nondecreasingly.
	for i := 1; i < len(matches); i++ {
		_, hi0 := matches[i-1].Span()
		_, hi1 := matches[i].Span()
		if hi1 < hi0 {
			t.Fatalf("match %d out of detection order", i)
		}
	}
	// Exactly one shard did all the work.
	busy := 0
	for _, sm := range eng.ShardMetrics() {
		if sm.Events > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("%d busy shards, want 1", busy)
	}
}

// TestEmptyStream finishes a sharded engine that never saw an event.
func TestEmptyStream(t *testing.T) {
	w := keyedWorkload(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(pat, engine.Config{}, Options{
		Shards:  4,
		KeyAttr: "key",
		Schema:  w.Schema,
		OnMatch: func(*match.Match) { t.Error("match from an empty stream") },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Finish()
	eng.Finish() // idempotent
	if m := eng.Metrics(); m.Events != 0 || m.Matches != 0 {
		t.Fatalf("empty stream metrics: %+v", m)
	}
}

// TestDropNewestOverflow fills a one-batch queue faster than the stalled
// worker drains it: the engine must stay unblocked, account every lost
// event in QueueDropped, and still deliver the final cut's matches.
func TestDropNewestOverflow(t *testing.T) {
	w := keyedWorkload(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	var matches uint64
	eng, err := New(pat, engine.Config{
		CheckEvery: 50,
		NewPolicy:  func() core.Policy { return slowPolicy{delay: 2 * time.Millisecond} },
	}, Options{
		Shards:   2,
		Batch:    32,
		QueueCap: 32, // one batch in flight per shard
		Overflow: DropNewest,
		KeyAttr:  "key",
		Schema:   w.Schema,
		OnMatch:  func(*match.Match) { matches++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	m := eng.Metrics()
	if m.QueueDropped == 0 {
		t.Fatal("stalled workers with a 1-batch queue dropped nothing")
	}
	if m.Events+m.QueueDropped != uint64(len(w.Events)) {
		t.Fatalf("%d processed + %d dropped != %d arrived",
			m.Events, m.QueueDropped, len(w.Events))
	}
	if m.ShedRate() <= 0 {
		t.Fatalf("shed rate %v, want > 0", m.ShedRate())
	}
}

// TestBackpressureLossless is the default-mode counterpart: the same
// stalled workers and tiny queue must lose nothing.
func TestBackpressureLossless(t *testing.T) {
	w := keyedWorkload(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(pat, engine.Config{
		CheckEvery: 500,
		NewPolicy:  func() core.Policy { return slowPolicy{delay: time.Millisecond} },
	}, Options{
		Shards:   2,
		Batch:    32,
		QueueCap: 32,
		KeyAttr:  "key",
		Schema:   w.Schema,
		OnMatch:  func(*match.Match) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	m := eng.Metrics()
	if m.QueueDropped != 0 {
		t.Fatalf("backpressure dropped %d events", m.QueueDropped)
	}
	if m.Events != uint64(len(w.Events)) {
		t.Fatalf("processed %d of %d events", m.Events, len(w.Events))
	}
}

// TestShardedShedding runs per-shard pattern-aware shedding under a
// deliberately tiny live-PM budget and checks the aggregated accounting.
func TestShardedShedding(t *testing.T) {
	w := keyedWorkload(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	var matches uint64
	eng, err := New(pat, engine.Config{
		CheckEvery: 250,
		Shedding: shed.Config{
			Policy:       shed.PatternAware{Target: 0.5},
			Budget:       shed.Budget{LivePMs: 1},
			RefreshEvery: 32,
		},
	}, Options{
		Shards:  4,
		Batch:   64,
		KeyAttr: "key",
		Schema:  w.Schema,
		OnMatch: func(*match.Match) { matches++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	m := eng.Metrics()
	if m.EventsShed == 0 {
		t.Fatal("overloaded shards shed nothing")
	}
	if m.Events+m.EventsShed != uint64(len(w.Events)) {
		t.Fatalf("%d processed + %d shed != %d arrived",
			m.Events, m.EventsShed, len(w.Events))
	}
}
