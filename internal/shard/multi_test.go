package shard

import (
	"reflect"
	"testing"

	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/multi"
	"acep/internal/shed"
)

// multiWorkload is a keyed traffic stream for the multi-pattern shard
// tests: keyed so the overlap sets are partitionable by "key".
func multiWorkload(t *testing.T, events int, seed int64) *gen.Workload {
	t.Helper()
	return gen.Traffic(gen.TrafficConfig{
		Types: 7, Events: events, Seed: seed, Shifts: 1, MeanGap: 2, Keys: 2,
	})
}

// multiSpecs builds an overlapping-prefix spec set over the workload.
func multiSpecs(t *testing.T, w *gen.Workload, kind gen.Kind, n, tenants int) []multi.Spec {
	t.Helper()
	entries, err := w.OverlapPatterns(kind, n, 3, 400, tenants)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]multi.Spec, len(entries))
	for i, e := range entries {
		specs[i] = multi.Spec{
			ID: e.ID, Tenant: e.Tenant, Pattern: e.Pattern,
			Config: engine.Config{CheckEvery: 250},
		}
	}
	return specs
}

// runMultiSharded drives the workload through a multi-pattern sharded
// engine and returns the delivered (pattern, key) stream in order plus
// the per-pattern key multisets.
func runMultiSharded(t *testing.T, w *gen.Workload, specs []multi.Spec, shards int, tenants map[uint32]shed.TenantBudget, mutate func(*Engine, int)) ([]string, map[uint32][]string, *Engine) {
	t.Helper()
	var stream []string
	per := make(map[uint32][]string)
	eng, err := New(nil, engine.Config{}, Options{
		Shards: shards, Batch: 128, KeyAttr: "key", Schema: w.Schema,
		Patterns: specs, Tenants: tenants,
		OnTagged: func(tg Tagged) {
			k := tg.M.Key()
			stream = append(stream, string(rune('A'+tg.Pattern))+":"+k)
			per[tg.Pattern] = append(per[tg.Pattern], k)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		if mutate != nil {
			mutate(eng, i)
		}
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	return stream, per, eng
}

// runIndependent is the reference: one plain engine per pattern over the
// unsharded stream.
func runIndependent(t *testing.T, w *gen.Workload, specs []multi.Spec) map[uint32][]string {
	t.Helper()
	out := make(map[uint32][]string)
	for _, sp := range specs {
		cfg := sp.Config
		id := sp.ID
		cfg.OnMatch = func(m *match.Match) { out[id] = append(out[id], m.Key()) }
		eng, err := engine.New(sp.Pattern, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
	}
	return out
}

// TestMultiShardedMatchesIndependent: the sharded shared-evaluation
// layer must reproduce, per pattern, exactly the match set of an
// independent single-threaded engine, for plain and residual suffixes.
func TestMultiShardedMatchesIndependent(t *testing.T) {
	w := multiWorkload(t, 6000, 23)
	for _, kind := range []gen.Kind{gen.Sequence, gen.Negation, gen.Kleene} {
		specs := multiSpecs(t, w, kind, 8, 1)
		want := runIndependent(t, w, specs)
		for _, shards := range []int{1, 4} {
			_, got, _ := runMultiSharded(t, w, specs, shards, nil, nil)
			total := 0
			for _, sp := range specs {
				if !reflect.DeepEqual(sorted(got[sp.ID]), sorted(want[sp.ID])) {
					t.Fatalf("%v shards=%d pattern %d: %d matches vs independent %d",
						kind, shards, sp.ID, len(got[sp.ID]), len(want[sp.ID]))
				}
				total += len(got[sp.ID])
			}
			if total == 0 {
				t.Fatalf("%v: no matches at all; test is vacuous", kind)
			}
		}
	}
}

// TestMultiShardedDeterministic: the delivered (pattern, key) stream is
// a deterministic function of the input for a fixed shard count.
func TestMultiShardedDeterministic(t *testing.T) {
	w := multiWorkload(t, 4000, 31)
	specs := multiSpecs(t, w, gen.Sequence, 6, 1)
	s1, _, _ := runMultiSharded(t, w, specs, 4, nil, nil)
	if len(s1) == 0 {
		t.Fatal("no matches")
	}
	for r := 0; r < 2; r++ {
		s2, _, _ := runMultiSharded(t, w, specs, 4, nil, nil)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("rerun %d delivered a different stream", r)
		}
	}
}

// TestMultiShardAddRemove: registering and retiring patterns mid-stream
// leaves every untouched pattern's output byte-identical to a run
// without the mutation, the removed pattern emits a prefix-subset, and
// the added pattern emits a subset of its full-stream solo set.
func TestMultiShardAddRemove(t *testing.T) {
	w := multiWorkload(t, 8000, 37)
	all := multiSpecs(t, w, gen.Sequence, 7, 1)
	initial, extra := all[:6], all[6]
	removed := initial[1].ID

	_, base, _ := runMultiSharded(t, w, initial, 4, nil, nil)
	solo := runIndependent(t, w, []multi.Spec{extra})

	// Mutate early so the baseline certainly has post-mutation matches
	// of the removed pattern.
	at := len(w.Events) / 8
	_, got, _ := runMultiSharded(t, w, initial, 4, nil, func(e *Engine, i int) {
		if i != at {
			return
		}
		if err := e.AddPattern(extra); err != nil {
			t.Fatal(err)
		}
		if err := e.RemovePattern(removed); err != nil {
			t.Fatal(err)
		}
	})

	for _, sp := range initial {
		if sp.ID == removed {
			continue
		}
		if !reflect.DeepEqual(sorted(got[sp.ID]), sorted(base[sp.ID])) {
			t.Fatalf("pattern %d disturbed by add/remove: %d vs %d matches",
				sp.ID, len(got[sp.ID]), len(base[sp.ID]))
		}
	}
	baseSet := make(map[string]int)
	for _, k := range base[removed] {
		baseSet[k]++
	}
	for _, k := range got[removed] {
		if baseSet[k] == 0 {
			t.Fatalf("removed pattern emitted a match outside its baseline: %s", k)
		}
		baseSet[k]--
	}
	if len(got[removed]) >= len(base[removed]) && len(base[removed]) > 0 {
		t.Fatalf("removal had no effect: %d of %d matches still emitted",
			len(got[removed]), len(base[removed]))
	}
	soloSet := make(map[string]int)
	for _, k := range solo[extra.ID] {
		soloSet[k]++
	}
	for _, k := range got[extra.ID] {
		if soloSet[k] == 0 {
			t.Fatalf("added pattern emitted a match outside its solo set: %s", k)
		}
		soloSet[k]--
	}
}

// TestMultiShardTenantBudgets: a budgeted tenant sheds while the
// unbudgeted tenant's patterns stay byte-identical to an unbudgeted
// run; the per-tenant accounting surfaces through TenantStats.
func TestMultiShardTenantBudgets(t *testing.T) {
	w := multiWorkload(t, 5000, 41)
	specs := multiSpecs(t, w, gen.Sequence, 6, 2)
	_, free, _ := runMultiSharded(t, w, specs, 4, nil, nil)
	budgets := map[uint32]shed.TenantBudget{0: {Rate: 5, Burst: 5}}
	_, got, eng := runMultiSharded(t, w, specs, 4, budgets, nil)

	stats := eng.TenantStats()
	if len(stats) != 2 {
		t.Fatalf("%d tenant stats, want 2", len(stats))
	}
	var shed0, shed1 uint64
	for _, ts := range stats {
		if ts.Tenant == 0 {
			shed0 = ts.Shed
		} else {
			shed1 = ts.Shed
		}
	}
	if shed0 == 0 {
		t.Fatal("budgeted tenant shed nothing")
	}
	if shed1 != 0 {
		t.Fatalf("unbudgeted tenant shed %d events", shed1)
	}
	for _, sp := range specs {
		if sp.Tenant != 1 {
			continue
		}
		if !reflect.DeepEqual(sorted(got[sp.ID]), sorted(free[sp.ID])) {
			t.Fatalf("unbudgeted tenant's pattern %d disturbed by the other tenant's budget", sp.ID)
		}
	}
}

// TestMultiShardValidation covers the multi-mode constructor and
// mutation misuse errors.
func TestMultiShardValidation(t *testing.T) {
	w := multiWorkload(t, 10, 1)
	specs := multiSpecs(t, w, gen.Sequence, 4, 1)
	pat := specs[0].Pattern

	if _, err := New(pat, engine.Config{}, Options{Patterns: specs, KeyAttr: "key", Schema: w.Schema}); err == nil {
		t.Error("non-nil pattern accepted alongside Options.Patterns")
	}
	if _, err := New(nil, engine.Config{}, Options{Patterns: specs, KeyAttr: "key"}); err == nil {
		t.Error("multi mode without schema accepted")
	}
	if _, err := New(pat, engine.Config{}, Options{KeyAttr: "key", Schema: w.Schema,
		Tenants: map[uint32]shed.TenantBudget{0: {Rate: 1}}}); err == nil {
		t.Error("tenant budgets without multi mode accepted")
	}

	eng, err := New(nil, engine.Config{}, Options{
		Shards: 2, KeyAttr: "key", Schema: w.Schema, Patterns: specs[:3],
		OnTagged: func(Tagged) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.MultiPattern() || len(eng.PatternIDs()) != 3 {
		t.Fatal("MultiPattern/PatternIDs accessors wrong")
	}
	if err := eng.AddPattern(specs[0]); err == nil {
		t.Error("duplicate AddPattern accepted")
	}
	if err := eng.RemovePattern(999); err == nil {
		t.Error("unknown RemovePattern accepted")
	}
	if err := eng.AddPattern(specs[3]); err != nil {
		t.Errorf("valid AddPattern rejected: %v", err)
	}
	if err := eng.RemovePattern(specs[3].ID); err != nil {
		t.Errorf("valid RemovePattern rejected: %v", err)
	}
	eng.Finish()

	single, err := New(pat, engine.Config{}, Options{KeyAttr: "key", Schema: w.Schema, OnMatch: func(*match.Match) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.AddPattern(specs[1]); err == nil {
		t.Error("AddPattern on single-pattern engine accepted")
	}
	single.Finish()
}
