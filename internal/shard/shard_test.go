package shard

import (
	"reflect"
	"testing"

	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/oracle"
	"acep/internal/pattern"
)

// keyedWorkload is a small keyed traffic stream with one regime shift, so
// shard engines adapt mid-stream while being checked for exactness.
func keyedWorkload(t *testing.T) *gen.Workload {
	t.Helper()
	return gen.Traffic(gen.TrafficConfig{
		Types: 6, Events: 5000, Seed: 17, Shifts: 1, MeanGap: 3, Keys: 4,
	})
}

// runSingle is the single-threaded reference: the plain adaptive engine.
func runSingle(t *testing.T, w *gen.Workload, kind gen.Kind, model engine.Model) []string {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	var out []*match.Match
	eng, err := engine.New(pat, engine.Config{
		Model:      model,
		CheckEvery: 250,
		OnMatch:    func(m *match.Match) { out = append(out, m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	return oracle.Keys(out)
}

// runSharded executes the same workload through a sharded engine and
// returns the match keys in delivery order plus the engine.
func runSharded(t *testing.T, w *gen.Workload, kind gen.Kind, model engine.Model, shards, batch int) ([]string, *Engine) {
	t.Helper()
	pat, err := w.Pattern(kind, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	eng, err := New(pat, engine.Config{Model: model, CheckEvery: 250}, Options{
		Shards:  shards,
		Batch:   batch,
		KeyAttr: "key",
		Schema:  w.Schema,
		OnMatch: func(m *match.Match) { got = append(got, m.Key()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Events {
		eng.Process(&w.Events[i])
	}
	eng.Finish()
	return got, eng
}

// TestShardedMatchesSingleThreaded is the central exactness property of
// the sharded layer: for a key-partitionable pattern the sharded engine
// must produce exactly the single-threaded match set, at every shard
// count.
func TestShardedMatchesSingleThreaded(t *testing.T) {
	w := keyedWorkload(t)
	for _, kind := range []gen.Kind{gen.Sequence, gen.Negation, gen.Kleene, gen.Conjunction} {
		for _, model := range []engine.Model{engine.GreedyNFA, engine.ZStreamTree} {
			want := runSingle(t, w, kind, model)
			if len(want) == 0 {
				t.Fatalf("%v/%v: reference produced no matches; test is vacuous", kind, model)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				got, _ := runSharded(t, w, kind, model, shards, 128)
				if !reflect.DeepEqual(sorted(got), want) {
					t.Fatalf("%v/%v shards=%d: %d matches vs single-threaded %d",
						kind, model, shards, len(got), len(want))
				}
			}
		}
	}
}

func sorted(keys []string) []string {
	out := append([]string(nil), keys...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestShardedComposite covers OR patterns: per-disjunct, per-shard
// adaptation with the same exactness requirement.
func TestShardedComposite(t *testing.T) {
	w := gen.Traffic(gen.TrafficConfig{
		Types: 8, Events: 3000, Seed: 29, Shifts: 1, MeanGap: 4, Keys: 4,
	})
	want := runSingle(t, w, gen.Composite, engine.GreedyNFA)
	got, _ := runSharded(t, w, gen.Composite, engine.GreedyNFA, 4, 64)
	if !reflect.DeepEqual(sorted(got), want) {
		t.Fatalf("composite: %d matches vs %d", len(got), len(want))
	}
}

// TestOrderedDeterministicEmission checks the collector's two ordering
// guarantees: delivery in nondecreasing detection order, and an order
// that is a deterministic function of the input for a fixed shard count.
func TestOrderedDeterministicEmission(t *testing.T) {
	w := keyedWorkload(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]string, []uint64) {
		var keys []string
		var lastSeq []uint64
		eng, err := New(pat, engine.Config{CheckEvery: 250}, Options{
			Shards: 4, Batch: 128, KeyAttr: "key", Schema: w.Schema,
			OnMatch: func(m *match.Match) {
				keys = append(keys, m.Key())
				var max uint64
				for _, ev := range m.Events {
					if ev != nil && ev.Seq > max {
						max = ev.Seq
					}
				}
				lastSeq = append(lastSeq, max)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		return keys, lastSeq
	}
	keys1, seqs := run()
	if len(keys1) == 0 {
		t.Fatal("no matches")
	}
	// A sequence pattern's match is detected when its last core event
	// arrives, so delivery order must be nondecreasing in that event's
	// global sequence number.
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("out-of-order delivery at %d: seq %d after %d", i, seqs[i], seqs[i-1])
		}
	}
	// Reruns must reproduce the identical delivered order.
	for r := 0; r < 3; r++ {
		keys2, _ := run()
		if !reflect.DeepEqual(keys1, keys2) {
			t.Fatalf("rerun %d delivered a different order", r)
		}
	}
}

// TestShardedMetrics: the merged metrics must cover every event exactly
// once and agree with the delivered match count; the per-shard breakdown
// must sum to the merged view.
func TestShardedMetrics(t *testing.T) {
	w := keyedWorkload(t)
	got, eng := runSharded(t, w, gen.Sequence, engine.GreedyNFA, 4, 128)
	m := eng.Metrics()
	if m.Events != uint64(len(w.Events)) {
		t.Fatalf("Events = %d; want %d", m.Events, len(w.Events))
	}
	if m.Matches != uint64(len(got)) {
		t.Fatalf("Matches = %d; delivered %d", m.Matches, len(got))
	}
	per := eng.ShardMetrics()
	if len(per) != 4 {
		t.Fatalf("%d shard metrics", len(per))
	}
	var sum uint64
	active := 0
	for _, pm := range per {
		sum += pm.Events
		if pm.Events > 0 {
			active++
		}
	}
	if sum != m.Events {
		t.Fatalf("per-shard events sum %d != merged %d", sum, m.Events)
	}
	if active < 2 {
		t.Fatalf("only %d shards saw events; partitioner not spreading", active)
	}
	if eng.Shards() != 4 || len(eng.Plans()) != 4 {
		t.Fatal("Shards/Plans accessors wrong")
	}
}

// TestNewValidation covers the constructor's misuse errors.
func TestNewValidation(t *testing.T) {
	w := keyedWorkload(t)
	pat, err := w.Pattern(gen.Sequence, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	ok := Options{KeyAttr: "key", Schema: w.Schema}
	cases := []struct {
		name string
		cfg  engine.Config
		opts Options
	}{
		{"no key", engine.Config{}, Options{}},
		{"both modes", engine.Config{}, Options{Key: ByAttr(2), KeyAttr: "key", Schema: w.Schema}},
		{"keyattr without schema", engine.Config{}, Options{KeyAttr: "key"}},
		{"unknown attr", engine.Config{}, Options{KeyAttr: "nope", Schema: w.Schema}},
		{"engine OnMatch", engine.Config{OnMatch: func(*match.Match) {}}, ok},
		{"shared policy", engine.Config{Policy: &core.Invariant{}}, ok},
	}
	for _, c := range cases {
		if _, err := New(pat, c.cfg, c.opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// A non-partitionable pattern must be rejected in KeyAttr mode: the
	// unkeyed workload's pattern has no equality-on-key predicates even
	// though the "speed" attribute exists at every position.
	unkeyed := gen.Traffic(gen.TrafficConfig{Types: 6, Events: 10, Seed: 1})
	up, err := unkeyed.Pattern(gen.Sequence, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(up, engine.Config{}, Options{KeyAttr: "speed", Schema: unkeyed.Schema}); err == nil {
		t.Error("non-partitionable pattern accepted")
	}
	// Defaults fill in: shards/batch/queue unset is valid.
	eng, err := New(pat, engine.Config{}, ok)
	if err != nil {
		t.Fatal(err)
	}
	eng.Finish()
	if eng.Shards() < 1 {
		t.Fatal("default shard count < 1")
	}
	eng.Finish() // idempotent
}

// TestPartitionable exercises the validator directly.
func TestPartitionable(t *testing.T) {
	s := event.NewSchema()
	a := s.MustAddType("A", "id", "v")
	bt := s.MustAddType("B", "id", "v")
	c := s.MustAddType("C", "id", "v")

	// Connected chain of key equalities: partitionable.
	b1 := pattern.NewBuilder(s, pattern.Seq, 60)
	p0, p1, p2 := b1.Event(a), b1.Event(bt), b1.Event(c)
	b1.WhereEq(p0, "id", p1, "id")
	b1.WhereEq(p1, "id", p2, "id")
	if err := Partitionable(b1.MustBuild(), s, "id"); err != nil {
		t.Errorf("chain: %v", err)
	}

	// Missing one link: position 2 disconnected.
	b2 := pattern.NewBuilder(s, pattern.Seq, 60)
	q0, q1, _ := b2.Event(a), b2.Event(bt), b2.Event(c)
	b2.WhereEq(q0, "id", q1, "id")
	if err := Partitionable(b2.MustBuild(), s, "id"); err == nil {
		t.Error("disconnected pattern accepted")
	}

	// Equality on a non-key attribute does not connect the key graph.
	b3 := pattern.NewBuilder(s, pattern.Seq, 60)
	r0, r1 := b3.Event(a), b3.Event(bt)
	b3.WhereEq(r0, "v", r1, "v")
	if err := Partitionable(b3.MustBuild(), s, "id"); err == nil {
		t.Error("wrong-attribute equality accepted")
	}

	// A position's type lacking the key attribute is an error.
	d := s.MustAddType("D", "other")
	b4 := pattern.NewBuilder(s, pattern.Seq, 60)
	b4.Event(a)
	b4.Event(d)
	if err := Partitionable(b4.MustBuild(), s, "id"); err == nil {
		t.Error("missing key attribute accepted")
	}

	// Single-position patterns are trivially partitionable.
	b5 := pattern.NewBuilder(s, pattern.Seq, 60)
	b5.Event(a)
	if err := Partitionable(b5.MustBuild(), s, "id"); err != nil {
		t.Errorf("single position: %v", err)
	}

	// OR patterns: every disjunct must be partitionable.
	sub1 := pattern.NewBuilder(s, pattern.Seq, 60)
	s0, s1 := sub1.Event(a), sub1.Event(bt)
	sub1.WhereEq(s0, "id", s1, "id")
	sub2 := pattern.NewBuilder(s, pattern.Seq, 60)
	sub2.Event(a)
	sub2.Event(bt) // no key equality
	or, err := pattern.NewOr(sub1.MustBuild(), sub2.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if err := Partitionable(or, s, "id"); err == nil {
		t.Error("OR with non-partitionable disjunct accepted")
	}
}
