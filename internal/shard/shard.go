// Package shard is the parallel execution layer: it partitions one input
// stream by a user-supplied key, runs a fully independent adaptive
// detection engine per shard on its own worker goroutine, and merges the
// per-shard matches back into one deterministic, ordered output.
//
// Each shard owns a complete detection-adaptation loop — its own
// evaluation plan, statistics estimator and invariant policy — so the
// paper's adaptation method applies per partition without modification
// (§7: each shard keeps independent statistics and invariants, and may
// legitimately settle on a different plan when its key group's data
// characteristics differ). The layer preserves exact detection semantics
// for key-partitionable patterns: when equality-on-key predicates connect
// every pattern position (see Partitionable), the union of the shard-local
// match sets equals the global match set, because all events of one key
// value are routed to one shard.
//
// # Ingestion, bounded queues and ordering
//
// Per-shard ingestion queues are bounded (Options.Queue / QueueCap).
// When a shard falls behind, Options.Overflow chooses between blocking
// the producer (Backpressure, lossless) and discarding the overflowing
// handoff (DropNewest, counted in Metrics().QueueDropped) — the coarse,
// last-resort arm of overload control. The fine-grained arm is
// per-event shedding inside each shard's engine (engine.Config.Shedding,
// see internal/shed), whose load monitor watches this queue's depth.
//
// Process hands events to workers in batches (Options.Batch events per
// cut) to amortize channel synchronization; at every cut all shards
// receive their accumulated events together with the global sequence
// number the cut covers, so every shard's progress watermark advances
// uniformly even when its partition is momentarily idle. Matches are
// tagged with the sequence number of the event whose processing emitted
// them, buffered in a collector, and released strictly in tag order once
// every shard's watermark has passed the tag: OnMatch therefore observes
// matches in nondecreasing detection order (and, the stream being
// timestamp-ordered, nondecreasing detection timestamp), in an order that
// is a deterministic function of the input for a fixed shard count and
// batch size.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
)

// Overflow selects what Process does when a shard's bounded ingestion
// queue is full.
type Overflow int

const (
	// Backpressure blocks Process until the shard drains (default): no
	// event is ever lost, at the cost of stalling ingestion.
	Backpressure Overflow = iota
	// DropNewest discards the overflowing handoff's events for that shard
	// and counts them in Metrics().QueueDropped. Ingestion never blocks;
	// the dropped cut's watermark rides on the next successful handoff,
	// so match ordering is unaffected (matches merely wait for the
	// lagging shard's progress). Finish always delivers the final cut.
	DropNewest
)

// String names the overflow mode.
func (o Overflow) String() string {
	switch o {
	case Backpressure:
		return "backpressure"
	case DropNewest:
		return "drop-newest"
	default:
		return fmt.Sprintf("Overflow(%d)", int(o))
	}
}

// Options assembles a sharded engine.
type Options struct {
	// Shards is the number of partitions (and worker goroutines).
	// Defaults to runtime.GOMAXPROCS(0).
	Shards int
	// Batch is the number of ingested events per handoff cut (default
	// 256). Larger batches amortize synchronization; smaller ones reduce
	// match emission latency.
	Batch int
	// Queue is the per-shard channel capacity in batches (default 4);
	// ingestion blocks (Backpressure) or drops (DropNewest) when a shard
	// falls this far behind.
	Queue int
	// QueueCap, when positive, bounds the per-shard ingestion queue in
	// events instead of batches: the capacity is QueueCap/Batch batches
	// (at least one). It takes precedence over Queue.
	QueueCap int
	// Overflow selects the full-queue behavior (default Backpressure).
	Overflow Overflow
	// Key extracts the partition key (custom-extractor mode). Exactly one
	// of Key and KeyAttr must be set.
	Key KeyFunc
	// KeyAttr names the key attribute (hash mode): the key is the
	// attribute's value, resolved per type through Schema, and the
	// pattern is validated to be partitionable by it.
	KeyAttr string
	// Schema resolves KeyAttr; required in hash mode.
	Schema *event.Schema
	// OnMatch receives every match, on the collector goroutine, in the
	// deterministic merged order described in the package comment.
	OnMatch func(*match.Match)
}

// cut is one batch handoff: the shard's events accumulated since the last
// cut (possibly none) plus the global sequence watermark the cut covers.
type cut struct {
	events []event.Event
	upTo   uint64
}

// tagged is a match annotated for ordered merging.
type tagged struct {
	m     *match.Match
	seq   uint64 // Seq of the event whose processing emitted the match
	shard int
	idx   uint64 // per-shard emission counter, for a deterministic total order
}

// post is one worker→collector message: the matches of one processed
// batch and the shard's new progress watermark.
type post struct {
	shard    int
	progress uint64
	matches  []tagged
}

// worker runs one shard's engine on its own goroutine.
type worker struct {
	id  int
	eng *engine.Engine
	in  chan cut

	// Emission state, owned by the worker goroutine (the OnMatch closure
	// of the shard engine runs there).
	curSeq uint64
	idx    uint64
	out    []tagged
}

func (w *worker) take() []tagged {
	m := w.out
	w.out = nil
	return m
}

func (w *worker) run(col *collector, wg *sync.WaitGroup) {
	defer wg.Done()
	for c := range w.in {
		for i := range c.events {
			w.curSeq = c.events[i].Seq
			w.eng.Process(&c.events[i])
		}
		col.ch <- post{shard: w.id, progress: c.upTo, matches: w.take()}
	}
	// End of stream: flush parked matches. They are tagged past every
	// real sequence number and ordered by (shard, emission index).
	w.curSeq = math.MaxUint64
	w.eng.Finish()
	col.ch <- post{shard: w.id, progress: math.MaxUint64, matches: w.take()}
}

// Engine is a sharded adaptive detection engine. Process and Finish must
// be called from a single goroutine; OnMatch fires on the collector
// goroutine. The zero value is not usable; construct with New.
type Engine struct {
	key      KeyFunc
	nshards  int
	batch    int
	overflow Overflow

	workers []*worker
	bufs    [][]event.Event
	pending int
	lastSeq uint64

	queueDropped []uint64 // per shard, owned by the Process goroutine

	col      *collector
	wg       sync.WaitGroup
	finished bool
}

// New builds a sharded engine for the pattern. cfg configures every
// shard's engine identically; cfg.OnMatch must be nil (matches are merged
// through opts.OnMatch) and cfg.Policy must be nil (policies are stateful
// and cannot be shared across shards — set cfg.NewPolicy, or leave both
// nil for the default invariant policy per shard).
func New(pat *pattern.Pattern, cfg engine.Config, opts Options) (*Engine, error) {
	if cfg.OnMatch != nil {
		return nil, fmt.Errorf("shard: set Options.OnMatch, not engine Config.OnMatch (per-shard callbacks would not be ordered)")
	}
	if cfg.Policy != nil {
		return nil, fmt.Errorf("shard: Config.Policy would be shared across shards; set Config.NewPolicy so each shard adapts independently")
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.Batch <= 0 {
		opts.Batch = 256
	}
	if opts.QueueCap > 0 {
		opts.Queue = (opts.QueueCap + opts.Batch - 1) / opts.Batch
	}
	if opts.Queue <= 0 {
		opts.Queue = 4
	}
	switch {
	case opts.Key != nil && opts.KeyAttr != "":
		return nil, fmt.Errorf("shard: set exactly one of Options.Key and Options.KeyAttr, not both")
	case opts.Key == nil && opts.KeyAttr == "":
		return nil, fmt.Errorf("shard: a partition key is required: set Options.Key or Options.KeyAttr")
	case opts.KeyAttr != "":
		if opts.Schema == nil {
			return nil, fmt.Errorf("shard: Options.KeyAttr needs Options.Schema to resolve the attribute")
		}
		if err := Partitionable(pat, opts.Schema, opts.KeyAttr); err != nil {
			return nil, err
		}
		key, err := ByAttrName(opts.Schema, opts.KeyAttr)
		if err != nil {
			return nil, err
		}
		opts.Key = key
	}

	e := &Engine{
		key:          opts.Key,
		nshards:      opts.Shards,
		batch:        opts.Batch,
		overflow:     opts.Overflow,
		bufs:         make([][]event.Event, opts.Shards),
		queueDropped: make([]uint64, opts.Shards),
		col:          newCollector(opts.Shards, opts.OnMatch),
	}
	for s := 0; s < e.nshards; s++ {
		w := &worker{id: s, in: make(chan cut, opts.Queue)}
		shardCfg := cfg
		shardCfg.OnMatch = func(m *match.Match) {
			w.out = append(w.out, tagged{m: m, seq: w.curSeq, shard: w.id, idx: w.idx})
			w.idx++
		}
		if shardCfg.Shedding.Policy != nil && shardCfg.Shedding.Key == nil {
			// Pattern-aware shedding protects per-entity state; default the
			// protected key to the partition key so each shard's shedder
			// recognizes its own live entities.
			shardCfg.Shedding.Key = opts.Key
		}
		eng, err := engine.New(pat, shardCfg)
		if err != nil {
			return nil, err
		}
		// The shedder (when configured) watches this worker's queue depth;
		// both run on the worker goroutine, and len/cap on the channel are
		// safe to sample from there.
		in := w.in
		eng.SetQueueProbe(func() (int, int) { return len(in), cap(in) })
		w.eng = eng
		e.workers = append(e.workers, w)
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go w.run(e.col, &e.wg)
	}
	go e.col.run()
	return e, nil
}

// Process routes one event to its shard. Events must arrive in
// non-decreasing timestamp order with unique, increasing Seq numbers
// (the same contract as engine.Engine.Process).
func (e *Engine) Process(ev *event.Event) {
	if e.finished {
		panic("shard: Process after Finish")
	}
	s := int(mix64(e.key(ev)) % uint64(e.nshards))
	e.bufs[s] = append(e.bufs[s], *ev)
	e.lastSeq = ev.Seq
	e.pending++
	if e.pending >= e.batch {
		e.cutAll(false)
	}
}

// cutAll seals the current cut: every shard receives its accumulated
// events (possibly none) and the watermark, so progress advances
// uniformly across shards. When block is false and the overflow mode is
// DropNewest, a full shard's handoff is discarded instead of awaited (the
// events are lost and counted; the watermark rides on the next successful
// handoff, whose upTo is necessarily newer).
func (e *Engine) cutAll(block bool) {
	for s, w := range e.workers {
		c := cut{events: e.bufs[s], upTo: e.lastSeq}
		if block || e.overflow == Backpressure {
			w.in <- c
		} else {
			select {
			case w.in <- c:
			default:
				e.queueDropped[s] += uint64(len(c.events))
			}
		}
		e.bufs[s] = nil
	}
	e.pending = 0
}

// Finish flushes the final partial cut, drains every shard, and waits
// until the collector has delivered all matches. Idempotent.
func (e *Engine) Finish() {
	if e.finished {
		return
	}
	e.finished = true
	e.cutAll(true) // the final cut always delivers, even under DropNewest
	for _, w := range e.workers {
		close(w.in)
	}
	e.wg.Wait()
	close(e.col.ch)
	<-e.col.done
}

// Shards reports the shard count.
func (e *Engine) Shards() int { return e.nshards }

// Metrics merges the per-shard engine metrics into one stream-wide view,
// including the events dropped on queue overflow. Call after Finish
// (shard engines are owned by their workers until then).
func (e *Engine) Metrics() engine.Metrics {
	var m engine.Metrics
	for i, w := range e.workers {
		sm := w.eng.Metrics()
		sm.QueueDropped += e.queueDropped[i]
		m.Merge(sm)
	}
	return m
}

// ShardMetrics is the per-shard breakdown behind Metrics. Call after
// Finish.
func (e *Engine) ShardMetrics() []engine.Metrics {
	out := make([]engine.Metrics, len(e.workers))
	for i, w := range e.workers {
		out[i] = w.eng.Metrics()
		out[i].QueueDropped += e.queueDropped[i]
	}
	return out
}

// Plans reports each shard's current plans (one per sub-pattern). Call
// after Finish. Shards may legitimately hold different plans: each
// adapted to its own partition's statistics.
func (e *Engine) Plans() [][]string {
	out := make([][]string, len(e.workers))
	for i, w := range e.workers {
		for _, p := range w.eng.CurrentPlans() {
			out[i] = append(out[i], fmt.Sprint(p))
		}
	}
	return out
}

// collector merges per-shard match streams into one ordered output. It
// buffers matches in a min-heap keyed (tag, shard, emission index) and
// releases a match only when every shard's progress watermark has passed
// its tag — at that point no shard can still produce an earlier match, so
// the released order is the sorted order, independent of goroutine
// scheduling.
type collector struct {
	ch      chan post
	done    chan struct{}
	onMatch func(*match.Match)

	progress []uint64
	heap     []tagged
}

func newCollector(shards int, onMatch func(*match.Match)) *collector {
	return &collector{
		ch:       make(chan post, shards*2),
		done:     make(chan struct{}),
		onMatch:  onMatch,
		progress: make([]uint64, shards),
	}
}

func (c *collector) run() {
	defer close(c.done)
	for p := range c.ch {
		c.progress[p.shard] = p.progress
		for _, t := range p.matches {
			c.push(t)
		}
		min := c.progress[0]
		for _, pr := range c.progress[1:] {
			if pr < min {
				min = pr
			}
		}
		for len(c.heap) > 0 && c.heap[0].seq <= min {
			c.emit(c.pop())
		}
	}
	// Channel closed: every worker has posted its final watermark; drain
	// the remainder in order.
	for len(c.heap) > 0 {
		c.emit(c.pop())
	}
}

func (c *collector) emit(t tagged) {
	if c.onMatch != nil {
		c.onMatch(t.m)
	}
}

func tagLess(a, b tagged) bool {
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	if a.shard != b.shard {
		return a.shard < b.shard
	}
	return a.idx < b.idx
}

func (c *collector) push(t tagged) {
	c.heap = append(c.heap, t)
	i := len(c.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !tagLess(c.heap[i], c.heap[p]) {
			break
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

func (c *collector) pop() tagged {
	h := c.heap
	top := h[0]
	h[0] = h[len(h)-1]
	h[len(h)-1] = tagged{}
	h = h[:len(h)-1]
	c.heap = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && tagLess(h[l], h[m]) {
			m = l
		}
		if r < len(h) && tagLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
