// Package shard is the parallel execution layer: it partitions one input
// stream by a user-supplied key, runs a fully independent adaptive
// detection engine per shard on its own worker goroutine, and merges the
// per-shard matches back into one deterministic, ordered output.
//
// Each shard owns a complete detection-adaptation loop — its own
// evaluation plan, statistics estimator and invariant policy — so the
// paper's adaptation method applies per partition without modification
// (§7: each shard keeps independent statistics and invariants, and may
// legitimately settle on a different plan when its key group's data
// characteristics differ). The layer preserves exact detection semantics
// for key-partitionable patterns: when equality-on-key predicates connect
// every pattern position (see Partitionable), the union of the shard-local
// match sets equals the global match set, because all events of one key
// value are routed to one shard.
//
// # Ingestion, bounded queues and ordering
//
// Per-shard ingestion queues are bounded (Options.Queue / QueueCap; with
// Options.Snapshot and Options.Window the bound is derived from the
// measured arrival rate instead of a constant — see DeriveQueueCap).
// When a shard falls behind, Options.Overflow chooses between blocking
// the producer (Backpressure, lossless) and discarding the overflowing
// handoff (DropNewest, counted in Metrics().QueueDropped) — the coarse,
// last-resort arm of overload control. The fine-grained arm is
// per-event shedding inside each shard's engine (engine.Config.Shedding,
// see internal/shed), whose load monitor watches this queue's depth.
//
// Process hands events to workers in batches (Options.Batch events per
// cut) to amortize channel synchronization; at every cut all shards
// receive their accumulated events together with the global sequence
// number the cut covers, so every shard's progress watermark advances
// uniformly even when its partition is momentarily idle. Matches are
// tagged with the sequence number of the event whose processing emitted
// them, buffered in a Collector, and released strictly in tag order once
// every shard's watermark has passed the tag: OnMatch therefore observes
// matches in nondecreasing detection order (and, the stream being
// timestamp-ordered, nondecreasing detection timestamp), in an order that
// is a deterministic function of the input for a fixed shard count.
//
// The cluster layer (internal/cluster) stacks on this package: a worker
// node hosts one Engine routed by explicit global shard index
// (Options.Route), flushes it at every network cut (Flush), receives
// tagged matches and completion watermarks through Options.OnTagged and
// Options.OnProgress, and the ingress coordinator merges whole node
// streams through another Collector.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/multi"
	"acep/internal/pattern"
	"acep/internal/shed"
	"acep/internal/stats"
)

// Overflow selects what Process does when a shard's bounded ingestion
// queue is full.
type Overflow int

const (
	// Backpressure blocks Process until the shard drains (default): no
	// event is ever lost, at the cost of stalling ingestion.
	Backpressure Overflow = iota
	// DropNewest discards the overflowing handoff's events for that shard
	// and counts them in Metrics().QueueDropped. Ingestion never blocks;
	// the dropped cut's watermark rides on the next successful handoff,
	// so match ordering is unaffected (matches merely wait for the
	// lagging shard's progress). Finish always delivers the final cut.
	DropNewest
)

// String names the overflow mode.
func (o Overflow) String() string {
	switch o {
	case Backpressure:
		return "backpressure"
	case DropNewest:
		return "drop-newest"
	default:
		return fmt.Sprintf("Overflow(%d)", int(o))
	}
}

// Options assembles a sharded engine.
type Options struct {
	// Shards is the number of partitions (and worker goroutines).
	// Defaults to runtime.GOMAXPROCS(0).
	Shards int
	// Batch is the number of ingested events per handoff cut (default
	// 256). Larger batches amortize synchronization; smaller ones reduce
	// match emission latency.
	Batch int
	// Queue is the per-shard channel capacity in batches (default 4);
	// ingestion blocks (Backpressure) or drops (DropNewest) when a shard
	// falls this far behind.
	Queue int
	// QueueCap, when positive, bounds the per-shard ingestion queue in
	// events instead of batches: the capacity is QueueCap/Batch batches
	// (at least one). It takes precedence over Queue.
	QueueCap int
	// Snapshot, together with Window, derives a default QueueCap from the
	// measured arrival rate when neither QueueCap nor Queue is set: one
	// pattern window's worth of events at the snapshot's total rate,
	// split across the shards (see DeriveQueueCap). Seed it with
	// stats.Exact over a stream prefix, or with the engine's own latest
	// snapshot when resizing between runs.
	Snapshot *stats.Snapshot
	// Window is the pattern's time window, used only for snapshot-driven
	// queue sizing.
	Window event.Time
	// Overflow selects the full-queue behavior (default Backpressure).
	Overflow Overflow
	// Key extracts the partition key (custom-extractor mode). Exactly one
	// of Key and KeyAttr must be set, unless Route is set (then Key is
	// optional and used only for shedding protection).
	Key KeyFunc
	// KeyAttr names the key attribute (hash mode): the key is the
	// attribute's value, resolved per type through Schema, and the
	// pattern is validated to be partitionable by it.
	KeyAttr string
	// Schema resolves KeyAttr; required in hash mode.
	Schema *event.Schema
	// Route, when set, maps an event directly to its shard index in
	// [0, Shards), overriding the default mix64(Key) % Shards placement.
	// The caller owns the correctness obligation that all events of one
	// partition key route to one shard. The cluster node layer uses it to
	// pin each global shard index to a fixed local engine.
	Route func(*event.Event) int
	// OnMatch receives every match, on the collector goroutine, in the
	// deterministic merged order described in the package comment.
	OnMatch func(*match.Match)
	// OnTagged, when set instead of OnMatch, receives every match with
	// its merge tag (sequence number, shard, emission index), in the same
	// order and on the same goroutine. The cluster node layer forwards
	// tags over the wire so the ingress can merge across nodes.
	OnTagged func(Tagged)
	// OnProgress (optional) is called on the collector goroutine whenever
	// the engine's completion watermark advances: every match tagged at
	// or below the reported sequence number has been delivered.
	OnProgress func(uint64)
	// Patterns switches the engine to multi-pattern mode: every worker
	// runs one multi.Evaluator over the whole set (shared unary
	// predicates, shared SEQ prefix runners, per-tenant budgets) on its
	// partition of the stream, and every Tagged match carries the
	// emitting pattern's id. New must then be called with a nil pattern
	// and a zero engine.Config — each spec carries its own Config. In
	// hash mode every pattern of the set must be partitionable by
	// KeyAttr. Mutate the running set with AddPattern/RemovePattern.
	Patterns []multi.Spec
	// Tenants installs per-tenant token-bucket budgets (multi-pattern
	// mode only). Each worker gates its own partition independently with
	// a full copy of the budget, so a budget intended as a global rate
	// should be divided by the shard count before it lands here.
	Tenants map[uint32]shed.TenantBudget
	// EncodeMatch, settable only with OnTagged, switches the engine to the
	// owned-emit wire path: every shard's evaluators run under the
	// owned-emit contract, each match is encoded into a per-shard outbox
	// slab on the worker goroutine (dst is the slab to append to; return
	// the extended slice), and the resulting Tagged carries the encoded
	// bytes in Enc with M nil. The callback must read m synchronously and
	// retain nothing — the cluster node layer passes
	// wire.AppendMatchBody, so matches travel from the resolver's scratch
	// to the wire without ever materializing a collector-side copy.
	EncodeMatch func(dst []byte, m *match.Match) []byte
}

// cut is one batch handoff: pointers to the shard's events accumulated
// since the last cut (possibly none), their ingress wall-clock stamps
// (unix nanos, parallel to events), optional precomputed unary masks
// (parallel to events; zero entries mean "none"), plus the global
// sequence watermark the cut covers. The events live in the engine's
// ingest arena (Process) or in caller-stable storage (ProcessStable) —
// either way they outlive the evaluators' retention window, so workers
// hand the pointers straight to their engines without re-interning.
type cut struct {
	events []*event.Event
	stamps []int64
	masks  []uint32
	upTo   uint64
	// ops are pattern-set mutations applied before the cut's events
	// (multi-pattern mode): sealing mutations into their own cut pins
	// them to one deterministic stream position on every worker.
	ops []patternOp
}

// patternOp is one pattern-set mutation: add (add != nil) or remove the
// pattern with id.
type patternOp struct {
	add *multi.Spec
	id  uint32
}

// detectSampleEvery is the per-worker sampling stride of the detection-
// time estimator (queue wait is measured for every event; detection time
// costs two clock reads, so it is sampled).
const detectSampleEvery = 16

// loadSampleCuts is the per-worker publishing stride of the live load
// snapshot (ShardLoads): the queue-wait p99 read sorts the estimator's
// reservoir, so it is refreshed every few cuts, not every cut.
const loadSampleCuts = 16

// worker runs one shard's engine on its own goroutine.
type worker struct {
	id   int
	eng  *engine.Engine   // single-pattern mode
	mev  *multi.Evaluator // multi-pattern mode (eng is nil then)
	in   chan cut
	free chan cut // recycles consumed cut buffers back to the coordinator

	// Emission state, owned by the worker goroutine (the OnMatch closure
	// of the shard engine runs there). scratch collects the matches
	// emitted while processing one event; flushEmits moves them into out
	// in canonical order (per-shard emission indices are assigned by the
	// collector in posting order). On the owned-emit wire path (Options.
	// EncodeMatch) the scratch entries are pooled copies of the
	// resolver's scratch match and flushEmits encodes each into the enc
	// outbox slab instead of letting it escape to the collector.
	curSeq  uint64
	scratch []scratchMatch
	out     []Tagged

	encode func(dst []byte, m *match.Match) []byte
	enc    []byte         // per-cut outbox slab; ownership passes with take()
	mfree  []*match.Match // pooled scratch copies (owned-emit path only)

	// Latency estimators, owned by the worker goroutine; read by
	// Metrics/ShardMetrics after Finish.
	qwait   stats.Quantile
	detect  stats.Quantile
	nevents uint64

	// Live load snapshot, published by the worker goroutine every
	// loadSampleCuts cuts and readable from any goroutine mid-run
	// (Engine.ShardLoads): events processed so far and the queue-wait
	// p99 estimate in nanoseconds. The placement controller of the
	// cluster layer feeds on these.
	cuts       uint64
	liveEvents atomic.Uint64
	liveWait   atomic.Uint64
}

// scratchMatch is one match emitted while processing the current event,
// tagged with its pattern id (always 0 in single-pattern mode).
type scratchMatch struct {
	pat uint32
	m   *match.Match
}

func (w *worker) take() []Tagged {
	m := w.out
	w.out = nil
	// The outbox slab is now referenced by the taken tags; the next cut
	// starts a fresh one (the collector may buffer tags indefinitely, so
	// the slab must never be overwritten).
	w.enc = nil
	return m
}

// copyScratch clones the resolver's scratch match into a pooled worker
// match: the slice headers are the worker's own (reused across matches),
// the event pointers are stable arena events. Needed because the
// owned-emit contract invalidates the emitted match when the OnMatch
// callback returns, but canonical ordering (flushEmits) runs only after
// the whole event is processed.
func (w *worker) copyScratch(src *match.Match) *match.Match {
	var m *match.Match
	if n := len(w.mfree); n > 0 {
		m = w.mfree[n-1]
		w.mfree[n-1] = nil
		w.mfree = w.mfree[:n-1]
	} else {
		m = &match.Match{}
	}
	m.Events = append(m.Events[:0], src.Events...)
	m.Kleene = m.Kleene[:0]
	for _, set := range src.Kleene {
		m.Kleene = append(m.Kleene, append([]*event.Event(nil), set...))
	}
	return m
}

// putMatch recycles a pooled scratch copy, dropping its event references
// so dead matches don't pin arena chunks.
func (w *worker) putMatch(m *match.Match) {
	clear(m.Events[:cap(m.Events)])
	m.Events = m.Events[:0]
	clear(m.Kleene[:cap(m.Kleene)])
	m.Kleene = m.Kleene[:0]
	w.mfree = append(w.mfree, m)
}

// flushEmits tags the matches emitted while processing the current event
// and appends them to the outgoing batch in canonical order (by
// constituent event sequence numbers). The engine's own emission order
// within one event depends on its evaluation-plan trajectory — two
// engines fed the same events can enumerate simultaneous completions
// differently after adapting differently — so sorting here is what makes
// the delivered stream a function of the input alone. The cluster's
// failover replay relies on this: a successor rebuilding a lost shard
// from journaled history replans from scratch yet must reproduce the
// dead engine's stream byte for byte.
func (w *worker) flushEmits() {
	if len(w.scratch) == 0 {
		return
	}
	if len(w.scratch) > 1 {
		sortMatches(w.scratch)
	}
	for _, s := range w.scratch {
		t := Tagged{Seq: w.curSeq, Src: w.id, Pattern: s.pat}
		if w.encode != nil {
			// Owned-emit wire path: encode into the outbox slab and
			// recycle the pooled copy. Appends may grow the slab into a
			// new backing array; earlier tags keep the old one alive, so
			// every Enc slice stays valid.
			start := len(w.enc)
			w.enc = w.encode(w.enc, s.m)
			t.Enc = w.enc[start:len(w.enc):len(w.enc)]
			w.putMatch(s.m)
		} else {
			t.M = s.m
		}
		w.out = append(w.out, t)
	}
	w.scratch = w.scratch[:0]
}

func (w *worker) run(col *Collector, wg *sync.WaitGroup) {
	defer wg.Done()
	for c := range w.in {
		for _, op := range c.ops {
			// Pattern-set mutations are prevalidated by AddPattern /
			// RemovePattern on the coordinator goroutine, so the only
			// possible failure here is a duplicate id, which the engine-
			// side registry already rejected.
			if w.mev == nil {
				continue
			}
			if op.add != nil {
				_ = w.mev.Add(*op.add)
			} else {
				_ = w.mev.Remove(op.id)
			}
		}
		if len(c.events) > 0 {
			recv := time.Now().UnixNano()
			for i, ev := range c.events {
				w.qwait.Add(float64(recv - c.stamps[i]))
				w.curSeq = ev.Seq
				w.nevents++
				var mk uint32
				if c.masks != nil {
					mk = c.masks[i]
				}
				if w.nevents%detectSampleEvery == 0 {
					t0 := time.Now()
					w.process(ev, mk)
					w.detect.Add(float64(time.Since(t0)))
				} else {
					w.process(ev, mk)
				}
				w.flushEmits()
			}
		}
		col.Post(w.id, c.upTo, w.take())
		// Publish the live load sample on a stride (the p99 read sorts
		// the reservoir, too costly per cut).
		if w.cuts++; w.cuts%loadSampleCuts == 0 {
			w.liveEvents.Store(w.nevents)
			w.liveWait.Store(uint64(w.qwait.Quantile(0.99)))
		}
		// Recycle the consumed cut buffers: the evaluator retains the
		// events themselves, never these slice headers. Event pointers
		// are cleared first so a pooled buffer cannot pin arena chunks
		// past their release horizon.
		if cap(c.events) > 0 {
			for i := range c.events {
				c.events[i] = nil
			}
			select {
			case w.free <- cut{events: c.events[:0], stamps: c.stamps[:0], masks: c.masks[:0]}:
			default:
			}
		}
	}
	// End of stream: flush parked matches. They are tagged past every
	// real sequence number and ordered by (shard, emission index).
	w.curSeq = math.MaxUint64
	if w.mev != nil {
		w.mev.Finish()
	} else {
		w.eng.Finish()
	}
	w.flushEmits()
	col.Post(w.id, math.MaxUint64, w.take())
}

// process feeds one event to the worker's evaluator. The multi-pattern
// evaluator composes its own per-pattern masks from the shared verdict
// table, so the cut-level mask (single-pattern scan) is ignored there.
func (w *worker) process(ev *event.Event, mask uint32) {
	if w.mev != nil {
		w.mev.Process(ev)
		return
	}
	w.eng.ProcessMasked(ev, mask)
}

// sortMatches orders simultaneously emitted matches canonically: by
// pattern id, then by core event sequence numbers position by position,
// then by Kleene closure contents. The pattern id leads so that shared
// and independent evaluation — which interleave per-pattern emissions
// differently within one event — deliver the identical stream.
// Insertion sort — simultaneous emission groups are tiny.
func sortMatches(ms []scratchMatch) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && scratchLess(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func scratchLess(a, b scratchMatch) bool {
	if a.pat != b.pat {
		return a.pat < b.pat
	}
	return matchLess(a.m, b.m)
}

func matchLess(a, b *match.Match) bool {
	if c := cmpEvents(a.Events, b.Events); c != 0 {
		return c < 0
	}
	na, nb := len(a.Kleene), len(b.Kleene)
	for p := 0; p < na && p < nb; p++ {
		if c := cmpEvents(a.Kleene[p], b.Kleene[p]); c != 0 {
			return c < 0
		}
	}
	return na < nb
}

// cmpEvents compares position-aligned event slices by sequence number;
// nil entries (residual positions) order before any event.
func cmpEvents(a, b []*event.Event) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ae, be := a[i], b[i]
		switch {
		case ae == nil && be == nil:
		case ae == nil:
			return -1
		case be == nil:
			return 1
		case ae.Seq != be.Seq:
			if ae.Seq < be.Seq {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Engine is a sharded adaptive detection engine. Process, Flush and
// Finish must be called from a single goroutine; OnMatch fires on the
// collector goroutine. The zero value is not usable; construct with New.
type Engine struct {
	route    func(*event.Event) int
	nshards  int
	batch    int
	overflow Overflow
	window   event.Time

	workers []*worker
	bufs    [][]*event.Event
	stamps  [][]int64
	masks   [][]uint32
	free    chan cut // consumed cut buffers recycled by the workers
	pending int
	lastSeq uint64

	// arena is the single-copy ingest store: Process interns each event
	// exactly once here and everything downstream — cut buffers, evaluator
	// buffers, partial matches, emitted matches — holds pointers into it.
	// Recycling stays off, so releasing a chunk merely drops the arena's
	// reference and the garbage collector keeps it alive for as long as
	// any evaluator or buffered match still points in; any release horizon
	// is therefore memory-safe, and the horizon below only bounds how much
	// the arena itself pins. ProcessStable bypasses the arena entirely
	// (its events are caller-stable — a wire decode arena or journal).
	arena match.Arena
	maxTS event.Time

	queueDropped []uint64 // per shard, owned by the Process goroutine
	queueCap     int      // effective per-shard queue bound, in events

	// Multi-pattern registry (nil in single-pattern mode), owned by the
	// Process goroutine like all coordinator state.
	patIDs map[uint32]bool
	schema *event.Schema

	col      *Collector
	wg       sync.WaitGroup
	finished bool
}

// minAutoQueueBatches floors the snapshot-derived queue bound: below two
// in-flight batches the handoff pipeline cannot overlap with detection.
const minAutoQueueBatches = 2

// DeriveQueueCap derives a per-shard ingestion-queue bound (in events)
// from measured statistics: one pattern window's worth of events at the
// snapshot's total arrival rate, divided evenly across the shards. The
// rationale: a queue holding less than a window of the live rate forces
// drops (or blocking) on traffic the pattern could still join against,
// while a much larger queue only adds latency — the window is the horizon
// beyond which buffered events cannot extend a new partial match anyway.
func DeriveQueueCap(s *stats.Snapshot, window event.Time, shards int) int {
	if s == nil || window <= 0 {
		return 0
	}
	if shards < 1 {
		shards = 1
	}
	rate := 0.0 // events/sec across the pattern's positions
	for _, r := range s.Rates {
		rate += r
	}
	return int(rate * float64(window) / float64(event.Second) / float64(shards))
}

// New builds a sharded engine for the pattern. cfg configures every
// shard's engine identically; cfg.OnMatch must be nil (matches are merged
// through opts.OnMatch) and cfg.Policy must be nil (policies are stateful
// and cannot be shared across shards — set cfg.NewPolicy, or leave both
// nil for the default invariant policy per shard).
func New(pat *pattern.Pattern, cfg engine.Config, opts Options) (*Engine, error) {
	if cfg.OnMatch != nil {
		return nil, fmt.Errorf("shard: set Options.OnMatch, not engine Config.OnMatch (per-shard callbacks would not be ordered)")
	}
	if cfg.Policy != nil {
		return nil, fmt.Errorf("shard: Config.Policy would be shared across shards; set Config.NewPolicy so each shard adapts independently")
	}
	if len(opts.Patterns) > 0 {
		if pat != nil {
			return nil, fmt.Errorf("shard: in multi-pattern mode the set travels in Options.Patterns; pass a nil pattern")
		}
		if opts.Schema == nil {
			return nil, fmt.Errorf("shard: multi-pattern mode needs Options.Schema for set analysis")
		}
		// The arena release horizon and snapshot queue sizing need the
		// widest window of the set.
		if opts.Window == 0 {
			for _, sp := range opts.Patterns {
				if sp.Pattern != nil && sp.Pattern.Window > opts.Window {
					opts.Window = sp.Pattern.Window
				}
			}
		}
	} else if len(opts.Tenants) > 0 {
		return nil, fmt.Errorf("shard: Options.Tenants needs multi-pattern mode (Options.Patterns)")
	}
	if opts.OnMatch != nil && opts.OnTagged != nil {
		return nil, fmt.Errorf("shard: set at most one of Options.OnMatch and Options.OnTagged")
	}
	if opts.EncodeMatch != nil && opts.OnTagged == nil {
		return nil, fmt.Errorf("shard: Options.EncodeMatch requires Options.OnTagged (encoded matches carry no *match.Match for OnMatch)")
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.Batch <= 0 {
		opts.Batch = 256
	}
	if opts.QueueCap <= 0 && opts.Queue <= 0 {
		// Snapshot-driven sizing: derive the bound from measured
		// events/sec × window instead of the fixed default.
		if qc := DeriveQueueCap(opts.Snapshot, opts.Window, opts.Shards); qc > 0 {
			opts.QueueCap = qc
			if floor := minAutoQueueBatches * opts.Batch; opts.QueueCap < floor {
				opts.QueueCap = floor
			}
		}
	}
	if opts.QueueCap > 0 {
		opts.Queue = (opts.QueueCap + opts.Batch - 1) / opts.Batch
	}
	if opts.Queue <= 0 {
		opts.Queue = 4
	}
	switch {
	case opts.Key != nil && opts.KeyAttr != "":
		return nil, fmt.Errorf("shard: set exactly one of Options.Key and Options.KeyAttr, not both")
	case opts.Key == nil && opts.KeyAttr == "" && opts.Route == nil:
		return nil, fmt.Errorf("shard: a partition key is required: set Options.Key or Options.KeyAttr")
	case opts.KeyAttr != "":
		if opts.Schema == nil {
			return nil, fmt.Errorf("shard: Options.KeyAttr needs Options.Schema to resolve the attribute")
		}
		if len(opts.Patterns) > 0 {
			for _, sp := range opts.Patterns {
				if err := Partitionable(sp.Pattern, opts.Schema, opts.KeyAttr); err != nil {
					return nil, fmt.Errorf("shard: pattern %d: %w", sp.ID, err)
				}
			}
		} else if err := Partitionable(pat, opts.Schema, opts.KeyAttr); err != nil {
			return nil, err
		}
		key, err := ByAttrName(opts.Schema, opts.KeyAttr)
		if err != nil {
			return nil, err
		}
		opts.Key = key
	}

	e := &Engine{
		route:        opts.Route,
		nshards:      opts.Shards,
		batch:        opts.Batch,
		overflow:     opts.Overflow,
		window:       opts.Window,
		bufs:         make([][]*event.Event, opts.Shards),
		stamps:       make([][]int64, opts.Shards),
		masks:        make([][]uint32, opts.Shards),
		queueDropped: make([]uint64, opts.Shards),
		queueCap:     opts.Queue * opts.Batch,
		// One pooled buffer set per queue slot plus the one being filled:
		// with full queues every cut still finds a recycled buffer.
		free: make(chan cut, opts.Shards*(opts.Queue+1)),
	}
	if e.route == nil {
		key, n := opts.Key, uint64(opts.Shards)
		e.route = func(ev *event.Event) int { return int(mix64(key(ev)) % n) }
	}
	deliver := func(t Tagged) {
		if opts.OnMatch != nil {
			opts.OnMatch(t.M)
		}
	}
	if opts.OnTagged != nil {
		deliver = opts.OnTagged
	}
	e.col = NewCollector(opts.Shards, deliver, opts.OnProgress)
	var set *multi.Set
	if len(opts.Patterns) > 0 {
		var err error
		if set, err = multi.Analyze(opts.Patterns, opts.Schema); err != nil {
			return nil, err
		}
		e.schema = opts.Schema
		e.patIDs = make(map[uint32]bool, len(opts.Patterns))
		for _, sp := range opts.Patterns {
			e.patIDs[sp.ID] = true
		}
	}
	for s := 0; s < e.nshards; s++ {
		w := &worker{id: s, in: make(chan cut, opts.Queue), encode: opts.EncodeMatch, free: e.free}
		if set != nil {
			w := w
			mev, err := multi.NewEvaluator(set, multi.Options{
				OnMatch: func(id uint32, m *match.Match) {
					if w.encode != nil {
						// Owned-emit: the scratch match dies when this
						// callback returns; clone into a pooled copy.
						m = w.copyScratch(m)
					}
					w.scratch = append(w.scratch, scratchMatch{pat: id, m: m})
				},
				OwnedEmit:   opts.EncodeMatch != nil,
				StableInput: true, // cut buffers carry arena/caller-stable pointers
				Budgets:     opts.Tenants,
			})
			if err != nil {
				return nil, err
			}
			w.mev = mev
			e.workers = append(e.workers, w)
			continue
		}
		shardCfg := cfg
		// Cut buffers carry stable pointers (ingest arena or caller
		// storage), so evaluators retain them directly instead of
		// interning another copy — one materialization between the wire
		// and the match buffer.
		shardCfg.ExternalEvents = true
		if opts.EncodeMatch != nil {
			// Owned-emit wire path: the resolver's scratch match is
			// cloned into a pooled worker copy inside the callback (its
			// slices die when the callback returns; the arena events it
			// points at do not).
			shardCfg.OwnedEmit = true
			shardCfg.OnMatch = func(m *match.Match) {
				w.scratch = append(w.scratch, scratchMatch{m: w.copyScratch(m)})
			}
		} else {
			shardCfg.OnMatch = func(m *match.Match) {
				w.scratch = append(w.scratch, scratchMatch{m: m})
			}
		}
		if shardCfg.Shedding.Policy != nil && shardCfg.Shedding.Key == nil && opts.Key != nil {
			// Pattern-aware shedding protects per-entity state; default the
			// protected key to the partition key so each shard's shedder
			// recognizes its own live entities.
			shardCfg.Shedding.Key = opts.Key
		}
		eng, err := engine.New(pat, shardCfg)
		if err != nil {
			return nil, err
		}
		// The shedder (when configured) watches this worker's queue depth
		// and its queue-wait p99; probe and estimator both run on the
		// worker goroutine, so len/cap on the channel and the quantile
		// reservoir are safe to sample from there.
		in := w.in
		eng.SetQueueProbe(func() (int, int) { return len(in), cap(in) })
		eng.SetLatencyProbe(func() float64 { return w.qwait.Quantile(0.99) })
		w.eng = eng
		e.workers = append(e.workers, w)
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go w.run(e.col, &e.wg)
	}
	return e, nil
}

// Process routes one event to its shard. Events must arrive in
// non-decreasing timestamp order with unique, increasing Seq numbers
// (the same contract as engine.Engine.Process).
func (e *Engine) Process(ev *event.Event) {
	if e.finished {
		panic("shard: Process after Finish")
	}
	s := e.route(ev)
	ae := e.arena.Intern(ev)
	e.bufs[s] = append(e.bufs[s], ae)
	e.stamps[s] = append(e.stamps[s], time.Now().UnixNano())
	e.masks[s] = append(e.masks[s], 0)
	e.track(ev)
}

// ProcessStable is the batched zero-copy ingest entry: every pointer in
// evs must stay valid (and its event immutable) for at least the
// pattern's retention window — the cluster node passes arena slots filled
// by the wire decoder, and failover replay passes journal-backed storage.
// No per-event copy is made anywhere downstream. masks, when non-nil, is
// parallel to evs and carries precomputed unary predicate masks
// (pattern.ScanUnarySpans) that evaluators consult instead of re-running
// unary predicates per event. Cut boundaries fall exactly where
// equivalent per-event Process calls would put them, so the merged match
// stream is identical.
func (e *Engine) ProcessStable(evs []*event.Event, masks []uint32) {
	if e.finished {
		panic("shard: Process after Finish")
	}
	now := time.Now().UnixNano()
	for i, ev := range evs {
		s := e.route(ev)
		e.bufs[s] = append(e.bufs[s], ev)
		e.stamps[s] = append(e.stamps[s], now)
		var mk uint32
		if masks != nil {
			mk = masks[i]
		}
		e.masks[s] = append(e.masks[s], mk)
		e.track(ev)
	}
}

// track updates ingest progress after an event lands in its cut buffer
// and seals the cut at the batch boundary.
func (e *Engine) track(ev *event.Event) {
	e.lastSeq = ev.Seq
	if ev.TS > e.maxTS {
		e.maxTS = ev.TS
	}
	e.pending++
	if e.pending >= e.batch {
		e.cutAll(false)
	}
}

// Flush seals the current cut even when partial: every shard receives its
// accumulated events and a watermark of at least upTo (pass 0 to just use
// the newest local sequence number). An external coordinator uses it to
// drive uniform cuts across engines — the cluster node flushes at every
// network batch boundary, so a node whose partitions are momentarily idle
// still advances its completion watermark.
func (e *Engine) Flush(upTo uint64) {
	if e.finished {
		panic("shard: Flush after Finish")
	}
	if upTo > e.lastSeq {
		e.lastSeq = upTo
	}
	e.cutAll(false)
}

// cutAll seals the current cut: every shard receives its accumulated
// events (possibly none) and the watermark, so progress advances
// uniformly across shards. When block is false and the overflow mode is
// DropNewest, a full shard's handoff is discarded instead of awaited (the
// events are lost and counted; the watermark rides on the next successful
// handoff, whose upTo is necessarily newer).
func (e *Engine) cutAll(block bool) {
	for s, w := range e.workers {
		c := cut{events: e.bufs[s], stamps: e.stamps[s], masks: e.masks[s], upTo: e.lastSeq}
		if block || e.overflow == Backpressure {
			w.in <- c
		} else {
			select {
			case w.in <- c:
			default:
				e.queueDropped[s] += uint64(len(c.events))
			}
		}
		e.bufs[s] = nil
		e.stamps[s] = nil
		e.masks[s] = nil
		select {
		case b := <-e.free: // a worker finished with an earlier cut's buffers
			e.bufs[s], e.stamps[s], e.masks[s] = b.events, b.stamps, b.masks
		default:
		}
	}
	e.pending = 0
	// Unpin ingest-arena chunks the evaluators have certainly pruned
	// (recycling is off, so references — not this call — govern lifetime;
	// see the arena field comment). Without a window the retention horizon
	// is unknown, so fall back to bounding the arena's own pin list.
	if e.window > 0 {
		e.arena.Release(e.maxTS - 2*e.window)
	} else if e.arena.Live() > 64 {
		e.arena.Release(e.maxTS)
	}
}

// Finish flushes the final partial cut, drains every shard, and waits
// until the collector has delivered all matches. Idempotent.
func (e *Engine) Finish() {
	if e.finished {
		return
	}
	e.finished = true
	e.cutAll(true) // the final cut always delivers, even under DropNewest
	for _, w := range e.workers {
		close(w.in)
	}
	e.wg.Wait()
	e.col.Close()
}

// Shards reports the shard count.
func (e *Engine) Shards() int { return e.nshards }

// MultiPattern reports whether the engine runs in multi-pattern mode.
func (e *Engine) MultiPattern() bool { return e.patIDs != nil }

// PatternIDs lists the currently registered pattern ids (multi-pattern
// mode; nil otherwise). Sorted ascending. Call from the Process
// goroutine.
func (e *Engine) PatternIDs() []uint32 {
	if e.patIDs == nil {
		return nil
	}
	out := make([]uint32, 0, len(e.patIDs))
	for id := range e.patIDs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddPattern registers one additional pattern on the running engine
// (multi-pattern mode). The current cut is sealed first and the pattern
// starts evaluating at that cut boundary on every worker — a single
// deterministic stream position — without disturbing the other
// patterns' output (the newcomer joins the shared unary table but no
// prefix group). Call from the Process goroutine.
func (e *Engine) AddPattern(sp multi.Spec) error {
	if e.patIDs == nil {
		return fmt.Errorf("shard: AddPattern on a single-pattern engine")
	}
	if e.finished {
		return fmt.Errorf("shard: AddPattern after Finish")
	}
	if e.patIDs[sp.ID] {
		return fmt.Errorf("shard: duplicate pattern id %d", sp.ID)
	}
	// Prevalidate on the coordinator so the per-worker Add cannot fail
	// asynchronously: a one-spec analysis plus evaluator build runs the
	// exact checks the workers would.
	set, err := multi.Analyze([]multi.Spec{sp}, e.schema)
	if err != nil {
		return err
	}
	if _, err := multi.NewEvaluator(set, multi.Options{OnMatch: func(uint32, *match.Match) {}}); err != nil {
		return err
	}
	e.patIDs[sp.ID] = true
	e.dispatchOp(patternOp{add: &sp})
	return nil
}

// RemovePattern retires a pattern on the running engine (multi-pattern
// mode): its partial matches are discarded at the next cut boundary and
// no further matches with its id are emitted. Call from the Process
// goroutine.
func (e *Engine) RemovePattern(id uint32) error {
	if e.patIDs == nil {
		return fmt.Errorf("shard: RemovePattern on a single-pattern engine")
	}
	if e.finished {
		return fmt.Errorf("shard: RemovePattern after Finish")
	}
	if !e.patIDs[id] {
		return fmt.Errorf("shard: unknown pattern id %d", id)
	}
	delete(e.patIDs, id)
	e.dispatchOp(patternOp{id: id})
	return nil
}

// dispatchOp seals the current cut, then delivers the mutation to every
// worker in its own cut — blocking, so a pattern-set change is never
// lost to DropNewest and lands at the same watermark everywhere.
func (e *Engine) dispatchOp(op patternOp) {
	e.cutAll(true)
	for _, w := range e.workers {
		w.in <- cut{upTo: e.lastSeq, ops: []patternOp{op}}
	}
}

// QueueCap reports the effective per-shard ingestion bound in events
// (after defaulting and snapshot-driven derivation, rounded up to whole
// batches).
func (e *Engine) QueueCap() int { return e.queueCap }

// Metrics merges the per-shard engine metrics into one stream-wide view,
// including the events dropped on queue overflow and the latency
// percentile estimators sampled by the workers. Call after Finish (shard
// engines are owned by their workers until then).
func (e *Engine) Metrics() engine.Metrics {
	var m engine.Metrics
	for _, sm := range e.ShardMetrics() {
		m.Merge(sm)
	}
	return m
}

// ShardMetrics is the per-shard breakdown behind Metrics. Call after
// Finish.
func (e *Engine) ShardMetrics() []engine.Metrics {
	out := make([]engine.Metrics, len(e.workers))
	for i, w := range e.workers {
		if w.mev != nil {
			for _, pm := range w.mev.Metrics() {
				out[i].Merge(pm.M)
			}
		} else {
			out[i] = w.eng.Metrics()
		}
		out[i].QueueDropped += e.queueDropped[i]
		out[i].QueueWait = w.qwait
		out[i].DetectTime = w.detect
	}
	return out
}

// PatternMetrics merges each pattern's engine counters across the
// shards (multi-pattern mode; nil otherwise), in ascending pattern-id
// order. Call after Finish.
func (e *Engine) PatternMetrics() []multi.PatternMetrics {
	agg := make(map[uint32]*multi.PatternMetrics)
	var ids []uint32
	for _, w := range e.workers {
		if w.mev == nil {
			continue
		}
		for _, pm := range w.mev.Metrics() {
			if a, ok := agg[pm.ID]; ok {
				a.M.Merge(pm.M)
			} else {
				cp := pm
				agg[pm.ID] = &cp
				ids = append(ids, pm.ID)
			}
		}
	}
	if agg == nil || len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]multi.PatternMetrics, len(ids))
	for i, id := range ids {
		out[i] = *agg[id]
	}
	return out
}

// TenantStats sums per-tenant admission accounting across the shards
// (multi-pattern mode; nil otherwise), sorted by tenant id. Call after
// Finish.
func (e *Engine) TenantStats() []shed.TenantStat {
	agg := make(map[uint32]*shed.TenantStat)
	var ids []uint32
	for _, w := range e.workers {
		if w.mev == nil {
			continue
		}
		for _, ts := range w.mev.TenantStats() {
			if a, ok := agg[ts.Tenant]; ok {
				a.Admitted += ts.Admitted
				a.Shed += ts.Shed
			} else {
				cp := ts
				agg[ts.Tenant] = &cp
				ids = append(ids, ts.Tenant)
			}
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]shed.TenantStat, len(ids))
	for i, id := range ids {
		out[i] = *agg[id]
	}
	return out
}

// ShardLoad is one shard's live load sample (see Engine.ShardLoads).
type ShardLoad struct {
	// Events counts the events the shard's engine has processed.
	Events uint64
	// WaitP99 is the shard's queue-wait p99 estimate.
	WaitP99 time.Duration
}

// ShardLoads snapshots every shard's live load — events processed and
// queue-wait p99 — without stopping the engine: the samples are
// published by the workers on a stride (every loadSampleCuts cuts), so
// they lag the stream by a few cuts. Safe from any goroutine, including
// mid-run; the cluster node layer ships these to the ingress placement
// controller as wire ShardStats.
func (e *Engine) ShardLoads() []ShardLoad {
	out := make([]ShardLoad, len(e.workers))
	for i, w := range e.workers {
		out[i] = ShardLoad{
			Events:  w.liveEvents.Load(),
			WaitP99: time.Duration(w.liveWait.Load()),
		}
	}
	return out
}

// Plans reports each shard's current plans (one per sub-pattern). Call
// after Finish. Shards may legitimately hold different plans: each
// adapted to its own partition's statistics.
func (e *Engine) Plans() [][]string {
	out := make([][]string, len(e.workers))
	for i, w := range e.workers {
		if w.eng == nil {
			continue // multi-pattern workers hold many plans; see PatternMetrics
		}
		for _, p := range w.eng.CurrentPlans() {
			out[i] = append(out[i], fmt.Sprint(p))
		}
	}
	return out
}
