package shard

import "acep/internal/match"

// Tagged is a match annotated for ordered merging: Seq is the global
// sequence number of the event whose processing emitted the match
// (math.MaxUint64 for end-of-stream flushes), Src identifies the
// producing shard — the worker index inside one Engine, or the global
// shard index at the cluster ingress — and Idx is a per-shard emission
// counter, assigned by the collector in posting order, that breaks ties
// into a deterministic total order.
type Tagged struct {
	M   *match.Match
	Seq uint64
	Src int
	Idx uint64
	// Pattern is the emitting pattern's id in multi-pattern mode (0 in
	// single-pattern engines). It rides along for the wire and is not
	// part of the merge key — within one (Seq, Src) the posting worker
	// already orders matches canonically by pattern id.
	Pattern uint32
	// Enc, on the owned-emit wire path (Options.EncodeMatch), holds the
	// match pre-encoded as a wire KindMatch body; M is nil then. The
	// slice aliases a worker outbox slab that is never overwritten, so it
	// stays valid for as long as the tag (or anything downstream) holds
	// it.
	Enc []byte
}

// ctrlOp selects a collector control message (routing mutations run on
// the collector goroutine, serialized with the data stream).
type ctrlOp uint8

const (
	ctrlNone ctrlOp = iota
	ctrlMigrate
	ctrlComplete
	ctrlAbandon
)

// post is one source→collector message: the matches of one processed
// batch and the posting node's new progress watermark, or a routing
// control (migrate / complete / abandon).
type post struct {
	node     int
	progress uint64
	matches  []Tagged

	ctrl  ctrlOp
	shard int
	owner int
	reply chan uint64
}

// Collector merges per-shard tagged match streams into one ordered
// output. It buffers matches in a min-heap keyed (Seq, Src, Idx) and
// releases a match only when every shard's progress watermark has passed
// its tag — at that point no shard can still produce an earlier match,
// so the released order is the sorted tag order, independent of
// goroutine scheduling.
//
// Shards are the merge sources, but posts arrive per *node*: an owner
// table maps each shard to the node currently feeding it, a node's
// watermark advances exactly the marks of the shards it owns, and a
// match is accepted only if its shard is owned by the posting node —
// so a shard's stream can move between nodes mid-run (Migrate) with
// stale in-flight posts from the previous owner dropped race-free.
// In the single-process engine the mapping is the identity (worker i
// posts as node i and owns shard i) and none of this machinery moves.
//
// Sources must post a match before or together with the first watermark
// that covers its tag, and watermarks must be non-decreasing per node
// (the marks only ratchet forward); the final post of every node must
// carry watermark math.MaxUint64.
type Collector struct {
	ch       chan post
	done     chan struct{}
	deliver  func(Tagged)
	progress func(uint64)

	owner   []int // shard → posting node (-1: abandoned)
	frozen  []bool
	marks   []uint64
	nextIdx []uint64
	heap    []Tagged
	min     uint64
}

// NewCollector starts a collector goroutine over shards sources with the
// identity owner mapping (shard i is fed by node/worker i) — the
// single-process engine's shape. deliver receives every match, in merged
// tag order, on the collector goroutine. progress (optional) is called,
// after the matches it covers have been delivered, every time the
// minimum watermark over all shards advances — the cluster node layer
// forwards it downstream so the ingress knows the node's output up to
// that point is complete.
func NewCollector(shards int, deliver func(Tagged), progress func(uint64)) *Collector {
	owner := make([]int, shards)
	for g := range owner {
		owner[g] = g
	}
	return NewCollectorOwned(owner, deliver, progress)
}

// NewCollectorOwned starts a collector whose shard → node owner table is
// given explicitly (the cluster ingress shape: many shards per node).
// The slice is copied.
func NewCollectorOwned(owner []int, deliver func(Tagged), progress func(uint64)) *Collector {
	n := len(owner)
	c := &Collector{
		ch:       make(chan post, n*2),
		done:     make(chan struct{}),
		deliver:  deliver,
		progress: progress,
		owner:    append([]int(nil), owner...),
		frozen:   make([]bool, n),
		marks:    make([]uint64, n),
		nextIdx:  make([]uint64, n),
	}
	go c.run()
	return c
}

// Post hands the collector one node's new watermark plus the matches
// emitted since its last post (each tagged with its global shard in
// Src). Safe to call from any goroutine; blocks while the collector's
// inbox is full.
func (c *Collector) Post(node int, watermark uint64, matches []Tagged) {
	c.ch <- post{node: node, progress: watermark, matches: matches}
}

// Close ends the input and waits until every buffered match has been
// delivered. Call after all nodes have posted their final watermark.
func (c *Collector) Close() {
	close(c.ch)
	<-c.done
}

// Migrate freezes shard and hands it to newOwner: the shard's
// undelivered buffered matches are purged (the destination regenerates
// them by replay), its watermark rewinds to the release frontier, and
// until Complete unfreezes it no node's watermark advances it — so
// delivery (not ingest) pauses at the frontier while the handoff is in
// flight. It returns the release boundary — the watermark at or below
// which every match has already been delivered — which the destination
// must use to suppress regenerated duplicates. Stale posts from the
// previous owner are dropped by the owner check; the destination's
// posts (match-bearing, accepted while frozen) buffer until Complete.
func (c *Collector) Migrate(shard, newOwner int) uint64 {
	reply := make(chan uint64, 1)
	c.ch <- post{ctrl: ctrlMigrate, shard: shard, owner: newOwner, reply: reply}
	return <-reply
}

// Complete unfreezes shard after node — which must be its current owner
// — acknowledged the migration's replay horizon at completion watermark
// upTo: the shard's mark jumps to upTo and delivery resumes.
func (c *Collector) Complete(node, shard int, upTo uint64) {
	c.ch <- post{ctrl: ctrlComplete, node: node, shard: shard, progress: upTo}
}

// Abandon gives up every shard node owns with no successor: their
// buffered matches stay (they were legitimately produced), their marks
// jump to the terminal watermark so they never gate delivery again.
func (c *Collector) Abandon(node int) {
	c.ch <- post{ctrl: ctrlAbandon, node: node}
}

func (c *Collector) run() {
	defer close(c.done)
	for p := range c.ch {
		switch p.ctrl {
		case ctrlMigrate:
			c.migrate(p)
			continue
		case ctrlComplete:
			g := p.shard
			if g >= 0 && g < len(c.owner) && c.owner[g] == p.node && c.frozen[g] {
				c.frozen[g] = false
				if p.progress > c.marks[g] {
					c.marks[g] = p.progress
				}
				c.release()
			}
			continue
		case ctrlAbandon:
			for g, o := range c.owner {
				if o == p.node {
					c.owner[g] = -1
					c.frozen[g] = false
					c.marks[g] = ^uint64(0)
				}
			}
			c.release()
			continue
		}
		for g, o := range c.owner {
			if o == p.node && !c.frozen[g] && c.marks[g] < p.progress {
				c.marks[g] = p.progress
			}
		}
		for _, t := range p.matches {
			if t.Src < 0 || t.Src >= len(c.owner) || c.owner[t.Src] != p.node {
				continue // stale: an in-flight post from a previous owner
			}
			t.Idx = c.nextIdx[t.Src]
			c.nextIdx[t.Src]++
			c.push(t)
		}
		c.release()
	}
	// Channel closed: every node has posted its final watermark; drain
	// the remainder in order (non-empty only if a source misbehaved).
	for len(c.heap) > 0 {
		c.emit(c.pop())
	}
}

// migrate is the collector-goroutine half of Migrate.
func (c *Collector) migrate(p post) {
	g := p.shard
	if g < 0 || g >= len(c.owner) {
		p.reply <- c.min
		return
	}
	kept := c.heap[:0]
	for _, t := range c.heap {
		if t.Src != g {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(c.heap); i++ {
		c.heap[i] = Tagged{}
	}
	c.heap = kept
	for i := len(c.heap)/2 - 1; i >= 0; i-- {
		c.siftDown(i)
	}
	c.owner[g] = p.owner
	c.frozen[g] = true
	c.marks[g] = c.min
	p.reply <- c.min
}

// release pops every buffered match the current frontier covers and
// reports frontier advances.
func (c *Collector) release() {
	if len(c.marks) == 0 {
		return
	}
	min := c.marks[0]
	for _, pr := range c.marks[1:] {
		if pr < min {
			min = pr
		}
	}
	for len(c.heap) > 0 && c.heap[0].Seq <= min {
		c.emit(c.pop())
	}
	if min > c.min {
		c.min = min
		if c.progress != nil {
			c.progress(min)
		}
	}
}

func (c *Collector) emit(t Tagged) {
	if c.deliver != nil {
		c.deliver(t)
	}
}

func tagLess(a, b Tagged) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Idx < b.Idx
}

func (c *Collector) push(t Tagged) {
	c.heap = append(c.heap, t)
	i := len(c.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !tagLess(c.heap[i], c.heap[p]) {
			break
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

func (c *Collector) pop() Tagged {
	h := c.heap
	top := h[0]
	h[0] = h[len(h)-1]
	h[len(h)-1] = Tagged{}
	c.heap = h[:len(h)-1]
	c.siftDown(0)
	return top
}

func (c *Collector) siftDown(i int) {
	h := c.heap
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && tagLess(h[l], h[m]) {
			m = l
		}
		if r < len(h) && tagLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
