package shard

import "acep/internal/match"

// Tagged is a match annotated for ordered merging: Seq is the global
// sequence number of the event whose processing emitted the match
// (math.MaxUint64 for end-of-stream flushes), Src identifies the
// producing source — the shard index inside one Engine, or the node index
// at the cluster ingress — and Idx is a per-source emission counter that
// breaks ties into a deterministic total order.
type Tagged struct {
	M   *match.Match
	Seq uint64
	Src int
	Idx uint64
	// Enc, on the owned-emit wire path (Options.EncodeMatch), holds the
	// match pre-encoded as a wire KindMatch body; M is nil then. The
	// slice aliases a worker outbox slab that is never overwritten, so it
	// stays valid for as long as the tag (or anything downstream) holds
	// it.
	Enc []byte
}

// post is one source→collector message: the matches of one processed
// batch and the source's new progress watermark. A reassign post instead
// re-registers the source slot for a successor (failover), carrying a
// reply channel for the release boundary.
type post struct {
	src      int
	progress uint64
	matches  []Tagged
	reassign bool
	reply    chan uint64
}

// Collector merges per-source tagged match streams into one ordered
// output. It buffers matches in a min-heap keyed (Seq, Src, Idx) and
// releases a match only when every source's progress watermark has passed
// its tag — at that point no source can still produce an earlier match,
// so the released order is the sorted tag order, independent of goroutine
// scheduling. Sources must post a match before or together with the first
// watermark that covers its tag, and watermarks must be non-decreasing
// per source; the final post of every source must carry watermark
// math.MaxUint64.
//
// One Engine feeds a Collector from its shard workers; the cluster
// ingress reuses the same type to merge whole node streams (each node's
// already-ordered output is one source).
type Collector struct {
	ch       chan post
	done     chan struct{}
	deliver  func(Tagged)
	progress func(uint64)

	marks []uint64
	heap  []Tagged
	min   uint64
}

// NewCollector starts a collector goroutine over the given number of
// sources. deliver receives every match, in merged tag order, on the
// collector goroutine. progress (optional) is called, after the matches
// it covers have been delivered, every time the minimum watermark over
// all sources advances — the cluster node layer forwards it downstream so
// the ingress knows the node's output up to that point is complete.
func NewCollector(srcs int, deliver func(Tagged), progress func(uint64)) *Collector {
	c := &Collector{
		ch:       make(chan post, srcs*2),
		done:     make(chan struct{}),
		deliver:  deliver,
		progress: progress,
		marks:    make([]uint64, srcs),
	}
	go c.run()
	return c
}

// Post hands the collector one source's new watermark plus the matches
// emitted since its last post. Safe to call from any goroutine; blocks
// while the collector's inbox is full.
func (c *Collector) Post(src int, watermark uint64, matches []Tagged) {
	c.ch <- post{src: src, progress: watermark, matches: matches}
}

// Close ends the input and waits until every buffered match has been
// delivered. Call after all sources have posted their final watermark.
func (c *Collector) Close() {
	close(c.ch)
	<-c.done
}

// Reassign re-registers source src for a successor after a failure: the
// source's undelivered buffered matches are purged (the successor will
// regenerate them by replay) and its watermark rewinds to zero so the
// successor may start posting from an arbitrarily old replay horizon.
// It returns the release boundary — the watermark below which every
// match has already been delivered — which the successor must use to
// suppress regenerated duplicates. The caller must guarantee the old
// source has stopped posting before Reassign and that the successor
// posts only after it returns.
func (c *Collector) Reassign(src int) uint64 {
	reply := make(chan uint64, 1)
	c.ch <- post{src: src, reassign: true, reply: reply}
	return <-reply
}

func (c *Collector) run() {
	defer close(c.done)
	for p := range c.ch {
		if p.reassign {
			kept := c.heap[:0]
			for _, t := range c.heap {
				if t.Src != p.src {
					kept = append(kept, t)
				}
			}
			for i := len(kept); i < len(c.heap); i++ {
				c.heap[i] = Tagged{}
			}
			c.heap = kept
			for i := len(c.heap)/2 - 1; i >= 0; i-- {
				c.siftDown(i)
			}
			c.marks[p.src] = 0
			p.reply <- c.min
			continue
		}
		c.marks[p.src] = p.progress
		for _, t := range p.matches {
			c.push(t)
		}
		min := c.marks[0]
		for _, pr := range c.marks[1:] {
			if pr < min {
				min = pr
			}
		}
		for len(c.heap) > 0 && c.heap[0].Seq <= min {
			c.emit(c.pop())
		}
		if min > c.min {
			c.min = min
			if c.progress != nil {
				c.progress(min)
			}
		}
	}
	// Channel closed: every source has posted its final watermark; drain
	// the remainder in order (non-empty only if a source misbehaved).
	for len(c.heap) > 0 {
		c.emit(c.pop())
	}
}

func (c *Collector) emit(t Tagged) {
	if c.deliver != nil {
		c.deliver(t)
	}
}

func tagLess(a, b Tagged) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Idx < b.Idx
}

func (c *Collector) push(t Tagged) {
	c.heap = append(c.heap, t)
	i := len(c.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !tagLess(c.heap[i], c.heap[p]) {
			break
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

func (c *Collector) pop() Tagged {
	h := c.heap
	top := h[0]
	h[0] = h[len(h)-1]
	h[len(h)-1] = Tagged{}
	c.heap = h[:len(h)-1]
	c.siftDown(0)
	return top
}

func (c *Collector) siftDown(i int) {
	h := c.heap
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && tagLess(h[l], h[m]) {
			m = l
		}
		if r < len(h) && tagLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
