package stream

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"acep/internal/event"
	"acep/internal/gen"
)

func TestCSVRoundTrip(t *testing.T) {
	for _, mk := range []func() *gen.Workload{
		func() *gen.Workload { return gen.Traffic(gen.TrafficConfig{Types: 4, Events: 500, Seed: 3}) },
		func() *gen.Workload { return gen.Stocks(gen.StocksConfig{Types: 3, Events: 500, Seed: 3}) },
	} {
		wk := mk()
		var buf bytes.Buffer
		if err := WriteCSV(&buf, wk); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("ReadCSV: %v", err)
		}
		if got.Domain != wk.Domain {
			t.Fatalf("domain %q != %q", got.Domain, wk.Domain)
		}
		if got.Schema.NumTypes() != wk.Schema.NumTypes() {
			t.Fatal("type count mismatch")
		}
		if len(got.Events) != len(wk.Events) {
			t.Fatalf("event count %d != %d", len(got.Events), len(wk.Events))
		}
		for i := range wk.Events {
			a, b := &wk.Events[i], &got.Events[i]
			if a.Type != b.Type || a.TS != b.TS || a.Seq != b.Seq {
				t.Fatalf("event %d header mismatch: %v vs %v", i, a, b)
			}
			for j := range a.Attrs {
				if a.Attrs[j] != b.Attrs[j] {
					t.Fatalf("event %d attr %d: %v vs %v", i, j, a.Attrs[j], b.Attrs[j])
				}
			}
		}
		// Patterns must build over the reconstructed schema.
		if _, err := got.Pattern(gen.Sequence, 3, 100); err != nil {
			t.Fatalf("pattern over reloaded workload: %v", err)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"no header":  "0,1,1,2,3\n",
		"bad types":  "#acep domain=traffic types=x attrs=a\n",
		"bad row":    "#acep domain=traffic types=2 attrs=speed,count\n0,1\n",
		"bad type":   "#acep domain=traffic types=2 attrs=speed,count\n9,1,1,1,1\n",
		"bad ts":     "#acep domain=traffic types=2 attrs=speed,count\n0,x,1,1,1\n",
		"bad seq":    "#acep domain=traffic types=2 attrs=speed,count\n0,1,x,1,1\n",
		"bad attr":   "#acep domain=traffic types=2 attrs=speed,count\n0,1,1,x,1\n",
		"attr count": "#acep domain=traffic types=2 attrs=speed,count\n0,1,1,1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "#acep domain=traffic types=1 attrs=speed,count\n\n# comment\n0,5,1,1.5,2\n"
	wk, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(wk.Events) != 1 || wk.Events[0].TS != 5 {
		t.Fatalf("events = %v", wk.Events)
	}
}

func TestSortByTime(t *testing.T) {
	evs := []event.Event{
		{Type: 0, TS: 30, Seq: 1},
		{Type: 1, TS: 10, Seq: 2},
		{Type: 2, TS: 10, Seq: 3},
		{Type: 0, TS: 20, Seq: 4},
	}
	SortByTime(evs)
	wantTS := []event.Time{10, 10, 20, 30}
	wantType := []int{1, 2, 0, 0} // stable for equal timestamps
	for i := range evs {
		if evs[i].TS != wantTS[i] || evs[i].Type != wantType[i] {
			t.Fatalf("order wrong at %d: %v", i, evs)
		}
		if evs[i].Seq != uint64(i+1) {
			t.Fatalf("seq not renumbered at %d", i)
		}
	}
	if Validate(evs) != -1 {
		t.Fatal("sorted stream invalid")
	}
}

func TestMerge(t *testing.T) {
	a := []event.Event{{TS: 1, Seq: 1}, {TS: 5, Seq: 2}}
	b := []event.Event{{TS: 2, Seq: 1}, {TS: 3, Seq: 2}, {TS: 9, Seq: 3}}
	out := Merge(a, b)
	if len(out) != 5 {
		t.Fatalf("merged %d", len(out))
	}
	var ts []event.Time
	for _, e := range out {
		ts = append(ts, e.TS)
	}
	if !reflect.DeepEqual(ts, []event.Time{1, 2, 3, 5, 9}) {
		t.Fatalf("ts order %v", ts)
	}
	if Validate(out) != -1 {
		t.Fatal("merged stream invalid")
	}
}

func TestValidate(t *testing.T) {
	bad := []event.Event{{TS: 5, Seq: 1}, {TS: 4, Seq: 2}}
	if Validate(bad) != 1 {
		t.Fatal("decreasing ts not flagged")
	}
	badSeq := []event.Event{{TS: 1, Seq: 2}, {TS: 2, Seq: 2}}
	if Validate(badSeq) != 1 {
		t.Fatal("non-increasing seq not flagged")
	}
	if Validate(nil) != -1 {
		t.Fatal("empty stream flagged")
	}
}
