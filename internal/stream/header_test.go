package stream

import (
	"bytes"
	"strings"
	"testing"

	"acep/internal/event"
	"acep/internal/gen"
)

// TestZeroAttrRoundTrip is the regression test for the phantom-attribute
// bug: a workload whose types carry no attributes used to come back from
// CSV with a single attribute named "" (splitting the empty attrs= value
// yields [""]).
func TestZeroAttrRoundTrip(t *testing.T) {
	s := event.NewSchema()
	s.MustAddType("A")
	s.MustAddType("B")
	wk := &gen.Workload{Schema: s, Domain: "traffic"}
	for i := 0; i < 5; i++ {
		ev := s.MustNew(i%2, event.Time(10*i))
		ev.Seq = uint64(i + 1)
		wk.Events = append(wk.Events, ev)
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, wk); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(buf.String(), "attrs=\n") && !strings.Contains(buf.String(), "attrs= ") {
		t.Fatalf("header does not carry an empty attrs= field: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if n := got.Schema.NumAttrs(0); n != 0 {
		t.Fatalf("round trip fabricated %d attributes: %v", n, got.Schema.Attrs(0))
	}
	if len(got.Events) != len(wk.Events) {
		t.Fatalf("%d events, want %d", len(got.Events), len(wk.Events))
	}
	for i, ev := range got.Events {
		if len(ev.Attrs) != 0 || ev.Type != wk.Events[i].Type || ev.TS != wk.Events[i].TS {
			t.Fatalf("event %d = %v, want %v", i, ev, wk.Events[i])
		}
	}
}

// TestMalformedHeaders is the regression test for silent header
// misparses: malformed k=v tokens and a missing attrs field used to be
// ignored (the latter registering the phantom "" attribute); they must be
// line-numbered errors now.
func TestMalformedHeaders(t *testing.T) {
	cases := map[string]struct {
		in      string
		wantErr string
	}{
		"missing attrs field": {
			"#acep domain=traffic types=2\n0,1,1\n",
			"missing the attrs= field",
		},
		"missing types field": {
			"#acep domain=traffic attrs=a,b\n",
			"missing the types= field",
		},
		"bare token": {
			"#acep domain=traffic types attrs=a\n",
			"malformed header token \"types\"",
		},
		"empty key": {
			"#acep domain=traffic types=2 =v attrs=a\n",
			"malformed header token \"=v\"",
		},
		"duplicate field": {
			"#acep types=2 types=3 attrs=a\n",
			"duplicate header field \"types\"",
		},
		"empty attr name": {
			"#acep types=2 attrs=a,,b\n",
			"empty attribute name",
		},
		"negative keys": {
			"#acep types=2 attrs=a keys=-1\n",
			"bad keys field",
		},
	}
	for name, c := range cases {
		_, err := ReadCSV(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.wantErr)
		}
		if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error %q is not line-numbered", name, err)
		}
	}
}

// TestHeaderValidStillAccepted guards against over-tightening: the exact
// headers WriteCSV has always produced (with and without keys=) must
// still parse.
func TestHeaderValidStillAccepted(t *testing.T) {
	for _, in := range []string{
		"#acep domain=traffic types=2 attrs=speed,count\n0,1,1,1.5,2\n",
		"#acep domain=stocks types=1 attrs=price,diff,key keys=8\n0,1,1,1,2,3\n",
		"#acep domain=traffic types=1 attrs=\n0,1,1\n",
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err != nil {
			t.Errorf("rejected valid header: %v\ninput: %q", err, in)
		}
	}
}
