package stream

import (
	"testing"

	"acep/internal/event"
)

// TestMergeDegenerateInputs: zero streams and all-empty streams must
// yield an empty (non-panicking) result, and empty streams mixed with a
// real one must not disturb it.
func TestMergeDegenerateInputs(t *testing.T) {
	if out := Merge(); len(out) != 0 {
		t.Fatalf("Merge() = %v", out)
	}
	if out := Merge(nil, nil, nil); len(out) != 0 {
		t.Fatalf("Merge(nil x3) = %v", out)
	}
	if out := Merge([]event.Event{}, []event.Event{}); len(out) != 0 {
		t.Fatalf("Merge(empty x2) = %v", out)
	}
	s := []event.Event{
		{Type: 0, TS: 1, Seq: 9},
		{Type: 1, TS: 5, Seq: 10},
	}
	out := Merge(nil, s, []event.Event{})
	if len(out) != 2 || out[0].TS != 1 || out[1].TS != 5 {
		t.Fatalf("Merge(nil, s, empty) = %v", out)
	}
	if out[0].Seq != 1 || out[1].Seq != 2 {
		t.Fatalf("Seq not renumbered: %v", out)
	}
	if i := Validate(out); i != -1 {
		t.Fatalf("merged stream invalid at %d", i)
	}
}

// TestSortByTimeDegenerateInputs: nil and empty slices are fine.
func TestSortByTimeDegenerateInputs(t *testing.T) {
	SortByTime(nil)
	SortByTime([]event.Event{})
	one := []event.Event{{Type: 0, TS: 3, Seq: 77}}
	SortByTime(one)
	if one[0].Seq != 1 {
		t.Fatalf("single-event stream not renumbered: %v", one)
	}
}
