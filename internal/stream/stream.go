// Package stream provides event-stream utilities: CSV persistence of
// generated workloads (so experiments can be archived and replayed),
// timestamp-order enforcement, and k-way merging of sorted streams.
//
// The CSV layout is one event per row — type,ts,seq,attr0,attr1,... —
// preceded by a header comment that captures the schema:
//
//	#acep domain=traffic types=10 attrs=speed,count
package stream

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"acep/internal/event"
	"acep/internal/gen"
)

// WriteCSV persists a workload. The attribute names are taken from the
// schema (all generated workloads register identical attributes for every
// type); a keyed workload additionally records keys=N so replay restores
// its partitionability.
func WriteCSV(w io.Writer, wk *gen.Workload) error {
	bw := bufio.NewWriter(w)
	// A schema without attributes writes an empty attrs= value, which
	// ReadCSV round-trips to zero registered attributes.
	attrs := strings.Join(wk.Schema.Attrs(0), ",")
	fmt.Fprintf(bw, "#acep domain=%s types=%d attrs=%s",
		wk.Domain, wk.Schema.NumTypes(), attrs)
	if wk.Keys > 0 {
		fmt.Fprintf(bw, " keys=%d", wk.Keys)
	}
	bw.WriteByte('\n')
	for i := range wk.Events {
		ev := &wk.Events[i]
		fmt.Fprintf(bw, "%d,%d,%d", ev.Type, ev.TS, ev.Seq)
		for _, a := range ev.Attrs {
			fmt.Fprintf(bw, ",%g", a)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadCSV loads a workload written by WriteCSV, rebuilding the schema
// from the header.
func ReadCSV(r io.Reader) (*gen.Workload, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("stream: empty input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "#acep ") {
		return nil, fmt.Errorf("stream: missing #acep header")
	}
	fields := map[string]string{}
	for _, kv := range strings.Fields(header)[1:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || parts[0] == "" {
			return nil, fmt.Errorf("stream: line 1: malformed header token %q (want key=value)", kv)
		}
		if _, dup := fields[parts[0]]; dup {
			return nil, fmt.Errorf("stream: line 1: duplicate header field %q", parts[0])
		}
		fields[parts[0]] = parts[1]
	}
	for _, req := range []string{"types", "attrs"} {
		if _, ok := fields[req]; !ok {
			return nil, fmt.Errorf("stream: line 1: header is missing the %s= field", req)
		}
	}
	ntypes, err := strconv.Atoi(fields["types"])
	if err != nil || ntypes <= 0 {
		return nil, fmt.Errorf("stream: line 1: bad types field %q", fields["types"])
	}
	// An empty attrs= value means zero attributes per type; splitting it
	// would fabricate a single attribute named "".
	var attrs []string
	if fields["attrs"] != "" {
		attrs = strings.Split(fields["attrs"], ",")
		for _, a := range attrs {
			if a == "" {
				return nil, fmt.Errorf("stream: line 1: empty attribute name in attrs=%q", fields["attrs"])
			}
		}
	}
	domain := fields["domain"]
	schema := event.NewSchema()
	prefix := "T"
	if domain == "stocks" {
		prefix = "S"
	}
	for i := 0; i < ntypes; i++ {
		if _, err := schema.AddType(fmt.Sprintf("%s%d", prefix, i), attrs...); err != nil {
			return nil, err
		}
	}
	wk := &gen.Workload{Schema: schema, Domain: domain}
	if ks := fields["keys"]; ks != "" {
		keys, err := strconv.Atoi(ks)
		if err != nil || keys < 0 {
			return nil, fmt.Errorf("stream: line 1: bad keys field %q", ks)
		}
		wk.Keys = keys
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 3 {
			return nil, fmt.Errorf("stream: line %d: want type,ts,seq[,attrs...]", line)
		}
		typ, err := strconv.Atoi(parts[0])
		if err != nil || typ < 0 || typ >= ntypes {
			return nil, fmt.Errorf("stream: line %d: bad type %q", line, parts[0])
		}
		ts, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad ts %q", line, parts[1])
		}
		seq, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad seq %q", line, parts[2])
		}
		vals := make([]float64, 0, len(parts)-3)
		for _, p := range parts[3:] {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: line %d: bad attr %q", line, p)
			}
			vals = append(vals, v)
		}
		ev, err := schema.New(typ, event.Time(ts), vals...)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %v", line, err)
		}
		ev.Seq = seq
		wk.Events = append(wk.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return wk, nil
}

// SortByTime orders events by timestamp (stable, preserving Seq order for
// equal timestamps) and renumbers Seq 1..n. Engines require timestamp
// order; use this on any externally sourced stream.
func SortByTime(evs []event.Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].Seq < evs[j].Seq
	})
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
	}
}

// Merge combines several timestamp-ordered streams into one, renumbering
// Seq globally. It runs a heap-based k-way merge — O(n log k) for n total
// events over k streams — and breaks timestamp ties by stream index, so
// the output is deterministic and each input stream's internal order is
// preserved.
func Merge(streams ...[]event.Event) []event.Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]event.Event, 0, total)

	// h is a binary min-heap over the streams' current heads, ordered by
	// head timestamp with ties broken by stream index. Caching the head
	// timestamp in the node keeps each comparison free of double slice
	// indexing.
	type head struct {
		ts event.Time
		si int
	}
	idx := make([]int, len(streams))
	h := make([]head, 0, len(streams))
	less := func(a, b head) bool {
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return a.si < b.si
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for si, s := range streams {
		if len(s) > 0 {
			h = append(h, head{ts: s[0].TS, si: si})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		si := h[0].si
		out = append(out, streams[si][idx[si]])
		idx[si]++
		if idx[si] == len(streams[si]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		} else {
			h[0].ts = streams[si][idx[si]].TS
		}
		siftDown(0)
	}
	for i := range out {
		out[i].Seq = uint64(i + 1)
	}
	return out
}

// mergeLinear is the pre-heap O(n·k) implementation, kept as the baseline
// for BenchmarkMerge.
func mergeLinear(streams ...[]event.Event) []event.Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]event.Event, 0, total)
	idx := make([]int, len(streams))
	for len(out) < total {
		best := -1
		for si, s := range streams {
			if idx[si] >= len(s) {
				continue
			}
			if best < 0 || s[idx[si]].TS < streams[best][idx[best]].TS {
				best = si
			}
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
	for i := range out {
		out[i].Seq = uint64(i + 1)
	}
	return out
}

// Validate checks that a stream is timestamp-ordered with strictly
// increasing sequence numbers, returning the index of the first offending
// event (-1 when valid).
func Validate(evs []event.Event) int {
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS || evs[i].Seq <= evs[i-1].Seq {
			return i
		}
	}
	return -1
}
