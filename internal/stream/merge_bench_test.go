package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"acep/internal/event"
)

// benchStreams builds k timestamp-ordered streams of n events each.
func benchStreams(k, n int, seed int64) [][]event.Event {
	r := rand.New(rand.NewSource(seed))
	streams := make([][]event.Event, k)
	for s := range streams {
		evs := make([]event.Event, n)
		ts := event.Time(0)
		for i := range evs {
			ts += event.Time(1 + r.Intn(5))
			evs[i] = event.Event{Type: s, TS: ts, Seq: uint64(i + 1)}
		}
		streams[s] = evs
	}
	return streams
}

// TestMergeMatchesLinear pins the heap merge to the linear reference on
// randomized inputs, including empty streams and heavy timestamp ties.
func TestMergeMatchesLinear(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 16} {
		streams := benchStreams(k, 200, int64(k))
		streams = append(streams, nil) // empty stream must be skipped
		got := Merge(streams...)
		want := mergeLinear(streams...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: heap merge diverged from linear reference", k)
		}
		if i := Validate(got); i != -1 {
			t.Fatalf("k=%d: merged stream invalid at %d", k, i)
		}
	}
	// All-equal timestamps: ties must resolve by stream index.
	a := []event.Event{{Type: 0, TS: 5, Seq: 1}, {Type: 0, TS: 5, Seq: 2}}
	b := []event.Event{{Type: 1, TS: 5, Seq: 1}}
	out := Merge(a, b)
	if out[0].Type != 0 || out[1].Type != 0 || out[2].Type != 1 {
		t.Fatalf("tie-break order wrong: %v", out)
	}
}

// BenchmarkMerge compares the heap-based k-way merge against the retired
// linear scan; the gap widens with k (the heap is O(n log k), the scan
// O(n·k)).
func BenchmarkMerge(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		streams := benchStreams(k, 20000/k, 42)
		b.Run(fmt.Sprintf("heap/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Merge(streams...)
			}
		})
		b.Run(fmt.Sprintf("linear/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mergeLinear(streams...)
			}
		})
	}
}
