package stream

import (
	"bytes"
	"testing"

	"acep/internal/gen"
)

// TestCSVKeyedRoundTrip: the keys= header field must survive persistence
// so replayed workloads keep their partition key (and build keyed,
// shardable patterns).
func TestCSVKeyedRoundTrip(t *testing.T) {
	wk := gen.Traffic(gen.TrafficConfig{Types: 4, Events: 300, Seed: 3, Keys: 8})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, wk); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Keys != 8 {
		t.Fatalf("Keys = %d after round trip; want 8", got.Keys)
	}
	if n := got.Schema.NumAttrs(0); n != 3 {
		t.Fatalf("keyed schema has %d attrs; want 3", n)
	}
	for i := range wk.Events {
		if wk.Events[i].Attrs[2] != got.Events[i].Attrs[2] {
			t.Fatalf("event %d key mismatch", i)
		}
	}
	// Patterns over the reloaded workload carry the key-equality preds.
	p, err := got.Pattern(gen.Sequence, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Preds) != 8 { // 3 pairs × 2 domain preds + 2 adjacent key-eq
		t.Fatalf("keyed pattern preds = %d; want 8", len(p.Preds))
	}
	// Unkeyed workloads must be unaffected.
	base := gen.Traffic(gen.TrafficConfig{Types: 4, Events: 300, Seed: 3})
	for i := range base.Events {
		if base.Events[i].TS != wk.Events[i].TS ||
			base.Events[i].Attrs[0] != wk.Events[i].Attrs[0] ||
			base.Events[i].Attrs[1] != wk.Events[i].Attrs[1] {
			t.Fatalf("enabling Keys changed event %d", i)
		}
	}
}
