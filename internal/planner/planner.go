// Package planner implements the two evaluation-plan generation
// algorithms the paper applies the invariant-based method to: the greedy
// order-based algorithm (paper Algorithm 2, after Swami '89 and the lazy
// NFA of DEBS '15) and the ZStream dynamic-programming algorithm for
// tree-based plans (paper Algorithm 3).
//
// Both algorithms are instrumented: alongside the plan they emit a
// core.Trace recording, per building block of the returned plan, the
// deciding conditions verified by the block-building comparisons that
// selected it. The trace is the raw material of the invariant method.
package planner

import (
	"acep/internal/core"
	"acep/internal/pattern"
	"acep/internal/plan"
	"acep/internal/stats"
)

// Result couples a generated plan with its instrumentation trace. The
// trace's blocks are ordered in the plan's invariant-verification order.
type Result struct {
	Plan  plan.Plan
	Trace *core.Trace
}

// Algorithm is a deterministic plan generation algorithm A: given a
// pattern and a statistics snapshot it produces an evaluation plan and
// the trace of deciding conditions. Implementations must be deterministic
// functions of (pattern, snapshot) — the correctness guarantees of the
// invariant method (Theorems 1 and 2) depend on it.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Generate produces the plan for the pattern under the snapshot.
	Generate(pat *pattern.Pattern, s *stats.Snapshot) Result
}
