package planner

import (
	"fmt"

	"acep/internal/core"
	"acep/internal/pattern"
	"acep/internal/plan"
	"acep/internal/stats"
)

// Greedy is the greedy order-based plan generation algorithm (paper
// Algorithm 2). At each step it selects, among the core positions not yet
// placed, the one minimizing
//
//	r_j · sel_{j,j} · prod_{k<i} sel_{p_k,j},
//
// i.e. the marginal growth of the expected partial-match cardinality.
// Negated and Kleene positions are excluded from the order (they are
// post-processed residual constraints; paper §4.1).
//
// Instrumentation: the building block of step i is "process position p_i
// at step i"; its DCS holds one condition per rejected candidate j',
// stating cost(p_i) < cost(j') with both sides expressed over live
// statistics. Ties are broken toward the lower position index, keeping
// the algorithm deterministic.
type Greedy struct{}

// Name implements Algorithm.
func (Greedy) Name() string { return "greedy" }

// stepExpr builds the live cost expression of candidate j at step i given
// the previously chosen positions: r_j · sel_{j,j} · prod sel_{chosen,j}.
func stepExpr(j int, chosen []int) core.Expr {
	t := core.Term{Coef: 1, Rates: []int{j}, Sels: [][2]int{{j, j}}}
	for _, k := range chosen {
		a, b := k, j
		if a > b {
			a, b = b, a
		}
		t.Sels = append(t.Sels, [2]int{a, b})
	}
	return core.Expr{Terms: []core.Term{t}}
}

// Generate implements Algorithm.
func (g Greedy) Generate(pat *pattern.Pattern, s *stats.Snapshot) Result {
	corePos := pat.Core()
	remaining := append([]int(nil), corePos...)
	chosen := make([]int, 0, len(corePos))
	trace := &core.Trace{}

	for len(remaining) > 0 {
		// Find the argmin candidate under the current snapshot.
		best := 0
		bestVal := stepExpr(remaining[0], chosen).Eval(s)
		for c := 1; c < len(remaining); c++ {
			v := stepExpr(remaining[c], chosen).Eval(s)
			if v < bestVal {
				best, bestVal = c, v
			}
		}
		winner := remaining[best]
		// The DCS of this block: winner beats every other candidate.
		dcs := core.DCS{Block: fmt.Sprintf("step %d: pos %d", len(chosen), winner)}
		winExpr := stepExpr(winner, chosen)
		for _, j := range remaining {
			if j == winner {
				continue
			}
			dcs.Conds = append(dcs.Conds, core.Condition{
				LHS: winExpr,
				RHS: stepExpr(j, chosen),
			})
		}
		trace.Blocks = append(trace.Blocks, dcs)
		chosen = append(chosen, winner)
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return Result{Plan: plan.NewOrderPlan(chosen), Trace: trace}
}
