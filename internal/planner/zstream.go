package planner

import (
	"fmt"

	"acep/internal/core"
	"acep/internal/pattern"
	"acep/internal/plan"
	"acep/internal/stats"
)

// ZStream is the dynamic-programming tree-plan generation algorithm of
// Mei & Madden (SIGMOD '09), as given in paper Algorithm 3: for every
// contiguous range of core positions (in pattern order) it memoizes the
// cheapest tree, where
//
//	Cost(leaf) = Card(leaf) = r_i · sel_{i,i}
//	Cost(T)    = Cost(L) + Cost(R) + Card(T)
//	Card(T)    = Card(L) · Card(R) · SEL(L,R)
//
// and SEL(L,R) is the product of the selectivities of all predicates
// crossing the two leaf sets.
//
// Instrumentation (paper §4.2): every internal node of a candidate tree
// is a potential building block; a comparison between two candidate
// trees over the same range is a BBC for the cheaper tree's root. In the
// recorded cost expressions the cost and cardinality of *internal*
// subtrees are frozen to their creation-time values — safe because
// invariants are verified leaves-to-root, so a statistics change affecting
// a subtree is caught by an earlier invariant — while leaf cardinalities
// (arrival rates and unary selectivities) and the top-level cross
// selectivities stay live.
type ZStream struct{}

// Name implements Algorithm.
func (ZStream) Name() string { return "zstream" }

// zcell is one memoized DP entry: the cheapest tree over a contiguous
// range of core positions.
type zcell struct {
	tree   *plan.TreeNode
	leaves []int // actual pattern positions covered
	cost   float64
	card   float64
	dcs    core.DCS
}

// crossSels collects the selectivity factors between two leaf sets,
// skipping pairs with no predicates (their selectivity is identically 1).
func crossSels(pat *pattern.Pattern, lv, rv []int) [][2]int {
	var out [][2]int
	for _, i := range lv {
		for _, j := range rv {
			if len(pat.PredsBetween(i, j)) == 0 {
				continue
			}
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// candidateExpr builds the partially frozen cost expression of the tree
// joining cells l and r.
func candidateExpr(pat *pattern.Pattern, l, r *zcell) core.Expr {
	var e core.Expr
	// Children's costs: live for leaves, frozen for internal subtrees.
	for _, c := range []*zcell{l, r} {
		if c.tree.IsLeaf() {
			p := c.tree.Pos
			e.Terms = append(e.Terms, core.Term{
				Coef: 1, Rates: []int{p}, Sels: [][2]int{{p, p}},
			})
		} else {
			e.Add += c.cost
		}
	}
	// Cardinality term: frozen child cardinalities for internal children,
	// live rate/unary-selectivity factors for leaf children, plus the live
	// cross selectivities.
	card := core.Term{Coef: 1}
	for _, c := range []*zcell{l, r} {
		if c.tree.IsLeaf() {
			p := c.tree.Pos
			card.Rates = append(card.Rates, p)
			card.Sels = append(card.Sels, [2]int{p, p})
		} else {
			card.Coef *= c.card
		}
	}
	card.Sels = append(card.Sels, crossSels(pat, l.leaves, r.leaves)...)
	e.Terms = append(e.Terms, card)
	return e
}

// Generate implements Algorithm.
func (z ZStream) Generate(pat *pattern.Pattern, s *stats.Snapshot) Result {
	cp := pat.Core()
	n := len(cp)
	// memo[size-1][start]: cheapest tree over cp[start : start+size].
	memo := make([][]*zcell, n)
	memo[0] = make([]*zcell, n)
	for start := 0; start < n; start++ {
		p := cp[start]
		card := s.Rates[p] * s.Sel[p][p]
		memo[0][start] = &zcell{
			tree:   plan.Leaf(p),
			leaves: []int{p},
			cost:   card,
			card:   card,
		}
	}
	for size := 2; size <= n; size++ {
		memo[size-1] = make([]*zcell, n-size+1)
		for start := 0; start+size <= n; start++ {
			type cand struct {
				cell *zcell
				expr core.Expr
			}
			var cands []cand
			for k := 1; k < size; k++ {
				l := memo[k-1][start]
				r := memo[size-k-1][start+k]
				card := l.card * r.card
				for _, ij := range crossSels(pat, l.leaves, r.leaves) {
					card *= s.Sel[ij[0]][ij[1]]
				}
				c := &zcell{
					tree:   plan.Join(l.tree, r.tree),
					leaves: append(append([]int(nil), l.leaves...), r.leaves...),
					cost:   l.cost + r.cost + card,
					card:   card,
				}
				cands = append(cands, cand{cell: c, expr: candidateExpr(pat, l, r)})
			}
			best := 0
			for c := 1; c < len(cands); c++ {
				if cands[c].cell.cost < cands[best].cell.cost {
					best = c
				}
			}
			win := cands[best]
			win.cell.dcs = core.DCS{
				Block: fmt.Sprintf("node over %v", win.cell.leaves),
			}
			for c := range cands {
				if c == best {
					continue
				}
				win.cell.dcs.Conds = append(win.cell.dcs.Conds, core.Condition{
					LHS: win.expr,
					RHS: cands[c].expr,
				})
			}
			memo[size-1][start] = win.cell
		}
	}

	root := memo[n-1][0]
	tp := plan.NewTreePlan(root.tree)
	// Collect the DCSs of the chosen plan's internal nodes, leaves-to-root.
	// Winner nodes are shared by pointer between the memo and the final
	// tree, so a pointer map recovers each node's cell.
	byNode := make(map[*plan.TreeNode]core.DCS)
	for size := 2; size <= n; size++ {
		for start := 0; start+size <= n; start++ {
			cell := memo[size-1][start]
			byNode[cell.tree] = cell.dcs
		}
	}
	trace := &core.Trace{}
	for _, node := range tp.PostOrder(nil) {
		dcs, ok := byNode[node]
		if !ok {
			// Every internal node of the final plan is a cell winner by
			// construction; keep a labeled empty DCS if that ever breaks.
			dcs = core.DCS{Block: "unknown node"}
		}
		trace.Blocks = append(trace.Blocks, dcs)
	}
	return Result{Plan: tp, Trace: trace}
}
