package planner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acep/internal/event"
	"acep/internal/pattern"
	"acep/internal/plan"
	"acep/internal/stats"
)

// seqPattern builds SEQ(T0, ..., Tn-1) with an equality predicate chain
// between adjacent positions when chain is true.
func seqPattern(t testing.TB, n int, chain bool) *pattern.Pattern {
	t.Helper()
	s := event.NewSchema()
	for i := 0; i < n; i++ {
		s.MustAddType(string(rune('A'+i)), "x")
	}
	b := pattern.NewBuilder(s, pattern.Seq, 10*event.Second)
	for i := 0; i < n; i++ {
		b.Event(i)
	}
	if chain {
		for i := 0; i+1 < n; i++ {
			b.WherePred(pattern.Pred{L: i, R: i + 1, Op: pattern.EQ})
		}
	}
	return b.MustBuild()
}

// paperSnapshot is Example 1's statistics: rates A=100, B=15, C=10, no
// predicates.
func paperSnapshot() *stats.Snapshot {
	s := stats.NewSnapshot(3)
	s.Rates = []float64{100, 15, 10}
	return s
}

func TestGreedyPaperExample(t *testing.T) {
	pat := seqPattern(t, 3, false)
	res := Greedy{}.Generate(pat, paperSnapshot())
	op, ok := res.Plan.(*plan.OrderPlan)
	if !ok {
		t.Fatalf("plan type %T", res.Plan)
	}
	// Ascending rates: C(2), B(1), A(0).
	want := []int{2, 1, 0}
	for i, p := range want {
		if op.Order[i] != p {
			t.Fatalf("order = %v; want %v", op.Order, want)
		}
	}
	// DCS structure from the paper (Figure 4):
	// DCS1 = {rateC < rateB, rateC < rateA}; DCS2 = {rateB < rateA};
	// DCS3 = {}.
	if len(res.Trace.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(res.Trace.Blocks))
	}
	if got := len(res.Trace.Blocks[0].Conds); got != 2 {
		t.Errorf("DCS1 size = %d; want 2", got)
	}
	if got := len(res.Trace.Blocks[1].Conds); got != 1 {
		t.Errorf("DCS2 size = %d; want 1", got)
	}
	if got := len(res.Trace.Blocks[2].Conds); got != 0 {
		t.Errorf("DCS3 size = %d; want 0", got)
	}
	// All recorded conditions must hold at creation (gap >= 0).
	snap := paperSnapshot()
	for _, b := range res.Trace.Blocks {
		for _, c := range b.Conds {
			if c.Gap(snap) < 0 {
				t.Errorf("condition %s violated at creation", c)
			}
		}
	}
	// The DCS2 condition is rateB < rateA: 15 < 100, gap 85.
	if g := res.Trace.Blocks[1].Conds[0].Gap(snap); math.Abs(g-85) > 1e-9 {
		t.Errorf("DCS2 gap = %g; want 85", g)
	}
}

func TestGreedyUsesSelectivities(t *testing.T) {
	pat := seqPattern(t, 3, true)
	s := stats.NewSnapshot(3)
	s.Rates = []float64{10, 12, 100}
	// A joins B with tiny selectivity; after choosing A (lowest rate),
	// candidate B scores 12*0.01 = 0.12 but C scores 100*1 = 100 -> B next.
	s.SetSym(0, 1, 0.01)
	s.SetSym(1, 2, 0.5)
	res := Greedy{}.Generate(pat, s)
	op := res.Plan.(*plan.OrderPlan)
	want := []int{0, 1, 2}
	for i := range want {
		if op.Order[i] != want[i] {
			t.Fatalf("order = %v; want %v", op.Order, want)
		}
	}
	// Now make the A-B join useless and C cheap: after A, C (rate 5)
	// should precede B.
	s2 := stats.NewSnapshot(3)
	s2.Rates = []float64{10, 12, 5}
	s2.SetSym(0, 1, 1)
	res2 := Greedy{}.Generate(pat, s2)
	op2 := res2.Plan.(*plan.OrderPlan)
	if op2.Order[0] != 2 { // C has the lowest rate now
		t.Fatalf("order = %v; want C first", op2.Order)
	}
}

func TestGreedySkipsResidualPositions(t *testing.T) {
	s := event.NewSchema()
	for i := 0; i < 4; i++ {
		s.MustAddType(string(rune('A'+i)), "x")
	}
	b := pattern.NewBuilder(s, pattern.Seq, event.Second)
	b.Event(0)
	neg := b.Event(1)
	b.Event(2)
	kl := b.Event(3)
	b.Negate(neg).Kleene(kl)
	pat := b.MustBuild()
	snap := stats.NewSnapshot(4)
	snap.Rates = []float64{5, 1, 3, 1}
	res := Greedy{}.Generate(pat, snap)
	op := res.Plan.(*plan.OrderPlan)
	if len(op.Order) != 2 {
		t.Fatalf("order = %v; want only core positions", op.Order)
	}
	for _, p := range op.Order {
		if p == neg || p == kl {
			t.Fatalf("residual position %d in order %v", p, op.Order)
		}
	}
}

func TestGreedySinglePosition(t *testing.T) {
	pat := seqPattern(t, 1, false)
	snap := stats.NewSnapshot(1)
	snap.Rates[0] = 7
	res := Greedy{}.Generate(pat, snap)
	op := res.Plan.(*plan.OrderPlan)
	if len(op.Order) != 1 || op.Order[0] != 0 {
		t.Fatalf("order = %v", op.Order)
	}
	if res.Trace.NumConditions() != 0 {
		t.Error("single-position plan must have no conditions")
	}
}

func TestGreedyDeterminism(t *testing.T) {
	pat := seqPattern(t, 5, true)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		s := randomSnapshot(r, pat)
		a := Greedy{}.Generate(pat, s)
		b := Greedy{}.Generate(pat, s)
		if !a.Plan.Equal(b.Plan) {
			t.Fatal("greedy not deterministic")
		}
		if a.Trace.NumConditions() != b.Trace.NumConditions() {
			t.Fatal("trace not deterministic")
		}
	}
}

// randomSnapshot draws random rates for all positions and random
// selectivities for exactly the position pairs connected by predicates,
// honoring the Snapshot contract (Sel == 1 on predicate-free pairs).
func randomSnapshot(r *rand.Rand, pat *pattern.Pattern) *stats.Snapshot {
	n := pat.NumPositions()
	s := stats.NewSnapshot(n)
	for i := 0; i < n; i++ {
		s.Rates[i] = 1 + r.Float64()*99
		for j := i + 1; j < n; j++ {
			if len(pat.PredsBetween(i, j)) > 0 {
				s.SetSym(i, j, 0.05+r.Float64()*0.95)
			}
		}
	}
	return s
}

// TestGreedyTheorem2 checks both directions of Theorem 2 for the greedy
// algorithm with the full deciding-condition sets: the plan produced
// under new statistics differs from the old plan if and only if some
// recorded condition is violated under the new statistics.
func TestGreedyTheorem2(t *testing.T) {
	pat := seqPattern(t, 5, true)
	r := rand.New(rand.NewSource(11))
	diffs, same := 0, 0
	for trial := 0; trial < 300; trial++ {
		s0 := randomSnapshot(r, pat)
		res := Greedy{}.Generate(pat, s0)
		// Perturb: small chance of large changes.
		s1 := s0.Clone()
		for i := range s1.Rates {
			if r.Intn(3) == 0 {
				s1.Rates[i] *= 0.2 + r.Float64()*3
			}
		}
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				if len(pat.PredsBetween(i, j)) > 0 && r.Intn(4) == 0 {
					v := s1.Sel[i][j] * (0.3 + r.Float64()*2)
					if v > 1 {
						v = 1
					}
					s1.SetSym(i, j, v)
				}
			}
		}
		violated := res.Trace.AnyViolated(s1, 0)
		res2 := Greedy{}.Generate(pat, s1)
		changed := !res.Plan.Equal(res2.Plan)
		if changed != violated {
			t.Fatalf("trial %d: changed=%v violated=%v\nold=%v new=%v",
				trial, changed, violated, res.Plan, res2.Plan)
		}
		if changed {
			diffs++
		} else {
			same++
		}
	}
	if diffs == 0 || same == 0 {
		t.Fatalf("degenerate test: diffs=%d same=%d", diffs, same)
	}
}

func TestZStreamPaperShape(t *testing.T) {
	pat := seqPattern(t, 3, true)
	s := stats.NewSnapshot(3)
	s.Rates = []float64{100, 15, 10}
	s.SetSym(0, 1, 0.5)
	s.SetSym(1, 2, 0.2)
	res := ZStream{}.Generate(pat, s)
	tp, ok := res.Plan.(*plan.TreePlan)
	if !ok {
		t.Fatalf("plan type %T", res.Plan)
	}
	// Right-deep (0 (1 2)) costs 1655 vs left-deep 2375 (see plan tests).
	want := plan.NewTreePlan(plan.Join(plan.Leaf(0), plan.Join(plan.Leaf(1), plan.Leaf(2))))
	if !tp.Equal(want) {
		t.Fatalf("plan = %v; want %v", tp, want)
	}
	// DP cost must agree with the plan package's recursive cost.
	if got, w := tp.Cost(s), 1655.0; math.Abs(got-w) > 1e-6 {
		t.Errorf("cost = %g; want %g", got, w)
	}
	// Trace: two internal nodes; the bottom node (1 2) had no
	// alternatives (size 2), the root chose between two splits.
	if len(res.Trace.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(res.Trace.Blocks))
	}
	if got := len(res.Trace.Blocks[0].Conds); got != 0 {
		t.Errorf("bottom DCS size = %d; want 0", got)
	}
	if got := len(res.Trace.Blocks[1].Conds); got != 1 {
		t.Errorf("root DCS size = %d; want 1", got)
	}
	// The root condition must hold at creation with gap 2375-1655 = 720.
	if g := res.Trace.Blocks[1].Conds[0].Gap(s); math.Abs(g-720) > 1e-6 {
		t.Errorf("root gap = %g; want 720", g)
	}
}

func TestZStreamOptimalOverContiguousTrees(t *testing.T) {
	// For n=4 enumerate all contiguous-range binary trees and confirm the
	// DP result is the cheapest.
	pat := seqPattern(t, 4, true)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		s := randomSnapshot(r, pat)
		res := ZStream{}.Generate(pat, s)
		got := res.Plan.Cost(s)
		best := math.Inf(1)
		var enumerate func(lo, hi int) []*plan.TreeNode
		enumerate = func(lo, hi int) []*plan.TreeNode {
			if hi-lo == 1 {
				return []*plan.TreeNode{plan.Leaf(lo)}
			}
			var out []*plan.TreeNode
			for k := lo + 1; k < hi; k++ {
				for _, l := range enumerate(lo, k) {
					for _, rr := range enumerate(k, hi) {
						out = append(out, plan.Join(l, rr))
					}
				}
			}
			return out
		}
		for _, root := range enumerate(0, 4) {
			c := plan.SubtreeCost(root, s)
			if c < best {
				best = c
			}
		}
		if got > best*(1+1e-9) {
			t.Fatalf("trial %d: DP cost %g > enumerated best %g", trial, got, best)
		}
	}
}

func TestZStreamConditionsHoldAtCreation(t *testing.T) {
	pat := seqPattern(t, 6, true)
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		s := randomSnapshot(r, pat)
		res := ZStream{}.Generate(pat, s)
		for _, b := range res.Trace.Blocks {
			for _, c := range b.Conds {
				if c.Gap(s) < -1e-9 {
					t.Fatalf("condition %s has negative gap %g at creation", c, c.Gap(s))
				}
			}
		}
		// Expression evaluation at the creation snapshot must reproduce
		// the winner's DP cost on the LHS of every root condition.
		if len(res.Trace.Blocks) > 0 {
			last := res.Trace.Blocks[len(res.Trace.Blocks)-1]
			for _, c := range last.Conds {
				if math.Abs(c.LHS.Eval(s)-res.Plan.Cost(s)) > 1e-6*res.Plan.Cost(s) {
					t.Fatalf("root LHS %g != plan cost %g", c.LHS.Eval(s), res.Plan.Cost(s))
				}
			}
		}
	}
}

func TestZStreamDeterminism(t *testing.T) {
	pat := seqPattern(t, 5, true)
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		s := randomSnapshot(r, pat)
		a := ZStream{}.Generate(pat, s)
		b := ZStream{}.Generate(pat, s)
		if !a.Plan.Equal(b.Plan) {
			t.Fatal("zstream not deterministic")
		}
	}
}

func TestZStreamSingleLeaf(t *testing.T) {
	pat := seqPattern(t, 1, false)
	s := stats.NewSnapshot(1)
	s.Rates[0] = 3
	res := ZStream{}.Generate(pat, s)
	tp := res.Plan.(*plan.TreePlan)
	if !tp.Root.IsLeaf() || tp.Root.Pos != 0 {
		t.Fatalf("plan = %v", tp)
	}
	if len(res.Trace.Blocks) != 0 {
		t.Error("single leaf must have no blocks")
	}
}

func TestAlgorithmNames(t *testing.T) {
	if (Greedy{}).Name() != "greedy" || (ZStream{}).Name() != "zstream" {
		t.Error("algorithm names wrong")
	}
}

func TestGreedyTraceQuick(t *testing.T) {
	// Property: for any snapshot, the greedy trace has n blocks with
	// n-1-i conditions at block i, and every condition holds at creation.
	pat := seqPattern(t, 4, true)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSnapshot(r, pat)
		res := Greedy{}.Generate(pat, s)
		if len(res.Trace.Blocks) != 4 {
			return false
		}
		for i, b := range res.Trace.Blocks {
			if len(b.Conds) != 4-1-i {
				return false
			}
			for _, c := range b.Conds {
				if c.Gap(s) < -1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
