package planner

import (
	"math/rand"
	"testing"
)

// BenchmarkGenerate measures the cost of one plan-generation run (the A
// the adaptation loop pays for on every reoptimization attempt) across
// pattern sizes and algorithms.
func BenchmarkGenerate(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{3, 5, 8} {
		pat := seqPattern(b, n, true)
		snap := randomSnapshot(r, pat)
		b.Run("greedy/n="+string(rune('0'+n)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := Greedy{}.Generate(pat, snap)
				if res.Plan == nil {
					b.Fatal("nil plan")
				}
			}
		})
		b.Run("zstream/n="+string(rune('0'+n)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := ZStream{}.Generate(pat, snap)
				if res.Plan == nil {
					b.Fatal("nil plan")
				}
			}
		})
	}
}
