package shed

import (
	"math"
	"testing"
	"time"

	"acep/internal/event"
	"acep/internal/pattern"
	"acep/internal/stats"
)

// fakeProbe is a hand-controlled engine introspection surface.
type fakeProbe struct {
	live int
	hot  []int    // hot event types
	keys []uint64 // hot partition-key values
	snap *stats.Snapshot
}

func (f *fakeProbe) LivePMs() int { return f.live }

func (f *fakeProbe) HotTypes(mark []bool) {
	for _, t := range f.hot {
		if t < len(mark) {
			mark[t] = true
		}
	}
}

func (f *fakeProbe) HotKeys(key func(*event.Event) uint64, add func(uint64)) {
	for _, k := range f.keys {
		add(k)
	}
}

func (f *fakeProbe) LastSnapshots() []*stats.Snapshot { return []*stats.Snapshot{f.snap} }

// testPattern builds SEQ(T0, T1, T2) (optionally with a negated T3) over
// a schema of five types carrying attributes "x" and "key".
func testPattern(t *testing.T, withNeg bool) (*event.Schema, *pattern.Pattern) {
	t.Helper()
	s := event.NewSchema()
	for i := 0; i < 5; i++ {
		s.MustAddType(string(rune('A'+i)), "x", "key")
	}
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	b.Event(0)
	b.Event(1)
	b.Event(2)
	if withNeg {
		b.Negate(b.Event(3))
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

// feed runs n events round-robining the given types through the shedder
// and returns the per-type (kept, dropped) counts.
func feed(sh *Shedder, n int, types []int) (kept, dropped map[int]int) {
	kept, dropped = make(map[int]int), make(map[int]int)
	for i := 0; i < n; i++ {
		typ := types[i%len(types)]
		ev := event.Event{Type: typ, TS: event.Time(i), Seq: uint64(i + 1), Attrs: []float64{0, float64(typ)}}
		if sh.Admit(&ev) {
			kept[typ]++
		} else {
			dropped[typ]++
		}
	}
	return kept, dropped
}

func overloadedConfig(pol Policy) Config {
	return Config{
		Policy:       pol,
		Budget:       Budget{LivePMs: 10},
		RefreshEvery: 32,
	}
}

func TestNewValidation(t *testing.T) {
	_, pat := testPattern(t, false)
	if sh, err := New(Config{}, pat, &fakeProbe{}); err != nil || sh != nil {
		t.Fatalf("nil policy: want (nil, nil), got (%v, %v)", sh, err)
	}
	if _, err := New(Config{Policy: Random{P: 0.5}}, pat, &fakeProbe{}); err == nil {
		t.Fatal("policy without budget: want error")
	}
	if _, err := New(overloadedConfig(Random{P: 0.5}), nil, &fakeProbe{}); err == nil {
		t.Fatal("nil pattern: want error")
	}
	if _, err := New(overloadedConfig(Random{P: 0.5}), pat, nil); err == nil {
		t.Fatal("nil probe: want error")
	}
}

func TestUnderBudgetNeverDrops(t *testing.T) {
	_, pat := testPattern(t, false)
	sh, err := New(overloadedConfig(Random{P: 1}), pat, &fakeProbe{live: 0})
	if err != nil {
		t.Fatal(err)
	}
	_, dropped := feed(sh, 1000, []int{0, 1, 2})
	if len(dropped) != 0 {
		t.Fatalf("under budget, Random(1) dropped %v", dropped)
	}
	if sh.Load() >= 1 {
		t.Fatalf("load = %v, want < 1", sh.Load())
	}
}

// TestLatencyBudget: the QueueWait dimension activates the monitor on
// p99 queue wait alone — no PM, rate or depth budget involved — and only
// while the probed latency exceeds the target.
func TestLatencyBudget(t *testing.T) {
	_, pat := testPattern(t, false)
	cfg := Config{
		Policy:       Random{P: 1},
		Budget:       Budget{QueueWait: 10 * time.Millisecond},
		RefreshEvery: 32,
	}
	p99 := float64(1 * time.Millisecond) // healthy
	sh, err := New(cfg, pat, &fakeProbe{})
	if err != nil {
		t.Fatal(err)
	}
	sh.SetLatencyProbe(func() float64 { return p99 })
	if _, dropped := feed(sh, 500, []int{0, 1, 2}); len(dropped) != 0 {
		t.Fatalf("p99 under budget, dropped %v", dropped)
	}
	if sh.Load() >= 1 {
		t.Fatalf("load = %v, want < 1", sh.Load())
	}

	p99 = float64(25 * time.Millisecond) // 2.5x over the latency budget
	kept, dropped := feed(sh, 500, []int{0, 1, 2})
	if len(dropped) == 0 {
		t.Fatal("p99 2.5x over budget, nothing dropped")
	}
	if got := sh.Load(); got < 2 || got > 3 {
		t.Fatalf("load = %v, want ~2.5", got)
	}
	_ = kept

	// Without a probe the dimension is inert even when budgeted.
	sh2, err := New(cfg, pat, &fakeProbe{})
	if err != nil {
		t.Fatal(err)
	}
	if _, dropped := feed(sh2, 500, []int{0, 1, 2}); len(dropped) != 0 {
		t.Fatalf("probe-less latency budget dropped %v", dropped)
	}
}

func TestNonePolicyNeverDrops(t *testing.T) {
	_, pat := testPattern(t, false)
	sh, err := New(overloadedConfig(None{}), pat, &fakeProbe{live: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_, dropped := feed(sh, 2000, []int{0, 1, 2})
	if len(dropped) != 0 {
		t.Fatalf("None dropped %v", dropped)
	}
	if sh.Load() < 1 {
		t.Fatalf("load = %v, want >= 1 (the monitor still runs)", sh.Load())
	}
}

func TestRandomDropRate(t *testing.T) {
	_, pat := testPattern(t, false)
	sh, err := New(overloadedConfig(Random{P: 0.3}), pat, &fakeProbe{live: 1000})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	_, dropped := feed(sh, n, []int{0, 1, 2})
	total := dropped[0] + dropped[1] + dropped[2]
	got := float64(total) / float64(n)
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Random(0.3) achieved drop rate %.3f", got)
	}
	if sh.Shed() != uint64(total) || sh.Kept() != uint64(n-total) {
		t.Fatalf("counter mismatch: shed=%d kept=%d vs %d/%d", sh.Shed(), sh.Kept(), total, n-total)
	}
}

func TestDeterminism(t *testing.T) {
	_, pat := testPattern(t, false)
	run := func() (map[int]int, map[int]int) {
		sh, err := New(overloadedConfig(Random{P: 0.4}), pat, &fakeProbe{live: 1000})
		if err != nil {
			t.Fatal(err)
		}
		return feed(sh, 5000, []int{0, 1, 2})
	}
	k1, d1 := run()
	k2, d2 := run()
	for typ := 0; typ < 3; typ++ {
		if k1[typ] != k2[typ] || d1[typ] != d2[typ] {
			t.Fatalf("type %d: run1 kept/dropped %d/%d, run2 %d/%d", typ, k1[typ], d1[typ], k2[typ], d2[typ])
		}
	}
}

func TestNegatedTypesProtected(t *testing.T) {
	_, pat := testPattern(t, true) // T3 negated
	sh, err := New(overloadedConfig(Random{P: 1}), pat, &fakeProbe{live: 1000})
	if err != nil {
		t.Fatal(err)
	}
	kept, dropped := feed(sh, 4000, []int{0, 1, 2, 3})
	if dropped[3] != 0 {
		t.Fatalf("negated type dropped %d times", dropped[3])
	}
	if kept[3] != 1000 {
		t.Fatalf("negated type kept %d of 1000", kept[3])
	}
	// Random(1) must have dropped everything else once overloaded.
	if dropped[0] == 0 || dropped[1] == 0 || dropped[2] == 0 {
		t.Fatalf("expected drops on non-negated types, got %v", dropped)
	}
}

func TestPatternAwareProtectsHotAndCompensates(t *testing.T) {
	_, pat := testPattern(t, false)
	probe := &fakeProbe{live: 1000, hot: []int{0}}
	cfg := overloadedConfig(PatternAware{Target: 0.3})
	sh, err := New(cfg, pat, probe)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	kept, dropped := feed(sh, n, []int{0, 1, 2, 4})
	if dropped[0] != 0 {
		t.Fatalf("hot type dropped %d times", dropped[0])
	}
	total := 0
	for _, d := range dropped {
		total += d
	}
	got := float64(total) / float64(n)
	// Hot fraction is 1/4; compensation raises the cold drop rate to
	// 0.3/0.75 = 0.4, restoring the stream-wide target of 0.3.
	if math.Abs(got-0.3) > 0.03 {
		t.Fatalf("PatternAware(0.3) achieved stream-wide drop rate %.3f", got)
	}
	coldDropped := dropped[1] + dropped[2] + dropped[4]
	coldTotal := coldDropped + kept[1] + kept[2] + kept[4]
	coldRate := float64(coldDropped) / float64(coldTotal)
	if math.Abs(coldRate-0.4) > 0.04 {
		t.Fatalf("cold drop rate %.3f, want ~0.4 (compensated)", coldRate)
	}
}

func TestPatternAwareProtectsHotKeys(t *testing.T) {
	_, pat := testPattern(t, false)
	probe := &fakeProbe{live: 1000, hot: []int{0, 1, 2}, keys: []uint64{7}}
	cfg := overloadedConfig(PatternAware{Target: 1})
	cfg.Key = func(ev *event.Event) uint64 { return uint64(ev.Attrs[1]) }
	sh, err := New(cfg, pat, probe)
	if err != nil {
		t.Fatal(err)
	}
	var keptHot, droppedHot, droppedCold int
	for i := 0; i < 4000; i++ {
		keyVal := float64(i % 4 * 7) // 0, 7, 14, 21: key 7 is hot
		ev := event.Event{Type: i % 3, TS: event.Time(i), Seq: uint64(i + 1), Attrs: []float64{0, keyVal}}
		admitted := sh.Admit(&ev)
		switch {
		case keyVal == 7 && admitted:
			keptHot++
		case keyVal == 7:
			droppedHot++
		case !admitted:
			droppedCold++
		}
	}
	if droppedHot != 0 {
		t.Fatalf("hot-key events dropped %d times", droppedHot)
	}
	if keptHot == 0 || droppedCold == 0 {
		t.Fatalf("degenerate run: keptHot=%d droppedCold=%d", keptHot, droppedCold)
	}
}

func TestRateUtilityShedsUselessTypesFirst(t *testing.T) {
	_, pat := testPattern(t, false)
	// Snapshot over the 3 positions: position 2 survives predicates far
	// more rarely than 0 and 1.
	snap := stats.NewSnapshot(3)
	snap.SetSym(0, 1, 0.9)
	snap.SetSym(1, 2, 0.05)
	snap.SetSym(0, 2, 0.05)
	probe := &fakeProbe{live: 1000, snap: snap}
	sh, err := New(overloadedConfig(RateUtility{Target: 0.25}), pat, probe)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform mix of pattern types 0..2 and the unreferenced type 4.
	const n = 40000
	_, dropped := feed(sh, n, []int{0, 1, 2, 4})
	// Type 4 feeds no pattern position: it must absorb the entire 25%
	// drop budget (its share is exactly the target).
	if got := float64(dropped[4]) / float64(n/4); got < 0.9 {
		t.Fatalf("unreferenced type shed at %.3f, want ~1", got)
	}
	if dropped[0] > n/400 || dropped[1] > n/400 {
		t.Fatalf("high-utility types shed: %v", dropped)
	}
	total := dropped[0] + dropped[1] + dropped[2] + dropped[4]
	if got := float64(total) / float64(n); math.Abs(got-0.25) > 0.03 {
		t.Fatalf("RateUtility(0.25) achieved drop rate %.3f", got)
	}
}

// TestRateUtilityCoversAllDisjuncts: a type referenced only by the
// second disjunct of an OR pattern must not be treated as unreferenced
// (and shed first); only truly pattern-free types absorb the drop mass.
func TestRateUtilityCoversAllDisjuncts(t *testing.T) {
	s := event.NewSchema()
	for i := 0; i < 6; i++ {
		s.MustAddType(string(rune('A'+i)), "x")
	}
	mkSeq := func(types ...int) *pattern.Pattern {
		b := pattern.NewBuilder(s, pattern.Seq, 100)
		for _, typ := range types {
			b.Event(typ)
		}
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	or, err := pattern.NewOr(mkSeq(0, 1, 2), mkSeq(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(overloadedConfig(RateUtility{Target: 0.15}), or, &fakeProbe{live: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform mix over all six types: only type 5 is pattern-free, and
	// its 1/6 share covers the 0.15 target.
	const n = 30000
	_, dropped := feed(sh, n, []int{0, 1, 2, 3, 4, 5})
	if dropped[3] > n/600 || dropped[4] > n/600 {
		t.Fatalf("second-disjunct types shed: %v", dropped)
	}
	if got := float64(dropped[5]) / float64(n/6); got < 0.8 {
		t.Fatalf("pattern-free type shed at %.3f, want ~0.9 (0.15 target / 1-in-6 share)", got)
	}
}

func TestRateMeter(t *testing.T) {
	m := rateMeter{window: event.Second}
	// 1 event per logical ms for 3 seconds -> 1000 events/sec.
	for ts := event.Time(0); ts < 3*event.Second; ts++ {
		m.observe(ts)
	}
	if math.Abs(m.rate-1000) > 10 {
		t.Fatalf("rate = %v, want ~1000", m.rate)
	}
}

func TestUniformDraw(t *testing.T) {
	var sum float64
	const n = 100000
	for i := uint64(1); i <= n; i++ {
		u := uniform(i, 0)
		if u < 0 || u >= 1 {
			t.Fatalf("uniform(%d) = %v out of [0,1)", i, u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of draws = %v, want ~0.5", mean)
	}
	if uniform(42, 1) == uniform(42, 2) {
		t.Fatal("seed does not decorrelate the draw")
	}
}

func TestQueueBudget(t *testing.T) {
	_, pat := testPattern(t, false)
	cfg := Config{
		Policy:       Random{P: 1},
		Budget:       Budget{Queue: 4},
		RefreshEvery: 8,
	}
	sh, err := New(cfg, pat, &fakeProbe{})
	if err != nil {
		t.Fatal(err)
	}
	depth := 0
	sh.SetQueueProbe(func() (int, int) { return depth, 8 })
	if _, dropped := feed(sh, 100, []int{0}); len(dropped) != 0 {
		t.Fatalf("empty queue: dropped %v", dropped)
	}
	depth = 6 // 6/4 budget -> overloaded
	if _, dropped := feed(sh, 100, []int{0}); dropped[0] == 0 {
		t.Fatal("deep queue: expected drops")
	}
}
