package shed

import (
	"testing"

	"acep/internal/event"
)

func TestTenantGateUnbudgeted(t *testing.T) {
	g := NewTenantGate(nil)
	for i := 0; i < 100; i++ {
		if !g.Admit(7, event.Time(i)) {
			t.Fatalf("unbudgeted tenant shed at %d", i)
		}
	}
	st := g.Stats()
	if len(st) != 1 || st[0].Tenant != 7 || st[0].Admitted != 100 || st[0].Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].Recall() != 1 {
		t.Fatalf("recall = %v", st[0].Recall())
	}
}

func TestTenantGateBudgetEnforced(t *testing.T) {
	// 10 events/logical-second, burst 10; offer 50 events per second for
	// 10 seconds: ~10 admitted per second after the initial burst.
	g := NewTenantGate(map[uint32]TenantBudget{1: {Rate: 10}})
	admitted := 0
	for sec := 0; sec < 10; sec++ {
		for i := 0; i < 50; i++ {
			ts := event.Time(sec)*event.Second + event.Time(i)*event.Second/50
			if g.Admit(1, ts) {
				admitted++
			}
		}
	}
	// Initial full burst (10) plus ~10/s refill over ~10s.
	if admitted < 100 || admitted > 120 {
		t.Fatalf("admitted %d of 500, want ~110", admitted)
	}
	st := g.Stats()
	if st[0].Admitted != uint64(admitted) || st[0].Shed != uint64(500-admitted) {
		t.Fatalf("stats = %+v (admitted %d)", st, admitted)
	}
	if r := st[0].Recall(); r < 0.15 || r > 0.30 {
		t.Fatalf("recall = %v", r)
	}
}

func TestTenantGateDeterministic(t *testing.T) {
	run := func() []bool {
		g := NewTenantGate(map[uint32]TenantBudget{3: {Rate: 5, Burst: 2}})
		var out []bool
		for i := 0; i < 400; i++ {
			ts := event.Time(i) * event.Second / 17
			out = append(out, g.Admit(3, ts))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
}

func TestTenantGateIsolation(t *testing.T) {
	// Tenant 1 is budgeted and noisy; tenant 2 is unbudgeted and must be
	// untouched by 1's exhaustion.
	g := NewTenantGate(map[uint32]TenantBudget{1: {Rate: 1, Burst: 1}})
	for i := 0; i < 1000; i++ {
		ts := event.Time(i) * event.Second / 100
		g.Admit(1, ts)
		if !g.Admit(2, ts) {
			t.Fatalf("tenant 2 shed at %d", i)
		}
	}
	st := g.Stats()
	if st[0].Shed == 0 {
		t.Fatalf("noisy tenant never shed: %+v", st)
	}
	if st[1].Shed != 0 || st[1].Admitted != 1000 {
		t.Fatalf("quiet tenant disturbed: %+v", st)
	}
}

func TestTenantGateRuntimeBudgetChange(t *testing.T) {
	g := NewTenantGate(nil)
	for i := 0; i < 10; i++ {
		g.Admit(5, event.Time(i))
	}
	g.SetBudget(5, TenantBudget{Rate: 1, Burst: 1})
	shed := 0
	for i := 10; i < 30; i++ {
		if !g.Admit(5, event.Time(i)) {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("budget installed at runtime never engaged")
	}
	g.RemoveBudget(5)
	for i := 30; i < 40; i++ {
		if !g.Admit(5, event.Time(i)) {
			t.Fatal("removed budget still shedding")
		}
	}
}
