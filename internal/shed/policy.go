package shed

import (
	"fmt"
	"sort"

	"acep/internal/event"
	"acep/internal/stats"
)

// None is the disabled policy: it never drops an event. Configuring it
// (rather than leaving Config.Policy nil) still runs the load monitor, so
// metrics report utilization without any shedding taking place.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Refresh implements Policy.
func (None) Refresh(*View) {}

// Drop implements Policy: never.
func (None) Drop(ev *event.Event, v *View, rnd float64) bool { return false }

// Random drops every event with probability P while overloaded,
// regardless of type or live state — the classic uniform load shedder and
// the baseline the pattern-aware policies are measured against.
type Random struct {
	// P is the drop probability in [0,1].
	P float64
}

// Name implements Policy.
func (r Random) Name() string { return fmt.Sprintf("random(%.2g)", r.P) }

// Refresh implements Policy.
func (Random) Refresh(*View) {}

// Drop implements Policy.
func (r Random) Drop(ev *event.Event, v *View, rnd float64) bool { return rnd < r.P }

// RateUtility sheds the least useful arrival mass first: it orders event
// types by the predicate survival probability of their pattern positions
// (computed from the statistics snapshot the adaptation loop already
// maintains) and drops types of high arrival share and low survival until
// the target fraction of the stream is shed. Event types no pattern
// position references survive no predicate at all and are shed first —
// dropping them costs zero recall.
type RateUtility struct {
	// Target is the fraction of the stream to shed while overloaded.
	Target float64
}

// Name implements Policy.
func (r RateUtility) Name() string { return fmt.Sprintf("rate-utility(%.2g)", r.Target) }

// Refresh implements Policy: recompute per-type drop probabilities so
// that the lowest-utility types absorb the target drop mass. Benefits
// aggregate over every disjunct of an OR pattern (a type is only
// "unreferenced", and hence free to drop, if no disjunct uses it), each
// scored against its own disjunct's statistics.
func (r RateUtility) Refresh(v *View) {
	n := len(v.DropProb)
	benefit := make([]float64, n)
	for di, pat := range v.Patterns {
		var snap *stats.Snapshot
		if di < len(v.Snapshots) {
			snap = v.Snapshots[di]
		}
		for p, pos := range pat.Positions {
			if pos.Type >= n {
				continue
			}
			// Survival probability of an event at position p: the product
			// of the selectivities of every predicate it participates in.
			// Without statistics yet, protect the type fully.
			s := 1.0
			if snap != nil && p < snap.N() {
				for j := 0; j < snap.N(); j++ {
					s *= snap.Sel[p][j]
				}
			}
			if s > benefit[pos.Type] {
				benefit[pos.Type] = s
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := order[a], order[b]
		if benefit[ta] != benefit[tb] {
			return benefit[ta] < benefit[tb] // least useful first
		}
		if v.Shares[ta] != v.Shares[tb] {
			return v.Shares[ta] > v.Shares[tb] // heavier mass first
		}
		return ta < tb
	})
	remaining := r.Target
	for _, t := range order {
		v.DropProb[t] = 0
		if remaining <= 0 {
			continue
		}
		share := v.Shares[t]
		if share <= 0 {
			continue
		}
		take := share
		if take > remaining {
			take = remaining
		}
		v.DropProb[t] = take / share
		remaining -= take
	}
	v.DefaultProb = 0 // unseen types carry no mass
}

// Drop implements Policy.
func (r RateUtility) Drop(ev *event.Event, v *View, rnd float64) bool {
	p := v.DefaultProb
	if int(ev.Type) < len(v.DropProb) {
		p = v.DropProb[ev.Type]
	}
	return rnd < p
}

// PatternAware sheds around the live partial matches: an event whose type
// could extend a live partial match, or whose partition key occurs in
// one, is never dropped — it may be the event that completes a
// near-finished match. The drop probability of the remaining (cold)
// events is raised so the stream-wide drop fraction still meets Target:
// the policy tracks the protected fraction and compensates, making its
// recall directly comparable to Random's at the same achieved drop rate.
type PatternAware struct {
	// Target is the fraction of the stream to shed while overloaded.
	Target float64
}

// Name implements Policy.
func (p PatternAware) Name() string { return fmt.Sprintf("pattern-aware(%.2g)", p.Target) }

// Refresh implements Policy: decay the hot/total decision counts so the
// compensation factor tracks the current protected fraction.
func (PatternAware) Refresh(v *View) {
	v.SeenTotal *= 0.5
	v.SeenHot *= 0.5
}

// Drop implements Policy.
func (p PatternAware) Drop(ev *event.Event, v *View, rnd float64) bool {
	hot := v.Hot(ev)
	v.SeenTotal++
	if hot {
		v.SeenHot++
		return false
	}
	// Compensate: if a fraction h of events is protected, cold events
	// must drop at Target/(1-h) for the stream-wide rate to hit Target.
	adj := p.Target
	if v.SeenTotal > 0 {
		cold := 1 - v.SeenHot/v.SeenTotal
		if cold > 0 {
			adj = p.Target / cold
			if adj > 1 {
				adj = 1
			}
		}
	}
	return rnd < adj
}
