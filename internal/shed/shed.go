// Package shed is the overload-control layer: when the input rate exceeds
// what the current evaluation plan can absorb, it drops events *before*
// they reach the detection engines, trading match recall for bounded
// resource usage. Adaptation (re-planning) keeps detection cheap when the
// data distribution moves; shedding keeps the system alive when even the
// best plan cannot keep up.
//
// The layer has three parts:
//
//   - a load monitor that compares the live partial-match count, the
//     logical arrival rate and the ingestion-queue depth against
//     configurable budgets and reduces them to one utilization figure
//     (>= 1 means overloaded);
//   - pluggable shedding policies (None, Random, RateUtility,
//     PatternAware) that decide, per event, whether to drop it while the
//     system is overloaded;
//   - a Shedder that drives both: it samples the engine through the Probe
//     introspection interface, refreshes the policy's decision state at a
//     fixed event cadence, and accounts every decision.
//
// Shedding preserves precision and sacrifices recall: events of negated
// pattern positions are never dropped (dropping one could surface a match
// the full stream forbids), so every match emitted under shedding is a
// true match of the shedded stream and a subset of the full match set for
// negation-free patterns. Kleene matches may carry fewer closure events
// than the full stream would produce.
//
// All decisions are deterministic functions of the event sequence and the
// configuration: the per-event random draw is a hash of the event's
// sequence number, and the load monitor measures logical (timestamp)
// rather than wall-clock rate. Two runs over the same stream shed the
// same events.
package shed

import (
	"fmt"
	"time"

	"acep/internal/event"
	"acep/internal/pattern"
	"acep/internal/stats"
)

// Budget sets the capacity targets the load monitor measures against.
// Zero-valued dimensions are unbudgeted (never contribute to load). With
// no dimension set the shedder never activates.
type Budget struct {
	// LivePMs is the target number of live partial matches across the
	// engine (the memory/work proxy the paper's cost models minimize).
	LivePMs int
	// EventsPerSec is the target arrival rate in events per logical
	// second, measured over Config.RateWindow of stream time.
	EventsPerSec float64
	// Queue is the target ingestion-queue depth in batches; meaningful
	// only when a queue probe is attached (the shard layer does this).
	Queue int
	// QueueWait is the target p99 ingestion-queue wait: the latency
	// budget. Meaningful only when a latency probe is attached — the
	// shard layer wires it to each worker's per-event queue-wait
	// estimator (Metrics.QueueWait) — so the monitor activates when
	// events wait too long, even while rate and depth look healthy
	// (e.g. a slow shard behind a generous queue).
	QueueWait time.Duration
}

// unset reports whether no budget dimension is configured.
func (b Budget) unset() bool {
	return b.LivePMs <= 0 && b.EventsPerSec <= 0 && b.Queue <= 0 && b.QueueWait <= 0
}

// Probe is the engine-side introspection surface the shedder samples at
// every refresh. The detection engines expose their live partial-match
// state through it; see engine.Engine.
type Probe interface {
	// LivePMs reports the current number of live partial matches.
	LivePMs() int
	// HotTypes marks (in the given slice, indexed by event type) every
	// type that could extend a live partial match right now.
	HotTypes(mark []bool)
	// HotKeys calls add with key(ev) for one representative event of
	// every live partial match; key extracts the partition-key value.
	HotKeys(key func(*event.Event) uint64, add func(uint64))
	// LastSnapshots returns the most recent statistics snapshot of every
	// (sub-)pattern's adaptation loop, aligned with the pattern's
	// disjuncts (one entry for a non-OR pattern); entries are nil before
	// that loop's first check.
	LastSnapshots() []*stats.Snapshot
}

// Config assembles a Shedder. The zero value disables shedding (nil
// Policy). Config is a pure value: the engine layers copy it per shard,
// and each copy builds its own Shedder; Policy implementations are
// stateless and safely shared (their decision state lives in the View).
type Config struct {
	// Policy decides which events to drop while overloaded; nil disables
	// the layer entirely.
	Policy Policy
	// Budget sets the load targets. Shedding activates when any budgeted
	// dimension reaches utilization 1.
	Budget Budget
	// RefreshEvery is the event cadence of load sampling, hot-set
	// rebuilds and policy refreshes (default 128). Smaller values track
	// live state more closely at higher introspection cost.
	RefreshEvery int
	// RateWindow is the logical-time window of the arrival-rate meter
	// (default 1 stream second).
	RateWindow event.Time
	// Seed decorrelates the deterministic per-event drop draw between
	// engines sharing one stream (default 0).
	Seed uint64
	// Key extracts the partition-key value PatternAware protects; nil
	// disables key-level protection (type-level hotness still applies).
	// The sharded layer defaults it to the shard key.
	Key func(*event.Event) uint64
}

func (c Config) withDefaults() Config {
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 128
	}
	if c.RateWindow <= 0 {
		c.RateWindow = event.Second
	}
	return c
}

// View is the decision state a Shedder maintains for its Policy: the
// current load, the most recent hot sets and statistics, and the per-type
// drop probabilities the policy computed at its last Refresh. One View
// belongs to one Shedder (one engine); policies must keep all mutable
// state here so that a single Policy value can serve many shards.
type View struct {
	// Load is the current utilization; >= 1 means overloaded. Policies
	// are only consulted while overloaded.
	Load float64
	// Patterns lists the detected (sub-)patterns — every disjunct of an
	// OR pattern, or the pattern alone — and Snapshots the matching
	// statistics snapshots (entries nil before that loop's first check).
	Patterns  []*pattern.Pattern
	Snapshots []*stats.Snapshot
	// HotType[t] reports whether an event of type t could extend a live
	// partial match; sized by the largest type the pattern references.
	HotType []bool
	// HotKeys holds the partition-key values of live partial matches
	// (nil when no Key extractor is configured).
	HotKeys map[uint64]struct{}
	// Key extracts an event's partition-key value (nil if unset).
	Key func(*event.Event) uint64
	// Shares[t] is the observed arrival share of type t since the last
	// refresh (decayed); types beyond the slice have share 0.
	Shares []float64
	// DropProb[t] is the policy-computed drop probability for type t;
	// DefaultProb applies to types beyond the slice.
	DropProb    []float64
	DefaultProb float64
	// SeenTotal/SeenHot are rolling decision counts PatternAware uses to
	// compensate its drop rate for the protected fraction.
	SeenTotal, SeenHot float64
}

// Hot reports whether the event is protected by liveness: its type can
// extend a live partial match and — when a Key extractor is configured —
// its key occurs in one. The conjunction keeps the protected set sharp on
// keyed workloads: an event extends a live PM only if both its type is
// awaited and its entity has detection in flight; either test alone
// over-protects (every event of a frequent type, or every event of an
// active entity) and starves the shedder of droppable mass.
func (v *View) Hot(ev *event.Event) bool {
	if int(ev.Type) >= len(v.HotType) || !v.HotType[ev.Type] {
		return false
	}
	if v.Key == nil {
		return true
	}
	_, ok := v.HotKeys[v.Key(ev)]
	return ok
}

// Policy is a shedding decision function. Implementations must be
// stateless value types (all mutable state lives in the View) so that one
// Policy can be shared across shard engines.
type Policy interface {
	// Name identifies the policy in metrics and benchmark output.
	Name() string
	// Refresh recomputes the policy's decision state (typically
	// View.DropProb) from the freshly sampled view. Called every
	// Config.RefreshEvery events while overloaded.
	Refresh(v *View)
	// Drop decides one event; rnd is a deterministic uniform draw in
	// [0,1). Only consulted while overloaded, and never for events of
	// negated pattern positions.
	Drop(ev *event.Event, v *View, rnd float64) bool
}

// Shedder fronts one engine's Process path: Admit decides every event,
// refreshing load and hot-set state at the configured cadence. Not safe
// for concurrent use; each engine drives its own.
type Shedder struct {
	cfg   Config
	probe Probe
	view  View

	protected []bool // types at negated positions: never dropped
	rate      rateMeter
	queue     func() (depth, capacity int) // optional, set by the shard layer
	latency   func() float64               // optional p99 queue-wait in nanos, set by the shard layer

	counts       []uint64 // per-type arrivals since last refresh
	total        uint64
	sinceRefresh int
	primed       bool

	shed, kept uint64
}

// New builds a shedder for the pattern, sampling the given probe. A nil
// policy yields a nil shedder (callers treat nil as "no shedding").
func New(cfg Config, pat *pattern.Pattern, probe Probe) (*Shedder, error) {
	if cfg.Policy == nil {
		return nil, nil
	}
	if pat == nil {
		return nil, fmt.Errorf("shed: nil pattern")
	}
	if probe == nil {
		return nil, fmt.Errorf("shed: nil probe")
	}
	if cfg.Budget.unset() {
		return nil, fmt.Errorf("shed: policy %q configured without any budget; set Budget.LivePMs, EventsPerSec or Queue", cfg.Policy.Name())
	}
	cfg = cfg.withDefaults()
	subs := []*pattern.Pattern{pat}
	if pat.Op == pattern.Or {
		subs = pat.Subs
	}
	maxType := 0
	for _, sub := range subs {
		for _, pos := range sub.Positions {
			if pos.Type > maxType {
				maxType = pos.Type
			}
		}
	}
	s := &Shedder{
		cfg:       cfg,
		probe:     probe,
		protected: make([]bool, maxType+1),
		rate:      rateMeter{window: cfg.RateWindow},
		counts:    make([]uint64, maxType+1),
	}
	for _, sub := range subs {
		for _, pos := range sub.Positions {
			if pos.Neg {
				s.protected[pos.Type] = true
			}
		}
	}
	s.view = View{
		Patterns: subs,
		HotType:  make([]bool, maxType+1),
		Key:      cfg.Key,
		Shares:   make([]float64, maxType+1),
		DropProb: make([]float64, maxType+1),
	}
	return s, nil
}

// SetQueueProbe attaches the ingestion-queue depth source (the shard
// layer's per-worker channel). Must be set before the first Admit.
func (s *Shedder) SetQueueProbe(f func() (depth, capacity int)) { s.queue = f }

// SetLatencyProbe attaches the queue-wait p99 source in nanoseconds (the
// shard layer's per-worker estimator). Must be set before the first
// Admit.
func (s *Shedder) SetLatencyProbe(f func() float64) { s.latency = f }

// Policy returns the configured policy.
func (s *Shedder) Policy() Policy { return s.cfg.Policy }

// grow extends the type-indexed state to cover types beyond the
// pattern's (streams routinely carry types no position references, and
// those are exactly the mass the utility policies shed first).
func (s *Shedder) grow(n int) {
	for len(s.counts) < n {
		s.counts = append(s.counts, 0)
	}
	v := &s.view
	for len(v.Shares) < n {
		v.Shares = append(v.Shares, 0)
	}
	for len(v.DropProb) < n {
		v.DropProb = append(v.DropProb, v.DefaultProb)
	}
	for len(v.HotType) < n {
		v.HotType = append(v.HotType, false)
	}
}

// Admit decides one event: true to process it, false to shed it. The
// caller must invoke Admit exactly once per arriving event, in stream
// order.
func (s *Shedder) Admit(ev *event.Event) bool {
	s.rate.observe(ev.TS)
	if int(ev.Type) >= len(s.counts) {
		s.grow(int(ev.Type) + 1)
	}
	s.counts[ev.Type]++
	s.total++
	s.sinceRefresh++
	if !s.primed || s.sinceRefresh >= s.cfg.RefreshEvery {
		s.refresh()
	}
	if s.view.Load < 1 {
		s.kept++
		return true
	}
	if int(ev.Type) < len(s.protected) && s.protected[ev.Type] {
		s.kept++
		return true
	}
	if s.cfg.Policy.Drop(ev, &s.view, uniform(ev.Seq, s.cfg.Seed)) {
		s.shed++
		return false
	}
	s.kept++
	return true
}

// refresh samples load and, when overloaded, rebuilds the hot sets and
// lets the policy recompute its decision state.
func (s *Shedder) refresh() {
	s.primed = true
	s.sinceRefresh = 0
	s.view.Load = s.load()
	// Fold the arrival counts into decayed shares so RateUtility sees
	// every type's mass (the statistics snapshot only covers pattern
	// positions).
	if s.total > 0 {
		for t := range s.view.Shares {
			obs := float64(s.counts[t]) / float64(s.total)
			s.view.Shares[t] = 0.5*obs + 0.5*s.view.Shares[t]
			s.counts[t] = 0
		}
		s.total = 0
	}
	if s.view.Load < 1 {
		return
	}
	s.view.Snapshots = s.probe.LastSnapshots()
	for t := range s.view.HotType {
		s.view.HotType[t] = false
	}
	s.probe.HotTypes(s.view.HotType)
	if s.view.Key != nil {
		s.view.HotKeys = make(map[uint64]struct{})
		s.probe.HotKeys(s.view.Key, func(k uint64) {
			s.view.HotKeys[k] = struct{}{}
		})
	}
	s.cfg.Policy.Refresh(&s.view)
}

// load reduces the budgeted dimensions to one utilization figure: the
// maximum of the per-dimension utilizations.
func (s *Shedder) load() float64 {
	u := 0.0
	if s.cfg.Budget.LivePMs > 0 {
		if v := float64(s.probe.LivePMs()) / float64(s.cfg.Budget.LivePMs); v > u {
			u = v
		}
	}
	if s.cfg.Budget.EventsPerSec > 0 {
		if v := s.rate.rate / s.cfg.Budget.EventsPerSec; v > u {
			u = v
		}
	}
	if s.cfg.Budget.Queue > 0 && s.queue != nil {
		depth, _ := s.queue()
		if v := float64(depth) / float64(s.cfg.Budget.Queue); v > u {
			u = v
		}
	}
	if s.cfg.Budget.QueueWait > 0 && s.latency != nil {
		if v := s.latency() / float64(s.cfg.Budget.QueueWait); v > u {
			u = v
		}
	}
	return u
}

// Shed reports the number of events dropped so far.
func (s *Shedder) Shed() uint64 { return s.shed }

// Kept reports the number of events admitted so far.
func (s *Shedder) Kept() uint64 { return s.kept }

// Load reports the utilization measured at the last refresh.
func (s *Shedder) Load() float64 { return s.view.Load }

// rateMeter measures the logical arrival rate (events per stream second)
// over consecutive buckets of the configured window.
type rateMeter struct {
	window  event.Time
	start   event.Time
	count   int
	started bool
	rate    float64 // last completed bucket
}

func (r *rateMeter) observe(ts event.Time) {
	if !r.started {
		r.started = true
		r.start = ts
	}
	if ts-r.start >= r.window {
		r.rate = float64(r.count) * float64(event.Second) / float64(ts-r.start)
		r.start = ts
		r.count = 0
	}
	r.count++
}

// uniform derives a deterministic uniform draw in [0,1) from an event's
// sequence number (splitmix64 finalizer over seq^seed).
func uniform(seq, seed uint64) float64 {
	x := seq ^ seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
