package shed

import (
	"sort"

	"acep/internal/event"
)

// Tenancy isolation: every pattern belongs to a tenant, and each tenant
// may carry a token-bucket budget over the events evaluated on its
// behalf. A tenant that exhausts its budget has its patterns' input shed
// *before* any global overload policy engages, so one noisy tenant's
// pattern set cannot crowd out the rest of the cluster — global shedding
// (the Shedder above) stays the backstop for aggregate overload.
//
// Like every other decision in this package, admission is a
// deterministic function of the event stream: buckets refill by logical
// (timestamp) time, not wall clock, so two runs over the same stream
// gate the same events. Note the corollary for replay: a freshly built
// gate starts with full buckets, so a stream replayed from a journal
// mid-run (migration, failover) re-decides admission from that state —
// exactly the precedent global shedding sets, which is why the cluster's
// byte-identity guarantees are stated for unbudgeted tenants.

// TenantBudget is a per-tenant token bucket: Rate tokens per logical
// second accrue up to Burst, and each admitted event costs one token.
type TenantBudget struct {
	// Rate is the sustained budget in events per logical second;
	// <= 0 means the tenant is unbudgeted (always admitted).
	Rate float64
	// Burst is the bucket capacity in events; <= 0 defaults to Rate.
	Burst float64
}

// TenantStat is one tenant's admission accounting.
type TenantStat struct {
	Tenant   uint32
	Admitted uint64
	Shed     uint64
}

// Recall is the tenant's admitted fraction — the recall proxy surfaced
// in cluster metrics (a k-event match needs all k constituents admitted,
// so per-pattern recall is roughly this fraction raised to the pattern
// size; see Metrics.RecallEstimate).
func (t TenantStat) Recall() float64 {
	total := t.Admitted + t.Shed
	if total == 0 {
		return 1
	}
	return float64(t.Admitted) / float64(total)
}

// tenantState is one tenant's live bucket.
type tenantState struct {
	budget   TenantBudget
	tokens   float64
	last     event.Time
	started  bool
	admitted uint64
	shed     uint64
}

// TenantGate admits or sheds events per tenant. Not safe for concurrent
// use; each evaluator (shard worker) drives its own gate, so budgets are
// per-evaluator — callers hosting an N-way sharded tenant should divide
// the tenant's global budget by N.
type TenantGate struct {
	states map[uint32]*tenantState
}

// NewTenantGate builds a gate from the given budgets. Tenants absent
// from the map are unbudgeted but still accounted once observed.
func NewTenantGate(budgets map[uint32]TenantBudget) *TenantGate {
	g := &TenantGate{states: make(map[uint32]*tenantState)}
	for id, b := range budgets {
		g.SetBudget(id, b)
	}
	return g
}

// SetBudget installs or replaces a tenant's budget. The bucket restarts
// full (deterministic for a given install point in the stream).
func (g *TenantGate) SetBudget(tenant uint32, b TenantBudget) {
	if b.Burst <= 0 {
		b.Burst = b.Rate
	}
	st := g.state(tenant)
	st.budget = b
	st.tokens = b.Burst
	st.started = false
}

// RemoveBudget lifts a tenant's budget; accounting continues.
func (g *TenantGate) RemoveBudget(tenant uint32) {
	g.state(tenant).budget = TenantBudget{}
}

func (g *TenantGate) state(tenant uint32) *tenantState {
	st := g.states[tenant]
	if st == nil {
		st = &tenantState{}
		g.states[tenant] = st
	}
	return st
}

// Admit decides one event for one tenant: true to evaluate it on the
// tenant's patterns. Callers must invoke Admit exactly once per arriving
// event per hosted tenant, in stream order (each call costs the tenant
// one token when budgeted).
func (g *TenantGate) Admit(tenant uint32, ts event.Time) bool {
	st := g.state(tenant)
	if st.budget.Rate <= 0 {
		st.admitted++
		return true
	}
	if !st.started {
		st.started = true
		st.last = ts
	}
	if ts > st.last {
		st.tokens += st.budget.Rate * float64(ts-st.last) / float64(event.Second)
		if st.tokens > st.budget.Burst {
			st.tokens = st.budget.Burst
		}
		st.last = ts
	}
	if st.tokens >= 1 {
		st.tokens--
		st.admitted++
		return true
	}
	st.shed++
	return false
}

// Stats reports every observed tenant's accounting, ordered by tenant id.
func (g *TenantGate) Stats() []TenantStat {
	out := make([]TenantStat, 0, len(g.states))
	for id, st := range g.states {
		out = append(out, TenantStat{Tenant: id, Admitted: st.admitted, Shed: st.shed})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
