package pattern

import (
	"math"

	"acep/internal/event"
)

// Columnar unary evaluation: batch decoders materialize events into arena
// chunks whose attribute blocks sit back to back (event.Span), so the
// per-position CUnary predicates can sweep one attribute across a whole
// run with stride arithmetic over a flat []float64 instead of chasing
// per-event Attrs slices. The result is a per-event position mask the
// engines consult in place of UnaryOk.
//
// Mask layout: bit p (0 ≤ p ≤ 30) is set iff position p's unary
// predicates all pass for the event; MaskValid (bit 31) marks the mask as
// populated, so a zero mask still means "not precomputed" and engines
// fall back to per-event UnaryOk. Patterns with 32 or more positions are
// not mask-scannable (MaskScannable reports false) and always use the
// per-event path.

// MaskValid flags a unary mask as populated; without it a mask carries no
// information and engines evaluate predicates per event.
const MaskValid uint32 = 1 << 31

// MaskScannable reports whether the pattern's positions fit a 32-bit
// unary mask (bit 31 is reserved for MaskValid).
func (p *Pattern) MaskScannable() bool { return len(p.Positions) < 32 }

// MaskOk reports whether position p's unary predicates passed in the
// populated mask m. Meaningful only when m&MaskValid != 0.
func MaskOk(m uint32, p int) bool { return m&(1<<uint(p)) != 0 }

// ScanUnarySpan evaluates every position's compiled unary predicates over
// one columnar run, writing per-event position masks. masks is indexed by
// batch position: entries First..First+N-1 are overwritten with MaskValid
// plus one bit per accepting position whose predicates all pass.
//
// The predicate-evaluation count added to evals is exactly what the
// equivalent per-event UnaryOk calls would report: predicate k of a
// position is evaluated only for events that passed predicates 0..k-1
// (the mask bit doubles as the short-circuit "still passing" flag, so
// later predicates skip already-failed events).
func (p *Pattern) ScanUnarySpan(s *event.Span, masks []uint32, evals *uint64) {
	for i := 0; i < s.N; i++ {
		masks[s.First+i] = MaskValid
	}
	for _, pos := range p.PositionsOfType(s.Type) {
		preds := p.unaryC[pos]
		bit := uint32(1) << uint(pos)
		for i := 0; i < s.N; i++ {
			masks[s.First+i] |= bit
		}
		for k := range preds {
			cu := &preds[k]
			if cu.Attr >= s.Stride {
				// Malformed input (fewer attributes than the pattern
				// expects): take the per-event path, which fails with
				// the same bounds panic UnaryOk would.
				scanPredScalar(cu, s, bit, masks, evals)
				continue
			}
			scanPred(cu, s, bit, masks, evals)
		}
	}
}

// scanPred sweeps one compiled predicate down a run's attribute column,
// clearing bit in the mask of every still-passing event that fails it.
// The comparison switch is hoisted out of the loop so each case is a
// tight stride scan.
func scanPred(cu *CUnary, s *event.Span, bit uint32, masks []uint32, evals *uint64) {
	attrs, stride, base := s.Attrs, s.Stride, s.First
	a, c := cu.Attr, cu.C
	n := uint64(0)
	switch cu.Op {
	case LT:
		for i := 0; i < s.N; i++ {
			if masks[base+i]&bit != 0 {
				n++
				if !(attrs[i*stride+a] < c) {
					masks[base+i] &^= bit
				}
			}
		}
	case LE:
		for i := 0; i < s.N; i++ {
			if masks[base+i]&bit != 0 {
				n++
				if !(attrs[i*stride+a] <= c) {
					masks[base+i] &^= bit
				}
			}
		}
	case GT:
		for i := 0; i < s.N; i++ {
			if masks[base+i]&bit != 0 {
				n++
				if !(attrs[i*stride+a] > c) {
					masks[base+i] &^= bit
				}
			}
		}
	case GE:
		for i := 0; i < s.N; i++ {
			if masks[base+i]&bit != 0 {
				n++
				if !(attrs[i*stride+a] >= c) {
					masks[base+i] &^= bit
				}
			}
		}
	case EQ:
		for i := 0; i < s.N; i++ {
			if masks[base+i]&bit != 0 {
				n++
				if !(attrs[i*stride+a] == c) {
					masks[base+i] &^= bit
				}
			}
		}
	case NE:
		for i := 0; i < s.N; i++ {
			if masks[base+i]&bit != 0 {
				n++
				if !(attrs[i*stride+a] != c) {
					masks[base+i] &^= bit
				}
			}
		}
	case AbsDiffLT:
		for i := 0; i < s.N; i++ {
			if masks[base+i]&bit != 0 {
				n++
				if !(math.Abs(attrs[i*stride+a]) < c) {
					masks[base+i] &^= bit
				}
			}
		}
	default:
		for i := 0; i < s.N; i++ {
			if masks[base+i]&bit != 0 {
				n++
				masks[base+i] &^= bit
			}
		}
	}
	*evals += n
}

// scanPredScalar is the bounds-faithful fallback for a predicate whose
// attribute index exceeds the run's stride.
func scanPredScalar(cu *CUnary, s *event.Span, bit uint32, masks []uint32, evals *uint64) {
	for i := 0; i < s.N; i++ {
		if masks[s.First+i]&bit == 0 {
			continue
		}
		*evals++
		ev := event.Event{Attrs: s.Attrs[i*s.Stride : (i+1)*s.Stride]}
		if !cu.Ok(&ev) {
			masks[s.First+i] &^= bit
		}
	}
}

// ScanUnarySpans runs ScanUnarySpan over every span of a batch, returning
// the predicate evaluations performed. masks must cover the whole batch.
func (p *Pattern) ScanUnarySpans(spans []event.Span, masks []uint32) uint64 {
	var evals uint64
	for i := range spans {
		p.ScanUnarySpan(&spans[i], masks, &evals)
	}
	return evals
}
