package pattern

import (
	"strings"
	"testing"

	"acep/internal/event"
)

func testSchema(t testing.TB) *event.Schema {
	t.Helper()
	s := event.NewSchema()
	s.MustAddType("A", "x", "y")
	s.MustAddType("B", "x", "y")
	s.MustAddType("C", "x", "y")
	s.MustAddType("D", "x", "y")
	return s
}

func TestBuilderSeq(t *testing.T) {
	s := testSchema(t)
	b := NewBuilder(s, Seq, 10*event.Minute)
	a := b.EventName("A")
	bb := b.EventName("B")
	c := b.EventName("C")
	b.WhereEq(a, "x", bb, "x")
	b.Where(bb, "y", LT, c, "y", 0)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Op != Seq || p.NumPositions() != 3 || p.Size() != 3 {
		t.Fatalf("bad pattern %v", p)
	}
	if got := len(p.Core()); got != 3 {
		t.Fatalf("core size = %d; want 3", got)
	}
	if got := p.PredsBetween(a, bb); len(got) != 1 {
		t.Fatalf("PredsBetween(a,b) = %v", got)
	}
	if got := p.PredsBetween(bb, a); len(got) != 1 {
		t.Fatal("PredsBetween must be order-insensitive")
	}
	if got := p.PredsBetween(a, c); len(got) != 0 {
		t.Fatalf("PredsBetween(a,c) = %v; want empty", got)
	}
}

func TestBuilderNegKleene(t *testing.T) {
	s := testSchema(t)
	b := NewBuilder(s, Seq, event.Minute)
	a := b.EventName("A")
	n := b.EventName("B")
	k := b.EventName("C")
	b.Negate(n)
	b.Kleene(k)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Size() != 2 { // A + Kleene C; negated B excluded
		t.Fatalf("Size = %d; want 2", p.Size())
	}
	core := p.Core()
	if len(core) != 1 || core[0] != a {
		t.Fatalf("Core = %v; want [%d]", core, a)
	}
	if !p.Positions[n].Neg || !p.Positions[k].Kleene {
		t.Fatal("modifiers not recorded")
	}
}

func TestBuilderErrors(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		name  string
		build func() (*Pattern, error)
	}{
		{"zero window", func() (*Pattern, error) {
			b := NewBuilder(s, Seq, 0)
			b.EventName("A")
			return b.Build()
		}},
		{"no positions", func() (*Pattern, error) {
			return NewBuilder(s, Seq, event.Minute).Build()
		}},
		{"unknown type name", func() (*Pattern, error) {
			b := NewBuilder(s, Seq, event.Minute)
			b.EventName("Nope")
			return b.Build()
		}},
		{"unknown attr", func() (*Pattern, error) {
			b := NewBuilder(s, Seq, event.Minute)
			a := b.EventName("A")
			b.WhereConst(a, "nope", LT, 1)
			return b.Build()
		}},
		{"neg+kleene", func() (*Pattern, error) {
			b := NewBuilder(s, Seq, event.Minute)
			a := b.EventName("A")
			b.EventName("B")
			b.Negate(a).Kleene(a)
			return b.Build()
		}},
		{"all residual", func() (*Pattern, error) {
			b := NewBuilder(s, Seq, event.Minute)
			a := b.EventName("A")
			b.Negate(a)
			return b.Build()
		}},
		{"negate out of range", func() (*Pattern, error) {
			b := NewBuilder(s, Seq, event.Minute)
			b.EventName("A")
			b.Negate(5)
			return b.Build()
		}},
		{"kleene out of range", func() (*Pattern, error) {
			b := NewBuilder(s, Seq, event.Minute)
			b.EventName("A")
			b.Kleene(-1)
			return b.Build()
		}},
		{"or via builder", func() (*Pattern, error) {
			b := NewBuilder(s, Or, event.Minute)
			b.EventName("A")
			return b.Build()
		}},
		{"bad pred position", func() (*Pattern, error) {
			b := NewBuilder(s, Seq, event.Minute)
			b.EventName("A")
			b.WherePred(Pred{L: 0, R: 7, Op: LT})
			return b.Build()
		}},
		{"self pred", func() (*Pattern, error) {
			b := NewBuilder(s, Seq, event.Minute)
			b.EventName("A")
			b.WherePred(Pred{L: 0, R: 0, Op: LT})
			return b.Build()
		}},
	}
	for _, tc := range cases {
		if _, err := tc.build(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPredEval(t *testing.T) {
	el := &event.Event{Attrs: []float64{5, 2}}
	er := &event.Event{Attrs: []float64{3, 7}}
	cases := []struct {
		p    Pred
		want bool
	}{
		{Pred{L: 0, AttrL: 0, R: 1, AttrR: 0, Op: GT}, true},        // 5 > 3
		{Pred{L: 0, AttrL: 0, R: 1, AttrR: 0, Op: LT}, false},       // 5 < 3
		{Pred{L: 0, AttrL: 0, R: 1, AttrR: 0, Op: LT, C: 3}, true},  // 5 < 3+3
		{Pred{L: 0, AttrL: 1, R: 1, AttrR: 1, Op: LE, C: -5}, true}, // 2 <= 7-5
		{Pred{L: 0, AttrL: 0, R: 1, AttrR: 0, Op: EQ, C: 2}, true},  // 5 == 3+2
		{Pred{L: 0, AttrL: 0, R: 1, AttrR: 0, Op: NE}, true},
		{Pred{L: 0, AttrL: 0, R: 1, AttrR: 0, Op: GE, C: 2}, true},        // 5 >= 5
		{Pred{L: 0, AttrL: 0, R: 1, AttrR: 0, Op: AbsDiffLT, C: 3}, true}, // |5-3|<3
		{Pred{L: 0, AttrL: 0, R: 1, AttrR: 0, Op: AbsDiffLT, C: 2}, false},
		{Pred{L: 0, AttrL: 0, R: Unary, Op: GT, C: 4}, true},  // 5 > 4
		{Pred{L: 0, AttrL: 1, R: Unary, Op: EQ, C: 2}, true},  // 2 == 2
		{Pred{L: 0, AttrL: 1, R: Unary, Op: LT, C: 1}, false}, // 2 < 1
		{Pred{L: 0, AttrL: 0, R: 1, AttrR: 0, Op: CmpOp(99)}, false},
	}
	for i, tc := range cases {
		if got := tc.p.Eval(el, er); got != tc.want {
			t.Errorf("case %d (%s): got %v want %v", i, tc.p, got, tc.want)
		}
	}
}

func TestPredIsUnary(t *testing.T) {
	if (Pred{R: Unary}).IsUnary() != true {
		t.Error("unary not detected")
	}
	if (Pred{R: 2}).IsUnary() != false {
		t.Error("binary misdetected")
	}
}

func TestNewOr(t *testing.T) {
	s := testSchema(t)
	mk := func(w event.Time, types ...string) *Pattern {
		b := NewBuilder(s, Seq, w)
		for _, n := range types {
			b.EventName(n)
		}
		return b.MustBuild()
	}
	p, err := NewOr(mk(event.Minute, "A", "B"), mk(2*event.Minute, "C", "D", "A"))
	if err != nil {
		t.Fatalf("NewOr: %v", err)
	}
	if p.Op != Or || len(p.Subs) != 2 {
		t.Fatalf("bad OR pattern: %v", p)
	}
	if p.Window != 2*event.Minute {
		t.Fatalf("OR window = %d; want max of subs", p.Window)
	}
	if p.Size() != 3 {
		t.Fatalf("OR size = %d; want 3 (max sub)", p.Size())
	}

	if _, err := NewOr(mk(event.Minute, "A")); err == nil {
		t.Error("single-sub OR accepted")
	}
	if _, err := NewOr(mk(event.Minute, "A"), nil); err == nil {
		t.Error("nil sub accepted")
	}
	nested, _ := NewOr(mk(event.Minute, "A"), mk(event.Minute, "B"))
	if _, err := NewOr(nested, mk(event.Minute, "C")); err == nil {
		t.Error("nested OR accepted")
	}
}

func TestPatternString(t *testing.T) {
	s := testSchema(t)
	b := NewBuilder(s, Seq, event.Minute)
	a := b.EventName("A")
	n := b.EventName("B")
	k := b.EventName("C")
	b.Negate(n).Kleene(k)
	b.WhereConst(a, "x", GT, 3)
	p := b.MustBuild()
	str := p.String()
	for _, want := range []string{"SEQ(", "~T1", "T2*", "WHERE", "WITHIN"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q; missing %q", str, want)
		}
	}
	or, _ := NewOr(p, p)
	if !strings.Contains(or.String(), "OR(") {
		t.Errorf("OR String() = %q", or.String())
	}
}

func TestPredsAtAndTouching(t *testing.T) {
	s := testSchema(t)
	b := NewBuilder(s, And, event.Minute)
	a := b.EventName("A")
	bb := b.EventName("B")
	b.WhereConst(a, "x", GT, 0)
	b.WhereEq(a, "x", bb, "x")
	p := b.MustBuild()
	if got := p.PredsAt(a); len(got) != 1 || !p.Preds[got[0]].IsUnary() {
		t.Fatalf("PredsAt(a) = %v", got)
	}
	if got := p.PredsAt(bb); len(got) != 0 {
		t.Fatalf("PredsAt(b) = %v; want empty", got)
	}
	if got := p.PredsTouching(a); len(got) != 2 {
		t.Fatalf("PredsTouching(a) = %v; want 2 preds", got)
	}
	if got := p.PredsTouching(bb); len(got) != 1 {
		t.Fatalf("PredsTouching(b) = %v; want 1 pred", got)
	}
}

func TestOpAndCmpOpString(t *testing.T) {
	if Seq.String() != "SEQ" || And.String() != "AND" || Or.String() != "OR" {
		t.Error("Op strings wrong")
	}
	if !strings.Contains(Op(42).String(), "42") {
		t.Error("unknown Op string")
	}
	ops := map[CmpOp]string{LT: "<", LE: "<=", GT: ">", GE: ">=", EQ: "==", NE: "!=", AbsDiffLT: "|-|<"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("CmpOp %d string = %q want %q", op, op.String(), want)
		}
	}
	if !strings.Contains(CmpOp(42).String(), "42") {
		t.Error("unknown CmpOp string")
	}
}

func TestBuilderFirstErrorWins(t *testing.T) {
	s := testSchema(t)
	b := NewBuilder(s, Seq, event.Minute)
	b.EventName("Nope")  // first error
	b.EventName("Nope2") // second error
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "Nope") || strings.Contains(err.Error(), "Nope2") {
		t.Fatalf("err = %v; want first error only", err)
	}
}
