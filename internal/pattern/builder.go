package pattern

import (
	"fmt"

	"acep/internal/event"
)

// Builder assembles a Pattern incrementally. Methods record errors and
// return the builder for chaining; Build reports the first error.
//
//	b := pattern.NewBuilder(schema, pattern.Seq, 10*event.Minute)
//	a := b.Event(typeA)
//	c := b.Event(typeC)
//	b.WhereEq(a, "person_id", c, "person_id")
//	p, err := b.Build()
type Builder struct {
	schema *event.Schema
	op     Op
	window event.Time
	pos    []Position
	preds  []Pred
	err    error
}

// NewBuilder starts a pattern with the given root operator (Seq or And)
// and window. Use NewOr to combine built patterns disjunctively.
func NewBuilder(s *event.Schema, op Op, window event.Time) *Builder {
	b := &Builder{schema: s, op: op, window: window}
	if op == Or {
		b.fail(fmt.Errorf("pattern: use NewOr for disjunctions"))
	}
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Event appends a primitive event position of the given type and returns
// its position index.
func (b *Builder) Event(typeID int) int {
	b.pos = append(b.pos, Position{Type: typeID})
	return len(b.pos) - 1
}

// EventName appends a position of the named type.
func (b *Builder) EventName(name string) int {
	id, ok := b.schema.TypeByName(name)
	if !ok {
		b.fail(fmt.Errorf("pattern: unknown event type %q", name))
		return b.Event(0)
	}
	return b.Event(id)
}

// Negate marks position i as negated.
func (b *Builder) Negate(i int) *Builder {
	if i < 0 || i >= len(b.pos) {
		b.fail(fmt.Errorf("pattern: Negate(%d) out of range", i))
		return b
	}
	b.pos[i].Neg = true
	return b
}

// Kleene marks position i as a Kleene-closure position.
func (b *Builder) Kleene(i int) *Builder {
	if i < 0 || i >= len(b.pos) {
		b.fail(fmt.Errorf("pattern: Kleene(%d) out of range", i))
		return b
	}
	b.pos[i].Kleene = true
	return b
}

func (b *Builder) attr(pos int, name string) int {
	if pos < 0 || pos >= len(b.pos) {
		b.fail(fmt.Errorf("pattern: position %d out of range", pos))
		return 0
	}
	idx, ok := b.schema.AttrIndex(b.pos[pos].Type, name)
	if !ok {
		b.fail(fmt.Errorf("pattern: type %q has no attribute %q",
			b.schema.TypeName(b.pos[pos].Type), name))
		return 0
	}
	return idx
}

// Where adds a binary predicate: pos l attribute la  op  pos r attribute
// ra + c.
func (b *Builder) Where(l int, la string, op CmpOp, r int, ra string, c float64) *Builder {
	b.preds = append(b.preds, Pred{
		L: l, AttrL: b.attr(l, la),
		R: r, AttrR: b.attr(r, ra),
		Op: op, C: c,
	})
	return b
}

// WhereEq adds an exact equality predicate between two attributes.
func (b *Builder) WhereEq(l int, la string, r int, ra string) *Builder {
	return b.Where(l, la, EQ, r, ra, 0)
}

// WhereConst adds a unary predicate: pos l attribute la  op  c.
func (b *Builder) WhereConst(l int, la string, op CmpOp, c float64) *Builder {
	b.preds = append(b.preds, Pred{
		L: l, AttrL: b.attr(l, la),
		R: Unary, Op: op, C: c,
	})
	return b
}

// WherePred appends a fully specified predicate (attribute indices rather
// than names). Useful for generated patterns.
func (b *Builder) WherePred(p Pred) *Builder {
	b.preds = append(b.preds, p)
	return b
}

// Build compiles and validates the pattern.
func (b *Builder) Build() (*Pattern, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := &Pattern{
		Op:        b.op,
		Positions: append([]Position(nil), b.pos...),
		Preds:     append([]Pred(nil), b.preds...),
		Window:    b.window,
	}
	if err := p.finalize(b.schema); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for tests and examples.
func (b *Builder) MustBuild() *Pattern {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
