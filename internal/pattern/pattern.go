// Package pattern defines the declarative pattern language recognized by
// the engine: SASE-style patterns combining primitive event types with
// SEQ, AND and OR operators, negation and Kleene-closure modifiers,
// inter-event predicates, and a sliding time window.
//
// A pattern is assembled through a Builder and immutable after Build. The
// planner layers consume only the pattern's structure (positions, their
// types and modifiers, and which predicates connect which positions); the
// evaluation engines additionally use the predicates for match filtering.
//
// Positions and size. Each primitive event in the pattern occupies a
// position (0-based, in declaration order; for SEQ the declaration order
// is the required temporal order). Following the paper's terminology,
// "pattern size" counts positions including Kleene-closure positions and
// excluding negated positions. Negated and Kleene positions are excluded
// from evaluation plans ("core" positions are planned; the rest are
// residual constraints resolved at match emission).
package pattern

import (
	"fmt"
	"math"
	"strings"

	"acep/internal/event"
)

// Op is a pattern operator.
type Op int

const (
	// Seq requires the core events to occur in position order.
	Seq Op = iota
	// And requires all core events within the window, any order.
	And
	// Or is a disjunction of sub-patterns, each detected independently.
	Or
)

// String returns the SASE-style operator keyword.
func (o Op) String() string {
	switch o {
	case Seq:
		return "SEQ"
	case And:
		return "AND"
	case Or:
		return "OR"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Position describes one primitive event slot in a pattern.
type Position struct {
	// Type is the event type (schema index) accepted at this position.
	Type int
	// Neg marks the position as negated: a match is invalid if such an
	// event occurs in the position's temporal scope.
	Neg bool
	// Kleene marks the position as a Kleene-closure position: the match
	// carries all matching events in the temporal scope (at least one).
	Kleene bool
}

// CmpOp enumerates the comparison operators usable in predicates.
type CmpOp int

const (
	// LT is "left < right + C".
	LT CmpOp = iota
	// LE is "left <= right + C".
	LE
	// GT is "left > right + C".
	GT
	// GE is "left >= right + C".
	GE
	// EQ is exact equality "left == right + C".
	EQ
	// NE is "left != right + C".
	NE
	// AbsDiffLT is "|left - right| < C" (binary only).
	AbsDiffLT
)

// String returns the operator symbol.
func (c CmpOp) String() string {
	switch c {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "=="
	case NE:
		return "!="
	case AbsDiffLT:
		return "|-|<"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(c))
	}
}

// Unary marks the right-hand side of a predicate as absent: the left
// attribute is compared against the constant C alone.
const Unary = -1

// Pred is a predicate over one or two pattern positions. For a binary
// predicate the semantics are
//
//	ev[L].Attrs[AttrL]  Op  ev[R].Attrs[AttrR] + C
//
// and for a unary predicate (R == Unary)
//
//	ev[L].Attrs[AttrL]  Op  C.
//
// AbsDiffLT compares |left-right| (binary) or |left| (unary) against C.
type Pred struct {
	L, R         int // positions; R == Unary for unary predicates
	AttrL, AttrR int // attribute indices within the respective types
	Op           CmpOp
	C            float64
}

// IsUnary reports whether the predicate references a single position.
func (p Pred) IsUnary() bool { return p.R == Unary }

// Eval evaluates the predicate. For unary predicates er is ignored and may
// be nil.
func (p Pred) Eval(el, er *event.Event) bool {
	lv := el.Attrs[p.AttrL]
	var rv float64
	if !p.IsUnary() {
		rv = er.Attrs[p.AttrR]
	}
	switch p.Op {
	case LT:
		return lv < rv+p.C
	case LE:
		return lv <= rv+p.C
	case GT:
		return lv > rv+p.C
	case GE:
		return lv >= rv+p.C
	case EQ:
		return lv == rv+p.C
	case NE:
		return lv != rv+p.C
	case AbsDiffLT:
		return math.Abs(lv-rv) < p.C
	default:
		return false
	}
}

// String renders the predicate for diagnostics.
func (p Pred) String() string {
	if p.IsUnary() {
		return fmt.Sprintf("e%d.a%d %s %g", p.L, p.AttrL, p.Op, p.C)
	}
	if p.Op == AbsDiffLT {
		return fmt.Sprintf("|e%d.a%d - e%d.a%d| < %g", p.L, p.AttrL, p.R, p.AttrR, p.C)
	}
	if p.C == 0 {
		return fmt.Sprintf("e%d.a%d %s e%d.a%d", p.L, p.AttrL, p.Op, p.R, p.AttrR)
	}
	return fmt.Sprintf("e%d.a%d %s e%d.a%d%+g", p.L, p.AttrL, p.Op, p.R, p.AttrR, p.C)
}

// Pattern is an immutable compiled pattern. Construct with a Builder (or
// NewOr for disjunctions).
type Pattern struct {
	// Op is the root operator. For Or, only Subs and Window are set.
	Op Op
	// Positions lists the primitive event slots (empty for Or).
	Positions []Position
	// Preds lists all predicates (empty for Or; sub-pattern predicates
	// live in the sub-patterns).
	Preds []Pred
	// Window is the sliding time window: a match is valid iff
	// max(ts)-min(ts) <= Window.
	Window event.Time
	// Subs holds the disjuncts of an Or pattern.
	Subs []*Pattern

	core      []int   // indices of plannable positions
	predsAt   [][]int // predsAt[i]: indices into Preds touching position i
	unaryAt   [][]int // unaryAt[i]: indices of unary preds on position i
	pairPreds map[[2]int][]int

	// Compiled hot-path tables (see compile.go).
	byType [][]int     // event type -> positions accepting it
	unaryC [][]CUnary  // per position, fused unary predicate list
	pairC  []PairCheck // flat (new, old) ordered-pair checks
}

// NumPositions returns the number of declared positions.
func (p *Pattern) NumPositions() int { return len(p.Positions) }

// Core returns the indices of the plannable (non-negated, non-Kleene)
// positions, in declaration order. The returned slice is shared; callers
// must not modify it.
func (p *Pattern) Core() []int { return p.core }

// Size returns the pattern size per the paper's definition: positions
// including Kleene and excluding negated ones. For Or patterns it returns
// the maximum sub-pattern size.
func (p *Pattern) Size() int {
	if p.Op == Or {
		max := 0
		for _, s := range p.Subs {
			if n := s.Size(); n > max {
				max = n
			}
		}
		return max
	}
	n := 0
	for _, pos := range p.Positions {
		if !pos.Neg {
			n++
		}
	}
	return n
}

// PredsBetween returns the indices (into Preds) of the binary predicates
// connecting positions i and j (order-insensitive). The slice is shared.
func (p *Pattern) PredsBetween(i, j int) []int {
	if i > j {
		i, j = j, i
	}
	return p.pairPreds[[2]int{i, j}]
}

// PredsAt returns the indices of the unary predicates on position i. The
// slice is shared; callers must not modify it.
func (p *Pattern) PredsAt(i int) []int { return p.unaryAt[i] }

// PredsTouching returns indices of all predicates (unary or binary) that
// reference position i. The slice is shared.
func (p *Pattern) PredsTouching(i int) []int { return p.predsAt[i] }

// String renders the pattern in a SASE-like syntax.
func (p *Pattern) String() string {
	var b strings.Builder
	p.format(&b)
	return b.String()
}

func (p *Pattern) format(b *strings.Builder) {
	if p.Op == Or {
		b.WriteString("OR(")
		for i, s := range p.Subs {
			if i > 0 {
				b.WriteString("; ")
			}
			s.format(b)
		}
		fmt.Fprintf(b, ") WITHIN %d", p.Window)
		return
	}
	fmt.Fprintf(b, "%s(", p.Op)
	for i, pos := range p.Positions {
		if i > 0 {
			b.WriteString(", ")
		}
		if pos.Neg {
			b.WriteString("~")
		}
		fmt.Fprintf(b, "T%d", pos.Type)
		if pos.Kleene {
			b.WriteString("*")
		}
	}
	b.WriteString(")")
	if len(p.Preds) > 0 {
		b.WriteString(" WHERE ")
		for i, pr := range p.Preds {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(pr.String())
		}
	}
	fmt.Fprintf(b, " WITHIN %d", p.Window)
}

// finalize computes the derived lookup structures and validates the
// compiled pattern.
func (p *Pattern) finalize(s *event.Schema) error {
	if p.Op == Or {
		if len(p.Subs) < 2 {
			return fmt.Errorf("pattern: OR needs at least 2 sub-patterns, got %d", len(p.Subs))
		}
		if p.Window <= 0 {
			return fmt.Errorf("pattern: OR window must be positive")
		}
		for i, sub := range p.Subs {
			if sub == nil {
				return fmt.Errorf("pattern: OR sub-pattern %d is nil", i)
			}
			if sub.Op == Or {
				return fmt.Errorf("pattern: nested OR is not supported")
			}
		}
		return nil
	}
	if len(p.Positions) == 0 {
		return fmt.Errorf("pattern: no event positions declared")
	}
	if p.Window <= 0 {
		return fmt.Errorf("pattern: window must be positive, got %d", p.Window)
	}
	p.core = p.core[:0]
	for i, pos := range p.Positions {
		if pos.Neg && pos.Kleene {
			return fmt.Errorf("pattern: position %d is both negated and Kleene", i)
		}
		if s != nil && (pos.Type < 0 || pos.Type >= s.NumTypes()) {
			return fmt.Errorf("pattern: position %d has unknown type %d", i, pos.Type)
		}
		if !pos.Neg && !pos.Kleene {
			p.core = append(p.core, i)
		}
	}
	if len(p.core) == 0 {
		return fmt.Errorf("pattern: at least one non-negated, non-Kleene position required")
	}
	p.predsAt = make([][]int, len(p.Positions))
	p.unaryAt = make([][]int, len(p.Positions))
	p.pairPreds = make(map[[2]int][]int)
	residual := func(i int) bool { return p.Positions[i].Neg || p.Positions[i].Kleene }
	for k, pr := range p.Preds {
		if pr.L < 0 || pr.L >= len(p.Positions) {
			return fmt.Errorf("pattern: predicate %d references bad position %d", k, pr.L)
		}
		if s != nil {
			if pr.AttrL < 0 || pr.AttrL >= s.NumAttrs(p.Positions[pr.L].Type) {
				return fmt.Errorf("pattern: predicate %d references bad attribute %d of position %d", k, pr.AttrL, pr.L)
			}
		}
		p.predsAt[pr.L] = append(p.predsAt[pr.L], k)
		if pr.IsUnary() {
			p.unaryAt[pr.L] = append(p.unaryAt[pr.L], k)
			continue
		}
		if pr.R < 0 || pr.R >= len(p.Positions) || pr.R == pr.L {
			return fmt.Errorf("pattern: predicate %d references bad position pair (%d,%d)", k, pr.L, pr.R)
		}
		if residual(pr.L) && residual(pr.R) {
			return fmt.Errorf("pattern: predicate %d connects two negated/Kleene positions (%d,%d); residual positions may only be constrained against positive ones", k, pr.L, pr.R)
		}
		if s != nil {
			if pr.AttrR < 0 || pr.AttrR >= s.NumAttrs(p.Positions[pr.R].Type) {
				return fmt.Errorf("pattern: predicate %d references bad attribute %d of position %d", k, pr.AttrR, pr.R)
			}
		}
		p.predsAt[pr.R] = append(p.predsAt[pr.R], k)
		a, b := pr.L, pr.R
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		p.pairPreds[key] = append(p.pairPreds[key], k)
	}
	p.compile()
	return nil
}

// NewOr builds a disjunction of already-built sub-patterns. Each disjunct
// keeps its own window for evaluation; the Or window is the maximum and is
// used only for reporting.
func NewOr(subs ...*Pattern) (*Pattern, error) {
	p := &Pattern{Op: Or, Subs: subs}
	for _, s := range subs {
		if s != nil && s.Window > p.Window {
			p.Window = s.Window
		}
	}
	if err := p.finalize(nil); err != nil {
		return nil, err
	}
	return p, nil
}
