package pattern

import (
	"math"

	"acep/internal/event"
)

// This file is the pattern's compiled hot-path surface: flat lookup
// tables derived once in finalize so the engines' per-event inner loops
// run without map lookups, operand-orientation branches, or scans over
// positions that cannot match.
//
//   - PositionsOfType: event type -> positions accepting it, so Process
//     dispatches straight to candidate positions instead of scanning all
//     of them;
//   - Unary: per-position fused unary predicate list (CUnary), evaluated
//     without indirecting through Preds indices;
//   - Pair: per ordered (new, old) position pair, the temporal relation
//     the pattern operator imposes plus the connecting predicates with
//     operand orientation baked in (CPair), so extension checks never
//     branch on which side of a predicate the arriving event is.

// CUnary is a compiled unary predicate: Attr Op C over one event.
type CUnary struct {
	Attr int
	Op   CmpOp
	C    float64
}

// Ok evaluates the compiled unary predicate.
func (c *CUnary) Ok(e *event.Event) bool {
	v := e.Attrs[c.Attr]
	switch c.Op {
	case LT:
		return v < c.C
	case LE:
		return v <= c.C
	case GT:
		return v > c.C
	case GE:
		return v >= c.C
	case EQ:
		return v == c.C
	case NE:
		return v != c.C
	case AbsDiffLT:
		return math.Abs(v) < c.C
	default:
		return false
	}
}

// CPair is a compiled binary predicate oriented for one ordered position
// pair: the "new" event (the one being offered to a partial match) is
// always the left operand. Predicates whose declared left side is the
// other position are stored side-swapped — comparison operator mirrored
// and constant negated — so evaluation needs no orientation branch.
type CPair struct {
	AttrN, AttrO int // attribute on the new / other event
	Op           CmpOp
	C            float64
}

// Ok evaluates the compiled pair predicate with n as the new event.
func (c *CPair) Ok(n, o *event.Event) bool {
	nv := n.Attrs[c.AttrN]
	ov := o.Attrs[c.AttrO]
	switch c.Op {
	case LT:
		return nv < ov+c.C
	case LE:
		return nv <= ov+c.C
	case GT:
		return nv > ov+c.C
	case GE:
		return nv >= ov+c.C
	case EQ:
		return nv == ov+c.C
	case NE:
		return nv != ov+c.C
	case AbsDiffLT:
		return math.Abs(nv-ov) < c.C
	default:
		return false
	}
}

// Temporal relation the pattern operator imposes on an ordered position
// pair (new position vs. an already-assigned one).
const (
	// RelBefore: the new event must be strictly earlier (SEQ, new
	// position declared before the old one).
	RelBefore int8 = -1
	// RelNone: no order constraint (AND); the pair must still be two
	// distinct events.
	RelNone int8 = 0
	// RelAfter: the new event must be strictly later.
	RelAfter int8 = 1
)

// PairCheck is everything the engines evaluate when offering a new event
// at one position against an event already assigned at another: the
// temporal relation and the connecting predicates, pre-oriented.
type PairCheck struct {
	Rel   int8
	Preds []CPair
}

// Ok applies the check: temporal relation (which for strict relations
// also guarantees the two events are distinct) and all predicates, with
// n the new event and o the already-assigned one. The window constraint
// is NOT applied here — engines check it once per partial match against
// the match's timestamp span instead of once per pair. npreds counts
// predicate evaluations performed.
func (pc *PairCheck) Ok(n, o *event.Event, npreds *uint64) bool {
	switch pc.Rel {
	case RelBefore:
		if n.TS >= o.TS {
			return false
		}
	case RelAfter:
		if n.TS <= o.TS {
			return false
		}
	default:
		if n.Seq == o.Seq {
			return false
		}
	}
	for i := range pc.Preds {
		*npreds++
		if !pc.Preds[i].Ok(n, o) {
			return false
		}
	}
	return true
}

// PositionsOfType returns the positions (core and residual, in
// declaration order) that accept events of the given type. The slice is
// shared; callers must not modify it.
func (p *Pattern) PositionsOfType(t int) []int {
	if t < 0 || t >= len(p.byType) {
		return nil
	}
	return p.byType[t]
}

// Unary returns position i's compiled unary predicates. The slice is
// shared; callers must not modify it.
func (p *Pattern) Unary(i int) []CUnary { return p.unaryC[i] }

// UnaryOk evaluates position i's unary predicates against ev, counting
// evaluations in npreds.
func (p *Pattern) UnaryOk(i int, ev *event.Event, npreds *uint64) bool {
	for k := range p.unaryC[i] {
		*npreds++
		if !p.unaryC[i][k].Ok(ev) {
			return false
		}
	}
	return true
}

// Pair returns the compiled check for offering a new event at position
// newPos against an event already assigned at position oldPos. The
// result is shared and immutable.
func (p *Pattern) Pair(newPos, oldPos int) *PairCheck {
	return &p.pairC[newPos*len(p.Positions)+oldPos]
}

// mirror returns the swapped-side form of a comparison: l Op r + C is
// equivalent to r Op' l + C' with the operands exchanged.
func mirror(op CmpOp, c float64) (CmpOp, float64) {
	switch op {
	case LT:
		return GT, -c
	case LE:
		return GE, -c
	case GT:
		return LT, -c
	case GE:
		return LE, -c
	case EQ:
		return EQ, -c
	case NE:
		return NE, -c
	default: // AbsDiffLT is symmetric
		return op, c
	}
}

// compile builds the flat dispatch and pair tables. Called from finalize
// after the derived index structures exist.
func (p *Pattern) compile() {
	n := len(p.Positions)
	maxType := 0
	for _, pos := range p.Positions {
		if pos.Type > maxType {
			maxType = pos.Type
		}
	}
	p.byType = make([][]int, maxType+1)
	for i, pos := range p.Positions {
		p.byType[pos.Type] = append(p.byType[pos.Type], i)
	}
	p.unaryC = make([][]CUnary, n)
	for i := range p.Positions {
		for _, k := range p.unaryAt[i] {
			pr := &p.Preds[k]
			p.unaryC[i] = append(p.unaryC[i], CUnary{Attr: pr.AttrL, Op: pr.Op, C: pr.C})
		}
	}
	p.pairC = make([]PairCheck, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			pc := &p.pairC[a*n+b]
			if a == b {
				continue
			}
			if p.Op == Seq {
				if a < b {
					pc.Rel = RelBefore
				} else {
					pc.Rel = RelAfter
				}
			}
			for _, k := range p.PredsBetween(a, b) {
				pr := &p.Preds[k]
				cp := CPair{AttrN: pr.AttrL, AttrO: pr.AttrR, Op: pr.Op, C: pr.C}
				if pr.L != a {
					// Declared with the other position on the left:
					// store the mirrored form so the new event is left.
					cp = CPair{AttrN: pr.AttrR, AttrO: pr.AttrL}
					cp.Op, cp.C = mirror(pr.Op, pr.C)
				}
				pc.Preds = append(pc.Preds, cp)
			}
		}
	}
}
