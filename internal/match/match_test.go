package match

import (
	"testing"

	"acep/internal/event"
	"acep/internal/pattern"
)

func mkSchema() *event.Schema {
	s := event.NewSchema()
	s.MustAddType("A", "x")
	s.MustAddType("B", "x")
	s.MustAddType("C", "x")
	return s
}

var seqCounter uint64

func ev(s *event.Schema, typ int, ts event.Time, x float64) *event.Event {
	seqCounter++
	e := s.MustNew(typ, ts, x)
	e.Seq = seqCounter
	return &e
}

func TestBufferAddScanPrune(t *testing.T) {
	s := mkSchema()
	var b Buffer
	for ts := event.Time(1); ts <= 10; ts++ {
		b.Add(ev(s, 0, ts, 0))
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d", b.Len())
	}
	var got []event.Time
	b.Scan(3, 7, false, false, func(e *event.Event) bool {
		got = append(got, e.TS)
		return true
	})
	if len(got) != 5 || got[0] != 3 || got[4] != 7 {
		t.Fatalf("inclusive scan = %v", got)
	}
	got = got[:0]
	b.Scan(3, 7, true, true, func(e *event.Event) bool {
		got = append(got, e.TS)
		return true
	})
	if len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Fatalf("exclusive scan = %v", got)
	}
	// Early stop.
	n := 0
	stopped := b.Scan(1, 10, false, false, func(e *event.Event) bool {
		n++
		return n < 3
	})
	if stopped || n != 3 {
		t.Fatalf("early stop: stopped=%v n=%d", stopped, n)
	}
	b.Prune(5)
	if b.Len() != 6 { // ts 5..10 survive
		t.Fatalf("after prune Len = %d", b.Len())
	}
	got = got[:0]
	b.All(func(e *event.Event) bool {
		got = append(got, e.TS)
		return true
	})
	if got[0] != 5 {
		t.Fatalf("All after prune starts at %d", got[0])
	}
}

func TestBufferCompaction(t *testing.T) {
	s := mkSchema()
	var b Buffer
	for ts := event.Time(1); ts <= 400; ts++ {
		b.Add(ev(s, 0, ts, 0))
	}
	b.Prune(395)
	if b.Len() != 6 {
		t.Fatalf("Len = %d", b.Len())
	}
	// Compaction must have reset start.
	if b.start != 0 {
		t.Fatalf("start = %d; want compacted 0", b.start)
	}
}

func TestBufferCopyInto(t *testing.T) {
	s := mkSchema()
	var a, b Buffer
	for ts := event.Time(1); ts <= 5; ts++ {
		a.Add(ev(s, 0, ts, 0))
	}
	a.Prune(3)
	a.CopyInto(&b)
	if b.Len() != 3 {
		t.Fatalf("copied %d; want 3", b.Len())
	}
}

func seqPat(s *event.Schema) *pattern.Pattern {
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	a := b.EventName("A")
	bb := b.EventName("B")
	b.WhereEq(a, "x", bb, "x")
	return b.MustBuild()
}

func TestPairOKWindowAndOrder(t *testing.T) {
	s := mkSchema()
	pat := seqPat(s)
	var np uint64
	a := ev(s, 0, 10, 1)
	b := ev(s, 1, 20, 1)
	if !PairOK(pat, pat.Window, 0, a, 1, b, &np) {
		t.Error("valid pair rejected")
	}
	// Argument order must not matter.
	if !PairOK(pat, pat.Window, 1, b, 0, a, &np) {
		t.Error("swapped valid pair rejected")
	}
	// SEQ order violated: B before A.
	b2 := ev(s, 1, 5, 1)
	if PairOK(pat, pat.Window, 0, a, 1, b2, &np) {
		t.Error("out-of-order pair accepted")
	}
	// Equal timestamps do not satisfy SEQ.
	b3 := ev(s, 1, 10, 1)
	if PairOK(pat, pat.Window, 0, a, 1, b3, &np) {
		t.Error("equal-timestamp pair accepted for SEQ")
	}
	// Window violated.
	b4 := ev(s, 1, 200, 1)
	if PairOK(pat, pat.Window, 0, a, 1, b4, &np) {
		t.Error("out-of-window pair accepted")
	}
	// Predicate violated.
	b5 := ev(s, 1, 20, 2)
	if PairOK(pat, pat.Window, 0, a, 1, b5, &np) {
		t.Error("predicate-failing pair accepted")
	}
	// Same event twice.
	if PairOK(pat, pat.Window, 0, a, 1, a, &np) {
		t.Error("same event accepted twice")
	}
	if np == 0 {
		t.Error("predicate evaluations not counted")
	}
}

func TestPairOKAndPattern(t *testing.T) {
	s := mkSchema()
	b := pattern.NewBuilder(s, pattern.And, 100)
	b.EventName("A")
	b.EventName("B")
	pat := b.MustBuild()
	var np uint64
	a := ev(s, 0, 50, 1)
	bb := ev(s, 1, 10, 1)
	// AND has no order constraint.
	if !PairOK(pat, pat.Window, 0, a, 1, bb, &np) {
		t.Error("AND pair rejected on order")
	}
}

func TestUnaryOK(t *testing.T) {
	s := mkSchema()
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	a := b.EventName("A")
	b.EventName("B")
	b.WhereConst(a, "x", pattern.GT, 5)
	pat := b.MustBuild()
	var np uint64
	if !UnaryOK(pat, 0, ev(s, 0, 1, 10), &np) {
		t.Error("passing event rejected")
	}
	if UnaryOK(pat, 0, ev(s, 0, 1, 3), &np) {
		t.Error("failing event accepted")
	}
	if np != 2 {
		t.Errorf("pred evals = %d; want 2", np)
	}
}

func TestMatchKeySpanString(t *testing.T) {
	s := mkSchema()
	a := ev(s, 0, 10, 1)
	b := ev(s, 1, 30, 1)
	m := &Match{Events: []*event.Event{a, nil, b}}
	if m.Key() == "" || m.Key() != m.Key() {
		t.Error("Key not stable")
	}
	lo, hi := m.Span()
	if lo != 10 || hi != 30 {
		t.Errorf("Span = %d,%d", lo, hi)
	}
	if m.String() == "" {
		t.Error("empty String")
	}
	mk := &Match{Events: []*event.Event{a, nil}, Kleene: [][]*event.Event{nil, {b}}}
	if mk.String() == "" {
		t.Error("empty Kleene String")
	}
}

// negSeqPat builds SEQ(A, ~B, C) with B.x == A.x.
func negSeqPat(s *event.Schema) *pattern.Pattern {
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	a := b.EventName("A")
	n := b.EventName("B")
	c := b.EventName("C")
	_ = c
	b.Negate(n)
	b.WhereEq(n, "x", a, "x")
	return b.MustBuild()
}

func collectResolver(pat *pattern.Pattern) (*Resolver, *[]*Match) {
	var out []*Match
	r := NewResolver(pat, func(m *Match) { out = append(out, m) })
	return r, &out
}

func TestResolverNoResiduals(t *testing.T) {
	s := mkSchema()
	pat := seqPat(s)
	r, out := collectResolver(pat)
	if r.HasResiduals() {
		t.Fatal("unexpected residuals")
	}
	core := []*event.Event{ev(s, 0, 1, 1), ev(s, 1, 2, 1)}
	r.OnCoreComplete(core, 2)
	if len(*out) != 1 || r.Emitted != 1 {
		t.Fatalf("emitted %d", len(*out))
	}
}

func TestResolverNegationMiddle(t *testing.T) {
	s := mkSchema()
	pat := negSeqPat(s)
	r, out := collectResolver(pat)

	// Case 1: no negated B in scope -> match survives (scope closed:
	// neighbours A@10, C@20 both present, watermark 20).
	a := ev(s, 0, 10, 7)
	c := ev(s, 2, 20, 0)
	r.OnCoreComplete([]*event.Event{a, nil, c}, 20)
	if len(*out) != 1 {
		t.Fatalf("clean match not emitted: %d", len(*out))
	}

	// Case 2: matching B between A and C kills the match.
	a2 := ev(s, 0, 30, 7)
	bKill := ev(s, 1, 35, 7)
	c2 := ev(s, 2, 40, 0)
	r.Observe(bKill)
	r.OnCoreComplete([]*event.Event{a2, nil, c2}, 40)
	if len(*out) != 1 {
		t.Fatalf("negated match emitted: %d", len(*out))
	}
	if r.Dropped != 1 {
		t.Fatalf("Dropped = %d", r.Dropped)
	}

	// Case 3: B with wrong attribute does not kill.
	a3 := ev(s, 0, 50, 7)
	bOther := ev(s, 1, 55, 9) // x != 7
	c3 := ev(s, 2, 60, 0)
	r.Observe(bOther)
	r.OnCoreComplete([]*event.Event{a3, nil, c3}, 60)
	if len(*out) != 2 {
		t.Fatalf("non-matching negation killed match: %d", len(*out))
	}

	// Case 4: B outside the (A,C) scope does not kill.
	a4 := ev(s, 0, 70, 7)
	c4 := ev(s, 2, 80, 0)
	bLate := ev(s, 1, 85, 7) // after C
	r.Observe(bLate)
	r.OnCoreComplete([]*event.Event{a4, nil, c4}, 85)
	if len(*out) != 3 {
		t.Fatalf("out-of-scope negation killed match: %d", len(*out))
	}
}

func TestResolverNegationLastDelays(t *testing.T) {
	s := mkSchema()
	// SEQ(A, C, ~B): negation scope stays open until A.TS + window.
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	a := b.EventName("A")
	c := b.EventName("C")
	n := b.EventName("B")
	_ = c
	b.Negate(n)
	b.WhereEq(n, "x", a, "x")
	pat := b.MustBuild()
	r, out := collectResolver(pat)

	aev := ev(s, 0, 10, 7)
	cev := ev(s, 2, 20, 0)
	r.OnCoreComplete([]*event.Event{aev, cev, nil}, 20)
	if len(*out) != 0 || r.PendingCount() != 1 {
		t.Fatalf("match not parked: out=%d pending=%d", len(*out), r.PendingCount())
	}
	// A matching B arrives inside the open scope.
	r.Observe(ev(s, 1, 50, 7))
	// Scope closes at minTS+W = 110; ready at 111.
	r.Advance(110)
	if r.PendingCount() != 1 {
		t.Fatal("resolved before scope closed")
	}
	r.Advance(111)
	if r.PendingCount() != 0 {
		t.Fatal("not resolved after scope closed")
	}
	if len(*out) != 0 || r.Dropped != 1 {
		t.Fatalf("negated pending match emitted: out=%d dropped=%d", len(*out), r.Dropped)
	}

	// Second pending with no B: emitted at close.
	a2 := ev(s, 0, 200, 3)
	c2 := ev(s, 2, 210, 0)
	r.OnCoreComplete([]*event.Event{a2, c2, nil}, 210)
	r.Advance(301)
	if len(*out) != 1 {
		t.Fatalf("clean pending match not emitted: %d", len(*out))
	}
}

func TestResolverKleene(t *testing.T) {
	s := mkSchema()
	// SEQ(A, B*, C), B.x == A.x.
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	a := b.EventName("A")
	k := b.EventName("B")
	b.EventName("C")
	b.Kleene(k)
	b.WhereEq(k, "x", a, "x")
	pat := b.MustBuild()
	r, out := collectResolver(pat)

	aev := ev(s, 0, 10, 7)
	b1 := ev(s, 1, 12, 7)
	b2 := ev(s, 1, 14, 7)
	bWrong := ev(s, 1, 16, 9)
	cev := ev(s, 2, 20, 0)
	r.Observe(b1)
	r.Observe(b2)
	r.Observe(bWrong)
	r.OnCoreComplete([]*event.Event{aev, nil, cev}, 20)
	if len(*out) != 1 {
		t.Fatalf("kleene match not emitted: %d", len(*out))
	}
	set := (*out)[0].Kleene[1]
	if len(set) != 2 || set[0] != b1 || set[1] != b2 {
		t.Fatalf("kleene set = %v", set)
	}

	// No B in scope: match dropped.
	a2 := ev(s, 0, 200, 5)
	c2 := ev(s, 2, 210, 0)
	r.OnCoreComplete([]*event.Event{a2, nil, c2}, 210)
	if len(*out) != 1 || r.Dropped != 1 {
		t.Fatalf("empty kleene emitted: out=%d dropped=%d", len(*out), r.Dropped)
	}
}

func TestResolverAndScope(t *testing.T) {
	s := mkSchema()
	// AND(A, C, ~B): scope is [maxTS-W, minTS+W].
	b := pattern.NewBuilder(s, pattern.And, 100)
	b.EventName("A")
	b.EventName("C")
	n := b.EventName("B")
	b.Negate(n)
	pat := b.MustBuild()
	r, out := collectResolver(pat)

	aev := ev(s, 0, 150, 0)
	cev := ev(s, 2, 100, 0)
	// B at 60: dt to A = 90 <= W, dt to C = 40 <= W -> in scope, kills.
	r.Observe(ev(s, 1, 60, 0))
	r.OnCoreComplete([]*event.Event{aev, cev, nil}, 150)
	r.Advance(201) // scope closes at minTS+W = 200
	if len(*out) != 0 || r.Dropped != 1 {
		t.Fatalf("AND negation failed: out=%d dropped=%d", len(*out), r.Dropped)
	}

	// B at 40: dt to A = 110 > W -> out of scope.
	a2 := ev(s, 0, 350, 0)
	c2 := ev(s, 2, 300, 0)
	r.Observe(ev(s, 1, 240, 0))
	r.OnCoreComplete([]*event.Event{a2, c2, nil}, 350)
	r.Advance(401)
	if len(*out) != 1 {
		t.Fatalf("out-of-scope AND negation killed match: %d", len(*out))
	}
}

func TestResolverFlush(t *testing.T) {
	s := mkSchema()
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	b.EventName("A")
	n := b.EventName("B")
	b.Negate(n)
	pat := b.MustBuild()
	r, out := collectResolver(pat)
	r.OnCoreComplete([]*event.Event{ev(s, 0, 10, 0), nil}, 10)
	if r.PendingCount() != 1 {
		t.Fatal("not parked")
	}
	r.Flush()
	if r.PendingCount() != 0 || len(*out) != 1 {
		t.Fatalf("flush failed: pending=%d out=%d", r.PendingCount(), len(*out))
	}
}

func TestResolverSeedFrom(t *testing.T) {
	s := mkSchema()
	pat := negSeqPat(s)
	old, _ := collectResolver(pat)
	kill := ev(s, 1, 35, 7)
	old.Observe(kill)

	fresh, out := collectResolver(pat)
	fresh.SeedFrom(old)
	// The seeded negative event must veto a post-migration match.
	a := ev(s, 0, 30, 7)
	c := ev(s, 2, 40, 0)
	fresh.OnCoreComplete([]*event.Event{a, nil, c}, 40)
	if len(*out) != 0 || fresh.Dropped != 1 {
		t.Fatalf("seeded negation ignored: out=%d dropped=%d", len(*out), fresh.Dropped)
	}
}

func TestResolverObserveFiltersUnary(t *testing.T) {
	s := mkSchema()
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	b.EventName("A")
	n := b.EventName("B")
	b.Negate(n)
	b.WhereConst(n, "x", pattern.GT, 10)
	pat := b.MustBuild()
	r, out := collectResolver(pat)
	r.Observe(ev(s, 1, 15, 5)) // fails unary, must not be buffered
	r.OnCoreComplete([]*event.Event{ev(s, 0, 10, 0), nil}, 15)
	r.Advance(200)
	if len(*out) != 1 {
		t.Fatalf("unary-failing negation killed match: %d", len(*out))
	}
}
