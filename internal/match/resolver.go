package match

import (
	"acep/internal/event"
	"acep/internal/pattern"
)

// Resolver applies the pattern's residual constraints — negated and
// Kleene-closure positions — to core-complete matches and emits the
// surviving matches.
//
// A residual position has a temporal scope derived from the core events:
// for sequences, the open interval between the neighbouring positive
// positions (bounded by the window at the pattern's edges); for
// conjunctions, the interval in which an event is within the window of
// every core event. A negated position invalidates the match if any event
// satisfying its predicates occurs in scope; a Kleene position attaches
// all such events (at least one required).
//
// Scopes can extend past the current watermark (e.g. a negated event that
// is last in the sequence). Such matches are parked and resolved when the
// watermark passes the scope end, which is what makes absence claims and
// maximal Kleene sets safe under timestamp-ordered input.
type Resolver struct {
	pat *pattern.Pattern
	w   event.Time

	residuals []int          // residual position indices
	bufs      []*Buffer      // per pattern position; non-nil at residuals
	pending   []pendingMatch // FIFO by completion

	emit func(*Match)

	// Emitted counts matches delivered; Dropped counts core-complete
	// matches discarded by residual constraints; PredEvals counts
	// predicate evaluations performed during residual resolution.
	Emitted   uint64
	Dropped   uint64
	PredEvals uint64
}

type pendingMatch struct {
	core    []*event.Event
	readyAt event.Time
}

// NewResolver builds a resolver for the pattern. The emit callback
// receives every surviving match.
func NewResolver(pat *pattern.Pattern, emit func(*Match)) *Resolver {
	r := &Resolver{
		pat:  pat,
		w:    pat.Window,
		bufs: make([]*Buffer, pat.NumPositions()),
		emit: emit,
	}
	for i, pos := range pat.Positions {
		if pos.Neg || pos.Kleene {
			r.residuals = append(r.residuals, i)
			r.bufs[i] = &Buffer{}
		}
	}
	return r
}

// HasResiduals reports whether the pattern has any negated or Kleene
// positions.
func (r *Resolver) HasResiduals() bool { return len(r.residuals) > 0 }

// Observe offers an input event to the residual buffers. Events are kept
// only for residual positions whose type matches and whose unary
// predicates pass.
func (r *Resolver) Observe(ev *event.Event) {
	for _, p := range r.residuals {
		if r.pat.Positions[p].Type != ev.Type {
			continue
		}
		if !UnaryOK(r.pat, p, ev, &r.PredEvals) {
			continue
		}
		r.bufs[p].Add(ev)
	}
}

// scope computes the temporal scope of residual position p for the given
// core assignment. Bounds are exclusive on the sequence-neighbour side
// and inclusive on window-derived bounds; ready is the watermark at which
// the scope is guaranteed closed under timestamp-ordered input.
func (r *Resolver) scope(p int, core []*event.Event, minTS, maxTS event.Time) (lo, hi event.Time, loExcl, hiExcl bool, ready event.Time) {
	if r.pat.Op == pattern.Seq {
		lo, loExcl = maxTS-r.w, false
		hi, hiExcl = minTS+r.w, false
		for q := p - 1; q >= 0; q-- {
			if core[q] != nil {
				lo, loExcl = core[q].TS, true
				break
			}
		}
		for q := p + 1; q < len(core); q++ {
			if core[q] != nil {
				hi, hiExcl = core[q].TS, true
				break
			}
		}
	} else {
		// Conjunction: the event must lie within the window of every
		// core event.
		lo, loExcl = maxTS-r.w, false
		hi, hiExcl = minTS+r.w, false
	}
	ready = hi
	if !hiExcl {
		// Events at exactly hi may still arrive while watermark == hi.
		ready = hi + 1
	}
	return lo, hi, loExcl, hiExcl, ready
}

// OnCoreComplete accepts a core-complete assignment (events at every core
// position, nil elsewhere). If every residual scope is already closed at
// the watermark the match resolves immediately; otherwise it is parked.
// The assignment slice is copied.
func (r *Resolver) OnCoreComplete(core []*event.Event, watermark event.Time) {
	if len(r.residuals) == 0 {
		m := &Match{Events: append([]*event.Event(nil), core...)}
		r.Emitted++
		r.emit(m)
		return
	}
	minTS, maxTS := coreSpan(core)
	readyAt := watermark
	for _, p := range r.residuals {
		_, _, _, _, ready := r.scope(p, core, minTS, maxTS)
		if ready > readyAt {
			readyAt = ready
		}
	}
	cp := append([]*event.Event(nil), core...)
	if readyAt <= watermark {
		r.resolve(cp)
		return
	}
	r.pending = append(r.pending, pendingMatch{core: cp, readyAt: readyAt})
}

func coreSpan(core []*event.Event) (minTS, maxTS event.Time) {
	first := true
	for _, ev := range core {
		if ev == nil {
			continue
		}
		if first || ev.TS < minTS {
			minTS = ev.TS
		}
		if first || ev.TS > maxTS {
			maxTS = ev.TS
		}
		first = false
	}
	return minTS, maxTS
}

// resolve evaluates all residual constraints for a core assignment and
// emits or drops the match.
func (r *Resolver) resolve(core []*event.Event) {
	minTS, maxTS := coreSpan(core)
	var kleene [][]*event.Event
	for _, p := range r.residuals {
		lo, hi, loExcl, hiExcl, _ := r.scope(p, core, minTS, maxTS)
		neg := r.pat.Positions[p].Neg
		var set []*event.Event
		ok := true
		r.bufs[p].Scan(lo, hi, loExcl, hiExcl, func(ev *event.Event) bool {
			if !r.residualMatches(p, ev, core) {
				return true
			}
			if neg {
				ok = false // presence of a negated event kills the match
				return false
			}
			set = append(set, ev)
			return true
		})
		if !ok {
			r.Dropped++
			return
		}
		if !neg { // Kleene: at least one event required
			if len(set) == 0 {
				r.Dropped++
				return
			}
			if kleene == nil {
				kleene = make([][]*event.Event, len(core))
			}
			kleene[p] = set
		}
	}
	r.Emitted++
	r.emit(&Match{Events: core, Kleene: kleene})
}

// residualMatches checks the binary predicates connecting residual
// position p to the core positions.
func (r *Resolver) residualMatches(p int, ev *event.Event, core []*event.Event) bool {
	for _, k := range r.pat.PredsTouching(p) {
		pr := &r.pat.Preds[k]
		if pr.IsUnary() {
			continue // filtered at Observe
		}
		other := pr.L
		if other == p {
			other = pr.R
		}
		oev := core[other]
		if oev == nil {
			continue // residual-residual predicates are rejected at build
		}
		r.PredEvals++
		var l, rr *event.Event
		if pr.L == p {
			l, rr = ev, oev
		} else {
			l, rr = oev, ev
		}
		if !pr.Eval(l, rr) {
			return false
		}
	}
	return true
}

// Advance resolves parked matches whose scopes closed at the new
// watermark and prunes the residual buffers. Call with non-decreasing
// watermarks.
func (r *Resolver) Advance(watermark event.Time) {
	if len(r.pending) > 0 {
		kept := r.pending[:0]
		for _, pm := range r.pending {
			if pm.readyAt <= watermark {
				r.resolve(pm.core)
			} else {
				kept = append(kept, pm)
			}
		}
		// Clear the tail so released cores are collectable.
		for i := len(kept); i < len(r.pending); i++ {
			r.pending[i] = pendingMatch{}
		}
		r.pending = kept
	}
	horizon := watermark - 2*r.w
	for _, p := range r.residuals {
		r.bufs[p].Prune(horizon)
	}
}

// Flush force-resolves every parked match, treating the stream as ended:
// all scopes are considered closed over the events observed so far.
func (r *Resolver) Flush() {
	for _, pm := range r.pending {
		r.resolve(pm.core)
	}
	r.pending = r.pending[:0]
}

// PendingCount reports the number of parked matches.
func (r *Resolver) PendingCount() int { return len(r.pending) }

// SeedFrom copies the residual buffers of another resolver (same
// pattern). Plan migration uses this so a freshly deployed plan can still
// veto matches with pre-migration negated events and build complete
// Kleene sets.
func (r *Resolver) SeedFrom(src *Resolver) {
	for _, p := range r.residuals {
		if src.bufs[p] != nil {
			src.bufs[p].CopyInto(r.bufs[p])
		}
	}
}
