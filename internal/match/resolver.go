package match

import (
	"acep/internal/event"
	"acep/internal/pattern"
)

// Resolver applies the pattern's residual constraints — negated and
// Kleene-closure positions — to core-complete matches and emits the
// surviving matches.
//
// A residual position has a temporal scope derived from the core events:
// for sequences, the open interval between the neighbouring positive
// positions (bounded by the window at the pattern's edges); for
// conjunctions, the interval in which an event is within the window of
// every core event. A negated position invalidates the match if any event
// satisfying its predicates occurs in scope; a Kleene position attaches
// all such events (at least one required).
//
// Scopes can extend past the current watermark (e.g. a negated event that
// is last in the sequence). Such matches are parked and resolved when the
// watermark passes the scope end, which is what makes absence claims and
// maximal Kleene sets safe under timestamp-ordered input.
//
// Core assignments handed to OnCoreComplete are copied into pooled
// slices, and dropped matches recycle theirs; with SetOwned the emission
// path recycles too (the Match struct, its core slice and its Kleene
// sets), making steady-state resolution allocation-free.
type Resolver struct {
	pat *pattern.Pattern
	w   event.Time

	residuals []int          // residual position indices
	bufs      []*Buffer      // per pattern position; non-nil at residuals
	pending   []pendingMatch // FIFO by completion

	emit  func(*Match)
	owned bool // emit retains nothing past its return

	scratch   Match              // reused emission struct (owned mode)
	freeCores [][]*event.Event   // pooled core-assignment slices
	freeSets  [][]*event.Event   // pooled Kleene per-position sets
	freeOut   [][][]*event.Event // pooled Kleene outer arrays

	// Emitted counts matches delivered; Dropped counts core-complete
	// matches discarded by residual constraints; PredEvals counts
	// predicate evaluations performed during residual resolution.
	Emitted   uint64
	Dropped   uint64
	PredEvals uint64
}

type pendingMatch struct {
	core    []*event.Event
	readyAt event.Time
}

// NewResolver builds a resolver for the pattern. The emit callback
// receives every surviving match.
func NewResolver(pat *pattern.Pattern, emit func(*Match)) *Resolver {
	r := &Resolver{
		pat:  pat,
		w:    pat.Window,
		bufs: make([]*Buffer, pat.NumPositions()),
		emit: emit,
	}
	for i, pos := range pat.Positions {
		if pos.Neg || pos.Kleene {
			r.residuals = append(r.residuals, i)
			r.bufs[i] = &Buffer{}
		}
	}
	return r
}

// SetOwned declares that the emit callback consumes each match
// synchronously and retains neither the Match nor any slice or event
// reachable from it past its return. The resolver then reuses the
// emission Match and recycles core and Kleene storage after every emit.
func (r *Resolver) SetOwned(owned bool) { r.owned = owned }

// HasResiduals reports whether the pattern has any negated or Kleene
// positions.
func (r *Resolver) HasResiduals() bool { return len(r.residuals) > 0 }

// Observe offers an input event to the residual buffers. Events are kept
// only for residual positions whose type matches and whose unary
// predicates pass. Engines that dispatch by type and intern the events
// they keep use Wants + AddResidual instead.
func (r *Resolver) Observe(ev *event.Event) {
	for _, p := range r.residuals {
		if r.pat.Positions[p].Type != ev.Type {
			continue
		}
		if r.Wants(p, ev) {
			r.AddResidual(p, ev)
		}
	}
}

// Wants reports whether residual position p would buffer ev: p has a
// residual buffer and its unary predicates accept the event. The type is
// the caller's responsibility (engines dispatch by type). Splitting the
// test from AddResidual lets an engine intern only accepted events.
func (r *Resolver) Wants(p int, ev *event.Event) bool {
	return r.bufs[p] != nil && r.pat.UnaryOk(p, ev, &r.PredEvals)
}

// Buffered reports whether residual position p has a buffer at all — the
// structural half of Wants, for engines that already know the predicate
// verdict from a precomputed unary mask.
func (r *Resolver) Buffered(p int) bool { return r.bufs[p] != nil }

// AddResidual stores ev in residual position p's buffer. The caller has
// checked Wants and guarantees ev stays valid for the resolver's
// retention horizon (engines pass arena-interned events).
func (r *Resolver) AddResidual(p int, ev *event.Event) {
	r.bufs[p].Add(ev)
}

// scope computes the temporal scope of residual position p for the given
// core assignment. Bounds are exclusive on the sequence-neighbour side
// and inclusive on window-derived bounds; ready is the watermark at which
// the scope is guaranteed closed under timestamp-ordered input.
func (r *Resolver) scope(p int, core []*event.Event, minTS, maxTS event.Time) (lo, hi event.Time, loExcl, hiExcl bool, ready event.Time) {
	if r.pat.Op == pattern.Seq {
		lo, loExcl = maxTS-r.w, false
		hi, hiExcl = minTS+r.w, false
		for q := p - 1; q >= 0; q-- {
			if core[q] != nil {
				lo, loExcl = core[q].TS, true
				break
			}
		}
		for q := p + 1; q < len(core); q++ {
			if core[q] != nil {
				hi, hiExcl = core[q].TS, true
				break
			}
		}
	} else {
		// Conjunction: the event must lie within the window of every
		// core event.
		lo, loExcl = maxTS-r.w, false
		hi, hiExcl = minTS+r.w, false
	}
	ready = hi
	if !hiExcl {
		// Events at exactly hi may still arrive while watermark == hi.
		ready = hi + 1
	}
	return lo, hi, loExcl, hiExcl, ready
}

// newCore returns a pooled (or fresh) core-assignment slice holding a
// copy of src.
func (r *Resolver) newCore(src []*event.Event) []*event.Event {
	var cp []*event.Event
	if n := len(r.freeCores); n > 0 {
		cp = r.freeCores[n-1]
		r.freeCores[n-1] = nil
		r.freeCores = r.freeCores[:n-1]
	} else {
		cp = make([]*event.Event, len(src))
	}
	copy(cp, src)
	return cp
}

// putCore recycles a core slice obtained from newCore, cleared so an
// idle pool entry never pins released arena chunks.
func (r *Resolver) putCore(core []*event.Event) {
	clear(core)
	r.freeCores = append(r.freeCores, core)
}

// OnCoreComplete accepts a core-complete assignment (events at every core
// position, nil elsewhere). If every residual scope is already closed at
// the watermark the match resolves immediately; otherwise it is parked.
// The assignment slice is only read during the call.
func (r *Resolver) OnCoreComplete(core []*event.Event, watermark event.Time) {
	if len(r.residuals) == 0 {
		r.Emitted++
		if r.owned {
			// The emit consumes the match synchronously, so the caller's
			// slice can back it directly — no copy, nothing retained.
			r.scratch = Match{Events: core}
			r.emit(&r.scratch)
			r.scratch = Match{}
			return
		}
		r.emit(&Match{Events: append([]*event.Event(nil), core...)})
		return
	}
	minTS, maxTS := coreSpan(core)
	readyAt := watermark
	for _, p := range r.residuals {
		_, _, _, _, ready := r.scope(p, core, minTS, maxTS)
		if ready > readyAt {
			readyAt = ready
		}
	}
	cp := r.newCore(core)
	if readyAt <= watermark {
		r.resolve(cp)
		return
	}
	r.pending = append(r.pending, pendingMatch{core: cp, readyAt: readyAt})
}

func coreSpan(core []*event.Event) (minTS, maxTS event.Time) {
	first := true
	for _, ev := range core {
		if ev == nil {
			continue
		}
		if first || ev.TS < minTS {
			minTS = ev.TS
		}
		if first || ev.TS > maxTS {
			maxTS = ev.TS
		}
		first = false
	}
	return minTS, maxTS
}

// getSet returns a pooled (or fresh) empty Kleene set.
func (r *Resolver) getSet() []*event.Event {
	if n := len(r.freeSets); n > 0 {
		s := r.freeSets[n-1]
		r.freeSets[n-1] = nil
		r.freeSets = r.freeSets[:n-1]
		return s[:0]
	}
	return nil
}

// getOuter returns a pooled (or fresh) nil-filled Kleene outer array of
// length n.
func (r *Resolver) getOuter(n int) [][]*event.Event {
	if k := len(r.freeOut); k > 0 && cap(r.freeOut[k-1]) >= n {
		o := r.freeOut[k-1][:n]
		r.freeOut[k-1] = nil
		r.freeOut = r.freeOut[:k-1]
		clear(o)
		return o
	}
	return make([][]*event.Event, n)
}

// putSet recycles one Kleene set, clearing its event pointers so a
// pooled backing array never pins released arena chunks while it sits
// unused (beyond-len entries are nil by induction: every put clears).
func (r *Resolver) putSet(s []*event.Event) {
	clear(s)
	r.freeSets = append(r.freeSets, s)
}

// recycleKleene returns a match's Kleene storage to the pools.
func (r *Resolver) recycleKleene(kleene [][]*event.Event) {
	if kleene == nil {
		return
	}
	for i, s := range kleene {
		if s != nil {
			r.putSet(s)
			kleene[i] = nil
		}
	}
	r.freeOut = append(r.freeOut, kleene)
}

// resolve evaluates all residual constraints for a core assignment
// (always a pooled slice from newCore) and emits or drops the match.
func (r *Resolver) resolve(core []*event.Event) {
	minTS, maxTS := coreSpan(core)
	var kleene [][]*event.Event
	for _, p := range r.residuals {
		lo, hi, loExcl, hiExcl, _ := r.scope(p, core, minTS, maxTS)
		neg := r.pat.Positions[p].Neg
		var set []*event.Event
		if !neg {
			set = r.getSet()
		}
		ok := true
		r.bufs[p].Scan(lo, hi, loExcl, hiExcl, func(ev *event.Event) bool {
			if !r.residualMatches(p, ev, core) {
				return true
			}
			if neg {
				ok = false // presence of a negated event kills the match
				return false
			}
			set = append(set, ev)
			return true
		})
		if !ok || (!neg && len(set) == 0) {
			// Negated event present, or Kleene with an empty set: the
			// match dies and everything it borrowed is recycled.
			if set != nil {
				r.putSet(set)
			}
			r.recycleKleene(kleene)
			r.putCore(core)
			r.Dropped++
			return
		}
		if neg {
			continue
		}
		if kleene == nil {
			kleene = r.getOuter(len(core))
		}
		kleene[p] = set
	}
	r.Emitted++
	if r.owned {
		r.scratch = Match{Events: core, Kleene: kleene}
		r.emit(&r.scratch)
		r.scratch = Match{}
		r.recycleKleene(kleene)
		r.putCore(core)
		return
	}
	r.emit(&Match{Events: core, Kleene: kleene})
}

// residualMatches checks the binary predicates connecting residual
// position p to the core positions, using the compiled pair tables (the
// residual event is the "new" side; only the predicates apply — the
// temporal scope already encodes the order constraints).
func (r *Resolver) residualMatches(p int, ev *event.Event, core []*event.Event) bool {
	for q, qe := range core {
		if qe == nil {
			continue
		}
		preds := r.pat.Pair(p, q).Preds
		for i := range preds {
			r.PredEvals++
			if !preds[i].Ok(ev, qe) {
				return false
			}
		}
	}
	return true
}

// Advance resolves parked matches whose scopes closed at the new
// watermark and prunes the residual buffers. Call with non-decreasing
// watermarks.
func (r *Resolver) Advance(watermark event.Time) {
	if len(r.pending) > 0 {
		kept := r.pending[:0]
		for _, pm := range r.pending {
			if pm.readyAt <= watermark {
				r.resolve(pm.core)
			} else {
				kept = append(kept, pm)
			}
		}
		// Clear the tail so released cores are collectable.
		for i := len(kept); i < len(r.pending); i++ {
			r.pending[i] = pendingMatch{}
		}
		r.pending = kept
	}
	horizon := watermark - 2*r.w
	for _, p := range r.residuals {
		r.bufs[p].Prune(horizon)
	}
}

// Flush force-resolves every parked match, treating the stream as ended:
// all scopes are considered closed over the events observed so far.
func (r *Resolver) Flush() {
	for _, pm := range r.pending {
		r.resolve(pm.core)
	}
	r.pending = r.pending[:0]
}

// PendingCount reports the number of parked matches.
func (r *Resolver) PendingCount() int { return len(r.pending) }

// SeedFrom copies the residual buffers of another resolver (same
// pattern). Plan migration uses this so a freshly deployed plan can still
// veto matches with pre-migration negated events and build complete
// Kleene sets. The copied events stay owned by the source engine's
// arena, which the source freezes when migration begins.
func (r *Resolver) SeedFrom(src *Resolver) {
	for _, p := range r.residuals {
		if src.bufs[p] != nil {
			src.bufs[p].CopyInto(r.bufs[p])
		}
	}
}
