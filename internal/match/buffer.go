// Package match provides the evaluation machinery shared by both engine
// models: timestamp-ordered event buffers, partial-match bookkeeping, and
// the residual resolver that applies negation and Kleene-closure
// constraints at match emission with watermark-driven delays.
package match

import (
	"sort"

	"acep/internal/event"
)

// Buffer holds the recent events of one pattern position in timestamp
// order. Engines append arriving events (already filtered through the
// position's unary predicates) and scan timestamp ranges during partial-
// match extension; Prune drops events that have left the retention
// horizon.
type Buffer struct {
	evs   []*event.Event
	start int // index of the first live element
}

// Add appends an event. Timestamps must be non-decreasing (the stream
// layer enforces global timestamp order).
func (b *Buffer) Add(ev *event.Event) {
	b.evs = append(b.evs, ev)
}

// Len reports the number of live events.
func (b *Buffer) Len() int { return len(b.evs) - b.start }

// Prune drops all events with TS < horizon by advancing the live-prefix
// index; the dead prefix is released in bulk when compaction runs (and,
// for arena-interned events, by whole-chunk arena release), never by a
// per-element nil-out walk.
func (b *Buffer) Prune(horizon event.Time) {
	for b.start < len(b.evs) && b.evs[b.start].TS < horizon {
		b.start++
	}
	if b.start > 64 && b.start*2 >= len(b.evs) {
		n := copy(b.evs, b.evs[b.start:])
		clear(b.evs[n:]) // release the tail for GC in one shot
		b.evs = b.evs[:n]
		b.start = 0
	}
}

// Scan visits live events with lo <= TS <= hi in timestamp order; when
// loExcl/hiExcl are set the corresponding bound is strict. The visit
// function returns false to stop early. Scan returns false if stopped.
func (b *Buffer) Scan(lo, hi event.Time, loExcl, hiExcl bool, visit func(*event.Event) bool) bool {
	live := b.evs[b.start:]
	// Binary search for the first event inside the lower bound.
	i := sort.Search(len(live), func(i int) bool {
		if loExcl {
			return live[i].TS > lo
		}
		return live[i].TS >= lo
	})
	for ; i < len(live); i++ {
		ts := live[i].TS
		if hiExcl {
			if ts >= hi {
				return true
			}
		} else if ts > hi {
			return true
		}
		if !visit(live[i]) {
			return false
		}
	}
	return true
}

// All visits every live event in timestamp order.
func (b *Buffer) All(visit func(*event.Event) bool) bool {
	for _, ev := range b.evs[b.start:] {
		if !visit(ev) {
			return false
		}
	}
	return true
}

// CopyInto appends all live events into dst (used to seed the residual
// buffers of a freshly deployed plan during migration).
func (b *Buffer) CopyInto(dst *Buffer) {
	dst.evs = append(dst.evs, b.evs[b.start:]...)
}
