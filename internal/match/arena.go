package match

import "acep/internal/event"

// arenaChunkEvents is the number of events per arena chunk; attribute
// storage is provisioned at arenaAttrsPerEvent values per slot and a
// chunk seals early if a fat event would overflow it.
const (
	arenaChunkEvents   = 256
	arenaAttrsPerEvent = 8
)

// chunk is one arena block: a fixed-capacity event array plus a flat
// attribute buffer its events' Attrs slices point into. The backing
// arrays never reallocate (interning stops at capacity), so pointers
// into a chunk stay valid for the chunk's whole lifetime.
type chunk struct {
	evs   []event.Event
	attrs []float64
	maxTS event.Time
}

// Arena is chunked copy-in storage for the events an engine retains:
// buffers and partial matches hold pointers into arena chunks instead of
// individually GC-tracked caller objects, and expiry releases whole
// chunks at once instead of dropping events one by one.
//
// Input is timestamp-ordered, so chunks are too: a chunk whose maxTS has
// left the retention horizon can contain no referenced event (every
// holder prunes at or before the same horizon) and is released wholesale
// — returned to a free list when recycling is on (see SetRecycle), or
// dropped for the GC to collect as three objects per 256 events.
type Arena struct {
	chunks  []*chunk
	free    []*chunk
	recycle bool
}

// SetRecycle toggles chunk recycling. Recycling overwrites released
// chunks, so it is only safe while no pointer into the arena escapes the
// engine — the owned-emit contract. Turning it off (the default, and
// forced on migration: see Freeze) drops released chunks to the GC
// instead.
func (a *Arena) SetRecycle(on bool) {
	a.recycle = on
	if !on {
		a.free = nil
	}
}

// Freeze permanently disables recycling and empties the free list:
// existing chunks may now be referenced from outside the engine
// (migration seeds the successor's residual buffers with arena
// pointers), so they must die by GC, never by reuse.
func (a *Arena) Freeze() { a.SetRecycle(false) }

// Intern copies ev into the arena and returns the arena copy, including
// its attribute values. The caller's event is not retained and may be
// reused immediately.
func (a *Arena) Intern(ev *event.Event) *event.Event {
	var c *chunk
	if n := len(a.chunks); n > 0 {
		c = a.chunks[n-1]
	}
	if c == nil || len(c.evs) == cap(c.evs) || len(c.attrs)+len(ev.Attrs) > cap(c.attrs) {
		c = a.grow(len(ev.Attrs))
	}
	ai := len(c.attrs)
	c.attrs = append(c.attrs, ev.Attrs...)
	c.evs = append(c.evs, *ev)
	ne := &c.evs[len(c.evs)-1]
	ne.Attrs = c.attrs[ai:len(c.attrs):len(c.attrs)]
	if ev.TS > c.maxTS {
		c.maxTS = ev.TS
	}
	return ne
}

// Alloc reserves the next arena slot in place and returns it: the event
// is initialized with the given type, timestamp, and sequence number, and
// its Attrs slice is pre-sized to nattrs values backed by the chunk's
// flat attribute buffer, for the caller to fill directly (batch decoders
// write decoded values straight into the returned slice — the event is
// materialized exactly once). Sealing follows Intern: a chunk closes when
// its event array fills or nattrs would overflow its attribute buffer.
//
// Alloc additionally returns the offset of the event's attribute block
// within the chunk buffer returned by Tail, so callers can detect
// contiguous same-stride runs and build columnar event.Spans over them.
func (a *Arena) Alloc(typ int, ts event.Time, seq uint64, nattrs int) (*event.Event, int) {
	var c *chunk
	if n := len(a.chunks); n > 0 {
		c = a.chunks[n-1]
	}
	if c == nil || len(c.evs) == cap(c.evs) || len(c.attrs)+nattrs > cap(c.attrs) {
		c = a.grow(nattrs)
	}
	ai := len(c.attrs)
	c.attrs = c.attrs[:ai+nattrs]
	c.evs = append(c.evs, event.Event{Type: typ, TS: ts, Seq: seq})
	ne := &c.evs[len(c.evs)-1]
	ne.Attrs = c.attrs[ai : ai+nattrs : ai+nattrs]
	if ts > c.maxTS {
		c.maxTS = ts
	}
	return ne, ai
}

// Tail returns the live chunk's flat attribute buffer extended to its
// full capacity. The backing array never reallocates (chunks seal instead
// of growing), so the returned slice stays valid for the chunk's whole
// lifetime; only the prefix covered by allocated events holds meaningful
// values. Returns nil before the first allocation.
func (a *Arena) Tail() []float64 {
	if n := len(a.chunks); n > 0 {
		c := a.chunks[n-1]
		return c.attrs[:cap(c.attrs)]
	}
	return nil
}

// grow appends a fresh (or recycled) chunk with room for at least one
// event carrying attrs attribute values.
func (a *Arena) grow(attrs int) *chunk {
	attrCap := arenaChunkEvents * arenaAttrsPerEvent
	if attrs > attrCap {
		attrCap = attrs
	}
	var c *chunk
	if n := len(a.free); n > 0 && cap(a.free[n-1].attrs) >= attrCap {
		c = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		c.evs = c.evs[:0]
		c.attrs = c.attrs[:0]
		c.maxTS = 0
	} else {
		c = &chunk{
			evs:   make([]event.Event, 0, arenaChunkEvents),
			attrs: make([]float64, 0, attrCap),
		}
	}
	a.chunks = append(a.chunks, c)
	return c
}

// Release frees every chunk whose events all precede the horizon
// (maxTS < horizon). Call only when every holder of arena pointers —
// buffers, partial matches, the resolver — has already pruned to at
// least the same horizon.
func (a *Arena) Release(horizon event.Time) {
	n := 0
	for _, c := range a.chunks {
		if c.maxTS < horizon {
			if a.recycle {
				a.free = append(a.free, c)
			}
			continue
		}
		a.chunks[n] = c
		n++
	}
	for i := n; i < len(a.chunks); i++ {
		a.chunks[i] = nil
	}
	a.chunks = a.chunks[:n]
}

// Live reports the number of live chunks (for tests).
func (a *Arena) Live() int { return len(a.chunks) }
