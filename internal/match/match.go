package match

import (
	"fmt"
	"strings"

	"acep/internal/event"
	"acep/internal/pattern"
)

// Match is one complete detected occurrence of a pattern. Events is
// indexed by pattern position; entries at negated positions are always
// nil, and entries at Kleene positions are nil with the matched set in
// Kleene instead.
type Match struct {
	// Events holds the single event matched at each non-Kleene positive
	// position.
	Events []*event.Event
	// Kleene holds, per Kleene position, every event in the match's
	// temporal scope that satisfied the predicates (maximal-set
	// semantics; always non-empty at Kleene positions of an emitted
	// match).
	Kleene [][]*event.Event
}

// Key returns a canonical identity for the match: the sequence numbers of
// the core events in position order. Two engines detecting the same
// occurrence produce the same key regardless of evaluation order.
func (m *Match) Key() string {
	var b strings.Builder
	for _, ev := range m.Events {
		if ev == nil {
			b.WriteString("_,")
			continue
		}
		fmt.Fprintf(&b, "%d,", ev.Seq)
	}
	return b.String()
}

// Span returns the minimum and maximum timestamp over the match's core
// events.
func (m *Match) Span() (lo, hi event.Time) {
	first := true
	for _, ev := range m.Events {
		if ev == nil {
			continue
		}
		if first || ev.TS < lo {
			lo = ev.TS
		}
		if first || ev.TS > hi {
			hi = ev.TS
		}
		first = false
	}
	return lo, hi
}

// String renders the match for logs.
func (m *Match) String() string {
	var b strings.Builder
	b.WriteString("match{")
	for p, ev := range m.Events {
		if p > 0 {
			b.WriteByte(' ')
		}
		switch {
		case ev != nil:
			fmt.Fprintf(&b, "%d:#%d@%d", p, ev.Seq, ev.TS)
		case p < len(m.Kleene) && m.Kleene[p] != nil:
			fmt.Fprintf(&b, "%d:*%d", p, len(m.Kleene[p]))
		default:
			fmt.Fprintf(&b, "%d:_", p)
		}
	}
	b.WriteString("}")
	return b.String()
}

// PairOK checks whether events evA at position posA and evB at position
// posB can coexist in one match of pat with window w: the events must be
// distinct, within the window of each other, in timestamp order when the
// pattern is a sequence, and must satisfy every predicate connecting the
// two positions. It reports the number of predicate evaluations
// performed via npreds, letting engines meter their work.
func PairOK(pat *pattern.Pattern, w event.Time, posA int, evA *event.Event, posB int, evB *event.Event, npreds *uint64) bool {
	if evA.Seq == evB.Seq {
		return false
	}
	dt := evA.TS - evB.TS
	if dt < 0 {
		dt = -dt
	}
	if dt > w {
		return false
	}
	if pat.Op == pattern.Seq {
		if posA < posB {
			if evA.TS >= evB.TS {
				return false
			}
		} else if evB.TS >= evA.TS {
			return false
		}
	}
	for _, k := range pat.PredsBetween(posA, posB) {
		pr := &pat.Preds[k]
		*npreds++
		var l, r *event.Event
		if pr.L == posA {
			l, r = evA, evB
		} else {
			l, r = evB, evA
		}
		if !pr.Eval(l, r) {
			return false
		}
	}
	return true
}

// UnaryOK evaluates the unary predicates of position p against ev,
// counting evaluations in npreds.
func UnaryOK(pat *pattern.Pattern, p int, ev *event.Event, npreds *uint64) bool {
	for _, k := range pat.PredsAt(p) {
		*npreds++
		if !pat.Preds[k].Eval(ev, nil) {
			return false
		}
	}
	return true
}
