package plan

import (
	"fmt"
	"strings"

	"acep/internal/stats"
)

// TreeNode is a node of a tree-based (ZStream) plan. A leaf has Pos >= 0
// and nil children; an internal node has Pos == -1 and two children.
type TreeNode struct {
	Pos         int
	Left, Right *TreeNode
}

// Leaf constructs a leaf node for a core position.
func Leaf(pos int) *TreeNode { return &TreeNode{Pos: pos} }

// Join constructs an internal node over two subtrees.
func Join(l, r *TreeNode) *TreeNode { return &TreeNode{Pos: -1, Left: l, Right: r} }

// IsLeaf reports whether the node is a leaf.
func (n *TreeNode) IsLeaf() bool { return n.Pos >= 0 }

// Leaves appends the node's leaf positions left-to-right to dst.
func (n *TreeNode) Leaves(dst []int) []int {
	if n.IsLeaf() {
		return append(dst, n.Pos)
	}
	dst = n.Left.Leaves(dst)
	return n.Right.Leaves(dst)
}

// TreePlan is a tree-based evaluation plan over the pattern's core
// positions, as produced by the ZStream dynamic-programming algorithm.
type TreePlan struct {
	Root *TreeNode
}

// NewTreePlan wraps a root node.
func NewTreePlan(root *TreeNode) *TreePlan { return &TreePlan{Root: root} }

// Cardinality computes the expected partial-match cardinality of the
// subtree under the snapshot: leaf cardinality is the arrival rate scaled
// by the unary selectivity; an internal node multiplies its children's
// cardinalities by the combined selectivity of all predicates crossing
// the two leaf sets.
func Cardinality(n *TreeNode, s *stats.Snapshot) float64 {
	if n.IsLeaf() {
		return s.Rates[n.Pos] * s.Sel[n.Pos][n.Pos]
	}
	card := Cardinality(n.Left, s) * Cardinality(n.Right, s)
	var lv, rv []int
	lv = n.Left.Leaves(lv)
	rv = n.Right.Leaves(rv)
	for _, i := range lv {
		for _, j := range rv {
			card *= s.Sel[i][j]
		}
	}
	return card
}

// SubtreeCost computes the ZStream cost of the subtree:
// Cost(leaf) = cardinality; Cost(T) = Cost(L) + Cost(R) + Card(T).
func SubtreeCost(n *TreeNode, s *stats.Snapshot) float64 {
	if n.IsLeaf() {
		return Cardinality(n, s)
	}
	return SubtreeCost(n.Left, s) + SubtreeCost(n.Right, s) + Cardinality(n, s)
}

// Cost implements Plan.
func (p *TreePlan) Cost(s *stats.Snapshot) float64 { return SubtreeCost(p.Root, s) }

// NumBlocks counts internal nodes (one building block per node).
func (p *TreePlan) NumBlocks() int { return countInternal(p.Root) }

func countInternal(n *TreeNode) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	return 1 + countInternal(n.Left) + countInternal(n.Right)
}

// Equal reports structural equality (same shape, same leaf positions).
func (p *TreePlan) Equal(other Plan) bool {
	o, ok := other.(*TreePlan)
	if !ok {
		return false
	}
	return nodesEqual(p.Root, o.Root)
}

func nodesEqual(a, b *TreeNode) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.IsLeaf() != b.IsLeaf() {
		return false
	}
	if a.IsLeaf() {
		return a.Pos == b.Pos
	}
	return nodesEqual(a.Left, b.Left) && nodesEqual(a.Right, b.Right)
}

// PostOrder appends the internal nodes in leaves-to-root (post-order)
// sequence to dst and returns it. This is the order in which the
// invariant method verifies tree-plan invariants (paper §3.2).
func (p *TreePlan) PostOrder(dst []*TreeNode) []*TreeNode {
	return postOrder(p.Root, dst)
}

func postOrder(n *TreeNode, dst []*TreeNode) []*TreeNode {
	if n == nil || n.IsLeaf() {
		return dst
	}
	dst = postOrder(n.Left, dst)
	dst = postOrder(n.Right, dst)
	return append(dst, n)
}

// String renders the tree with parentheses, e.g. "((0 1) 2)".
func (p *TreePlan) String() string {
	var b strings.Builder
	b.WriteString("tree")
	formatNode(&b, p.Root)
	return b.String()
}

func formatNode(b *strings.Builder, n *TreeNode) {
	if n == nil {
		b.WriteString("<nil>")
		return
	}
	if n.IsLeaf() {
		fmt.Fprintf(b, "%d", n.Pos)
		return
	}
	b.WriteByte('(')
	formatNode(b, n.Left)
	b.WriteByte(' ')
	formatNode(b, n.Right)
	b.WriteByte(')')
}
