// Package plan defines the evaluation-plan structures produced by the
// plan generation algorithms and consumed by the evaluation engines: the
// order-based plans of the lazy-NFA model and the tree-based plans of the
// ZStream model, together with the cost model used to compare them.
//
// Plans range over the pattern's core positions only (negated and
// Kleene-closure positions are residual constraints applied at match
// emission; see the pattern package). Costs follow the paper: an
// order-based plan is charged the expected number of partial matches
// accumulated at every prefix, and a tree-based plan is charged
// Cost(L) + Cost(R) + Card(L,R) per internal node, with leaf cardinality
// equal to the position's arrival rate scaled by its unary selectivity.
// These costs are unitless model quantities used for plan comparison, not
// throughput predictions.
package plan

import (
	"fmt"
	"strings"

	"acep/internal/stats"
)

// Plan is an evaluation plan of either structure.
type Plan interface {
	// Cost evaluates the model cost under the given statistics.
	Cost(s *stats.Snapshot) float64
	// NumBlocks reports the number of building blocks (steps for order
	// plans, internal nodes for tree plans).
	NumBlocks() int
	// Equal reports structural equality with another plan.
	Equal(other Plan) bool
	// String renders the plan for logs and experiment output.
	String() string
}

// OrderPlan is a processing order over the pattern's core positions: the
// chain of the lazy NFA. Order[0] is detected first (the NFA's initial
// state accepts that type); subsequent entries are matched against the
// history buffers.
type OrderPlan struct {
	Order []int
}

// NewOrderPlan copies the order slice into a fresh plan.
func NewOrderPlan(order []int) *OrderPlan {
	return &OrderPlan{Order: append([]int(nil), order...)}
}

// Cost implements the paper's order-plan cost: the sum over prefixes of
// the expected partial-match cardinality
//
//	sum_{i=1..n}  prod_{j<=i} r_{p_j}·sel_{p_j,p_j} · prod_{j<k<=i} sel_{p_j,p_k}.
func (p *OrderPlan) Cost(s *stats.Snapshot) float64 {
	total := 0.0
	card := 1.0
	for i, pos := range p.Order {
		card *= s.Rates[pos] * s.Sel[pos][pos]
		for j := 0; j < i; j++ {
			card *= s.Sel[p.Order[j]][pos]
		}
		total += card
	}
	return total
}

// NumBlocks reports one building block per step of the order.
func (p *OrderPlan) NumBlocks() int { return len(p.Order) }

// Equal reports whether other is an OrderPlan with the identical order.
func (p *OrderPlan) Equal(other Plan) bool {
	o, ok := other.(*OrderPlan)
	if !ok || len(o.Order) != len(p.Order) {
		return false
	}
	for i := range p.Order {
		if p.Order[i] != o.Order[i] {
			return false
		}
	}
	return true
}

// String renders the order, e.g. "order[2 0 1]".
func (p *OrderPlan) String() string {
	var b strings.Builder
	b.WriteString("order[")
	for i, pos := range p.Order {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", pos)
	}
	b.WriteString("]")
	return b.String()
}
