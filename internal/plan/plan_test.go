package plan

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"acep/internal/stats"
)

func snap3() *stats.Snapshot {
	s := stats.NewSnapshot(3)
	s.Rates = []float64{100, 15, 10}
	s.SetSym(0, 1, 0.5)
	s.SetSym(1, 2, 0.2)
	s.SetSym(0, 2, 1.0)
	return s
}

func TestOrderPlanCost(t *testing.T) {
	s := snap3()
	// order [2 1 0]: cost = 10 + 10*15*0.2 + 10*15*0.2*100*1*0.5
	p := NewOrderPlan([]int{2, 1, 0})
	want := 10.0 + 30.0 + 1500.0
	if got := p.Cost(s); math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost = %g; want %g", got, want)
	}
	// ascending-rate order must beat descending for this snapshot
	asc := NewOrderPlan([]int{2, 1, 0})
	desc := NewOrderPlan([]int{0, 1, 2})
	if asc.Cost(s) >= desc.Cost(s) {
		t.Errorf("ascending order cost %g >= descending %g", asc.Cost(s), desc.Cost(s))
	}
}

func TestOrderPlanCostUnarySel(t *testing.T) {
	s := snap3()
	s.Sel[0][0] = 0.1 // unary filter on position 0
	p := NewOrderPlan([]int{0})
	if got := p.Cost(s); math.Abs(got-10) > 1e-9 {
		t.Errorf("Cost = %g; want 10 (rate 100 * unary 0.1)", got)
	}
}

func TestOrderPlanEqual(t *testing.T) {
	a := NewOrderPlan([]int{0, 1, 2})
	b := NewOrderPlan([]int{0, 1, 2})
	c := NewOrderPlan([]int{0, 2, 1})
	d := NewOrderPlan([]int{0, 1})
	if !a.Equal(b) {
		t.Error("identical plans unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different plans equal")
	}
	if a.Equal(NewTreePlan(Leaf(0))) {
		t.Error("order plan equal to tree plan")
	}
}

func TestOrderPlanBasics(t *testing.T) {
	p := NewOrderPlan([]int{2, 0, 1})
	if p.NumBlocks() != 3 {
		t.Errorf("NumBlocks = %d", p.NumBlocks())
	}
	if got := p.String(); got != "order[2 0 1]" {
		t.Errorf("String = %q", got)
	}
	// NewOrderPlan must copy its argument.
	src := []int{1, 2}
	q := NewOrderPlan(src)
	src[0] = 9
	if q.Order[0] != 1 {
		t.Error("NewOrderPlan must copy")
	}
}

func TestTreeCardinalityAndCost(t *testing.T) {
	s := snap3()
	// ((0 1) 2): Card(0,1) = 100*15*0.5 = 750
	// Card(root) = 750 * 10 * sel(0,2)*sel(1,2) = 750*10*1*0.2 = 1500
	// Cost = (100+15+750) + 10 + 1500 = 2375
	tr := NewTreePlan(Join(Join(Leaf(0), Leaf(1)), Leaf(2)))
	if got := Cardinality(tr.Root, s); math.Abs(got-1500) > 1e-9 {
		t.Errorf("root cardinality = %g; want 1500", got)
	}
	if got := tr.Cost(s); math.Abs(got-2375) > 1e-9 {
		t.Errorf("Cost = %g; want 2375", got)
	}
	// (0 (1 2)): Card(1,2) = 15*10*0.2 = 30; root = 100*30*0.5*1 = 1500
	// Cost = 100 + (15+10+30) + 1500 = 1655 -> right-deep wins here.
	tr2 := NewTreePlan(Join(Leaf(0), Join(Leaf(1), Leaf(2))))
	if got := tr2.Cost(s); math.Abs(got-1655) > 1e-9 {
		t.Errorf("Cost = %g; want 1655", got)
	}
	if tr2.Cost(s) >= tr.Cost(s) {
		t.Error("right-deep should win for this snapshot")
	}
}

func TestTreeLeavesAndBlocks(t *testing.T) {
	tr := NewTreePlan(Join(Join(Leaf(2), Leaf(0)), Leaf(1)))
	var lv []int
	lv = tr.Root.Leaves(lv)
	if len(lv) != 3 || lv[0] != 2 || lv[1] != 0 || lv[2] != 1 {
		t.Errorf("Leaves = %v", lv)
	}
	if tr.NumBlocks() != 2 {
		t.Errorf("NumBlocks = %d; want 2", tr.NumBlocks())
	}
	if got := tr.String(); got != "tree((2 0) 1)" {
		t.Errorf("String = %q", got)
	}
}

func TestTreeEqual(t *testing.T) {
	a := NewTreePlan(Join(Join(Leaf(0), Leaf(1)), Leaf(2)))
	b := NewTreePlan(Join(Join(Leaf(0), Leaf(1)), Leaf(2)))
	c := NewTreePlan(Join(Leaf(0), Join(Leaf(1), Leaf(2))))
	d := NewTreePlan(Join(Join(Leaf(1), Leaf(0)), Leaf(2)))
	if !a.Equal(b) {
		t.Error("identical trees unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different trees equal")
	}
	if a.Equal(NewOrderPlan([]int{0, 1, 2})) {
		t.Error("tree equal to order plan")
	}
}

func TestTreePostOrder(t *testing.T) {
	l01 := Join(Leaf(0), Leaf(1))
	root := Join(l01, Leaf(2))
	tr := NewTreePlan(root)
	nodes := tr.PostOrder(nil)
	if len(nodes) != 2 || nodes[0] != l01 || nodes[1] != root {
		t.Errorf("PostOrder = %v", nodes)
	}
}

func TestOrderCostPermutationInvariantTotalCard(t *testing.T) {
	// Property: the final prefix term (full cardinality) is identical for
	// every permutation; only intermediate terms differ.
	f := func(r0, r1, r2 uint8, s01, s12, s02 uint8) bool {
		s := stats.NewSnapshot(3)
		s.Rates = []float64{float64(r0%50) + 1, float64(r1%50) + 1, float64(r2%50) + 1}
		s.SetSym(0, 1, float64(s01%9+1)/10)
		s.SetSym(1, 2, float64(s12%9+1)/10)
		s.SetSym(0, 2, float64(s02%9+1)/10)
		perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		var finals []float64
		for _, perm := range perms {
			card := 1.0
			for i, pos := range perm {
				card *= s.Rates[pos] * s.Sel[pos][pos]
				for j := 0; j < i; j++ {
					card *= s.Sel[perm[j]][pos]
				}
			}
			finals = append(finals, card)
		}
		sort.Float64s(finals)
		return math.Abs(finals[0]-finals[len(finals)-1]) < 1e-6*math.Max(1, finals[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeCostPositive(t *testing.T) {
	// Property: tree cost is positive whenever all rates are positive.
	f := func(r0, r1, r2, r3 uint8) bool {
		s := stats.NewSnapshot(4)
		for i, r := range []uint8{r0, r1, r2, r3} {
			s.Rates[i] = float64(r%100) + 1
		}
		tr := NewTreePlan(Join(Join(Leaf(0), Leaf(1)), Join(Leaf(2), Leaf(3))))
		return tr.Cost(s) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
