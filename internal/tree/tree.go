// Package tree implements the tree-based evaluation engine of the
// ZStream model (paper ref [42], Figure 3). Arriving events accumulate at
// the leaves of a TreePlan; each internal node stores the partial matches
// (tuples) over its leaf set, and a new tuple at a node immediately joins
// against its sibling's store, propagating matches bottom-up until the
// root emits core-complete matches. The topology of the internal nodes —
// chosen by the ZStream planner from the current statistics — determines
// the order in which predicates are applied and therefore the volume of
// intermediate tuples.
package tree

import (
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/nfa"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// Stats is identical in meaning to the NFA engine's counters; tuples
// stored at tree nodes play the role of partial matches.
type Stats = nfa.Stats

// tuple is a partial match over one node's leaf set.
type tuple struct {
	evs          []*event.Event // by pattern position
	minTS, maxTS event.Time
}

// node mirrors a plan.TreeNode with evaluation state.
type node struct {
	leaf            bool
	pos             int // pattern position when leaf
	left, right     *node
	parent, sibling *node
	store           []*tuple
}

// Engine is a tree-based evaluation engine for one (non-OR) pattern and
// one tree plan.
type Engine struct {
	pat *pattern.Pattern
	tp  *plan.TreePlan
	res *match.Resolver

	root      *node
	leafByPos []*node // pattern position -> leaf node (nil for residuals)

	watermark  event.Time
	lastPrune  event.Time
	emitBefore uint64

	pmCreated  uint64
	predEvals  uint64
	suppressed uint64
	live       int
	peak       int
}

// New builds an engine for the pattern following the given tree plan.
func New(pat *pattern.Pattern, tp *plan.TreePlan, emit func(*match.Match)) *Engine {
	g := &Engine{
		pat:       pat,
		tp:        tp,
		res:       match.NewResolver(pat, emit),
		leafByPos: make([]*node, pat.NumPositions()),
	}
	g.root = g.build(tp.Root, nil)
	return g
}

func (g *Engine) build(pn *plan.TreeNode, parent *node) *node {
	n := &node{parent: parent}
	if pn.IsLeaf() {
		n.leaf = true
		n.pos = pn.Pos
		g.leafByPos[pn.Pos] = n
		return n
	}
	n.pos = -1
	n.left = g.build(pn.Left, n)
	n.right = g.build(pn.Right, n)
	n.left.sibling = n.right
	n.right.sibling = n.left
	return n
}

// Resolver exposes the residual resolver (for migration seeding).
func (g *Engine) Resolver() *match.Resolver { return g.res }

// SetEmitOnlyBefore restricts emission to matches containing at least one
// core event with Seq < seq (old-plan side of plan migration).
func (g *Engine) SetEmitOnlyBefore(seq uint64) { g.emitBefore = seq }

// Plan returns the tree plan in effect.
func (g *Engine) Plan() plan.Plan { return g.tp }

// Advance moves the watermark forward, resolving parked matches and
// periodically pruning expired tuples.
func (g *Engine) Advance(ts event.Time) {
	if ts < g.watermark {
		return
	}
	g.watermark = ts
	g.res.Advance(ts)
	if ts-g.lastPrune >= g.pat.Window/2 {
		g.pruneNode(g.root)
		g.lastPrune = ts
	}
}

func (g *Engine) pruneNode(n *node) {
	if n == nil {
		return
	}
	kept := n.store[:0]
	for _, t := range n.store {
		if g.watermark-t.minTS <= g.pat.Window {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(n.store); i++ {
		n.store[i] = nil
	}
	g.live -= len(n.store) - len(kept)
	n.store = kept
	g.pruneNode(n.left)
	g.pruneNode(n.right)
}

// Process feeds one input event (non-decreasing timestamps).
func (g *Engine) Process(e *event.Event) {
	if e.TS > g.watermark {
		g.Advance(e.TS)
	}
	for p, pos := range g.pat.Positions {
		if pos.Type != e.Type {
			continue
		}
		leaf := g.leafByPos[p]
		if leaf == nil {
			continue // residual position
		}
		if !match.UnaryOK(g.pat, p, e, &g.predEvals) {
			continue
		}
		t := &tuple{
			evs:   make([]*event.Event, len(g.pat.Positions)),
			minTS: e.TS,
			maxTS: e.TS,
		}
		t.evs[p] = e
		g.pmCreated++
		g.insert(leaf, t)
	}
	if g.res.HasResiduals() {
		g.res.Observe(e)
	}
}

// insert adds a tuple at a node, emits if the node is the root, and
// otherwise joins it against the sibling's store, pushing combined tuples
// to the parent.
func (g *Engine) insert(n *node, t *tuple) {
	if n == g.root {
		g.complete(t)
		return
	}
	n.store = append(n.store, t)
	g.live++
	if g.live > g.peak {
		g.peak = g.live
	}
	sib := n.sibling
	list := sib.store
	for i := 0; i < len(list); {
		s := list[i]
		if g.watermark-s.minTS > g.pat.Window {
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			list = list[:len(list)-1]
			g.live--
			continue
		}
		if g.joinOK(t, s) {
			g.pmCreated++
			g.insert(n.parent, merge(t, s))
		}
		i++
	}
	sib.store = list
}

// joinOK checks all cross pairs between the two tuples' assigned events.
func (g *Engine) joinOK(a, b *tuple) bool {
	if dt := a.maxTS - b.minTS; dt > g.pat.Window {
		return false
	}
	if dt := b.maxTS - a.minTS; dt > g.pat.Window {
		return false
	}
	for p, pe := range a.evs {
		if pe == nil {
			continue
		}
		for q, qe := range b.evs {
			if qe == nil {
				continue
			}
			if !match.PairOK(g.pat, g.pat.Window, p, pe, q, qe, &g.predEvals) {
				return false
			}
		}
	}
	return true
}

func merge(a, b *tuple) *tuple {
	m := &tuple{
		evs:   append([]*event.Event(nil), a.evs...),
		minTS: a.minTS,
		maxTS: a.maxTS,
	}
	for p, qe := range b.evs {
		if qe != nil {
			m.evs[p] = qe
		}
	}
	if b.minTS < m.minTS {
		m.minTS = b.minTS
	}
	if b.maxTS > m.maxTS {
		m.maxTS = b.maxTS
	}
	return m
}

func (g *Engine) complete(t *tuple) {
	if g.emitBefore > 0 {
		old := false
		for _, ev := range t.evs {
			if ev != nil && ev.Seq < g.emitBefore {
				old = true
				break
			}
		}
		if !old {
			g.suppressed++
			return
		}
	}
	g.res.OnCoreComplete(t.evs, g.watermark)
}

// Finish force-resolves all parked matches.
func (g *Engine) Finish() { g.res.Flush() }

// LivePMs reports the current number of stored tuples (the shedding
// layer's load signal; tuples play the role of partial matches).
func (g *Engine) LivePMs() int { return g.live }

// HotTypes marks (in mark, indexed by event type) every type that could
// extend a live tuple right now: a leaf position is hot when its
// sibling's store is non-empty, so an arriving event of that type joins
// immediately and propagates toward the root. (Deeper propagation is not
// modelled; the immediate join is the first-order signal the
// pattern-aware shedding policy protects.)
func (g *Engine) HotTypes(mark []bool) {
	for p, leaf := range g.leafByPos {
		if leaf == nil || leaf.sibling == nil || len(leaf.sibling.store) == 0 {
			continue
		}
		if t := g.pat.Positions[p].Type; t < len(mark) {
			mark[t] = true
		}
	}
}

// HotKeys calls add with key(ev) for one representative event of every
// tuple stored at an internal node — a genuinely joined partial match of
// two or more events. Leaf tuples (single buffered events) are
// deliberately excluded: counting every buffered event's key would mark
// every recently active entity hot and starve the shedder of droppable
// mass, whereas an internal join is real progress worth protecting.
func (g *Engine) HotKeys(key func(*event.Event) uint64, add func(uint64)) {
	g.hotKeys(g.root, key, add)
}

func (g *Engine) hotKeys(n *node, key func(*event.Event) uint64, add func(uint64)) {
	if n == nil || n.leaf {
		return
	}
	for _, t := range n.store {
		for _, e := range t.evs {
			if e != nil {
				add(key(e))
				break
			}
		}
	}
	g.hotKeys(n.left, key, add)
	g.hotKeys(n.right, key, add)
}

// Stats returns a snapshot of the engine's counters.
func (g *Engine) Stats() Stats {
	return Stats{
		PMCreated:  g.pmCreated,
		PredEvals:  g.predEvals + g.res.PredEvals,
		Emitted:    g.res.Emitted,
		Dropped:    g.res.Dropped,
		Suppressed: g.suppressed,
		LivePMs:    g.live,
		PeakPMs:    g.peak,
		Pending:    g.res.PendingCount(),
	}
}
