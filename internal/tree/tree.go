// Package tree implements the tree-based evaluation engine of the
// ZStream model (paper ref [42], Figure 3). Arriving events accumulate at
// the leaves of a TreePlan; each internal node stores the partial matches
// (tuples) over its leaf set, and a new tuple at a node immediately joins
// against its sibling's store, propagating matches bottom-up until the
// root emits core-complete matches. The topology of the internal nodes —
// chosen by the ZStream planner from the current statistics — determines
// the order in which predicates are applied and therefore the volume of
// intermediate tuples.
//
// Like the NFA engine, the steady-state per-event path is
// allocation-free: events are interned into a chunked arena, tuples and
// their assignment arrays come from a free list recycled on expiry and
// completion, and every join runs off a per-node compiled table of the
// cross pairs between the node's leaf set and its sibling's — both sides
// of a join tuple are complete over their leaf sets, so the table needs
// no nil checks and the pair predicates are pre-oriented.
package tree

import (
	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/nfa"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// Stats is identical in meaning to the NFA engine's counters; tuples
// stored at tree nodes play the role of partial matches.
type Stats = nfa.Stats

// tuple is a partial match over one node's leaf set.
type tuple struct {
	evs          []*event.Event // by pattern position
	minTS, maxTS event.Time
}

// joinCheck is one compiled cross-pair check of a node's join: the
// inserted tuple's event at pa against the sibling tuple's event at pb.
type joinCheck struct {
	pa, pb int
	pc     *pattern.PairCheck
}

// node mirrors a plan.TreeNode with evaluation state.
type node struct {
	leaf            bool
	pos             int // pattern position when leaf
	left, right     *node
	parent, sibling *node
	store           []*tuple
	joins           []joinCheck // cross pairs vs the sibling's leaf set
}

// Engine is a tree-based evaluation engine for one (non-OR) pattern and
// one tree plan.
type Engine struct {
	pat *pattern.Pattern
	tp  *plan.TreePlan
	res *match.Resolver

	root      *node
	leafByPos []*node // pattern position -> leaf node (nil for residuals)

	arena     match.Arena
	external  bool // events are caller-stable; retain pointers, don't intern
	tupleFree []*tuple

	watermark  event.Time
	lastPrune  event.Time
	emitBefore uint64

	pmCreated  uint64
	predEvals  uint64
	suppressed uint64
	live       int
	peak       int
}

// New builds an engine for the pattern following the given tree plan.
// The engine copies every event it keeps, so the caller's *event.Event
// is never retained past Process.
func New(pat *pattern.Pattern, tp *plan.TreePlan, emit func(*match.Match)) *Engine {
	g := &Engine{
		pat:       pat,
		tp:        tp,
		res:       match.NewResolver(pat, emit),
		leafByPos: make([]*node, pat.NumPositions()),
	}
	g.root = g.build(tp.Root, nil)
	g.compileJoins(g.root)
	return g
}

func (g *Engine) build(pn *plan.TreeNode, parent *node) *node {
	n := &node{parent: parent}
	if pn.IsLeaf() {
		n.leaf = true
		n.pos = pn.Pos
		g.leafByPos[pn.Pos] = n
		return n
	}
	n.pos = -1
	n.left = g.build(pn.Left, n)
	n.right = g.build(pn.Right, n)
	n.left.sibling = n.right
	n.right.sibling = n.left
	return n
}

// leafSet collects the pattern positions under n in ascending order (the
// tree is built over declaration-ordered leaves, so an in-order walk is
// already sorted per subtree; ascending order preserves the historical
// predicate evaluation order).
func leafSet(n *node, out []int) []int {
	if n == nil {
		return out
	}
	if n.leaf {
		return append(out, n.pos)
	}
	out = leafSet(n.left, out)
	return leafSet(n.right, out)
}

// compileJoins builds every non-root node's flat join table: the cross
// pairs between its leaf set and its sibling's, each with the pattern's
// pre-oriented pair check. Tuples are complete over their node's leaf
// set, so the table never needs nil checks at join time.
func (g *Engine) compileJoins(n *node) {
	if n == nil {
		return
	}
	if n != g.root && n.sibling != nil {
		mine := leafSet(n, nil)
		theirs := leafSet(n.sibling, nil)
		for _, pa := range mine {
			for _, pb := range theirs {
				n.joins = append(n.joins, joinCheck{pa: pa, pb: pb, pc: g.pat.Pair(pa, pb)})
			}
		}
	}
	g.compileJoins(n.left)
	g.compileJoins(n.right)
}

// Resolver exposes the residual resolver (for migration seeding).
func (g *Engine) Resolver() *match.Resolver { return g.res }

// SetOwnedEmit declares that the emit callback consumes each match (and
// its events) synchronously and retains nothing past its return. The
// engine then recycles emission structures and overwrites released arena
// chunks instead of leaving them to the GC, making the steady-state path
// allocation-free. Must not be combined with callbacks that buffer
// matches (e.g. the shard collector).
func (g *Engine) SetOwnedEmit(owned bool) {
	g.res.SetOwned(owned)
	if g.emitBefore == 0 { // a migrating engine's arena stays frozen
		g.arena.SetRecycle(owned)
	}
}

// SetExternal declares that every event handed to Process is already
// stored stably outside the engine (an ingest or decode arena with
// recycling off), so the engine retains the caller's pointer directly
// instead of interning a copy. See nfa.Engine.SetExternal.
func (g *Engine) SetExternal(on bool) { g.external = on }

// SetEmitOnlyBefore restricts emission to matches containing at least one
// core event with Seq < seq (old-plan side of plan migration). Setting a
// boundary also freezes the arena: migration hands this engine's
// residual events to the successor, so released chunks must never be
// overwritten.
func (g *Engine) SetEmitOnlyBefore(seq uint64) {
	g.emitBefore = seq
	if seq > 0 {
		g.arena.Freeze()
	}
}

// Plan returns the tree plan in effect.
func (g *Engine) Plan() plan.Plan { return g.tp }

// Advance moves the watermark forward, resolving parked matches and
// periodically pruning expired tuples.
func (g *Engine) Advance(ts event.Time) {
	if ts < g.watermark {
		return
	}
	g.watermark = ts
	g.res.Advance(ts)
	if ts-g.lastPrune >= g.pat.Window/2 {
		g.pruneNode(g.root)
		// The resolver's residual buffers prune at watermark-2·window
		// (in Advance above) — the oldest horizon any arena pointer can
		// outlive — so chunks wholly behind it are released.
		g.arena.Release(g.watermark - 2*g.pat.Window)
		g.lastPrune = ts
	}
}

func (g *Engine) pruneNode(n *node) {
	if n == nil {
		return
	}
	kept := n.store[:0]
	for _, t := range n.store {
		if g.watermark-t.minTS <= g.pat.Window {
			kept = append(kept, t)
			continue
		}
		g.putTuple(t)
	}
	for i := len(kept); i < len(n.store); i++ {
		n.store[i] = nil
	}
	g.live -= len(n.store) - len(kept)
	n.store = kept
	g.pruneNode(n.left)
	g.pruneNode(n.right)
}

// getTuple returns a pooled (or fresh) zeroed tuple.
func (g *Engine) getTuple() *tuple {
	if n := len(g.tupleFree); n > 0 {
		t := g.tupleFree[n-1]
		g.tupleFree[n-1] = nil
		g.tupleFree = g.tupleFree[:n-1]
		return t
	}
	return &tuple{evs: make([]*event.Event, len(g.pat.Positions))}
}

// putTuple recycles a dead tuple. Safe because tuples never escape the
// engine: completion hands the resolver a copy of the assignment.
func (g *Engine) putTuple(t *tuple) {
	clear(t.evs)
	g.tupleFree = append(g.tupleFree, t)
}

// Process feeds one input event (non-decreasing timestamps). The event
// is copied if kept (unless SetExternal is in effect); the caller may
// reuse it.
func (g *Engine) Process(e *event.Event) { g.process(e, 0) }

// ProcessMasked is Process with a precomputed unary predicate mask (see
// pattern.ScanUnarySpan): when mask carries pattern.MaskValid, bit p
// replaces the per-event UnaryOk evaluation for position p.
func (g *Engine) ProcessMasked(e *event.Event, mask uint32) { g.process(e, mask) }

// ProcessBatch feeds a whole batch of stable events through one call.
// masks, when non-nil, is parallel to evs and carries precomputed unary
// masks. Emission order is identical to per-event Process calls.
func (g *Engine) ProcessBatch(evs []*event.Event, masks []uint32) {
	for i, e := range evs {
		var m uint32
		if masks != nil {
			m = masks[i]
		}
		g.process(e, m)
	}
}

func (g *Engine) process(e *event.Event, mask uint32) {
	if e.TS > g.watermark {
		g.Advance(e.TS)
	}
	var ae *event.Event // arena copy, interned at most once
	for _, p := range g.pat.PositionsOfType(e.Type) {
		leaf := g.leafByPos[p]
		if leaf == nil {
			// Residual position: the resolver buffers it for scope
			// resolution (it applies the position's unary predicates).
			if g.wantsResidual(p, e, mask) {
				if ae == nil {
					ae = g.intern(e)
				}
				g.res.AddResidual(p, ae)
			}
			continue
		}
		if !g.unaryOk(p, e, mask) {
			continue
		}
		if ae == nil {
			ae = g.intern(e)
		}
		t := g.getTuple()
		t.minTS = ae.TS
		t.maxTS = ae.TS
		t.evs[p] = ae
		g.pmCreated++
		g.insert(leaf, t)
	}
}

// intern stores the event for retention: an arena copy normally, the
// caller's stable pointer under SetExternal.
func (g *Engine) intern(e *event.Event) *event.Event {
	if g.external {
		return e
	}
	return g.arena.Intern(e)
}

// unaryOk consults the precomputed mask bit when one is present and falls
// back to evaluating position p's compiled unary predicates.
func (g *Engine) unaryOk(p int, e *event.Event, mask uint32) bool {
	if mask&pattern.MaskValid != 0 {
		return pattern.MaskOk(mask, p)
	}
	return g.pat.UnaryOk(p, e, &g.predEvals)
}

// wantsResidual is Resolver.Wants with the mask consulted for the unary
// predicates when present.
func (g *Engine) wantsResidual(p int, e *event.Event, mask uint32) bool {
	if mask&pattern.MaskValid != 0 {
		return g.res.Buffered(p) && pattern.MaskOk(mask, p)
	}
	return g.res.Wants(p, e)
}

// insert adds a tuple at a node, emits if the node is the root, and
// otherwise joins it against the sibling's store, pushing combined tuples
// to the parent.
func (g *Engine) insert(n *node, t *tuple) {
	if n == g.root {
		g.complete(t)
		g.putTuple(t)
		return
	}
	n.store = append(n.store, t)
	g.live++
	if g.live > g.peak {
		g.peak = g.live
	}
	sib := n.sibling
	list := sib.store
	for i := 0; i < len(list); {
		s := list[i]
		if g.watermark-s.minTS > g.pat.Window {
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			list = list[:len(list)-1]
			g.live--
			g.putTuple(s)
			continue
		}
		if g.joinOK(n, t, s) {
			g.pmCreated++
			g.insert(n.parent, g.merge(t, s))
		}
		i++
	}
	sib.store = list
}

// joinOK checks the node's compiled cross-pair table between the
// inserted tuple t and sibling tuple s, after one window check on the
// tuples' timestamp spans.
func (g *Engine) joinOK(n *node, t, s *tuple) bool {
	if t.maxTS-s.minTS > g.pat.Window || s.maxTS-t.minTS > g.pat.Window {
		return false
	}
	for i := range n.joins {
		j := &n.joins[i]
		if !j.pc.Ok(t.evs[j.pa], s.evs[j.pb], &g.predEvals) {
			return false
		}
	}
	return true
}

func (g *Engine) merge(a, b *tuple) *tuple {
	m := g.getTuple()
	copy(m.evs, a.evs)
	m.minTS = a.minTS
	m.maxTS = a.maxTS
	for p, qe := range b.evs {
		if qe != nil {
			m.evs[p] = qe
		}
	}
	if b.minTS < m.minTS {
		m.minTS = b.minTS
	}
	if b.maxTS > m.maxTS {
		m.maxTS = b.maxTS
	}
	return m
}

// complete applies the migration emit filter and hands the core match to
// the resolver (which copies the assignment; the tuple is recycled by
// the caller).
func (g *Engine) complete(t *tuple) {
	if g.emitBefore > 0 {
		old := false
		for _, ev := range t.evs {
			if ev != nil && ev.Seq < g.emitBefore {
				old = true
				break
			}
		}
		if !old {
			g.suppressed++
			return
		}
	}
	g.res.OnCoreComplete(t.evs, g.watermark)
}

// Finish force-resolves all parked matches.
func (g *Engine) Finish() { g.res.Flush() }

// LivePMs reports the current number of stored tuples (the shedding
// layer's load signal; tuples play the role of partial matches).
func (g *Engine) LivePMs() int { return g.live }

// HotTypes marks (in mark, indexed by event type) every type that could
// extend a live tuple right now: a leaf position is hot when its
// sibling's store is non-empty, so an arriving event of that type joins
// immediately and propagates toward the root. (Deeper propagation is not
// modelled; the immediate join is the first-order signal the
// pattern-aware shedding policy protects.)
func (g *Engine) HotTypes(mark []bool) {
	for p, leaf := range g.leafByPos {
		if leaf == nil || leaf.sibling == nil || len(leaf.sibling.store) == 0 {
			continue
		}
		if t := g.pat.Positions[p].Type; t < len(mark) {
			mark[t] = true
		}
	}
}

// HotKeys calls add with key(ev) for one representative event of every
// tuple stored at an internal node — a genuinely joined partial match of
// two or more events. Leaf tuples (single buffered events) are
// deliberately excluded: counting every buffered event's key would mark
// every recently active entity hot and starve the shedder of droppable
// mass, whereas an internal join is real progress worth protecting.
func (g *Engine) HotKeys(key func(*event.Event) uint64, add func(uint64)) {
	g.hotKeys(g.root, key, add)
}

func (g *Engine) hotKeys(n *node, key func(*event.Event) uint64, add func(uint64)) {
	if n == nil || n.leaf {
		return
	}
	for _, t := range n.store {
		for _, e := range t.evs {
			if e != nil {
				add(key(e))
				break
			}
		}
	}
	g.hotKeys(n.left, key, add)
	g.hotKeys(n.right, key, add)
}

// Stats returns a snapshot of the engine's counters.
func (g *Engine) Stats() Stats {
	return Stats{
		PMCreated:  g.pmCreated,
		PredEvals:  g.predEvals + g.res.PredEvals,
		Emitted:    g.res.Emitted,
		Dropped:    g.res.Dropped,
		Suppressed: g.suppressed,
		LivePMs:    g.live,
		PeakPMs:    g.peak,
		Pending:    g.res.PendingCount(),
	}
}
