package tree

import (
	"testing"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/plan"
)

// ltChain is SEQ(A,B,C) with strictly-increasing-x predicates between
// adjacent positions: x increasing matches densely, x decreasing never.
func ltChain(s *event.Schema, window event.Time, kleeneAt int) *pattern.Pattern {
	b := pattern.NewBuilder(s, pattern.Seq, window)
	for i := 0; i < 3; i++ {
		b.Event(i)
	}
	if kleeneAt >= 0 {
		b.Kleene(kleeneAt)
	}
	for i := 0; i+1 < 3; i++ {
		b.WherePred(pattern.Pred{L: i, R: i + 1, AttrL: 0, AttrR: 0, Op: pattern.LT})
	}
	return b.MustBuild()
}

// feed drives batches of round-robin events through the engine, reusing
// one event struct (the engine interns what it keeps).
type feed struct {
	g    *Engine
	ev   event.Event
	ts   event.Time
	seq  uint64
	sign float64
}

func newFeed(g *Engine, sign float64) *feed {
	return &feed{g: g, ev: event.Event{Attrs: make([]float64, 1)}, sign: sign}
}

func (f *feed) run(events int) {
	for i := 0; i < events; i++ {
		f.ts++
		f.seq++
		f.ev.Type = int(f.seq) % 3
		f.ev.TS = f.ts
		f.ev.Seq = f.seq
		f.ev.Attrs[0] = f.sign * float64(f.seq)
		f.g.Process(&f.ev)
	}
}

// TestProcessZeroAllocsNoMatch: after warm-up, a no-match stream must
// drive the tree hot path — dispatch, leaf tuple creation, sibling
// joins, store pruning, arena interning — with zero heap allocations per
// event.
func TestProcessZeroAllocsNoMatch(t *testing.T) {
	s := mkSchema(3)
	pat := ltChain(s, 60, -1)
	tp := plan.NewTreePlan(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)))
	g := New(pat, tp, func(*match.Match) {
		t.Fatal("no-match stream produced a match")
	})
	g.SetOwnedEmit(true)
	f := newFeed(g, -1)
	f.run(20000)
	allocs := testing.AllocsPerRun(10, func() { f.run(2000) })
	if allocs != 0 {
		t.Fatalf("steady-state no-match Process allocated %.2f times per 2000-event run; want 0", allocs)
	}
}

// TestProcessBoundedAllocsMatching: a densely matching stream must stay
// within a small constant allocation budget per event in owned-emit
// mode, completions and emissions included.
func TestProcessBoundedAllocsMatching(t *testing.T) {
	s := mkSchema(3)
	pat := ltChain(s, 24, -1)
	tp := plan.NewTreePlan(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)))
	var matches uint64
	g := New(pat, tp, func(*match.Match) { matches++ })
	g.SetOwnedEmit(true)
	f := newFeed(g, 1)
	f.run(20000)
	if matches == 0 {
		t.Fatal("matching stream produced no matches; the bound would be vacuous")
	}
	const perRun = 2000
	allocs := testing.AllocsPerRun(10, func() { f.run(perRun) })
	if perEvent := allocs / perRun; perEvent > 0.05 {
		t.Fatalf("steady-state matching Process allocated %.4f/event; want <= 0.05", perEvent)
	}
}

// TestProcessBoundedAllocsKleene exercises the residual path through the
// tree engine: parked matches, residual buffer scans and pooled Kleene
// sets.
func TestProcessBoundedAllocsKleene(t *testing.T) {
	s := mkSchema(3)
	pat := ltChain(s, 24, 1)
	tp := plan.NewTreePlan(plan.Join(plan.Leaf(0), plan.Leaf(2)))
	var matches uint64
	g := New(pat, tp, func(m *match.Match) {
		matches++
		if m.Kleene == nil || len(m.Kleene[1]) == 0 {
			t.Fatal("kleene match without a set")
		}
	})
	g.SetOwnedEmit(true)
	f := newFeed(g, 1)
	f.run(20000)
	if matches == 0 {
		t.Fatal("kleene stream produced no matches; the bound would be vacuous")
	}
	const perRun = 2000
	allocs := testing.AllocsPerRun(10, func() { f.run(perRun) })
	if perEvent := allocs / perRun; perEvent > 0.05 {
		t.Fatalf("steady-state kleene Process allocated %.4f/event; want <= 0.05", perEvent)
	}
}
