package tree

import (
	"math/rand"
	"reflect"
	"testing"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/nfa"
	"acep/internal/oracle"
	"acep/internal/pattern"
	"acep/internal/plan"
)

func mkSchema(n int) *event.Schema {
	s := event.NewSchema()
	for i := 0; i < n; i++ {
		s.MustAddType(string(rune('A'+i)), "x")
	}
	return s
}

func genStream(r *rand.Rand, s *event.Schema, weights []int, count, xmod int, gap event.Time) []event.Event {
	total := 0
	for _, w := range weights {
		total += w
	}
	var evs []event.Event
	ts := event.Time(0)
	var seq uint64
	for i := 0; i < count; i++ {
		ts += event.Time(1 + r.Intn(int(gap)))
		pick := r.Intn(total)
		typ := 0
		for pick >= weights[typ] {
			pick -= weights[typ]
			typ++
		}
		e := s.MustNew(typ, ts, float64(r.Intn(xmod)))
		seq++
		e.Seq = seq
		evs = append(evs, e)
	}
	return evs
}

func seqChainPattern(s *event.Schema, n int, window event.Time) *pattern.Pattern {
	b := pattern.NewBuilder(s, pattern.Seq, window)
	for i := 0; i < n; i++ {
		b.Event(i)
	}
	for i := 0; i+1 < n; i++ {
		b.WherePred(pattern.Pred{L: i, R: i + 1, AttrL: 0, AttrR: 0, Op: pattern.EQ})
	}
	return b.MustBuild()
}

func runTree(pat *pattern.Pattern, tp *plan.TreePlan, evs []event.Event) ([]*match.Match, Stats) {
	var out []*match.Match
	g := New(pat, tp, func(m *match.Match) { out = append(out, m) })
	for i := range evs {
		g.Process(&evs[i])
	}
	g.Finish()
	return out, g.Stats()
}

// allShapes3 enumerates the tree shapes over positions {0,1,2} in order.
func allShapes3() []*plan.TreePlan {
	return []*plan.TreePlan{
		plan.NewTreePlan(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))),
		plan.NewTreePlan(plan.Join(plan.Leaf(0), plan.Join(plan.Leaf(1), plan.Leaf(2)))),
	}
}

func TestTreePaperExample(t *testing.T) {
	s := mkSchema(3)
	pat := seqChainPattern(s, 3, 100)
	evs := []event.Event{
		{Type: 0, TS: 10, Seq: 1, Attrs: []float64{7}},
		{Type: 1, TS: 20, Seq: 2, Attrs: []float64{7}},
		{Type: 0, TS: 25, Seq: 3, Attrs: []float64{9}},
		{Type: 2, TS: 30, Seq: 4, Attrs: []float64{7}},
		{Type: 2, TS: 40, Seq: 5, Attrs: []float64{9}},
	}
	for _, tp := range allShapes3() {
		out, _ := runTree(pat, tp, evs)
		if len(out) != 1 {
			t.Fatalf("%v: %d matches; want 1", tp, len(out))
		}
		m := out[0]
		if m.Events[0].Seq != 1 || m.Events[1].Seq != 2 || m.Events[2].Seq != 4 {
			t.Fatalf("%v: wrong match %v", tp, m)
		}
	}
}

func TestTreeAllShapesAgreeWithOracle(t *testing.T) {
	s := mkSchema(3)
	pat := seqChainPattern(s, 3, 60)
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		evs := genStream(r, s, []int{3, 2, 1}, 120, 3, 4)
		want := oracle.Keys(oracle.Matches(pat, evs))
		for _, tp := range allShapes3() {
			out, _ := runTree(pat, tp, evs)
			if got := oracle.Keys(out); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v: got %d matches, oracle %d", trial, tp, len(got), len(want))
			}
		}
	}
}

func TestTreeMatchesNFA(t *testing.T) {
	// Cross-engine equivalence on conjunctions, negation and Kleene.
	s := mkSchema(4)
	r := rand.New(rand.NewSource(41))

	build := func(f func(b *pattern.Builder)) *pattern.Pattern {
		b := pattern.NewBuilder(s, pattern.Seq, 60)
		f(b)
		return b.MustBuild()
	}
	pats := []*pattern.Pattern{
		seqChainPattern(s, 4, 60),
		build(func(b *pattern.Builder) { // negation
			b.Event(0)
			n := b.Event(1)
			b.Event(2)
			b.Negate(n)
			b.WherePred(pattern.Pred{L: n, R: 0, Op: pattern.EQ})
		}),
		build(func(b *pattern.Builder) { // kleene
			b.Event(0)
			k := b.Event(1)
			b.Event(2)
			b.Kleene(k)
			b.WherePred(pattern.Pred{L: k, R: 0, Op: pattern.EQ})
		}),
	}
	for pi, pat := range pats {
		core := pat.Core()
		// NFA in declaration order; tree left-deep over core positions.
		op := plan.NewOrderPlan(core)
		node := plan.Leaf(core[0])
		for _, p := range core[1:] {
			node = plan.Join(node, plan.Leaf(p))
		}
		tp := plan.NewTreePlan(node)
		for trial := 0; trial < 5; trial++ {
			evs := genStream(r, s, []int{2, 2, 1, 1}, 110, 2, 4)
			var nfaOut []*match.Match
			ng := nfa.New(pat, op, func(m *match.Match) { nfaOut = append(nfaOut, m) })
			for i := range evs {
				ng.Process(&evs[i])
			}
			ng.Finish()
			treeOut, _ := runTree(pat, tp, evs)
			if !reflect.DeepEqual(oracle.Keys(treeOut), oracle.Keys(nfaOut)) {
				t.Fatalf("pattern %d trial %d: tree %d matches, nfa %d",
					pi, trial, len(treeOut), len(nfaOut))
			}
		}
	}
}

func TestTreeShapeAffectsWork(t *testing.T) {
	// Join the two rare types first -> fewer intermediate tuples than
	// joining the two frequent types first.
	s := mkSchema(4)
	b := pattern.NewBuilder(s, pattern.And, 100)
	for i := 0; i < 4; i++ {
		b.Event(i)
	}
	pat := b.MustBuild()
	r := rand.New(rand.NewSource(61))
	evs := genStream(r, s, []int{10, 10, 1, 1}, 1500, 2, 2)

	rareFirst := plan.NewTreePlan(plan.Join(plan.Join(plan.Join(plan.Leaf(2), plan.Leaf(3)), plan.Leaf(0)), plan.Leaf(1)))
	freqFirst := plan.NewTreePlan(plan.Join(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)), plan.Leaf(3)))
	outRare, stRare := runTree(pat, rareFirst, evs)
	outFreq, stFreq := runTree(pat, freqFirst, evs)
	if len(outRare) != len(outFreq) {
		t.Fatalf("shape changed semantics: %d vs %d", len(outRare), len(outFreq))
	}
	if stRare.PMCreated >= stFreq.PMCreated {
		t.Fatalf("rare-first tuples %d >= freq-first %d", stRare.PMCreated, stFreq.PMCreated)
	}
}

func TestTreeEmitFilter(t *testing.T) {
	s := mkSchema(2)
	pat := seqChainPattern(s, 2, 100)
	tp := plan.NewTreePlan(plan.Join(plan.Leaf(0), plan.Leaf(1)))
	evs := []event.Event{
		{Type: 0, TS: 10, Seq: 1, Attrs: []float64{1}},
		{Type: 1, TS: 20, Seq: 2, Attrs: []float64{1}},
		{Type: 0, TS: 30, Seq: 3, Attrs: []float64{1}},
		{Type: 1, TS: 40, Seq: 4, Attrs: []float64{1}},
	}
	var out []*match.Match
	g := New(pat, tp, func(m *match.Match) { out = append(out, m) })
	g.SetEmitOnlyBefore(3)
	for i := range evs {
		g.Process(&evs[i])
	}
	g.Finish()
	if len(out) != 2 {
		t.Fatalf("%d matches; want 2", len(out))
	}
	if g.Stats().Suppressed != 1 {
		t.Fatalf("Suppressed = %d", g.Stats().Suppressed)
	}
}

func TestTreeExpiryPrunes(t *testing.T) {
	s := mkSchema(2)
	pat := seqChainPattern(s, 2, 10)
	tp := plan.NewTreePlan(plan.Join(plan.Leaf(0), plan.Leaf(1)))
	var out []*match.Match
	g := New(pat, tp, func(m *match.Match) { out = append(out, m) })
	var seq uint64
	for ts := event.Time(1); ts <= 5; ts++ {
		seq++
		e := s.MustNew(0, ts, 1)
		e.Seq = seq
		g.Process(&e)
	}
	if g.Stats().LivePMs != 5 {
		t.Fatalf("LivePMs = %d; want 5", g.Stats().LivePMs)
	}
	seq++
	late := s.MustNew(1, 500, 1)
	late.Seq = seq
	g.Process(&late)
	g.Finish()
	if len(out) != 0 {
		t.Fatal("expired tuple matched")
	}
	if g.Stats().LivePMs > 1 { // only the late B's leaf tuple survives
		t.Fatalf("LivePMs = %d after expiry", g.Stats().LivePMs)
	}
	if g.Plan() == nil {
		t.Fatal("Plan() nil")
	}
}

func TestTreeSingleLeafRoot(t *testing.T) {
	s := mkSchema(1)
	b := pattern.NewBuilder(s, pattern.Seq, 100)
	b.Event(0)
	pat := b.MustBuild()
	tp := plan.NewTreePlan(plan.Leaf(0))
	evs := []event.Event{
		{Type: 0, TS: 1, Seq: 1, Attrs: []float64{0}},
		{Type: 0, TS: 2, Seq: 2, Attrs: []float64{0}},
	}
	out, st := runTree(pat, tp, evs)
	if len(out) != 2 || st.Emitted != 2 {
		t.Fatalf("%d matches; want 2", len(out))
	}
}

func TestTreeBushyFourLeaves(t *testing.T) {
	s := mkSchema(4)
	pat := seqChainPattern(s, 4, 80)
	r := rand.New(rand.NewSource(71))
	evs := genStream(r, s, []int{1, 1, 1, 1}, 140, 2, 3)
	want := oracle.Keys(oracle.Matches(pat, evs))
	shapes := []*plan.TreePlan{
		plan.NewTreePlan(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Join(plan.Leaf(2), plan.Leaf(3)))),
		plan.NewTreePlan(plan.Join(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)), plan.Leaf(3))),
		plan.NewTreePlan(plan.Join(plan.Leaf(0), plan.Join(plan.Leaf(1), plan.Join(plan.Leaf(2), plan.Leaf(3))))),
	}
	for _, tp := range shapes {
		out, _ := runTree(pat, tp, evs)
		if got := oracle.Keys(out); !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: got %d matches, oracle %d", tp, len(got), len(want))
		}
	}
}
