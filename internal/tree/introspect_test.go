package tree

import (
	"testing"

	"acep/internal/event"
	"acep/internal/match"
	"acep/internal/plan"
)

// TestIntrospection drives SEQ(A, B, C) through the ((A,B),C) tree and
// checks the shedding hooks: a stored A-tuple makes B hot (its sibling
// leaf holds a joinable tuple); once A+B reaches the inner node, C
// becomes hot.
func TestIntrospection(t *testing.T) {
	s := mkSchema(3)
	pat := seqChainPattern(s, 3, 100)
	tp := plan.NewTreePlan(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)))
	g := New(pat, tp, func(*match.Match) {})

	key := func(ev *event.Event) uint64 { return uint64(ev.Attrs[0]) }
	hot := func() []bool {
		mark := make([]bool, 3)
		g.HotTypes(mark)
		return mark
	}

	if g.LivePMs() != 0 {
		t.Fatalf("LivePMs = %d before any event", g.LivePMs())
	}
	if m := hot(); m[0] || m[1] || m[2] {
		t.Fatalf("hot types %v before any event", m)
	}

	a := s.MustNew(0, 10, 7)
	a.Seq = 1
	g.Process(&a)
	if g.LivePMs() != 1 {
		t.Fatalf("LivePMs = %d after A", g.LivePMs())
	}
	if m := hot(); !m[1] || m[0] || m[2] {
		t.Fatalf("hot types after A = %v, want only B", m)
	}

	b := s.MustNew(1, 20, 7) // same key: joins the A-tuple
	b.Seq = 2
	g.Process(&b)
	// Stores now hold A, B and the joined A+B at the inner node.
	if g.LivePMs() != 3 {
		t.Fatalf("LivePMs = %d after B", g.LivePMs())
	}
	if m := hot(); !m[0] || !m[1] || !m[2] {
		t.Fatalf("hot types after B = %v, want all (A joins B-tuples, C joins A+B)", m)
	}

	// Hot keys come from internal-node (joined) tuples only: the A+B
	// join reports key 7; the lone leaf tuples do not count.
	keys := map[uint64]bool{}
	g.HotKeys(key, func(k uint64) { keys[k] = true })
	if !keys[7] || len(keys) != 1 {
		t.Fatalf("hot keys = %v, want {7}", keys)
	}
}
