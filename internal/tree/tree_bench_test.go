package tree

import (
	"math/rand"
	"testing"

	"acep/internal/match"
	"acep/internal/plan"
)

// BenchmarkProcess measures tree-engine event processing under a
// rare-first versus frequent-first join order.
func BenchmarkProcess(b *testing.B) {
	s := mkSchema(4)
	pat := seqChainPattern(s, 4, 100)
	r := rand.New(rand.NewSource(1))
	evs := genStream(r, s, []int{12, 6, 2, 1}, 50000, 3, 2)
	shapes := []struct {
		name string
		tp   *plan.TreePlan
	}{
		{"rare-first", plan.NewTreePlan(plan.Join(plan.Join(plan.Join(plan.Leaf(3), plan.Leaf(2)), plan.Leaf(1)), plan.Leaf(0)))},
		{"frequent-first", plan.NewTreePlan(plan.Join(plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2)), plan.Leaf(3)))},
	}
	for _, tc := range shapes {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := New(pat, tc.tp, func(*match.Match) {})
				for j := range evs {
					g.Process(&evs[j])
				}
				g.Finish()
			}
			b.SetBytes(int64(len(evs)))
		})
	}
}
