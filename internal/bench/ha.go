package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"acep/internal/cluster"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/ha"
	"acep/internal/pattern"
	"acep/internal/shard"
)

// HAIDs lists the ingress-HA experiments.
func HAIDs() []string { return []string{"ha-traffic", "ha-stocks"} }

// HAData is the ingress-HA experiment of the coordinator-replication
// layer: the identical keyed workload runs through a loopback-TCP
// cluster three times — a plain coordinator (journaled recovery, no
// replication), a replicated pair left healthy (the replication
// overhead), and a replicated pair whose primary is killed ~40% into
// the stream (the takeover cost) — and every run's match stream is
// digest-verified against the single-process sharded engine before
// reporting. Recorded runs accrue in BENCH_ha.json.
type HAData struct {
	Dataset       string  `json:"dataset"`
	Events        int     `json:"events"`
	Keys          int     `json:"keys"`
	Nodes         int     `json:"nodes"`
	ShardsPerNode int     `json:"shards_per_node"`
	Batch         int     `json:"batch"`
	Cores         int     `json:"cores"`
	Transport     string  `json:"transport"`
	PlainTP       float64 `json:"plain_events_per_sec"`
	ReplTP        float64 `json:"replicated_events_per_sec"`
	Overhead      float64 `json:"replication_overhead"` // 1 - repl/plain
	KilledTP      float64 `json:"takeover_events_per_sec"`
	TakeoverMS    float64 `json:"takeover_ms"` // detection -> resumed
	MirrorCuts    int     `json:"mirror_cuts"` // healthy replicated run
	MirrorEvents  int     `json:"mirror_events"`
	ReplayCuts    int     `json:"replay_cuts"` // takeover run
	ReplayEvents  int     `json:"replay_events"`
	RefedEvents   int     `json:"refed_events"`
	Skipped       uint64  `json:"skipped_matches"`
	Matches       uint64  `json:"matches"`
}

// HA measures the ingress-HA layer on the keyed dataset (size-4 keyed
// sequence pattern — the failover experiment's setup). A match-stream
// divergence in any run is an error, not a data point.
func (h *Harness) HA(dataset string, nodes, shardsPerNode, batch int) (*HAData, error) {
	if nodes <= 0 {
		nodes = 3
	}
	if shardsPerNode <= 0 {
		shardsPerNode = 2
	}
	if batch <= 0 {
		batch = 256
	}
	w := h.KeyedWorkload(dataset)
	pat, err := w.Pattern(gen.Sequence, 4, h.Scale.Window*16)
	if err != nil {
		return nil, err
	}
	total := nodes * shardsPerNode
	cfg := engine.Config{CheckEvery: h.Scale.CheckEvery}
	data := &HAData{
		Dataset: dataset, Events: len(w.Events), Keys: w.Keys,
		Nodes: nodes, ShardsPerNode: shardsPerNode, Batch: batch,
		Cores: runtime.NumCPU(), Transport: "loopback-tcp",
	}

	// Single-process reference digest at the same total shard count.
	var ref matchDigest
	refEng, err := shard.New(pat, cfg, shard.Options{
		Shards: total, Batch: batch, KeyAttr: "key", Schema: w.Schema,
		OnMatch: ref.add,
	})
	if err != nil {
		return nil, err
	}
	for i := range w.Events {
		refEng.Process(&w.Events[i])
	}
	refEng.Finish()

	verify := func(mode string, d matchDigest) error {
		if d.n != ref.n || d.h != ref.h {
			return fmt.Errorf("bench: ha %s %s delivered %d matches (digest %x), reference %d (digest %x) — replication changed the match stream",
				dataset, mode, d.n, d.h, ref.n, ref.h)
		}
		return nil
	}

	// Plain coordinator: journaled recovery, no replication. Fresh
	// worker processes per run — workers latch the highest coordinator
	// epoch they serve, so runs never share nodes.
	plainTP, err := h.haPlainRun(w, pat, cfg, nodes, shardsPerNode, batch, verify)
	if err != nil {
		return nil, err
	}
	data.PlainTP = plainTP

	// Replicated pair, primary healthy end to end.
	replTP, p, err := h.haPairRun(w, pat, cfg, nodes, shardsPerNode, batch, -1, verify)
	if err != nil {
		return nil, err
	}
	data.ReplTP = replTP
	data.Overhead = 1 - replTP/plainTP
	data.MirrorCuts, data.MirrorEvents = p.MirrorStats()

	// Replicated pair, primary killed ~40% in: the takeover cost.
	killAt := len(w.Events) * 2 / 5
	killedTP, p, err := h.haPairRun(w, pat, cfg, nodes, shardsPerNode, batch, killAt, verify)
	if err != nil {
		return nil, err
	}
	tk := p.Takeover()
	if tk == nil {
		return nil, fmt.Errorf("bench: ha %s: killed run recorded no takeover", dataset)
	}
	data.KilledTP = killedTP
	data.TakeoverMS = float64(tk.Pause().Microseconds()) / 1000
	data.ReplayCuts, data.ReplayEvents = tk.ReplayCuts, tk.ReplayEvents
	data.RefedEvents = tk.RefedEvents
	data.Skipped = tk.Skipped
	data.Matches = p.Delivered()
	return data, nil
}

// haStartNodes launches fresh loopback-TCP worker processes and returns
// their addresses plus a closer for the listeners.
func haStartNodes(w *gen.Workload, pat *pattern.Pattern, cfg engine.Config,
	nodes, shardsPerNode, batch int) ([]string, func(), error) {
	var addrs []string
	var listeners []*cluster.Listener
	closeAll := func() {
		for _, l := range listeners {
			l.Close()
		}
	}
	for i := 0; i < nodes; i++ {
		node, err := cluster.NewNode(cluster.NodeConfig{
			Pattern: pat, Schema: w.Schema, Engine: cfg,
			Shards: shardsPerNode, Batch: batch, KeyAttr: "key",
		})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		l, err := cluster.ListenTCP("127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		go node.ServeListener(l, nil) //nolint:errcheck // closed below; killed sessions error by design
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr())
	}
	return addrs, closeAll, nil
}

// haPlainRun is the unreplicated baseline: a journaled coordinator over
// fresh workers, no standby, no replication link.
func (h *Harness) haPlainRun(w *gen.Workload, pat *pattern.Pattern, cfg engine.Config,
	nodes, shardsPerNode, batch int, verify func(string, matchDigest) error) (float64, error) {
	addrs, closeAll, err := haStartNodes(w, pat, cfg, nodes, shardsPerNode, batch)
	if err != nil {
		return 0, err
	}
	defer closeAll()
	conns := make([]cluster.Conn, len(addrs))
	for i, a := range addrs {
		if conns[i], err = cluster.DialTCP(a); err != nil {
			return 0, err
		}
	}
	var digest matchDigest
	ing, err := cluster.NewIngress(pat, conns, cluster.IngressOptions{
		Batch: batch, KeyAttr: "key", Schema: w.Schema,
		OnMatch:  digest.add,
		Recovery: &cluster.RecoveryConfig{},
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := range w.Events {
		ing.Process(&w.Events[i])
	}
	if err := ing.Finish(); err != nil {
		return 0, fmt.Errorf("bench: ha plain run finish: %w", err)
	}
	tp := float64(len(w.Events)) / time.Since(start).Seconds()
	return tp, verify("plain", digest)
}

// haPairRun runs the replicated pair, optionally killing the primary
// just before event index killAt (-1: healthy end to end).
func (h *Harness) haPairRun(w *gen.Workload, pat *pattern.Pattern, cfg engine.Config,
	nodes, shardsPerNode, batch, killAt int, verify func(string, matchDigest) error) (float64, *ha.Pair, error) {
	addrs, closeAll, err := haStartNodes(w, pat, cfg, nodes, shardsPerNode, batch)
	if err != nil {
		return 0, nil, err
	}
	defer closeAll()
	var digest matchDigest
	p, err := ha.New(ha.Config{
		Pattern: pat, Schema: w.Schema, KeyAttr: "key", Batch: batch,
		Workers:  addrs,
		OnTagged: func(t shard.Tagged) { digest.add(t.M) },
	})
	if err != nil {
		return 0, nil, err
	}
	mode := "replicated"
	if killAt >= 0 {
		mode = "takeover"
	}
	start := time.Now()
	for i := range w.Events {
		if i == killAt {
			if err := p.KillPrimary(); err != nil {
				return 0, nil, fmt.Errorf("bench: ha takeover: %w", err)
			}
		}
		p.Process(&w.Events[i])
	}
	if err := p.Finish(); err != nil {
		return 0, nil, fmt.Errorf("bench: ha %s run finish: %w", mode, err)
	}
	tp := float64(len(w.Events)) / time.Since(start).Seconds()
	return tp, p, verify(mode, digest)
}

// Write prints the ingress-HA table.
func (d *HAData) Write(w io.Writer) {
	fmt.Fprintf(w, "Ingress HA — %s workload, %d events, %d keys, %d nodes x %d shards, batch %d, %s, %d cores\n",
		d.Dataset, d.Events, d.Keys, d.Nodes, d.ShardsPerNode, d.Batch, d.Transport, d.Cores)
	fmt.Fprintf(w, "%-14s%14s%10s\n", "mode", "events/s", "overhead")
	fmt.Fprintf(w, "%-14s%14.0f%10s\n", "plain", d.PlainTP, "-")
	fmt.Fprintf(w, "%-14s%14.0f%9.1f%%\n", "replicated", d.ReplTP, 100*d.Overhead)
	fmt.Fprintf(w, "%-14s%14.0f%10s\n", "takeover", d.KilledTP, "-")
	fmt.Fprintf(w, "takeover pause %.1f ms; mirrored %d cuts / %d events; replayed %d cuts / %d events; re-fed %d events; skipped %d regenerated matches; %d matches\n",
		d.TakeoverMS, d.MirrorCuts, d.MirrorEvents, d.ReplayCuts, d.ReplayEvents, d.RefedEvents, d.Skipped, d.Matches)
}

// WriteJSON appends the run to a BENCH_*.json trajectory (one JSON
// object per invocation).
func (d *HAData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
