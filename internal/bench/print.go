package bench

import (
	"fmt"
	"io"
)

// Write prints the Figure 5 throughput matrix.
func (d *Fig5Data) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 5 — invariant-method throughput vs pattern size and distance d (%s)\n", d.Combo)
	fmt.Fprintf(w, "%-8s", "d\\size")
	for _, s := range d.Sizes {
		fmt.Fprintf(w, "%12d", s)
	}
	fmt.Fprintln(w)
	for i, dv := range d.Ds {
		fmt.Fprintf(w, "%-8.2f", dv)
		for _, tp := range d.Throughput[i] {
			fmt.Fprintf(w, "%12.0f", tp)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "d_opt = %.2f\n", d.BestD())
}

// WriteTable1 prints Table 1 rows.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1 — quality of the average-relative-difference distance estimate")
	fmt.Fprintf(w, "%-18s%8s%10s%10s%10s\n", "combo", "size", "d_avg", "d_opt", "quality")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s%8d%10.4f%10.2f%10.3f\n", r.Combo, r.Size, r.DAvg, r.DOpt, r.Quality)
	}
}

// WriteFigure prints the four panels of an adaptation-method comparison.
// kindIdx selects a pattern set (Figures 10-29); pass -1 for the average
// over sets (Figures 6-9).
func (m *MethodsData) WriteFigure(w io.Writer, kindIdx int) {
	var grid [][]Result
	label := "all pattern sets (averaged)"
	if kindIdx >= 0 {
		grid = m.Results[kindIdx]
		label = m.Kinds[kindIdx].String() + " patterns"
	} else {
		grid = m.Avg()
	}
	fmt.Fprintf(w, "Adaptation methods on %s — %s (t_opt=%.2f, d_opt=%.2f)\n",
		m.Combo, label, m.TOpt, m.DOpt)

	header := func(title string) {
		fmt.Fprintf(w, "\n(%s)\n%-8s", title, "size")
		for _, name := range m.Methods {
			fmt.Fprintf(w, "%15s", name)
		}
		fmt.Fprintln(w)
	}

	header("a: throughput, events/sec — higher is better")
	for si, size := range m.Sizes {
		fmt.Fprintf(w, "%-8d", size)
		for mi := range m.Methods {
			fmt.Fprintf(w, "%15.0f", grid[si][mi].Throughput)
		}
		fmt.Fprintln(w)
	}

	header("b: relative throughput gain over static — higher is better")
	staticIdx := 0
	for si, size := range m.Sizes {
		fmt.Fprintf(w, "%-8d", size)
		base := grid[si][staticIdx].Throughput
		for mi := range m.Methods {
			gain := 0.0
			if base > 0 {
				gain = grid[si][mi].Throughput / base
			}
			fmt.Fprintf(w, "%15.2f", gain)
		}
		fmt.Fprintln(w)
	}

	header("c: total number of plan reoptimizations")
	for si, size := range m.Sizes {
		fmt.Fprintf(w, "%-8d", size)
		for mi := range m.Methods {
			fmt.Fprintf(w, "%15d", grid[si][mi].Reopts)
		}
		fmt.Fprintln(w)
	}

	header("d: computational overhead, % of run time — lower is better")
	for si, size := range m.Sizes {
		fmt.Fprintf(w, "%-8d", size)
		for mi := range m.Methods {
			fmt.Fprintf(w, "%14.2f%%", grid[si][mi].Overhead*100)
		}
		fmt.Fprintln(w)
	}
}
