package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/multi"
)

func TestMultiExperiment(t *testing.T) {
	h := NewHarness(tinyScale())
	d, err := h.Multi("traffic", []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 2 {
		t.Fatalf("%d points, want 2", len(d.Points))
	}
	for _, p := range d.Points {
		if p.Matches == 0 {
			t.Fatalf("n=%d: no matches", p.Patterns)
		}
		if p.SharedTP <= 0 || p.IndepTP <= 0 || p.Speedup <= 0 {
			t.Fatalf("n=%d: bad throughput %+v", p.Patterns, p)
		}
		if p.Groups == 0 || p.Grouped == 0 {
			t.Fatalf("n=%d: analyzer found no sharing: %+v", p.Patterns, p)
		}
		// No unary-dedup assertion: the overlap sets' differentiating
		// unary predicates are per-pattern constants, distinct by
		// construction — the sharing the sweep measures is the prefix
		// grouping, asserted above.
	}
	if d.Points[1].Patterns != 8 || d.Points[0].Patterns != 4 {
		t.Fatalf("sweep order wrong: %+v", d.Points)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back MultiData
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "multi-traffic" || len(back.Points) != 2 {
		t.Fatalf("JSON roundtrip lost data: %+v", back)
	}
	d.Write(&buf) // table formatting must not panic
}

// BenchmarkMultiShared is the CI bench-smoke guard for the shared
// evaluator's hot path: one evaluator hosting a 16-pattern overlap set.
func BenchmarkMultiShared(b *testing.B) {
	h := NewHarness(tinyScale())
	w := h.MultiWorkload("traffic")
	entries, err := w.OverlapPatterns(gen.Sequence, 16, multiOverlap, multiWindow, 1)
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]multi.Spec, len(entries))
	for i, e := range entries {
		specs[i] = multi.Spec{
			ID: e.ID, Tenant: e.Tenant, Pattern: e.Pattern,
			Config: engine.Config{CheckEvery: h.Scale.CheckEvery},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.multiRunShared(w, specs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(w.Events)*b.N)/b.Elapsed().Seconds(), "events/s")
}
