package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestShardCountsUpTo(t *testing.T) {
	cases := map[int][]int{
		1: {1},
		4: {1, 2, 4},
		6: {1, 2, 4, 6},
		8: {1, 2, 4, 8},
	}
	for max, want := range cases {
		got := ShardCountsUpTo(max)
		if len(got) != len(want) {
			t.Fatalf("max=%d: %v", max, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("max=%d: %v", max, got)
			}
		}
	}
}

func TestScalingExperiment(t *testing.T) {
	sc := tinyScale()
	sc.Keys = 8
	h := NewHarness(sc)
	d, err := h.Scaling("traffic", []int{1, 2}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 2 {
		t.Fatalf("%d points", len(d.Points))
	}
	if d.Points[0].Shards != 1 || d.Points[0].Speedup != 1 {
		t.Fatalf("baseline point wrong: %+v", d.Points[0])
	}
	if d.Points[1].Matches != d.Points[0].Matches {
		t.Fatal("match counts diverged across shard counts")
	}
	if d.Points[1].Throughput <= 0 || d.Points[1].Speedup <= 0 {
		t.Fatalf("bad point %+v", d.Points[1])
	}
	var buf bytes.Buffer
	d.Write(&buf)
	if !strings.Contains(buf.String(), "Shard scaling") {
		t.Fatal("missing table header")
	}
	buf.Reset()
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"events_per_sec\"") {
		t.Fatal("missing JSON field")
	}
	// The registry must route the scaling ids.
	r := NewRunner(h)
	buf.Reset()
	if err := r.Run(&buf, "scale-traffic"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traffic workload") {
		t.Fatal("registry scaling output wrong")
	}
	// Keyed workloads are cached.
	if h.KeyedWorkload("traffic") != h.KeyedWorkload("traffic") {
		t.Fatal("keyed workload not cached")
	}
	// Stocks path also runs.
	if _, err := h.Scaling("stocks", []int{1}, 0); err != nil {
		t.Fatal(err)
	}
}
