package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"acep/internal/cluster"
	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/shard"
	"acep/internal/stats"
)

// ClusterIDs lists the distributed-layer experiments.
func ClusterIDs() []string { return []string{"cluster-traffic", "cluster-stocks"} }

// matchDigest folds match keys, in delivery order, into one FNV-1a
// digest: equal digests mean identical match sets delivered in
// identical order, which is exactly the cluster layer's exactness
// guarantee against the single-process sharded engine at equal total
// shard count.
type matchDigest struct {
	h uint64
	n uint64
}

func (d *matchDigest) add(m *match.Match) {
	if d.n == 0 {
		d.h = 14695981039346656037
	}
	k := m.Key()
	for i := 0; i < len(k); i++ {
		d.h ^= uint64(k[i])
		d.h *= 1099511628211
	}
	d.h ^= '\n'
	d.h *= 1099511628211
	d.n++
}

// DefaultNodeCounts is the node sweep of the cluster experiment.
func DefaultNodeCounts() []int { return []int{1, 2, 3} }

// NodeCountsUpTo returns 1..max node counts (doubling, max included).
func NodeCountsUpTo(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// DefaultBatchSweep is the batch-size sweep of the cluster experiment.
func DefaultBatchSweep() []int { return []int{64, 256, 1024} }

// DefaultClusterBatch is the effective events-per-cut when the caller
// passes batch <= 0 — the shard-layer and ingress default.
const DefaultClusterBatch = 256

// ClusterPoint is one measured configuration (a node count in the node
// sweep, a batch size in the batch sweep).
type ClusterPoint struct {
	Nodes       int `json:"nodes"`
	TotalShards int `json:"total_shards"`
	// Batch is the effective events-per-cut of this point (never 0: a
	// defaulted batch is resolved before measuring, so the recorded
	// configuration reproduces the run).
	Batch      int     `json:"batch"`
	Throughput float64 `json:"events_per_sec"`
	Speedup    float64 `json:"speedup"` // vs the sweep's first point
	// LocalThroughput is the single-process sharded engine at the same
	// total shard count, so the wire overhead is visible per point.
	LocalThroughput float64 `json:"local_events_per_sec"`
	WireOverhead    float64 `json:"wire_overhead"` // 1 - cluster/local
	Matches         uint64  `json:"matches"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// ClusterData is the throughput-vs-node-count experiment of the
// distributed layer: every point runs the identical keyed workload
// through a loopback-TCP cluster (real wire codec, real sockets, one
// process) and through the single-process sharded engine at the same
// total shard count, verifying the match sets agree before reporting.
// Recorded runs accrue in BENCH_cluster.json.
type ClusterData struct {
	Dataset       string `json:"dataset"`
	Events        int    `json:"events"`
	Keys          int    `json:"keys"`
	ShardsPerNode int    `json:"shards_per_node"`
	// Batch is the (resolved, never 0) events-per-cut of a node sweep;
	// batch sweeps omit it and record the per-point batch instead.
	Batch     int            `json:"batch,omitempty"`
	Sweep     string         `json:"sweep"` // "nodes" or "batch"
	Cores     int            `json:"cores"`
	Transport string         `json:"transport"`
	Points    []ClusterPoint `json:"points"`
}

// Cluster measures events/sec of a loopback-TCP cluster over the
// node-count sweep on the keyed dataset, with the same size-4 keyed
// sequence pattern and per-shard invariant policy as the Scaling
// experiment. batch <= 0 uses the layer default. Every node count must
// deliver the identical match count as its single-process counterpart —
// a divergence is an error, not a data point.
func (h *Harness) Cluster(dataset string, nodeCounts []int, shardsPerNode, batch int) (*ClusterData, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = DefaultNodeCounts()
	}
	if batch <= 0 {
		batch = DefaultClusterBatch
	}
	r, err := h.clusterRig(dataset, shardsPerNode)
	if err != nil {
		return nil, err
	}
	r.data.Batch = batch
	r.data.Sweep = "nodes"
	for _, n := range nodeCounts {
		if err := r.measure(n, batch); err != nil {
			return nil, err
		}
	}
	return r.data, nil
}

// ClusterBatchSweep measures wire overhead against the events-per-cut
// batch size at a fixed node count — the reproducibility axis behind the
// cluster numbers: the cut size sets the frames-per-event amortization of
// the wire codec, so overhead is not comparable across unrecorded batch
// sizes. Every point is cross-checked against the single-process sharded
// engine exactly like the node sweep.
func (h *Harness) ClusterBatchSweep(dataset string, batches []int, nodes, shardsPerNode int) (*ClusterData, error) {
	if len(batches) == 0 {
		batches = DefaultBatchSweep()
	}
	if nodes <= 0 {
		nodes = 2
	}
	r, err := h.clusterRig(dataset, shardsPerNode)
	if err != nil {
		return nil, err
	}
	r.data.Sweep = "batch"
	for _, b := range batches {
		if b <= 0 {
			b = DefaultClusterBatch
		}
		if err := r.measure(nodes, b); err != nil {
			return nil, err
		}
	}
	return r.data, nil
}

// clusterRig is the shared fixture of the cluster sweeps: one keyed
// workload, pattern and engine-config factory, plus the accumulating
// result record.
type clusterRig struct {
	w    *gen.Workload
	pat  *pattern.Pattern
	cfg  func() engine.Config
	data *ClusterData
}

func (h *Harness) clusterRig(dataset string, shardsPerNode int) (*clusterRig, error) {
	if shardsPerNode <= 0 {
		shardsPerNode = 2
	}
	w := h.KeyedWorkload(dataset)
	pat, err := w.Pattern(gen.Sequence, 4, h.Scale.Window*16)
	if err != nil {
		return nil, err
	}
	initial := stats.Exact(pat, w.Events[:len(w.Events)/20+1])
	return &clusterRig{
		w:   w,
		pat: pat,
		cfg: func() engine.Config {
			return engine.Config{
				CheckEvery:   h.Scale.CheckEvery,
				NewPolicy:    func() core.Policy { return &core.Invariant{} },
				InitialStats: func(*pattern.Pattern) *stats.Snapshot { return initial },
			}
		},
		data: &ClusterData{
			Dataset:       dataset,
			Events:        len(w.Events),
			Keys:          w.Keys,
			ShardsPerNode: shardsPerNode,
			Cores:         runtime.NumCPU(),
			Transport:     "loopback-tcp",
		},
	}, nil
}

// measure runs one (nodes, batch) configuration — single-process
// reference first, then the loopback-TCP cluster — verifies the match
// streams agree, and appends the point.
// clusterMeasureReps is the repetition count per measured point: each
// side (single-process reference and cluster) runs this many times and
// the fastest run is recorded. A point's stream lasts well under a
// second, so single runs are scheduler-noise dominated on small or
// shared machines; best-of-N recovers the actual cost of the code path.
// Every repetition's match digest is still cross-checked.
const clusterMeasureReps = 5

func (r *clusterRig) measure(n, batch int) error {
	w, pat, data := r.w, r.pat, r.data
	shardsPerNode := data.ShardsPerNode
	total := n * shardsPerNode

	// Single-process reference at the same total shard count.
	var local matchDigest
	var localTP float64
	for rep := 0; rep < clusterMeasureReps; rep++ {
		var d matchDigest
		localEng, err := shard.New(pat, r.cfg(), shard.Options{
			Shards: total, Batch: batch, KeyAttr: "key", Schema: w.Schema,
			OnMatch: d.add,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		for i := range w.Events {
			localEng.Process(&w.Events[i])
		}
		localEng.Finish()
		tp := float64(len(w.Events)) / time.Since(start).Seconds()
		if rep == 0 {
			local = d
		} else if d != local {
			return fmt.Errorf("bench: cluster %s nodes=%d batch=%d: local reference rep %d diverged (%d matches digest %x, rep 0 %d digest %x)",
				data.Dataset, n, batch, rep, d.n, d.h, local.n, local.h)
		}
		if tp > localTP {
			localTP = tp
		}
	}

	// The cluster: n worker nodes behind loopback TCP.
	var clustered matchDigest
	var clusterTP float64
	var elapsed time.Duration
	for rep := 0; rep < clusterMeasureReps; rep++ {
		conns := make([]cluster.Conn, n)
		serveErr := make(chan error, n)
		for i := 0; i < n; i++ {
			node, err := cluster.NewNode(cluster.NodeConfig{
				Pattern: pat, Engine: r.cfg(), Shards: shardsPerNode, Batch: batch,
				KeyAttr: "key", Schema: w.Schema,
			})
			if err != nil {
				return err
			}
			l, err := cluster.ListenTCP("127.0.0.1:0")
			if err != nil {
				return err
			}
			go func() {
				defer l.Close()
				c, err := l.Accept()
				if err != nil {
					serveErr <- err
					return
				}
				serveErr <- node.Serve(c)
			}()
			if conns[i], err = cluster.DialTCP(l.Addr()); err != nil {
				return err
			}
		}
		var d matchDigest
		ing, err := cluster.NewIngress(pat, conns, cluster.IngressOptions{
			Batch: batch, KeyAttr: "key", Schema: w.Schema,
			OnMatch: d.add,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		for i := range w.Events {
			ing.Process(&w.Events[i])
		}
		if err := ing.Finish(); err != nil {
			return err
		}
		repElapsed := time.Since(start)
		for i := 0; i < n; i++ {
			if err := <-serveErr; err != nil {
				return fmt.Errorf("bench: cluster node: %w", err)
			}
		}
		if d.n != local.n || d.h != local.h {
			return fmt.Errorf("bench: cluster %s nodes=%d batch=%d delivered %d matches (digest %x), single-process sharded %d (digest %x) — distribution changed the match stream",
				data.Dataset, n, batch, d.n, d.h, local.n, local.h)
		}
		clustered = d
		if tp := float64(len(w.Events)) / repElapsed.Seconds(); tp > clusterTP {
			clusterTP = tp
			elapsed = repElapsed
		}
	}

	p := ClusterPoint{
		Nodes:           n,
		TotalShards:     total,
		Batch:           batch,
		Throughput:      clusterTP,
		LocalThroughput: localTP,
		Matches:         clustered.n,
		ElapsedMS:       float64(elapsed.Microseconds()) / 1000,
	}
	p.WireOverhead = 1 - p.Throughput/p.LocalThroughput
	if len(data.Points) > 0 {
		if p.Matches != data.Points[0].Matches {
			return fmt.Errorf("bench: cluster %s nodes=%d batch=%d found %d matches, baseline found %d — the sweep changed the match set",
				data.Dataset, n, batch, p.Matches, data.Points[0].Matches)
		}
		p.Speedup = p.Throughput / data.Points[0].Throughput
	} else {
		p.Speedup = 1
	}
	data.Points = append(data.Points, p)
	return nil
}

// Write prints the cluster scaling table.
func (d *ClusterData) Write(w io.Writer) {
	fmt.Fprintf(w, "Cluster scaling (%s sweep) — %s workload, %d events, %d keys, %d shards/node, %s, %d cores\n",
		d.Sweep, d.Dataset, d.Events, d.Keys, d.ShardsPerNode, d.Transport, d.Cores)
	fmt.Fprintf(w, "%-7s%8s%8s%14s%10s%16s%10s%10s\n",
		"nodes", "shards", "batch", "events/sec", "speedup", "local ev/sec", "wire ovh", "matches")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-7d%8d%8d%14.0f%9.2fx%16.0f%9.1f%%%10d\n",
			p.Nodes, p.TotalShards, p.Batch, p.Throughput, p.Speedup, p.LocalThroughput, 100*p.WireOverhead, p.Matches)
	}
}

// WriteJSON appends the run to a BENCH_*.json trajectory (one JSON
// object per invocation).
func (d *ClusterData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
