package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// shedScale keeps the shedding experiment fast while leaving enough
// same-key chains for recall differences to be statistically meaningful.
func shedScale() Scale {
	s := DefaultScale()
	s.Events = 20000
	return s
}

func TestSheddingExperiment(t *testing.T) {
	h := NewHarness(shedScale())
	d, err := h.Shedding("traffic", []float64{0.4}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.BaselineMatches == 0 {
		t.Fatal("baseline produced no matches")
	}
	byPolicy := map[string]ShedPoint{}
	for _, p := range d.Points {
		byPolicy[p.Policy] = p
		if p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("%s: recall %v out of [0,1]", p.Policy, p.Recall)
		}
		if p.Matches > d.BaselineMatches {
			t.Fatalf("%s: shedding grew the match set (%d > %d)",
				p.Policy, p.Matches, d.BaselineMatches)
		}
	}
	rnd, ok1 := byPolicy["random"]
	pa, ok2 := byPolicy["pattern-aware"]
	if !ok1 || !ok2 {
		t.Fatalf("missing policies in %v", byPolicy)
	}
	// The headline claim of the shedding layer: at equal achieved drop
	// rate, protecting events that extend live partial matches retains
	// strictly more matches than uniform dropping.
	if math.Abs(rnd.Dropped-pa.Dropped) > 0.08 {
		t.Fatalf("drop rates not comparable: random %.3f vs pattern-aware %.3f",
			rnd.Dropped, pa.Dropped)
	}
	if pa.Recall <= rnd.Recall {
		t.Fatalf("pattern-aware recall %.3f not above random %.3f at equal drop rate",
			pa.Recall, rnd.Recall)
	}

	var buf bytes.Buffer
	d.Write(&buf)
	if !strings.Contains(buf.String(), "pattern-aware") {
		t.Fatalf("table output missing policies:\n%s", buf.String())
	}
	buf.Reset()
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"baseline_matches\"") {
		t.Fatalf("JSON output missing fields:\n%s", buf.String())
	}
}

// TestSheddingDeterministic: the whole experiment is a pure function of
// the scale — two runs must produce identical match counts per cell.
func TestSheddingDeterministic(t *testing.T) {
	run := func() *ShedData {
		h := NewHarness(shedScale())
		d, err := h.Shedding("traffic", []float64{0.3}, []string{"random", "pattern-aware"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := run(), run()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i].Matches != b.Points[i].Matches || a.Points[i].Dropped != b.Points[i].Dropped {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestShedPolicyNames(t *testing.T) {
	if _, err := shedPolicy("bogus", 0.5); err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, n := range ShedPolicyNames() {
		p, err := shedPolicy(n, 0.5)
		if err != nil || p == nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}
