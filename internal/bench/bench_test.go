package bench

import (
	"bytes"
	"strings"
	"testing"

	"acep/internal/core"
	"acep/internal/engine"
	"acep/internal/gen"
)

// tinyScale keeps harness unit tests fast.
func tinyScale() Scale {
	return Scale{
		Events:     4000,
		Sizes:      []int{3, 4},
		Seed:       7,
		Window:     60,
		CheckEvery: 400,
		Types:      10,
	}
}

func TestCombos(t *testing.T) {
	cs := Combos()
	if len(cs) != 4 {
		t.Fatalf("%d combos", len(cs))
	}
	if cs[0].String() != "traffic/greedy" || cs[3].String() != "stocks/zstream" {
		t.Fatalf("combo names: %v %v", cs[0], cs[3])
	}
	c, err := ComboByName("stocks/greedy")
	if err != nil || c.Dataset != "stocks" || c.Model != engine.GreedyNFA {
		t.Fatalf("ComboByName: %v %v", c, err)
	}
	if _, err := ComboByName("nope"); err == nil {
		t.Fatal("bad combo accepted")
	}
}

func TestHarnessRunDeterministicWorkload(t *testing.T) {
	h := NewHarness(tinyScale())
	w1 := h.Workload("traffic")
	w2 := h.Workload("traffic")
	if w1 != w2 {
		t.Fatal("workload not cached")
	}
	pat, err := h.Pattern(Combos()[0], gen.Sequence, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(Combos()[0], pat, func() core.Policy { return core.Static{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Elapsed <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	// Matches must be identical across policies (policy independence at
	// harness level).
	res2, err := h.Run(Combos()[0], pat, func() core.Policy { return core.Unconditional{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != res2.Matches {
		t.Fatalf("match counts differ across policies: %d vs %d", res.Matches, res2.Matches)
	}
}

func TestFig5AndBestD(t *testing.T) {
	h := NewHarness(tinyScale())
	f5, err := h.Fig5(Combos()[0], []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Throughput) != 2 || len(f5.Throughput[0]) != 2 {
		t.Fatalf("shape %dx%d", len(f5.Throughput), len(f5.Throughput[0]))
	}
	best := f5.BestD()
	if best != 0 && best != 0.3 {
		t.Fatalf("BestD = %g", best)
	}
	var buf bytes.Buffer
	f5.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("missing header")
	}
}

func TestTable1(t *testing.T) {
	sc := tinyScale()
	sc.Sizes = []int{4, 5}
	h := NewHarness(sc)
	f5, err := h.Fig5(Combos()[0], []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := h.Table1(Combos()[0], f5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows; want 2 (sizes 4,5)", len(rows))
	}
	for _, r := range rows {
		if r.DAvg < 0 || r.Quality < 0 || r.Quality > 1 {
			t.Fatalf("bad row %+v", r)
		}
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("missing header")
	}
}

func TestMethodsAndFigurePrinting(t *testing.T) {
	h := NewHarness(tinyScale())
	c := Combos()[0]
	data, err := h.Methods(c, []gen.Kind{gen.Sequence, gen.Conjunction}, 0.3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Results) != 2 || len(data.Results[0]) != 2 || len(data.Results[0][0]) != 4 {
		t.Fatal("wrong result shape")
	}
	avg := data.Avg()
	if len(avg) != 2 || len(avg[0]) != 4 {
		t.Fatal("wrong avg shape")
	}
	// static must never reoptimize; unconditional must generate plans at
	// every check.
	for si := range data.Sizes {
		if avg[si][0].Reopts != 0 {
			t.Fatalf("static reopts = %d", avg[si][0].Reopts)
		}
	}
	var buf bytes.Buffer
	data.WriteFigure(&buf, -1)
	out := buf.String()
	for _, want := range []string{"throughput", "reoptimizations", "overhead", "static", "invariant"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q", want)
		}
	}
	buf.Reset()
	data.WriteFigure(&buf, 1)
	if !strings.Contains(buf.String(), "conjunction patterns") {
		t.Fatal("per-kind figure missing kind label")
	}
}

func TestScanThreshold(t *testing.T) {
	h := NewHarness(tinyScale())
	topt, err := h.ScanThreshold(Combos()[0], []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if topt != 0.1 && topt != 0.5 {
		t.Fatalf("topt = %g", topt)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 2+4+20 {
		t.Fatalf("%d experiment ids", len(ids))
	}
	want := map[string]bool{"fig5": true, "table1": true, "fig6": true, "fig29": true}
	for _, id := range ids {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("missing ids: %v", want)
	}

	sc := tinyScale()
	sc.Sizes = []int{3}
	sc.Events = 2500
	r := NewRunner(NewHarness(sc))
	var buf bytes.Buffer
	if err := r.Run(&buf, "fig10"); err != nil { // traffic/greedy, sequence set
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sequence patterns") {
		t.Fatal("fig10 output wrong")
	}
	if err := r.Run(&buf, "nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	// Tuning must be cached: a second figure on the same combo reuses it.
	buf.Reset()
	if err := r.Run(&buf, "fig14"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "conjunction patterns") {
		t.Fatal("fig14 output wrong")
	}
}
