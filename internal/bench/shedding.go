package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"acep/internal/engine"
	"acep/internal/event"
	"acep/internal/gen"
	"acep/internal/match"
	"acep/internal/pattern"
	"acep/internal/shard"
	"acep/internal/shed"
	"acep/internal/stats"
)

// DefaultShedTargets is the drop-fraction sweep of the shedding
// experiment.
func DefaultShedTargets() []float64 { return []float64{0.2, 0.4, 0.6} }

// ShedPolicyNames lists the comparable shedding policies of the
// experiment (None is always measured as the recall-1 baseline).
func ShedPolicyNames() []string { return []string{"random", "rate-utility", "pattern-aware"} }

// shedPolicy instantiates a policy by experiment name.
func shedPolicy(name string, target float64) (shed.Policy, error) {
	switch name {
	case "random":
		return shed.Random{P: target}, nil
	case "rate-utility":
		return shed.RateUtility{Target: target}, nil
	case "pattern-aware":
		return shed.PatternAware{Target: target}, nil
	default:
		return nil, fmt.Errorf("bench: unknown shedding policy %q (want one of %v)", name, ShedPolicyNames())
	}
}

// ShedPoint is one measured (policy, target) cell of the
// throughput-vs-recall frontier.
type ShedPoint struct {
	Policy     string  `json:"policy"`
	Target     float64 `json:"target_drop"`
	Dropped    float64 `json:"dropped_frac"` // achieved drop rate
	Matches    uint64  `json:"matches"`
	Recall     float64 `json:"recall"`     // matches / baseline matches
	RecallEst  float64 `json:"recall_est"` // Metrics.RecallEstimate
	Throughput float64 `json:"events_per_sec"`
}

// ShedData is the pattern-aware load-shedding experiment: the same
// overloaded keyed stream is detected under every policy and drop target,
// recording the achieved drop rate and the match recall relative to the
// unshedded baseline. Recorded runs accrue in BENCH_shedding.json.
//
// Overload is forced deterministically: the rate budget is set to a
// fraction of the stream's logical arrival rate, so the monitor reports
// utilization > 1 throughout and every policy sheds at its configured
// target — making recall directly comparable across policies at equal
// drop rate.
type ShedData struct {
	Dataset         string      `json:"dataset"`
	Events          int         `json:"events"`
	Keys            int         `json:"keys"`
	PatternSize     int         `json:"pattern_size"`
	BaselineMatches uint64      `json:"baseline_matches"`
	RateBudget      float64     `json:"rate_budget_eps"`
	QueueCap        int         `json:"queue_cap,omitempty"`
	Points          []ShedPoint `json:"points"`
}

// ShedWorkload returns (and caches) the shedding variant of a dataset:
// keyed like the scaling workload but with a higher key count, so the
// liveness signal (which keys hold partial matches) is informative rather
// than saturated.
func (h *Harness) ShedWorkload(dataset string) *gen.Workload {
	name := "shed/" + dataset
	if w, ok := h.workloads[name]; ok {
		return w
	}
	keys := h.Scale.Keys
	if keys <= 0 {
		keys = 16
	}
	var w *gen.Workload
	switch dataset {
	case "traffic":
		w = gen.Traffic(gen.TrafficConfig{
			Types: h.Scale.Types, Events: h.Scale.Events, Seed: h.Scale.Seed,
			MeanGap: 2, Skew: 1.2, Shifts: 3, Keys: keys,
		})
	case "stocks":
		w = gen.Stocks(gen.StocksConfig{
			Types: h.Scale.Types, Events: h.Scale.Events, Seed: h.Scale.Seed,
			MeanGap: 2, DriftEvery: 400, DriftMag: 0.12, Keys: keys,
		})
	default:
		panic("bench: unknown dataset " + dataset)
	}
	h.workloads[name] = w
	return w
}

// logicalRate is the stream's arrival rate in events per logical second.
func logicalRate(evs []event.Event) float64 {
	if len(evs) < 2 {
		return 0
	}
	span := evs[len(evs)-1].TS - evs[0].TS
	if span <= 0 {
		return 0
	}
	return float64(len(evs)) * float64(event.Second) / float64(span)
}

// Shedding measures the throughput-vs-recall frontier of the shedding
// policies on the keyed dataset. Every (policy, target) cell processes
// the identical event sequence under identical forced overload. With
// queueCap > 0 the runs additionally go through a 4-shard engine with a
// bounded DropNewest ingestion queue of that many events per shard
// (demonstrating the coarse overflow arm; queue drops then depend on
// worker timing, so recall is no longer a deterministic function of the
// configuration).
func (h *Harness) Shedding(dataset string, targets []float64, policies []string, queueCap int) (*ShedData, error) {
	if len(targets) == 0 {
		targets = DefaultShedTargets()
	}
	if len(policies) == 0 {
		policies = ShedPolicyNames()
	}
	w := h.ShedWorkload(dataset)
	// A size-3 keyed sequence over a wide window: wide enough for
	// same-key chains to fire by the thousands, so recall differences
	// between policies are measured on a dense match base.
	const size = 3
	pat, err := w.Pattern(gen.Sequence, size, h.Scale.Window*32)
	if err != nil {
		return nil, err
	}
	rate := logicalRate(w.Events)
	budget := shed.Budget{EventsPerSec: rate / 8} // utilization ~8: always overloaded
	initial := stats.Exact(pat, w.Events[:len(w.Events)/20+1])

	data := &ShedData{
		Dataset:     dataset,
		Events:      len(w.Events),
		Keys:        w.Keys,
		PatternSize: size,
		RateBudget:  budget.EventsPerSec,
		QueueCap:    queueCap,
	}

	run := func(sc shed.Config) (uint64, engine.Metrics, time.Duration, error) {
		cfg := engine.Config{
			// The tree model keeps joined sub-matches in its node stores,
			// which is exactly the live state the pattern-aware policy
			// queries (the NFA's lazy orders often complete matches
			// straight from history buffers, leaving no waiting state to
			// protect).
			Model:        engine.ZStreamTree,
			CheckEvery:   h.Scale.CheckEvery,
			InitialStats: func(*pattern.Pattern) *stats.Snapshot { return initial },
			Shedding:     sc,
		}
		var matches uint64
		count := func(*match.Match) { matches++ }
		start := time.Now()
		if queueCap > 0 {
			eng, err := shard.New(pat, cfg, shard.Options{
				Shards:   4,
				QueueCap: queueCap,
				Overflow: shard.DropNewest,
				KeyAttr:  "key",
				Schema:   w.Schema,
				OnMatch:  count,
			})
			if err != nil {
				return 0, engine.Metrics{}, 0, err
			}
			for i := range w.Events {
				eng.Process(&w.Events[i])
			}
			eng.Finish()
			return matches, eng.Metrics(), time.Since(start), nil
		}
		cfg.OnMatch = count
		eng, err := engine.New(pat, cfg)
		if err != nil {
			return 0, engine.Metrics{}, 0, err
		}
		for i := range w.Events {
			eng.Process(&w.Events[i])
		}
		eng.Finish()
		return matches, eng.Metrics(), time.Since(start), nil
	}

	// Baseline: no shedding at all.
	baseMatches, _, baseElapsed, err := run(shed.Config{})
	if err != nil {
		return nil, err
	}
	if baseMatches == 0 {
		return nil, fmt.Errorf("bench: shedding %s baseline produced no matches; the experiment is vacuous", dataset)
	}
	data.BaselineMatches = baseMatches
	data.Points = append(data.Points, ShedPoint{
		Policy: "none", Recall: 1, RecallEst: 1, Matches: baseMatches,
		Throughput: float64(len(w.Events)) / baseElapsed.Seconds(),
	})

	key, err := shard.ByAttrName(w.Schema, "key")
	if err != nil {
		return nil, err
	}
	for _, target := range targets {
		for _, name := range policies {
			pol, err := shedPolicy(name, target)
			if err != nil {
				return nil, err
			}
			matches, m, elapsed, err := run(shed.Config{
				Policy: pol,
				Budget: budget,
				Key:    key,
			})
			if err != nil {
				return nil, err
			}
			data.Points = append(data.Points, ShedPoint{
				Policy:     name,
				Target:     target,
				Dropped:    m.ShedRate(),
				Matches:    matches,
				Recall:     float64(matches) / float64(baseMatches),
				RecallEst:  m.RecallEstimate(size),
				Throughput: float64(len(w.Events)) / elapsed.Seconds(),
			})
		}
	}
	return data, nil
}

// Write prints the shedding frontier table.
func (d *ShedData) Write(w io.Writer) {
	fmt.Fprintf(w, "Load shedding — %s workload, %d events, %d keys, size-%d keyed sequence\n",
		d.Dataset, d.Events, d.Keys, d.PatternSize)
	fmt.Fprintf(w, "rate budget %.0f ev/s (forced overload); baseline %d matches\n",
		d.RateBudget, d.BaselineMatches)
	if d.QueueCap > 0 {
		fmt.Fprintf(w, "bounded queues: %d events/shard, drop-newest\n", d.QueueCap)
	}
	fmt.Fprintf(w, "%-16s%8s%10s%10s%10s%12s%14s\n",
		"policy", "target", "dropped", "matches", "recall", "recall-est", "events/sec")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%-16s%8.2f%10.3f%10d%10.3f%12.3f%14.0f\n",
			p.Policy, p.Target, p.Dropped, p.Matches, p.Recall, p.RecallEst, p.Throughput)
	}
}

// WriteJSON appends the run to a BENCH_*.json trajectory (one JSON object
// per invocation).
func (d *ShedData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
