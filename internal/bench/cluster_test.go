package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestClusterExperiment is a scaled-down smoke of the cluster scaling
// experiment: both node counts must agree on the match count (with the
// single-process engine and with each other) and produce renderable
// output.
func TestClusterExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster experiment in -short mode")
	}
	sc := DefaultScale()
	sc.Events = 12000
	h := NewHarness(sc)
	d, err := h.Cluster("traffic", []int{1, 2}, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 2 {
		t.Fatalf("%d points", len(d.Points))
	}
	if d.Points[0].Matches == 0 {
		t.Fatal("no matches; experiment is vacuous")
	}
	if d.Points[0].Matches != d.Points[1].Matches {
		t.Fatalf("match counts diverged across node counts: %d vs %d",
			d.Points[0].Matches, d.Points[1].Matches)
	}
	if d.Points[1].TotalShards != 2 {
		t.Fatalf("2 nodes × 1 shard = %d total", d.Points[1].TotalShards)
	}
	var buf bytes.Buffer
	d.Write(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
	buf.Reset()
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round ClusterData
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("JSON trajectory record does not round-trip: %v", err)
	}
	if round.Transport != "loopback-tcp" || len(round.Points) != 2 {
		t.Fatal("JSON record lost fields")
	}
}
